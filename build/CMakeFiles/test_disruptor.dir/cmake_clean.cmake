file(REMOVE_RECURSE
  "CMakeFiles/test_disruptor.dir/tests/test_disruptor.cpp.o"
  "CMakeFiles/test_disruptor.dir/tests/test_disruptor.cpp.o.d"
  "test_disruptor"
  "test_disruptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disruptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
