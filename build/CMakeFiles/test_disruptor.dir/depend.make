# Empty dependencies file for test_disruptor.
# This may be replaced when dependencies are built.
