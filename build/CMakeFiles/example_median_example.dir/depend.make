# Empty dependencies file for example_median_example.
# This may be replaced when dependencies are built.
