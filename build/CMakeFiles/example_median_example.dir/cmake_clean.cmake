file(REMOVE_RECURSE
  "CMakeFiles/example_median_example.dir/examples/median_example.cpp.o"
  "CMakeFiles/example_median_example.dir/examples/median_example.cpp.o.d"
  "example_median_example"
  "example_median_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_median_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
