# Empty dependencies file for bench_table1_disruptor_tuning.
# This may be replaced when dependencies are built.
