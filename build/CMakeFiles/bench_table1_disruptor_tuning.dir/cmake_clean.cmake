file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_disruptor_tuning.dir/bench/bench_table1_disruptor_tuning.cpp.o"
  "CMakeFiles/bench_table1_disruptor_tuning.dir/bench/bench_table1_disruptor_tuning.cpp.o.d"
  "bench_table1_disruptor_tuning"
  "bench_table1_disruptor_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_disruptor_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
