# Empty dependencies file for example_reduce_scan.
# This may be replaced when dependencies are built.
