file(REMOVE_RECURSE
  "CMakeFiles/example_reduce_scan.dir/examples/reduce_scan.cpp.o"
  "CMakeFiles/example_reduce_scan.dir/examples/reduce_scan.cpp.o.d"
  "example_reduce_scan"
  "example_reduce_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reduce_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
