# Empty dependencies file for bench_fig11_matmul_speedup.
# This may be replaced when dependencies are built.
