file(REMOVE_RECURSE
  "CMakeFiles/test_engine_strategies.dir/tests/test_engine_strategies.cpp.o"
  "CMakeFiles/test_engine_strategies.dir/tests/test_engine_strategies.cpp.o.d"
  "test_engine_strategies"
  "test_engine_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
