# Empty dependencies file for test_engine_strategies.
# This may be replaced when dependencies are built.
