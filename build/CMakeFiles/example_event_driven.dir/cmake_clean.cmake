file(REMOVE_RECURSE
  "CMakeFiles/example_event_driven.dir/examples/event_driven.cpp.o"
  "CMakeFiles/example_event_driven.dir/examples/event_driven.cpp.o.d"
  "example_event_driven"
  "example_event_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_event_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
