# Empty dependencies file for example_event_driven.
# This may be replaced when dependencies are built.
