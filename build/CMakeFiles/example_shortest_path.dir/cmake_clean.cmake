file(REMOVE_RECURSE
  "CMakeFiles/example_shortest_path.dir/examples/shortest_path.cpp.o"
  "CMakeFiles/example_shortest_path.dir/examples/shortest_path.cpp.o.d"
  "example_shortest_path"
  "example_shortest_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_shortest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
