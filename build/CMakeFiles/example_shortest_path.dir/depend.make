# Empty dependencies file for example_shortest_path.
# This may be replaced when dependencies are built.
