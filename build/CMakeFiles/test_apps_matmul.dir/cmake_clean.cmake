file(REMOVE_RECURSE
  "CMakeFiles/test_apps_matmul.dir/tests/test_apps_matmul.cpp.o"
  "CMakeFiles/test_apps_matmul.dir/tests/test_apps_matmul.cpp.o.d"
  "test_apps_matmul"
  "test_apps_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
