# Empty dependencies file for test_apps_matmul.
# This may be replaced when dependencies are built.
