file(REMOVE_RECURSE
  "CMakeFiles/example_sharded_bfs.dir/examples/sharded_bfs.cpp.o"
  "CMakeFiles/example_sharded_bfs.dir/examples/sharded_bfs.cpp.o.d"
  "example_sharded_bfs"
  "example_sharded_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sharded_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
