# Empty dependencies file for example_sharded_bfs.
# This may be replaced when dependencies are built.
