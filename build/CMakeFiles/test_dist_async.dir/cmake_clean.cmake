file(REMOVE_RECURSE
  "CMakeFiles/test_dist_async.dir/tests/test_dist_async.cpp.o"
  "CMakeFiles/test_dist_async.dir/tests/test_dist_async.cpp.o.d"
  "test_dist_async"
  "test_dist_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
