# Empty dependencies file for test_dist_async.
# This may be replaced when dependencies are built.
