file(REMOVE_RECURSE
  "CMakeFiles/test_apps_pvwatts.dir/tests/test_apps_pvwatts.cpp.o"
  "CMakeFiles/test_apps_pvwatts.dir/tests/test_apps_pvwatts.cpp.o.d"
  "test_apps_pvwatts"
  "test_apps_pvwatts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_pvwatts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
