# Empty dependencies file for test_apps_pvwatts.
# This may be replaced when dependencies are built.
