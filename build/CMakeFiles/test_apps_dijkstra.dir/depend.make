# Empty dependencies file for test_apps_dijkstra.
# This may be replaced when dependencies are built.
