file(REMOVE_RECURSE
  "CMakeFiles/test_apps_dijkstra.dir/tests/test_apps_dijkstra.cpp.o"
  "CMakeFiles/test_apps_dijkstra.dir/tests/test_apps_dijkstra.cpp.o.d"
  "test_apps_dijkstra"
  "test_apps_dijkstra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_dijkstra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
