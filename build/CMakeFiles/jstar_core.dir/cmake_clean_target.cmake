file(REMOVE_RECURSE
  "libjstar_core.a"
)
