file(REMOVE_RECURSE
  "CMakeFiles/jstar_core.dir/src/apps/dijkstra/dijkstra.cpp.o"
  "CMakeFiles/jstar_core.dir/src/apps/dijkstra/dijkstra.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/apps/matmul/matmul.cpp.o"
  "CMakeFiles/jstar_core.dir/src/apps/matmul/matmul.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/apps/median/median.cpp.o"
  "CMakeFiles/jstar_core.dir/src/apps/median/median.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/apps/pvwatts/pvwatts.cpp.o"
  "CMakeFiles/jstar_core.dir/src/apps/pvwatts/pvwatts.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/core/engine.cpp.o"
  "CMakeFiles/jstar_core.dir/src/core/engine.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/csv/csv.cpp.o"
  "CMakeFiles/jstar_core.dir/src/csv/csv.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/sched/fork_join_pool.cpp.o"
  "CMakeFiles/jstar_core.dir/src/sched/fork_join_pool.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/smt/causality.cpp.o"
  "CMakeFiles/jstar_core.dir/src/smt/causality.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/util/statistics.cpp.o"
  "CMakeFiles/jstar_core.dir/src/util/statistics.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/util/timer.cpp.o"
  "CMakeFiles/jstar_core.dir/src/util/timer.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/viz/runlog.cpp.o"
  "CMakeFiles/jstar_core.dir/src/viz/runlog.cpp.o.d"
  "CMakeFiles/jstar_core.dir/src/viz/viz.cpp.o"
  "CMakeFiles/jstar_core.dir/src/viz/viz.cpp.o.d"
  "libjstar_core.a"
  "libjstar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jstar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
