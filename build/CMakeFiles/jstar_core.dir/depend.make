# Empty dependencies file for jstar_core.
# This may be replaced when dependencies are built.
