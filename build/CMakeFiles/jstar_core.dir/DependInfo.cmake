
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dijkstra/dijkstra.cpp" "CMakeFiles/jstar_core.dir/src/apps/dijkstra/dijkstra.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/apps/dijkstra/dijkstra.cpp.o.d"
  "/root/repo/src/apps/matmul/matmul.cpp" "CMakeFiles/jstar_core.dir/src/apps/matmul/matmul.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/apps/matmul/matmul.cpp.o.d"
  "/root/repo/src/apps/median/median.cpp" "CMakeFiles/jstar_core.dir/src/apps/median/median.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/apps/median/median.cpp.o.d"
  "/root/repo/src/apps/pvwatts/pvwatts.cpp" "CMakeFiles/jstar_core.dir/src/apps/pvwatts/pvwatts.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/apps/pvwatts/pvwatts.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "CMakeFiles/jstar_core.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/csv/csv.cpp" "CMakeFiles/jstar_core.dir/src/csv/csv.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/csv/csv.cpp.o.d"
  "/root/repo/src/sched/fork_join_pool.cpp" "CMakeFiles/jstar_core.dir/src/sched/fork_join_pool.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/sched/fork_join_pool.cpp.o.d"
  "/root/repo/src/smt/causality.cpp" "CMakeFiles/jstar_core.dir/src/smt/causality.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/smt/causality.cpp.o.d"
  "/root/repo/src/util/statistics.cpp" "CMakeFiles/jstar_core.dir/src/util/statistics.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/util/statistics.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "CMakeFiles/jstar_core.dir/src/util/timer.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/util/timer.cpp.o.d"
  "/root/repo/src/viz/runlog.cpp" "CMakeFiles/jstar_core.dir/src/viz/runlog.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/viz/runlog.cpp.o.d"
  "/root/repo/src/viz/viz.cpp" "CMakeFiles/jstar_core.dir/src/viz/viz.cpp.o" "gcc" "CMakeFiles/jstar_core.dir/src/viz/viz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
