file(REMOVE_RECURSE
  "CMakeFiles/test_window_store.dir/tests/test_window_store.cpp.o"
  "CMakeFiles/test_window_store.dir/tests/test_window_store.cpp.o.d"
  "test_window_store"
  "test_window_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
