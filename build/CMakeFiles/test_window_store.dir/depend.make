# Empty dependencies file for test_window_store.
# This may be replaced when dependencies are built.
