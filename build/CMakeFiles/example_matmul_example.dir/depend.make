# Empty dependencies file for example_matmul_example.
# This may be replaced when dependencies are built.
