file(REMOVE_RECURSE
  "CMakeFiles/example_matmul_example.dir/examples/matmul_example.cpp.o"
  "CMakeFiles/example_matmul_example.dir/examples/matmul_example.cpp.o.d"
  "example_matmul_example"
  "example_matmul_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matmul_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
