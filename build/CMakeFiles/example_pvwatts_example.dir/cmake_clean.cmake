file(REMOVE_RECURSE
  "CMakeFiles/example_pvwatts_example.dir/examples/pvwatts_example.cpp.o"
  "CMakeFiles/example_pvwatts_example.dir/examples/pvwatts_example.cpp.o.d"
  "example_pvwatts_example"
  "example_pvwatts_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pvwatts_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
