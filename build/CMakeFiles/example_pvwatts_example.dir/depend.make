# Empty dependencies file for example_pvwatts_example.
# This may be replaced when dependencies are built.
