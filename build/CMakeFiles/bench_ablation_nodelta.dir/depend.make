# Empty dependencies file for bench_ablation_nodelta.
# This may be replaced when dependencies are built.
