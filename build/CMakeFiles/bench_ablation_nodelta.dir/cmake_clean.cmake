file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nodelta.dir/bench/bench_ablation_nodelta.cpp.o"
  "CMakeFiles/bench_ablation_nodelta.dir/bench/bench_ablation_nodelta.cpp.o.d"
  "bench_ablation_nodelta"
  "bench_ablation_nodelta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nodelta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
