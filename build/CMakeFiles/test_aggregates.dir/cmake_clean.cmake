file(REMOVE_RECURSE
  "CMakeFiles/test_aggregates.dir/tests/test_aggregates.cpp.o"
  "CMakeFiles/test_aggregates.dir/tests/test_aggregates.cpp.o.d"
  "test_aggregates"
  "test_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
