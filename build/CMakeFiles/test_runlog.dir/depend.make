# Empty dependencies file for test_runlog.
# This may be replaced when dependencies are built.
