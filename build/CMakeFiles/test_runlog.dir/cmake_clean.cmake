file(REMOVE_RECURSE
  "CMakeFiles/test_runlog.dir/tests/test_runlog.cpp.o"
  "CMakeFiles/test_runlog.dir/tests/test_runlog.cpp.o.d"
  "test_runlog"
  "test_runlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
