# Empty dependencies file for test_dist_report.
# This may be replaced when dependencies are built.
