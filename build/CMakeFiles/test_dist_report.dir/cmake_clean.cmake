file(REMOVE_RECURSE
  "CMakeFiles/test_dist_report.dir/tests/test_dist_report.cpp.o"
  "CMakeFiles/test_dist_report.dir/tests/test_dist_report.cpp.o.d"
  "test_dist_report"
  "test_dist_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
