# Empty dependencies file for bench_fig6_sequential.
# This may be replaced when dependencies are built.
