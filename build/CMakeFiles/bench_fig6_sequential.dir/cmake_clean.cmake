file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sequential.dir/bench/bench_fig6_sequential.cpp.o"
  "CMakeFiles/bench_fig6_sequential.dir/bench/bench_fig6_sequential.cpp.o.d"
  "bench_fig6_sequential"
  "bench_fig6_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
