# Empty dependencies file for bench_fig10_disruptor.
# This may be replaced when dependencies are built.
