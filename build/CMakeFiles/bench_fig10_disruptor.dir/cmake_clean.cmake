file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_disruptor.dir/bench/bench_fig10_disruptor.cpp.o"
  "CMakeFiles/bench_fig10_disruptor.dir/bench/bench_fig10_disruptor.cpp.o.d"
  "bench_fig10_disruptor"
  "bench_fig10_disruptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_disruptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
