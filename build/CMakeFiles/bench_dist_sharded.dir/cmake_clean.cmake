file(REMOVE_RECURSE
  "CMakeFiles/bench_dist_sharded.dir/bench/bench_dist_sharded.cpp.o"
  "CMakeFiles/bench_dist_sharded.dir/bench/bench_dist_sharded.cpp.o.d"
  "bench_dist_sharded"
  "bench_dist_sharded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist_sharded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
