# Empty dependencies file for bench_dist_sharded.
# This may be replaced when dependencies are built.
