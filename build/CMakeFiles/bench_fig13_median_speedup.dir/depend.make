# Empty dependencies file for bench_fig13_median_speedup.
# This may be replaced when dependencies are built.
