# Empty dependencies file for example_causality_check.
# This may be replaced when dependencies are built.
