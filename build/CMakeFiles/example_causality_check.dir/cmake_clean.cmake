file(REMOVE_RECURSE
  "CMakeFiles/example_causality_check.dir/examples/causality_check.cpp.o"
  "CMakeFiles/example_causality_check.dir/examples/causality_check.cpp.o.d"
  "example_causality_check"
  "example_causality_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_causality_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
