# Empty dependencies file for example_space_invaders.
# This may be replaced when dependencies are built.
