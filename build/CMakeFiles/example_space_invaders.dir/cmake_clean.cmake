file(REMOVE_RECURSE
  "CMakeFiles/example_space_invaders.dir/examples/space_invaders.cpp.o"
  "CMakeFiles/example_space_invaders.dir/examples/space_invaders.cpp.o.d"
  "example_space_invaders"
  "example_space_invaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_space_invaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
