file(REMOVE_RECURSE
  "CMakeFiles/example_tuning_workflow.dir/examples/tuning_workflow.cpp.o"
  "CMakeFiles/example_tuning_workflow.dir/examples/tuning_workflow.cpp.o.d"
  "example_tuning_workflow"
  "example_tuning_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tuning_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
