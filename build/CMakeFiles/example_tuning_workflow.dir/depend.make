# Empty dependencies file for example_tuning_workflow.
# This may be replaced when dependencies are built.
