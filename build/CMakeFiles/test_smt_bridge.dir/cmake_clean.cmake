file(REMOVE_RECURSE
  "CMakeFiles/test_smt_bridge.dir/tests/test_smt_bridge.cpp.o"
  "CMakeFiles/test_smt_bridge.dir/tests/test_smt_bridge.cpp.o.d"
  "test_smt_bridge"
  "test_smt_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smt_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
