# Empty dependencies file for test_smt_bridge.
# This may be replaced when dependencies are built.
