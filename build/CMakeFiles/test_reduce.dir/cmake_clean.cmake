file(REMOVE_RECURSE
  "CMakeFiles/test_reduce.dir/tests/test_reduce.cpp.o"
  "CMakeFiles/test_reduce.dir/tests/test_reduce.cpp.o.d"
  "test_reduce"
  "test_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
