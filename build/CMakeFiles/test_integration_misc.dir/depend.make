# Empty dependencies file for test_integration_misc.
# This may be replaced when dependencies are built.
