file(REMOVE_RECURSE
  "CMakeFiles/test_integration_misc.dir/tests/test_integration_misc.cpp.o"
  "CMakeFiles/test_integration_misc.dir/tests/test_integration_misc.cpp.o.d"
  "test_integration_misc"
  "test_integration_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
