file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_scalability.dir/bench/bench_delta_scalability.cpp.o"
  "CMakeFiles/bench_delta_scalability.dir/bench/bench_delta_scalability.cpp.o.d"
  "bench_delta_scalability"
  "bench_delta_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
