# Empty dependencies file for bench_delta_scalability.
# This may be replaced when dependencies are built.
