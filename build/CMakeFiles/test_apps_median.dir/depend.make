# Empty dependencies file for test_apps_median.
# This may be replaced when dependencies are built.
