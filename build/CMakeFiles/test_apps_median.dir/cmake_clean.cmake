file(REMOVE_RECURSE
  "CMakeFiles/test_apps_median.dir/tests/test_apps_median.cpp.o"
  "CMakeFiles/test_apps_median.dir/tests/test_apps_median.cpp.o.d"
  "test_apps_median"
  "test_apps_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
