# Empty dependencies file for test_mp_disruptor.
# This may be replaced when dependencies are built.
