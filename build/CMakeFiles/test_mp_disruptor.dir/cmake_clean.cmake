file(REMOVE_RECURSE
  "CMakeFiles/test_mp_disruptor.dir/tests/test_mp_disruptor.cpp.o"
  "CMakeFiles/test_mp_disruptor.dir/tests/test_mp_disruptor.cpp.o.d"
  "test_mp_disruptor"
  "test_mp_disruptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp_disruptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
