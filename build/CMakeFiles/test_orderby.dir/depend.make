# Empty dependencies file for test_orderby.
# This may be replaced when dependencies are built.
