file(REMOVE_RECURSE
  "CMakeFiles/test_orderby.dir/tests/test_orderby.cpp.o"
  "CMakeFiles/test_orderby.dir/tests/test_orderby.cpp.o.d"
  "test_orderby"
  "test_orderby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orderby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
