// Figure 6: absolute sequential speed of the JStar case-study programs
// versus hand-coded versions.
//
// Paper bars (Intel i7-2600, seconds):
//   PvWatts:     JStar 4.7  vs Java 5.9   (JStar wins — its CSV library)
//   MatrixMult:  JStar 21.9 boxed / 8.1 primitive vs Java 7.5 naive /
//                1.0 transposed
//   Dijkstra:    JStar 3.8 vs Java 1.8    (JStar ~2x slower — Delta tree
//                vs PriorityQueue)
//   Median:      JStar 6.8 vs Java 13.4   (JStar 2x faster — selection vs
//                full sort)
//
// Shapes expected here: same winners/losers; absolute numbers differ (C++
// runtime, scaled-down default workloads — pass sizes on the command line
// to approach paper scale).
//
// Usage: bench_fig6_sequential [pvwatts_records] [matmul_n] [dijkstra_v] [median_n]
#include "apps/dijkstra/dijkstra.h"
#include "apps/matmul/matmul.h"
#include "apps/median/median.h"
#include "apps/pvwatts/pvwatts.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;

  const std::int64_t pv_records = arg_or(argc, argv, 1, 12 * 30 * 24 * 30);
  const auto mat_n = static_cast<int>(arg_or(argc, argv, 2, 220));
  const auto dij_v = static_cast<std::int32_t>(arg_or(argc, argv, 3, 60000));
  const std::int64_t med_n = arg_or(argc, argv, 4, 2000000);

  print_header("Fig 6: sequential JStar vs hand-coded (paper: 4.7/5.9, "
               "21.9|8.1/7.5|1.0, 3.8/1.8, 6.8/13.4 s)");

  // --- PvWatts -------------------------------------------------------------
  {
    const auto input = apps::pvwatts::generate_csv(
        pv_records, apps::pvwatts::InputOrder::MonthMajor);
    apps::pvwatts::JStarConfig cfg;
    cfg.engine.sequential = true;
    const Timing jstar = measure([&] { apps::pvwatts::run_jstar(input, cfg); });
    const Timing base = measure([&] { apps::pvwatts::run_baseline(input); });
    const Timing fast = measure([&] {
      apps::pvwatts::run_baseline_fast_csv(input);
    });
    std::printf("\nPvWatts (%lld records):\n",
                static_cast<long long>(pv_records));
    print_row("  JStar (noDelta, month-array Gamma)", jstar.mean);
    print_row("  baseline, readline+split (paper's Java)", base.mean);
    print_row("  baseline, byte-slice CSV (extra row)", fast.mean);
    print_row("  JStar/baseline ratio (paper: 0.80)", jstar.mean / base.mean);
  }

  // --- MatrixMult ----------------------------------------------------------
  {
    const auto a = apps::matmul::Matrix::random(mat_n, mat_n, 1);
    const auto b = apps::matmul::Matrix::random(mat_n, mat_n, 2);
    EngineOptions seq;
    seq.sequential = true;
    const Timing boxed = measure([&] {
      apps::matmul::multiply_jstar(a, b, apps::matmul::Kernel::Boxed, seq);
    }, 1, 0);
    const Timing prim = measure([&] {
      apps::matmul::multiply_jstar(a, b, apps::matmul::Kernel::Primitive, seq);
    });
    const Timing jtrans = measure([&] {
      apps::matmul::multiply_jstar(a, b, apps::matmul::Kernel::Transposed,
                                   seq);
    });
    const Timing naive = measure([&] { apps::matmul::multiply_naive(a, b); });
    const Timing trans = measure([&] {
      apps::matmul::multiply_transposed(a, b);
    });
    std::printf("\nMatrixMult (%dx%d):\n", mat_n, mat_n);
    print_row("  JStar, boxed ints (XText accident)", boxed.mean);
    print_row("  JStar, primitive ints (corrected)", prim.mean);
    print_row("  JStar, transposed B (paper's suggestion)", jtrans.mean);
    print_row("  baseline naive ijk", naive.mean);
    print_row("  baseline transposed", trans.mean);
  }

  // --- ShortestPath ----------------------------------------------------------
  {
    const auto g = apps::dijkstra::random_graph(dij_v, dij_v * 2, 42);
    EngineOptions seq;
    seq.sequential = true;
    const Timing jstar = measure([&] {
      apps::dijkstra::shortest_paths_jstar(g, seq);
    });
    const Timing base = measure([&] {
      apps::dijkstra::shortest_paths_baseline(g);
    });
    std::printf("\nShortestPath (%d vertices, %lld edges):\n", dij_v,
                static_cast<long long>(dij_v) * 2);
    print_row("  JStar (Delta tree as priority queue)", jstar.mean);
    print_row("  baseline binary heap", base.mean);
    print_row("  JStar/baseline ratio", jstar.mean / base.mean);
  }

  // --- Median ----------------------------------------------------------------
  {
    const auto values = apps::median::random_values(med_n, 7);
    apps::median::JStarConfig cfg;
    cfg.engine.sequential = true;
    const Timing jstar = measure([&] {
      apps::median::median_jstar(values, cfg);
    });
    const Timing base = measure([&] { apps::median::median_sort(values); });
    std::printf("\nMedian (%lld doubles):\n", static_cast<long long>(med_n));
    print_row("  JStar (partition selection)", jstar.mean);
    print_row("  baseline full sort", base.mean);
    print_row("  baseline/JStar ratio (paper ~2x)", base.mean / jstar.mean);
  }

  return 0;
}
