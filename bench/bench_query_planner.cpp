// Query-planner access paths vs full scans (§1.4): the speedup a routed
// rule-body lookup gets over the O(N) Gamma scan that used to serve it.
//
// Workload: one table of `rows` tuples (default 10^6) under the default
// ordered sequential store, declaring every access structure the planner
// can route through — a primary key on the unique leading field, a hash
// index on a 0.1%-selective group field, a composite hash index on
// (group, cat) at ~0.01% selectivity, and an ordered-range prefix on the
// leading field.  Each selective query shape runs twice per probe key:
// once as a typed predicate (planner-routed) and once as the semantically
// identical query::lambda (which carries no bindings, forcing the
// residual full scan).  Routed and scanned results are checked identical
// before any timing is reported.
//
// Results go to stdout and BENCH_query_planner.json; the headline is the
// *minimum* speedup across the selective (<= 1% hit rate) shapes — the
// acceptance bar is >= 5x at 10^6 rows.
//
// Usage: bench_query_planner [rows] [reps]
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/engine.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace jstar;
using namespace jstar::bench;

struct Row {
  std::int64_t id, group, cat, score;
  auto operator<=>(const Row&) const = default;
};

constexpr std::int64_t kGroups = 1000;  // 0.1% of rows per group
constexpr std::int64_t kCats = 10;      // 0.01% per (group, cat)

struct PathResult {
  std::string path;
  double hit_rate = 0;
  double routed_seconds = 0;
  double scan_seconds = 0;
  std::int64_t routed_tuples = 0;
  std::int64_t scan_tuples = 0;
  double speedup() const {
    return routed_seconds > 0 ? scan_seconds / routed_seconds : 0;
  }
};

/// Times `queries` probes of one shape, routed vs lambda-scanned, and
/// checks the two paths return the same tuple counts per probe.
template <typename RoutedFn, typename ScanFn>
PathResult run_path(const std::string& name, std::int64_t rows, int queries,
                    int reps, RoutedFn&& routed, ScanFn&& scanned) {
  PathResult r;
  r.path = name;
  for (int q = 0; q < queries; ++q) {  // warmup + correctness check
    const std::int64_t a = routed(q);
    const std::int64_t b = scanned(q);
    if (a != b) {
      std::fprintf(stderr, "MISMATCH %s probe %d: routed %lld scan %lld\n",
                   name.c_str(), q, static_cast<long long>(a),
                   static_cast<long long>(b));
      std::exit(1);
    }
  }
  r.routed_seconds = 1e100;
  r.scan_seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t1;
    std::int64_t got = 0;
    for (int q = 0; q < queries; ++q) got += routed(q);
    r.routed_seconds = std::min(r.routed_seconds, t1.seconds());
    r.routed_tuples = got;
    WallTimer t2;
    got = 0;
    for (int q = 0; q < queries; ++q) got += scanned(q);
    r.scan_seconds = std::min(r.scan_seconds, t2.seconds());
    r.scan_tuples = got;
  }
  r.hit_rate = static_cast<double>(r.routed_tuples) /
               static_cast<double>(rows * queries);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t rows = arg_or(argc, argv, 1, 1000000);
  const int reps = static_cast<int>(arg_or(argc, argv, 2, 3));
  const int queries = 16;

  print_header("query planner: routed access paths vs full scan at " +
               std::to_string(rows) + " Gamma tuples");

  Engine eng(EngineOptions{.sequential = true});
  auto& table = eng.table(
      TableDecl<Row>("Row")
          .orderby_lit("R")
          .primary_key(&Row::id)
          .hash([](const Row& r) {
            return hash_fields(r.id, r.group, r.cat, r.score);
          }));
  table.add_index(&Row::group);
  table.add_index(&Row::group, &Row::cat);
  table.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return Row{v[0], INT64_MIN, INT64_MIN, INT64_MIN};
      },
      &Row::id);

  WallTimer load;
  SplitMix64 rng(0xbe7c4);
  for (std::int64_t i = 0; i < rows; ++i) {
    eng.put(table, Row{i, i % kGroups, (i / kGroups) % kCats,
                       static_cast<std::int64_t>(rng.next_below(1 << 20))});
  }
  eng.run();
  std::printf("loaded %lld rows in %.2f s (gamma=%zu)\n",
              static_cast<long long>(rows), load.seconds(),
              table.gamma_size());

  SplitMix64 probe_rng(0x5eed);
  std::vector<std::int64_t> probes;
  for (int q = 0; q < queries; ++q) {
    probes.push_back(static_cast<std::int64_t>(
        probe_rng.next_below(static_cast<std::uint64_t>(rows))));
  }
  const std::int64_t span = std::max<std::int64_t>(rows / 100, 1);  // 1%

  std::vector<PathResult> results;
  // 0.1% hit rate: single-field hash index.
  results.push_back(run_path(
      "index-probe eq(group)", rows, queries, reps,
      [&](int q) {
        return table.query_count(query::eq(&Row::group,
                                           probes[static_cast<std::size_t>(q)] % kGroups));
      },
      [&](int q) {
        const std::int64_t g = probes[static_cast<std::size_t>(q)] % kGroups;
        return table.query_count(
            query::lambda<Row>([g](const Row& r) { return r.group == g; }));
      }));
  // ~0.01%: composite hash index.
  results.push_back(run_path(
      "index-probe eq(group) && eq(cat)", rows, queries, reps,
      [&](int q) {
        const std::int64_t g = probes[static_cast<std::size_t>(q)] % kGroups;
        return table.query_count(query::eq(&Row::group, g) &&
                                 query::eq(&Row::cat, g % kCats));
      },
      [&](int q) {
        const std::int64_t g = probes[static_cast<std::size_t>(q)] % kGroups;
        const std::int64_t c = g % kCats;
        return table.query_count(query::lambda<Row>(
            [g, c](const Row& r) { return r.group == g && r.cat == c; }));
      }));
  // 1%: ordered-range seek on the leading field.
  results.push_back(run_path(
      "range-scan between(id)", rows, queries, reps,
      [&](int q) {
        const std::int64_t lo =
            probes[static_cast<std::size_t>(q)] % (rows - span);
        return table.query_count(query::between(&Row::id, lo, lo + span));
      },
      [&](int q) {
        const std::int64_t lo =
            probes[static_cast<std::size_t>(q)] % (rows - span);
        const std::int64_t hi = lo + span;
        return table.query_count(query::lambda<Row>(
            [lo, hi](const Row& r) { return r.id >= lo && r.id < hi; }));
      }));
  // One in N: the pk probe.
  results.push_back(run_path(
      "pk-probe eq(id)", rows, queries, reps,
      [&](int q) {
        return table.query_count(
            query::eq(&Row::id, probes[static_cast<std::size_t>(q)]));
      },
      [&](int q) {
        const std::int64_t id = probes[static_cast<std::size_t>(q)];
        return table.query_count(
            query::lambda<Row>([id](const Row& r) { return r.id == id; }));
      }));
  // Contradiction: the planner proves emptiness without touching data.
  results.push_back(run_path(
      "always-empty eq&&eq conflict", rows, queries, reps,
      [&](int q) {
        const std::int64_t g = probes[static_cast<std::size_t>(q)] % kGroups;
        return table.query_count(query::eq(&Row::group, g) &&
                                 query::eq(&Row::group, g + 1));
      },
      [&](int q) {
        const std::int64_t g = probes[static_cast<std::size_t>(q)] % kGroups;
        return table.query_count(query::lambda<Row>([g](const Row& r) {
          return r.group == g && r.group == g + 1;
        }));
      }));

  std::printf("%-36s %10s %12s %12s %9s\n", "path", "hit-rate", "routed",
              "scan", "speedup");
  json::Array rows_json;
  double min_selective_speedup = 1e100;
  for (const PathResult& r : results) {
    std::printf("%-36s %9.4f%% %10.6f s %10.6f s %8.1fx\n", r.path.c_str(),
                r.hit_rate * 100, r.routed_seconds, r.scan_seconds,
                r.speedup());
    rows_json.push_back(json::Object{
        {"path", r.path},
        {"hit_rate", r.hit_rate},
        {"routed_seconds", r.routed_seconds},
        {"scan_seconds", r.scan_seconds},
        {"routed_tuples", r.routed_tuples},
        {"speedup", r.speedup()},
    });
    // The acceptance bar covers the selective (<= 1% hit rate) shapes.
    if (r.hit_rate <= 0.01 && r.speedup() < min_selective_speedup) {
      min_selective_speedup = r.speedup();
    }
  }
  std::printf("\nheadline: min selective (<=1%% hit) speedup %.1fx over "
              "full scan at %lld rows\n",
              min_selective_speedup, static_cast<long long>(rows));

  const json::Value doc = json::Object{
      {"bench", "query_planner"},
      {"rows", rows},
      {"reps", reps},
      {"queries_per_path", queries},
      {"paths", std::move(rows_json)},
      {"headline",
       json::Object{
           {"min_selective_speedup", min_selective_speedup},
           {"rows", rows},
       }},
  };
  std::FILE* f = std::fopen("BENCH_query_planner.json", "w");
  if (f != nullptr) {
    const std::string text = json::write(doc);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_query_planner.json\n");
  } else {
    std::printf("could not write BENCH_query_planner.json\n");
  }
  return 0;
}
