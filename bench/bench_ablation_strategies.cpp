// §5.2 ablation: the "additional parallelism" the paper's default strategy
// leaves on the table.
//
//   1. task-per-rule: "Even if a tuple triggers more than one rule, we
//      create only one task for that tuple - we could create one task per
//      rule that is triggered."  We benchmark a program whose trigger
//      table has several expensive rules, under both granularities.
//   2. reducer-loop parallelisation: "Loops that do involve a reducer
//      object could also be executed in parallel, with a tree-based pass
//      to combine the final reducer results."  We benchmark a Statistics
//      reduction over a large array sequentially versus with the §5.2
//      tree-combine pass (reduce/parallel.h).
//
// Usage: bench_ablation_strategies [tuples] [rule_cost] [reduce_n]
#include <atomic>
#include <cstdio>

#include "bench/harness.h"
#include "core/engine.h"
#include "reduce/parallel.h"
#include "util/statistics.h"

namespace {

struct Work {
  std::int64_t id;
  auto operator<=>(const Work&) const = default;
};

/// Spin-work proxy for a rule body with real computation.
std::int64_t burn(std::int64_t seed, std::int64_t iters) {
  std::uint64_t x = static_cast<std::uint64_t>(seed) * 0x9E3779B97F4A7C15ull + 1;
  for (std::int64_t i = 0; i < iters; ++i) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
  }
  return static_cast<std::int64_t>(x);
}

double run_rules(std::int64_t tuples, std::int64_t rule_cost, int threads,
                 bool task_per_rule) {
  using namespace jstar;
  EngineOptions opts;
  opts.sequential = false;
  opts.threads = threads;
  opts.task_per_rule = task_per_rule;
  Engine eng(opts);
  auto& work = eng.table(TableDecl<Work>("Work")
                             .orderby_lit("T")
                             .orderby_seq("id", &Work::id)
                             .hash([](const Work& w) {
                               return hash_fields(w.id);
                             }));
  std::atomic<std::int64_t> sink{0};
  // Four rules per trigger, each with a nontrivial body: the granularity
  // difference only matters when one tuple carries several rules.
  for (int r = 0; r < 4; ++r) {
    eng.rule(work, "burn" + std::to_string(r),
             [&, r](RuleCtx&, const Work& w) {
               sink.fetch_add(burn(w.id + r, rule_cost),
                              std::memory_order_relaxed);
             });
  }
  // All tuples share one batch (same seq value) to maximise batch width.
  for (std::int64_t i = 0; i < tuples; ++i) eng.put(work, Work{i});
  WallTimer timer;
  eng.run();
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;

  const std::int64_t tuples = arg_or(argc, argv, 1, 64);
  const std::int64_t rule_cost = arg_or(argc, argv, 2, 200000);
  const std::int64_t reduce_n = arg_or(argc, argv, 3, 8000000);

  print_header(
      "§5.2 ablation: task granularity and reducer-loop parallelism");

  std::printf("\n-- one task per tuple vs one per (tuple, rule) "
              "(%lld tuples x 4 rules, cost %lld) --\n",
              static_cast<long long>(tuples),
              static_cast<long long>(rule_cost));
  for (const int threads : {1, 2, 4, 8}) {
    const Timing per_tuple = measure([&] {
      run_rules(tuples, rule_cost, threads, false);
    });
    const Timing per_rule = measure([&] {
      run_rules(tuples, rule_cost, threads, true);
    });
    std::printf("  threads=%-2d  per-tuple %7.3f s   per-rule %7.3f s   "
                "ratio %.2fx\n",
                threads, per_tuple.mean, per_rule.mean,
                per_tuple.mean / per_rule.mean);
  }

  std::printf("\n-- reducer loop: sequential vs tree-combine "
              "(%lld doubles) --\n",
              static_cast<long long>(reduce_n));
  std::vector<double> xs(static_cast<std::size_t>(reduce_n));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>((i * 2654435761u) % 10000);
  }
  // Volatile sink keeps the dead-code eliminator honest.
  static volatile double sink = 0;
  const Timing seq = measure([&] {
    Statistics s;
    for (double x : xs) s.add(x);
    sink = s.mean() + s.variance();
  });
  print_row("  sequential reducer loop", seq.mean);
  for (const int threads : {2, 4, 8}) {
    sched::ForkJoinPool pool(threads);
    const Timing par = measure([&] {
      const auto s = reduce::parallel_reduce_over<Statistics>(
          &pool, xs, [](Statistics& acc, double x) { acc.add(x); });
      sink = s.mean() + s.variance();
    });
    print_row("  tree-combine, threads=" + std::to_string(threads), par.mean,
              seq.mean / par.mean);
  }
  (void)sink;  // volatile read: the stores above are observable behaviour
  return 0;
}
