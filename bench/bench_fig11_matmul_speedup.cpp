// Figure 11: speedup of the naive MatrixMult program with varying
// fork/join pool size.
//
// Paper (quad Xeon E7-8837, 32 cores): embarrassingly parallel, high
// compute-to-communication ratio (one Delta tuple per output row), so
// "good speedup up to 20 cores".  On a 1-core host the curve is flat.
//
// Usage: bench_fig11_matmul_speedup [n] [max_threads]
#include "apps/matmul/matmul.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::matmul;

  const auto n = static_cast<int>(arg_or(argc, argv, 1, 256));
  const int max_threads = static_cast<int>(arg_or(argc, argv, 2, 16));

  print_header("Fig 11: naive MatrixMult speedup vs pool size (paper: good "
               "speedup to 20 cores)");
  const Matrix a = Matrix::random(n, n, 1);
  const Matrix b = Matrix::random(n, n, 2);

  EngineOptions seq;
  seq.sequential = true;
  const Timing t_seq = measure([&] {
    multiply_jstar(a, b, Kernel::Primitive, seq);
  });
  std::printf("%dx%d, sequential build: %.3f s\n", n, n, t_seq.mean);

  double t1 = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    EngineOptions opts;
    opts.threads = threads;
    const Timing t = measure([&] {
      multiply_jstar(a, b, Kernel::Primitive, opts);
    });
    if (threads == 1) t1 = t.mean;
    std::printf("  threads=%-2d  %8.3f s   relative %5.2fx   absolute "
                "%5.2fx\n",
                threads, t.mean, t1 / t.mean, t_seq.mean / t.mean);
  }
  return 0;
}
