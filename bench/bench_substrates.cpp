// Storage-substrate benchmarks: the relative costs of the Gamma
// structures a table can commit to late (§1.4, §6.2, §6.4) — node-based
// ordered maps vs the flat array-backed tier (core/flat_store.h) — and
// the headline this repo's ISSUE 5 accepts on: scan-heavy query
// throughput of FlatOrderedStore over the default skip-list store at
// 10^6 rows, with the chunked templated path and the per-tuple
// std::function path reported separately.
//
// (Formerly a google-benchmark microsuite; rewritten on the shared
// bench/harness.h so it always builds, emits BENCH_substrates.json for
// the tracked perf trajectory, and can fail the CI smoke when the flat
// tier regresses below the acceptance bar.)
//
// Usage: bench_substrates [rows] [reps] [min_speedup]
//   rows         Gamma tuples for the scan section (default 1000000)
//   reps         timed repetitions per measurement (default 3)
//   min_speedup  exit non-zero if the flat-ordered chunked scan is not
//                at least this many times faster than the skip-list
//                per-tuple scan (default 3)
//
// A second, fixed acceptance bar guards the columnar (SoA) tier of
// ISSUE 7: the per-column kernels (core/column_store.h) must run the
// wide-row residual aggregate at least 4x faster than the flat store's
// chunked scan of the same rows; the measurement lands in the
// `columnar_guard` object of BENCH_substrates.json and the process exits
// non-zero below the bar.  The bar is defined at 1e6 rows (the CI smoke
// scale): there the 80 MB of wide rows stream from memory while the 8 MB
// bound column stays cache-resident, so the ratio is structural rather
// than cache-size luck.  Below 1e6 rows the speedup is reported but not
// enforced — a small smoke run should not fail on a cache artefact.
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "concurrent/skip_list_map.h"
#include "core/column_store.h"
#include "core/engine.h"
#include "core/flat_store.h"
#include "core/simd.h"
#include "core/window_store.h"
#include "sched/fork_join_pool.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace jstar;
using namespace jstar::bench;

struct Row {
  std::int64_t id, group, score;
  auto operator<=>(const Row&) const = default;
};
struct RowHash {
  std::size_t operator()(const Row& r) const {
    return hash_fields(r.id, r.group, r.score);
  }
};

/// The columnar section's tuple: a realistic wide record (80 bytes).  A
/// residual aggregate touches only `group` and `score`, so the SoA
/// kernel streams the 8-byte bound column (plus the few selected scores)
/// where any row-major path drags the whole tuple through the cache.
struct WideRow {
  std::int64_t id, group, score, f3, f4, f5, f6, f7, f8, f9;
  auto operator<=>(const WideRow&) const = default;
};
struct WideHash {
  std::size_t operator()(const WideRow& r) const {
    return hash_fields(r.id, r.group, r.score);
  }
};

constexpr std::int64_t kGroups = 1000;  // 0.1% of rows per group

json::Array g_micro;
json::Array g_scan;

/// One micro row: items/s over `items` operations.
void micro(const std::string& name, std::int64_t items,
           const std::function<void()>& fn, int reps) {
  const Timing t = measure(fn, reps);
  const double ips = static_cast<double>(items) / t.min;
  std::printf("%-40s %10.4f s   %12.0f items/s\n", name.c_str(), t.min, ips);
  g_micro.push_back(json::Object{
      {"name", name}, {"seconds", t.min}, {"items_per_s", ips}});
}

/// One scan row: a full pass over `rows` tuples; returns min seconds.
double scan_row(const std::string& store, const std::string& path,
                std::int64_t rows, const std::function<void()>& fn,
                int reps, double baseline_seconds) {
  const Timing t = measure(fn, reps);
  const double tps = static_cast<double>(rows) / t.min;
  const double speedup =
      baseline_seconds > 0 ? baseline_seconds / t.min : 0.0;
  if (speedup > 0) {
    std::printf("%-14s %-22s %10.4f s   %12.0f tuples/s   %6.1fx\n",
                store.c_str(), path.c_str(), t.min, tps, speedup);
  } else {
    std::printf("%-14s %-22s %10.4f s   %12.0f tuples/s\n", store.c_str(),
                path.c_str(), t.min, tps);
  }
  g_scan.push_back(json::Object{
      {"store", store},
      {"path", path},
      {"seconds", t.min},
      {"tuples_per_s", tps},
      {"speedup_vs_skiplist_fn", speedup},
  });
  return t.min;
}

/// The scan-heavy query every store answers: count one 0.1% group and
/// sum its scores — selective enough that the work is the scan itself.
struct ScanResult {
  std::int64_t count = 0;
  std::int64_t sum = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t rows = arg_or(argc, argv, 1, 1000000);
  const int reps = static_cast<int>(arg_or(argc, argv, 2, 3));
  const double bar = static_cast<double>(arg_or(argc, argv, 3, 3));

  // --- micro substrate costs ------------------------------------------------
  print_header("substrate micro costs (10k inserts per run)");
  constexpr std::int64_t kN = 10000;
  micro("std::map insert", kN, [] {
    std::map<std::int64_t, std::int64_t> m;
    SplitMix64 rng(1);
    for (std::int64_t i = 0; i < kN; ++i) {
      m.emplace(static_cast<std::int64_t>(rng.next_below(1 << 20)), i);
    }
  }, reps);
  micro("skip-list map insert", kN, [] {
    concurrent::SkipListMap<std::int64_t, std::int64_t> m;
    SplitMix64 rng(1);
    for (std::int64_t i = 0; i < kN; ++i) {
      m.insert(static_cast<std::int64_t>(rng.next_below(1 << 20)), i);
    }
  }, reps);
  micro("flat-ordered insert (staged merge)", kN, [] {
    FlatOrderedStore<Row, RowHash> s;
    SplitMix64 rng(1);
    for (std::int64_t i = 0; i < kN; ++i) {
      s.insert(Row{static_cast<std::int64_t>(rng.next_below(1 << 20)), i, i});
    }
  }, reps);
  micro("flat-hash insert (open addressing)", kN, [] {
    FlatHashStore<Row, RowHash> s;
    SplitMix64 rng(1);
    for (std::int64_t i = 0; i < kN; ++i) {
      s.insert(Row{static_cast<std::int64_t>(rng.next_below(1 << 20)), i, i});
    }
  }, reps);
  micro("striped-hash insert (auto stripes)", kN, [] {
    StripedHashStore<Row, RowHash> s;
    SplitMix64 rng(1);
    for (std::int64_t i = 0; i < kN; ++i) {
      s.insert(Row{static_cast<std::int64_t>(rng.next_below(1 << 20)), i, i});
    }
  }, reps);
  micro("epoch-window insert (retiring)", kN, [] {
    EpochWindowStore<Row, RowHash> s([](const Row& r) { return r.group / 100; },
                                     2, RowHash{});
    for (std::int64_t i = 0; i < kN; ++i) s.insert(Row{i, i, i});
  }, reps);

  // --- the headline: scan-heavy queries at `rows` tuples --------------------
  print_header("scan-heavy query throughput at " + std::to_string(rows) +
               " Gamma tuples");

  // Shuffled insert order so the flat store's staging/merge machinery
  // does real work during the load.
  std::vector<std::int64_t> ids(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) ids[static_cast<std::size_t>(i)] = i;
  SplitMix64 shuffle_rng(0x5caff01d);
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[shuffle_rng.next_below(i)]);
  }
  const auto row_of = [](std::int64_t id) {
    return Row{id, id % kGroups, (id * 2654435761) % 1024};
  };

  auto skiplist = std::make_unique<SkipListStore<Row>>();
  auto tree = std::make_unique<TreeSetStore<Row>>();
  auto flat = std::make_unique<FlatOrderedStore<Row, RowHash>>();
  auto flat_hash = std::make_unique<FlatHashStore<Row, RowHash>>();
  {
    WallTimer load;
    for (const std::int64_t id : ids) {
      const Row r = row_of(id);
      skiplist->insert(r);
      tree->insert(r);
      flat->insert(r);
      flat_hash->insert(r);
    }
    std::printf("loaded 4 stores in %.2f s (flat merges: %lld)\n",
                load.seconds(), static_cast<long long>(flat->merges()));
  }

  // One query shape, two execution paths per store.  The per-tuple path
  // is the pre-ISSUE-5 hot loop: a virtual scan crossing a
  // std::function per tuple.  The chunked path pays the type-erased hop
  // once per contiguous span and inlines the predicate in the loop.
  ScanResult expect{};
  skiplist->scan([&](const Row& r) {
    if (r.group == 7) {
      ++expect.count;
      expect.sum += r.score;
    }
  });
  const auto check = [&](const ScanResult& got, const char* who) {
    if (got.count != expect.count || got.sum != expect.sum) {
      std::fprintf(stderr, "MISMATCH %s: count %lld/%lld sum %lld/%lld\n",
                   who, static_cast<long long>(got.count),
                   static_cast<long long>(expect.count),
                   static_cast<long long>(got.sum),
                   static_cast<long long>(expect.sum));
      std::exit(1);
    }
  };
  const auto fn_pass = [&](const GammaStore<Row>& s) {
    ScanResult r;
    s.scan([&r](const Row& row) {
      if (row.group == 7) {
        ++r.count;
        r.sum += row.score;
      }
    });
    return r;
  };
  const auto chunk_pass = [&](const GammaStore<Row>& s) {
    ScanResult r;
    s.scan_chunks([&r](const Row* data, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        if (data[i].group == 7) {
          ++r.count;
          r.sum += data[i].score;
        }
      }
    });
    return r;
  };
  check(fn_pass(*flat), "flat fn");
  check(chunk_pass(*flat), "flat chunks");
  check(chunk_pass(*flat_hash), "flat-hash chunks");
  check(fn_pass(*tree), "tree fn");

  std::printf("%-14s %-22s %12s %17s %9s\n", "store", "path", "seconds",
              "throughput", "speedup");
  const double skiplist_fn = scan_row(
      "skip-list", "per-tuple std::function", rows,
      [&] { (void)fn_pass(*skiplist); }, reps, 0);
  (void)scan_row("tree-set", "per-tuple std::function", rows,
                 [&] { (void)fn_pass(*tree); }, reps, skiplist_fn);
  const double flat_fn = scan_row(
      "flat-ordered", "per-tuple std::function", rows,
      [&] { (void)fn_pass(*flat); }, reps, skiplist_fn);
  const double flat_chunk = scan_row(
      "flat-ordered", "chunked templated", rows,
      [&] { (void)chunk_pass(*flat); }, reps, skiplist_fn);
  const double flat_hash_chunk = scan_row(
      "flat-hash", "chunked templated", rows,
      [&] { (void)chunk_pass(*flat_hash); }, reps, skiplist_fn);

  // Ordered 1% range seek: lower_bound on the contiguous array vs the
  // skip-list's pointer-chasing for_range.
  const std::int64_t span = std::max<std::int64_t>(rows / 100, 1);
  const Row lo = {rows / 2, INT64_MIN, INT64_MIN};
  const Row hi = {rows / 2 + span, INT64_MIN, INT64_MIN};
  const double skiplist_range = scan_row(
      "skip-list", "range seek 1%", span,
      [&] {
        std::int64_t n = 0;
        skiplist->scan_range(lo, hi, [&n](const Row&) { ++n; });
      },
      reps, 0);
  (void)scan_row("flat-ordered", "range seek 1%", span,
                 [&] {
                   std::int64_t n = 0;
                   flat->scan_range(lo, hi, [&n](const Row&) { ++n; });
                 },
                 reps, skiplist_range);

  // --- retract-heavy churn (the ISSUE 8 bar) --------------------------------
  // The same `rows` live tuples, but loaded through heavy churn: one
  // victim row inserted and later retracted for every two live inserts —
  // retractions totalling 50% of the final live set.  Victims are erased
  // ~4k operations after insertion, so most have been merged into the
  // sorted run (or rehashed into the open-addressing table) and take the
  // deferred path: dead-set anti-merge for the flat tier, tombstone
  // purge for the hash tier.  The bar: the chunked scan over the churned
  // store must stay within 0.8x of the insert-only store's scan — erase
  // is allowed to defer physical removal, but never to leave permanent
  // drag on the hot read path.
  print_header("retract-heavy churn at " + std::to_string(rows) +
               " live rows (50% retractions)");
  auto churn_flat = std::make_unique<FlatOrderedStore<Row, RowHash>>();
  auto churn_hash = std::make_unique<FlatHashStore<Row, RowHash>>();
  std::int64_t churn_retractions = 0;
  {
    WallTimer load;
    std::vector<Row> victims;
    victims.reserve(ids.size() / 2 + 1);
    std::size_t next_erase = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const Row r = row_of(ids[i]);
      churn_flat->insert(r);
      churn_hash->insert(r);
      if (i % 2 == 1) {
        // Victim ids live in a disjoint range above the live rows.
        const Row v = row_of(static_cast<std::int64_t>(i) + rows);
        churn_flat->insert(v);
        churn_hash->insert(v);
        victims.push_back(v);
        if (victims.size() - next_erase > 4096) {
          churn_flat->erase(victims[next_erase]);
          churn_hash->erase(victims[next_erase]);
          ++next_erase;
          ++churn_retractions;
        }
      }
    }
    for (; next_erase < victims.size(); ++next_erase) {
      churn_flat->erase(victims[next_erase]);
      churn_hash->erase(victims[next_erase]);
      ++churn_retractions;
    }
    std::printf(
        "churn-loaded 2 stores in %.2f s (%lld retractions, flat merges: "
        "%lld)\n",
        load.seconds(), static_cast<long long>(churn_retractions),
        static_cast<long long>(churn_flat->merges()));
  }
  // Same live set as the insert-only stores, so the same aggregate.
  check(chunk_pass(*churn_flat), "churned flat chunks");
  check(chunk_pass(*churn_hash), "churned flat-hash chunks");
  const double churn_flat_chunk = scan_row(
      "flat-ordered", "chunked after churn", rows,
      [&] { (void)chunk_pass(*churn_flat); }, reps, skiplist_fn);
  const double churn_hash_chunk = scan_row(
      "flat-hash", "chunked after churn", rows,
      [&] { (void)chunk_pass(*churn_hash); }, reps, skiplist_fn);
  const double churn_scan_ratio = flat_chunk / churn_flat_chunk;
  const double churn_hash_scan_ratio = flat_hash_chunk / churn_hash_chunk;

  // --- columnar kernels vs row-major chunked scans (the ISSUE 7 bar) --------
  // Same residual full-scan aggregate (count one 0.1% group + sum its
  // scores), three executions over 80-byte wide rows: the flat store's
  // chunked templated loop, the columnar store reconstituting chunks
  // (sanity: SoA without pushdown buys nothing), and the columnar
  // kernels — bitmap select on the group column, gather-sum on the score
  // column, tuples never materialised.
  print_header("columnar kernels at " + std::to_string(rows) +
               " wide rows (80 B each)");
  const auto wide_of = [](std::int64_t id) {
    return WideRow{id,      id % kGroups, (id * 2654435761) % 1024,
                   id * 3,  id * 5,       id * 7,
                   id * 9,  id * 11,      id * 13,
                   id * 17};
  };
  auto wide_flat = std::make_unique<FlatOrderedStore<WideRow, WideHash>>();
  auto wide_col = std::make_unique<
      ColumnStore<WideRow, WideHash, std::int64_t WideRow::*,
                  std::int64_t WideRow::*, std::int64_t WideRow::*,
                  std::int64_t WideRow::*, std::int64_t WideRow::*,
                  std::int64_t WideRow::*, std::int64_t WideRow::*,
                  std::int64_t WideRow::*, std::int64_t WideRow::*,
                  std::int64_t WideRow::*>>(
      WideHash{}, &WideRow::id, &WideRow::group, &WideRow::score,
      &WideRow::f3, &WideRow::f4, &WideRow::f5, &WideRow::f6, &WideRow::f7,
      &WideRow::f8, &WideRow::f9);
  {
    WallTimer load;
    for (const std::int64_t id : ids) {
      const WideRow r = wide_of(id);
      wide_flat->insert(r);
      wide_col->insert(r);
    }
    std::printf("loaded 2 wide stores in %.2f s\n", load.seconds());
  }
  const auto wide_chunk_pass = [&](const GammaStore<WideRow>& s) {
    ScanResult r;
    s.scan_chunks([&r](const WideRow* data, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        if (data[i].group == 7) {
          ++r.count;
          r.sum += data[i].score;
        }
      }
    });
    return r;
  };
  const std::vector<ColumnarOps<WideRow>::Bound> wide_bounds{
      {query::field_tag(&WideRow::group), 7, 7}};
  const void* wide_score_tag = query::field_tag(&WideRow::score);
  const auto wide_kernel_pass = [&] {
    // One gather answers both aggregates: the selection count arrives via
    // KernelStats, the sum via the streamed value spans — a single pass
    // over the bound column, never touching the other eight fields.
    ScanResult r;
    ColumnarOps<WideRow>::KernelStats ks;
    (void)wide_col->kernel_gather_i64(
        wide_bounds, wide_score_tag,
        [&r](const std::int64_t* v, std::size_t n) {
          for (std::size_t i = 0; i < n; ++i) r.sum += v[i];
        },
        &ks);
    r.count = ks.selected;
    return r;
  };
  const ScanResult wide_expect = wide_chunk_pass(*wide_flat);
  const auto wide_check = [&](const ScanResult& got, const char* who) {
    if (got.count != wide_expect.count || got.sum != wide_expect.sum) {
      std::fprintf(stderr, "MISMATCH %s: count %lld/%lld sum %lld/%lld\n",
                   who, static_cast<long long>(got.count),
                   static_cast<long long>(wide_expect.count),
                   static_cast<long long>(got.sum),
                   static_cast<long long>(wide_expect.sum));
      std::exit(1);
    }
  };
  wide_check(wide_chunk_pass(*wide_col), "columnar chunks");
  wide_check(wide_kernel_pass(), "columnar kernels");

  std::printf("%-14s %-22s %12s %17s %9s\n", "store", "path", "seconds",
              "throughput", "speedup");
  const double wide_flat_chunk = scan_row(
      "flat-ordered", "chunked templated", rows,
      [&] { (void)wide_chunk_pass(*wide_flat); }, reps, 0);
  (void)scan_row("columnar", "chunked reconstitute", rows,
                 [&] { (void)wide_chunk_pass(*wide_col); }, reps,
                 wide_flat_chunk);
  const double wide_kernels = scan_row(
      "columnar", "kernels (count+sum)", rows, [&] { (void)wide_kernel_pass(); },
      reps, wide_flat_chunk);
  const double columnar_kernel_speedup = wide_flat_chunk / wide_kernels;

  // --- SIMD dispatch + morsel scaling (the two-axis execution layer) --------
  // Axis 1: the same single-bound kernel_count on the loaded group
  // column, once at the host's runtime-dispatched level and once pinned
  // to the portable-scalar table through ExecHints — the `simd_guard`
  // bar (vectorized >= 1.5x scalar at >= 1e6 rows) is enforced only on
  // AVX2/AVX-512 hosts; scalar and NEON hosts record the ratio and
  // auto-skip.  Axis 2: the same kernel over temporary 1/2/4/8-worker
  // fork/join pools, against the sequential (no-pool) pass — fixed
  // 64Ki-row morsels, so the work partition is identical at every width.
  print_header("simd dispatch + morsel scaling at " + std::to_string(rows) +
               " rows (host level: " +
               simd::to_string(simd::active_level()) + ")");
  const auto count_only_pass = [&] {
    return wide_col->kernel_count(wide_bounds).selected;
  };
  wide_col->set_exec_hints(ExecHints{nullptr, /*simd=*/true, false});
  if (count_only_pass() != wide_expect.count) {
    std::fprintf(stderr, "MISMATCH simd kernel_count\n");
    return 1;
  }
  std::printf("%-14s %-22s %12s %17s %9s\n", "store", "path", "seconds",
              "throughput", "speedup");
  const double simd_scalar_s = [&] {
    wide_col->set_exec_hints(ExecHints{nullptr, /*simd=*/false, false});
    if (count_only_pass() != wide_expect.count) {
      std::fprintf(stderr, "MISMATCH scalar kernel_count\n");
      std::exit(1);
    }
    return scan_row("columnar", "count, pinned scalar", rows,
                    [&] { (void)count_only_pass(); }, reps, 0);
  }();
  const double simd_vector_s = [&] {
    wide_col->set_exec_hints(ExecHints{nullptr, /*simd=*/true, false});
    return scan_row(
        "columnar",
        std::string("count, ") + simd::to_string(wide_col->dispatch_level()),
        rows, [&] { (void)count_only_pass(); }, reps, simd_scalar_s);
  }();
  const double simd_speedup = simd_scalar_s / simd_vector_s;

  json::Array morsel_scaling;
  for (const int workers : {1, 2, 4, 8}) {
    sched::ForkJoinPool pool(workers);
    wide_col->set_exec_hints(ExecHints{&pool, true, true});
    if (count_only_pass() != wide_expect.count) {
      std::fprintf(stderr, "MISMATCH morsel kernel_count\n");
      return 1;
    }
    const double s = scan_row(
        "columnar", "count, " + std::to_string(workers) + " workers", rows,
        [&] { (void)count_only_pass(); }, reps, simd_vector_s);
    morsel_scaling.push_back(json::Object{
        {"workers", workers},
        {"seconds", s},
        {"speedup_vs_sequential", simd_vector_s / s},
        {"morsels", static_cast<std::int64_t>(
                        morsel::count(static_cast<std::size_t>(rows)))},
    });
  }
  // Restore the defaults (no pool, active dispatch) for any later use.
  wide_col->set_exec_hints(ExecHints{nullptr, true, true});

  // --- Table-level end-to-end: count_if through the engine ------------------
  print_header("Table<T>::count_if end-to-end (" + std::to_string(rows) +
               " rows per table)");
  const auto build_table = [&](bool flat_preset) {
    auto eng = std::make_unique<Engine>(EngineOptions{.sequential = true});
    TableDecl<Row> decl("Row");
    decl.orderby_lit("R").hash(RowHash{});
    if (flat_preset) decl.flat_store();
    auto* table = &eng->table(std::move(decl));
    for (const std::int64_t id : ids) eng->put(*table, row_of(id));
    (void)eng->run();
    return std::make_pair(std::move(eng), table);
  };
  auto [eng_default, table_default] = build_table(false);
  auto [eng_flat, table_flat] = build_table(true);
  const auto count_pass = [](const Table<Row>& t) {
    return t.count_if([](const Row& r) { return r.group == 7; });
  };
  if (count_pass(*table_default) != count_pass(*table_flat) ||
      count_pass(*table_flat) != expect.count) {
    std::fprintf(stderr, "MISMATCH table count_if\n");
    return 1;
  }
  const double table_default_s = scan_row(
      "table/tree-set", "count_if(lambda)", rows,
      [&] { (void)count_pass(*table_default); }, reps, 0);
  const double table_flat_s = scan_row(
      "table/flat", "count_if(lambda)", rows,
      [&] { (void)count_pass(*table_flat); }, reps, table_default_s);

  // Typed-predicate count over the wide rows: the flat preset plans a
  // residual full scan (chunked, predicate inlined); the columns() preset
  // compiles the same predicate to the bitmap-count kernel.  Same query
  // text, the declaration alone moves it between execution tiers.
  const auto build_wide_table = [&](bool columnar) {
    auto eng = std::make_unique<Engine>(EngineOptions{.sequential = true});
    TableDecl<WideRow> decl("WideRow");
    decl.orderby_lit("W").hash(WideHash{});
    if (columnar) {
      decl.columns(&WideRow::id, &WideRow::group, &WideRow::score,
                   &WideRow::f3, &WideRow::f4, &WideRow::f5, &WideRow::f6,
                   &WideRow::f7, &WideRow::f8, &WideRow::f9);
    } else {
      decl.flat_store();
    }
    auto* table = &eng->table(std::move(decl));
    for (const std::int64_t id : ids) eng->put(*table, wide_of(id));
    (void)eng->run();
    return std::make_pair(std::move(eng), table);
  };
  auto [weng_flat, wtable_flat] = build_wide_table(false);
  auto [weng_col, wtable_col] = build_wide_table(true);
  const auto wide_pred = query::eq(&WideRow::group, std::int64_t{7});
  if (wtable_flat->count_if(wide_pred) != wide_expect.count ||
      wtable_col->count_if(wide_pred) != wide_expect.count) {
    std::fprintf(stderr, "MISMATCH wide table count_if\n");
    return 1;
  }
  const double wtable_flat_s = scan_row(
      "table/flat", "count_if(typed pred)", rows,
      [&] { (void)wtable_flat->count_if(wide_pred); }, reps, 0);
  const double wtable_col_s = scan_row(
      "table/columnar", "count_if(typed pred)", rows,
      [&] { (void)wtable_col->count_if(wide_pred); }, reps, wtable_flat_s);
  const double table_columnar_count_speedup = wtable_flat_s / wtable_col_s;

  // --- headline + JSON ------------------------------------------------------
  const double flat_scan_speedup = skiplist_fn / flat_chunk;
  const double flat_pertuple_speedup = skiplist_fn / flat_fn;
  // The columnar bar is independent of the legacy flat bar: kernels must
  // beat the flat chunked scan on the same wide-row aggregate by 4x.  It
  // is only *enforced* at the scale it is defined at (>= 1e6 rows, the
  // CI smoke): below that the whole wide store can sit in L3 and the
  // ratio measures cache size, not layout — small local runs still
  // report the number but do not fail on it.
  constexpr double kColumnarBar = 4.0;
  constexpr std::int64_t kColumnarBarRows = 1000000;
  // The churn bar guards the retraction path (ISSUE 8): a store that
  // absorbed retractions totalling 50% of its live set must still scan
  // at >= 0.8x the insert-only store.  Like the columnar bar it is only
  // enforced at CI-smoke scale.
  constexpr double kChurnBar = 0.8;
  constexpr std::int64_t kChurnBarRows = 1000000;
  // The simd bar compares the *same* kernel_count at the host's
  // runtime-dispatched level against the pinned portable-scalar table.
  // It is only meaningful where wide vectors exist, so it is enforced on
  // AVX2/AVX-512 hosts at CI-smoke scale and auto-skipped (recorded,
  // not failed) on scalar and NEON hosts or when JSTAR_SIMD=off.
  constexpr double kSimdBar = 1.5;
  constexpr std::int64_t kSimdBarRows = 1000000;
  const simd::Level simd_level = simd::active_level();
  const bool simd_guard_enforced =
      rows >= kSimdBarRows && (simd_level == simd::Level::Avx2 ||
                               simd_level == simd::Level::Avx512);
  std::printf(
      "\nheadline: flat-ordered chunked scan %.1fx over skip-list "
      "per-tuple std::function at %lld rows (per-tuple flat path: %.1fx; "
      "bar: %.1fx)\n",
      flat_scan_speedup, static_cast<long long>(rows),
      flat_pertuple_speedup, bar);
  std::printf(
      "headline: columnar kernels %.1fx over flat-ordered chunked scan on "
      "the wide-row aggregate (table-level count_if: %.1fx; bar: %.1fx)\n",
      columnar_kernel_speedup, table_columnar_count_speedup, kColumnarBar);
  std::printf(
      "headline: chunked scan after 50%% retraction churn runs at %.2fx "
      "the insert-only flat-ordered scan (flat-hash: %.2fx; bar: %.1fx)\n",
      churn_scan_ratio, churn_hash_scan_ratio, kChurnBar);
  std::printf(
      "headline: %s kernel_count %.1fx over pinned scalar (bar: %.1fx, "
      "%s)\n",
      simd::to_string(simd_level), simd_speedup, kSimdBar,
      simd_guard_enforced ? "enforced" : "recorded only on this host");

  const json::Value doc = json::Object{
      {"bench", "substrates"},
      {"rows", rows},
      {"reps", reps},
      {"micro", std::move(g_micro)},
      {"scan", std::move(g_scan)},
      {"headline",
       json::Object{
           {"flat_scan_speedup", flat_scan_speedup},
           {"flat_pertuple_speedup", flat_pertuple_speedup},
           {"flat_hash_scan_speedup", skiplist_fn / flat_hash_chunk},
           {"table_count_if_speedup", table_default_s / table_flat_s},
           {"bar", bar},
           {"rows", rows},
       }},
      {"columnar_guard",
       json::Object{
           {"kernel_speedup_vs_flat_chunked", columnar_kernel_speedup},
           {"table_count_if_speedup", table_columnar_count_speedup},
           {"flat_chunked_seconds", wide_flat_chunk},
           {"kernel_seconds", wide_kernels},
           {"bar", kColumnarBar},
           {"rows", rows},
       }},
      {"churn_guard",
       json::Object{
           {"scan_ratio_vs_insert_only", churn_scan_ratio},
           {"flat_hash_scan_ratio_vs_insert_only", churn_hash_scan_ratio},
           {"insert_only_seconds", flat_chunk},
           {"churned_seconds", churn_flat_chunk},
           {"retractions", churn_retractions},
           {"bar", kChurnBar},
           {"rows", rows},
       }},
      {"simd",
       json::Object{
           {"detect_level", simd::to_string(simd::detect_level())},
           {"dispatch_level", simd::to_string(simd_level)},
           {"morsels_env_on", simd::morsels_env_on()},
           {"morsel_scaling", std::move(morsel_scaling)},
       }},
      {"simd_guard",
       json::Object{
           {"kernel_count_speedup_vs_scalar", simd_speedup},
           {"scalar_seconds", simd_scalar_s},
           {"vector_seconds", simd_vector_s},
           {"bar", kSimdBar},
           {"rows", rows},
           {"enforced", simd_guard_enforced},
           {"skipped", !simd_guard_enforced},
       }},
  };
  std::FILE* f = std::fopen("BENCH_substrates.json", "w");
  if (f != nullptr) {
    const std::string text = json::write(doc);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_substrates.json\n");
  } else {
    std::printf("could not write BENCH_substrates.json\n");
  }

  if (flat_scan_speedup < bar) {
    std::fprintf(stderr,
                 "FAIL: flat-ordered chunked scan speedup %.2fx is below "
                 "the %.1fx acceptance bar\n",
                 flat_scan_speedup, bar);
    return 1;
  }
  if (rows >= kColumnarBarRows && columnar_kernel_speedup < kColumnarBar) {
    std::fprintf(stderr,
                 "FAIL: columnar kernel speedup %.2fx is below the %.1fx "
                 "acceptance bar\n",
                 columnar_kernel_speedup, kColumnarBar);
    return 1;
  }
  if (rows >= kChurnBarRows && churn_scan_ratio < kChurnBar) {
    std::fprintf(stderr,
                 "FAIL: post-churn chunked scan ratio %.2fx is below the "
                 "%.1fx acceptance bar\n",
                 churn_scan_ratio, kChurnBar);
    return 1;
  }
  if (simd_guard_enforced && simd_speedup < kSimdBar) {
    std::fprintf(stderr,
                 "FAIL: %s kernel_count speedup %.2fx over pinned scalar "
                 "is below the %.1fx acceptance bar\n",
                 simd::to_string(simd_level), simd_speedup, kSimdBar);
    return 1;
  }
  return 0;
}
