// Substrate microbenchmarks (google-benchmark): the building blocks whose
// relative costs explain the paper's observations — concurrent vs
// sequential ordered maps (the ~35% absolute-speedup gap of §6.2), Delta
// tree inserts, fork/join dispatch overhead, Disruptor throughput, CSV
// parse rate, the Statistics reducer and the FM prover.
#include <benchmark/benchmark.h>

#include <map>
#include <thread>

#include "concurrent/skip_list_map.h"
#include "core/delta_tree.h"
#include "core/striped_delta_tree.h"
#include "core/window_store.h"
#include "csv/csv.h"
#include "disruptor/mp_ring_buffer.h"
#include "disruptor/ring_buffer.h"
#include "reduce/parallel.h"
#include "sched/fork_join_pool.h"
#include "smt/causality.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace {

using namespace jstar;

void BM_StdMapInsert(benchmark::State& state) {
  for (auto _ : state) {
    std::map<std::int64_t, std::int64_t> m;
    SplitMix64 rng(1);
    for (int i = 0; i < 10000; ++i) {
      m.emplace(static_cast<std::int64_t>(rng.next_below(1 << 20)), i);
    }
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_StdMapInsert);

// The "concurrent structures are slower sequentially" effect behind the
// 35% relative-vs-absolute speedup gap (§6.2).
void BM_SkipListMapInsert(benchmark::State& state) {
  for (auto _ : state) {
    concurrent::SkipListMap<std::int64_t, std::int64_t> m;
    SplitMix64 rng(1);
    for (int i = 0; i < 10000; ++i) {
      m.insert(static_cast<std::int64_t>(rng.next_below(1 << 20)), i);
    }
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SkipListMapInsert);

void BM_SkipListContains(benchmark::State& state) {
  concurrent::SkipListMap<std::int64_t, std::int64_t> m;
  for (std::int64_t i = 0; i < 10000; ++i) m.insert(i * 7, i);
  SplitMix64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.contains(static_cast<std::int64_t>(rng.next_below(70000))));
  }
}
BENCHMARK(BM_SkipListContains);

void BM_DeltaTreeInsertPop(benchmark::State& state) {
  const bool concurrent_tree = state.range(0) != 0;
  for (auto _ : state) {
    std::unique_ptr<DeltaTree> tree;
    if (concurrent_tree) {
      tree = std::make_unique<SkipDeltaTree>();
    } else {
      tree = std::make_unique<MapDeltaTree>();
    }
    for (std::int64_t i = 0; i < 2000; ++i) {
      DeltaKey k;
      k.push_back(i % 97);
      benchmark::DoNotOptimize(&tree->get_or_insert(k));
    }
    DeltaKey k;
    std::unique_ptr<BatchNode> node;
    while (tree->pop_min(k, node)) benchmark::DoNotOptimize(node.get());
  }
  state.SetLabel(concurrent_tree ? "skiplist" : "treemap");
}
BENCHMARK(BM_DeltaTreeInsertPop)->Arg(0)->Arg(1);

void BM_ForkJoinDispatch(benchmark::State& state) {
  sched::ForkJoinPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> n{0};
    pool.for_each_index(256, [&](std::int64_t) {
      n.fetch_add(1, std::memory_order_relaxed);
    }, 1);
    benchmark::DoNotOptimize(n.load());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ForkJoinDispatch)->Arg(1)->Arg(4);

void BM_DisruptorSpscThroughput(benchmark::State& state) {
  for (auto _ : state) {
    disruptor::RingBuffer<std::int64_t> ring(
        1024, disruptor::WaitStrategy::Yielding);
    const int cid = ring.add_consumer();
    constexpr std::int64_t kEvents = 100000;
    std::thread consumer([&] {
      std::int64_t next = 0;
      while (next < kEvents) {
        const std::int64_t hi = ring.wait_for(next);
        ring.commit(cid, hi);
        next = hi + 1;
      }
    });
    std::int64_t sent = 0;
    while (sent < kEvents) {
      const std::int64_t n = std::min<std::int64_t>(256, kEvents - sent);
      const std::int64_t hi = ring.claim(n);
      for (std::int64_t i = 0; i < n; ++i) ring.slot(hi - n + 1 + i) = sent++;
      ring.publish(hi);
    }
    consumer.join();
    state.SetItemsProcessed(state.items_processed() + kEvents);
  }
}
BENCHMARK(BM_DisruptorSpscThroughput);

void BM_CsvParse(benchmark::State& state) {
  std::string data;
  for (int i = 0; i < 20000; ++i) {
    data += std::to_string(i) + "," + std::to_string(i * 3) + "," +
            std::to_string(i % 12 + 1) + "\n";
  }
  csv::Buffer buf(std::move(data));
  for (auto _ : state) {
    csv::RecordReader reader(buf, {0, buf.size()});
    std::vector<csv::Slice> fields;
    std::int64_t sum = 0;
    while (reader.next(fields)) sum += fields[1].to_int64();
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_CsvParse);

void BM_StatisticsReduce(benchmark::State& state) {
  SplitMix64 rng(3);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.next_double();
  for (auto _ : state) {
    Statistics s;
    for (double x : xs) s.add(x);
    benchmark::DoNotOptimize(s.mean());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_StatisticsReduce);

void BM_CausalityProof(benchmark::State& state) {
  using namespace jstar::smt;
  for (auto _ : state) {
    RuleSpec rule;
    rule.name = "settle";
    const VarId d = rule.vars.fresh("d");
    const VarId w = rule.vars.fresh("w");
    rule.premise.push_back(ge(LinExpr::var(w), LinExpr(1)));
    rule.trigger_key = {LinExpr(0), LinExpr::var(d), LinExpr(0)};
    rule.puts.push_back(
        {"Estimate",
         {LinExpr(0), LinExpr::var(d) + LinExpr::var(w), LinExpr(0)},
         {}});
    CausalityChecker checker;
    benchmark::DoNotOptimize(checker.check(rule));
  }
}
BENCHMARK(BM_CausalityProof);


// Lock-striped Delta tree vs the skip list, uncontended single-thread
// (contention curves live in bench_delta_scalability).
void BM_StripedDeltaInsertPop(benchmark::State& state) {
  const int stripes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StripedDeltaTree tree(stripes);
    for (std::int64_t i = 0; i < 100; ++i) {
      DeltaKey k;
      k.push_back(i % 10);
      k.push_back(i);
      tree.get_or_insert(k);
    }
    DeltaKey key;
    std::unique_ptr<BatchNode> node;
    while (tree.pop_min(key, node)) {
    }
  }
  state.SetLabel("stripes=" + std::to_string(stripes));
}
BENCHMARK(BM_StripedDeltaInsertPop)->Arg(1)->Arg(8)->Arg(64);

// Multi-producer ring, single-threaded claim+publish+consume round.
void BM_DisruptorMpThroughput(benchmark::State& state) {
  disruptor::MpRingBuffer<std::int64_t> ring(1024,
                                             disruptor::WaitStrategy::BusySpin);
  const int cid = ring.add_consumer();
  std::int64_t produced = 0;
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      const std::int64_t s = ring.claim();
      ring.slot(s) = i;
      ring.publish(s);
      ++produced;
    }
    const std::int64_t hi = ring.wait_for(produced - 1);
    ring.commit(cid, hi);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DisruptorMpThroughput);

// Epoch-window store: insert throughput with continuous retirement.
void BM_EpochWindowInsert(benchmark::State& state) {
  struct Cell {
    std::int64_t iter, idx;
    auto operator<=>(const Cell&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const Cell& c) const {
      return hash_fields(c.iter, c.idx);
    }
  };
  for (auto _ : state) {
    EpochWindowStore<Cell, CellHash> store(
        [](const Cell& c) { return c.iter; }, 2);
    for (std::int64_t i = 0; i < 10000; ++i) {
      store.insert({i / 100, i % 100});
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EpochWindowInsert);

// Parallel tree-reduce dispatch overhead at small n (the fixed cost of
// the §5.2 strategy).
void BM_ParallelReduceSmall(benchmark::State& state) {
  sched::ForkJoinPool pool(4);
  std::vector<double> xs(1000, 1.5);
  for (auto _ : state) {
    const auto s = reduce::parallel_reduce_over<Statistics>(
        &pool, xs, [](Statistics& acc, double x) { acc.add(x); });
    benchmark::DoNotOptimize(s.mean());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ParallelReduceSmall);

// JSON round-trip of a run-log-sized document.
void BM_JsonRoundTrip(benchmark::State& state) {
  json::Array tables;
  for (int i = 0; i < 20; ++i) {
    tables.push_back(json::Object{{"name", "T" + std::to_string(i)},
                                  {"puts", 123456},
                                  {"fires", 789},
                                  {"orderby", "(Int, seq t)"}});
  }
  const json::Value doc = json::Object{{"program", "bench"},
                                       {"tables", std::move(tables)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::parse(json::write(doc)));
  }
}
BENCHMARK(BM_JsonRoundTrip);

}  // namespace

BENCHMARK_MAIN();
