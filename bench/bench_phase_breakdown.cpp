// §6.3 phase breakdown of the optimised PvWatts program (1 thread):
//
// Paper percentages:   16.9% reading/parsing the input file,
//                      63.7% creating PvWatts tuples + Gamma insert,
//                       3.8% SumMonth tuples into the Delta tree,
//                      15.6% running the Statistics reducer.
// From these the paper derives the Amdahl bound 4.2x for parallelising
// everything but the reader (1 / (0.169 + (1-0.169)/12)).
//
// This bench reproduces the instrumented single-thread run, prints the
// measured percentages and recomputes the Amdahl bound from them.
//
// Usage: bench_phase_breakdown [records]
#include "apps/pvwatts/pvwatts.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::pvwatts;

  const std::int64_t records = arg_or(argc, argv, 1, 12 * 30 * 24 * 30);
  const auto input = generate_csv(records, InputOrder::MonthMajor);

  print_header("§6.3 phase breakdown of optimised PvWatts, 1 thread "
               "(paper: 16.9/63.7/3.8/15.6 %)");

  JStarConfig cfg;
  cfg.engine.sequential = true;  // single-threaded, as in the paper's run
  const Result r = run_jstar_phased(input, cfg);

  const auto& p = r.phases;
  const double total =
      p.read_parse + p.gamma_insert + p.delta_insert + p.reduce;
  std::printf("  %-42s %8.3f s  %5.1f %%   (paper: 16.9%%)\n",
              "reading and parsing the input", p.read_parse,
              100 * p.read_parse / total);
  std::printf("  %-42s %8.3f s  %5.1f %%   (paper: 63.7%%)\n",
              "creating PvWatts tuples + Gamma insert", p.gamma_insert,
              100 * p.gamma_insert / total);
  std::printf("  %-42s %8.3f s  %5.1f %%   (paper:  3.8%%)\n",
              "SumMonth tuples into the Delta tree", p.delta_insert,
              100 * p.delta_insert / total);
  std::printf("  %-42s %8.3f s  %5.1f %%   (paper: 15.6%%)\n",
              "Statistics reducer over each month", p.reduce,
              100 * p.reduce / total);

  const double f_serial = p.read_parse / total;
  const double amdahl = 1.0 / (f_serial + (1.0 - f_serial) / 12.0);
  std::printf("\n  Amdahl bound with 1 reader + 12 consumers: %.2fx "
              "(paper: 4.2x)\n", amdahl);
  return 0;
}
