// Figure 13: speedup of the Median-Finding program with varying fork/join
// pool size.
//
// Paper (quad Xeon E7-8837, 32 cores): good speedup, 8.6x up to 12 cores
// and a gradual climb to 14x at 32 cores, enabled by the two-copy native
// array Gamma structure and -noDelta Data.
//
// Usage: bench_fig13_median_speedup [n] [max_threads]
#include "apps/median/median.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::median;

  const std::int64_t n = arg_or(argc, argv, 1, 4000000);
  const int max_threads = static_cast<int>(arg_or(argc, argv, 2, 16));

  print_header("Fig 13: Median speedup vs pool size (paper: 8.6x @ 12, "
               "14x @ 32 cores)");
  const auto values = random_values(n, 7);
  std::printf("%lld doubles\n", static_cast<long long>(n));

  JStarConfig seq;
  seq.engine.sequential = true;
  const Timing t_seq = measure([&] { median_jstar(values, seq); });
  std::printf("sequential build: %.3f s\n", t_seq.mean);

  double t1 = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    JStarConfig cfg;
    cfg.engine.threads = threads;
    cfg.regions = threads * 2;
    const Timing t = measure([&] { median_jstar(values, cfg); });
    if (threads == 1) t1 = t.mean;
    std::printf("  threads=%-2d  %8.3f s   relative %5.2fx   absolute "
                "%5.2fx\n",
                threads, t.mean, t1 / t.mean, t_seq.mean / t.mean);
  }
  return 0;
}
