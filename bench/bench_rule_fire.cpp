// Rule-firing benchmarks for batch-at-a-time emission (emit buffers +
// adaptive fire dispatch, core/table.h): the engine-level cost of moving
// rule-derived tuples into the Delta tree, which §6.5 diagnoses as the
// scalability wall ("several million Estimate tuples through the Delta
// tree").  Two workloads, two acceptance bars:
//
//  * wide: a few wide strata (every tuple of a level shares one
//    causality class), each tuple deriving two next-level tuples that
//    collide heavily — the emit-heavy shape where the direct path pays a
//    Delta lookup + node lock + dedup probe per put while the buffered
//    path stages records thread-locally and bulk-appends once per fire
//    phase.  Bar (`fire_guard.wide`): buffered >= 1.3x direct at the
//    enforcement scale (>= 1e6 derived tuples).  Also reports buffered
//    wall time at 1/2/4/8 workers (recorded, not enforced: this
//    container exposes one core, see EXPERIMENTS.md).
//
//  * deep: a long chain of tiny batches (4 tuples per causality level) —
//    the dijkstra-like shape where the fire phase used to pay a pool
//    round-trip (task enqueue + worker wake + join) per hop.  Bar
//    (`fire_guard.inline`): the adaptive inline path (EngineOptions::
//    inline_fire_cutoff = 16) >= 1.2x over the legacy always-dispatch
//    baseline (cutoff 0) on the same parallel engine.
//
// Usage: bench_rule_fire [rows] [reps]
//   rows  derived-tuple scale for the wide workload (default 1000000);
//         bars are enforced only at >= 1e6 (below that the run records
//         the ratios without failing, like the other bench guards)
//   reps  timed repetitions per measurement (default 3)
//
// Writes BENCH_rule_fire.json; exits non-zero when an enforced bar is
// missed.
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "core/engine.h"
#include "util/json.h"

namespace {

using namespace jstar;
using namespace jstar::bench;

struct Tok {
  std::int64_t level, g, i;
  auto operator<=>(const Tok&) const = default;
};

// --- wide emit-heavy workload ----------------------------------------------

constexpr std::int64_t kWideLevels = 8;
constexpr std::int64_t kWideGroups = 256;  // causality classes per stratum
constexpr std::int64_t kWideFanout = 8;    // puts per fired tuple

/// One fixpoint of the wide workload: W tuples per level spread over 256
/// causality classes (orderby seq g), each fired tuple deriving 8
/// colliding tuples into one next-level class.  With hundreds of keys in
/// flight the Delta tree probe is a real ordered-structure descent, so
/// the direct path pays (probe + node lock + dedup check) per put while
/// the buffered path groups the ~8x duplicate emission thread-locally
/// and resolves each touched key once per flush — the §6.5 "millions of
/// tuples through the Delta tree" shape.  Returns the run report so
/// callers can sanity-check the emit counters.
RunReport run_wide(std::int64_t width, const EngineOptions& opts,
                   std::size_t* gamma_out = nullptr) {
  Engine eng(opts);
  const std::int64_t perg = width / kWideGroups;  // ids per class
  auto& tok = eng.table(TableDecl<Tok>("Tok")
                            .orderby_lit("T")
                            .orderby_seq("level", &Tok::level)
                            .orderby_seq("g", &Tok::g)
                            .orderby_par("i")
                            .hash([](const Tok& t) {
                              return hash_fields(t.level, t.g, t.i);
                            }));
  eng.rule(tok, "derive", [&tok, perg](RuleCtx& ctx, const Tok& t) {
    if (t.level + 1 >= kWideLevels) return;
    const std::int64_t g2 = (t.g * 31 + 1) % kWideGroups;
    for (std::int64_t f = 0; f < kWideFanout; ++f) {
      tok.put(ctx,
              Tok{t.level + 1, g2, (t.i * 2654435761LL + f * 7 + 1) % perg});
    }
  });
  for (std::int64_t g = 0; g < kWideGroups; ++g) {
    for (std::int64_t i = 0; i < perg; ++i) eng.put(tok, Tok{0, g, i});
  }
  const RunReport r = eng.run();
  if (gamma_out != nullptr) *gamma_out = tok.gamma_size();
  return r;
}

// --- deep small-batch chain workload ---------------------------------------

constexpr std::int64_t kDeepWidth = 4;  // tuples per causality level

/// A chain of `levels` 4-tuple batches: each batch's fire work (4 tuples
/// x 1 rule) sits under the inline cutoff, so the adaptive path runs it
/// on the coordinator while the cutoff-0 baseline dispatches every hop.
std::size_t run_deep(std::int64_t levels, const EngineOptions& opts) {
  Engine eng(opts);
  auto& tok = eng.table(TableDecl<Tok>("Tok")
                            .orderby_lit("T")
                            .orderby_seq("level", &Tok::level)
                            .orderby_par("i")
                            .hash([](const Tok& t) {
                              return hash_fields(t.level, t.i);
                            }));  // g unused: one causality class per level
  eng.rule(tok, "hop", [&tok, levels](RuleCtx& ctx, const Tok& t) {
    if (t.level + 1 < levels) tok.put(ctx, Tok{t.level + 1, 0, t.i});
  });
  for (std::int64_t i = 0; i < kDeepWidth; ++i) eng.put(tok, Tok{0, 0, i});
  (void)eng.run();
  return tok.gamma_size();
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t rows = arg_or(argc, argv, 1, 1000000);
  const int reps = static_cast<int>(arg_or(argc, argv, 2, 3));
  // Width rounds to a whole number of ids per causality class.
  const std::int64_t width =
      std::max<std::int64_t>(rows / kWideLevels / kWideGroups, 1) *
      kWideGroups;
  const std::int64_t total = width * kWideLevels;

  constexpr double kWideBar = 1.3;
  constexpr double kInlineBar = 1.2;
  constexpr std::int64_t kBarRows = 1000000;
  const bool enforced = rows >= kBarRows;

  // --- wide: buffered vs direct emission ------------------------------------
  print_header("wide emit-heavy firing at " + std::to_string(total) +
               " tuples (" + std::to_string(kWideLevels) + " strata x " +
               std::to_string(width) + ", " + std::to_string(kWideGroups) +
               " causality classes each, fanout " +
               std::to_string(kWideFanout) + ")");
  EngineOptions wide_opts;
  wide_opts.sequential = false;
  wide_opts.threads = 4;

  // Correctness pin before timing: both paths must land on the same
  // database, and the buffered run must actually route puts through
  // buffers (unless JSTAR_EMIT=off is forcing the direct path).
  std::size_t gamma_direct = 0, gamma_buffered = 0;
  EngineOptions direct_opts = wide_opts;
  direct_opts.emit_buffer = false;
  (void)run_wide(width, direct_opts, &gamma_direct);
  const RunReport pin = run_wide(width, wide_opts, &gamma_buffered);
  if (gamma_direct != gamma_buffered) {
    std::fprintf(stderr, "MISMATCH: buffered gamma %zu != direct %zu\n",
                 gamma_buffered, gamma_direct);
    return 1;
  }
  const bool emit_active = pin.emit_buffered > 0;
  std::printf("fixpoint: %zu tuples, %lld buffered puts, %lld flushes%s\n",
              gamma_buffered, static_cast<long long>(pin.emit_buffered),
              static_cast<long long>(pin.emit_flushes),
              emit_active ? "" : "  (emit buffering disabled by env)");

  const Timing t_direct =
      measure([&] { (void)run_wide(width, direct_opts); }, reps);
  const Timing t_buffered =
      measure([&] { (void)run_wide(width, wide_opts); }, reps);
  const double wide_speedup = t_direct.min / t_buffered.min;
  print_row("direct per-put enqueue (emit_buffer off)", t_direct.min);
  print_row("buffered bulk append (emit_buffer on)", t_buffered.min,
            wide_speedup);

  // Buffered wall time across worker counts (one core here, so the
  // scaling column documents overhead, not parallel speedup).
  json::Array scaling;
  for (const int workers : {1, 2, 4, 8}) {
    EngineOptions o = wide_opts;
    o.threads = workers;
    const Timing t = measure([&] { (void)run_wide(width, o); }, reps);
    print_row("buffered, " + std::to_string(workers) + " workers", t.min,
              t_buffered.min / t.min);
    scaling.push_back(json::Object{
        {"workers", workers},
        {"seconds", t.min},
        {"speedup_vs_4_workers", t_buffered.min / t.min},
    });
  }

  // --- deep: adaptive inline vs legacy dispatch -----------------------------
  const std::int64_t levels = std::max<std::int64_t>(total / 64, 256);
  print_header("deep chain firing: " + std::to_string(levels) +
               " levels x " + std::to_string(kDeepWidth) + " tuples");
  EngineOptions deep_inline;
  deep_inline.sequential = false;
  deep_inline.threads = 2;
  EngineOptions deep_legacy = deep_inline;
  deep_legacy.inline_fire_cutoff = 0;  // always dispatch (pre-cutoff code)
  const std::size_t deep_gamma = run_deep(levels, deep_inline);
  if (deep_gamma != run_deep(levels, deep_legacy) ||
      deep_gamma !=
          static_cast<std::size_t>(levels) * static_cast<std::size_t>(
                                                 kDeepWidth)) {
    std::fprintf(stderr, "MISMATCH: deep chain fixpoints diverge\n");
    return 1;
  }
  const Timing t_legacy =
      measure([&] { (void)run_deep(levels, deep_legacy); }, reps);
  const Timing t_inline =
      measure([&] { (void)run_deep(levels, deep_inline); }, reps);
  const double inline_speedup = t_legacy.min / t_inline.min;
  print_row("legacy dispatch (cutoff 0)", t_legacy.min);
  print_row("adaptive inline (cutoff 16)", t_inline.min, inline_speedup);

  // --- headline + JSON ------------------------------------------------------
  std::printf(
      "\nheadline: buffered emission %.2fx over direct per-put enqueue on "
      "the wide workload (bar: %.1fx); inline small-batch firing %.2fx "
      "over legacy dispatch on the deep chain (bar: %.1fx) — %s\n",
      wide_speedup, kWideBar, inline_speedup, kInlineBar,
      enforced ? "enforced" : "recorded only at this scale");

  const json::Value doc = json::Object{
      {"bench", "rule_fire"},
      {"rows", total},
      {"reps", reps},
      {"fire_guard",
       json::Object{
           {"wide_speedup_buffered_vs_direct", wide_speedup},
           {"wide_bar", kWideBar},
           {"wide_direct_seconds", t_direct.min},
           {"wide_buffered_seconds", t_buffered.min},
           {"wide_emit_buffered", pin.emit_buffered},
           {"wide_emit_flushes", pin.emit_flushes},
           {"inline_speedup_vs_legacy_dispatch", inline_speedup},
           {"inline_bar", kInlineBar},
           {"deep_legacy_seconds", t_legacy.min},
           {"deep_inline_seconds", t_inline.min},
           {"deep_levels", levels},
           {"enforced", enforced && emit_active},
           {"skipped", !(enforced && emit_active)},
       }},
      {"scaling", std::move(scaling)},
  };
  std::FILE* f = std::fopen("BENCH_rule_fire.json", "w");
  if (f != nullptr) {
    const std::string text = json::write(doc);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_rule_fire.json\n");
  } else {
    std::printf("could not write BENCH_rule_fire.json\n");
  }

  if (enforced && emit_active && wide_speedup < kWideBar) {
    std::fprintf(stderr,
                 "FAIL: buffered emission speedup %.2fx is below the %.1fx "
                 "acceptance bar\n",
                 wide_speedup, kWideBar);
    return 1;
  }
  if (enforced && inline_speedup < kInlineBar) {
    std::fprintf(stderr,
                 "FAIL: inline small-batch firing speedup %.2fx is below "
                 "the %.1fx acceptance bar\n",
                 inline_speedup, kInlineBar);
    return 1;
  }
  return 0;
}
