// Figure 10: execution times for the Disruptor version of PvWatts,
// unsorted (month-major) vs sorted (round-robin day/time) input, versus
// the sequential PvWatts JStar program.
//
// Paper (i7-2600, 4 cores + HT): with 8 threads the Disruptor version has
// 3.31x speedup over sequential JStar on the default (unsorted) input and
// 2.52x on the sorted input — sorting makes *both* versions faster but
// narrows the parallel gain because the sequential baseline improves too.
//
// Usage: bench_fig10_disruptor [records] [max_consumers]
#include "apps/pvwatts/pvwatts.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::pvwatts;

  const std::int64_t records = arg_or(argc, argv, 1, 12 * 30 * 24 * 30);
  const int max_consumers = static_cast<int>(arg_or(argc, argv, 2, 12));

  print_header("Fig 10: Disruptor PvWatts vs sequential JStar, "
               "unsorted/sorted input (paper: 3.31x / 2.52x at 8 threads)");

  struct Input {
    const char* name;
    csv::Buffer buf;
  };
  Input inputs[] = {
      {"unsorted (month-major)",
       generate_csv(records, InputOrder::MonthMajor)},
      {"sorted (round-robin by day/time)",
       generate_csv(records, InputOrder::RoundRobin)},
  };

  for (Input& in : inputs) {
    JStarConfig seq;
    seq.engine.sequential = true;
    const Timing t_seq = measure([&] { run_jstar(in.buf, seq); });
    std::printf("\n%s — sequential JStar: %.3f s\n", in.name, t_seq.mean);
    for (int consumers = 1; consumers <= max_consumers;
         consumers = consumers < 8 ? consumers * 2 : consumers + 4) {
      DisruptorConfig cfg;
      cfg.consumers = consumers;
      const Timing t = measure([&] { run_disruptor(in.buf, cfg); });
      std::printf("  disruptor, %2d consumers: %8.3f s   speedup over "
                  "sequential %5.2fx\n",
                  consumers, t.mean, t_seq.mean / t.mean);
    }
  }
  return 0;
}
