// Shared mini-harness for the paper-figure benchmarks.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (§6): it runs the relevant workload under the swept
// parameters and prints rows in the same shape the paper reports
// (absolute seconds plus relative/absolute speedup).  Following §6.2's
// methodology, every configuration is run `reps` times after a warmup run
// and the mean of the remaining times is reported.
//
// NOTE on this machine: the container exposes a single CPU core, so
// relative speedup over threads degenerates to ~1x; the sweeps still
// exercise every code path and the rows keep the paper's format (see
// EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.h"

namespace jstar::bench {

struct Timing {
  double mean = 0;
  double min = 0;
};

/// Runs fn `reps` times after `warmup` unrecorded runs.
inline Timing measure(const std::function<void()>& fn, int reps = 2,
                      int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  Timing t;
  t.min = 1e100;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    const double s = timer.seconds();
    t.mean += s;
    if (s < t.min) t.min = s;
  }
  t.mean /= reps;
  return t;
}

/// argv helper: returns argv[i] as int64 or `def`.  Non-numeric arguments
/// (stray flags) fall back to the default instead of silently becoming 0.
inline std::int64_t arg_or(int argc, char** argv, int i, std::int64_t def) {
  if (argc <= i) return def;
  char* end = nullptr;
  const long long v = std::strtoll(argv[i], &end, 10);
  if (end == argv[i] || (end != nullptr && *end != '\0')) return def;
  return static_cast<std::int64_t>(v);
}

inline void print_header(const std::string& title) {
  std::printf("=== %s ===\n", title.c_str());
}

inline void print_row(const std::string& label, double seconds,
                      double speedup = 0.0) {
  if (speedup > 0) {
    std::printf("%-48s %10.3f s   speedup %5.2fx\n", label.c_str(), seconds,
                speedup);
  } else {
    std::printf("%-48s %10.3f s\n", label.c_str(), seconds);
  }
}

}  // namespace jstar::bench
