// Figure 12: speedup of the Dijkstra ShortestPath program with varying
// fork/join pool size.
//
// Paper (dual Xeon W5590, 8 cores): mediocre speedup, max 4.0x at 8 cores
// — millions of Estimate tuples contend on the Delta tree.  The timed
// program includes the 24-task random graph generation (§6.5's fix for
// the generation bottleneck) plus the shortest-path phase, with
// -noDelta on the static tables and -noGamma on Estimate.
//
// Usage: bench_fig12_dijkstra_speedup [vertices] [edges] [max_threads]
#include "apps/dijkstra/dijkstra.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::dijkstra;

  const auto vertices = static_cast<std::int32_t>(arg_or(argc, argv, 1, 60000));
  const std::int64_t edges = arg_or(argc, argv, 2, vertices * 2LL);
  const int max_threads = static_cast<int>(arg_or(argc, argv, 3, 8));

  print_header("Fig 12: Dijkstra speedup vs pool size (paper: mediocre, "
               "max 4.0x at 8 cores)");
  std::printf("%d vertices, %lld edges; timed = 24-task generation + "
              "shortest paths\n", vertices, static_cast<long long>(edges));

  auto run = [&](const EngineOptions& opts) {
    const Graph g = random_graph_jstar(vertices, edges, 42, 24, opts);
    shortest_paths_jstar(g, opts);
  };

  EngineOptions seq;
  seq.sequential = true;
  const Timing t_seq = measure([&] { run(seq); });
  std::printf("sequential build: %.3f s\n", t_seq.mean);

  double t1 = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    EngineOptions opts;
    opts.threads = threads;
    const Timing t = measure([&] { run(opts); });
    if (threads == 1) t1 = t.mean;
    std::printf("  threads=%-2d  %8.3f s   relative %5.2fx   absolute "
                "%5.2fx\n",
                threads, t.mean, t1 / t.mean, t_seq.mean / t.mean);
  }
  return 0;
}
