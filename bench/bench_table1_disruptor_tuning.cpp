// Table 1: Disruptor options used for PvWatts.
//
// The paper tuned the Disruptor version and settled on: 1 producer, 12
// consumers, BlockingWaitStrategy, ring of 1024, producer batches of 256,
// single-threaded claim strategy.  This bench sweeps ring size x wait
// strategy x producer batch, prints the measured time per configuration,
// and reports the best setting (expected: blocking wait with large-ish
// ring and batched claims — on an oversubscribed 1-core host the Blocking
// strategy's advantage over BusySpin is especially pronounced).
//
// Usage: bench_table1_disruptor_tuning [records]
#include "apps/pvwatts/pvwatts.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::pvwatts;

  const std::int64_t records = arg_or(argc, argv, 1, 12 * 30 * 24 * 15);
  const auto input = generate_csv(records, InputOrder::MonthMajor);

  print_header("Table 1: Disruptor tuning for PvWatts (paper best: "
               "Blocking wait, ring 1024, batch 256, 12 consumers)");
  std::printf("%-10s %-10s %-8s %10s\n", "ring", "wait", "batch", "time");

  double best = 1e100;
  std::string best_label;
  for (std::size_t ring : {256u, 1024u, 4096u}) {
    for (auto wait : {disruptor::WaitStrategy::Blocking,
                      disruptor::WaitStrategy::Yielding,
                      disruptor::WaitStrategy::BusySpin}) {
      for (std::int64_t batch : {1, 64, 256}) {
        DisruptorConfig cfg;
        cfg.consumers = 12;
        cfg.ring_size = ring;
        cfg.producer_batch = batch;
        cfg.wait = wait;
        const Timing t = measure([&] { run_disruptor(input, cfg); }, 1, 1);
        std::printf("%-10zu %-10s %-8lld %9.3f s\n", ring,
                    disruptor::to_string(wait), static_cast<long long>(batch),
                    t.mean);
        if (t.mean < best) {
          best = t.mean;
          best_label = std::string(disruptor::to_string(wait)) + " ring=" +
                       std::to_string(ring) + " batch=" +
                       std::to_string(batch);
        }
      }
    }
  }
  std::printf("\nbest configuration: %s (%.3f s)\n", best_label.c_str(), best);

  // Producer-count axis (Table 1 lists "single or multiple producers" as
  // the claim-strategy alternatives; the paper settled on 1).
  std::printf("\nproducers x time (Blocking, ring 1024, batch 256, "
              "12 consumers):\n");
  for (const int producers : {1, 2, 4}) {
    DisruptorConfig cfg;  // defaults match Table 1
    const Timing t = measure([&] {
      run_disruptor_mp(input, cfg, producers);
    }, 1, 1);
    std::printf("  producers=%-2d %9.3f s\n", producers, t.mean);
  }
  return 0;
}
