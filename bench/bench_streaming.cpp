// Streaming ingestion throughput: sustained tuples/sec of the epoch loop
// (src/stream/streaming.h) as a function of epoch size x producer threads
// x shard count — the knobs a deployment actually turns.  Small epochs
// buy latency and fine retain(N) windows but pay the per-epoch fixpoint
// overhead every few tuples; large epochs amortise it.  Results go to
// stdout and BENCH_streaming.json (working directory) so the perf
// trajectory is machine-readable from this PR onward.
//
// Workload: a telemetry stream of (sensor, seq) readings.  Every reading
// is hash-routed to its owner shard, derives one enriched tuple on the
// *next* sensor's owner shard (cross-shard mail each epoch), and the
// reading table runs under retain(2) so Gamma stays bounded however long
// the stream runs — exactly the shape examples/streaming_telemetry.cpp
// demonstrates.
//
// Usage: bench_streaming [events] [reps]
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "stream/streaming.h"
#include "util/json.h"

namespace {

using namespace jstar;
using namespace jstar::bench;
using namespace jstar::stream;

struct Reading {
  std::int64_t sensor, seq;
  auto operator<=>(const Reading&) const = default;
};

struct Result {
  double seconds = 0;
  StreamReport report;
};

/// Builds a fresh sharded stream, publishes `events` readings from
/// `producers` threads, drains, and reports end-to-end wall time.
Result run_config(std::int64_t events, std::int64_t epoch_size, int producers,
                  int shards) {
  StreamOptions sopts;
  sopts.ring_capacity = 8192;
  sopts.max_epoch_tuples = epoch_size;
  EngineOptions eopts;
  eopts.sequential = true;  // 2-core box: threads go to producers, not rules
  dist::ShardedOptions dopts;
  dopts.mode = dist::ShardedMode::Bsp;

  using Stream = ShardedStreamingEngine<Reading>;
  Stream stream(
      sopts, shards, eopts, dopts,
      [shards](int /*shard*/, Engine& eng, dist::Sender<Reading>& sender,
               const Stream::Emit&) {
        auto& readings = eng.table(
            TableDecl<Reading>("Reading")
                .orderby_lit("R")
                .orderby_seq("seq", &Reading::seq)
                .hash([](const Reading& r) {
                  return hash_fields(r.sensor, r.seq);
                })
                .retain(2));
        eng.rule(readings, "enrich",
                 [&sender, shards](RuleCtx&, const Reading& r) {
                   if (r.sensor >= 1000) return;  // enriched already
                   sender.send(
                       dist::partition_of(r.sensor + 1001, shards),
                       Reading{r.sensor + 1000, r.seq});
                 });
        return [&readings, &eng](const Reading& r) {
          eng.put(readings, r);
        };
      },
      [shards](const Reading& r) {
        return dist::partition_of(r.sensor, shards);
      });

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&stream, events, producers, t] {
      for (std::int64_t i = t; i < events; i += producers) {
        stream.publish(Reading{i % 64, i});
      }
    });
  }
  for (auto& th : threads) th.join();
  (void)stream.drain();
  Result r;
  r.seconds = timer.seconds();
  r.report = stream.report();
  stream.stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t events = arg_or(argc, argv, 1, 60000);
  const int reps = static_cast<int>(arg_or(argc, argv, 2, 2));

  print_header(
      "streaming ingestion: sustained tuples/sec vs epoch size x producers "
      "x shards");
  std::printf("%-12s %-10s %-8s %11s %14s %10s %10s\n", "epoch_size",
              "producers", "shards", "time", "tuples/sec", "epochs",
              "messages");

  json::Array rows;
  double headline_rate = 0;
  std::int64_t headline_epoch = 0;
  int headline_shards = 0;
  for (const std::int64_t epoch_size : {64, 512, 4096}) {
    for (const int producers : {1, 4}) {
      for (const int shards : {1, 8}) {
        Result best;
        best.seconds = 1e100;
        const Timing t = measure(
            [&] {
              const Result r =
                  run_config(events, epoch_size, producers, shards);
              if (r.seconds < best.seconds) best = r;
            },
            reps, /*warmup=*/1);
        (void)t;
        const double rate =
            best.seconds > 0
                ? static_cast<double>(best.report.ingested) / best.seconds
                : 0;
        std::printf("%-12lld %-10d %-8d %9.3f s %14.0f %10lld %10lld\n",
                    static_cast<long long>(epoch_size), producers, shards,
                    best.seconds, rate,
                    static_cast<long long>(best.report.epochs),
                    static_cast<long long>(best.report.messages));
        rows.push_back(json::Object{
            {"epoch_size", epoch_size},
            {"producers", producers},
            {"shards", shards},
            {"events", events},
            {"seconds", best.seconds},
            {"tuples_per_sec", rate},
            {"epochs", best.report.epochs},
            {"batches", best.report.batches},
            {"tuples", best.report.tuples},
            {"messages", best.report.messages},
            {"max_epoch_ingested", best.report.max_epoch_ingested},
        });
        if (rate > headline_rate) {
          headline_rate = rate;
          headline_epoch = epoch_size;
          headline_shards = shards;
        }
      }
    }
  }

  std::printf(
      "\nheadline: best sustained rate %.0f tuples/s at epoch size %lld, "
      "%d shards\n",
      headline_rate, static_cast<long long>(headline_epoch),
      headline_shards);

  const json::Value doc = json::Object{
      {"bench", "streaming"},
      {"events", events},
      {"rows", std::move(rows)},
      {"headline",
       json::Object{
           {"tuples_per_sec", headline_rate},
           {"epoch_size", headline_epoch},
           {"shards", headline_shards},
       }},
  };
  std::FILE* f = std::fopen("BENCH_streaming.json", "w");
  if (f != nullptr) {
    const std::string text = json::write(doc);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_streaming.json\n");
  } else {
    std::printf("could not write BENCH_streaming.json\n");
  }
  return 0;
}
