// Delta-tree scalability ablation — the experiment §6.5/§8 calls for:
// "it seems to be a problem with the scalability of our Delta tree data
// structures ... threads contending for the same branches of the tree."
//
// Two measurements:
//   1. Raw backend contention: T threads concurrently insert disjoint
//      key ranges into each Delta backend (concurrent skip list vs
//      lock-striped tree with varying stripe counts), then the
//      coordinator drains.  On a multicore host the skip list's CAS
//      retries and the single-stripe tree's lock convoy show up here;
//      stripes spread the contention.
//   2. End-to-end: the Dijkstra program (whose Estimate tuples are the
//      §6.5 bottleneck) under the default and striped backends.
//
// Usage: bench_delta_scalability [keys_per_thread] [dijkstra_vertices]
#include <cstdio>
#include <thread>

#include "apps/dijkstra/dijkstra.h"
#include "bench/harness.h"
#include "core/delta_tree.h"
#include "core/striped_delta_tree.h"

namespace {

double contention_run(jstar::DeltaTree& tree, int threads,
                      std::int64_t keys_per_thread) {
  using namespace jstar;
  WallTimer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, t, keys_per_thread] {
      for (std::int64_t i = 0; i < keys_per_thread; ++i) {
        DeltaKey k;
        // Interleaved ranges: adjacent keys come from different threads,
        // maximising contention on neighbouring tree branches.
        k.push_back(i * 16 + t);
        k.push_back(i % 7);
        tree.get_or_insert(k);
      }
    });
  }
  for (auto& w : workers) w.join();
  DeltaKey key;
  std::unique_ptr<BatchNode> node;
  while (tree.pop_min(key, node)) {
  }
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;

  const std::int64_t keys = arg_or(argc, argv, 1, 100000);
  const auto dij_v = static_cast<std::int32_t>(arg_or(argc, argv, 2, 60000));

  print_header("Delta-tree scalability (the §6.5 bottleneck)");

  std::printf("\n-- backend insert+drain, %lld keys/thread --\n",
              static_cast<long long>(keys));
  std::printf("%-22s", "threads:");
  for (const int t : {1, 2, 4, 8}) std::printf(" %8d", t);
  std::printf("\n");
  auto row = [&](const char* label, auto make_tree) {
    std::printf("%-22s", label);
    for (const int threads : {1, 2, 4, 8}) {
      auto tree = make_tree();
      std::printf(" %7.3fs", contention_run(*tree, threads, keys));
    }
    std::printf("\n");
  };
  row("concurrent skip list",
      [] { return std::make_unique<SkipDeltaTree>(); });
  row("striped tree (1)",
      [] { return std::make_unique<StripedDeltaTree>(1); });
  row("striped tree (8)",
      [] { return std::make_unique<StripedDeltaTree>(8); });
  row("striped tree (64)",
      [] { return std::make_unique<StripedDeltaTree>(64); });

  std::printf("\n-- Dijkstra end-to-end (%d vertices), threads=4 --\n",
              dij_v);
  const auto g = apps::dijkstra::random_graph(dij_v, dij_v * 2, 42);
  for (const int stripes : {0, 1, 8, 64}) {
    EngineOptions opts;
    opts.threads = 4;
    opts.delta_stripes = stripes;
    const Timing t = measure([&] {
      apps::dijkstra::shortest_paths_jstar(g, opts);
    });
    if (stripes == 0) {
      print_row("  delta = concurrent skip list", t.mean);
    } else {
      print_row("  delta = striped tree (" + std::to_string(stripes) + ")",
                t.mean);
    }
  }
  return 0;
}
