// §6.2 ablation: the -noDelta optimisation on the PvWatts program.
//
// Paper: on the 192 MB / 8.76M-record input, sequential execution takes
// 23.0 s without -noDelta=PvWatts and 8.44 s with it (a 2.7x improvement)
// because the unoptimised engine pushes every PvWatts tuple through the
// Delta tree before it reaches Gamma.
//
// Expected shape here: noDelta-on substantially faster (same direction,
// similar factor); also reports -noGamma on the SumMonth-like path and the
// Gamma-structure choice for completeness.
//
// Usage: bench_ablation_nodelta [records]
#include "apps/pvwatts/pvwatts.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::pvwatts;

  const std::int64_t records = arg_or(argc, argv, 1, 12 * 30 * 24 * 30);
  const auto input = generate_csv(records, InputOrder::MonthMajor);

  print_header("§6.2 ablation: -noDelta PvWatts (paper: 23.0 s -> 8.44 s "
               "sequential)");
  std::printf("input: %lld records, %.1f MB\n\n",
              static_cast<long long>(records), input.size() / 1e6);

  JStarConfig with;   // tuned: -noDelta + month-array store
  with.engine.sequential = true;
  JStarConfig without = with;
  without.no_delta_pvwatts = false;

  const Timing t_without = measure([&] { run_jstar(input, without); });
  const Timing t_with = measure([&] { run_jstar(input, with); });
  print_row("sequential, PvWatts through Delta tree", t_without.mean);
  print_row("sequential, -noDelta PvWatts", t_with.mean);
  print_row("improvement factor (paper: 2.7x)", t_without.mean / t_with.mean);

  // Data-structure ablation at fixed strategy (§6.2's HashSet discussion).
  std::printf("\nGamma structure for the PvWatts table (sequential, "
              "-noDelta):\n");
  for (GammaKind kind :
       {GammaKind::Default, GammaKind::Hash, GammaKind::MonthArray}) {
    JStarConfig cfg = with;
    cfg.gamma = kind;
    const Timing t = measure([&] { run_jstar(input, cfg); });
    print_row(std::string("  gamma = ") + to_string(kind), t.mean);
  }

  // §6.2's "more aggressive optimization": incremental per-month reducers,
  // no tuple storage at all — compare both time and stored-tuple count.
  std::printf("\nincremental-reducer unfolding (constant memory):\n");
  const Timing t_incr = measure([&] { run_jstar_incremental(input, with); });
  print_row("  incremental reducers, sequential", t_incr.mean);
  print_row("  speedup over tuned -noDelta", t_with.mean / t_incr.mean);
  std::printf("  stored tuples: %lld (was %lld with Gamma storage)\n",
              0LL, static_cast<long long>(records));
  return 0;
}
