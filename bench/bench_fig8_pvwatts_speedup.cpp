// Figure 8: relative speedup of the PvWatts program with varying
// fork/join pool size, with alternative data structures for the PvWatts
// Gamma table.
//
// Paper (dual-CPU Xeon W5590, 8 cores): relative speedup reaches ~4x at 8
// threads with the custom array-of-hashsets structure; absolute speedup is
// ~35% lower because the sequential structures (TreeMap) are faster than
// the concurrent ones (ConcurrentSkipListMap).
//
// Rows here: per Gamma structure, per thread count — absolute time,
// relative speedup (vs the 1-thread parallel build) and absolute speedup
// (vs the sequential build), exactly the two measures §6.2 defines.
// On this 1-core container the curves are expected to be flat (~1x).
//
// Usage: bench_fig8_pvwatts_speedup [records] [max_threads]
#include "apps/pvwatts/pvwatts.h"
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::apps::pvwatts;

  const std::int64_t records = arg_or(argc, argv, 1, 12 * 30 * 24 * 30);
  const int max_threads = static_cast<int>(arg_or(argc, argv, 2, 8));
  const auto input = generate_csv(records, InputOrder::MonthMajor);

  print_header("Fig 8: PvWatts speedup vs fork/join pool size x Gamma "
               "structure (paper: ~4x rel at 8 threads)");

  for (GammaKind kind :
       {GammaKind::Default, GammaKind::Hash, GammaKind::MonthArray}) {
    // Sequential reference for absolute speedup.
    JStarConfig seq;
    seq.engine.sequential = true;
    seq.gamma = kind;
    const Timing t_seq = measure([&] { run_jstar(input, seq); });

    std::printf("\nGamma structure: %s (sequential build: %.3f s)\n",
                to_string(kind), t_seq.mean);
    double t1 = 0;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      JStarConfig cfg;
      cfg.engine.threads = threads;
      cfg.gamma = kind;
      const Timing t = measure([&] { run_jstar(input, cfg); });
      if (threads == 1) t1 = t.mean;
      std::printf("  threads=%-2d  %8.3f s   relative %5.2fx   absolute "
                  "%5.2fx\n",
                  threads, t.mean, t1 / t.mean, t_seq.mean / t.mean);
    }
  }
  return 0;
}
