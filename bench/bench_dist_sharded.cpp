// Scale-out ablation: the sharded (distributed) engine on a partitioned
// BFS reachability workload — the single-process analogue of the cluster
// experiments the paper points to ("implementations of a few example
// Starlog programs on cluster computers [7]").
//
// Reports, per shard count: wall time, supersteps, cross-shard messages
// and total local batches.  The interesting *shape* is the communication
// volume growing with shard count while per-shard work shrinks — the
// partition/communicate trade-off of §2 stage 3.  (On this 1-core host
// wall times stay flat; see EXPERIMENTS.md.)
//
// Usage: bench_dist_sharded [vertices] [edges]
#include <cstdio>
#include <set>

#include "bench/harness.h"
#include "dist/sharded.h"
#include "util/rng.h"

namespace {

struct Visit {
  std::int64_t vertex;
  auto operator<=>(const Visit&) const = default;
};

using Graph = std::vector<std::vector<std::int64_t>>;

Graph random_graph(std::int64_t vertices, std::int64_t edges,
                   std::uint64_t seed) {
  using jstar::SplitMix64;
  Graph g(static_cast<std::size_t>(vertices));
  SplitMix64 rng(seed);
  // A spanning chain plus random extra edges keeps most vertices reachable.
  for (std::int64_t v = 1; v < vertices; ++v) {
    g[static_cast<std::size_t>(v - 1)].push_back(v);
  }
  for (std::int64_t e = 0; e < edges; ++e) {
    const auto from = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    const auto to = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    g[static_cast<std::size_t>(from)].push_back(to);
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::bench;
  using namespace jstar::dist;

  const std::int64_t vertices = arg_or(argc, argv, 1, 200000);
  const std::int64_t edges = arg_or(argc, argv, 2, 400000);
  const Graph g = random_graph(vertices, edges, 99);

  print_header("scale-out: sharded BFS reachability (cluster analogue of "
               "[7])");
  std::printf("%lld vertices, %lld edges (+ chain)\n\n",
              static_cast<long long>(vertices),
              static_cast<long long>(edges));
  std::printf("%-8s %10s %12s %14s %14s %10s\n", "shards", "time",
              "supersteps", "messages", "local batches", "reached");

  for (const int shards : {1, 2, 4, 8}) {
    EngineOptions opts;
    opts.sequential = true;  // per-shard engines; parallelism across shards

    std::vector<Table<Visit>*> tables(static_cast<std::size_t>(shards));
    ShardedEngine<Visit> cluster(
        shards, opts,
        [&g, &tables, shards](int shard, Engine& eng, Sender<Visit>& sender) {
          auto& visits =
              eng.table(TableDecl<Visit>("Visit")
                            .orderby_lit("V")
                            .orderby_seq("vertex", &Visit::vertex)
                            .hash([](const Visit& v) {
                              return hash_fields(v.vertex);
                            }));
          tables[static_cast<std::size_t>(shard)] = &visits;
          eng.rule(visits, "expand",
                   [&g, &sender, shards](RuleCtx&, const Visit& v) {
                     for (const std::int64_t to :
                          g[static_cast<std::size_t>(v.vertex)]) {
                       sender.send(partition_of(to, shards), Visit{to});
                     }
                   });
          return [&visits, &eng](const Visit& v) { eng.put(visits, v); };
        });

    cluster.seed(partition_of(0, shards), Visit{0});
    WallTimer timer;
    const ShardedRunReport report = cluster.run();
    const double seconds = timer.seconds();

    std::int64_t reached = 0;
    for (auto* t : tables) reached += static_cast<std::int64_t>(t->gamma_size());
    std::printf("%-8d %9.3f s %12d %14lld %14lld %10lld\n", shards, seconds,
                report.supersteps, static_cast<long long>(report.messages),
                static_cast<long long>(report.local_batches),
                static_cast<long long>(reached));
  }
  return 0;
}
