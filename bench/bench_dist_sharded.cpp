// Scale-out ablation: the sharded (distributed) engine on partitioned BFS
// reachability workloads — the single-process analogue of the cluster
// experiments the paper points to ("implementations of a few example
// Starlog programs on cluster computers [7]"), now comparing the two
// schedules of src/dist/sharded.h head to head:
//
//   * BSP   — barrier-synchronised supersteps (the deterministic reference),
//   * Async — pipelined shard workers + credit-counting termination.
//
// Two workload shapes bracket the trade-off:
//
//   * "wide": a random graph with a spanning chain — shallow wavefront,
//     bulk messages per superstep.  Barriers are few, so BSP and async
//     should be close.
//   * "deep": a ladder chain (i -> i+1, i -> i+2) hash-partitioned across
//     shards — nearly every edge crosses a shard boundary and the
//     wavefront is thousands of levels deep, so BSP pays thousands of
//     barriers while async just keeps draining.  This is the
//     message-heavy workload the async executor exists for.
//
// Results go to stdout as a table and to BENCH_dist_sharded.json (in the
// working directory) so the perf trajectory is machine-readable from this
// PR onward.  The "headline" object records async-over-BSP speedup on the
// deep workload at the widest shard count, and the "wide_guard" object
// records the async/BSP time ratio on the wide workload at 2/4/8 shards.
// The guard is enforced: if any of those ratios drops below
// kWideGuardBar (async more than ~10% slower than BSP), the bench exits
// non-zero — so CI fails loudly if the unbatched-fabric regression
// returns.
//
// Usage: bench_dist_sharded [wide_vertices] [wide_edges] [deep_vertices]
//                           [reps]
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "dist/sharded.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace jstar;
using namespace jstar::bench;
using namespace jstar::dist;

struct Visit {
  std::int64_t vertex;
  auto operator<=>(const Visit&) const = default;
};

using Graph = std::vector<std::vector<std::int64_t>>;

/// Wide-workload floor on async/BSP (BSP seconds / async seconds) at 2, 4
/// and 8 shards.  Async must stay within ~10% of BSP on its *worst* shape
/// while dominating on deep; below the bar the run fails.
constexpr double kWideGuardBar = 0.9;

Graph random_graph(std::int64_t vertices, std::int64_t edges,
                   std::uint64_t seed) {
  Graph g(static_cast<std::size_t>(vertices));
  SplitMix64 rng(seed);
  // A spanning chain plus random extra edges keeps most vertices reachable.
  for (std::int64_t v = 1; v < vertices; ++v) {
    g[static_cast<std::size_t>(v - 1)].push_back(v);
  }
  for (std::int64_t e = 0; e < edges; ++e) {
    const auto from = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    const auto to = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    g[static_cast<std::size_t>(from)].push_back(to);
  }
  return g;
}

/// i -> i+1 and i -> i+2: wavefront depth ~ vertices/2, and under hash
/// partitioning nearly every edge crosses shards — barrier-dominated in
/// BSP, pipelined in async.
Graph ladder_graph(std::int64_t vertices) {
  Graph g(static_cast<std::size_t>(vertices));
  for (std::int64_t v = 0; v < vertices; ++v) {
    if (v + 1 < vertices) g[static_cast<std::size_t>(v)].push_back(v + 1);
    if (v + 2 < vertices) g[static_cast<std::size_t>(v)].push_back(v + 2);
  }
  return g;
}

struct ModeResult {
  double seconds = 0;
  ShardedRunReport report;
  std::int64_t reached = 0;
};

/// Builds a fresh cluster over `g`, seeds vertex 0 and runs to fixpoint
/// under `mode`.  A fresh cluster per run keeps the measurement honest:
/// run() is event-driven, so a second run() on the same cluster is a no-op.
ModeResult run_mode(const Graph& g, int shards, ShardedMode mode, int reps) {
  ModeResult best;
  best.seconds = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    EngineOptions opts;
    opts.sequential = false;  // threaded cluster: BSP spawns shard threads per
    opts.threads = 2;         // superstep, async keeps long-lived workers
    ShardedOptions sopts;
    sopts.mode = mode;

    std::vector<Table<Visit>*> tables(static_cast<std::size_t>(shards));
    ShardedEngine<Visit> cluster(
        shards, opts, sopts,
        [&g, &tables, shards](int shard, Engine& eng, Sender<Visit>& sender) {
          auto& visits =
              eng.table(TableDecl<Visit>("Visit")
                            .orderby_lit("V")
                            .orderby_seq("vertex", &Visit::vertex)
                            .hash([](const Visit& v) {
                              return hash_fields(v.vertex);
                            }));
          tables[static_cast<std::size_t>(shard)] = &visits;
          eng.rule(visits, "expand",
                   [&g, &sender, shards](RuleCtx&, const Visit& v) {
                     for (const std::int64_t to :
                          g[static_cast<std::size_t>(v.vertex)]) {
                       sender.send(partition_of(to, shards), Visit{to});
                     }
                   });
          return [&visits, &eng](const Visit& v) { eng.put(visits, v); };
        });

    cluster.seed(partition_of(0, shards), Visit{0});
    WallTimer timer;
    const ShardedRunReport report = cluster.run();
    const double seconds = timer.seconds();
    if (seconds < best.seconds) {
      best.seconds = seconds;
      best.report = report;
      best.reached = 0;
      for (auto* t : tables) {
        best.reached += static_cast<std::int64_t>(t->gamma_size());
      }
    }
  }
  return best;
}

json::Value row_json(int shards, const char* mode, const ModeResult& r) {
  return json::Object{
      {"shards", shards},
      {"mode", mode},
      {"seconds", r.seconds},
      {"supersteps", r.report.supersteps},
      {"epochs", r.report.epochs},
      {"messages", r.report.messages},
      {"local_messages", r.report.local_messages},
      {"local_tuples", r.report.local_tuples},
      {"reached", r.reached},
  };
}

void print_rows(int shards, const ModeResult& bsp, const ModeResult& async_r) {
  const double speedup =
      async_r.seconds > 0 ? bsp.seconds / async_r.seconds : 0.0;
  std::printf("%-8d %-6s %9.3f s %12d %14lld %14lld %10lld\n", shards, "bsp",
              bsp.seconds, bsp.report.supersteps,
              static_cast<long long>(bsp.report.messages),
              static_cast<long long>(bsp.report.local_tuples),
              static_cast<long long>(bsp.reached));
  std::printf("%-8s %-6s %9.3f s %12d %14lld %14lld %10lld   %5.2fx\n", "",
              "async", async_r.seconds, async_r.report.supersteps,
              static_cast<long long>(async_r.report.messages),
              static_cast<long long>(async_r.report.local_tuples),
              static_cast<long long>(async_r.reached), speedup);
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t wide_vertices = arg_or(argc, argv, 1, 200000);
  const std::int64_t wide_edges = arg_or(argc, argv, 2, 400000);
  const std::int64_t deep_vertices = arg_or(argc, argv, 3, 4000);
  const int reps = static_cast<int>(arg_or(argc, argv, 4, 3));

  struct Workload {
    const char* name;
    Graph graph;
    std::int64_t vertices;
    std::int64_t edges;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"wide", random_graph(wide_vertices, wide_edges, 99),
                       wide_vertices, wide_edges});
  workloads.push_back({"deep", ladder_graph(deep_vertices), deep_vertices,
                       2 * deep_vertices - 3});

  json::Array workloads_json;
  double headline_bsp = 0, headline_async = 0;
  int headline_shards = 0;
  json::Array wide_guard_rows;
  double wide_guard_min = 1e100;
  int wide_guard_worst_shards = 0;

  print_header("scale-out: sharded BFS, BSP vs async (cluster analogue of "
               "[7])");
  for (const Workload& w : workloads) {
    std::printf("\n-- %s: %lld vertices, %lld edges --\n", w.name,
                static_cast<long long>(w.vertices),
                static_cast<long long>(w.edges));
    std::printf("%-8s %-6s %11s %12s %14s %14s %10s\n", "shards", "mode",
                "time", "supersteps", "messages", "local tuples", "reached");
    json::Array rows;
    for (const int shards : {1, 2, 4, 8}) {
      const ModeResult bsp = run_mode(w.graph, shards, ShardedMode::Bsp, reps);
      const ModeResult async_r =
          run_mode(w.graph, shards, ShardedMode::Async, reps);
      print_rows(shards, bsp, async_r);
      rows.push_back(row_json(shards, "bsp", bsp));
      rows.push_back(row_json(shards, "async", async_r));
      if (std::string(w.name) == "deep" && shards == 8) {
        headline_bsp = bsp.seconds;
        headline_async = async_r.seconds;
        headline_shards = shards;
      }
      if (std::string(w.name) == "wide" && shards >= 2) {
        const double ratio =
            async_r.seconds > 0 ? bsp.seconds / async_r.seconds : 0.0;
        wide_guard_rows.push_back(json::Object{
            {"shards", shards},
            {"bsp_seconds", bsp.seconds},
            {"async_seconds", async_r.seconds},
            {"async_vs_bsp", ratio},
        });
        if (ratio < wide_guard_min) {
          wide_guard_min = ratio;
          wide_guard_worst_shards = shards;
        }
      }
    }
    workloads_json.push_back(json::Object{
        {"name", w.name},
        {"vertices", w.vertices},
        {"edges", w.edges},
        {"rows", std::move(rows)},
    });
  }

  const double headline_speedup =
      headline_async > 0 ? headline_bsp / headline_async : 0.0;
  std::printf("\nheadline: deep workload, %d shards: async %.2fx over BSP\n",
              headline_shards, headline_speedup);
  const bool wide_guard_ok = wide_guard_min >= kWideGuardBar;
  std::printf(
      "wide guard: min async/BSP ratio %.2fx at %d shards (bar %.2fx) — %s\n",
      wide_guard_min, wide_guard_worst_shards, kWideGuardBar,
      wide_guard_ok ? "ok" : "FAIL");

  const json::Value doc = json::Object{
      {"bench", "dist_sharded"},
      {"workloads", std::move(workloads_json)},
      {"headline",
       json::Object{
           {"workload", "deep"},
           {"shards", headline_shards},
           {"bsp_seconds", headline_bsp},
           {"async_seconds", headline_async},
           {"async_speedup_over_bsp", headline_speedup},
       }},
      {"wide_guard",
       json::Object{
           {"workload", "wide"},
           {"bar", kWideGuardBar},
           {"min_async_vs_bsp", wide_guard_min},
           {"worst_shards", wide_guard_worst_shards},
           {"ok", wide_guard_ok},
           {"rows", std::move(wide_guard_rows)},
       }},
  };
  std::FILE* f = std::fopen("BENCH_dist_sharded.json", "w");
  if (f != nullptr) {
    const std::string text = json::write(doc);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_dist_sharded.json\n");
  } else {
    std::printf("could not write BENCH_dist_sharded.json\n");
  }
  // The guard is the bench's verdict: exit non-zero when the batched
  // fabric has regressed back below the bar so CI smokes catch it.
  return wide_guard_ok ? 0 : 1;
}
