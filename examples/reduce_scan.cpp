// §1.3's answer to sequential loops: "to replace some common uses of
// sequential loops, JStar supports reduce and scan operations with
// user-defined operators."
//
// This example computes, over one pass of a synthetic trade tape:
//   * Statistics (count/mean/stddev) of trade sizes — the Fig 4 reducer,
//   * the 5 largest trades (TopK with a reversed comparator),
//   * a price histogram,
//   * a user-defined gcd fold (§1.3's "user-defined operators"),
// all via parallel tree-reduce (§5.2), plus a running cumulative-volume
// series via the Blelloch prefix scan.
//
// Build & run:  ./build/examples/reduce_scan
#include <cstdio>
#include <functional>
#include <numeric>
#include <vector>

#include "reduce/parallel.h"
#include "reduce/reducers.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace {

struct Trade {
  std::int64_t id;
  std::int64_t size;    // shares
  double price;
};

std::vector<Trade> synthetic_tape(std::int64_t n) {
  std::vector<Trade> tape;
  tape.reserve(static_cast<std::size_t>(n));
  jstar::SplitMix64 rng(7);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto size = static_cast<std::int64_t>(100 + rng.next_below(9900));
    const double price = 50.0 + static_cast<double>(rng.next_below(5000)) / 100.0;
    tape.push_back({i, size, price});
  }
  return tape;
}

}  // namespace

int main() {
  using namespace jstar;
  namespace r = jstar::reduce;

  constexpr std::int64_t kTrades = 1000000;
  const std::vector<Trade> tape = synthetic_tape(kTrades);
  sched::ForkJoinPool pool(4);

  // One pass, several reducers (Pair composes them).
  using SizeStats = Statistics;
  const auto stats = r::parallel_reduce_over<SizeStats>(
      &pool, tape, [](SizeStats& acc, const Trade& t) {
        acc.add(static_cast<double>(t.size));
      });
  std::printf("trades: %llu   mean size: %.1f   stddev: %.1f\n",
              static_cast<unsigned long long>(stats.count()), stats.mean(),
              stats.stddev());

  // Top 5 largest trades: TopK keeps the k smallest under its comparator,
  // so invert it.
  struct Bigger {
    bool operator()(const Trade& a, const Trade& b) const {
      return a.size > b.size;
    }
  };
  const auto top = r::parallel_reduce_over<r::TopK<Trade, Bigger>>(
      &pool, tape, [](r::TopK<Trade, Bigger>& acc, const Trade& t) {
        acc.add(t);
      },
      r::TopK<Trade, Bigger>(5));
  std::printf("largest trades:");
  for (const Trade& t : top.values()) {
    std::printf(" #%lld(%lld)", static_cast<long long>(t.id),
                static_cast<long long>(t.size));
  }
  std::printf("\n");

  // Price histogram in 10 buckets.
  const auto hist = r::parallel_reduce_over<r::Histogram>(
      &pool, tape, [](r::Histogram& acc, const Trade& t) {
        acc.add(t.price);
      },
      r::Histogram(50.0, 100.0, 10));
  std::printf("price histogram:");
  for (const std::int64_t c : hist.counts()) {
    std::printf(" %lld", static_cast<long long>(c));
  }
  std::printf("\n");

  // A user-defined operator: gcd of all trade sizes.
  const auto gcd_fold = r::parallel_reduce_over<
      r::Fold<std::int64_t, std::int64_t (*)(std::int64_t, std::int64_t)>>(
      &pool, tape,
      [](auto& acc, const Trade& t) { acc.add(t.size); },
      r::Fold<std::int64_t, std::int64_t (*)(std::int64_t, std::int64_t)>(
          0, +[](std::int64_t a, std::int64_t b) {
            return std::gcd(a, b);
          }));
  std::printf("gcd of all sizes: %lld\n",
              static_cast<long long>(gcd_fold.value()));

  // Prefix scan: cumulative volume after each trade.
  std::vector<std::int64_t> volume;
  volume.reserve(tape.size());
  for (const Trade& t : tape) volume.push_back(t.size);
  r::parallel_inclusive_scan(&pool, volume, std::plus<std::int64_t>{});
  std::printf("cumulative volume at 25%%/50%%/100%%: %lld / %lld / %lld\n",
              static_cast<long long>(volume[volume.size() / 4]),
              static_cast<long long>(volume[volume.size() / 2]),
              static_cast<long long>(volume.back()));
  return 0;
}
