// Space Invaders, the bigger version of the paper's running example (§3
// motivates the Ship table with "the position of a ship in a Space
// Invaders game").  A fleet of ships marches right/down/left while the
// player's bullets rise; a collision removes the ship — expressed the
// JStar way with *no mutation*: a Hit tuple at frame t+1 is derived from
// same-frame Ship and Bullet positions, and the march rule uses a
// negative query ("no Hit for this ship at or before my frame") to stop
// propagating dead ships.  The causality law (§4) is respected: the
// negative query looks strictly into the past stratum (Hit at frame t is
// derived before Ship rules of frame t+1 run, because Hit < Ship in the
// frame-major ordering... here both share the frame seq level and Hit's
// literal sorts first).
//
// Build & run:  ./build/examples/space_invaders
#include <cstdio>
#include <map>
#include <vector>

#include "core/engine.h"

namespace {

constexpr std::int64_t kFrames = 24;
constexpr std::int64_t kWidth = 9;   // columns 0..8
constexpr std::int64_t kHeight = 8;  // rows 0..7 (0 = top)

struct Ship {
  std::int64_t frame, id, x, y, dx;
  auto operator<=>(const Ship&) const = default;
};
struct Bullet {
  std::int64_t frame, x, y;
  auto operator<=>(const Bullet&) const = default;
};
/// Hit(frame, ship) — ship was destroyed at `frame`.
struct Hit {
  std::int64_t frame, ship;
  auto operator<=>(const Hit&) const = default;
};

}  // namespace

int main() {
  using namespace jstar;

  Engine eng(EngineOptions{.sequential = false, .threads = 2});

  // Literal order makes Hits of frame f settle before Ships/Bullets of
  // frame f move — orderby is (seq frame, Lit) per table via two levels:
  // all three tables share the frame seq level; the literal level breaks
  // the tie so Hit < Ship, Bullet within a frame.
  auto& hits = eng.table(TableDecl<Hit>("Hit")
                             .orderby_seq("frame", &Hit::frame)
                             .orderby_lit("A")
                             .hash([](const Hit& h) {
                               return hash_fields(h.frame, h.ship);
                             }));
  auto& ships = eng.table(TableDecl<Ship>("Ship")
                              .orderby_seq("frame", &Ship::frame)
                              .orderby_lit("B")
                              .orderby_par("id")
                              .hash([](const Ship& s) {
                                return hash_fields(s.frame, s.id, s.x, s.y,
                                                   s.dx);
                              }));
  auto& bullets = eng.table(TableDecl<Bullet>("Bullet")
                                .orderby_seq("frame", &Bullet::frame)
                                .orderby_lit("B")
                                .hash([](const Bullet& b) {
                                  return hash_fields(b.frame, b.x, b.y);
                                }));
  eng.order({"A", "B"});

  // March rule: skip ships already hit (negative query into the strictly
  // earlier Hit stratum), else advance right/down/left.
  eng.rule(ships, "march", [&](RuleCtx& ctx, const Ship& s) {
    if (s.frame >= kFrames) return;
    const bool dead = hits
                          .find_if([&](const Hit& h) {
                            return h.ship == s.id && h.frame <= s.frame;
                          })
                          .has_value();
    if (dead) return;
    if (s.dx > 0 && s.x + 1 >= kWidth) {
      ships.put(ctx, Ship{s.frame + 1, s.id, s.x, s.y + 1, -1});
    } else if (s.dx < 0 && s.x - 1 < 0) {
      ships.put(ctx, Ship{s.frame + 1, s.id, s.x, s.y + 1, 1});
    } else {
      ships.put(ctx, Ship{s.frame + 1, s.id, s.x + s.dx, s.y, s.dx});
    }
  });

  // Bullets rise one row per frame until they leave the screen.
  eng.rule(bullets, "rise", [&](RuleCtx& ctx, const Bullet& b) {
    if (b.frame >= kFrames || b.y == 0) return;
    bullets.put(ctx, Bullet{b.frame + 1, b.x, b.y - 1});
  });

  // Collision: same cell at the same frame → Hit at frame + 1 (the rule
  // affects the future, never its own frame — the law of causality).
  eng.rule(bullets, "collide", [&](RuleCtx& ctx, const Bullet& b) {
    ships.scan([&](const Ship& s) {
      if (s.frame == b.frame && s.x == b.x && s.y == b.y) {
        hits.put(ctx, Hit{b.frame + 1, s.id});
      }
    });
  });

  // A rank of four ships and two bullets from fixed cannon columns.  The
  // first bullet's column is chosen so it meets ship 3 on its row-1 pass
  // (both reach cell (5, 1) at frame 6); the second sails through empty
  // sky and exits at the top.
  for (std::int64_t i = 0; i < 4; ++i) {
    eng.put(ships, Ship{0, i, i * 2, 0, 1});
  }
  eng.put(bullets, Bullet{0, 5, kHeight - 1});
  eng.put(bullets, Bullet{2, 6, kHeight - 1});
  const RunReport report = eng.run();

  // Render a few frames as ASCII.
  for (const std::int64_t frame : {0L, 4L, 8L, 12L, 16L, 20L}) {
    std::map<std::pair<std::int64_t, std::int64_t>, char> grid;
    ships.scan([&](const Ship& s) {
      if (s.frame == frame) {
        grid[{s.y, s.x}] = static_cast<char>('0' + s.id);
      }
    });
    bullets.scan([&](const Bullet& b) {
      if (b.frame == frame) grid[{b.y, b.x}] = '|';
    });
    std::printf("frame %lld\n", static_cast<long long>(frame));
    for (std::int64_t y = 0; y < kHeight; ++y) {
      std::string row(static_cast<std::size_t>(kWidth), '.');
      for (std::int64_t x = 0; x < kWidth; ++x) {
        const auto it = grid.find({y, x});
        if (it != grid.end()) row[static_cast<std::size_t>(x)] = it->second;
      }
      std::printf("  %s\n", row.c_str());
    }
  }

  std::printf("\nhits:\n");
  hits.scan([](const Hit& h) {
    std::printf("  ship %lld destroyed at frame %lld\n",
                static_cast<long long>(h.ship),
                static_cast<long long>(h.frame));
  });
  std::printf("\n%lld tuples over %lld batches — deterministic under any "
              "strategy (§1.3)\n",
              static_cast<long long>(report.tuples),
              static_cast<long long>(report.batches));
  return 0;
}
