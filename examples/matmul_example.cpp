// The §6.4 MatrixMult program: one row-request tuple per output row
// through the Delta set; native-array Gamma structures for the matrices.
// Shows the Fig 6 quartet: boxed JStar / primitive JStar / naive baseline
// / transposed baseline.
//
// Usage: matmul_example [n] [threads]
#include <cstdio>
#include <cstdlib>

#include "apps/matmul/matmul.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace jstar::apps::matmul;

  const int n = argc > 1 ? std::atoi(argv[1]) : 400;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("multiplying two %dx%d integer matrices\n", n, n);
  const Matrix a = Matrix::random(n, n, 1);
  const Matrix b = Matrix::random(n, n, 2);

  jstar::EngineOptions opts;
  opts.threads = threads;

  jstar::WallTimer t_boxed;
  const Matrix c_boxed = multiply_jstar(a, b, Kernel::Boxed, opts);
  const double boxed_s = t_boxed.seconds();

  jstar::WallTimer t_prim;
  const Matrix c_prim = multiply_jstar(a, b, Kernel::Primitive, opts);
  const double prim_s = t_prim.seconds();

  jstar::WallTimer t_naive;
  const Matrix c_naive = multiply_naive(a, b);
  const double naive_s = t_naive.seconds();

  jstar::WallTimer t_trans;
  const Matrix c_trans = multiply_transposed(a, b);
  const double trans_s = t_trans.seconds();

  std::printf("JStar, boxed inner loop (XText 2.3 accident): %s\n",
              jstar::format_duration(boxed_s).c_str());
  std::printf("JStar, primitive ints:                        %s\n",
              jstar::format_duration(prim_s).c_str());
  std::printf("baseline naive ijk:                           %s\n",
              jstar::format_duration(naive_s).c_str());
  std::printf("baseline transposed (cache friendly):         %s\n",
              jstar::format_duration(trans_s).c_str());

  const bool ok = c_boxed == c_naive && c_prim == c_naive && c_trans == c_naive;
  std::printf("%s\n", ok ? "all four agree." : "!! results disagree");
  return ok ? 0 : 1;
}
