// Quickstart: the Space Invaders Ship example from §3 / Fig 2.
//
// A Ship table records the position of a ship over time; rules move it
// right across the screen, then down, then left — reproducing exactly the
// 8-frame trajectory printed in Fig 2 of the paper.
//
//   table Ship(int frame -> int x, int y, int dx, int dy)
//       orderby (Int, seq frame)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "viz/viz.h"

namespace {

struct Ship {
  std::int64_t frame, x, y, dx, dy;
  auto operator<=>(const Ship&) const = default;
};

}  // namespace

int main() {
  using namespace jstar;

  Engine eng;  // parallel by default (§1.3); -sequential is just an option

  auto& ship = eng.table(
      TableDecl<Ship>("Ship")
          .orderby_lit("Int")
          .orderby_seq("frame", &Ship::frame)
          .hash([](const Ship& s) {
            return hash_fields(s.frame, s.x, s.y, s.dx, s.dy);
          })
          .primary_key([](const Ship& s) { return s.frame; }));

  // The movement rule: right in 150px jumps until x = 460, then descend
  // twice in 10px steps, then back left — the Fig 2 trajectory.
  eng.rule(ship, "move", [&](RuleCtx& ctx, const Ship& s) {
    if (s.frame >= 7) return;  // end of the recorded trajectory
    if (s.dx > 0 && s.x + s.dx > 460) {
      ship.put(ctx, Ship{s.frame + 1, s.x, s.y + 10, 0, 10});  // turn down
    } else if (s.dy > 0 && s.y >= 30) {
      ship.put(ctx, Ship{s.frame + 1, s.x - 150, s.y, -150, 0});  // turn left
    } else {
      ship.put(ctx, Ship{s.frame + 1, s.x + s.dx, s.y + s.dy, s.dx, s.dy});
    }
  });

  // put new Ship(0, 10, 10, 150, 0)  — by position, as in §3.
  eng.put(ship, Ship{0, 10, 10, 150, 0});
  const RunReport report = eng.run();

  // Print the Ship table exactly like Fig 2.
  std::printf("Ship\n%6s %5s %5s %5s %5s\n", "frame", "x", "y", "dx", "dy");
  std::vector<Ship> rows;
  ship.scan([&](const Ship& s) { rows.push_back(s); });
  for (const Ship& s : rows) {
    std::printf("%6lld %5lld %5lld %5lld %5lld\n",
                static_cast<long long>(s.frame), static_cast<long long>(s.x),
                static_cast<long long>(s.y), static_cast<long long>(s.dx),
                static_cast<long long>(s.dy));
  }

  std::printf("\n%lld tuples in %lld causality batches\n\n",
              static_cast<long long>(report.tuples),
              static_cast<long long>(report.batches));
  std::printf("%s\n", viz::stats_report(eng).c_str());
  return 0;
}
