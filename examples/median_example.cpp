// The §6.6 Median program: iterative parallel pivot partitioning with a
// central controller, expressed as JStar rules over the two-copy Data
// array, versus the sort-based baseline.
//
// Usage: median_example [n] [threads]
#include <cstdio>
#include <cstdlib>

#include "apps/median/median.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace jstar::apps::median;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 2000000;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("finding the median of %lld random doubles\n",
              static_cast<long long>(n));
  const auto values = random_values(n, /*seed=*/7);

  JStarConfig config;
  config.engine.threads = threads;

  jstar::WallTimer t1;
  const double jstar_median = median_jstar(values, config);
  const double jstar_s = t1.seconds();

  jstar::WallTimer t2;
  const double sorted_median = median_sort(values);
  const double sort_s = t2.seconds();

  jstar::WallTimer t3;
  const double select_median = median_quickselect(values);
  const double select_s = t3.seconds();

  std::printf("JStar partition program (%d threads): %.17g  (%s)\n", threads,
              jstar_median, jstar::format_duration(jstar_s).c_str());
  std::printf("baseline full sort:                   %.17g  (%s)\n",
              sorted_median, jstar::format_duration(sort_s).c_str());
  std::printf("baseline quickselect:                 %.17g  (%s)\n",
              select_median, jstar::format_duration(select_s).c_str());

  if (jstar_median != sorted_median || jstar_median != select_median) {
    std::printf("!! results disagree\n");
    return 1;
  }
  std::printf("all three agree.\n");
  return 0;
}
