// The Fig 5 ShortestPath program: a random connected graph, then
// Dijkstra's algorithm where the Delta tree *is* the priority queue.
//
// Usage: shortest_path [vertices] [edges] [threads]
#include <cstdio>
#include <cstdlib>

#include "apps/dijkstra/dijkstra.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace jstar::apps::dijkstra;

  const std::int32_t vertices = argc > 1 ? std::atoi(argv[1]) : 50000;
  const std::int64_t edges = argc > 2 ? std::atoll(argv[2]) : vertices * 2;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;

  std::printf("graph: %d vertices, %lld edges (tree + random extras)\n",
              vertices, static_cast<long long>(edges));

  // Graph creation as a JStar program, split into 24 parallel generation
  // tasks (§6.5's bottleneck fix).
  jstar::EngineOptions opts;
  opts.threads = threads;
  jstar::WallTimer gen_timer;
  const Graph g = random_graph_jstar(vertices, edges, /*seed=*/42,
                                     /*gen_tasks=*/24, opts);
  std::printf("generation (24 JStar tasks): %s\n",
              jstar::format_duration(gen_timer.seconds()).c_str());

  jstar::WallTimer jstar_timer;
  const Distances jstar_dist = shortest_paths_jstar(g, opts);
  const double jstar_s = jstar_timer.seconds();

  jstar::WallTimer base_timer;
  const Distances base_dist = shortest_paths_baseline(g);
  const double base_s = base_timer.seconds();

  std::int64_t mismatches = 0;
  std::int64_t max_dist = 0;
  for (std::size_t v = 0; v < jstar_dist.size(); ++v) {
    if (jstar_dist[v] != base_dist[v]) ++mismatches;
    if (jstar_dist[v] > max_dist) max_dist = jstar_dist[v];
  }

  std::printf("JStar (Delta tree as priority queue): %s\n",
              jstar::format_duration(jstar_s).c_str());
  std::printf("baseline (binary heap):               %s\n",
              jstar::format_duration(base_s).c_str());
  std::printf("eccentricity of vertex 0: %lld;  mismatches: %lld\n",
              static_cast<long long>(max_dist),
              static_cast<long long>(mismatches));
  // Print a few shortest paths the way the Fig 5 rule's println would.
  for (std::int32_t v = 0; v < std::min(vertices, 5); ++v) {
    std::printf("shortest path to %d is %lld\n", v,
                static_cast<long long>(jstar_dist[static_cast<std::size_t>(v)]));
  }
  return mismatches == 0 ? 0 : 1;
}
