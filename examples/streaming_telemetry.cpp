// Streaming telemetry — the long-lived-service shape of the engine
// (src/stream/streaming.h): sensor readings arrive from concurrent
// producer threads, the engine re-reaches fixpoint epoch by epoch, a
// retain(N) window keeps Gamma bounded however long the stream runs, and
// a consumer polls alerts out of the stream while it is still running.
//
// The program: Reading(sensor, seq, value) tuples stream in.  A rule
// compares each reading against the retained window of its sensor's
// recent readings and emits an Alert when the value jumped by more than
// 2x — a join against the *recent past*, which is exactly what retain(N)
// keeps alive and what -noGamma would throw away.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "stream/streaming.h"

using namespace jstar;
using namespace jstar::stream;

namespace {

struct Reading {
  std::int64_t sensor, seq, value;
  auto operator<=>(const Reading&) const = default;
};

struct Alert {
  std::int64_t sensor, seq, value, previous;
};

}  // namespace

int main() {
  StreamOptions sopts;
  sopts.ring_capacity = 1024;
  sopts.max_epoch_tuples = 32;  // small epochs: low alert latency

  EngineOptions eopts;
  eopts.sequential = true;

  Table<Reading>* readings_table = nullptr;
  using Stream = StreamingEngine<Reading, Alert>;
  Stream stream(
      sopts, eopts,
      [&readings_table](Engine& eng, const Stream::Emit& emit) {
        auto& readings = eng.table(
            TableDecl<Reading>("Reading")
                .orderby_lit("R")
                .orderby_seq("seq", &Reading::seq)
                .hash([](const Reading& r) {
                  return hash_fields(r.sensor, r.seq, r.value);
                })
                .retain(4));  // keep 4 epochs of history for the join
        readings_table = &readings;
        eng.rule(readings, "spike_alert",
                 [&readings, emit](RuleCtx&, const Reading& r) {
                   readings.scan([&](const Reading& prev) {
                     if (prev.sensor == r.sensor && prev.seq == r.seq - 1 &&
                         r.value > 2 * prev.value) {
                       emit(Alert{r.sensor, r.seq, r.value, prev.value});
                     }
                   });
                 });
        return [&readings, &eng](const Reading& r) {
          eng.put(readings, r);
        };
      });

  // Two producer threads stream interleaved sensor readings; sensor 7
  // spikes every 50th sequence number.
  constexpr std::int64_t kReadings = 2000;
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&stream, t] {
      for (std::int64_t i = t; i < kReadings; i += 2) {
        const std::int64_t sensor = i % 16;
        const bool spike = sensor == 7 && (i / 16) % 50 == 49;
        stream.publish(Reading{sensor, i / 16, spike ? 100 : 10});
      }
    });
  }
  for (auto& th : producers) th.join();

  const std::vector<Alert> alerts = stream.drain();
  const StreamReport report = stream.report();

  std::printf("telemetry stream: %s\n", report.summary().c_str());
  std::printf("alerts: %zu\n", alerts.size());
  for (std::size_t i = 0; i < alerts.size() && i < 3; ++i) {
    std::printf("  sensor %lld seq %lld jumped %lld -> %lld\n",
                static_cast<long long>(alerts[i].sensor),
                static_cast<long long>(alerts[i].seq),
                static_cast<long long>(alerts[i].previous),
                static_cast<long long>(alerts[i].value));
  }
  // The retain(4) window is why this can run forever: Gamma holds at most
  // 4 epochs x 32 tuples of the 2000-reading history.
  std::printf("gamma live: %zu of %lld readings (retain(4) window, %lld "
              "retired)\n",
              readings_table->gamma_size(),
              static_cast<long long>(kReadings),
              static_cast<long long>(
                  readings_table->stats().gamma_retired.load()));
  stream.stop();
  return 0;
}
