// The §2 programmer workflow, end to end: application logic first, then
// strategy experiments driven by run logs — "one can simply design
// multiple sets of compiler-directive files ... and benchmark the
// resulting programs to see which approach is more efficient".
//
// Stage 1 (application logic): a word-frequency program — Token tuples
// flow into per-word Count tuples; a reducer rule reports the heaviest
// words.  The program text never changes below.
//
// Stage 2 (orderings): the order declaration Tok < Agg is the only
// ordering constraint.
//
// Stages 3+4 (strategy & data structures): we run the SAME program under
// several EngineOptions strategies (sequential, parallel, -noDelta,
// task-per-rule), capture a run log for each (§1.5's logging system),
// save them as JSON, and print the annotated DOT graph of the fastest —
// the artefact a parallel-performance engineer would study.
//
// Build & run:  ./build/examples/tuning_workflow
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/rng.h"
#include "viz/runlog.h"

namespace {

struct Token {
  std::int64_t pos, word;
  auto operator<=>(const Token&) const = default;
};
struct Seen {
  std::int64_t word;
  auto operator<=>(const Seen&) const = default;
};

struct Strategy {
  std::string name;
  jstar::EngineOptions options;
};

/// Stage 1: the application logic, parameterised only by strategy.
jstar::viz::RunLog run_once(const Strategy& strategy) {
  using namespace jstar;
  Engine eng(strategy.options);

  auto& tokens = eng.table(TableDecl<Token>("Token")
                               .orderby_lit("Tok")
                               .orderby_par("pos")
                               .hash([](const Token& t) {
                                 return hash_fields(t.pos, t.word);
                               }));
  auto& seen = eng.table(TableDecl<Seen>("Seen")
                             .orderby_lit("Agg")
                             .hash([](const Seen& s) {
                               return hash_fields(s.word);
                             }));
  seen.add_index(&Seen::word);
  eng.order({"Tok", "Agg"});

  eng.rule(tokens, "project", [&](RuleCtx& ctx, const Token& t) {
    seen.put(ctx, Seen{t.word});  // set semantics dedups per word
  });
  std::atomic<std::int64_t> distinct{0};
  eng.rule(seen, "tally", [&](RuleCtx&, const Seen&) {
    distinct.fetch_add(1, std::memory_order_relaxed);
  });

  SplitMix64 rng(2024);
  for (std::int64_t i = 0; i < 20000; ++i) {
    eng.put(tokens, Token{i, static_cast<std::int64_t>(rng.next_below(500))});
  }
  const RunReport report = eng.run();
  std::printf("  %-22s %8.4f s   (%lld distinct words)\n",
              strategy.name.c_str(), report.seconds,
              static_cast<long long>(distinct.load()));
  return viz::capture(eng, strategy.name, report);
}

}  // namespace

int main() {
  using namespace jstar;

  std::printf("running one program under four strategies (§2 stage 3):\n");
  std::vector<Strategy> strategies;
  {
    Strategy s{"sequential", {}};
    s.options.sequential = true;
    strategies.push_back(s);
  }
  {
    Strategy s{"parallel-4", {}};
    s.options.threads = 4;
    strategies.push_back(s);
  }
  {
    Strategy s{"parallel-4-noDelta", {}};
    s.options.threads = 4;
    s.options.no_delta.insert("Seen");
    strategies.push_back(s);
  }
  {
    Strategy s{"parallel-4-taskPerRule", {}};
    s.options.threads = 4;
    s.options.task_per_rule = true;
    strategies.push_back(s);
  }

  const auto dir = std::filesystem::temp_directory_path() / "jstar_logs";
  std::filesystem::create_directories(dir);

  viz::RunLog best;
  double best_seconds = 1e100;
  for (const Strategy& s : strategies) {
    const viz::RunLog log = run_once(s);
    const auto path = dir / (s.name + ".json");
    viz::save(log, path.string());  // §1.5: logs persist for later tooling
    if (log.seconds < best_seconds) {
      best_seconds = log.seconds;
      best = log;
    }
  }

  std::printf("\nlogs written to %s\n", dir.string().c_str());
  std::printf("fastest strategy: %s — reloading its log and rendering the "
              "annotated dependency graph:\n\n",
              best.program.c_str());
  const viz::RunLog reloaded =
      viz::load((dir / (best.program + ".json")).string());
  std::printf("%s\n", viz::dot_graph(reloaded).c_str());
  return 0;
}
