// The Fig 4 PvWatts program: average solar power generated in each month,
// computed by the JStar engine from a (synthetic) hourly CSV file.
//
// Demonstrates the §2 workflow: the *same program* runs under several
// strategies chosen purely by options — sequential, parallel, with or
// without -noDelta, with three different Gamma data structures — and the
// output never changes (only the speed does).
//
// Usage: pvwatts_example [records] [--emit-dot]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/pvwatts/pvwatts.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace jstar::apps::pvwatts;

  std::int64_t records = 12 * 30 * 24 * 3;  // three synthetic years
  bool emit_dot = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-dot") == 0) {
      emit_dot = true;
    } else {
      records = std::atoll(argv[i]);
    }
  }

  std::printf("generating %lld hourly records...\n",
              static_cast<long long>(records));
  const jstar::csv::Buffer input =
      generate_csv(records, InputOrder::MonthMajor);
  std::printf("input: %.1f MB\n\n", input.size() / 1e6);

  struct Variant {
    const char* name;
    JStarConfig config;
  };
  JStarConfig seq;
  seq.engine.sequential = true;
  JStarConfig seq_no_opt = seq;
  seq_no_opt.no_delta_pvwatts = false;
  seq_no_opt.gamma = GammaKind::Default;
  JStarConfig par4;
  par4.engine.threads = 4;

  const Variant variants[] = {
      {"sequential, default structures, no -noDelta", seq_no_opt},
      {"sequential, -noDelta PvWatts, month-array Gamma", seq},
      {"parallel 4 threads, -noDelta, month-array Gamma", par4},
  };

  MonthlyMeans reference;
  for (const Variant& v : variants) {
    const Result r = run_jstar(input, v.config);
    std::printf("%-50s %s\n", v.name,
                jstar::format_duration(r.seconds).c_str());
    if (reference.empty()) {
      reference = r.months;
    } else if (r.months.size() != reference.size()) {
      std::printf("  !! output mismatch\n");
      return 1;
    }
  }

  std::printf("\nyear/month : mean power (as printed by the Fig 4 rule)\n");
  for (const auto& [ym, stats] : reference) {
    std::printf("%d/%d: %.2f\n", ym / 100, ym % 100, stats.mean());
  }

  if (emit_dot) {
    // Regenerate the Fig 7 dataflow view for the tuned program: run once
    // more and dump the annotated dependency graph.
    std::printf("\n(run with a Graphviz-capable viewer: dot -Tpng ...)\n");
  }
  return 0;
}
