// Static causality checking (§4): the proof obligations the JStar
// compiler sends to SMT solvers, discharged by the built-in
// Fourier–Motzkin prover.
//
// Shows four rules: the Ship move rule (provable), the Dijkstra settle
// rule (provable given the edge-weight invariant), a deliberately broken
// rule that earns the paper's "Stratification error" warning with a
// concrete counterexample, and the Ship rule again with its spec derived
// mechanically from the engine-side table declaration (smt/bridge.h).
#include <cstdio>

#include "core/engine.h"
#include "smt/bridge.h"
#include "smt/causality.h"

using namespace jstar::smt;

namespace {

struct ShipTuple {
  std::int64_t frame, x;
  auto operator<=>(const ShipTuple&) const = default;
};

void report(const std::vector<ObligationResult>& results) {
  for (const auto& r : results) {
    const char* verdict = r.status == ProofStatus::Proved    ? "PROVED "
                          : r.status == ProofStatus::Refuted ? "REFUTED"
                                                             : "UNKNOWN";
    std::printf("  [%s] %s\n", verdict, r.description.c_str());
    if (!r.detail.empty()) std::printf("           %s\n", r.detail.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  CausalityChecker checker;

  // Rule 1: foreach (Ship s) { if (s.x < 400) put Ship(s.frame+1, ...) }
  {
    RuleSpec rule;
    rule.name = "Ship.moveRight";
    const VarId frame = rule.vars.fresh("s.frame");
    const VarId x = rule.vars.fresh("s.x");
    rule.premise.push_back(lt(LinExpr::var(x), LinExpr(400)));
    rule.trigger_key = {LinExpr::var(frame)};
    rule.puts.push_back({"Ship", {LinExpr::var(frame) + LinExpr(1)}, {}});
    std::printf("Ship move rule (Fig 2/§3):\n");
    report(checker.check(rule));
  }

  // Rule 2: the Fig 5 Dijkstra rule with orderby (Int, seq distance, Lit).
  {
    RuleSpec rule;
    rule.name = "Dijkstra.settle";
    const VarId d = rule.vars.fresh("dist.distance");
    const VarId w = rule.vars.fresh("edge.value");
    rule.premise.push_back(ge(LinExpr::var(w), LinExpr(1)));  // inv(Edge)
    rule.trigger_key = {LinExpr(0), LinExpr::var(d), LinExpr(0)};
    rule.puts.push_back({"Done", {LinExpr(0), LinExpr::var(d), LinExpr(1)}, {}});
    rule.puts.push_back(
        {"Estimate",
         {LinExpr(0), LinExpr::var(d) + LinExpr::var(w), LinExpr(0)},
         {}});
    // The `get uniq? Done(...)` checks are negative queries over strictly
    // earlier Done tuples: orderby(Done(d', 1)) with d' < d.
    const VarId dq = rule.vars.fresh("done.distance");
    rule.queries.push_back(
        {"Done",
         {LinExpr(0), LinExpr::var(dq), LinExpr(1)},
         true,
         {lt(LinExpr::var(dq), LinExpr::var(d))}});
    std::printf("Dijkstra settle rule (Fig 5):\n");
    report(checker.check(rule));
  }

  // Rule 3: a broken rule that updates the past — the checker refutes it
  // and prints the counterexample the programmer needs.
  {
    RuleSpec rule;
    rule.name = "Broken.rewind";
    const VarId t = rule.vars.fresh("t");
    rule.trigger_key = {LinExpr::var(t)};
    rule.puts.push_back({"Event", {LinExpr::var(t) - LinExpr(5)}, {}});
    std::printf("Broken rewind rule (Stratification error expected):\n");
    report(checker.check(rule));
  }

  // Rule 4: the same Ship rule, but with the spec derived mechanically
  // from the engine-side table declaration via the bridge — literal ranks
  // and key layout come from the orderby/order declarations, only the
  // field arithmetic (frame + 1) is restated.
  {
    jstar::Engine eng(jstar::EngineOptions{.sequential = true});
    auto& ship = eng.table(
        jstar::TableDecl<ShipTuple>("Ship")
            .orderby_lit("Int")
            .orderby_seq("frame", &ShipTuple::frame)
            .hash([](const ShipTuple& s) {
              return jstar::hash_fields(s.frame, s.x);
            }));
    eng.prepare();

    RuleSpecBuilder builder(eng.orders(), "Ship.moveRight(bridged)");
    auto trig = builder.trigger("Ship", ship.orderby_spec());
    auto put = builder.put("Ship", ship.orderby_spec());
    put.bind("frame", trig["frame"] + LinExpr(1));
    builder.add_put(put);
    std::printf("Ship move rule, spec derived from the table declaration:\n");
    report(checker.check(builder.build()));
  }

  return 0;
}
