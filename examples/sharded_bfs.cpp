// Sharded BFS reachability under both cluster schedules — the §2 stage 3
// demo: the SAME program (one table, one expand rule, hash routing) runs
// bulk-synchronous or fully pipelined by flipping ShardedOptions::mode,
// and computes the identical fixpoint either way.
//
//   * Bsp:   barrier-synchronised supersteps; deterministic message
//            accounting, supersteps == wavefront depth.
//   * Async: long-lived shard workers drain mailboxes and fire rules while
//            other shards are still computing; termination by credit
//            counting (see src/dist/sharded.h).
//
// Usage: sharded_bfs [vertices] [edges] [shards]
#include <cstdio>
#include <cstdlib>

#include "dist/sharded.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

struct Visit {
  std::int64_t vertex;
  auto operator<=>(const Visit&) const = default;
};

using Graph = std::vector<std::vector<std::int64_t>>;

Graph random_graph(std::int64_t vertices, std::int64_t edges,
                   std::uint64_t seed) {
  Graph g(static_cast<std::size_t>(vertices));
  jstar::SplitMix64 rng(seed);
  for (std::int64_t v = 1; v < vertices; ++v) {
    g[static_cast<std::size_t>(v - 1)].push_back(v);
  }
  for (std::int64_t e = 0; e < edges; ++e) {
    const auto from = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    const auto to = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    g[static_cast<std::size_t>(from)].push_back(to);
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jstar;
  using namespace jstar::dist;

  const std::int64_t vertices = argc > 1 ? std::atoll(argv[1]) : 100000;
  const std::int64_t edges = argc > 2 ? std::atoll(argv[2]) : 200000;
  const int shards = argc > 3 ? std::atoi(argv[3]) : 4;
  const Graph g = random_graph(vertices, edges, 7);

  std::printf("sharded BFS: %lld vertices, %lld edges, %d shards\n",
              static_cast<long long>(vertices),
              static_cast<long long>(edges), shards);

  std::int64_t bsp_reached = -1;
  for (const ShardedMode mode : {ShardedMode::Bsp, ShardedMode::Async}) {
    EngineOptions opts;
    opts.sequential = true;  // per-shard engines; async parallelism is
                             // across shards, not within one

    // The program: Visit(v) and an edge v->w derives Visit(w) on the shard
    // that owns w.  Strategy (the schedule) lives entirely in `mode`.
    std::vector<Table<Visit>*> tables(static_cast<std::size_t>(shards));
    ShardedEngine<Visit> cluster(
        shards, opts, ShardedOptions{mode, 0},
        [&g, &tables, shards](int shard, Engine& eng, Sender<Visit>& sender) {
          auto& visits =
              eng.table(TableDecl<Visit>("Visit")
                            .orderby_lit("V")
                            .orderby_seq("vertex", &Visit::vertex)
                            .hash([](const Visit& v) {
                              return hash_fields(v.vertex);
                            }));
          tables[static_cast<std::size_t>(shard)] = &visits;
          eng.rule(visits, "expand",
                   [&g, &sender, shards](RuleCtx&, const Visit& v) {
                     for (const std::int64_t to :
                          g[static_cast<std::size_t>(v.vertex)]) {
                       sender.send(partition_of(to, shards), Visit{to});
                     }
                   });
          return [&visits, &eng](const Visit& v) { eng.put(visits, v); };
        });

    cluster.seed(partition_of(0, shards), Visit{0});
    WallTimer timer;
    const ShardedRunReport report = cluster.run();

    std::int64_t reached = 0;
    for (auto* t : tables) {
      reached += static_cast<std::int64_t>(t->gamma_size());
    }
    const char* name = mode == ShardedMode::Bsp ? "bsp  " : "async";
    std::printf(
        "%s  %8.3f s   reached %lld   %s %d   messages %lld (%lld local)\n",
        name, timer.seconds(), static_cast<long long>(reached),
        mode == ShardedMode::Bsp ? "supersteps" : "max epochs",
        report.supersteps, static_cast<long long>(report.messages),
        static_cast<long long>(report.local_messages));

    if (bsp_reached < 0) {
      bsp_reached = reached;
    } else if (reached != bsp_reached) {
      std::printf("MISMATCH: async reached %lld but BSP reached %lld\n",
                  static_cast<long long>(reached),
                  static_cast<long long>(bsp_reached));
      return 1;
    }
  }
  std::printf("both schedules computed the same fixpoint\n");
  return 0;
}
