// Randomized differential sweeps for the counted (multiset) Gamma
// semantics: delete-heavy and upsert-heavy signed schedules replayed
// across sequential / parallel / BSP-sharded / async-sharded execution
// and the default / flat / columnar substrates, pinned against the
// stratified net-count oracle (tests/differential.h) — and, for the
// shapes the oracle cannot close over (retain(N) windows, keyed
// upserts), against the sequential engine as cross-mode reference.
//
// Sweep sizes scale with JSTAR_TEST_SEEDS (default 200; nightly 2000) and
// every assertion prints a one-seed replay command.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "differential.h"
#include "stream/streaming.h"
#include "util/rng.h"

namespace jstar {
namespace {

using difftest::CountedCase;
using difftest::SignedOp;
using difftest::StoreKind;
using difftest::Tok;
using difftest::Wave;
using difftest::add_rules;
using difftest::counted_oracle;
using difftest::counted_sharded_fixpoint;
using difftest::counted_single_fixpoint;
using difftest::kUpsertOp;
using difftest::make_delete_heavy_case;
using difftest::make_upsert_heavy_case;
using difftest::repro;
using difftest::seed_base;
using difftest::seed_count;
using difftest::to_string;
using difftest::tok_decl;
using difftest::upsert_single_fixpoint;

constexpr const char* kExe = "test_retract_differential";

StoreKind store_for(std::uint64_t seed) {
  constexpr StoreKind kStores[] = {StoreKind::Default, StoreKind::FlatOrdered,
                                   StoreKind::Columnar};
  return kStores[seed % 3];
}

// ---------------------------------------------------------------------------
// Delete-heavy: every mode against the closed-form net-count oracle.
// ---------------------------------------------------------------------------

TEST(RetractDifferential, DeleteHeavySweepMatchesNetCountOracle) {
  constexpr const char* kFilter =
      "RetractDifferential.DeleteHeavySweepMatchesNetCountOracle";
  const int shard_choices[] = {1, 2, 4};
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(200);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const CountedCase c = make_delete_heavy_case(seed);
    const StoreKind store = store_for(seed);
    const int shards = shard_choices[seed % 3];
    const std::set<Tok> expect = counted_oracle(c);

    EngineOptions seq;
    seq.sequential = true;
    ASSERT_EQ(counted_single_fixpoint(c, seq, store), expect)
        << "sequential x " << to_string(store) << ", "
        << repro(seed, kExe, kFilter);

    if (seed % 3 == 1) {
      EngineOptions par;
      par.sequential = false;
      par.threads = 3;
      ASSERT_EQ(counted_single_fixpoint(c, par, store), expect)
          << "parallel x " << to_string(store) << ", "
          << repro(seed, kExe, kFilter);
    }

    const bool par_shards = (seed % 8) == 7;
    ASSERT_EQ(counted_sharded_fixpoint(c, shards, dist::ShardedMode::Bsp,
                                       !par_shards, store),
              expect)
        << "bsp x " << shards << " shards x " << to_string(store) << ", "
        << repro(seed, kExe, kFilter);
    ASSERT_EQ(counted_sharded_fixpoint(c, shards, dist::ShardedMode::Async,
                                       !par_shards, store),
              expect)
        << "async x " << shards << " shards x " << to_string(store) << ", "
        << repro(seed, kExe, kFilter);
  }
}

// ---------------------------------------------------------------------------
// Upsert-heavy: keyed overwrites have no closed-form oracle (they resolve
// against the live pk row at processing time), so the sequential engine
// is the reference every other mode must match.
// ---------------------------------------------------------------------------

TEST(RetractDifferential, UpsertHeavySweepAgreesAcrossModes) {
  constexpr const char* kFilter =
      "RetractDifferential.UpsertHeavySweepAgreesAcrossModes";
  const int shard_choices[] = {1, 2, 4};
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(200);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const CountedCase c = make_upsert_heavy_case(seed);
    const StoreKind store = store_for(seed);
    const int shards = shard_choices[seed % 3];

    EngineOptions seq;
    seq.sequential = true;
    const std::set<Tok> expect = upsert_single_fixpoint(c, seq, store);

    // Every live key holds exactly one row (pk uniqueness).
    std::set<std::int64_t> keys;
    for (const Tok& t : expect) {
      ASSERT_TRUE(keys.insert(t.key).second)
          << "duplicate pk " << t.key << ", " << repro(seed, kExe, kFilter);
    }

    if (seed % 2 == 1) {
      EngineOptions par;
      par.sequential = false;
      par.threads = 3;
      ASSERT_EQ(upsert_single_fixpoint(c, par, store), expect)
          << "parallel x " << to_string(store) << ", "
          << repro(seed, kExe, kFilter);
    }

    ASSERT_EQ(counted_sharded_fixpoint(c, shards, dist::ShardedMode::Bsp,
                                       /*sequential_engines=*/true, store,
                                       /*retain=*/0, /*epoch_per_wave=*/false,
                                       /*with_pk=*/true),
              expect)
        << "bsp x " << shards << " shards x " << to_string(store) << ", "
        << repro(seed, kExe, kFilter);
    ASSERT_EQ(counted_sharded_fixpoint(c, shards, dist::ShardedMode::Async,
                                       /*sequential_engines=*/true, store,
                                       /*retain=*/0, /*epoch_per_wave=*/false,
                                       /*with_pk=*/true),
              expect)
        << "async x " << shards << " shards x " << to_string(store) << ", "
        << repro(seed, kExe, kFilter);
  }
}

// ---------------------------------------------------------------------------
// retain(N) windows x retractions.  Presence under signed schedules is
// mode-confluent, but *re-insertion epochs* are not: a retract and a
// re-derivation that annihilate inside one sequential delta batch (no
// transition, original epoch tag kept) can arrive a round apart through
// the sharded mailbox (count dips to zero and back, re-tagging the tuple
// at the current epoch) — and retain(N) windows observe those tags, so
// cross-mode set equality is deliberately NOT asserted (same stance as
// test_flat_differential.cpp).  What IS guaranteed, and swept here:
// within every execution mode the three windowed substrates agree tuple
// for tuple and retire identical volumes, and each mode is internally
// deterministic (BSP replays to the same set).
// ---------------------------------------------------------------------------

struct WindowedOut {
  std::set<Tok> tuples;
  std::int64_t retired = 0;
};

WindowedOut windowed_run(const CountedCase& c, int exec, int shards,
                         StoreKind store, std::int64_t retain) {
  WindowedOut out;
  if (exec == 0) {
    EngineOptions seq;
    seq.sequential = true;
    Engine eng(seq);
    TableDecl<Tok> decl = tok_decl(store).counted().retain(retain);
    auto& toks = eng.table(decl);
    add_rules(eng, toks, c.p, [&toks](RuleCtx& ctx, const Tok& t) {
      toks.put(ctx, t);
    });
    for (const Wave& w : c.waves) {
      eng.begin_epoch();
      for (const SignedOp& op : w) difftest::apply_op(eng, toks, op);
      eng.run();
    }
    toks.scan([&out](const Tok& t) { out.tuples.insert(t); });
    out.retired = toks.stats().gamma_retired.load();
    return out;
  }
  const dist::ShardedMode mode =
      exec == 1 ? dist::ShardedMode::Bsp : dist::ShardedMode::Async;
  out.tuples = counted_sharded_fixpoint(c, shards, mode,
                                        /*sequential_engines=*/true, store,
                                        retain, /*epoch_per_wave=*/true);
  return out;
}

TEST(RetractDifferential, WindowedDeleteSweepSubstratesAgreeWithinMode) {
  constexpr const char* kFilter =
      "RetractDifferential.WindowedDeleteSweepSubstratesAgreeWithinMode";
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(200);
  std::int64_t swept_runs = 0;  // runs where retention actually fired
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const CountedCase c = make_delete_heavy_case(seed);
    const std::int64_t retain = 2 + static_cast<std::int64_t>(seed % 3);
    const int exec = static_cast<int>(seed % 2);  // 0 sequential, 1 bsp
    const int shards = 1 + static_cast<int>(seed % 2);

    const WindowedOut dflt =
        windowed_run(c, exec, shards, StoreKind::Default, retain);
    const WindowedOut flat =
        windowed_run(c, exec, shards, StoreKind::FlatOrdered, retain);
    const WindowedOut col =
        windowed_run(c, exec, shards, StoreKind::Columnar, retain);

    ASSERT_EQ(flat.tuples, dflt.tuples)
        << "flat vs default, exec " << exec << " retain(" << retain << "), "
        << repro(seed, kExe, kFilter);
    ASSERT_EQ(col.tuples, dflt.tuples)
        << "columnar vs default, exec " << exec << " retain(" << retain
        << "), " << repro(seed, kExe, kFilter);
    if (exec == 0) {
      ASSERT_EQ(flat.retired, dflt.retired) << repro(seed, kExe, kFilter);
      ASSERT_EQ(col.retired, dflt.retired) << repro(seed, kExe, kFilter);
      if (dflt.retired > 0) ++swept_runs;
    } else {
      // BSP is lockstep: every round's mail is fully delivered before the
      // engines run, so the delta tree renders arrival order irrelevant
      // and the same schedule must land on the same set when replayed.
      const WindowedOut again =
          windowed_run(c, exec, shards, StoreKind::Default, retain);
      ASSERT_EQ(again.tuples, dflt.tuples)
          << "bsp replay divergence, " << repro(seed, kExe, kFilter);
    }

    // Async x windows x retractions is timing-defined (mail landing
    // before or after a wave's annihilation partner re-tags the tuple's
    // epoch), so no set-level assertion is sound; the leg still runs to
    // exercise the path — ownership and pk invariants assert inside.
    if (seed % 4 == 0) {
      (void)windowed_run(c, /*exec=*/2, shards, StoreKind::Default, retain);
    }
  }
  EXPECT_GT(swept_runs, 0);
}

// ---------------------------------------------------------------------------
// Streaming epochs carrying retractions: the same delete-heavy schedules
// published through the ordered ring (publish / publish_retract from
// concurrent producers — net counts commute, so producer interleaving
// cannot change the fixpoint), sliced into epochs, and checked against
// the oracle.
// ---------------------------------------------------------------------------

std::vector<SignedOp> flatten_ops(const CountedCase& c) {
  std::vector<SignedOp> ops;
  for (const Wave& w : c.waves) ops.insert(ops.end(), w.begin(), w.end());
  return ops;
}

std::set<Tok> streaming_counted_fixpoint(const CountedCase& c,
                                         const EngineOptions& eopts,
                                         int producers,
                                         std::int64_t max_epoch_tuples) {
  stream::StreamOptions sopts;
  sopts.ring_capacity = 64;
  sopts.max_epoch_tuples = max_epoch_tuples;
  Table<Tok>* table = nullptr;
  stream::StreamingEngine<Tok> s(
      sopts, eopts,
      stream::StreamingEngine<Tok>::SetupHooks(
          [&c, &table](Engine& eng,
                       const stream::StreamingEngine<Tok>::Emit&) {
            auto& toks = eng.table(tok_decl().counted());
            table = &toks;
            add_rules(eng, toks, c.p, [&toks](RuleCtx& ctx, const Tok& t) {
              toks.put(ctx, t);
            });
            stream::StreamingEngine<Tok>::Hooks hooks;
            hooks.deliver = [&toks, &eng](const Tok& t) { eng.put(toks, t); };
            hooks.deliver_signed = [&toks](const Tok& t, std::int32_t sign) {
              toks.seed_signed(t, sign);
            };
            return hooks;
          }));
  const std::vector<SignedOp> ops = flatten_ops(c);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&s, &ops, t, producers] {
      for (std::size_t i = static_cast<std::size_t>(t); i < ops.size();
           i += static_cast<std::size_t>(producers)) {
        if (ops[i].sign < 0) {
          s.publish_retract(ops[i].t);
        } else {
          s.publish(ops[i].t);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  s.drain();
  s.stop();
  std::set<Tok> out;
  table->scan([&out](const Tok& t) { out.insert(t); });
  return out;
}

TEST(RetractDifferential, StreamingDeleteSweepMatchesNetCountOracle) {
  constexpr const char* kFilter =
      "RetractDifferential.StreamingDeleteSweepMatchesNetCountOracle";
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(200);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const CountedCase c = make_delete_heavy_case(seed);
    const std::set<Tok> expect = counted_oracle(c);
    SplitMix64 rng(seed ^ 0x2545f4914f6cdd1dULL);
    const int producers = 1 + static_cast<int>(rng.next_below(3));
    const std::int64_t slice =
        1 + static_cast<std::int64_t>(rng.next_below(4));

    EngineOptions eopts;
    eopts.sequential = (seed % 4) != 3;
    eopts.threads = 2;
    ASSERT_EQ(streaming_counted_fixpoint(c, eopts, producers, slice), expect)
        << (eopts.sequential ? "sequential" : "parallel") << " x "
        << producers << " producers x slice " << slice << ", "
        << repro(seed, kExe, kFilter);
  }
}

}  // namespace
}  // namespace jstar
