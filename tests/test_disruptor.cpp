// Tests for the Disruptor ring buffer (§6.3, Table 1): single-producer
// publication order, multi-consumer broadcast, wrap-around gating, batch
// claims, all three wait strategies, and the sentinel protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "disruptor/ring_buffer.h"

namespace jstar::disruptor {
namespace {

struct Event {
  std::int64_t value = 0;
  bool sentinel = false;
};

TEST(RingBuffer, RejectsNonPowerOfTwo) {
  EXPECT_THROW(RingBuffer<int>(100), CheckError);
  EXPECT_THROW(RingBuffer<int>(0), CheckError);
  EXPECT_NO_THROW(RingBuffer<int>(128));
}

TEST(RingBuffer, ClaimPublishSingleThread) {
  RingBuffer<int> ring(8);
  const int cid = ring.add_consumer();
  for (int i = 0; i < 8; ++i) {
    const std::int64_t s = ring.claim(1);
    ring.slot(s) = i * 10;
    ring.publish(s);
  }
  EXPECT_EQ(ring.cursor(), 7);
  for (std::int64_t s = 0; s <= 7; ++s) {
    EXPECT_EQ(ring.slot(s), static_cast<int>(s) * 10);
  }
  ring.commit(cid, 7);
}

TEST(RingBuffer, BatchClaimReturnsContiguousRange) {
  RingBuffer<int> ring(16);
  ring.add_consumer();
  const std::int64_t hi = ring.claim(4);
  EXPECT_EQ(hi, 3);
  const std::int64_t hi2 = ring.claim(4);
  EXPECT_EQ(hi2, 7);
}

class WaitStrategies : public ::testing::TestWithParam<WaitStrategy> {};

// The fundamental SPSC property: the consumer sees every published value
// in publication order, across many wrap-arounds of a small ring.
TEST_P(WaitStrategies, SpscOrderedDeliveryAcrossWraps) {
  constexpr std::int64_t kEvents = 50000;
  RingBuffer<Event> ring(64, GetParam());
  const int cid = ring.add_consumer();

  std::int64_t received = 0;
  bool ordered = true;
  std::thread consumer([&] {
    consume_loop(ring, cid, [&](const Event& e, std::int64_t) {
      if (e.sentinel) return false;
      if (e.value != received) ordered = false;
      ++received;
      return true;
    });
  });

  for (std::int64_t i = 0; i < kEvents; ++i) {
    const std::int64_t s = ring.claim(1);
    ring.slot(s) = {i, false};
    ring.publish(s);
  }
  const std::int64_t s = ring.claim(1);
  ring.slot(s) = {0, true};
  ring.publish(s);
  consumer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(received, kEvents);
}

// Broadcast: every consumer sees every event (each keeps its own
// sequence), and the producer never overwrites an unconsumed slot.
TEST_P(WaitStrategies, MultiConsumerBroadcast) {
  constexpr std::int64_t kEvents = 20000;
  constexpr int kConsumers = 3;
  RingBuffer<Event> ring(128, GetParam());
  std::vector<int> cids;
  for (int c = 0; c < kConsumers; ++c) cids.push_back(ring.add_consumer());

  std::atomic<std::int64_t> sums[kConsumers] = {};
  std::atomic<std::int64_t> counts[kConsumers] = {};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      consume_loop(ring, cids[static_cast<std::size_t>(c)],
                   [&](const Event& e, std::int64_t) {
        if (e.sentinel) return false;
        sums[c].fetch_add(e.value);
        counts[c].fetch_add(1);
        return true;
      });
    });
  }

  std::int64_t expected = 0;
  for (std::int64_t i = 0; i < kEvents; ++i) {
    const std::int64_t s = ring.claim(1);
    ring.slot(s) = {i, false};
    ring.publish(s);
    expected += i;
  }
  const std::int64_t s = ring.claim(1);
  ring.slot(s) = {0, true};
  ring.publish(s);
  for (auto& t : consumers) t.join();

  for (int c = 0; c < kConsumers; ++c) {
    EXPECT_EQ(counts[c].load(), kEvents) << "consumer " << c;
    EXPECT_EQ(sums[c].load(), expected) << "consumer " << c;
  }
}

// Batched producer claims (Table 1's batch of 256) deliver the same data.
TEST_P(WaitStrategies, BatchedClaims) {
  constexpr std::int64_t kEvents = 4096;
  constexpr std::int64_t kBatch = 256;
  RingBuffer<Event> ring(1024, GetParam());
  const int cid = ring.add_consumer();

  std::int64_t sum = 0, count = 0;
  std::thread consumer([&] {
    consume_loop(ring, cid, [&](const Event& e, std::int64_t) {
      if (e.sentinel) return false;
      sum += e.value;
      ++count;
      return true;
    });
  });

  std::int64_t next_value = 0;
  while (next_value < kEvents) {
    const std::int64_t n = std::min(kBatch, kEvents - next_value);
    const std::int64_t hi = ring.claim(n);
    for (std::int64_t i = 0; i < n; ++i) {
      ring.slot(hi - n + 1 + i) = {next_value++, false};
    }
    ring.publish(hi);
  }
  const std::int64_t s = ring.claim(1);
  ring.slot(s) = {0, true};
  ring.publish(s);
  consumer.join();

  EXPECT_EQ(count, kEvents);
  EXPECT_EQ(sum, kEvents * (kEvents - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, WaitStrategies,
                         ::testing::Values(WaitStrategy::Blocking,
                                           WaitStrategy::Yielding,
                                           WaitStrategy::BusySpin),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

// A slow consumer must gate the producer: with ring size 4, the producer
// cannot run more than 4 events ahead.
TEST(RingBuffer, ProducerGatesOnSlowestConsumer) {
  RingBuffer<Event> ring(4, WaitStrategy::Yielding);
  const int cid = ring.add_consumer();
  std::atomic<std::int64_t> produced{0};
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (std::int64_t i = 0; i < 64; ++i) {
      const std::int64_t s = ring.claim(1);
      ring.slot(s) = {i, false};
      ring.publish(s);
      produced.store(i + 1);
    }
    done.store(true);
  });

  // Consume one event at a time, checking the producer lead.
  std::int64_t next = 0;
  while (next < 64) {
    ring.wait_for(next);
    EXPECT_LE(produced.load() - next, 4 + 1);
    ring.commit(cid, next);
    ++next;
  }
  producer.join();
  EXPECT_TRUE(done.load());
}

TEST(RingBuffer, WaitForReturnsBatchEnd) {
  RingBuffer<int> ring(16);
  ring.add_consumer();
  const std::int64_t hi = ring.claim(5);
  ring.publish(hi);
  EXPECT_EQ(ring.wait_for(0), 4);
  EXPECT_EQ(ring.wait_for(4), 4);
}

}  // namespace
}  // namespace jstar::disruptor
