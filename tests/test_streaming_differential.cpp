// Randomized differential harness for the streaming execution subsystem
// (src/stream/streaming.h): seeded random rule programs whose puts are
// split across random epoch boundaries and concurrent producer threads,
// asserting the streaming fixpoint is tuple-for-tuple identical to the
// one-shot batch oracle under sequential / BSP / Async schedules x 1/2/8
// shards.  The observed set is taken through the stream's own consumer
// API: every fresh tuple is emitted by a table effect and collected with
// drain() — so the test pins ingestion, epoch slicing, fixpoint reruns
// AND the poll/drain output path at once.
//
// Sweep sizes scale with JSTAR_TEST_SEEDS (default 200; nightly 2000) and
// failures print a one-seed replay command (tests/differential.h).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "differential.h"
#include "stream/streaming.h"
#include "util/rng.h"

namespace jstar::stream {
namespace {

using difftest::Program;
using difftest::Tok;
using difftest::add_rules;
using difftest::oracle_fixpoint;
using difftest::random_program;
using difftest::random_small_program;
using difftest::repro;
using difftest::seed_base;
using difftest::seed_count;
using difftest::tok_decl;

/// A random program plus a richer external stream: the base seeds, extra
/// gen-0 events, and duplicate publishes (cross-epoch redelivery must be a
/// no-op).  The oracle sees the deduplicated seed set.
struct StreamCase {
  Program p;
  std::vector<Tok> publishes;  // in publish order, duplicates included
  int producers = 1;
  std::int64_t max_epoch_tuples = 1;
};

StreamCase make_stream_case(std::uint64_t seed) {
  StreamCase c;
  c.p = random_program(seed * 0x9e3779b9ULL + 1);
  SplitMix64 rng(seed ^ 0x5bf03635c1642f1dULL);
  const std::uint64_t extra = rng.next_below(12);  // 0..11 extra events
  for (std::uint64_t i = 0; i < extra; ++i) {
    c.p.seeds.push_back(Tok{static_cast<std::int64_t>(rng.next_below(
                                static_cast<std::uint64_t>(c.p.keys))),
                            0});
  }
  // Dedup the oracle's seed view; the stream still publishes duplicates.
  for (const Tok& s : c.p.seeds) {
    c.publishes.push_back(s);
    if (rng.next_below(3) == 0) c.publishes.push_back(s);  // duplicate
  }
  c.producers = 1 + static_cast<int>(rng.next_below(3));       // 1..3
  c.max_epoch_tuples = 1 + static_cast<std::int64_t>(rng.next_below(4));
  return c;
}

/// Publishes the case's stream from `producers` concurrent threads
/// (round-robin split), then drains and returns the emitted fixpoint.
template <typename Stream>
std::set<Tok> publish_and_drain(Stream& stream, const StreamCase& c) {
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(c.producers));
  for (int t = 0; t < c.producers; ++t) {
    producers.emplace_back([&stream, &c, t] {
      for (std::size_t i = static_cast<std::size_t>(t);
           i < c.publishes.size();
           i += static_cast<std::size_t>(c.producers)) {
        stream.publish(c.publishes[i]);
      }
    });
  }
  for (auto& th : producers) th.join();
  const std::vector<Tok> out = stream.drain();
  return std::set<Tok>(out.begin(), out.end());
}

/// Streaming over one Engine (sequential or parallel).
std::set<Tok> streaming_single_fixpoint(const StreamCase& c,
                                        const EngineOptions& eopts,
                                        StreamReport* report_out = nullptr) {
  StreamOptions sopts;
  sopts.ring_capacity = 64;
  sopts.max_epoch_tuples = c.max_epoch_tuples;
  StreamingEngine<Tok> stream(
      sopts, eopts,
      [&c](Engine& eng, const StreamingEngine<Tok>::Emit& emit) {
        auto& toks = eng.table(tok_decl().effect(emit));
        add_rules(eng, toks, c.p, [&toks](RuleCtx& ctx, const Tok& t) {
          toks.put(ctx, t);
        });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });
  const std::set<Tok> got = publish_and_drain(stream, c);
  if (report_out != nullptr) *report_out = stream.report();
  stream.stop();
  return got;
}

/// Streaming over a sharded cluster under either schedule; ingested and
/// derived tuples are hash-routed to their owner shards.
std::set<Tok> streaming_sharded_fixpoint(const StreamCase& c, int shards,
                                         dist::ShardedMode mode,
                                         bool sequential_engines,
                                         StreamReport* report_out = nullptr) {
  StreamOptions sopts;
  sopts.ring_capacity = 64;
  sopts.max_epoch_tuples = c.max_epoch_tuples;
  EngineOptions eopts;
  eopts.sequential = sequential_engines;
  eopts.threads = 2;
  dist::ShardedOptions dopts;
  dopts.mode = mode;
  ShardedStreamingEngine<Tok> stream(
      sopts, shards, eopts, dopts,
      [&c, shards](int /*shard*/, Engine& eng, dist::Sender<Tok>& sender,
                   const ShardedStreamingEngine<Tok>::Emit& emit) {
        auto& toks = eng.table(tok_decl().effect(emit));
        add_rules(eng, toks, c.p,
                  [&sender, shards](RuleCtx&, const Tok& t) {
                    sender.send(dist::partition_of(t.key, shards), t);
                  });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      },
      [shards](const Tok& t) { return dist::partition_of(t.key, shards); });
  const std::set<Tok> got = publish_and_drain(stream, c);
  if (report_out != nullptr) *report_out = stream.report();
  stream.stop();
  return got;
}

// ---------------------------------------------------------------------------
// The sweep: >= 200 seeds.  Per seed: the batch oracle, streaming over a
// single engine (sequential; every 4th seed parallel), and streaming over
// the sharded cluster under BSP and async with shard counts cycling
// 1/2/8 (every 8th seed upgrades to parallel shard engines).
// ---------------------------------------------------------------------------

TEST(StreamingDifferential, SeededSweepMatchesBatchOracle) {
  constexpr const char* kFilter =
      "StreamingDifferential.SeededSweepMatchesBatchOracle";
  constexpr const char* kExe = "test_streaming_differential";
  const int shard_choices[] = {1, 2, 8};
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(200);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const StreamCase c = make_stream_case(seed);
    const int shards = shard_choices[seed % 3];
    const bool parallel_single = (seed % 4) == 3;
    const bool parallel_shard_engines = (seed % 8) == 7;

    const std::set<Tok> expect = oracle_fixpoint(c.p);

    EngineOptions eopts;
    eopts.sequential = !parallel_single;
    eopts.threads = 2;
    StreamReport single_report;
    ASSERT_EQ(streaming_single_fixpoint(c, eopts, &single_report), expect)
        << (parallel_single ? "(parallel engine), " : "(sequential engine), ")
        << repro(seed, kExe, kFilter);
    // Every publish (duplicates included) was ingested, and the slicing
    // actually split the stream into multiple epochs when it could.
    ASSERT_EQ(single_report.ingested,
              static_cast<std::int64_t>(c.publishes.size()))
        << repro(seed, kExe, kFilter);
    ASSERT_GE(single_report.epochs,
              (static_cast<std::int64_t>(c.publishes.size()) +
               c.max_epoch_tuples - 1) /
                  c.max_epoch_tuples)
        << repro(seed, kExe, kFilter);
    ASSERT_LE(single_report.max_epoch_ingested, c.max_epoch_tuples)
        << repro(seed, kExe, kFilter);

    ASSERT_EQ(streaming_sharded_fixpoint(c, shards, dist::ShardedMode::Bsp,
                                         !parallel_shard_engines),
              expect)
        << "BSP, shards " << shards << ", " << repro(seed, kExe, kFilter);
    ASSERT_EQ(streaming_sharded_fixpoint(c, shards, dist::ShardedMode::Async,
                                         !parallel_shard_engines),
              expect)
        << "async, shards " << shards
        << (parallel_shard_engines ? " (parallel engines), "
                                   : " (sequential engines), ")
        << repro(seed, kExe, kFilter);
  }
}

// ---------------------------------------------------------------------------
// The EngineOptions flag matrix under streaming: the combinations must
// stay oracle-identical when the same program arrives as a stream sliced
// into epochs.  Smaller sweep (the full matrix lives in test_dist_async);
// -noGamma is the interesting axis here because without Gamma dedup a
// duplicate publish re-fires its rules — set semantics of the *output*
// must still converge to the oracle.
// ---------------------------------------------------------------------------

TEST(StreamingDifferential, FlagMatrixUnderStreamingMatchesOracle) {
  constexpr const char* kFilter =
      "StreamingDifferential.FlagMatrixUnderStreamingMatchesOracle";
  constexpr const char* kExe = "test_streaming_differential";
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(12);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    StreamCase c;
    c.p = random_small_program(seed * 0x51ed2701ULL + 3);
    for (const Tok& s : c.p.seeds) c.publishes.push_back(s);
    c.producers = 2;
    c.max_epoch_tuples = 2;
    const std::set<Tok> expect = oracle_fixpoint(c.p);
    for (const bool sequential : {true, false}) {
      for (const bool no_delta : {false, true}) {
        for (const bool no_gamma : {false, true}) {
          EngineOptions opts;
          opts.sequential = sequential;
          opts.threads = 2;
          opts.task_per_rule = !sequential;
          opts.delta_stripes = sequential ? 0 : 4;
          if (no_delta) opts.no_delta.insert("Tok");
          if (no_gamma) opts.no_gamma.insert("Tok");
          ASSERT_EQ(streaming_single_fixpoint(c, opts), expect)
              << "sequential=" << sequential << " no_delta=" << no_delta
              << " no_gamma=" << no_gamma << ", "
              << repro(seed, kExe, kFilter);
        }
      }
    }
  }
}

}  // namespace
}  // namespace jstar::stream
