// Integration tests for API corners not covered elsewhere: primary-key
// lookups under both strategies, range scans through each Gamma store,
// -noGamma query behaviour, run logs from parallel strategies, and a
// whole-pipeline soak combining window retention + indexes + effects.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/engine.h"
#include "viz/runlog.h"
#include "viz/viz.h"

namespace jstar {
namespace {

struct Row {
  std::int64_t key, value;
  auto operator<=>(const Row&) const = default;
};

TableDecl<Row> row_decl(const char* name = "Row") {
  return TableDecl<Row>(name)
      .orderby_lit("R")
      .orderby_seq("key", &Row::key)
      .hash([](const Row& r) { return hash_fields(r.key, r.value); });
}

class BothModes : public ::testing::TestWithParam<bool> {
 protected:
  EngineOptions options() const {
    EngineOptions o;
    o.sequential = GetParam();
    o.threads = 2;
    return o;
  }
};

TEST_P(BothModes, PrimaryKeyLookupAfterRun) {
  Engine eng(options());
  auto& rows = eng.table(row_decl().primary_key(
      [](const Row& r) { return r.key; }));
  for (std::int64_t i = 0; i < 50; ++i) eng.put(rows, Row{i, i * i});
  eng.run();
  const auto hit = rows.get_unique(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 49);
  EXPECT_FALSE(rows.get_unique(999).has_value());
}

TEST_P(BothModes, RangeScanThroughDefaultStore) {
  Engine eng(options());
  auto& rows = eng.table(row_decl());
  for (std::int64_t i = 0; i < 100; ++i) eng.put(rows, Row{i, 0});
  eng.run();
  std::vector<std::int64_t> keys;
  rows.scan_range(Row{10, 0}, Row{20, 0},
                  [&](const Row& r) { keys.push_back(r.key); });
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 19);
}

TEST_P(BothModes, NoGammaTableAnswersQueriesEmpty) {
  EngineOptions opts = options();
  opts.no_gamma.insert("Row");
  Engine eng(opts);
  auto& rows = eng.table(row_decl());
  std::atomic<int> fires{0};
  eng.rule(rows, "observe", [&](RuleCtx&, const Row&) { fires.fetch_add(1); });
  for (std::int64_t i = 0; i < 10; ++i) eng.put(rows, Row{i, i});
  eng.run();
  EXPECT_EQ(fires.load(), 10);            // rules still fire
  EXPECT_EQ(rows.gamma_size(), 0u);       // nothing retained
  EXPECT_FALSE(rows.contains(Row{1, 1}));
  EXPECT_TRUE(rows.none([](const Row&) { return true; }));
}

TEST_P(BothModes, RunLogCapturesAnyStrategy) {
  Engine eng(options());
  auto& rows = eng.table(row_decl());
  auto& out = eng.table(row_decl("Out"));
  eng.order({"R"});  // single literal; both tables share it
  eng.rule(rows, "copy", [&](RuleCtx& ctx, const Row& r) {
    if (r.key < 90) out.put(ctx, Row{r.key + 100, r.value});
  });
  for (std::int64_t i = 0; i < 30; ++i) eng.put(rows, Row{i, 1});
  const RunReport report = eng.run();
  const viz::RunLog log = viz::capture(eng, "both-modes", report);
  ASSERT_EQ(log.tables.size(), 2u);
  EXPECT_EQ(log.tables[0].fires, 30);
  ASSERT_EQ(log.edges.size(), 1u);
  EXPECT_EQ(log.edges[0].count, 30);
  // And the live dot/stats renderers accept the same engine.
  EXPECT_NE(viz::dot_graph(eng, "t").find("Row"), std::string::npos);
  EXPECT_NE(viz::stats_report(eng).find("Out"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Modes, BothModes, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "sequential" : "parallel";
                         });

// ---------------------------------------------------------------------------
// Whole-pipeline soak: window retention + secondary index + effects +
// event-driven reruns, in parallel mode, checked against a model.
// ---------------------------------------------------------------------------

TEST(PipelineSoak, WindowedIndexedEventLoopMatchesModel) {
  struct Reading {
    std::int64_t epoch, sensor, value;
    auto operator<=>(const Reading&) const = default;
  };
  EngineOptions opts;
  opts.threads = 2;
  Engine eng(opts);
  std::atomic<std::int64_t> effects{0};
  auto& readings = eng.table(
      TableDecl<Reading>("Reading")
          .orderby_lit("E")
          .orderby_seq("epoch", &Reading::epoch)
          .orderby_par("sensor")
          .hash([](const Reading& r) {
            return hash_fields(r.epoch, r.sensor, r.value);
          })
          .retain_epochs([](const Reading& r) { return r.epoch; }, 3)
          .effect([&](const Reading&) { effects.fetch_add(1); }));
  readings.add_index(&Reading::sensor);

  constexpr std::int64_t kEpochs = 12;
  constexpr std::int64_t kSensors = 6;
  for (std::int64_t e = 0; e < kEpochs; ++e) {
    for (std::int64_t s = 0; s < kSensors; ++s) {
      eng.put(readings, Reading{e, s, e * 10 + s});
    }
    eng.run();  // event-driven: one wave per epoch
  }

  EXPECT_EQ(effects.load(), kEpochs * kSensors);
  // Window keeps the last 3 epochs only.
  EXPECT_EQ(readings.gamma_size(),
            static_cast<std::size_t>(3 * kSensors));
  // Index answers within the live window.
  std::set<std::int64_t> epochs;
  readings.query(query::eq(&Reading::sensor, 2),
                 [&](const Reading& r) { epochs.insert(r.epoch); });
  EXPECT_EQ(epochs, (std::set<std::int64_t>{kEpochs - 3, kEpochs - 2,
                                            kEpochs - 1}));
  EXPECT_GE(readings.stats().index_lookups.load(), 1);
}

// NullStore's pass-through counter (the -noGamma accounting).
TEST(PipelineSoak, NullStorePassThroughCount) {
  NullStore<Row> store;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store.insert(Row{i, 0}));
  }
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.passed_through(), 5);
  int visited = 0;
  store.scan([&](const Row&) { ++visited; });
  EXPECT_EQ(visited, 0);
}

}  // namespace
}  // namespace jstar
