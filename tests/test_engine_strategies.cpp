// The paper's central determinism claim (§1.3): "the output of the program
// is independent of the parallelism strategy that is used."  One recursive,
// heavily-deduplicating program is run under every strategy combination —
// sequential / parallel x thread counts x -noDelta — and must produce a
// bit-identical output database.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/engine.h"

namespace jstar {
namespace {

/// A branching frontier: each Step(d, x) spawns two Steps at depth d+1
/// whose values collide often (mod arithmetic), exercising both Delta and
/// Gamma dedup, plus an aggregate over a strictly earlier stratum.
struct Step {
  std::int64_t depth, x;
  auto operator<=>(const Step&) const = default;
};
struct Summary {
  std::int64_t token;
  auto operator<=>(const Summary&) const = default;
};

struct Strategy {
  bool sequential;
  int threads;
  bool no_delta_step;
  std::string label;
  bool task_per_rule = false;  // §5.2 one task per (tuple, rule)
  int delta_stripes = 0;       // lock-striped Delta backend (>= 1)
  bool emit_buffer = true;     // batch-at-a-time emission (core/table.h)
};

std::ostream& operator<<(std::ostream& os, const Strategy& s) {
  return os << s.label;
}

struct ProgramOutput {
  std::vector<Step> steps;          // sorted final database
  std::int64_t summary_count = -1;  // aggregate result
};

ProgramOutput run_program(const Strategy& strat) {
  constexpr std::int64_t kDepth = 12;
  constexpr std::int64_t kMod = 257;

  EngineOptions opts;
  opts.sequential = strat.sequential;
  opts.threads = strat.threads;
  opts.task_per_rule = strat.task_per_rule;
  opts.delta_stripes = strat.delta_stripes;
  opts.emit_buffer = strat.emit_buffer;
  if (strat.no_delta_step) opts.no_delta.insert("Step");
  Engine eng(opts);

  auto& step = eng.table(TableDecl<Step>("Step")
                             .orderby_lit("T")
                             .orderby_seq("depth", &Step::depth)
                             .orderby_par("x")
                             .hash([](const Step& s) {
                               return hash_fields(s.depth, s.x);
                             }));
  auto& summary = eng.table(TableDecl<Summary>("Summary")
                                .orderby_lit("Z")
                                .hash([](const Summary& s) {
                                  return hash_fields(s.token);
                                }));
  eng.order({"T", "Z"});

  eng.rule(step, "branch", [&](RuleCtx& ctx, const Step& s) {
    if (s.depth < kDepth) {
      step.put(ctx, Step{s.depth + 1, (s.x * 2 + 1) % kMod});
      step.put(ctx, Step{s.depth + 1, (s.x * 3 + 7) % kMod});
    } else {
      summary.put(ctx, Summary{0});
    }
  });

  ProgramOutput out;
  std::mutex mu;
  eng.rule(summary, "aggregate", [&](RuleCtx&, const Summary&) {
    // Aggregate query over the strictly earlier Step stratum (§4).
    const std::int64_t n = step.count_if([](const Step&) { return true; });
    std::lock_guard<std::mutex> lk(mu);
    out.summary_count = n;
  });

  for (std::int64_t x = 0; x < 4; ++x) eng.put(step, Step{0, x * 50});
  eng.run();

  step.scan([&](const Step& s) { out.steps.push_back(s); });
  std::sort(out.steps.begin(), out.steps.end());
  return out;
}

class DeterminismTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(DeterminismTest, OutputIndependentOfStrategy) {
  static const ProgramOutput reference =
      run_program({true, 1, false, "reference"});
  ASSERT_FALSE(reference.steps.empty());
  ASSERT_GT(reference.summary_count, 0);

  const ProgramOutput got = run_program(GetParam());
  EXPECT_EQ(got.steps, reference.steps);
  EXPECT_EQ(got.summary_count, reference.summary_count);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DeterminismTest,
    ::testing::Values(
        Strategy{true, 1, false, "sequential"},
        Strategy{true, 1, true, "sequential_noDelta"},
        Strategy{false, 1, false, "parallel1"},
        Strategy{false, 2, false, "parallel2"},
        Strategy{false, 4, false, "parallel4"},
        Strategy{false, 8, false, "parallel8"},
        Strategy{false, 4, true, "parallel4_noDelta"},
        Strategy{false, 2, false, "parallel2_taskPerRule", true},
        Strategy{false, 4, false, "parallel4_taskPerRule", true},
        Strategy{false, 4, false, "parallel4_stripedDelta1", false, 1},
        Strategy{false, 4, false, "parallel4_stripedDelta8", false, 8},
        // Direct per-put Delta appends (emit buffering off) must produce
        // the same database as the buffered default, under both firing
        // strategies and with the striped backend's bulk-append disabled.
        Strategy{true, 1, false, "sequential_directEmit", false, 0, false},
        Strategy{false, 4, false, "parallel4_directEmit", false, 0, false},
        Strategy{false, 4, false, "parallel4_taskPerRule_directEmit", true, 0,
                 false},
        Strategy{false, 4, false, "parallel4_stripedDelta8_directEmit", false,
                 8, false}),
    [](const auto& info) { return info.param.label; });

// §5.2: with task_per_rule every rule of a multi-rule table fires in its
// own task; firing counts and effects-per-tuple must be unchanged.
TEST(TaskPerRule, FiresEveryRuleOncePerTupleWithSingleEffect) {
  struct Item {
    std::int64_t id;
    auto operator<=>(const Item&) const = default;
  };
  for (const bool per_rule : {false, true}) {
    EngineOptions opts;
    opts.sequential = false;
    opts.threads = 4;
    opts.task_per_rule = per_rule;
    Engine eng(opts);
    std::atomic<int> effects{0};
    std::atomic<int> rule_a{0};
    std::atomic<int> rule_b{0};
    std::atomic<int> rule_c{0};
    auto& item = eng.table(
        TableDecl<Item>("Item")
            .orderby_lit("T")
            .orderby_seq("id", &Item::id)
            .hash([](const Item& i) { return hash_fields(i.id); })
            .effect([&](const Item&) { effects.fetch_add(1); }));
    eng.rule(item, "a", [&](RuleCtx&, const Item&) { rule_a.fetch_add(1); });
    eng.rule(item, "b", [&](RuleCtx&, const Item&) { rule_b.fetch_add(1); });
    eng.rule(item, "c", [&](RuleCtx&, const Item&) { rule_c.fetch_add(1); });
    constexpr int kN = 200;
    for (int i = 0; i < kN; ++i) eng.put(item, Item{i});
    eng.run();
    EXPECT_EQ(effects.load(), kN) << "task_per_rule=" << per_rule;
    EXPECT_EQ(rule_a.load(), kN) << "task_per_rule=" << per_rule;
    EXPECT_EQ(rule_b.load(), kN) << "task_per_rule=" << per_rule;
    EXPECT_EQ(rule_c.load(), kN) << "task_per_rule=" << per_rule;
    EXPECT_EQ(item.stats().fires.load(), 3 * kN);
  }
}

// stats.fires counts rule *invocations* — one per (tuple, rule) pair —
// identically under every firing strategy: the per-tuple path (which runs
// all rules of a tuple in one task), task_per_rule (one task per rule),
// and the inline small-batch fast path all bump it the same way.  This
// pins the unified accounting so a strategy change can never be mistaken
// for a workload change in run logs.
TEST(FiresAccounting, InvocationCountIndependentOfStrategy) {
  struct Item {
    std::int64_t id;
    auto operator<=>(const Item&) const = default;
  };
  // A literal-only orderby puts all kN tuples in ONE batch, so the fire
  // phase's work (kN x kRules) is far above the inline cutoff and the
  // parallel strategies genuinely split it across pool tasks.
  constexpr int kN = 300;
  constexpr int kRules = 3;
  std::int64_t reference = -1;
  for (const bool sequential : {true, false}) {
    for (const bool per_rule : {false, true}) {
      if (sequential && per_rule) continue;  // task_per_rule needs a pool
      EngineOptions opts;
      opts.sequential = sequential;
      opts.threads = 4;
      opts.task_per_rule = per_rule;
      Engine eng(opts);
      auto& item = eng.table(
          TableDecl<Item>("Item")
              .orderby_lit("T")
              .hash([](const Item& i) { return hash_fields(i.id); }));
      for (int r = 0; r < kRules; ++r) {
        eng.rule(item, "r" + std::to_string(r),
                 [](RuleCtx&, const Item&) {});
      }
      for (int i = 0; i < kN; ++i) eng.put(item, Item{i});
      eng.run();
      const std::int64_t fires = item.stats().fires.load();
      EXPECT_EQ(fires, static_cast<std::int64_t>(kN) * kRules)
          << "sequential=" << sequential << " task_per_rule=" << per_rule;
      if (reference < 0) reference = fires;
      EXPECT_EQ(fires, reference)
          << "sequential=" << sequential << " task_per_rule=" << per_rule;
    }
  }
}

// Rules of one tuple may put into the same downstream table from distinct
// tasks; set semantics must still hold under task_per_rule.
TEST(TaskPerRule, ConcurrentPutsFromSiblingRulesDedup) {
  struct Src {
    std::int64_t id;
    auto operator<=>(const Src&) const = default;
  };
  struct Dst {
    std::int64_t v;
    auto operator<=>(const Dst&) const = default;
  };
  EngineOptions opts;
  opts.sequential = false;
  opts.threads = 4;
  opts.task_per_rule = true;
  Engine eng(opts);
  auto& src = eng.table(TableDecl<Src>("Src")
                            .orderby_lit("T")
                            .orderby_seq("id", &Src::id)
                            .hash([](const Src& s) { return hash_fields(s.id); }));
  auto& dst = eng.table(TableDecl<Dst>("Dst")
                            .orderby_lit("U")
                            .hash([](const Dst& d) { return hash_fields(d.v); }));
  eng.order({"T", "U"});
  std::atomic<int> dst_fires{0};
  // Both rules derive the same Dst tuple for every Src tuple.
  eng.rule(src, "left", [&](RuleCtx& ctx, const Src& s) {
    dst.put(ctx, Dst{s.id % 7});
  });
  eng.rule(src, "right", [&](RuleCtx& ctx, const Src& s) {
    dst.put(ctx, Dst{s.id % 7});
  });
  eng.rule(dst, "count", [&](RuleCtx&, const Dst&) { dst_fires.fetch_add(1); });
  for (int i = 0; i < 100; ++i) eng.put(src, Src{i});
  eng.run();
  EXPECT_EQ(dst_fires.load(), 7);
  EXPECT_EQ(dst.gamma_size(), 7u);
}

// Repeat the parallel run several times: scheduling nondeterminism must
// never leak into the output database.
TEST(DeterminismRepeat, ParallelRunsAreStable) {
  const ProgramOutput reference = run_program({true, 1, false, "ref"});
  for (int i = 0; i < 5; ++i) {
    const ProgramOutput got = run_program({false, 4, false, "par4"});
    ASSERT_EQ(got.steps, reference.steps) << "iteration " << i;
    ASSERT_EQ(got.summary_count, reference.summary_count);
  }
}

}  // namespace
}  // namespace jstar
