// Tests for the CSV library: zero-copy parsing and the Hadoop-style
// parallel region splitting (§6.2's "each reader continues reading a
// little way past the end of its region").
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "csv/csv.h"
#include "util/rng.h"

namespace jstar::csv {
namespace {

std::vector<std::vector<std::string>> read_all(const Buffer& buf,
                                               Region region) {
  RecordReader reader(buf, region);
  std::vector<csv::Slice> fields;
  std::vector<std::vector<std::string>> out;
  while (reader.next(fields)) {
    std::vector<std::string> row;
    for (const auto& f : fields) row.push_back(f.to_string());
    out.push_back(std::move(row));
  }
  return out;
}

TEST(Slice, ParsesIntegers) {
  const char* s = "-12345";
  EXPECT_EQ((Slice{s, 6}).to_int64(), -12345);
  EXPECT_EQ((Slice{"42", 2}).to_int64(), 42);
  EXPECT_EQ((Slice{"+7", 2}).to_int64(), 7);
  EXPECT_EQ((Slice{"0", 1}).to_int64(), 0);
  EXPECT_EQ((Slice{"", 0}).to_int64(), 0);
}

TEST(Slice, ComparesToCString) {
  EXPECT_TRUE((Slice{"abc", 3}) == "abc");
  EXPECT_FALSE((Slice{"abc", 3}) == "ab");
  EXPECT_FALSE((Slice{"ab", 2}) == "abc");
}

TEST(RecordReader, SplitsFieldsAndRecords) {
  Buffer buf("1,2,3\n4,5,6\n");
  auto rows = read_all(buf, {0, buf.size()});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(RecordReader, HandlesMissingTrailingNewline) {
  Buffer buf("1,2\n3,4");
  auto rows = read_all(buf, {0, buf.size()});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(RecordReader, SkipsBlankLines) {
  Buffer buf("1,2\n\n\n3,4\n");
  auto rows = read_all(buf, {0, buf.size()});
  EXPECT_EQ(rows.size(), 2u);
}

TEST(RecordReader, EmptyFieldsPreserved) {
  Buffer buf("a,,c\n");
  auto rows = read_all(buf, {0, buf.size()});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(RecordReader, EmptyBuffer) {
  Buffer buf("");
  auto rows = read_all(buf, {0, 0});
  EXPECT_TRUE(rows.empty());
}

TEST(SplitRegions, CoversWholeBufferContiguously) {
  auto regions = split_regions(1000, 7);
  ASSERT_EQ(regions.size(), 7u);
  EXPECT_EQ(regions.front().begin, 0u);
  EXPECT_EQ(regions.back().end, 1000u);
  for (std::size_t i = 1; i < regions.size(); ++i) {
    EXPECT_EQ(regions[i].begin, regions[i - 1].end);
  }
}

// Property: for ANY region count, every record is read exactly once —
// the reader skip/overrun rule assigns each record to the region holding
// its first byte.
TEST(SplitRegions, EveryRecordReadExactlyOnce) {
  SplitMix64 rng(2024);
  std::string data;
  std::vector<std::int64_t> values;
  for (int i = 0; i < 997; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(1000000));
    values.push_back(v);
    data += std::to_string(i) + "," + std::to_string(v) + "\n";
  }
  Buffer buf(std::move(data));
  const std::int64_t expected_sum =
      std::accumulate(values.begin(), values.end(), std::int64_t{0});

  for (int n : {1, 2, 3, 4, 8, 13, 64}) {
    std::int64_t sum = 0;
    std::int64_t count = 0;
    for (const Region& r : split_regions(buf.size(), n)) {
      RecordReader reader(buf, r);
      std::vector<Slice> fields;
      while (reader.next(fields)) {
        ASSERT_EQ(fields.size(), 2u);
        sum += fields[1].to_int64();
        ++count;
      }
    }
    EXPECT_EQ(count, 997) << "regions=" << n;
    EXPECT_EQ(sum, expected_sum) << "regions=" << n;
  }
}

// Degenerate splits: more regions than bytes still reads everything once.
TEST(SplitRegions, MoreRegionsThanRecords) {
  Buffer buf("1,10\n2,20\n");
  std::int64_t count = 0;
  for (const Region& r : split_regions(buf.size(), 32)) {
    RecordReader reader(buf, r);
    std::vector<Slice> fields;
    while (reader.next(fields)) ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(BufferFile, RoundTripsThroughDisk) {
  const std::string path = "/tmp/jstar_csv_test.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("9,8\n7,6\n", f);
    std::fclose(f);
  }
  Buffer buf = Buffer::from_file(path);
  auto rows = read_all(buf, {0, buf.size()});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "9");
  std::remove(path.c_str());
}

TEST(BufferFile, MissingFileThrows) {
  EXPECT_THROW(Buffer::from_file("/nonexistent/nope.csv"), CheckError);
}

}  // namespace
}  // namespace jstar::csv

// ---------------------------------------------------------------------------
// Writer (added with the workload generators): byte-exact round-trips
// through RecordReader.
// ---------------------------------------------------------------------------

TEST(Writer, RoundTripsThroughReader) {
  jstar::csv::Writer w;
  w.field(2012).field(6).field("noon").field(-42).end_record();
  w.field(std::int64_t{0}).field(INT64_MIN).field(INT64_MAX).field("x").end_record();
  const jstar::csv::Buffer buf = w.take();

  jstar::csv::RecordReader reader(buf, {0, buf.size()});
  std::vector<jstar::csv::Slice> fields;
  ASSERT_TRUE(reader.next(fields));
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].to_int64(), 2012);
  EXPECT_EQ(fields[1].to_int64(), 6);
  EXPECT_TRUE(fields[2] == "noon");
  EXPECT_EQ(fields[3].to_int64(), -42);
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[0].to_int64(), 0);
  EXPECT_EQ(fields[1].to_int64(), INT64_MIN);
  EXPECT_EQ(fields[2].to_int64(), INT64_MAX);
  EXPECT_FALSE(reader.next(fields));
}

TEST(Writer, EmptyFieldsPreserved) {
  jstar::csv::Writer w;
  w.field("").field("b").field("").end_record();
  const jstar::csv::Buffer buf = w.take();
  jstar::csv::RecordReader reader(buf, {0, buf.size()});
  std::vector<jstar::csv::Slice> fields;
  ASSERT_TRUE(reader.next(fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0].len, 0u);
  EXPECT_TRUE(fields[1] == "b");
  EXPECT_EQ(fields[2].len, 0u);
}

TEST(Writer, RandomIntsRoundTripAcrossRegions) {
  jstar::csv::Writer w;
  ::jstar::SplitMix64 rng(77);
  std::vector<std::int64_t> expect;
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::int64_t>(rng.next()) >> 20;
    const auto b = static_cast<std::int64_t>(i);
    w.field(a).field(b).end_record();
    expect.push_back(a);
  }
  const jstar::csv::Buffer buf = w.take();
  // Read through 7 parallel-style regions; every record exactly once.
  std::vector<std::int64_t> got;
  for (const auto& region : jstar::csv::split_regions(buf.size(), 7)) {
    jstar::csv::RecordReader reader(buf, region);
    std::vector<jstar::csv::Slice> fields;
    while (reader.next(fields)) {
      ASSERT_EQ(fields.size(), 2u);
      got.push_back(fields[0].to_int64());
    }
  }
  // Regions preserve global order per region start; sort both to compare
  // as multisets.
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}
