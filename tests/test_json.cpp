// Tests for the minimal JSON reader/writer behind the run-log subsystem.
#include <gtest/gtest.h>

#include "util/json.h"

namespace jstar::json {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(write(Value(nullptr), 0), "null");
  EXPECT_EQ(write(Value(true), 0), "true");
  EXPECT_EQ(write(Value(false), 0), "false");
  EXPECT_EQ(write(Value(42), 0), "42");
  EXPECT_EQ(write(Value(-7), 0), "-7");
  EXPECT_EQ(write(Value("hi"), 0), "\"hi\"");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("-13").as_int(), -13);
  EXPECT_DOUBLE_EQ(parse("2.5").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("\"abc\"").as_string(), "abc");
}

TEST(Json, StringEscapes) {
  const Value v(std::string("line\nquote\"back\\slash\ttab"));
  const std::string s = write(v, 0);
  EXPECT_EQ(parse(s).as_string(), v.as_string());
}

TEST(Json, UnicodeEscapeDecodes) {
  EXPECT_EQ(parse("\"\\u0041\"").as_string(), "A");
  // Two-byte and three-byte UTF-8 paths.
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
}

TEST(Json, ArraysAndObjects) {
  const std::string text = R"({"a": [1, 2, 3], "b": {"c": true}, "d": []})";
  const Value v = parse(text);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[1].as_int(), 2);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_TRUE(v.at("d").as_array().empty());
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("zzz"));
  EXPECT_THROW(v.at("zzz"), std::out_of_range);
}

TEST(Json, MemberOrderPreserved) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& o = v.as_object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
}

TEST(Json, RoundTripComplex) {
  const Value v = Object{
      {"name", "jstar"},
      {"count", 88},
      {"ratio", 0.125},
      {"flags", Array{Value(true), Value(false)}},
      {"nested", Object{{"deep", Array{Value(1), Value("two"),
                                       Value(nullptr)}}}},
  };
  for (const int indent : {0, 2, 4}) {
    EXPECT_EQ(parse(write(v, indent)), v) << "indent " << indent;
  }
}

TEST(Json, WhitespaceTolerant) {
  EXPECT_EQ(parse("  {  \"a\"\n:\t1 }  ").at("a").as_int(), 1);
}

TEST(Json, Errors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("truish"), ParseError);
  EXPECT_THROW(parse("{\"a\":1} extra"), ParseError);
  EXPECT_THROW(parse("{'single':1}"), ParseError);
}

TEST(Json, NumberEdgeCases) {
  EXPECT_EQ(parse("0").as_int(), 0);
  EXPECT_EQ(parse("9223372036854775807").as_int(), INT64_MAX);
  EXPECT_TRUE(parse("1.0").is_double());
  EXPECT_TRUE(parse("-0.5").is_double());
  EXPECT_THROW(parse("--3"), ParseError);
}

}  // namespace
}  // namespace jstar::json
