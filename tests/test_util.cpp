// Unit tests for the util module: SmallVec (Delta keys), Statistics (the
// standard JStar reducer), SplitMix64 (parallel RNG), hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.h"
#include "util/small_vec.h"
#include "util/statistics.h"
#include "util/timer.h"

namespace jstar {
namespace {

using Key = SmallVec<std::int64_t, 4>;

TEST(SmallVec, StartsEmpty) {
  Key k;
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.size(), 0u);
}

TEST(SmallVec, PushAndIndex) {
  Key k;
  for (std::int64_t i = 0; i < 3; ++i) k.push_back(i * 10);
  ASSERT_EQ(k.size(), 3u);
  EXPECT_EQ(k[0], 0);
  EXPECT_EQ(k[1], 10);
  EXPECT_EQ(k[2], 20);
}

TEST(SmallVec, GrowsPastInlineCapacity) {
  Key k;
  for (std::int64_t i = 0; i < 100; ++i) k.push_back(i);
  ASSERT_EQ(k.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(k[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, CopySemantics) {
  Key a{1, 2, 3};
  Key b = a;
  b.push_back(4);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(a[2], 3);
}

TEST(SmallVec, CopyHeapBacked) {
  Key a;
  for (std::int64_t i = 0; i < 50; ++i) a.push_back(i);
  Key b = a;
  EXPECT_EQ(b.size(), 50u);
  EXPECT_TRUE(a == b);
  a = b;  // self-ish assignment through a copy
  EXPECT_TRUE(a == b);
}

TEST(SmallVec, MoveLeavesSourceEmpty) {
  Key a{7, 8};
  Key b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd behaviour
}

TEST(SmallVec, LexicographicOrder) {
  EXPECT_TRUE((Key{1, 2} <=> Key{1, 3}) == std::strong_ordering::less);
  EXPECT_TRUE((Key{2} <=> Key{1, 9}) == std::strong_ordering::greater);
  EXPECT_TRUE((Key{1, 2} <=> Key{1, 2}) == std::strong_ordering::equal);
}

TEST(SmallVec, PrefixComparesLess) {
  EXPECT_TRUE((Key{1} <=> Key{1, 0}) == std::strong_ordering::less);
  EXPECT_TRUE((Key{} <=> Key{0}) == std::strong_ordering::less);
}

TEST(SmallVec, EqualityRequiresSameLength) {
  EXPECT_FALSE((Key{1} == Key{1, 1}));
  EXPECT_TRUE((Key{1, 1} == Key{1, 1}));
}

TEST(Statistics, EmptyIsZero) {
  Statistics s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Statistics, BasicMoments) {
  Statistics s;
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_NEAR(s.variance(), 8.0 / 3.0, 1e-12);
}

TEST(Statistics, OperatorPlusEquals) {
  Statistics s;
  s += 1.0;
  s += 3.0;
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

// Property: merging partial reductions equals one sequential reduction —
// this is what makes the reducer tree-combinable (§5.2).
TEST(Statistics, MergeEqualsSequential) {
  SplitMix64 rng(42);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.next_double() * 100 - 50;

  Statistics whole;
  for (double x : xs) whole.add(x);

  for (std::size_t parts : {2u, 3u, 7u, 10u}) {
    std::vector<Statistics> partial(parts);
    for (std::size_t i = 0; i < xs.size(); ++i) partial[i % parts].add(xs[i]);
    Statistics merged;
    for (const auto& p : partial) merged.merge(p);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  }
}

TEST(Statistics, MergeWithEmpty) {
  Statistics a;
  a.add(5.0);
  Statistics empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SplitStreamsDiffer) {
  SplitMix64 base(7);
  SplitMix64 s0 = base.split(0);
  SplitMix64 s1 = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.next() == s1.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, SplitIsStable) {
  SplitMix64 base(7);
  EXPECT_EQ(base.split(3).next(), SplitMix64(7).split(3).next());
}

TEST(SplitMix64, BoundsRespected) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, CoversRange) {
  SplitMix64 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_in(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(HashFields, DistinguishesFieldOrder) {
  EXPECT_NE(hash_fields(1, 2), hash_fields(2, 1));
  EXPECT_EQ(hash_fields(1, 2), hash_fields(1, 2));
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_NE(format_duration(2e-9).find("ns"), std::string::npos);
  EXPECT_NE(format_duration(2e-6).find("us"), std::string::npos);
  EXPECT_NE(format_duration(2e-3).find("ms"), std::string::npos);
  EXPECT_NE(format_duration(2.0).find("s"), std::string::npos);
}

}  // namespace
}  // namespace jstar
