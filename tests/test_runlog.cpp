// Tests for the run-log subsystem (§1.5): capture from a live engine,
// JSON and file round-trips, and log-driven annotated DOT graphs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/simd.h"
#include "viz/runlog.h"

namespace jstar::viz {
namespace {

struct Src {
  std::int64_t id;
  auto operator<=>(const Src&) const = default;
};
struct Dst {
  std::int64_t v;
  auto operator<=>(const Dst&) const = default;
};

/// Builds, runs and captures a small two-table program.
RunLog sample_log() {
  Engine eng(EngineOptions{.sequential = true});
  auto& src = eng.table(TableDecl<Src>("Src")
                            .orderby_lit("A")
                            .orderby_seq("id", &Src::id)
                            .hash([](const Src& s) { return hash_fields(s.id); }));
  auto& dst = eng.table(TableDecl<Dst>("Dst")
                            .orderby_lit("B")
                            .hash([](const Dst& d) { return hash_fields(d.v); }));
  eng.order({"A", "B"});
  eng.rule(src, "derive", [&](RuleCtx& ctx, const Src& s) {
    dst.put(ctx, Dst{s.id % 3});
  });
  eng.rule(dst, "consume", [&](RuleCtx&, const Dst&) {});
  for (int i = 0; i < 30; ++i) eng.put(src, Src{i});
  const RunReport report = eng.run();
  return capture(eng, "sample", report);
}

TEST(RunLog, CaptureRecordsTablesEdgesAndCounts) {
  const RunLog log = sample_log();
  EXPECT_EQ(log.program, "sample");
  ASSERT_EQ(log.tables.size(), 2u);
  EXPECT_EQ(log.tables[0].name, "Src");
  EXPECT_EQ(log.tables[0].puts, 30);
  EXPECT_EQ(log.tables[0].fires, 30);
  EXPECT_EQ(log.tables[0].rules, std::vector<std::string>{"derive"});
  EXPECT_EQ(log.tables[1].name, "Dst");
  EXPECT_EQ(log.tables[1].gamma_inserts, 3);  // dedup to ids mod 3
  ASSERT_EQ(log.edges.size(), 1u);
  EXPECT_EQ(log.edges[0].from, "Src");
  EXPECT_EQ(log.edges[0].to, "Dst");
  EXPECT_EQ(log.edges[0].count, 30);
  EXPECT_GT(log.batches, 0);
  EXPECT_GT(log.tuples, 0);
}

TEST(RunLog, JsonRoundTripIsLossless) {
  const RunLog log = sample_log();
  const RunLog back = from_json(to_json(log));
  EXPECT_EQ(back, log);
}

TEST(RunLog, FileRoundTrip) {
  const RunLog log = sample_log();
  const auto path = std::filesystem::temp_directory_path() /
                    "jstar_runlog_test.json";
  save(log, path.string());
  const RunLog back = load(path.string());
  EXPECT_EQ(back, log);
  std::filesystem::remove(path);
}

TEST(RunLog, LoadMissingFileThrows) {
  EXPECT_THROW(load("/nonexistent/path/log.json"), std::runtime_error);
}

TEST(RunLog, DotGraphFromLogMentionsEverything) {
  const RunLog log = sample_log();
  const std::string dot = dot_graph(log);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Src"), std::string::npos);
  EXPECT_NE(dot.find("Dst"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("30 tuples") != std::string::npos ||
                dot.find("tuples") != std::string::npos,
            false);
  // The hottest table is highlighted.
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(RunLog, DotGraphSkipsEdgesForUnknownTables) {
  RunLog log;
  log.program = "handmade";
  log.tables.push_back({.name = "Only"});
  log.edges.push_back({"Only", "Ghost", 5});
  const std::string dot = dot_graph(log);
  EXPECT_EQ(dot.find("Ghost"), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);
}

// The -noGamma satellite: a NullStore table reports its pass-through
// traffic (and the installed substrate name) instead of a silent
// size() == 0.
TEST(RunLog, CapturesStoreNameAndNoGammaPassThrough) {
  EngineOptions opts;
  opts.sequential = true;
  opts.no_gamma.insert("Dst");
  Engine eng(opts);
  auto& src = eng.table(TableDecl<Src>("Src")
                            .orderby_lit("A")
                            .orderby_seq("id", &Src::id)
                            .hash([](const Src& s) { return hash_fields(s.id); }));
  auto& dst = eng.table(TableDecl<Dst>("Dst")
                            .orderby_lit("B")
                            .hash([](const Dst& d) { return hash_fields(d.v); }));
  eng.order({"A", "B"});
  eng.rule(src, "derive", [&](RuleCtx& ctx, const Src& s) {
    dst.put(ctx, Dst{s.id});
  });
  for (int i = 0; i < 25; ++i) eng.put(src, Src{i});
  const RunReport report = eng.run();
  EXPECT_EQ(dst.gamma_size(), 0u);  // nothing retained...
  const RunLog log = capture(eng, "nogamma", report);
  EXPECT_EQ(log.tables[0].store, "tree-set");
  EXPECT_EQ(log.tables[1].store, "null");
  EXPECT_TRUE(log.tables[1].no_gamma);
  EXPECT_EQ(log.tables[1].gamma_passed_through, 25);  // ...throughput shown
  // Round trip keeps the new fields; the dot graph surfaces them.
  const RunLog back = from_json(to_json(log));
  EXPECT_EQ(back, log);
  const std::string dot = dot_graph(log);
  EXPECT_NE(dot.find("passed=25"), std::string::npos);
  EXPECT_NE(dot.find("[null]"), std::string::npos);
  EXPECT_NE(dot.find("[tree-set]"), std::string::npos);
}

TEST(RunLog, CapturesIndexAndScanCounters) {
  Engine eng(EngineOptions{.sequential = true});
  auto& src = eng.table(TableDecl<Src>("Src")
                            .orderby_lit("A")
                            .orderby_seq("id", &Src::id)
                            .hash([](const Src& s) { return hash_fields(s.id); }));
  src.add_index(&Src::id);
  for (int i = 0; i < 5; ++i) eng.put(src, Src{i});
  const RunReport report = eng.run();
  (void)src.query_count(query::eq(&Src::id, 2));
  (void)src.query_count(query::lt(&Src::id, 3));
  const RunLog log = capture(eng, "indexed", report);
  EXPECT_EQ(log.tables[0].index_lookups, 1);
  EXPECT_EQ(log.tables[0].full_scans, 1);
}

TEST(RunLog, CapturesPlannerAccessPathCounters) {
  Engine eng(EngineOptions{.sequential = true});
  auto& src = eng.table(TableDecl<Src>("Src")
                            .orderby_lit("A")
                            .orderby_seq("id", &Src::id)
                            .primary_key(&Src::id)
                            .hash([](const Src& s) { return hash_fields(s.id); }));
  for (int i = 0; i < 5; ++i) eng.put(src, Src{i});
  const RunReport report = eng.run();
  (void)src.query_count(query::eq(&Src::id, 2));                  // pk probe
  (void)src.query_count(query::eq(&Src::id, 1) &&
                        query::eq(&Src::id, 3));                  // empty plan
  const RunLog log = capture(eng, "planned", report);
  EXPECT_EQ(log.tables[0].pk_probes, 1);
  EXPECT_EQ(log.tables[0].empty_plans, 1);
  EXPECT_EQ(log.tables[0].residual_rows, 1);
  EXPECT_EQ(log.tables[0].residual_hits, 1);
  EXPECT_DOUBLE_EQ(log.tables[0].residual_rate(), 1.0);
  // Round trip keeps the planner counters.
  const RunLog back = from_json(to_json(log));
  EXPECT_EQ(back, log);
  // The dot graph surfaces the access-path row for routed tables.
  const std::string dot = dot_graph(log);
  EXPECT_NE(dot.find("pk=1"), std::string::npos);
  EXPECT_NE(dot.find("empty=1"), std::string::npos);
}

TEST(RunLog, CapturesColumnarKernelCounters) {
  struct Row {
    std::int64_t id, group;
    auto operator<=>(const Row&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& rows = eng.table(TableDecl<Row>("Row")
                             .orderby_lit("A")
                             .columns(&Row::id, &Row::group)
                             .hash([](const Row& r) {
                               return hash_fields(r.id, r.group);
                             }));
  for (int i = 0; i < 40; ++i) eng.put(rows, Row{i, i % 4});
  const RunReport report = eng.run();
  EXPECT_EQ(rows.query_count(query::eq(&Row::group, 1)), 10);  // kernel
  const RunLog log = capture(eng, "columnar", report);
  // The store string now carries the live dispatch level (host-dependent).
  EXPECT_EQ(log.tables[0].store,
            std::string("columnar(2,") +
                simd::to_string(simd::active_level()) + ")");
  EXPECT_EQ(log.tables[0].columnar_kernels, 1);
  EXPECT_EQ(log.tables[0].columnar_rows, 40);
  EXPECT_EQ(log.tables[0].columnar_selected, 10);
  EXPECT_DOUBLE_EQ(log.tables[0].kernel_selectivity(), 0.25);
  // Round trip keeps the kernel counters (the defaulted == would flag a
  // field missing from either JSON direction).
  const RunLog back = from_json(to_json(log));
  EXPECT_EQ(back, log);
  // The dot graph surfaces the kernel row only for tables that ran one.
  const std::string dot = dot_graph(log);
  EXPECT_NE(dot.find("kernels=1"), std::string::npos);
  EXPECT_NE(dot.find("ksel=0.25"), std::string::npos);
  EXPECT_EQ(dot_graph(sample_log()).find("kernels="), std::string::npos);
}

}  // namespace
}  // namespace jstar::viz
