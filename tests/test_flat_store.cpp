// Unit tests for the flat array-backed Gamma substrates
// (core/flat_store.h): staging-buffer merges, duplicate rejection across
// the staged and merged regions, real lower_bound seeks, the chunked scan
// pushdown (including the per-tuple default adapter on node-based
// stores), the open-addressing hash store, engine-epoch windowing with
// in-place compaction, and the Table-level preset / planner integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/flat_store.h"
#include "util/rng.h"

namespace jstar {
namespace {

struct Cell {
  std::int64_t a, b;
  auto operator<=>(const Cell&) const = default;
};
struct CellHash {
  std::size_t operator()(const Cell& c) const { return hash_fields(c.a, c.b); }
};

// --- FlatOrderedStore --------------------------------------------------------

TEST(FlatOrderedStore, InsertContainsAndSortedScan) {
  FlatOrderedStore<Cell, CellHash> store;
  SplitMix64 rng(7);
  std::set<Cell> reference;
  for (int i = 0; i < 1000; ++i) {
    const Cell c{static_cast<std::int64_t>(rng.next_below(200)),
                 static_cast<std::int64_t>(rng.next_below(50))};
    EXPECT_EQ(store.insert(c), reference.insert(c).second);
  }
  EXPECT_EQ(store.size(), reference.size());
  for (const Cell& c : reference) EXPECT_TRUE(store.contains(c));
  EXPECT_FALSE(store.contains(Cell{-1, -1}));
  // Scan visits every tuple in sorted order.
  std::vector<Cell> scanned;
  store.scan([&](const Cell& c) { scanned.push_back(c); });
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  EXPECT_EQ(scanned.size(), reference.size());
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), reference.begin()));
  EXPECT_GT(store.merges(), 0);
}

TEST(FlatOrderedStore, DuplicateRejectionAcrossStagedAndMergedRegions) {
  FlatOrderedStore<Cell, CellHash> store;
  // Fill past several merge thresholds so {1,1} lands in the sorted run.
  for (std::int64_t i = 0; i < 500; ++i) EXPECT_TRUE(store.insert({i, i}));
  ASSERT_GT(store.merges(), 0);
  // Duplicate of a merged tuple.
  EXPECT_FALSE(store.insert({1, 1}));
  // A fresh tuple sits in staging; its duplicate must also be rejected
  // while still staged.
  EXPECT_TRUE(store.insert({1000, 0}));
  ASSERT_GT(store.staged(), 0u);
  EXPECT_FALSE(store.insert({1000, 0}));
  // Force a merge via an ordered read, then reject again from the merged
  // region.
  std::int64_t n = 0;
  store.scan([&](const Cell&) { ++n; });
  EXPECT_EQ(store.staged(), 0u);
  EXPECT_FALSE(store.insert({1000, 0}));
  EXPECT_EQ(n, 501);
  EXPECT_EQ(store.size(), 501u);
}

TEST(FlatOrderedStore, RangeAndFromSeeksMatchTreeSet) {
  FlatOrderedStore<Cell, CellHash> flat;
  TreeSetStore<Cell> tree;
  SplitMix64 rng(21);
  for (int i = 0; i < 800; ++i) {
    const Cell c{static_cast<std::int64_t>(rng.next_below(100)),
                 static_cast<std::int64_t>(rng.next_below(100))};
    flat.insert(c);
    tree.insert(c);
  }
  for (std::int64_t lo = 0; lo < 100; lo += 7) {
    const Cell clo{lo, 0};
    const Cell chi{lo + 13, 0};
    std::vector<Cell> a, b;
    flat.scan_range(clo, chi, [&](const Cell& c) { a.push_back(c); });
    tree.scan_range(clo, chi, [&](const Cell& c) { b.push_back(c); });
    EXPECT_EQ(a, b) << "range [" << lo << ", " << lo + 13 << ")";
    a.clear();
    b.clear();
    flat.scan_from(clo, [&](const Cell& c) { a.push_back(c); });
    tree.scan_from(clo, [&](const Cell& c) { b.push_back(c); });
    EXPECT_EQ(a, b) << "from " << lo;
  }
  EXPECT_TRUE(flat.ordered());
}

// Regression for the staged-region visibility audit: ordered seeks must
// see tuples still sitting in the staging buffer (insert count below the
// 64-tuple merge threshold, so nothing has merged yet).  scan_range /
// scan_from go through with_merged(), which folds staging into the
// sorted run before seeking — this pins that contract.
TEST(FlatOrderedStore, RangeSeeksSeeStagedUnmergedTuples) {
  FlatOrderedStore<Cell, CellHash> store;
  for (std::int64_t i = 0; i < 10; ++i) ASSERT_TRUE(store.insert({i, 0}));
  ASSERT_EQ(store.merges(), 0);  // below the staging threshold
  ASSERT_EQ(store.staged(), 10u);

  std::vector<Cell> ranged;
  store.scan_range({3, 0}, {7, 0},
                   [&](const Cell& c) { ranged.push_back(c); });
  EXPECT_EQ(ranged, (std::vector<Cell>{{3, 0}, {4, 0}, {5, 0}, {6, 0}}));

  // scan_from with fresh staged tuples again (the range scan above merged).
  ASSERT_TRUE(store.insert({100, 0}));
  ASSERT_GT(store.staged(), 0u);
  std::vector<Cell> from;
  store.scan_from({8, 0}, [&](const Cell& c) { from.push_back(c); });
  EXPECT_EQ(from, (std::vector<Cell>{{8, 0}, {9, 0}, {100, 0}}));
  EXPECT_EQ(store.staged(), 0u);  // ordered reads merge on demand
}

TEST(FlatOrderedStore, ScanChunksDeliversOneContiguousSpan) {
  FlatOrderedStore<Cell, CellHash> store;
  for (std::int64_t i = 0; i < 300; ++i) store.insert({i, 0});
  std::size_t chunks = 0, tuples = 0;
  bool sorted_within = true;
  store.scan_chunks([&](const Cell* data, std::size_t n) {
    ++chunks;
    tuples += n;
    sorted_within = sorted_within && std::is_sorted(data, data + n);
  });
  EXPECT_EQ(chunks, 1u);  // ordered reads merge staging first
  EXPECT_EQ(tuples, 300u);
  EXPECT_TRUE(sorted_within);
  EXPECT_TRUE(store.chunked());
}

// The default adapter: a node-based store advertises chunked() == false
// but scan_chunks still visits everything, one tuple per span.
TEST(GammaStore, DefaultScanChunksAdapterEquivalence) {
  TreeSetStore<Cell> tree;
  for (std::int64_t i = 0; i < 50; ++i) tree.insert({i % 13, i});
  std::vector<Cell> via_scan, via_chunks;
  tree.scan([&](const Cell& c) { via_scan.push_back(c); });
  std::size_t chunks = 0;
  tree.scan_chunks([&](const Cell* data, std::size_t n) {
    ++chunks;
    for (std::size_t i = 0; i < n; ++i) via_chunks.push_back(data[i]);
  });
  EXPECT_FALSE(tree.chunked());
  EXPECT_EQ(via_chunks, via_scan);
  EXPECT_EQ(chunks, via_scan.size());  // one-tuple chunks
}

// --- FlatHashStore -----------------------------------------------------------

TEST(FlatHashStore, InsertGrowContainsAndScan) {
  FlatHashStore<Cell, CellHash> store(CellHash{}, 16);
  const std::size_t initial_cap = store.capacity();
  std::set<Cell> reference;
  SplitMix64 rng(33);
  for (int i = 0; i < 2000; ++i) {
    const Cell c{static_cast<std::int64_t>(rng.next_below(500)),
                 static_cast<std::int64_t>(rng.next_below(7))};
    EXPECT_EQ(store.insert(c), reference.insert(c).second);
  }
  EXPECT_EQ(store.size(), reference.size());
  EXPECT_GT(store.capacity(), initial_cap);  // grew past 16 slots
  for (const Cell& c : reference) EXPECT_TRUE(store.contains(c));
  EXPECT_FALSE(store.contains(Cell{-5, -5}));
  std::set<Cell> scanned;
  store.scan([&](const Cell& c) { scanned.insert(c); });
  EXPECT_EQ(scanned, reference);
  EXPECT_FALSE(store.ordered());
}

TEST(FlatHashStore, ScanChunksCoverEveryTupleExactlyOnce) {
  FlatHashStore<Cell, CellHash> store;
  std::set<Cell> reference;
  for (std::int64_t i = 0; i < 777; ++i) {
    store.insert({i * 3 % 101, i});
    reference.insert({i * 3 % 101, i});
  }
  std::multiset<Cell> via_chunks;
  std::size_t chunks = 0;
  store.scan_chunks([&](const Cell* data, std::size_t n) {
    ++chunks;
    for (std::size_t i = 0; i < n; ++i) via_chunks.insert(data[i]);
  });
  EXPECT_EQ(via_chunks.size(), reference.size());  // exactly once each
  EXPECT_TRUE(std::equal(reference.begin(), reference.end(),
                         via_chunks.begin()));
  EXPECT_GE(chunks, 1u);
  EXPECT_LE(chunks, store.size());
}

// A pathological hash (every tuple collides) must stay correct, just slow.
TEST(FlatHashStore, SurvivesTotalHashCollisions) {
  struct ConstHash {
    std::size_t operator()(const Cell&) const { return 42; }
  };
  FlatHashStore<Cell, ConstHash> store;
  for (std::int64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(store.insert({i, 0}));
    EXPECT_FALSE(store.insert({i, 0}));
  }
  EXPECT_EQ(store.size(), 200u);
  for (std::int64_t i = 0; i < 200; ++i) EXPECT_TRUE(store.contains({i, 0}));
  EXPECT_FALSE(store.contains({200, 0}));
}

// --- engine-epoch windowing (retain(N) over the flat substrate) -------------

TEST(FlatOrderedStore, WindowedRetireCompactsInPlaceAndNotifies) {
  std::atomic<std::int64_t> clock{0};
  FlatOrderedStore<Cell, CellHash> store(&clock);
  std::vector<Cell> retired;
  store.set_retire_listener([&](const Cell& c) { retired.push_back(c); });

  for (std::int64_t e = 0; e < 4; ++e) {
    clock.store(e);
    for (std::int64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE(store.insert({e, i}));
    }
  }
  EXPECT_EQ(store.size(), 400u);
  // Re-arrival of an epoch-0 tuple in a later epoch stays a duplicate
  // (lifetime keyed to first arrival, like the bucketed window store).
  EXPECT_FALSE(store.insert({0, 5}));

  // Retire epochs <= 1: 200 tuples compacted away, listener saw each.
  EXPECT_EQ(store.retire_up_to(1), 200);
  EXPECT_EQ(store.size(), 200u);
  EXPECT_EQ(retired.size(), 200u);
  for (const Cell& c : retired) EXPECT_LE(c.a, 1);
  EXPECT_FALSE(store.contains({0, 5}));
  EXPECT_TRUE(store.contains({3, 5}));
  // The survivors stay sorted and contiguous.
  std::size_t chunks = 0;
  bool sorted_within = true;
  store.scan_chunks([&](const Cell* d, std::size_t n) {
    ++chunks;
    sorted_within = sorted_within && std::is_sorted(d, d + n);
  });
  EXPECT_EQ(chunks, 1u);
  EXPECT_TRUE(sorted_within);
  EXPECT_EQ(store.retired(), 200);

  // A straggler at or behind the ratchet is dropped but reported fresh.
  clock.store(1);
  EXPECT_TRUE(store.insert({1, 999}));
  EXPECT_FALSE(store.contains({1, 999}));
  EXPECT_EQ(store.retired(), 201);
  EXPECT_EQ(store.describe(), "flat-ordered(retain)");
}

// --- Table-level integration -------------------------------------------------

struct Row {
  std::int64_t id, group, score;
  auto operator<=>(const Row&) const = default;
};

TableDecl<Row> row_decl() {
  return TableDecl<Row>("Row")
      .orderby_lit("R")
      .hash([](const Row& r) { return hash_fields(r.id, r.group, r.score); });
}

TEST(FlatTable, PresetInstallsFlatStoreAndPlannerRoutesRangePlans) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table = eng.table(row_decl().flat_store());
  table.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return Row{v[0], INT64_MIN, INT64_MIN};
      },
      &Row::id);
  for (std::int64_t i = 0; i < 500; ++i) {
    eng.put(table, Row{i, i % 10, i * 3});
  }
  eng.run();
  EXPECT_EQ(table.store_describe(), "flat-ordered");
  EXPECT_TRUE(table.store()->ordered());
  // The range plan compiles against the flat store...
  const auto pred = query::between(&Row::id, std::int64_t{100},
                                   std::int64_t{150});
  EXPECT_EQ(table.plan_for(pred).path, AccessPath::RangeScan);
  // ...and routed results equal the residual scan.
  std::vector<Row> routed, scanned;
  table.query(pred, [&](const Row& r) { routed.push_back(r); });
  table.scan([&](const Row& r) {
    if (pred(r)) scanned.push_back(r);
  });
  std::sort(scanned.begin(), scanned.end());
  EXPECT_EQ(routed, scanned);  // flat range seeks emit in order
  EXPECT_EQ(routed.size(), 50u);
  EXPECT_GT(table.stats().range_scans.load(), 0);
}

TEST(FlatTable, GenericQueriesRideTheChunkedPath) {
  Engine eng(EngineOptions{.sequential = true});
  auto& flat = eng.table(row_decl().flat_store());
  auto& hash = eng.table(TableDecl<Row>("RowH")
                             .orderby_lit("H")
                             .flat_hash_store()
                             .hash([](const Row& r) {
                               return hash_fields(r.id, r.group, r.score);
                             }));
  eng.order({"R", "H"});
  for (std::int64_t i = 0; i < 400; ++i) {
    eng.put(flat, Row{i, i % 7, i});
    eng.put(hash, Row{i, i % 7, i});
  }
  eng.run();
  EXPECT_EQ(hash.store_describe(), "flat-hash");
  for (Table<Row>* t : {&flat, &hash}) {
    EXPECT_EQ(t->count_if([](const Row& r) { return r.group == 3; }), 57);
    const auto hit = t->find_if([](const Row& r) { return r.id == 123; });
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->score, 123);
    EXPECT_TRUE(t->none([](const Row& r) { return r.id > 1000; }));
    const auto m = t->min_by([](const Row& r) { return r.group == 5; });
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->id, 5);
  }
}

TEST(FlatTable, RetainWindowRetiresGammaAndSweepsIndexes) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table = eng.table(row_decl().flat_store().retain(2));
  table.add_index(&Row::group);
  eng.prepare();
  EXPECT_EQ(table.store_describe(), "flat-ordered(retain)");

  for (std::int64_t e = 0; e < 5; ++e) {
    if (e > 0) eng.begin_epoch();
    for (std::int64_t i = 0; i < 20; ++i) {
      eng.put(table, Row{e * 100 + i, e, i});
    }
    eng.run();
  }
  // Window of 2: epochs 3 and 4 survive, 0..2 were compacted away and
  // swept from the secondary index.
  EXPECT_EQ(table.gamma_size(), 40u);
  EXPECT_EQ(table.stats().gamma_retired.load(), 60);
  EXPECT_EQ(table.stats().index_retired.load(), 60);
  // Routed index lookups agree with scans after retirement.
  for (std::int64_t g = 0; g < 5; ++g) {
    const auto pred = query::eq(&Row::group, g);
    std::set<Row> routed, scanned;
    table.query(pred, [&](const Row& r) { routed.insert(r); });
    table.scan([&](const Row& r) {
      if (pred(r)) scanned.insert(r);
    });
    EXPECT_EQ(routed, scanned) << "group " << g;
    EXPECT_EQ(routed.size(), g >= 3 ? 20u : 0u) << "group " << g;
  }
  EXPECT_GT(table.stats().index_lookups.load(), 0);
}

// A flat preset combined with a tuple-carried window (retain_epochs) is
// rejected rather than silently dropped — only the engine-clock
// retain(N) window composes with the flat tier.
TEST(FlatTable, FlatPresetWithRetainEpochsIsRejected) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table = eng.table(
      row_decl().flat_store().retain_epochs(&Row::group, 2));
  (void)table;
  EXPECT_THROW(eng.prepare(), CheckError);
}

// flat_hash_store + retain(N) falls back to the bucketed window store.
TEST(FlatTable, FlatHashWithRetainFallsBackToEpochWindow) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table = eng.table(row_decl().flat_hash_store().retain(1));
  eng.prepare();
  EXPECT_EQ(table.store_describe(), "epoch-window");
  for (std::int64_t i = 0; i < 10; ++i) eng.put(table, Row{i, 0, 0});
  eng.run();
  eng.begin_epoch();
  eng.begin_epoch();
  EXPECT_EQ(table.gamma_size(), 0u);
  EXPECT_EQ(table.stats().gamma_retired.load(), 10);
}

// --- satellite: StripedHashStore auto stripes --------------------------------

TEST(StripedHashStore, DefaultStripesTrackHardwareConcurrency) {
  struct RowHash {
    std::size_t operator()(const Row& r) const {
      return hash_fields(r.id, r.group, r.score);
    }
  };
  StripedHashStore<Row, RowHash> store;
  const std::size_t n = store.stripes();
  EXPECT_GE(n, 16u);
  EXPECT_LE(n, 256u);
  EXPECT_EQ(n & (n - 1), 0u);  // power of two
  EXPECT_EQ(store.describe(), "striped-hash(" + std::to_string(n) + ")");
  // Explicit stripe counts still win.
  StripedHashStore<Row, RowHash> pinned(8);
  EXPECT_EQ(pinned.stripes(), 8u);
}

}  // namespace
}  // namespace jstar
