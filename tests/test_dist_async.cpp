// Randomized differential harness for the async pipelined executor
// (§2 stage 3, src/dist/sharded.h): generate seeded random rule programs
// (random fan-out, cross-shard key routing, 1/2/3/8 shards) and assert the
// async fixpoint is tuple-for-tuple identical to (a) a plain C++ worklist
// oracle, (b) the sequential single-Engine reference, and (c) the BSP
// sharded reference.  This is the JastAdd-style equivalence pinning: an
// aggressive schedule is only trusted against a reference evaluator.
//
// Also covered here: deterministic exception propagation when several
// shards throw (lowest shard id wins — the latent nondeterminism fix) and
// the async report's per-shard busy/drain counters.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dist/sharded.h"
#include "util/rng.h"

namespace jstar::dist {
namespace {

// ---------------------------------------------------------------------------
// Random program generation.  A program is a directed multigraph over a
// small key universe plus a generation bound: a tuple (key, gen) derives
// (key2, gen+1) for every out-edge of key while gen+1 <= max_gen.  The
// fixpoint is the set of derivable (key, gen) pairs — finite, schedule
// independent, and rich in cross-shard traffic once keys are hash routed.
// ---------------------------------------------------------------------------

struct Tok {
  std::int64_t key, gen;
  auto operator<=>(const Tok&) const = default;
};

struct Program {
  std::int64_t keys = 0;
  std::int64_t max_gen = 0;
  std::vector<std::vector<std::int64_t>> adj;  // out-edges per key
  std::vector<Tok> seeds;
};

Program random_program(std::uint64_t seed) {
  SplitMix64 rng(seed);
  Program p;
  p.keys = 4 + static_cast<std::int64_t>(rng.next_below(29));   // 4..32
  p.max_gen = 1 + static_cast<std::int64_t>(rng.next_below(7));  // 1..7
  p.adj.resize(static_cast<std::size_t>(p.keys));
  for (auto& out : p.adj) {
    const std::uint64_t fanout = rng.next_below(4);  // 0..3
    for (std::uint64_t f = 0; f < fanout; ++f) {
      out.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(p.keys))));
    }
  }
  const std::uint64_t nseeds = 1 + rng.next_below(4);  // 1..4
  for (std::uint64_t i = 0; i < nseeds; ++i) {
    p.seeds.push_back(Tok{static_cast<std::int64_t>(rng.next_below(
                              static_cast<std::uint64_t>(p.keys))),
                          0});
  }
  return p;
}

/// Engine-free worklist oracle.
std::set<Tok> oracle_fixpoint(const Program& p) {
  std::set<Tok> seen(p.seeds.begin(), p.seeds.end());
  std::vector<Tok> work(p.seeds.begin(), p.seeds.end());
  while (!work.empty()) {
    const Tok t = work.back();
    work.pop_back();
    if (t.gen + 1 > p.max_gen) continue;
    for (const std::int64_t k2 : p.adj[static_cast<std::size_t>(t.key)]) {
      const Tok next{k2, t.gen + 1};
      if (seen.insert(next).second) work.push_back(next);
    }
  }
  return seen;
}

TableDecl<Tok> tok_decl() {
  return TableDecl<Tok>("Tok")
      .orderby_lit("T")
      .orderby_seq("gen", &Tok::gen)
      .hash([](const Tok& t) { return hash_fields(t.key, t.gen); });
}

/// Reference 1: one sequential Engine, rules put locally (gen increases,
/// so local puts respect the law of causality).
std::set<Tok> single_engine_fixpoint(const Program& p) {
  EngineOptions opts;
  opts.sequential = true;
  Engine eng(opts);
  auto& toks = eng.table(tok_decl());
  eng.rule(toks, "derive", [&p, &toks](RuleCtx& ctx, const Tok& t) {
    if (t.gen + 1 > p.max_gen) return;
    for (const std::int64_t k2 : p.adj[static_cast<std::size_t>(t.key)]) {
      toks.put(ctx, Tok{k2, t.gen + 1});
    }
  });
  for (const Tok& s : p.seeds) eng.put(toks, s);
  eng.run();
  std::set<Tok> out;
  toks.scan([&](const Tok& t) { out.insert(t); });
  return out;
}

/// References 2 and 3: the sharded engine under either schedule.  Every
/// derived tuple is routed through the mailbox to the hash owner of its
/// key, so fan-out traffic crosses shard boundaries constantly.  Also
/// checks ownership: a tuple may only materialise on the shard its key
/// hashes to.
std::set<Tok> sharded_fixpoint(const Program& p, int shards, ShardedMode mode,
                               bool sequential_engines,
                               ShardedRunReport* report_out = nullptr) {
  EngineOptions opts;
  opts.sequential = sequential_engines;
  opts.threads = 2;
  ShardedOptions sopts;
  sopts.mode = mode;

  std::vector<Table<Tok>*> tables(static_cast<std::size_t>(shards));
  ShardedEngine<Tok> cluster(
      shards, opts, sopts,
      [&p, &tables, shards](int shard, Engine& eng, Sender<Tok>& sender) {
        auto& toks = eng.table(tok_decl());
        tables[static_cast<std::size_t>(shard)] = &toks;
        eng.rule(toks, "derive", [&p, &sender, shards](RuleCtx&,
                                                       const Tok& t) {
          if (t.gen + 1 > p.max_gen) return;
          for (const std::int64_t k2 :
               p.adj[static_cast<std::size_t>(t.key)]) {
            sender.send(partition_of(k2, shards), Tok{k2, t.gen + 1});
          }
        });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });

  for (const Tok& s : p.seeds) {
    cluster.seed(partition_of(s.key, shards), s);
  }
  const ShardedRunReport report = cluster.run();
  if (report_out != nullptr) *report_out = report;

  std::set<Tok> out;
  for (int s = 0; s < shards; ++s) {
    tables[static_cast<std::size_t>(s)]->scan([&](const Tok& t) {
      EXPECT_EQ(partition_of(t.key, shards), s)
          << "tuple (" << t.key << "," << t.gen << ") on a non-owner shard";
      out.insert(t);
    });
  }
  return out;
}

// ---------------------------------------------------------------------------
// The differential sweep: >= 200 seeds, shard counts cycling 1/2/3/8.
// Sequential shard engines keep the sweep fast; every 8th seed upgrades to
// parallel engines on the shared pool to also exercise that combination.
// ---------------------------------------------------------------------------

TEST(AsyncDifferential, TwoHundredSeedsMatchOracleAndBothReferences) {
  const int shard_choices[] = {1, 2, 3, 8};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Program p = random_program(seed * 0x9e3779b9ULL + 1);
    const int shards = shard_choices[seed % 4];
    const bool parallel_engines = (seed % 8) == 7;

    const std::set<Tok> expect = oracle_fixpoint(p);
    const std::set<Tok> seq_ref = single_engine_fixpoint(p);
    const std::set<Tok> bsp = sharded_fixpoint(p, shards, ShardedMode::Bsp,
                                               !parallel_engines);
    const std::set<Tok> async = sharded_fixpoint(
        p, shards, ShardedMode::Async, !parallel_engines);

    ASSERT_EQ(seq_ref, expect) << "seed " << seed;
    ASSERT_EQ(bsp, expect) << "seed " << seed << " shards " << shards;
    ASSERT_EQ(async, expect) << "seed " << seed << " shards " << shards
                             << (parallel_engines ? " (parallel engines)"
                                                  : " (sequential engines)");
  }
}

TEST(AsyncDifferential, AsyncMessageCountsAreDeterministicAcrossRuns) {
  const Program p = random_program(4242);
  ShardedRunReport first;
  (void)sharded_fixpoint(p, 3, ShardedMode::Async, true, &first);
  for (int i = 0; i < 5; ++i) {
    ShardedRunReport r;
    const std::set<Tok> got =
        sharded_fixpoint(p, 3, ShardedMode::Async, true, &r);
    EXPECT_EQ(got, oracle_fixpoint(p));
    // Per-(sender, destination, run) dedup makes the counts a pure
    // function of the derived tuple sets, like BSP's per-superstep counts.
    EXPECT_EQ(r.messages, first.messages) << "run " << i;
    EXPECT_EQ(r.local_messages, first.local_messages) << "run " << i;
    // local_tuples is NOT schedule-independent: two senders pushing the
    // same tuple dedup inside one mailbox epoch but deliver twice across
    // two, and the epoch grouping depends on drain timing.  Every fixpoint
    // tuple is delivered at least once, so the fixpoint size is a floor.
    EXPECT_GE(r.local_tuples,
              static_cast<std::int64_t>(oracle_fixpoint(p).size()))
        << "run " << i;
  }
}

TEST(AsyncDifferential, ReportCarriesPerShardCounters) {
  const Program p = random_program(77);
  ShardedRunReport r;
  (void)sharded_fixpoint(p, 3, ShardedMode::Async, true, &r);
  ASSERT_EQ(r.shard_stats.size(), 3u);
  EXPECT_GE(r.supersteps, 1);
  EXPECT_GE(r.epochs, 1);
  std::int64_t drained = 0, runs = 0;
  for (const ShardStats& st : r.shard_stats) {
    EXPECT_GE(st.runs, 1);  // every shard spends its initial token
    EXPECT_GE(st.busy_seconds, 0.0);
    EXPECT_GE(st.idle_seconds, 0.0);
    drained += st.drained_tuples;
    runs += st.runs;
  }
  // Every drained tuple traces back to a counted send or a seed; the
  // bound is not tight because cross-sender duplicates within one epoch
  // collapse in the destination mailbox.
  EXPECT_GT(drained, 0);
  EXPECT_LE(drained, r.messages + r.local_messages +
                         static_cast<std::int64_t>(p.seeds.size()));
  EXPECT_GE(runs, 3);
  EXPECT_GT(r.local_tuples, 0);
}

TEST(AsyncDifferential, EventDrivenReruns) {
  // Seeds added after a completed run must continue the same databases,
  // in async mode exactly as in BSP (Engine::run()'s event-driven
  // contract lifted to the cluster).
  Program p;
  p.keys = 8;
  p.max_gen = 6;
  p.adj.assign(8, {});
  for (std::int64_t k = 0; k < 8; ++k) p.adj[k] = {(k + 1) % 8};
  p.seeds = {Tok{0, 0}};

  EngineOptions opts;
  opts.sequential = true;
  ShardedOptions sopts;
  sopts.mode = ShardedMode::Async;
  std::vector<Table<Tok>*> tables(2);
  ShardedEngine<Tok> cluster(
      2, opts, sopts,
      [&p, &tables](int shard, Engine& eng, Sender<Tok>& sender) {
        auto& toks = eng.table(tok_decl());
        tables[static_cast<std::size_t>(shard)] = &toks;
        eng.rule(toks, "derive", [&p, &sender](RuleCtx&, const Tok& t) {
          if (t.gen + 1 > p.max_gen) return;
          for (const std::int64_t k2 :
               p.adj[static_cast<std::size_t>(t.key)]) {
            sender.send(partition_of(k2, 2), Tok{k2, t.gen + 1});
          }
        });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });

  cluster.seed(partition_of(0, 2), Tok{0, 0});
  cluster.run();
  auto count_all = [&] {
    std::size_t n = 0;
    for (auto* t : tables) n += t->gamma_size();
    return n;
  };
  const std::size_t after_first = count_all();
  EXPECT_EQ(after_first, 7u);  // gens 0..6 walking the ring from key 0

  cluster.seed(partition_of(5, 2), Tok{5, 0});  // a new event arrives
  cluster.run();
  EXPECT_GT(count_all(), after_first);
}

// ---------------------------------------------------------------------------
// Deterministic exception propagation (the latent-bug fix): when several
// shards throw in one round, the lowest shard id's exception must win, in
// both sequential and threaded BSP supersteps.  Async aborts all shards
// and rethrows the lowest id that actually threw before shutdown.
// ---------------------------------------------------------------------------

std::string run_throwing_cluster(int shards, bool sequential_engines,
                                 ShardedMode mode, int throw_from_shard) {
  EngineOptions opts;
  opts.sequential = sequential_engines;
  opts.threads = 2;
  ShardedOptions sopts;
  sopts.mode = mode;
  ShardedEngine<Tok> cluster(
      shards, opts, sopts,
      [throw_from_shard](int shard, Engine& eng, Sender<Tok>&) {
        auto& toks = eng.table(tok_decl());
        eng.rule(toks, "maybe_throw",
                 [shard, throw_from_shard](RuleCtx&, const Tok&) {
                   if (shard >= throw_from_shard) {
                     throw std::runtime_error("boom from shard " +
                                              std::to_string(shard));
                   }
                 });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });
  // One seed per shard: every shard >= throw_from_shard throws in the
  // same (first) round.
  for (int s = 0; s < shards; ++s) {
    cluster.seed(s, Tok{s, 0});  // dummy routing: deliver directly to s
  }
  try {
    cluster.run();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(ShardedExceptions, LowestShardIdWinsInSequentialBsp) {
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_EQ(run_throwing_cluster(4, true, ShardedMode::Bsp, 2),
              "boom from shard 2");
  }
}

TEST(ShardedExceptions, LowestShardIdWinsInThreadedBsp) {
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_EQ(run_throwing_cluster(4, false, ShardedMode::Bsp, 1),
              "boom from shard 1");
  }
}

TEST(ShardedExceptions, AsyncPropagatesAThrowingShard) {
  for (int trial = 0; trial < 5; ++trial) {
    const std::string what =
        run_throwing_cluster(4, true, ShardedMode::Async, 2);
    EXPECT_TRUE(what == "boom from shard 2" || what == "boom from shard 3")
        << "got: \"" << what << '"';
  }
}

TEST(ShardedExceptions, ClusterRemainsUsableForSeparateInstances) {
  // A throwing run must not poison a fresh cluster built afterwards (the
  // shared pool and mailboxes are per-instance).
  EXPECT_EQ(run_throwing_cluster(3, false, ShardedMode::Bsp, 0),
            "boom from shard 0");
  const Program p = random_program(9);
  EXPECT_EQ(sharded_fixpoint(p, 3, ShardedMode::Async, false),
            oracle_fixpoint(p));
}

}  // namespace
}  // namespace jstar::dist
