// Randomized differential harness for the async pipelined executor
// (§2 stage 3, src/dist/sharded.h), built on the shared program
// generator/oracle in tests/differential.h: seeded random rule programs
// (random fan-out, cross-shard key routing, 1/2/3/8 shards), asserting the
// async fixpoint is tuple-for-tuple identical to (a) a plain C++ worklist
// oracle, (b) the sequential single-Engine reference, and (c) the BSP
// sharded reference.  This is the JastAdd-style equivalence pinning: an
// aggressive schedule is only trusted against a reference evaluator.
//
// Sweep sizes scale with JSTAR_TEST_SEEDS (default 200; the nightly stress
// job runs 2000) and failures print a one-seed replay command.
//
// Also covered here: the EngineOptions flag matrix (no_delta x no_gamma x
// task_per_rule x delta_stripes) differentially against the oracle — these
// flags were previously only exercised one at a time — plus deterministic
// exception propagation when several shards throw (lowest shard id wins)
// and the async report's per-shard busy/drain counters.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "differential.h"
#include "dist/sharded.h"
#include "util/rng.h"

namespace jstar::dist {
namespace {

using difftest::Program;
using difftest::Tok;
using difftest::oracle_fixpoint;
using difftest::random_program;
using difftest::random_small_program;
using difftest::repro;
using difftest::seed_base;
using difftest::seed_count;
using difftest::sharded_fixpoint;
using difftest::single_engine_fixpoint;
using difftest::tok_decl;

// ---------------------------------------------------------------------------
// The differential sweep: >= 200 seeds, shard counts cycling 1/2/3/8.
// Sequential shard engines keep the sweep fast; every 8th seed upgrades to
// parallel engines on the shared pool to also exercise that combination.
// ---------------------------------------------------------------------------

TEST(AsyncDifferential, SeededSweepMatchesOracleAndBothReferences) {
  constexpr const char* kFilter =
      "AsyncDifferential.SeededSweepMatchesOracleAndBothReferences";
  const int shard_choices[] = {1, 2, 3, 8};
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(200);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const Program p = random_program(seed * 0x9e3779b9ULL + 1);
    const int shards = shard_choices[seed % 4];
    const bool parallel_engines = (seed % 8) == 7;

    const std::set<Tok> expect = oracle_fixpoint(p);
    const std::set<Tok> seq_ref = single_engine_fixpoint(p);
    const std::set<Tok> bsp =
        sharded_fixpoint(p, shards, ShardedMode::Bsp, !parallel_engines);
    const std::set<Tok> async =
        sharded_fixpoint(p, shards, ShardedMode::Async, !parallel_engines);

    ASSERT_EQ(seq_ref, expect) << repro(seed, "test_dist_async", kFilter);
    ASSERT_EQ(bsp, expect) << "shards " << shards << ", "
                           << repro(seed, "test_dist_async", kFilter);
    ASSERT_EQ(async, expect)
        << "shards " << shards
        << (parallel_engines ? " (parallel engines), "
                             : " (sequential engines), ")
        << repro(seed, "test_dist_async", kFilter);
  }
}

// ---------------------------------------------------------------------------
// The same sweep with the batched fabric forced into its corner regimes:
// tiny sender batches, a tiny mailbox capacity (every cross-shard flush
// throttles) and a drain floor larger than most epochs (the top-up wait
// path).  Correctness must be knob-independent — the knobs move tuples
// between flushes and epochs, never in or out of the fixpoint — and
// termination must still be detected with credits granted/returned in
// bulk.
// ---------------------------------------------------------------------------

TEST(AsyncDifferential, BackpressureAndTinyBatchesMatchOracle) {
  constexpr const char* kFilter =
      "AsyncDifferential.BackpressureAndTinyBatchesMatchOracle";
  const int shard_choices[] = {1, 2, 3, 8};
  // Three corner fabrics: unbatched+tight capacity, batch boundary
  // straddling + throttle + top-up, and flush-threshold-never-reached
  // (every delivery rides the flush-before-idle path).
  const ShardedOptions fabrics[] = {
      [] {
        ShardedOptions o;
        o.async_batch = 1;
        o.min_drain_batch = 1;
        o.mailbox_capacity = 2;
        return o;
      }(),
      [] {
        ShardedOptions o;
        o.async_batch = 3;
        o.min_drain_batch = 5;
        o.mailbox_capacity = 4;
        return o;
      }(),
      [] {
        ShardedOptions o;
        o.async_batch = 1 << 20;
        o.min_drain_batch = 7;
        o.mailbox_capacity = 8;
        return o;
      }(),
  };
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(200);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const Program p = random_program(seed * 0x2545f491ULL + 11);
    const int shards = shard_choices[seed % 4];
    const ShardedOptions& fabric = fabrics[seed % 3];

    const std::set<Tok> expect = oracle_fixpoint(p);
    const std::set<Tok> async = sharded_fixpoint(
        p, shards, ShardedMode::Async, /*sequential_engines=*/true, nullptr,
        difftest::StoreKind::Default, &fabric);
    ASSERT_EQ(async, expect)
        << "shards " << shards << ", async_batch " << fabric.async_batch
        << ", min_drain_batch " << fabric.min_drain_batch
        << ", mailbox_capacity " << fabric.mailbox_capacity << ", "
        << repro(seed, "test_dist_async", kFilter);
  }
}

// ---------------------------------------------------------------------------
// EngineOptions flag matrix: no_delta x no_gamma x task_per_rule x
// delta_stripes, swept differentially.  The programs use the small shape
// (2 duplicate rules, low fan-out/depth) because -noGamma removes
// set-semantics dedup: every derivation path is walked, and the observed
// set is collected through the table effect (fires once per delivery)
// rather than a Gamma scan.
// ---------------------------------------------------------------------------

TEST(EngineOptionsMatrix, AllFlagCombinationsMatchOracle) {
  constexpr const char* kFilter =
      "EngineOptionsMatrix.AllFlagCombinationsMatchOracle";
  const std::uint64_t base = seed_base();
  const std::uint64_t count = seed_count(24);
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const Program p = random_small_program(seed * 0x51ed2701ULL + 3);
    const std::set<Tok> expect = oracle_fixpoint(p);
    for (const bool sequential : {true, false}) {
      for (const bool no_delta : {false, true}) {
        for (const bool no_gamma : {false, true}) {
          // task_per_rule and delta_stripes only exist in parallel mode.
          const std::vector<std::pair<bool, int>> parallel_axes =
              sequential ? std::vector<std::pair<bool, int>>{{false, 0}}
                         : std::vector<std::pair<bool, int>>{
                               {false, 0}, {true, 0}, {false, 4}, {true, 4}};
          for (const auto& [task_per_rule, stripes] : parallel_axes) {
            EngineOptions opts;
            opts.sequential = sequential;
            opts.threads = 2;
            opts.task_per_rule = task_per_rule;
            opts.delta_stripes = stripes;
            if (no_delta) opts.no_delta.insert("Tok");
            if (no_gamma) opts.no_gamma.insert("Tok");
            ASSERT_EQ(single_engine_fixpoint(p, opts), expect)
                << "sequential=" << sequential << " no_delta=" << no_delta
                << " no_gamma=" << no_gamma
                << " task_per_rule=" << task_per_rule
                << " delta_stripes=" << stripes << ", "
                << repro(seed, "test_dist_async", kFilter);
          }
        }
      }
    }
  }
}

TEST(AsyncDifferential, AsyncMessageCountsAreDeterministicAcrossRuns) {
  const Program p = random_program(4242);
  ShardedRunReport first;
  (void)sharded_fixpoint(p, 3, ShardedMode::Async, true, &first);
  for (int i = 0; i < 5; ++i) {
    ShardedRunReport r;
    const std::set<Tok> got =
        sharded_fixpoint(p, 3, ShardedMode::Async, true, &r);
    EXPECT_EQ(got, oracle_fixpoint(p));
    // Per-(sender, destination, run) dedup makes the counts a pure
    // function of the derived tuple sets, like BSP's per-superstep counts.
    EXPECT_EQ(r.messages, first.messages) << "run " << i;
    EXPECT_EQ(r.local_messages, first.local_messages) << "run " << i;
    // local_tuples is NOT schedule-independent: two senders pushing the
    // same tuple dedup inside one mailbox epoch but deliver twice across
    // two, and the epoch grouping depends on drain timing.  Every fixpoint
    // tuple is delivered at least once, so the fixpoint size is a floor.
    EXPECT_GE(r.local_tuples,
              static_cast<std::int64_t>(oracle_fixpoint(p).size()))
        << "run " << i;
  }
}

TEST(AsyncDifferential, ReportCarriesPerShardCounters) {
  const Program p = random_program(77);
  ShardedRunReport r;
  (void)sharded_fixpoint(p, 3, ShardedMode::Async, true, &r);
  ASSERT_EQ(r.shard_stats.size(), 3u);
  EXPECT_GE(r.supersteps, 1);
  EXPECT_GE(r.epochs, 1);
  std::int64_t drained = 0, runs = 0;
  for (const ShardStats& st : r.shard_stats) {
    EXPECT_GE(st.runs, 1);  // every shard spends its initial token
    EXPECT_GE(st.busy_seconds, 0.0);
    EXPECT_GE(st.idle_seconds, 0.0);
    drained += st.drained_tuples;
    runs += st.runs;
  }
  // Every drained tuple traces back to a counted send or a seed; the
  // bound is not tight because cross-sender duplicates within one epoch
  // collapse in the destination mailbox.
  EXPECT_GT(drained, 0);
  EXPECT_LE(drained, r.messages + r.local_messages +
                         static_cast<std::int64_t>(p.seeds.size()));
  EXPECT_GE(runs, 3);
  EXPECT_GT(r.local_tuples, 0);
}

TEST(AsyncDifferential, EventDrivenReruns) {
  // Seeds added after a completed run must continue the same databases,
  // in async mode exactly as in BSP (Engine::run()'s event-driven
  // contract lifted to the cluster).
  Program p;
  p.keys = 8;
  p.max_gen = 6;
  p.adj.assign(8, {});
  for (std::int64_t k = 0; k < 8; ++k) {
    p.adj[static_cast<std::size_t>(k)] = {(k + 1) % 8};
  }
  p.seeds = {Tok{0, 0}};

  EngineOptions opts;
  opts.sequential = true;
  ShardedOptions sopts;
  sopts.mode = ShardedMode::Async;
  std::vector<Table<Tok>*> tables(2);
  ShardedEngine<Tok> cluster(
      2, opts, sopts,
      [&p, &tables](int shard, Engine& eng, Sender<Tok>& sender) {
        auto& toks = eng.table(tok_decl());
        tables[static_cast<std::size_t>(shard)] = &toks;
        eng.rule(toks, "derive", [&p, &sender](RuleCtx&, const Tok& t) {
          if (t.gen + 1 > p.max_gen) return;
          for (const std::int64_t k2 :
               p.adj[static_cast<std::size_t>(t.key)]) {
            sender.send(partition_of(k2, 2), Tok{k2, t.gen + 1});
          }
        });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });

  cluster.seed(partition_of(0, 2), Tok{0, 0});
  cluster.run();
  auto count_all = [&] {
    std::size_t n = 0;
    for (auto* t : tables) n += t->gamma_size();
    return n;
  };
  const std::size_t after_first = count_all();
  EXPECT_EQ(after_first, 7u);  // gens 0..6 walking the ring from key 0

  cluster.seed(partition_of(5, 2), Tok{5, 0});  // a new event arrives
  cluster.run();
  EXPECT_GT(count_all(), after_first);
}

// ---------------------------------------------------------------------------
// Deterministic exception propagation (the latent-bug fix): when several
// shards throw in one round, the lowest shard id's exception must win, in
// both sequential and threaded BSP supersteps.  Async aborts all shards
// and rethrows the lowest id that actually threw before shutdown.
// ---------------------------------------------------------------------------

std::string run_throwing_cluster(int shards, bool sequential_engines,
                                 ShardedMode mode, int throw_from_shard) {
  EngineOptions opts;
  opts.sequential = sequential_engines;
  opts.threads = 2;
  ShardedOptions sopts;
  sopts.mode = mode;
  ShardedEngine<Tok> cluster(
      shards, opts, sopts,
      [throw_from_shard](int shard, Engine& eng, Sender<Tok>&) {
        auto& toks = eng.table(tok_decl());
        eng.rule(toks, "maybe_throw",
                 [shard, throw_from_shard](RuleCtx&, const Tok&) {
                   if (shard >= throw_from_shard) {
                     throw std::runtime_error("boom from shard " +
                                              std::to_string(shard));
                   }
                 });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });
  // One seed per shard: every shard >= throw_from_shard throws in the
  // same (first) round.
  for (int s = 0; s < shards; ++s) {
    cluster.seed(s, Tok{s, 0});  // dummy routing: deliver directly to s
  }
  try {
    cluster.run();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(ShardedExceptions, LowestShardIdWinsInSequentialBsp) {
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_EQ(run_throwing_cluster(4, true, ShardedMode::Bsp, 2),
              "boom from shard 2");
  }
}

TEST(ShardedExceptions, LowestShardIdWinsInThreadedBsp) {
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_EQ(run_throwing_cluster(4, false, ShardedMode::Bsp, 1),
              "boom from shard 1");
  }
}

TEST(ShardedExceptions, AsyncPropagatesAThrowingShard) {
  for (int trial = 0; trial < 5; ++trial) {
    const std::string what =
        run_throwing_cluster(4, true, ShardedMode::Async, 2);
    EXPECT_TRUE(what == "boom from shard 2" || what == "boom from shard 3")
        << "got: \"" << what << '"';
  }
}

TEST(ShardedExceptions, ClusterRemainsUsableForSeparateInstances) {
  // A throwing run must not poison a fresh cluster built afterwards (the
  // shared pool and mailboxes are per-instance).
  EXPECT_EQ(run_throwing_cluster(3, false, ShardedMode::Bsp, 0),
            "boom from shard 0");
  const Program p = random_program(9);
  EXPECT_EQ(sharded_fixpoint(p, 3, ShardedMode::Async, false),
            oracle_fixpoint(p));
}

}  // namespace
}  // namespace jstar::dist
