// Tests for the reduce/scan module (§1.3, §5.2): reducer monoid laws,
// parallel tree-reduce vs sequential reference, and Blelloch scans under
// parameterized pool sizes and input shapes.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <string>

#include "reduce/parallel.h"
#include "reduce/reducers.h"
#include "util/statistics.h"

namespace jstar::reduce {
namespace {

// ---------------------------------------------------------------------------
// Reducer unit tests
// ---------------------------------------------------------------------------

TEST(Reducers, SumBasics) {
  Sum<std::int64_t> s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_EQ(s.value(), 55);
  Sum<std::int64_t> t;
  t.add(100);
  s.merge(t);
  EXPECT_EQ(s.value(), 155);
}

TEST(Reducers, SumIdentityIsNeutral) {
  Sum<double> s;
  s.add(2.5);
  Sum<double> id;
  s.merge(id);
  EXPECT_DOUBLE_EQ(s.value(), 2.5);
  id.merge(s);
  EXPECT_DOUBLE_EQ(id.value(), 2.5);
}

TEST(Reducers, CountCountsAnything) {
  Count c;
  c.add(1);
  c.add(std::string("x"));
  c.add(3.14);
  EXPECT_EQ(c.value(), 3);
  Count d;
  d.add(0);
  c.merge(d);
  EXPECT_EQ(c.value(), 4);
}

TEST(Reducers, MinMaxEmptyAndMerge) {
  Min<int> mn;
  Max<int> mx;
  EXPECT_TRUE(mn.empty());
  EXPECT_TRUE(mx.empty());
  mn.add(4);
  mn.add(-2);
  mx.add(4);
  mx.add(-2);
  EXPECT_EQ(mn.value(), -2);
  EXPECT_EQ(mx.value(), 4);
  Min<int> mn2;
  mn2.add(-10);
  mn.merge(mn2);
  EXPECT_EQ(mn.value(), -10);
  Max<int> empty_max;
  mx.merge(empty_max);  // merging an identity must not change the value
  EXPECT_EQ(mx.value(), 4);
}

TEST(Reducers, MinEmptyValueThrows) {
  Min<int> mn;
  EXPECT_THROW((void)mn.value(), std::logic_error);
}

TEST(Reducers, TopKKeepsSmallest) {
  TopK<int> top(3);
  for (int x : {9, 1, 8, 2, 7, 3, 6, 4, 5}) top.add(x);
  EXPECT_EQ(top.values(), (std::vector<int>{1, 2, 3}));
}

TEST(Reducers, TopKMergePreservesTopK) {
  TopK<int> a(4), b(4);
  for (int x : {10, 20, 30, 40, 50}) a.add(x);
  for (int x : {5, 15, 25, 35, 45}) b.add(x);
  a.merge(b);
  EXPECT_EQ(a.values(), (std::vector<int>{5, 10, 15, 20}));
}

TEST(Reducers, TopKFewerThanK) {
  TopK<int> top(10);
  top.add(2);
  top.add(1);
  EXPECT_EQ(top.values(), (std::vector<int>{1, 2}));
}

TEST(Reducers, TopKMismatchedKThrows) {
  TopK<int> a(2), b(3);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(Reducers, HistogramBinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.counts()[0], 2);
  EXPECT_EQ(h.counts()[2], 1);
  EXPECT_EQ(h.counts()[4], 2);
  EXPECT_EQ(h.total(), 5);
}

TEST(Reducers, HistogramMerge) {
  Histogram a(0, 1, 4), b(0, 1, 4);
  a.add(0.1);
  b.add(0.1);
  b.add(0.9);
  a.merge(b);
  EXPECT_EQ(a.counts()[0], 2);
  EXPECT_EQ(a.counts()[3], 1);
}

TEST(Reducers, HistogramIncompatibleMergeThrows) {
  Histogram a(0, 1, 4), b(0, 1, 8);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(Reducers, FoldWithUserOperator) {
  // gcd-fold: a user-defined operator per §1.3.
  Fold fold(0L, [](long a, long b) { return std::gcd(a, b); });
  for (long x : {12L, 18L, 30L}) fold.add(x);
  EXPECT_EQ(fold.value(), 6L);
}

TEST(Reducers, PairRunsBothReducers) {
  Pair<Sum<double>, Count> p;
  p.add(1.5);
  p.add(2.5);
  EXPECT_DOUBLE_EQ(p.first().value(), 4.0);
  EXPECT_EQ(p.second().value(), 2);
  Pair<Sum<double>, Count> q;
  q.add(6.0);
  p.merge(q);
  EXPECT_DOUBLE_EQ(p.first().value(), 10.0);
  EXPECT_EQ(p.second().value(), 3);
}

TEST(Reducers, StatisticsSatisfiesReducible) {
  static_assert(Reducible<Statistics, double>);
  static_assert(Reducible<Sum<int>, int>);
  static_assert(Reducible<Count, int>);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// split_range properties
// ---------------------------------------------------------------------------

TEST(SplitRange, CoversExactlyOnce) {
  for (std::int64_t n : {0, 1, 7, 64, 1000}) {
    for (int parts : {1, 2, 3, 8, 13}) {
      const auto chunks = split_range(n, parts);
      ASSERT_EQ(chunks.size(), static_cast<std::size_t>(parts));
      std::int64_t at = 0;
      for (const auto& c : chunks) {
        EXPECT_EQ(c.begin, at);
        EXPECT_LE(c.begin, c.end);
        at = c.end;
      }
      EXPECT_EQ(at, n);
    }
  }
}

TEST(SplitRange, BalancedWithinOne) {
  const auto chunks = split_range(10, 3);
  std::int64_t mn = INT64_MAX, mx = 0;
  for (const auto& c : chunks) {
    mn = std::min(mn, c.end - c.begin);
    mx = std::max(mx, c.end - c.begin);
  }
  EXPECT_LE(mx - mn, 1);
}

// ---------------------------------------------------------------------------
// parallel_reduce: parameterized against the sequential reference
// ---------------------------------------------------------------------------

class ParallelReduce : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int threads() const { return std::get<0>(GetParam()); }
  int n() const { return std::get<1>(GetParam()); }
};

TEST_P(ParallelReduce, SumMatchesSequential) {
  sched::ForkJoinPool pool(threads());
  std::vector<std::int64_t> xs(static_cast<std::size_t>(n()));
  std::mt19937_64 rng(42);
  for (auto& x : xs) x = static_cast<std::int64_t>(rng() % 1000);
  const auto result = parallel_reduce_over<Sum<std::int64_t>>(
      &pool, xs, [](Sum<std::int64_t>& acc, std::int64_t x) { acc.add(x); });
  std::int64_t expect = 0;
  for (auto x : xs) expect += x;
  EXPECT_EQ(result.value(), expect);
}

TEST_P(ParallelReduce, StatisticsMatchesSequential) {
  sched::ForkJoinPool pool(threads());
  std::vector<double> xs(static_cast<std::size_t>(n()));
  std::mt19937_64 rng(7);
  for (auto& x : xs) x = static_cast<double>(rng() % 10000) / 100.0;
  const auto par = parallel_reduce_over<Statistics>(
      &pool, xs, [](Statistics& acc, double x) { acc.add(x); });
  Statistics seq;
  for (double x : xs) seq.add(x);
  EXPECT_EQ(par.count(), seq.count());
  EXPECT_NEAR(par.mean(), seq.mean(), 1e-9);
  EXPECT_NEAR(par.variance(), seq.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(par.min(), seq.min());
  EXPECT_DOUBLE_EQ(par.max(), seq.max());
}

TEST_P(ParallelReduce, MinMaxMatchSequential) {
  sched::ForkJoinPool pool(threads());
  std::vector<int> xs(static_cast<std::size_t>(n()));
  std::mt19937_64 rng(99);
  for (auto& x : xs) x = static_cast<int>(rng() % 100000) - 50000;
  if (xs.empty()) return;
  const auto mn = parallel_reduce_over<Min<int>>(
      &pool, xs, [](Min<int>& acc, int x) { acc.add(x); });
  const auto mx = parallel_reduce_over<Max<int>>(
      &pool, xs, [](Max<int>& acc, int x) { acc.add(x); });
  EXPECT_EQ(mn.value(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(mx.value(), *std::max_element(xs.begin(), xs.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelReduce,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 2, 100, 4096, 100001)));

TEST(ParallelReduceEdge, NullPoolFallsBackToSequential) {
  std::vector<int> xs{1, 2, 3, 4};
  const auto r = parallel_reduce_over<Sum<int>>(
      nullptr, xs, [](Sum<int>& acc, int x) { acc.add(x); });
  EXPECT_EQ(r.value(), 10);
}

TEST(ParallelReduceEdge, IdentityCarriesConfigurationNotData) {
  sched::ForkJoinPool pool(4);
  // Histogram has no default constructor: the identity argument is the
  // prototype that carries bin configuration into every chunk partial.
  std::vector<double> xs(10000);
  std::mt19937_64 rng(5);
  for (auto& x : xs) x = static_cast<double>(rng() % 1000);
  const auto par = parallel_reduce_over<Histogram>(
      &pool, xs, [](Histogram& acc, double x) { acc.add(x); },
      Histogram(0.0, 1000.0, 16));
  Histogram seq(0.0, 1000.0, 16);
  for (double x : xs) seq.add(x);
  EXPECT_EQ(par.counts(), seq.counts());
  EXPECT_EQ(par.total(), 10000);
}

TEST(ParallelReduceEdge, TopKAcrossChunks) {
  sched::ForkJoinPool pool(4);
  std::vector<int> xs(5000);
  std::mt19937_64 rng(17);
  for (auto& x : xs) x = static_cast<int>(rng() % 1000000);
  const auto par = parallel_reduce_over<TopK<int>>(
      &pool, xs, [](TopK<int>& acc, int x) { acc.add(x); }, TopK<int>(8));
  auto sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  sorted.resize(8);
  EXPECT_EQ(par.values(), sorted);
}

// ---------------------------------------------------------------------------
// parallel scans: parameterized against std::partial_sum
// ---------------------------------------------------------------------------

class ParallelScan : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int threads() const { return std::get<0>(GetParam()); }
  int n() const { return std::get<1>(GetParam()); }

  std::vector<std::int64_t> input() const {
    std::vector<std::int64_t> xs(static_cast<std::size_t>(n()));
    std::mt19937_64 rng(1234);
    for (auto& x : xs) x = static_cast<std::int64_t>(rng() % 100) - 50;
    return xs;
  }
};

TEST_P(ParallelScan, InclusiveMatchesPartialSum) {
  sched::ForkJoinPool pool(threads());
  auto xs = input();
  std::vector<std::int64_t> expect(xs.size());
  std::partial_sum(xs.begin(), xs.end(), expect.begin());
  parallel_inclusive_scan(&pool, xs, std::plus<std::int64_t>{});
  EXPECT_EQ(xs, expect);
}

TEST_P(ParallelScan, ExclusiveShiftsInclusive) {
  sched::ForkJoinPool pool(threads());
  auto xs = input();
  std::vector<std::int64_t> expect(xs.size());
  std::int64_t run = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    expect[i] = run;
    run += xs[i];
  }
  parallel_exclusive_scan(&pool, xs, std::int64_t{0},
                          std::plus<std::int64_t>{});
  EXPECT_EQ(xs, expect);
}

TEST_P(ParallelScan, MaxScanAssociativeNonCommutativeSafe) {
  // max is associative; prefix-max is a classic scan use.
  sched::ForkJoinPool pool(threads());
  auto xs = input();
  std::vector<std::int64_t> expect(xs.size());
  std::int64_t run = INT64_MIN;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    run = std::max(run, xs[i]);
    expect[i] = run;
  }
  parallel_inclusive_scan(&pool, xs, [](std::int64_t a, std::int64_t b) {
    return std::max(a, b);
  });
  EXPECT_EQ(xs, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelScan,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 2, 3, 64, 1000, 65537)));

TEST(ParallelScanEdge, NullPoolSequential) {
  std::vector<std::int64_t> xs{1, 2, 3};
  parallel_inclusive_scan(nullptr, xs, std::plus<std::int64_t>{});
  EXPECT_EQ(xs, (std::vector<std::int64_t>{1, 3, 6}));
}

TEST(ParallelScanEdge, ExclusiveOfEmptyIsEmpty) {
  std::vector<std::int64_t> xs;
  parallel_exclusive_scan(nullptr, xs, std::int64_t{0},
                          std::plus<std::int64_t>{});
  EXPECT_TRUE(xs.empty());
}

TEST(ParallelScanEdge, ExclusiveIdentityLandsAtFront) {
  std::vector<std::int64_t> xs{5};
  parallel_exclusive_scan(nullptr, xs, std::int64_t{7},
                          std::plus<std::int64_t>{});
  EXPECT_EQ(xs, (std::vector<std::int64_t>{7}));
}

}  // namespace
}  // namespace jstar::reduce
