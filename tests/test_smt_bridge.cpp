// Tests for the TableDecl → RuleSpec bridge (§4): specs built from
// orderby shapes + order declarations must discharge the same obligations
// as the hand-built ones, against live engine tables.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "smt/bridge.h"

namespace jstar::smt {
namespace {

struct Ship {
  std::int64_t frame, x, y, dx, dy;
  auto operator<=>(const Ship&) const = default;
};
struct Pv {
  std::int64_t year, month, power;
  auto operator<=>(const Pv&) const = default;
};
struct Sum {
  std::int64_t year, month;
  auto operator<=>(const Sum&) const = default;
};

TEST(SmtBridge, ShipMoveRuleProvedFromDeclaredShape) {
  // Engine-side declarations, exactly as a program would write them.
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(TableDecl<Ship>("Ship")
                             .orderby_lit("Int")
                             .orderby_seq("frame", &Ship::frame)
                             .hash([](const Ship& s) {
                               return hash_fields(s.frame, s.x);
                             }));
  eng.prepare();  // freezes the order relation

  RuleSpecBuilder b(eng.orders(), "moveRight");
  auto trig = b.trigger("Ship", ship.orderby_spec());
  auto put = b.put("Ship", ship.orderby_spec());
  // The rule writes frame+1 into the new tuple's frame field.
  put.bind("frame", trig["frame"] + LinExpr(1));
  b.add_put(put);

  CausalityChecker checker;
  const auto results = checker.check(b.build());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Proved) << results[0].detail;
}

TEST(SmtBridge, PutIntoPastRefutedFromDeclaredShape) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(TableDecl<Ship>("Ship")
                             .orderby_lit("Int")
                             .orderby_seq("frame", &Ship::frame)
                             .hash([](const Ship& s) {
                               return hash_fields(s.frame);
                             }));
  eng.prepare();

  RuleSpecBuilder b(eng.orders(), "badRule");
  auto trig = b.trigger("Ship", ship.orderby_spec());
  auto put = b.put("Ship", ship.orderby_spec());
  put.bind("frame", trig["frame"] - LinExpr(1));
  b.add_put(put);

  CausalityChecker checker;
  const auto results = checker.check(b.build());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Refuted);
  EXPECT_NE(results[0].detail.find("counterexample"), std::string::npos);
}

TEST(SmtBridge, Fig4StratificationFromOrderDeclaration) {
  // With `order Req < PvWatts < SumMonth` the aggregate query over
  // PvWatts from a SumMonth trigger is strictly in the past.
  Engine eng(EngineOptions{.sequential = true});
  auto& pv = eng.table(TableDecl<Pv>("PvWatts")
                           .orderby_lit("PvWatts")
                           .hash([](const Pv& p) {
                             return hash_fields(p.year, p.month, p.power);
                           }));
  auto& sum = eng.table(TableDecl<Sum>("SumMonth")
                            .orderby_lit("SumMonth")
                            .hash([](const Sum& s) {
                              return hash_fields(s.year, s.month);
                            }));
  eng.order({"Req", "PvWatts", "SumMonth"});
  eng.orders().literal("Req");  // Req appears only in the order chain
  eng.prepare();

  RuleSpecBuilder b(eng.orders(), "sumMonth");
  b.trigger("SumMonth", sum.orderby_spec());
  auto q = b.query("PvWatts", pv.orderby_spec());
  b.add_query(q);

  CausalityChecker checker;
  const auto results = checker.check(b.build());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Proved) << results[0].detail;
}

TEST(SmtBridge, MissingOrderDeclarationRefutes) {
  // Without the order chain both tables collapse... here: same literal,
  // so the query is at the trigger's own timestamp — the paper's
  // Stratification error.
  Engine eng(EngineOptions{.sequential = true});
  auto& pv = eng.table(TableDecl<Pv>("PvWatts")
                           .orderby_lit("Data")
                           .hash([](const Pv& p) {
                             return hash_fields(p.year);
                           }));
  auto& sum = eng.table(TableDecl<Sum>("SumMonth")
                            .orderby_lit("Data")
                            .hash([](const Sum& s) {
                              return hash_fields(s.year);
                            }));
  eng.prepare();

  RuleSpecBuilder b(eng.orders(), "sumMonthNoOrder");
  b.trigger("SumMonth", sum.orderby_spec());
  auto q = b.query("PvWatts", pv.orderby_spec());
  b.add_query(q);

  CausalityChecker checker;
  const auto results = checker.check(b.build());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].status, ProofStatus::Proved);
}

TEST(SmtBridge, DijkstraSettleFromDeclaredShapes) {
  // Fig 5: Estimate/Done orderby (Int, seq distance, Lit).
  Engine eng(EngineOptions{.sequential = true});
  struct Est {
    std::int64_t vertex, distance;
    auto operator<=>(const Est&) const = default;
  };
  auto& est = eng.table(TableDecl<Est>("Estimate")
                            .orderby_lit("Int")
                            .orderby_seq("distance", &Est::distance)
                            .orderby_lit("Estimate")
                            .hash([](const Est& e) {
                              return hash_fields(e.vertex, e.distance);
                            }));
  auto& done = eng.table(TableDecl<Est>("Done")
                             .orderby_lit("Int")
                             .orderby_seq("distance", &Est::distance)
                             .orderby_lit("Done")
                             .hash([](const Est& e) {
                               return hash_fields(e.vertex, e.distance);
                             }));
  eng.order({"Estimate", "Done"});
  eng.prepare();

  RuleSpecBuilder b(eng.orders(), "settle");
  auto trig = b.trigger("Estimate", est.orderby_spec());
  // put Done(vertex, distance) — same distance, later literal.
  auto put_done = b.put("Done", done.orderby_spec());
  put_done.bind("distance", trig["distance"]);
  b.add_put(put_done);
  // put Estimate(to, distance + w) with the edge invariant w >= 1.
  const VarId w = b.vars().fresh("edge.value");
  b.given(ge(LinExpr::var(w), LinExpr(1)));
  auto put_est = b.put("Estimate", est.orderby_spec(), "2");
  put_est.bind("distance", trig["distance"] + LinExpr::var(w));
  b.add_put(put_est);

  CausalityChecker checker;
  const auto results = checker.check(b.build());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, ProofStatus::Proved) << results[0].detail;
  EXPECT_EQ(results[1].status, ProofStatus::Proved) << results[1].detail;
}

TEST(SmtBridge, UnboundPutFieldMustHoldForAnyValue) {
  // Leaving the put's frame unbound means "the rule may write anything":
  // the obligation frame' >= frame is then unprovable — Refuted with a
  // counterexample, the sound default.
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(TableDecl<Ship>("Ship")
                             .orderby_lit("Int")
                             .orderby_seq("frame", &Ship::frame)
                             .hash([](const Ship& s) {
                               return hash_fields(s.frame);
                             }));
  eng.prepare();
  RuleSpecBuilder b(eng.orders(), "unbound");
  b.trigger("Ship", ship.orderby_spec());
  auto put = b.put("Ship", ship.orderby_spec());
  b.add_put(put);
  CausalityChecker checker;
  const auto results = checker.check(b.build());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Refuted);
}

TEST(SmtBridge, UnknownFieldThrows) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(TableDecl<Ship>("Ship")
                             .orderby_lit("Int")
                             .orderby_seq("frame", &Ship::frame)
                             .hash([](const Ship& s) {
                               return hash_fields(s.frame);
                             }));
  eng.prepare();
  RuleSpecBuilder b(eng.orders(), "typo");
  auto trig = b.trigger("Ship", ship.orderby_spec());
  EXPECT_THROW(trig["frme"], std::logic_error);
  auto put = b.put("Ship", ship.orderby_spec());
  EXPECT_THROW(put.bind("frme", LinExpr(0)), std::logic_error);
}

TEST(SmtBridge, RequiresFrozenOrders) {
  OrderResolver orders;
  EXPECT_THROW(RuleSpecBuilder(orders, "early"), std::logic_error);
}

TEST(SmtBridge, ParFieldsExcludedFromKey) {
  Engine eng(EngineOptions{.sequential = true});
  struct Cell {
    std::int64_t iter, index;
    auto operator<=>(const Cell&) const = default;
  };
  auto& cell = eng.table(TableDecl<Cell>("Cell")
                             .orderby_lit("Int")
                             .orderby_seq("iter", &Cell::iter)
                             .orderby_par("index")
                             .hash([](const Cell& c) {
                               return hash_fields(c.iter, c.index);
                             }));
  eng.prepare();
  RuleSpecBuilder b(eng.orders(), "parShape");
  auto trig = b.trigger("Cell", cell.orderby_spec());
  EXPECT_EQ(trig.key().size(), 2u);  // Int rank + iter; no index level
  EXPECT_THROW(trig["index"], std::logic_error);
}

}  // namespace
}  // namespace jstar::smt
