// Shared randomized differential harness (the JastAdd-style equivalence
// discipline: an aggressive schedule is only trusted against a reference
// evaluator).  Extracted from tests/test_dist_async.cpp so every new
// execution mode — async sharding, streaming epochs, future backends —
// pins its fixpoint tuple-for-tuple against the same batch oracle.
//
// A random program is a directed multigraph over a small key universe plus
// a generation bound: a tuple (key, gen) derives (key2, gen+1) for every
// out-edge of key while gen+1 <= max_gen.  The fixpoint is the set of
// derivable (key, gen) pairs — finite, schedule independent, and rich in
// cross-shard traffic once keys are hash routed.
//
// Replayability: sweeps read their seed range from the environment —
//   JSTAR_TEST_SEEDS      how many seeds to run (default per call site,
//                         usually 200; the nightly stress job sets 2000),
//   JSTAR_TEST_SEED_BASE  first seed (default 0).
// Every assertion carries repro() so a CI failure log contains the exact
// one-seed reproduction command.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "dist/sharded.h"
#include "util/rng.h"

namespace jstar::difftest {

// --- seed-range scaling and failure replay ---------------------------------

inline std::uint64_t env_u64(const char* name, std::uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return def;
  return static_cast<std::uint64_t>(parsed);
}

/// Seeds per sweep (JSTAR_TEST_SEEDS, nightly-scaled).
inline std::uint64_t seed_count(std::uint64_t def = 200) {
  return env_u64("JSTAR_TEST_SEEDS", def);
}

/// First seed of the sweep (JSTAR_TEST_SEED_BASE, for replaying one seed).
inline std::uint64_t seed_base() { return env_u64("JSTAR_TEST_SEED_BASE", 0); }

/// Minimized reproduction command for a failing seed, for assertion
/// messages: rerunning the named test with the base pinned to the failing
/// seed and the count to 1 replays exactly the failing case.
inline std::string repro(std::uint64_t seed, const char* test_exe,
                         const char* gtest_filter) {
  return "seed " + std::to_string(seed) +
         " — replay: JSTAR_TEST_SEED_BASE=" + std::to_string(seed) +
         " JSTAR_TEST_SEEDS=1 ./" + test_exe +
         " --gtest_filter=" + gtest_filter;
}

// --- random programs and the engine-free oracle ----------------------------

struct Tok {
  std::int64_t key, gen;
  auto operator<=>(const Tok&) const = default;
};

struct Program {
  std::int64_t keys = 0;
  std::int64_t max_gen = 0;
  std::vector<std::vector<std::int64_t>> adj;  // out-edges per key
  std::vector<Tok> seeds;
  /// Rules per engine: 1 = "derive" only; 2 adds a duplicate "derive2"
  /// (same body), which leaves the fixpoint unchanged but doubles the
  /// derivation paths — the shape that exercises task_per_rule and the
  /// dedup layers.  Generators keep fanout/gen small when rules == 2 so
  /// the no-dedup (-noGamma) combinations stay bounded.
  int rules = 1;
};

inline Program random_program_shaped(std::uint64_t seed,
                                     std::uint64_t max_fanout,
                                     std::int64_t gen_cap, int rules) {
  SplitMix64 rng(seed);
  Program p;
  p.rules = rules;
  p.keys = 4 + static_cast<std::int64_t>(rng.next_below(29));  // 4..32
  p.max_gen =
      1 + static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(gen_cap)));  // 1..gen_cap
  p.adj.resize(static_cast<std::size_t>(p.keys));
  for (auto& out : p.adj) {
    const std::uint64_t fanout = rng.next_below(max_fanout + 1);
    for (std::uint64_t f = 0; f < fanout; ++f) {
      out.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(p.keys))));
    }
  }
  const std::uint64_t nseeds = 1 + rng.next_below(4);  // 1..4
  for (std::uint64_t i = 0; i < nseeds; ++i) {
    p.seeds.push_back(Tok{static_cast<std::int64_t>(rng.next_below(
                              static_cast<std::uint64_t>(p.keys))),
                          0});
  }
  return p;
}

/// The shape the async differential sweep has always used.
inline Program random_program(std::uint64_t seed) {
  return random_program_shaped(seed, /*max_fanout=*/3, /*gen_cap=*/7,
                               /*rules=*/1);
}

/// A smaller shape for the EngineOptions flag matrix: with -noGamma there
/// is no set-semantics dedup, so every derivation path is walked — keep
/// fanout and depth low enough that 2 rules x fanout 2 x gen <= 4 stays a
/// few hundred firings.
inline Program random_small_program(std::uint64_t seed) {
  return random_program_shaped(seed, /*max_fanout=*/2, /*gen_cap=*/4,
                               /*rules=*/2);
}

/// Engine-free worklist oracle.
inline std::set<Tok> oracle_fixpoint(const Program& p) {
  std::set<Tok> seen(p.seeds.begin(), p.seeds.end());
  std::vector<Tok> work(p.seeds.begin(), p.seeds.end());
  while (!work.empty()) {
    const Tok t = work.back();
    work.pop_back();
    if (t.gen + 1 > p.max_gen) continue;
    for (const std::int64_t k2 : p.adj[static_cast<std::size_t>(t.key)]) {
      const Tok next{k2, t.gen + 1};
      if (seen.insert(next).second) work.push_back(next);
    }
  }
  return seen;
}

/// Gamma substrate selector for differential sweeps: the flat tier
/// (core/flat_store.h) must compute the same fixpoints as the node-based
/// defaults under every schedule, so the harness entry points take one.
enum class StoreKind { Default, FlatOrdered, FlatHash, Columnar };

inline const char* to_string(StoreKind k) {
  switch (k) {
    case StoreKind::Default: return "default";
    case StoreKind::FlatOrdered: return "flat-ordered";
    case StoreKind::FlatHash: return "flat-hash";
    case StoreKind::Columnar: return "columnar";
  }
  return "?";
}

inline TableDecl<Tok> tok_decl(StoreKind store = StoreKind::Default) {
  TableDecl<Tok> decl =
      TableDecl<Tok>("Tok")
          .orderby_lit("T")
          .orderby_seq("gen", &Tok::gen)
          .hash([](const Tok& t) { return hash_fields(t.key, t.gen); });
  switch (store) {
    case StoreKind::Default: break;
    case StoreKind::FlatOrdered: decl.flat_store(); break;
    case StoreKind::FlatHash: decl.flat_hash_store(); break;
    case StoreKind::Columnar: decl.columns(&Tok::key, &Tok::gen); break;
  }
  return decl;
}

/// Attaches the program's derivation rules to `toks` (p.rules copies, so
/// the fixpoint is unchanged but task_per_rule has real work to split).
/// `put` performs one local put (local engine or sender routing).
inline void add_rules(Engine& eng, Table<Tok>& toks, const Program& p,
                      std::function<void(RuleCtx&, const Tok&)> put) {
  for (int r = 0; r < p.rules; ++r) {
    eng.rule(toks, r == 0 ? "derive" : "derive" + std::to_string(r + 1),
             [&p, put](RuleCtx& ctx, const Tok& t) {
               if (t.gen + 1 > p.max_gen) return;
               for (const std::int64_t k2 :
                    p.adj[static_cast<std::size_t>(t.key)]) {
                 put(ctx, Tok{k2, t.gen + 1});
               }
             });
  }
}

// --- reference evaluators ---------------------------------------------------

/// Reference 1: a single Engine under `opts`, rules put locally (gen
/// increases, so local puts respect the law of causality).  The observed
/// set is collected through the table's effect — not a Gamma scan — so it
/// works identically for -noGamma (NullStore) configurations, where the
/// effect fires for every delivery and the set dedups.
inline std::set<Tok> single_engine_fixpoint(const Program& p,
                                            const EngineOptions& opts,
                                            StoreKind store =
                                                StoreKind::Default) {
  std::set<Tok> observed;
  std::mutex mu;
  Engine eng(opts);
  auto& toks =
      eng.table(tok_decl(store).effect([&observed, &mu](const Tok& t) {
        std::lock_guard<std::mutex> lk(mu);
        observed.insert(t);
      }));
  add_rules(eng, toks, p, [&toks](RuleCtx& ctx, const Tok& t) {
    toks.put(ctx, t);
  });
  for (const Tok& s : p.seeds) eng.put(toks, s);
  eng.run();
  return observed;
}

/// The default reference: one sequential Engine.
inline std::set<Tok> single_engine_fixpoint(const Program& p) {
  EngineOptions opts;
  opts.sequential = true;
  return single_engine_fixpoint(p, opts);
}

/// References 2 and 3: the sharded engine under either schedule.  Every
/// derived tuple is routed through the mailbox to the hash owner of its
/// key, so fan-out traffic crosses shard boundaries constantly.  Also
/// checks ownership: a tuple may only materialise on the shard its key
/// hashes to.  `fabric` (optional) overrides the async fabric tuning —
/// batch threshold, drain floor, mailbox capacity — so knob sweeps can
/// force the flush / top-up / throttle paths on tiny programs; its mode
/// field is overwritten by `mode`.
inline std::set<Tok> sharded_fixpoint(const Program& p, int shards,
                                      dist::ShardedMode mode,
                                      bool sequential_engines,
                                      dist::ShardedRunReport* report_out =
                                          nullptr,
                                      StoreKind store = StoreKind::Default,
                                      const dist::ShardedOptions* fabric =
                                          nullptr,
                                      bool emit_buffer = true) {
  EngineOptions opts;
  opts.sequential = sequential_engines;
  opts.threads = 2;
  opts.emit_buffer = emit_buffer;
  dist::ShardedOptions sopts;
  if (fabric != nullptr) sopts = *fabric;
  sopts.mode = mode;

  std::vector<Table<Tok>*> tables(static_cast<std::size_t>(shards));
  dist::ShardedEngine<Tok> cluster(
      shards, opts, sopts,
      [&p, &tables, shards, store](int shard, Engine& eng,
                                   dist::Sender<Tok>& sender) {
        auto& toks = eng.table(tok_decl(store));
        tables[static_cast<std::size_t>(shard)] = &toks;
        add_rules(eng, toks, p, [&sender, shards](RuleCtx&, const Tok& t) {
          sender.send(dist::partition_of(t.key, shards), t);
        });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });

  for (const Tok& s : p.seeds) {
    cluster.seed(dist::partition_of(s.key, shards), s);
  }
  const dist::ShardedRunReport report = cluster.run();
  if (report_out != nullptr) *report_out = report;

  std::set<Tok> out;
  for (int s = 0; s < shards; ++s) {
    tables[static_cast<std::size_t>(s)]->scan([&](const Tok& t) {
      EXPECT_EQ(dist::partition_of(t.key, shards), s)
          << "tuple (" << t.key << "," << t.gen << ") on a non-owner shard";
      out.insert(t);
    });
  }
  return out;
}

// --- counted (multiset) schedules: retract- and upsert-heavy waves ---------
//
// A signed schedule drives a counted() table: waves of signed seed
// operations (insert +1, retract -1, upsert) separated by run()-to-
// quiescence points, so later waves land on a live incremental database.
// The fixpoint of a signed schedule is fully determined by the *net* seed
// count of every tuple — insert/retract commute per tuple — which gives a
// closed-form stratified oracle and makes the sweep mode-independent:
// sequential, BSP and async sharding must all land on it tuple-for-tuple.

/// One signed seed operation.  `sign` is +1 (insert), -1 (retract) or
/// kUpsertOp (keyed overwrite; only used by the upsert-heavy schedules).
inline constexpr std::int32_t kUpsertOp =
    std::numeric_limits<std::int32_t>::min();
struct SignedOp {
  Tok t;
  std::int32_t sign = 1;
};
using Wave = std::vector<SignedOp>;

struct CountedCase {
  Program p;          // derivation graph; p.seeds stays empty (waves drive)
  std::vector<Wave> waves;
};

/// A delete-heavy schedule: an insert wave followed by waves mixing
/// retractions of live tuples (the common case), duplicate inserts
/// (multiplicity > 1), retractions of tuples never inserted (debts), and
/// direct retractions of *derived* tuples — every signed path the counted
/// layer has.
inline CountedCase make_delete_heavy_case(std::uint64_t seed) {
  CountedCase c;
  c.p = random_program_shaped(seed * 0x9e3779b9ULL + 17, /*max_fanout=*/3,
                              /*gen_cap=*/6, /*rules=*/1);
  c.p.seeds.clear();  // the waves are the only seed source
  SplitMix64 rng(seed ^ 0xd1b54a32d192ed03ULL);
  auto random_key = [&] {
    return static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(c.p.keys)));
  };
  std::vector<Tok> pool;  // tuples some earlier wave inserted
  const std::uint64_t nwaves = 2 + rng.next_below(3);  // 2..4
  for (std::uint64_t w = 0; w < nwaves; ++w) {
    Wave wave;
    const std::uint64_t nops = 2 + rng.next_below(7);  // 2..8
    for (std::uint64_t i = 0; i < nops; ++i) {
      const std::uint64_t dice = rng.next_below(10);
      if (w == 0 || pool.empty() || dice < 3) {
        const Tok t{random_key(), 0};
        wave.push_back({t, 1});
        pool.push_back(t);
      } else if (dice < 7) {
        // Retract something a previous wave inserted (may already be
        // retracted — then it digs a debt, which is also on-contract).
        wave.push_back({pool[rng.next_below(pool.size())], -1});
      } else if (dice < 8) {
        // Duplicate insert: multiplicity 2 shields one retraction.
        wave.push_back({pool[rng.next_below(pool.size())], 1});
      } else if (dice < 9) {
        // Debt: retract a gen-0 tuple that may never have been inserted.
        wave.push_back({Tok{random_key(), 0}, -1});
      } else {
        // Direct retraction of a derived tuple: cancels one derivation
        // path (or digs a debt if the tuple is underivable).
        const std::int64_t g = 1 + static_cast<std::int64_t>(rng.next_below(
                                       static_cast<std::uint64_t>(
                                           c.p.max_gen)));
        wave.push_back({Tok{random_key(), g}, -1});
      }
    }
    c.waves.push_back(std::move(wave));
  }
  return c;
}

/// Stratified net-count oracle for signed (+1/-1) schedules with rules=1:
/// a tuple (k, g) is present iff its net seed count plus one derivation
/// per out-edge instance from every present (k', g-1) parent is >= 1.
/// Generations strictly increase, so presence is computed stratum by
/// stratum — no fixpoint iteration needed.
inline std::set<Tok> counted_oracle(const CountedCase& c) {
  std::map<Tok, std::int64_t> net;
  for (const Wave& w : c.waves) {
    for (const SignedOp& op : w) net[op.t] += op.sign;
  }
  std::set<Tok> result;
  std::vector<char> prev(static_cast<std::size_t>(c.p.keys), 0);
  for (std::int64_t g = 0; g <= c.p.max_gen; ++g) {
    std::vector<std::int64_t> derived(static_cast<std::size_t>(c.p.keys), 0);
    if (g > 0) {
      for (std::int64_t k = 0; k < c.p.keys; ++k) {
        if (prev[static_cast<std::size_t>(k)] == 0) continue;
        for (const std::int64_t k2 : c.p.adj[static_cast<std::size_t>(k)]) {
          ++derived[static_cast<std::size_t>(k2)];
        }
      }
    }
    std::vector<char> cur(static_cast<std::size_t>(c.p.keys), 0);
    for (std::int64_t k = 0; k < c.p.keys; ++k) {
      std::int64_t count = derived[static_cast<std::size_t>(k)];
      const auto it = net.find(Tok{k, g});
      if (it != net.end()) count += it->second;
      if (count >= 1) {
        cur[static_cast<std::size_t>(k)] = 1;
        result.insert(Tok{k, g});
      }
    }
    prev = std::move(cur);
  }
  return result;
}

/// Applies one signed op through the Engine front door.
inline void apply_op(Engine& eng, Table<Tok>& toks, const SignedOp& op) {
  if (op.sign == kUpsertOp) {
    eng.upsert(toks, op.t);
  } else if (op.sign < 0) {
    eng.retract(toks, op.t);
  } else {
    eng.put(toks, op.t);
  }
}

/// Counted reference 1: one Engine, waves applied with a run() between
/// each (later waves differentiate a live database).  The observed set is
/// the final Gamma scan — presence, not transition history.
inline std::set<Tok> counted_single_fixpoint(const CountedCase& c,
                                             const EngineOptions& opts,
                                             StoreKind store =
                                                 StoreKind::Default,
                                             std::int64_t retain = 0,
                                             bool epoch_per_wave = false) {
  Engine eng(opts);
  TableDecl<Tok> decl = tok_decl(store).counted();
  if (retain > 0) decl.retain(retain);
  auto& toks = eng.table(decl);
  add_rules(eng, toks, c.p, [&toks](RuleCtx& ctx, const Tok& t) {
    toks.put(ctx, t);
  });
  for (const Wave& w : c.waves) {
    if (epoch_per_wave) eng.begin_epoch();
    for (const SignedOp& op : w) apply_op(eng, toks, op);
    eng.run();
  }
  std::set<Tok> out;
  toks.scan([&out](const Tok& t) { out.insert(t); });
  return out;
}

/// Counted references 2 and 3: the sharded engine under either schedule.
/// ALL rule traffic rides the signed mailbox lane (send_signed with the
/// cascade's sign) so exact multiplicities cross shard boundaries; the
/// unsigned set-semantics lane would collapse counts.
inline std::set<Tok> counted_sharded_fixpoint(const CountedCase& c,
                                              int shards,
                                              dist::ShardedMode mode,
                                              bool sequential_engines,
                                              StoreKind store =
                                                  StoreKind::Default,
                                              std::int64_t retain = 0,
                                              bool epoch_per_wave = false,
                                              bool with_pk = false,
                                              bool emit_buffer = true) {
  EngineOptions opts;
  opts.sequential = sequential_engines;
  opts.threads = 2;
  opts.emit_buffer = emit_buffer;
  dist::ShardedOptions sopts;
  sopts.mode = mode;

  std::vector<Table<Tok>*> tables(static_cast<std::size_t>(shards));
  dist::ShardedEngine<Tok> cluster(
      shards, opts, sopts,
      typename dist::ShardedEngine<Tok>::SetupHooks(
          [&c, &tables, shards, store, retain, with_pk](
              int shard, Engine& eng, dist::Sender<Tok>& sender) {
            TableDecl<Tok> decl = tok_decl(store).counted();
            if (retain > 0) decl.retain(retain);
            if (with_pk) decl.primary_key(&Tok::key);
            auto& toks = eng.table(decl);
            tables[static_cast<std::size_t>(shard)] = &toks;
            add_rules(eng, toks, c.p,
                      [&sender, shards](RuleCtx& ctx, const Tok& t) {
                        sender.send_signed(
                            dist::partition_of(t.key, shards), t, ctx.sign());
                      });
            typename dist::ShardedEngine<Tok>::ShardHooks hooks;
            hooks.deliver = [&toks, &eng](const Tok& t) { eng.put(toks, t); };
            hooks.deliver_signed = [&toks, &eng](const Tok& t,
                                                 std::int32_t sign) {
              eng.prepare();
              toks.seed_signed(t, sign);
            };
            return hooks;
          }));

  for (const Wave& w : c.waves) {
    if (epoch_per_wave) cluster.begin_epoch();
    for (const SignedOp& op : w) {
      cluster.seed_signed(dist::partition_of(op.t.key, shards), op.t,
                          op.sign);
    }
    cluster.run();
  }

  std::set<Tok> out;
  for (int s = 0; s < shards; ++s) {
    tables[static_cast<std::size_t>(s)]->scan([&](const Tok& t) {
      EXPECT_EQ(dist::partition_of(t.key, shards), s)
          << "tuple (" << t.key << "," << t.gen << ") on a non-owner shard";
      out.insert(t);
    });
  }
  return out;
}

/// An upsert-heavy schedule over a keyed table (pk = Tok::key, value =
/// Tok::gen): waves of keyed overwrites, retractions of the current row,
/// duplicate inserts and debts — at most one op per key per wave, because
/// two ops racing to the same key in one quiescence interval have no
/// defined winner across schedules.  No derivation rules: a pk table
/// holds one row per key, which a fan-out rule would violate.
inline CountedCase make_upsert_heavy_case(std::uint64_t seed) {
  CountedCase c;
  SplitMix64 rng(seed ^ 0x94d049bb133111ebULL);
  c.p.keys = 4 + static_cast<std::int64_t>(rng.next_below(9));  // 4..12
  c.p.max_gen = 0;
  c.p.adj.resize(static_cast<std::size_t>(c.p.keys));
  c.p.rules = 0;
  // Track the value each key currently holds (-1 = absent) so retraction
  // ops name real rows and multiplicity ops duplicate the live row.
  std::vector<std::int64_t> val(static_cast<std::size_t>(c.p.keys), -1);
  const std::uint64_t nwaves = 3 + rng.next_below(4);  // 3..6
  for (std::uint64_t w = 0; w < nwaves; ++w) {
    Wave wave;
    for (std::int64_t k = 0; k < c.p.keys; ++k) {
      if (rng.next_below(3) == 0) continue;  // key skips this wave
      auto& cur = val[static_cast<std::size_t>(k)];
      const std::uint64_t dice = rng.next_below(10);
      if (cur < 0 || dice < 6) {
        // Keyed overwrite (or first write) to a fresh value.
        const std::int64_t v =
            static_cast<std::int64_t>(rng.next_below(10));
        wave.push_back({Tok{k, v}, kUpsertOp});
        cur = v;
      } else if (dice < 8) {
        wave.push_back({Tok{k, cur}, -1});  // retract the current row
        cur = -1;
      } else if (dice < 9) {
        wave.push_back({Tok{k, cur}, 1});   // duplicate: multiplicity 2
      } else {
        // Debt on a value the key does not hold.
        wave.push_back({Tok{k, cur + 100}, -1});
      }
    }
    c.waves.push_back(std::move(wave));
  }
  return c;
}

/// Upsert reference: one Engine with pk = Tok::key.  Used both as the
/// sequential cross-mode reference and as the parallel subject.
inline std::set<Tok> upsert_single_fixpoint(const CountedCase& c,
                                            const EngineOptions& opts,
                                            StoreKind store =
                                                StoreKind::Default) {
  Engine eng(opts);
  auto& toks = eng.table(tok_decl(store).counted().primary_key(&Tok::key));
  for (const Wave& w : c.waves) {
    for (const SignedOp& op : w) apply_op(eng, toks, op);
    eng.run();
  }
  std::set<Tok> out;
  toks.scan([&out](const Tok& t) { out.insert(t); });
  return out;
}

}  // namespace jstar::difftest
