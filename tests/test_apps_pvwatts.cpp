// Correctness tests for the PvWatts case study: every strategy variant —
// sequential/parallel, noDelta on/off, all three Gamma structures, the
// Disruptor pipeline with every wait strategy and consumer count — must
// produce the same monthly means as a direct scan of the input.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/pvwatts/pvwatts.h"

namespace jstar::apps::pvwatts {
namespace {

constexpr std::int64_t kRecords = 12 * 30 * 24 * 2;  // two synthetic years

const csv::Buffer& input_month_major() {
  static const csv::Buffer buf =
      generate_csv(kRecords, InputOrder::MonthMajor);
  return buf;
}
const csv::Buffer& input_round_robin() {
  static const csv::Buffer buf =
      generate_csv(kRecords, InputOrder::RoundRobin);
  return buf;
}

void expect_same_means(const MonthlyMeans& got, const MonthlyMeans& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [ym, stats] : want) {
    auto it = got.find(ym);
    ASSERT_NE(it, got.end()) << "missing month " << ym;
    EXPECT_EQ(it->second.count(), stats.count()) << "month " << ym;
    EXPECT_NEAR(it->second.mean(), stats.mean(), 1e-9) << "month " << ym;
  }
}

TEST(PvWattsGenerator, RecordCountAndShape) {
  const auto ref = reference_means(input_month_major());
  EXPECT_EQ(ref.size(), 24u);  // two years x 12 months
  std::uint64_t total = 0;
  for (const auto& [ym, s] : ref) total += s.count();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kRecords));
  // Seasonal shape: June (month 6) generates more than December (12).
  EXPECT_GT(ref.at(201206).mean(), ref.at(201212).mean());
}

TEST(PvWattsGenerator, OrderingsContainSameData) {
  const auto a = reference_means(input_month_major());
  const auto b = reference_means(input_round_robin());
  expect_same_means(a, b);
}

TEST(PvWattsGenerator, DeterministicInSeed) {
  const auto a = generate_csv(1000, InputOrder::MonthMajor, 5);
  const auto b = generate_csv(1000, InputOrder::MonthMajor, 5);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::string(a.data(), a.size()), std::string(b.data(), b.size()));
}

TEST(PvWattsBaseline, MatchesReference) {
  const auto result = run_baseline(input_month_major());
  expect_same_means(result.months, reference_means(input_month_major()));
}

struct JStarCase {
  bool sequential;
  int threads;
  bool no_delta;
  GammaKind gamma;
  std::string label;
};

class PvWattsJStar : public ::testing::TestWithParam<JStarCase> {};

TEST_P(PvWattsJStar, MatchesReference) {
  const JStarCase& c = GetParam();
  JStarConfig config;
  config.engine.sequential = c.sequential;
  config.engine.threads = c.threads;
  config.no_delta_pvwatts = c.no_delta;
  config.gamma = c.gamma;
  const auto result = run_jstar(input_month_major(), config);
  expect_same_means(result.months, reference_means(input_month_major()));
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PvWattsJStar,
    ::testing::Values(
        JStarCase{true, 1, true, GammaKind::MonthArray, "seq_noDelta_monthArray"},
        JStarCase{true, 1, false, GammaKind::MonthArray, "seq_delta_monthArray"},
        JStarCase{true, 1, true, GammaKind::Default, "seq_noDelta_tree"},
        JStarCase{true, 1, true, GammaKind::Hash, "seq_noDelta_hash"},
        JStarCase{false, 1, true, GammaKind::MonthArray, "par1_monthArray"},
        JStarCase{false, 4, true, GammaKind::MonthArray, "par4_monthArray"},
        JStarCase{false, 4, false, GammaKind::MonthArray, "par4_delta"},
        JStarCase{false, 4, true, GammaKind::Default, "par4_skiplist"},
        JStarCase{false, 4, true, GammaKind::Hash, "par4_hash"},
        JStarCase{true, 1, true, GammaKind::FlatHash, "seq_noDelta_flatHash"},
        JStarCase{false, 4, true, GammaKind::FlatHash, "par4_flatHash"},
        JStarCase{true, 1, true, GammaKind::Columnar, "seq_noDelta_columnar"},
        JStarCase{false, 4, true, GammaKind::Columnar, "par4_columnar"}),
    [](const auto& info) { return info.param.label; });

TEST(PvWattsJStarMisc, RoundRobinInputSameAnswer) {
  JStarConfig config;
  config.engine.threads = 2;
  const auto result = run_jstar(input_round_robin(), config);
  expect_same_means(result.months, reference_means(input_round_robin()));
}

TEST(PvWattsJStarMisc, PhasedRunReportsBreakdown) {
  JStarConfig config;
  config.engine.sequential = true;
  const auto result = run_jstar_phased(input_month_major(), config);
  expect_same_means(result.months, reference_means(input_month_major()));
  const auto& p = result.phases;
  EXPECT_GT(p.read_parse, 0.0);
  EXPECT_GT(p.gamma_insert, 0.0);
  EXPECT_GT(p.reduce, 0.0);
  // The phases must account for a dominant share of the wall time.
  EXPECT_LE(p.read_parse + p.gamma_insert + p.delta_insert + p.reduce,
            result.seconds * 1.5);
}

struct DisruptorCase {
  int consumers;
  std::size_t ring;
  std::int64_t batch;
  disruptor::WaitStrategy wait;
  std::string label;
};

class PvWattsDisruptor : public ::testing::TestWithParam<DisruptorCase> {};

TEST_P(PvWattsDisruptor, MatchesReference) {
  const DisruptorCase& c = GetParam();
  DisruptorConfig config;
  config.consumers = c.consumers;
  config.ring_size = c.ring;
  config.producer_batch = c.batch;
  config.wait = c.wait;
  const auto result = run_disruptor(input_month_major(), config);
  expect_same_means(result.months, reference_means(input_month_major()));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PvWattsDisruptor,
    ::testing::Values(
        DisruptorCase{12, 1024, 256, disruptor::WaitStrategy::Blocking,
                      "paper_defaults"},
        DisruptorCase{1, 1024, 256, disruptor::WaitStrategy::Blocking,
                      "one_consumer"},
        DisruptorCase{3, 64, 16, disruptor::WaitStrategy::Yielding,
                      "tiny_ring_yield"},
        DisruptorCase{5, 256, 1, disruptor::WaitStrategy::Blocking,
                      "unbatched"},
        DisruptorCase{12, 1024, 256, disruptor::WaitStrategy::BusySpin,
                      "busyspin"}),
    [](const auto& info) { return info.param.label; });

TEST(PvWattsDisruptorMisc, SortedInputSameAnswer) {
  DisruptorConfig config;
  const auto result = run_disruptor(input_round_robin(), config);
  expect_same_means(result.months, reference_means(input_round_robin()));
}

class PvWattsDisruptorMp : public ::testing::TestWithParam<int> {};

TEST_P(PvWattsDisruptorMp, RegionReadersMatchReference) {
  DisruptorConfig config;
  config.consumers = 4;
  const auto result =
      run_disruptor_mp(input_month_major(), config, GetParam());
  expect_same_means(result.months, reference_means(input_month_major()));
}

TEST_P(PvWattsDisruptorMp, SortedInputMatchesReference) {
  DisruptorConfig config;
  config.ring_size = 128;
  config.producer_batch = 16;
  const auto result =
      run_disruptor_mp(input_round_robin(), config, GetParam());
  expect_same_means(result.months, reference_means(input_round_robin()));
}

INSTANTIATE_TEST_SUITE_P(Producers, PvWattsDisruptorMp,
                         ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           // Append, not operator+: GCC 12 -Wrestrict
                           // false positive on char* + string&&.
                           std::string n = "p";
                           n += std::to_string(info.param);
                           return n;
                         });

// §6.2 incremental-reducer optimisation: same answer, zero stored tuples.
TEST(PvWattsIncremental, SequentialMatchesReference) {
  JStarConfig config;
  config.engine.sequential = true;
  const auto result = run_jstar_incremental(input_month_major(), config);
  expect_same_means(result.months, reference_means(input_month_major()));
}

TEST(PvWattsIncremental, ParallelRegionsMatchReference) {
  JStarConfig config;
  config.engine.threads = 4;
  config.csv_regions = 4;
  const auto result = run_jstar_incremental(input_round_robin(), config);
  expect_same_means(result.months, reference_means(input_round_robin()));
}

// The paper-style string baseline and the byte-slice baseline must agree.
TEST(PvWattsBaselines, StringAndSliceBaselinesAgree) {
  const auto slow = run_baseline(input_month_major());
  const auto fast = run_baseline_fast_csv(input_month_major());
  expect_same_means(slow.months, fast.months);
  expect_same_means(slow.months, reference_means(input_month_major()));
}

}  // namespace
}  // namespace jstar::apps::pvwatts
