// Tests for the query-planner layer (core/query_plan.h).
//
// Two halves:
//  * engine-free planner unit tests — plan_query() against a hand-built
//    PlannerCatalog, pinning the access-path preference order (always-empty
//    > pk probe > widest hash index > longest ordered-range prefix >
//    residual scan) and its guards (unordered stores, -noGamma);
//  * the randomized differential sweep (tests/differential.h) for the
//    index ∧ retain(N) interaction: across sequential / BSP / async shard
//    schedules driven through the streaming epoch loop, routed queries
//    must stay tuple-for-tuple identical to full scans — including after
//    epoch retirement has swept Gamma and the secondary indexes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/query_plan.h"
#include "differential.h"
#include "stream/streaming.h"

namespace jstar {
namespace {

using difftest::Program;
using difftest::Tok;

// --- planner unit tests ------------------------------------------------------

const void* key_tag() { return query::field_tag(&Tok::key); }
const void* gen_tag() { return query::field_tag(&Tok::gen); }

TEST(QueryPlanner, ContradictionBeatsEverything) {
  PlannerCatalog cat;
  cat.pk_tag = key_tag();
  cat.hash_indexes.push_back({{key_tag()}});
  const auto p = query::eq(&Tok::key, 1) && query::eq(&Tok::key, 2);
  EXPECT_EQ(plan_query(cat, p).path, AccessPath::AlwaysEmpty);
}

TEST(QueryPlanner, PkBeatsHashIndexBeatsRange) {
  PlannerCatalog cat;
  cat.pk_tag = key_tag();
  cat.hash_indexes.push_back({{key_tag()}});
  cat.range_indexes.push_back({{key_tag()}});
  cat.store_ordered = true;
  const auto p = query::eq(&Tok::key, 7);
  EXPECT_EQ(plan_query(cat, p).path, AccessPath::PkProbe);

  cat.pk_tag = nullptr;
  EXPECT_EQ(plan_query(cat, p).path, AccessPath::IndexProbe);

  cat.hash_indexes.clear();
  EXPECT_EQ(plan_query(cat, p).path, AccessPath::RangeScan);

  cat.range_indexes.clear();
  EXPECT_EQ(plan_query(cat, p).path, AccessPath::FullScan);
}

TEST(QueryPlanner, CompositeIndexBeatsSingleWhenBothCovered) {
  PlannerCatalog cat;
  cat.hash_indexes.push_back({{key_tag()}});
  cat.hash_indexes.push_back({{key_tag(), gen_tag()}});
  const auto p = query::eq(&Tok::key, 3) && query::eq(&Tok::gen, 4);
  const QueryPlan plan = plan_query(cat, p);
  EXPECT_EQ(plan.path, AccessPath::IndexProbe);
  EXPECT_EQ(plan.slot, 1);
  ASSERT_EQ(plan.values.size(), 2u);
  EXPECT_EQ(plan.values[0], 3);
  EXPECT_EQ(plan.values[1], 4);
  // Only key pinned: the composite cannot serve, the single one can.
  const QueryPlan single = plan_query(cat, query::eq(&Tok::key, 3));
  EXPECT_EQ(single.path, AccessPath::IndexProbe);
  EXPECT_EQ(single.slot, 0);
}

TEST(QueryPlanner, RangePrefixCombinesEqAndInterval) {
  PlannerCatalog cat;
  cat.range_indexes.push_back({{key_tag(), gen_tag()}});
  cat.store_ordered = true;
  const auto p = query::eq(&Tok::key, 5) && query::between(&Tok::gen, 1, 4);
  const QueryPlan plan = plan_query(cat, p);
  EXPECT_EQ(plan.path, AccessPath::RangeScan);
  ASSERT_EQ(plan.values.size(), 1u);
  EXPECT_EQ(plan.values[0], 5);
  EXPECT_TRUE(plan.has_range);
  EXPECT_EQ(plan.lo, 1);
  EXPECT_EQ(plan.hi, 3);
}

TEST(QueryPlanner, UnorderedStoreDisablesRangePlans) {
  PlannerCatalog cat;
  cat.range_indexes.push_back({{key_tag()}});
  cat.store_ordered = false;
  EXPECT_EQ(plan_query(cat, query::eq(&Tok::key, 1)).path,
            AccessPath::FullScan);
}

TEST(QueryPlanner, NoGammaDegradesToVacuousScan) {
  PlannerCatalog cat;
  cat.pk_tag = key_tag();
  cat.hash_indexes.push_back({{key_tag()}});
  cat.no_gamma = true;
  EXPECT_EQ(plan_query(cat, query::eq(&Tok::key, 1)).path,
            AccessPath::FullScan);
}

// --- the index ∧ retain(N) differential sweep --------------------------------

/// Per-seed configuration drawn from the seed itself, so the sweep walks
/// the whole (schedule × shards × engine × indexes × retention) matrix.
struct SweepConfig {
  int shards = 1;
  dist::ShardedMode mode = dist::ShardedMode::Bsp;
  bool sequential_engines = true;
  int index_kind = 0;       // 0 = hash, 1 = range, 2 = hash+range+composite
  std::int64_t retain = 0;  // 0 = keep everything
  std::int64_t slice = 2;   // stream epoch size (small => many epochs)
};

SweepConfig config_for(std::uint64_t seed) {
  SplitMix64 rng(seed ^ 0x9a7a11e7u);
  SweepConfig c;
  c.shards = 1 + static_cast<int>(rng.next_below(3));  // 1..3
  c.mode = rng.next_below(2) == 0 ? dist::ShardedMode::Bsp
                                  : dist::ShardedMode::Async;
  c.sequential_engines = rng.next_below(2) == 0;
  c.index_kind = static_cast<int>(rng.next_below(3));
  c.retain = rng.next_below(2) == 0 ? 0 : 1 + static_cast<std::int64_t>(
                                              rng.next_below(3));  // 1..3
  c.slice = 1 + static_cast<std::int64_t>(rng.next_below(3));      // 1..3
  return c;
}

/// Declares the sweep's Tok table on one shard engine: the optional
/// retain(N) window plus the seed-selected index set.  Range prefixes ride
/// Tok's lexicographic order (key is the leading field).
Table<Tok>& declare_tok_table(Engine& eng, const SweepConfig& cfg) {
  TableDecl<Tok> decl = difftest::tok_decl();
  if (cfg.retain > 0) decl.retain(cfg.retain);
  auto& toks = eng.table(std::move(decl));
  if (cfg.index_kind == 0 || cfg.index_kind == 2) {
    toks.add_index(&Tok::key);
  }
  if (cfg.index_kind == 2) {
    toks.add_index(&Tok::key, &Tok::gen);
  }
  if (cfg.index_kind == 1 || cfg.index_kind == 2) {
    toks.add_range_index(
        [](const std::vector<std::int64_t>& v) {
          return v.size() == 1 ? Tok{v[0], INT64_MIN} : Tok{v[0], v[1]};
        },
        &Tok::key, &Tok::gen);
  }
  return toks;
}

/// Compares every routed query shape against the residual-scan truth on
/// one shard's table.  Returns false (with the failed shape recorded in
/// *why) when any shape diverges.
bool routed_equals_scan(Table<Tok>& toks, const Program& p,
                        std::string* why) {
  const auto check = [&](const query::Pred<Tok>& routed,
                         const std::string& label) {
    std::vector<Tok> via_plan, via_scan;
    toks.query(routed, [&](const Tok& t) { via_plan.push_back(t); });
    toks.scan([&](const Tok& t) {
      if (routed(t)) via_scan.push_back(t);
    });
    std::sort(via_plan.begin(), via_plan.end());
    std::sort(via_scan.begin(), via_scan.end());
    if (via_plan != via_scan) {
      *why = label + ": routed " + std::to_string(via_plan.size()) +
             " tuples, scan " + std::to_string(via_scan.size());
      return false;
    }
    return true;
  };
  for (std::int64_t k = 0; k < p.keys; ++k) {
    if (!check(query::eq(&Tok::key, k), "eq(key)")) return false;
    if (!check(query::eq(&Tok::key, k) && query::ge(&Tok::gen, 1),
               "eq(key) && ge(gen)")) {
      return false;
    }
    if (!check(query::eq(&Tok::key, k) && query::eq(&Tok::gen, 2),
               "eq(key) && eq(gen)")) {
      return false;
    }
  }
  if (!check(query::between(&Tok::key, std::int64_t{0}, p.keys / 2 + 1),
             "between(key)")) {
    return false;
  }
  return true;
}

TEST(QueryPlanDifferential, RoutedEqualsScanAcrossModesAndRetention) {
  const std::uint64_t seeds = difftest::seed_count(200);
  const std::uint64_t base = difftest::seed_base();
  std::int64_t swept_runs = 0;        // runs where retention actually fired
  std::int64_t routed_queries = 0;    // non-scan access paths taken
  for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
    const Program p = difftest::random_program(seed);
    const SweepConfig cfg = config_for(seed);
    const std::string repro =
        difftest::repro(seed, "test_query_plan",
                        "QueryPlanDifferential.*");

    EngineOptions eopts;
    eopts.sequential = cfg.sequential_engines;
    eopts.threads = 2;
    dist::ShardedOptions dopts;
    dopts.mode = cfg.mode;
    stream::StreamOptions sopts;
    sopts.ring_capacity = 64;
    sopts.max_epoch_tuples = cfg.slice;

    std::vector<Table<Tok>*> tables(static_cast<std::size_t>(cfg.shards));
    using Stream = stream::ShardedStreamingEngine<Tok>;
    Stream stream(
        sopts, cfg.shards, eopts, dopts,
        [&p, &cfg, &tables](int shard, Engine& eng,
                            dist::Sender<Tok>& sender,
                            const Stream::Emit&) {
          auto& toks = declare_tok_table(eng, cfg);
          tables[static_cast<std::size_t>(shard)] = &toks;
          difftest::add_rules(
              eng, toks, p,
              [&sender, shards = cfg.shards](RuleCtx&, const Tok& t) {
                sender.send(dist::partition_of(t.key, shards), t);
              });
          return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
        },
        [shards = cfg.shards](const Tok& t) {
          return dist::partition_of(t.key, shards);
        });

    // Publish the program's seed tuples one by one: with slice sizes of
    // 1..3 this opens several retain(N) epochs per run, so retirement
    // happens *between* derivation waves, not just at the end.
    for (const Tok& s : p.seeds) stream.publish(s);
    (void)stream.drain();

    // Routed and scanned results must agree on whatever each shard
    // currently stores — with and without windows having retired tuples.
    for (int s = 0; s < cfg.shards; ++s) {
      std::string why;
      ASSERT_TRUE(routed_equals_scan(
          *tables[static_cast<std::size_t>(s)], p, &why))
          << why << " on shard " << s << ", " << repro;
    }

    // Without retention the cluster must still compute the exact batch
    // fixpoint (the streaming/sharded schedules cannot lose tuples).
    if (cfg.retain == 0) {
      std::set<Tok> got;
      for (int s = 0; s < cfg.shards; ++s) {
        tables[static_cast<std::size_t>(s)]->scan(
            [&](const Tok& t) { got.insert(t); });
      }
      ASSERT_EQ(got, difftest::oracle_fixpoint(p)) << repro;
    }

    const dist::ClusterQueryStats qs = stream.cluster().query_stats();
    routed_queries +=
        qs.index_lookups + qs.range_scans + qs.pk_probes + qs.empty_plans;
    if (qs.gamma_retired > 0) {
      ++swept_runs;
      // Every stored tuple is indexed, so gamma_retired > 0 with a hash
      // index declared implies the sweep removed index entries too.
      if (cfg.index_kind != 1) {
        ASSERT_GT(qs.index_retired, 0) << repro;
      }
      const stream::StreamReport rep = stream.report();
      ASSERT_EQ(rep.gamma_retired, qs.gamma_retired) << repro;
      ASSERT_EQ(rep.index_retired, qs.index_retired) << repro;
    }
    stream.stop();
  }
  // The sweep must have actually exercised the interesting paths.
  EXPECT_GT(routed_queries, 0);
  EXPECT_GT(swept_runs, 0);
}

}  // namespace
}  // namespace jstar
