// Unit tests for the columnar (SoA) Gamma substrate
// (core/column_store.h): insert/dedup across the staged and merged
// regions, tuple-ordered scans and seeks with staged visibility, chunked
// reconstitution, the vectorized kernel interface (count / select /
// gather / argmin) pinned against scans, engine-epoch windowing with
// per-column compaction, the coverage round-trip check, and the
// Table-level columns() preset / planner kernel routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/column_store.h"
#include "core/engine.h"
#include "core/simd.h"
#include "reduce/reducers.h"
#include "util/rng.h"

namespace jstar {
namespace {

struct Cell {
  std::int64_t a, b;
  auto operator<=>(const Cell&) const = default;
};
struct CellHash {
  std::size_t operator()(const Cell& c) const { return hash_fields(c.a, c.b); }
};

using CellStore = ColumnStore<Cell, CellHash, std::int64_t Cell::*,
                              std::int64_t Cell::*>;

CellStore make_cell_store() {
  return CellStore(CellHash{}, &Cell::a, &Cell::b);
}

// --- GammaStore contract -----------------------------------------------------

TEST(ColumnStore, InsertContainsAndSortedScanMatchTreeSet) {
  CellStore store = make_cell_store();
  SplitMix64 rng(11);
  std::set<Cell> reference;
  for (int i = 0; i < 1000; ++i) {
    const Cell c{static_cast<std::int64_t>(rng.next_below(200)),
                 static_cast<std::int64_t>(rng.next_below(50))};
    EXPECT_EQ(store.insert(c), reference.insert(c).second);
  }
  EXPECT_EQ(store.size(), reference.size());
  for (const Cell& c : reference) EXPECT_TRUE(store.contains(c));
  EXPECT_FALSE(store.contains(Cell{-1, -1}));
  std::vector<Cell> scanned;
  store.scan([&](const Cell& c) { scanned.push_back(c); });
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  EXPECT_EQ(scanned.size(), reference.size());
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), reference.begin()));
  EXPECT_GT(store.merges(), 0);
  EXPECT_TRUE(store.ordered());
  EXPECT_TRUE(store.chunked());
  EXPECT_EQ(store.describe(),
            std::string("columnar(2,") + simd::to_string(simd::active_level()) +
                ")");
}

TEST(ColumnStore, DuplicateRejectionAcrossStagedAndMergedRegions) {
  CellStore store = make_cell_store();
  for (std::int64_t i = 0; i < 500; ++i) EXPECT_TRUE(store.insert({i, i}));
  ASSERT_GT(store.merges(), 0);
  EXPECT_FALSE(store.insert({1, 1}));  // duplicate of a merged row
  EXPECT_TRUE(store.insert({1000, 0}));
  ASSERT_GT(store.staged(), 0u);
  EXPECT_FALSE(store.insert({1000, 0}));  // duplicate while staged
  std::int64_t n = 0;
  store.scan([&](const Cell&) { ++n; });
  EXPECT_EQ(store.staged(), 0u);
  EXPECT_FALSE(store.insert({1000, 0}));
  EXPECT_EQ(n, 501);
  EXPECT_EQ(store.size(), 501u);
}

TEST(ColumnStore, RangeAndFromSeeksMatchTreeSetAndSeeStagedRows) {
  CellStore flat = make_cell_store();
  TreeSetStore<Cell> tree;
  SplitMix64 rng(23);
  for (int i = 0; i < 800; ++i) {
    const Cell c{static_cast<std::int64_t>(rng.next_below(100)),
                 static_cast<std::int64_t>(rng.next_below(100))};
    flat.insert(c);
    tree.insert(c);
  }
  for (std::int64_t lo = 0; lo < 100; lo += 7) {
    const Cell clo{lo, 0};
    const Cell chi{lo + 13, 0};
    std::vector<Cell> a, b;
    flat.scan_range(clo, chi, [&](const Cell& c) { a.push_back(c); });
    tree.scan_range(clo, chi, [&](const Cell& c) { b.push_back(c); });
    EXPECT_EQ(a, b) << "range [" << lo << ", " << lo + 13 << ")";
    a.clear();
    b.clear();
    flat.scan_from(clo, [&](const Cell& c) { a.push_back(c); });
    tree.scan_from(clo, [&](const Cell& c) { b.push_back(c); });
    EXPECT_EQ(a, b) << "from " << lo;
  }

  // Staged-but-unmerged rows must be visible to ordered seeks (same
  // regression shape as the flat store's).
  CellStore fresh = make_cell_store();
  for (std::int64_t i = 0; i < 10; ++i) ASSERT_TRUE(fresh.insert({i, 0}));
  ASSERT_EQ(fresh.merges(), 0);
  std::vector<Cell> ranged;
  fresh.scan_range({3, 0}, {7, 0},
                   [&](const Cell& c) { ranged.push_back(c); });
  EXPECT_EQ(ranged, (std::vector<Cell>{{3, 0}, {4, 0}, {5, 0}, {6, 0}}));
}

TEST(ColumnStore, ScanChunksReconstitutionEqualsScan) {
  CellStore store = make_cell_store();
  SplitMix64 rng(5);
  for (int i = 0; i < 3000; ++i) {
    store.insert({static_cast<std::int64_t>(rng.next_below(1000)),
                  static_cast<std::int64_t>(rng.next_below(1000))});
  }
  std::vector<Cell> via_scan, via_chunks;
  store.scan([&](const Cell& c) { via_scan.push_back(c); });
  std::size_t chunks = 0;
  store.scan_chunks([&](const Cell* data, std::size_t n) {
    ++chunks;
    for (std::size_t i = 0; i < n; ++i) via_chunks.push_back(data[i]);
  });
  EXPECT_EQ(via_chunks, via_scan);
  EXPECT_GT(chunks, 1u);  // > 1024 rows → several spans
}

// --- kernels pinned against scans -------------------------------------------

TEST(ColumnStore, KernelsMatchScanTruth) {
  CellStore store = make_cell_store();
  SplitMix64 rng(97);
  for (int i = 0; i < 2000; ++i) {
    store.insert({static_cast<std::int64_t>(rng.next_below(40)),
                  static_cast<std::int64_t>(rng.next_below(300))});
  }
  using Bound = ColumnarOps<Cell>::Bound;
  const void* tag_a = query::field_tag(&Cell::a);
  const void* tag_b = query::field_tag(&Cell::b);
  EXPECT_TRUE(store.has_column(tag_a));
  EXPECT_TRUE(store.has_column(tag_b));
  ASSERT_EQ(store.column_tags().size(), 2u);

  const std::vector<Bound> bounds{{tag_a, 5, 5}, {tag_b, 40, 200}};
  const auto match = [](const Cell& c) {
    return c.a == 5 && c.b >= 40 && c.b <= 200;
  };

  // Scan truth.
  std::vector<Cell> expect;
  std::int64_t expect_sum_b = 0;
  store.scan([&](const Cell& c) {
    if (match(c)) {
      expect.push_back(c);
      expect_sum_b += c.b;
    }
  });
  ASSERT_FALSE(expect.empty());

  // kernel_count (multi-bound mask path, and single-bound fused path).
  const auto kc = store.kernel_count(bounds);
  EXPECT_EQ(kc.selected, static_cast<std::int64_t>(expect.size()));
  EXPECT_EQ(kc.rows, static_cast<std::int64_t>(store.size()));
  std::int64_t single = 0;
  store.scan([&](const Cell& c) { single += c.a == 5 ? 1 : 0; });
  EXPECT_EQ(store.kernel_count({{tag_a, 5, 5}}).selected, single);

  // kernel_select reconstitutes exactly the matching rows, in order.
  std::vector<Cell> selected;
  const auto ksel = store.kernel_select(bounds,
                                        [&](const Cell* d, std::size_t n) {
                                          selected.insert(selected.end(), d,
                                                          d + n);
                                        });
  EXPECT_EQ(selected, expect);
  EXPECT_EQ(ksel.selected, static_cast<std::int64_t>(expect.size()));

  // kernel_gather_i64 streams the b column of matching rows.
  std::int64_t sum_b = 0;
  ColumnarOps<Cell>::KernelStats kg;
  ASSERT_TRUE(store.kernel_gather_i64(
      bounds, tag_b,
      [&](const std::int64_t* v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) sum_b += v[i];
      },
      &kg));
  EXPECT_EQ(sum_b, expect_sum_b);
  EXPECT_EQ(kg.selected, static_cast<std::int64_t>(expect.size()));
  EXPECT_FALSE(store.kernel_gather_i64(
      bounds, &store, [](const std::int64_t*, std::size_t) {}, &kg));

  // kernel_gather_f64 agrees (integral column widened to double).
  double sum_b_f = 0;
  ASSERT_TRUE(store.kernel_gather_f64(
      bounds, tag_b,
      [&](const double* v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) sum_b_f += v[i];
      },
      &kg));
  EXPECT_EQ(sum_b_f, static_cast<double>(expect_sum_b));

  // kernel_min_row: first minimal row in store order.
  std::optional<Cell> best;
  for (const Cell& c : expect) {
    if (!best || c.b < best->b) best = c;
  }
  std::optional<Cell> got;
  ASSERT_TRUE(store.kernel_min_row(bounds, tag_b, &got, &kg));
  EXPECT_EQ(got, best);

  // An empty selection yields an empty argmin, and zero counts.
  ASSERT_TRUE(store.kernel_min_row({{tag_a, -7, -7}}, tag_b, &got, &kg));
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(store.kernel_count({{tag_a, -7, -7}}).selected, 0);
}

// Mixed column types: narrow integrals compare in int64 space, doubles
// gather via the f64 path and refuse the i64 path.
struct Mixed {
  std::int32_t k;
  std::int16_t g;
  double w;
  auto operator<=>(const Mixed&) const = default;
};
struct MixedHash {
  std::size_t operator()(const Mixed& m) const {
    return hash_fields(m.k, m.g, static_cast<std::int64_t>(m.w * 8));
  }
};

TEST(ColumnStore, MixedWidthColumnsAndFloatingGather) {
  ColumnStore<Mixed, MixedHash, std::int32_t Mixed::*, std::int16_t Mixed::*,
              double Mixed::*>
      store(MixedHash{}, &Mixed::k, &Mixed::g, &Mixed::w);
  for (std::int32_t i = 0; i < 300; ++i) {
    store.insert({i, static_cast<std::int16_t>(i % 5), i * 0.5});
  }
  const void* tag_g = query::field_tag(&Mixed::g);
  const void* tag_w = query::field_tag(&Mixed::w);
  EXPECT_EQ(store.kernel_count({{tag_g, 2, 2}}).selected, 60);

  // The double column refuses an int64 gather (lossy)...
  ColumnarOps<Mixed>::KernelStats ks;
  EXPECT_FALSE(store.kernel_gather_i64(
      {{tag_g, 2, 2}}, tag_w, [](const std::int64_t*, std::size_t) {}, &ks));
  // ...but serves the f64 gather exactly.
  double sum = 0, expect_sum = 0;
  store.scan([&](const Mixed& m) {
    if (m.g == 2) expect_sum += m.w;
  });
  ASSERT_TRUE(store.kernel_gather_f64(
      {{tag_g, 2, 2}}, tag_w,
      [&](const double* v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) sum += v[i];
      },
      &ks));
  EXPECT_EQ(sum, expect_sum);
}

// --- coverage check ----------------------------------------------------------

TEST(ColumnStore, MissingColumnFailsTheCoverageRoundTrip) {
  // Only column a declared: a tuple with a nonzero b cannot reconstitute.
  ColumnStore<Cell, CellHash, std::int64_t Cell::*> partial(CellHash{},
                                                            &Cell::a);
  EXPECT_THROW(partial.insert({1, 7}), CheckError);
  // Tuples whose undeclared fields are value-initialised slip through the
  // round trip (nothing to lose) — the check is a guard, not a proof.
  EXPECT_TRUE(partial.insert({2, 0}));
}

// --- engine-epoch windowing (retain(N)) --------------------------------------

TEST(ColumnStore, WindowedRetireCompactsColumnsAndNotifies) {
  std::atomic<std::int64_t> clock{0};
  CellStore store(&clock, CellHash{}, &Cell::a, &Cell::b);
  std::vector<Cell> retired;
  store.set_retire_listener([&](const Cell& c) { retired.push_back(c); });

  for (std::int64_t e = 0; e < 4; ++e) {
    clock.store(e);
    for (std::int64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE(store.insert({e, i}));
    }
  }
  EXPECT_EQ(store.size(), 400u);
  EXPECT_FALSE(store.insert({0, 5}));  // re-arrival stays a duplicate

  EXPECT_EQ(store.retire_up_to(1), 200);
  EXPECT_EQ(store.size(), 200u);
  EXPECT_EQ(retired.size(), 200u);
  for (const Cell& c : retired) EXPECT_LE(c.a, 1);
  EXPECT_FALSE(store.contains({0, 5}));
  EXPECT_TRUE(store.contains({3, 5}));
  // Survivors stay sorted; kernels see only the live rows.
  std::vector<Cell> scanned;
  store.scan([&](const Cell& c) { scanned.push_back(c); });
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  const void* tag_a = query::field_tag(&Cell::a);
  EXPECT_EQ(store.kernel_count({{tag_a, 0, 9}}).rows, 200);
  EXPECT_EQ(store.kernel_count({{tag_a, 2, 3}}).selected, 200);
  EXPECT_EQ(store.retired(), 200);

  // Straggler at or behind the ratchet: dropped but reported fresh.
  clock.store(1);
  EXPECT_TRUE(store.insert({1, 999}));
  EXPECT_FALSE(store.contains({1, 999}));
  EXPECT_EQ(store.retired(), 201);
  EXPECT_EQ(store.describe(),
            std::string("columnar(2,retain,") +
                simd::to_string(simd::active_level()) + ")");
}

// --- Table-level integration -------------------------------------------------

struct Row {
  std::int64_t id, group, score;
  auto operator<=>(const Row&) const = default;
};

TableDecl<Row> row_decl() {
  return TableDecl<Row>("Row")
      .orderby_lit("R")
      .hash([](const Row& r) { return hash_fields(r.id, r.group, r.score); });
}

TEST(ColumnarTable, PresetInstallsColumnStoreAndPlannerCompilesKernels) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table =
      eng.table(row_decl().columns(&Row::id, &Row::group, &Row::score));
  for (std::int64_t i = 0; i < 500; ++i) {
    eng.put(table, Row{i, i % 10, (i * 7) % 101});
  }
  eng.run();
  EXPECT_EQ(table.store_describe(),
            std::string("columnar(3,") + simd::to_string(simd::active_level()) +
                ")");
  EXPECT_TRUE(table.store()->ordered());

  // Exact predicates on stored columns compile to the kernel refinement…
  const auto pred =
      query::eq(&Row::group, 3) && query::ge(&Row::score, std::int64_t{50});
  const QueryPlan plan = table.plan_for(pred);
  EXPECT_EQ(plan.path, AccessPath::FullScan);
  EXPECT_TRUE(plan.columnar);
  EXPECT_EQ(plan.describe(), "full-scan(columnar-kernel)");
  // …while inexact ones (lambdas, disjunctions) stay plain scans.
  EXPECT_FALSE(table.plan_for(query::lambda<Row>([](const Row& r) {
                       return r.group == 3;
                     })).columnar);
  EXPECT_FALSE(
      table.plan_for(query::eq(&Row::group, 3) || query::eq(&Row::group, 4))
          .columnar);

  // Kernel results equal the scan truth for count / query / fold / min_by.
  std::vector<Row> expect;
  std::int64_t expect_sum = 0;
  table.scan([&](const Row& r) {
    if (pred(r)) {
      expect.push_back(r);
      expect_sum += r.score;
    }
  });
  ASSERT_FALSE(expect.empty());
  EXPECT_EQ(table.count_if(pred), static_cast<std::int64_t>(expect.size()));
  std::vector<Row> routed;
  table.query(pred, [&](const Row& r) { routed.push_back(r); });
  EXPECT_EQ(routed, expect);  // kernel select emits in store order
  EXPECT_EQ(table.fold(pred, &Row::score, reduce::Sum<std::int64_t>{})
                .value(),
            expect_sum);
  std::optional<Row> best;
  for (const Row& r : expect) {
    if (!best || r.score < best->score) best = r;
  }
  EXPECT_EQ(table.min_by(pred, &Row::score), best);

  // The kernels were counted, with sane selectivity numbers.
  EXPECT_GE(table.stats().columnar_kernels.load(), 4);
  EXPECT_GT(table.stats().columnar_rows.load(), 0);
  EXPECT_GT(table.stats().columnar_selected.load(), 0);
}

TEST(ColumnarTable, ProbeAndRangePlansStillBeatKernels) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table =
      eng.table(row_decl().columns(&Row::id, &Row::group, &Row::score));
  table.add_index(&Row::group);
  table.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return Row{v[0], INT64_MIN, INT64_MIN};
      },
      &Row::id);
  for (std::int64_t i = 0; i < 300; ++i) {
    eng.put(table, Row{i, i % 10, i});
  }
  eng.run();
  // An indexed equality routes through the index, not the kernel.
  EXPECT_EQ(table.plan_for(query::eq(&Row::group, 3)).path,
            AccessPath::IndexProbe);
  // An ordered-prefix interval routes through the range seek (the store
  // is tuple-ordered, so id — the leading field — serves seeks).
  const auto range_pred =
      query::between(&Row::id, std::int64_t{50}, std::int64_t{60});
  EXPECT_EQ(table.plan_for(range_pred).path, AccessPath::RangeScan);
  std::vector<Row> via_range;
  table.query(range_pred, [&](const Row& r) { via_range.push_back(r); });
  EXPECT_EQ(via_range.size(), 10u);
  // Routed paths never bump the kernel counters.
  EXPECT_EQ(table.stats().columnar_kernels.load(), 0);
}

TEST(ColumnarTable, RetainWindowRetiresAndSweepsIndexes) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table = eng.table(
      row_decl().columns(&Row::id, &Row::group, &Row::score).retain(2));
  table.add_index(&Row::group);
  eng.prepare();
  EXPECT_EQ(table.store_describe(),
            std::string("columnar(3,retain,") +
                simd::to_string(simd::active_level()) + ")");

  for (std::int64_t e = 0; e < 5; ++e) {
    if (e > 0) eng.begin_epoch();
    for (std::int64_t i = 0; i < 20; ++i) {
      eng.put(table, Row{e * 100 + i, e, i});
    }
    eng.run();
  }
  EXPECT_EQ(table.gamma_size(), 40u);
  EXPECT_EQ(table.stats().gamma_retired.load(), 60);
  EXPECT_EQ(table.stats().index_retired.load(), 60);
  for (std::int64_t g = 0; g < 5; ++g) {
    const auto pred = query::eq(&Row::group, g);
    std::set<Row> routed, scanned;
    table.query(pred, [&](const Row& r) { routed.insert(r); });
    table.scan([&](const Row& r) {
      if (pred(r)) scanned.insert(r);
    });
    EXPECT_EQ(routed, scanned) << "group " << g;
    EXPECT_EQ(routed.size(), g >= 3 ? 20u : 0u) << "group " << g;
  }
}

// columns() + retain_epochs stays rejected, like the flat presets.
TEST(ColumnarTable, ColumnsWithRetainEpochsIsRejected) {
  Engine eng(EngineOptions{.sequential = true});
  auto& table = eng.table(row_decl()
                              .columns(&Row::id, &Row::group, &Row::score)
                              .retain_epochs(&Row::group, 2));
  (void)table;
  EXPECT_THROW(eng.prepare(), CheckError);
}

}  // namespace
}  // namespace jstar
