// Property-based tests: randomized inputs checked against brute-force
// oracles or reference implementations.
//
//   * Fourier–Motzkin soundness vs a grid oracle (rational and integer),
//   * SkipListMap vs std::map under random operation sequences,
//   * Delta-tree pop order and batch merging under random keys,
//   * rule-exception propagation (failure injection),
//   * random rule programs: parallel output == sequential output.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "concurrent/skip_list_map.h"
#include "core/delta_tree.h"
#include "core/striped_delta_tree.h"
#include "core/engine.h"
#include "smt/fourier_motzkin.h"

namespace jstar {
namespace {

// ---------------------------------------------------------------------------
// Fourier–Motzkin vs grid oracle
// ---------------------------------------------------------------------------

using smt::Constraint;
using smt::FourierMotzkin;
using smt::LinExpr;
using smt::Rat;
using smt::SatResult;
using smt::VarId;
using smt::VarPool;

struct RandomSystem {
  VarPool pool;
  std::vector<VarId> vars;
  std::vector<Constraint> constraints;
};

RandomSystem random_system(std::mt19937_64& rng, int num_vars,
                           int num_constraints) {
  RandomSystem sys;
  for (int v = 0; v < num_vars; ++v) {
    sys.vars.push_back(sys.pool.fresh("x" + std::to_string(v)));
  }
  std::uniform_int_distribution<int> coeff(-3, 3);
  std::uniform_int_distribution<int> rhs(-5, 5);
  std::uniform_int_distribution<int> strict(0, 1);
  for (int c = 0; c < num_constraints; ++c) {
    LinExpr e(rhs(rng));
    for (const VarId v : sys.vars) {
      e = e + LinExpr::var(v, Rat(coeff(rng)));
    }
    sys.constraints.push_back(Constraint{e, strict(rng) == 1});
  }
  return sys;
}

bool satisfied(const std::vector<Constraint>& cs,
               const std::map<VarId, Rat>& assignment) {
  for (const Constraint& c : cs) {
    const Rat v = c.expr.eval(assignment);
    if (c.strict ? !(v < Rat(0)) : v.is_positive()) return false;
  }
  return true;
}

TEST(FMProperty, UnsatMeansNoGridPointSatisfies) {
  std::mt19937_64 rng(11);
  int unsat_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    RandomSystem sys = random_system(rng, 2, 4);
    FourierMotzkin fm;
    const auto out = fm.check(sys.constraints);
    if (out.result == SatResult::Sat) {
      // The extracted model must satisfy every constraint.
      EXPECT_TRUE(satisfied(sys.constraints, out.model)) << "trial " << trial;
      continue;
    }
    if (out.result != SatResult::Unsat) continue;
    ++unsat_seen;
    // Soundness: no point of a (rational) grid may satisfy the system.
    for (int a = -12; a <= 12; ++a) {
      for (int b = -12; b <= 12; ++b) {
        const std::map<VarId, Rat> pt{{sys.vars[0], Rat(a, 2)},
                                      {sys.vars[1], Rat(b, 2)}};
        ASSERT_FALSE(satisfied(sys.constraints, pt))
            << "trial " << trial << " at (" << a << "/2, " << b << "/2)";
      }
    }
  }
  EXPECT_GT(unsat_seen, 5);  // the distribution must actually produce both
}

TEST(FMProperty, IntegerCheckMatchesBoxedBruteForce) {
  std::mt19937_64 rng(23);
  constexpr int kBox = 4;
  int disagreements = 0;
  for (int trial = 0; trial < 150; ++trial) {
    RandomSystem sys = random_system(rng, 2, 3);
    // Close the box so brute force and branch-and-bound see the same
    // bounded domain.
    for (const VarId v : sys.vars) {
      sys.constraints.push_back(smt::ge(LinExpr::var(v), LinExpr(-kBox)));
      sys.constraints.push_back(smt::le(LinExpr::var(v), LinExpr(kBox)));
    }
    bool brute_sat = false;
    for (int a = -kBox; a <= kBox && !brute_sat; ++a) {
      for (int b = -kBox; b <= kBox && !brute_sat; ++b) {
        brute_sat = satisfied(sys.constraints,
                              {{sys.vars[0], Rat(a)}, {sys.vars[1], Rat(b)}});
      }
    }
    FourierMotzkin fm;
    const auto out = fm.check_integer(sys.constraints);
    if (out.result == SatResult::Unknown) continue;  // allowed, rare
    const bool fm_sat = out.result == SatResult::Sat;
    if (fm_sat != brute_sat) ++disagreements;
    EXPECT_EQ(fm_sat, brute_sat) << "trial " << trial;
    if (fm_sat) {
      EXPECT_TRUE(satisfied(sys.constraints, out.model));
      for (const auto& [v, r] : out.model) {
        (void)v;
        EXPECT_TRUE(r.is_integer());
      }
    }
  }
  EXPECT_EQ(disagreements, 0);
}

// ---------------------------------------------------------------------------
// SkipListMap vs std::map under random operation sequences
// ---------------------------------------------------------------------------

TEST(SkipListProperty, RandomOpsMatchStdMap) {
  std::mt19937_64 rng(31);
  concurrent::SkipListMap<std::int64_t, std::int64_t> sl;
  std::map<std::int64_t, std::int64_t> ref;
  std::uniform_int_distribution<int> op(0, 9);
  std::uniform_int_distribution<std::int64_t> key(0, 63);
  for (int step = 0; step < 20000; ++step) {
    const std::int64_t k = key(rng);
    switch (op(rng)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert
        const bool inserted = sl.insert(k, step);
        const bool ref_inserted = ref.emplace(k, step).second;
        ASSERT_EQ(inserted, ref_inserted) << "step " << step;
        break;
      }
      case 4:
      case 5: {  // erase
        ASSERT_EQ(sl.erase(k), ref.erase(k) > 0) << "step " << step;
        break;
      }
      case 6:
      case 7: {  // contains
        ASSERT_EQ(sl.contains(k), ref.count(k) > 0) << "step " << step;
        break;
      }
      case 8: {  // pop_min
        std::int64_t mk = 0, mv = 0;
        const bool got = sl.pop_min(mk, mv);
        ASSERT_EQ(got, !ref.empty()) << "step " << step;
        if (got) {
          ASSERT_EQ(mk, ref.begin()->first);
          ASSERT_EQ(mv, ref.begin()->second);
          ref.erase(ref.begin());
        }
        break;
      }
      case 9: {  // size
        ASSERT_EQ(sl.size(), ref.size()) << "step " << step;
        break;
      }
    }
  }
  // Final traversal equivalence.
  std::vector<std::pair<std::int64_t, std::int64_t>> got;
  sl.for_each([&](const std::int64_t& k, const std::int64_t& v) {
    got.emplace_back(k, v);
  });
  std::vector<std::pair<std::int64_t, std::int64_t>> expect(ref.begin(),
                                                            ref.end());
  EXPECT_EQ(got, expect);
}

// ---------------------------------------------------------------------------
// Delta-tree pop order under random keys
// ---------------------------------------------------------------------------

DeltaKey make_key(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> len(1, 4);
  std::uniform_int_distribution<std::int64_t> field(-3, 3);
  DeltaKey k;
  const int n = len(rng);
  for (int i = 0; i < n; ++i) k.push_back(field(rng));
  return k;
}

TEST(DeltaTreeProperty, PopMinDrainsInStrictKeyOrder) {
  for (const int backend : {0, 1, 2, 3}) {
    std::mt19937_64 rng(41);
    std::unique_ptr<DeltaTree> tree;
    switch (backend) {
      case 0: tree = std::make_unique<MapDeltaTree>(); break;
      case 1: tree = std::make_unique<SkipDeltaTree>(); break;
      case 2: tree = std::make_unique<StripedDeltaTree>(1); break;
      default: tree = std::make_unique<StripedDeltaTree>(7); break;
    }
    std::set<DeltaKey, DeltaKeyLess> expect;
    for (int i = 0; i < 3000; ++i) {
      const DeltaKey k = make_key(rng);
      tree->get_or_insert(k);
      expect.insert(k);
    }
    EXPECT_EQ(tree->batch_count(), expect.size());
    DeltaKey prev;
    bool first = true;
    std::size_t drained = 0;
    DeltaKey key;
    std::unique_ptr<BatchNode> node;
    while (tree->pop_min(key, node)) {
      if (!first) {
        EXPECT_TRUE((prev <=> key) == std::strong_ordering::less)
            << to_string(prev) << " !< " << to_string(key);
      }
      prev = key;
      first = false;
      ++drained;
      EXPECT_TRUE(expect.count(key)) << to_string(key);
    }
    EXPECT_EQ(drained, expect.size());
    EXPECT_TRUE(tree->empty());
  }
}

// ---------------------------------------------------------------------------
// Failure injection: exceptions from rule bodies
// ---------------------------------------------------------------------------

struct Item {
  std::int64_t id;
  auto operator<=>(const Item&) const = default;
};

TableDecl<Item> item_decl() {
  return TableDecl<Item>("Item")
      .orderby_lit("T")
      .orderby_seq("id", &Item::id)
      .hash([](const Item& i) { return hash_fields(i.id); });
}

TEST(FailureInjection, RuleExceptionPropagatesSequential) {
  Engine eng(EngineOptions{.sequential = true});
  auto& items = eng.table(item_decl());
  eng.rule(items, "boom", [&](RuleCtx&, const Item& i) {
    if (i.id == 3) throw std::runtime_error("rule failure");
  });
  for (int i = 0; i < 6; ++i) eng.put(items, Item{i});
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(FailureInjection, RuleExceptionPropagatesParallel) {
  EngineOptions opts;
  opts.threads = 4;
  Engine eng(opts);
  auto& items = eng.table(TableDecl<Item>("Item")
                              .orderby_lit("T")
                              .orderby_par("id")  // one wide batch
                              .orderby_seq("one", [](const Item&) {
                                return std::int64_t{1};
                              })
                              .hash([](const Item& i) {
                                return hash_fields(i.id);
                              }));
  eng.rule(items, "boom", [&](RuleCtx&, const Item& i) {
    if (i.id % 7 == 3) throw std::runtime_error("rule failure");
  });
  for (int i = 0; i < 50; ++i) eng.put(items, Item{i});
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(FailureInjection, EngineRejectsZeroThreads) {
  EngineOptions opts;
  opts.threads = 0;
  EXPECT_THROW(Engine{opts}, std::logic_error);
}

// ---------------------------------------------------------------------------
// Random rule programs: strategy independence (§1.3) on generated DAGs
// ---------------------------------------------------------------------------

struct Datum {
  std::int64_t stage, value;
  auto operator<=>(const Datum&) const = default;
};

/// Builds a random 4-stage pipeline where each stage applies a randomly
/// chosen arithmetic map and runs it; returns the sorted final database.
std::vector<Datum> run_random_pipeline(std::uint64_t seed, bool sequential,
                                       int threads) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> mul(1, 5);
  std::uniform_int_distribution<std::int64_t> add(-7, 7);
  std::uniform_int_distribution<std::int64_t> mod(11, 31);
  struct StageFn {
    std::int64_t m, a, q;
  };
  std::vector<StageFn> fns;
  for (int s = 0; s < 4; ++s) fns.push_back({mul(rng), add(rng), mod(rng)});

  EngineOptions opts;
  opts.sequential = sequential;
  opts.threads = threads;
  Engine eng(opts);
  auto& data = eng.table(TableDecl<Datum>("Datum")
                             .orderby_lit("D")
                             .orderby_seq("stage", &Datum::stage)
                             .orderby_par("value")
                             .hash([](const Datum& d) {
                               return hash_fields(d.stage, d.value);
                             }));
  eng.rule(data, "advance", [&, fns](RuleCtx& ctx, const Datum& d) {
    if (d.stage >= static_cast<std::int64_t>(fns.size())) return;
    const StageFn& f = fns[static_cast<std::size_t>(d.stage)];
    // Two derivations per tuple: heavy collisions via the modulus.
    data.put(ctx, Datum{d.stage + 1, (d.value * f.m + f.a) % f.q});
    data.put(ctx, Datum{d.stage + 1, (d.value + f.a) % f.q});
  });
  for (std::int64_t v = 0; v < 40; ++v) eng.put(data, Datum{0, v});
  eng.run();
  std::vector<Datum> out;
  data.scan([&](const Datum& d) { out.push_back(d); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RandomProgramProperty, ParallelMatchesSequentialAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto reference = run_random_pipeline(seed, true, 1);
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(run_random_pipeline(seed, false, 2), reference)
        << "seed " << seed;
    EXPECT_EQ(run_random_pipeline(seed, false, 4), reference)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace jstar
