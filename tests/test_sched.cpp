// Tests for the fork/join work-stealing pool — the substrate under the
// all-minimums parallelisation strategy (§5).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sched/fork_join_pool.h"
#include "sched/work_stealing_deque.h"

namespace jstar::sched {
namespace {

TEST(WorkStealingDeque, LifoForOwner) {
  WorkStealingDeque<int> dq;
  dq.push(1);
  dq.push(2);
  dq.push(3);
  int out = 0;
  ASSERT_TRUE(dq.pop(out));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(dq.pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(dq.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(dq.pop(out));
}

TEST(WorkStealingDeque, FifoForThief) {
  WorkStealingDeque<int> dq;
  dq.push(1);
  dq.push(2);
  int out = 0;
  ASSERT_TRUE(dq.steal(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(dq.steal(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(dq.steal(out));
}

TEST(WorkStealingDeque, GrowsBeyondInitialCapacity) {
  WorkStealingDeque<int> dq(4);
  for (int i = 0; i < 1000; ++i) dq.push(i);
  EXPECT_EQ(dq.size_approx(), 1000);
  int out;
  for (int i = 999; i >= 0; --i) {
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(WorkStealingDeque, ConcurrentStealersGetDisjointItems) {
  WorkStealingDeque<int> dq;
  constexpr int kItems = 20000;
  for (int i = 0; i < kItems; ++i) dq.push(i);
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> taken{0};
  auto thief = [&] {
    int v;
    while (taken.load() < kItems) {
      if (dq.steal(v)) {
        sum.fetch_add(v);
        taken.fetch_add(1);
      }
    }
  };
  std::thread t1(thief), t2(thief), t3(thief);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kItems) * (kItems - 1) / 2);
}

TEST(ForkJoinPool, InvokeAllRunsEverything) {
  ForkJoinPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back([&] { count.fetch_add(1); });
  pool.invoke_all(std::move(tasks));
  EXPECT_EQ(count.load(), 100);
}

TEST(ForkJoinPool, SingleTaskRunsInline) {
  ForkJoinPool pool(2);
  bool ran = false;
  pool.invoke_all({[&] { ran = true; }});
  EXPECT_TRUE(ran);
}

TEST(ForkJoinPool, ForEachIndexCoversRangeExactlyOnce) {
  ForkJoinPool pool(4);
  constexpr std::int64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each_index(kN, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ForkJoinPool, ForEachIndexEmptyAndTiny) {
  ForkJoinPool pool(3);
  int calls = 0;
  pool.for_each_index(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.for_each_index(1, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ForkJoinPool, NestedParallelismDoesNotDeadlock) {
  ForkJoinPool pool(2);
  std::atomic<int> leaf{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back([&] {
      // A rule body spawning its own parallel loop (§5.2's
      // embarrassingly-parallel for loops within rules).
      ForkJoinPool::current_pool()->for_each_index(
          16, [&](std::int64_t) { leaf.fetch_add(1); });
    });
  }
  pool.invoke_all(std::move(outer));
  EXPECT_EQ(leaf.load(), 8 * 16);
}

TEST(ForkJoinPool, ExceptionPropagatesToCaller) {
  ForkJoinPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  tasks.push_back([] {});
  EXPECT_THROW(pool.invoke_all(std::move(tasks)), std::runtime_error);
}

TEST(ForkJoinPool, SubmitAndWaitIdle) {
  ForkJoinPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ForkJoinPool, SubmitExceptionRethrownAtWaitIdle) {
  ForkJoinPool pool(2);
  pool.submit([] { throw std::runtime_error("fire-and-forget boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The slot is cleared by the rethrow, and later batches are unaffected.
  pool.wait_idle();
  std::vector<std::function<void()>> tasks;
  std::atomic<int> ran{0};
  tasks.push_back([&] { ran.fetch_add(1); });
  pool.invoke_all(std::move(tasks));
  EXPECT_EQ(ran.load(), 1);
}

TEST(ForkJoinPool, ConcurrentBatchesKeepExceptionsSeparate) {
  // Two threads run invoke_all batches on the SAME pool (as sharded
  // engines sharing one pool do): the batch that throws must be the one
  // that rethrows, never its neighbour.
  ForkJoinPool pool(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::atomic<bool> clean_ok{false};
    std::thread thrower([&pool] {
      std::vector<std::function<void()>> tasks;
      tasks.push_back([] { throw std::runtime_error("batch boom"); });
      EXPECT_THROW(pool.invoke_all(std::move(tasks)), std::runtime_error);
    });
    std::thread clean([&pool, &clean_ok] {
      std::vector<std::function<void()>> tasks;
      std::atomic<int> n{0};
      for (int i = 0; i < 8; ++i) tasks.push_back([&n] { n.fetch_add(1); });
      pool.invoke_all(std::move(tasks));
      clean_ok.store(n.load() == 8);
    });
    thrower.join();
    clean.join();
    EXPECT_TRUE(clean_ok.load()) << "trial " << trial;
  }
}

TEST(ForkJoinPool, CurrentPoolVisibleFromWorkers) {
  ForkJoinPool pool(2);
  std::atomic<int> ok{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&] {
      if (ForkJoinPool::current_pool() == &pool &&
          ForkJoinPool::current_worker_index() >= 0) {
        ok.fetch_add(1);
      }
    });
  }
  pool.invoke_all(std::move(tasks));
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(ForkJoinPool::current_pool(), nullptr);
}

TEST(ForkJoinPool, ParallelSumMatchesSequential) {
  ForkJoinPool pool(4);
  constexpr std::int64_t kN = 1 << 18;
  std::vector<std::int64_t> data(kN);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<std::int64_t> sum{0};
  pool.for_each_index(kN, [&](std::int64_t i) {
    sum.fetch_add(data[static_cast<std::size_t>(i)],
                  std::memory_order_relaxed);
  }, /*grain=*/1024);
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ForkJoinPool, ManySmallBatches) {
  ForkJoinPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 4; ++i) tasks.push_back([&] { total.fetch_add(1); });
    pool.invoke_all(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 800);
}

class PoolSizes : public ::testing::TestWithParam<int> {};

TEST_P(PoolSizes, ForEachIsCorrectForAnyPoolSize) {
  ForkJoinPool pool(GetParam());
  std::atomic<std::int64_t> sum{0};
  pool.for_each_index(10000, [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, PoolSizes, ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace jstar::sched
