// Unit tests for the streaming execution subsystem (src/stream/streaming.h)
// and the retain(N) windowed Gamma GC it drives: epoch lifecycle, Gamma
// persistence across epochs (the incremental-fixpoint property), bounded
// memory under long streams, the poll/drain consumer API, per-epoch stats,
// and shutdown semantics.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dist/sharded.h"
#include "stream/streaming.h"
#include "util/small_vec.h"

namespace jstar::stream {
namespace {

struct Event {
  std::int64_t id;
  auto operator<=>(const Event&) const = default;
};

TableDecl<Event> event_decl() {
  return TableDecl<Event>("Event")
      .orderby_lit("E")
      .orderby_seq("id", &Event::id)
      .hash([](const Event& e) { return hash_fields(e.id); });
}

// --- Engine epoch clock (no stream attached) --------------------------------

TEST(EngineEpochs, BeginEpochAdvancesClockAndRunStaysIncremental) {
  EngineOptions opts;
  opts.sequential = true;
  Engine eng(opts);
  auto& events = eng.table(event_decl());
  EXPECT_EQ(eng.epoch(), 0);
  EXPECT_EQ(eng.begin_epoch(), 1);
  eng.put(events, Event{1});
  eng.run();
  EXPECT_EQ(eng.begin_epoch(), 2);
  eng.put(events, Event{2});
  eng.run();
  // Gamma survives the epoch boundary: run() is incremental.
  EXPECT_EQ(events.gamma_size(), 2u);
  EXPECT_EQ(eng.epoch(), 2);
}

TEST(EngineEpochs, RetainWindowRetiresOldEpochsAtTheBoundary) {
  EngineOptions opts;
  opts.sequential = true;
  Engine eng(opts);
  auto& events = eng.table(event_decl().retain(2));
  std::int64_t inserted = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    eng.begin_epoch();
    for (int i = 0; i < 3; ++i) {
      eng.put(events, Event{inserted++});
    }
    eng.run();
    // At most the current + previous epoch's tuples stay live.
    EXPECT_LE(events.gamma_size(), 6u) << "epoch " << epoch;
  }
  EXPECT_EQ(events.gamma_size(), 6u);
  EXPECT_EQ(events.stats().gamma_retired.load(), 3 * 10 - 6);
  // The live window is the most recent tuples, not the oldest — including
  // the previous (still-live) epoch's, which window-wide contains() finds.
  EXPECT_TRUE(events.contains(Event{inserted - 1}));
  EXPECT_TRUE(events.contains(Event{inserted - 4}));
  EXPECT_FALSE(events.contains(Event{0}));
}

TEST(EngineEpochs, ReArrivalWithinTheWindowIsASetSemanticsDuplicate) {
  EngineOptions opts;
  opts.sequential = true;
  Engine eng(opts);
  auto& events = eng.table(event_decl().retain(3));
  eng.begin_epoch();
  eng.put(events, Event{7});
  eng.run();
  eng.begin_epoch();
  eng.put(events, Event{7});  // still live from epoch 1: must dedup
  eng.run();
  EXPECT_EQ(events.gamma_size(), 1u);
  EXPECT_EQ(events.stats().gamma_dups.load(), 1);
  EXPECT_EQ(events.stats().fires.load(), 0);  // no rules, and no re-fire
}

TEST(EngineEpochs, RetainWindowRetiresEvenWithoutNewInserts) {
  // A quiet table must still shed its history as epochs pass — this is
  // what EpochWindowStore::retire_up_to adds over insert-driven GC.
  EngineOptions opts;
  opts.sequential = true;
  Engine eng(opts);
  auto& events = eng.table(event_decl().retain(1));
  eng.begin_epoch();
  eng.put(events, Event{1});
  eng.run();
  EXPECT_EQ(events.gamma_size(), 1u);
  eng.begin_epoch();  // no inserts this epoch
  eng.begin_epoch();
  EXPECT_EQ(events.gamma_size(), 0u);
  EXPECT_EQ(events.stats().gamma_retired.load(), 1);
}

// --- StreamingEngine over one Engine ----------------------------------------

TEST(StreamingEngineTest, GammaPersistsAcrossEpochsSoLateJoinsWork) {
  // Event B arriving epochs after event A must still join against A: the
  // stream is incremental, not a sequence of fresh databases.
  StreamOptions sopts;
  sopts.max_epoch_tuples = 1;  // force one event per epoch
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event, std::int64_t>;
  Stream stream(sopts, eopts, [](Engine& eng, const Stream::Emit& emit) {
    auto& events = eng.table(event_decl());
    eng.rule(events, "pair_with_past",
             [&events, emit](RuleCtx&, const Event& e) {
               // Emit id1+id2 for every stored earlier partner.
               events.scan([&](const Event& other) {
                 if (other.id < e.id) emit(e.id + other.id);
               });
             });
    return [&events, &eng](const Event& e) { eng.put(events, e); };
  });
  stream.publish(Event{1});
  stream.publish(Event{2});
  stream.publish(Event{3});
  const std::vector<std::int64_t> out = stream.drain();
  const std::set<std::int64_t> got(out.begin(), out.end());
  EXPECT_EQ(got, (std::set<std::int64_t>{3, 4, 5}));  // 1+2, 1+3, 2+3
  const StreamReport r = stream.report();
  EXPECT_EQ(r.ingested, 3);
  EXPECT_EQ(r.epochs, 3);  // max_epoch_tuples = 1
  EXPECT_EQ(r.max_epoch_ingested, 1);
  stream.stop();
}

TEST(StreamingEngineTest, RulesObserveTheEpochClock) {
  StreamOptions sopts;
  sopts.max_epoch_tuples = 1;
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event, std::int64_t>;
  Stream stream(sopts, eopts, [](Engine& eng, const Stream::Emit& emit) {
    auto& events = eng.table(event_decl());
    eng.rule(events, "tag_epoch", [emit](RuleCtx& ctx, const Event&) {
      emit(ctx.epoch());
    });
    return [&events, &eng](const Event& e) { eng.put(events, e); };
  });
  for (int i = 0; i < 4; ++i) stream.publish(Event{i});
  const std::vector<std::int64_t> epochs = stream.drain();
  ASSERT_EQ(epochs.size(), 4u);
  // One event per epoch: the observed clock values are 4 distinct,
  // increasing epochs.
  const std::set<std::int64_t> distinct(epochs.begin(), epochs.end());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_GE(*distinct.begin(), 1);
  stream.stop();
}

TEST(StreamingEngineTest, RetainKeepsMemoryBoundedUnderALongStream) {
  StreamOptions sopts;
  sopts.max_epoch_tuples = 8;
  sopts.ring_capacity = 64;  // smaller than the stream: backpressure path
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Table<Event>* table = nullptr;
  Stream stream(sopts, eopts,
                [&table](Engine& eng, const Stream::Emit&) {
                  auto& events = eng.table(event_decl().retain(2));
                  table = &events;
                  return [&events, &eng](const Event& e) {
                    eng.put(events, e);
                  };
                });
  const std::int64_t total = 500;
  for (std::int64_t i = 0; i < total; ++i) stream.publish(Event{i});
  (void)stream.drain();
  // At most 2 epochs x 8 tuples stay live out of 500.
  ASSERT_NE(table, nullptr);
  EXPECT_LE(table->gamma_size(), 16u);
  const StreamReport r = stream.report();
  EXPECT_EQ(r.ingested, total);
  EXPECT_GE(r.epochs, total / 8);
  EXPECT_EQ(table->stats().gamma_retired.load() +
                static_cast<std::int64_t>(table->gamma_size()),
            total);
  stream.stop();
}

TEST(StreamingEngineTest, PollEpochsDrainsThePerEpochLog) {
  StreamOptions sopts;
  sopts.max_epoch_tuples = 2;
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Stream stream(sopts, eopts, [](Engine& eng, const Stream::Emit&) {
    auto& events = eng.table(event_decl());
    return [&events, &eng](const Event& e) { eng.put(events, e); };
  });
  for (int i = 0; i < 6; ++i) stream.publish(Event{i});
  (void)stream.drain();
  const StreamReport r = stream.report();
  const std::vector<EpochStats> log = stream.poll_epochs();
  EXPECT_EQ(static_cast<std::int64_t>(log.size()), r.epochs);
  std::int64_t ingested = 0;
  std::int64_t last_epoch = 0;
  for (const EpochStats& e : log) {
    EXPECT_GT(e.epoch, last_epoch);  // strictly advancing clock
    last_epoch = e.epoch;
    EXPECT_LE(e.ingested, 2);
    ingested += e.ingested;
  }
  EXPECT_EQ(ingested, 6);
  EXPECT_TRUE(stream.poll_epochs().empty());  // drained
  stream.stop();
}

TEST(StreamingEngineTest, StopIsIdempotentAndProcessesEverythingPublished) {
  StreamOptions sopts;
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Table<Event>* table = nullptr;
  Stream stream(sopts, eopts,
                [&table](Engine& eng, const Stream::Emit&) {
                  auto& events = eng.table(event_decl());
                  table = &events;
                  return [&events, &eng](const Event& e) {
                    eng.put(events, e);
                  };
                });
  for (int i = 0; i < 10; ++i) stream.publish(Event{i});
  stream.stop();  // poison flows after the 10 events: all processed
  stream.stop();  // idempotent
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->gamma_size(), 10u);
  EXPECT_FALSE(stream.running());
}

TEST(StreamingEngineTest, ConcurrentProducersAllLand) {
  StreamOptions sopts;
  sopts.ring_capacity = 32;  // force backpressure under 4 producers
  sopts.max_epoch_tuples = 16;
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Table<Event>* table = nullptr;
  Stream stream(sopts, eopts,
                [&table](Engine& eng, const Stream::Emit&) {
                  auto& events = eng.table(event_decl());
                  table = &events;
                  return [&events, &eng](const Event& e) {
                    eng.put(events, e);
                  };
                });
  constexpr int kProducers = 4;
  constexpr std::int64_t kPer = 200;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&stream, t] {
      for (std::int64_t i = 0; i < kPer; ++i) {
        stream.publish(Event{t * kPer + i});
      }
    });
  }
  for (auto& th : producers) th.join();
  (void)stream.drain();
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->gamma_size(),
            static_cast<std::size_t>(kProducers * kPer));
  EXPECT_EQ(stream.report().ingested, kProducers * kPer);
  stream.stop();
}

TEST(StreamingEngineTest, AThrowingRuleSurfacesAtDrain) {
  StreamOptions sopts;
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Stream stream(sopts, eopts, [](Engine& eng, const Stream::Emit&) {
    auto& events = eng.table(event_decl());
    eng.rule(events, "boom", [](RuleCtx&, const Event& e) {
      if (e.id == 3) throw std::runtime_error("poisoned event 3");
    });
    return [&events, &eng](const Event& e) { eng.put(events, e); };
  });
  for (int i = 0; i < 5; ++i) stream.publish(Event{i});
  EXPECT_THROW((void)stream.drain(), std::runtime_error);
  EXPECT_TRUE(stream.failed());
  stream.stop();  // never throws: destructor-safe
}

TEST(StreamingEngineTest, FailureUnblocksProducersAndStopNeverHangs) {
  // After a rule failure the worker keeps committing the ring (discarding
  // tuples), so producers blocked on a full ring and stop()'s poison pill
  // still make progress — no deadlock on teardown.
  StreamOptions sopts;
  sopts.ring_capacity = 8;  // tiny: the producer WILL fill it
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Stream stream(sopts, eopts, [](Engine& eng, const Stream::Emit&) {
    auto& events = eng.table(event_decl());
    eng.rule(events, "boom", [](RuleCtx&, const Event&) {
      throw std::runtime_error("dead on arrival");
    });
    return [&events, &eng](const Event& e) { eng.put(events, e); };
  });
  std::thread producer([&stream] {
    for (int i = 0; i < 200; ++i) stream.publish(Event{i});
  });
  producer.join();  // would hang forever without the discard path
  EXPECT_THROW((void)stream.drain(), std::runtime_error);
  stream.stop();  // would also hang on the full ring without it
  EXPECT_TRUE(stream.failed());
}

TEST(StreamingEngineTest, StopRacingAFailingEpochDoesNotHang) {
  // The poison pill can land in the same slice as the tuple whose rule
  // throws; the worker must not then wait for a second pill.
  StreamOptions sopts;
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Stream stream(sopts, eopts, [](Engine& eng, const Stream::Emit&) {
    auto& events = eng.table(event_decl());
    eng.rule(events, "boom", [](RuleCtx&, const Event&) {
      throw std::runtime_error("boom");
    });
    return [&events, &eng](const Event& e) { eng.put(events, e); };
  });
  for (int i = 0; i < 5; ++i) stream.publish(Event{i});
  stream.stop();  // no drain() first: pill may share the failing slice
  EXPECT_TRUE(stream.failed());
}

TEST(StreamingEngineTest, StopDoesNotAdvanceRetainWindows) {
  // The shutdown poison pill must not open an epoch of its own: data from
  // the last real epoch stays queryable after stop(), even under
  // retain(1).
  StreamOptions sopts;
  EngineOptions eopts;
  eopts.sequential = true;
  using Stream = StreamingEngine<Event>;
  Table<Event>* table = nullptr;
  Stream stream(sopts, eopts,
                [&table](Engine& eng, const Stream::Emit&) {
                  auto& events = eng.table(event_decl().retain(1));
                  table = &events;
                  return [&events, &eng](const Event& e) {
                    eng.put(events, e);
                  };
                });
  stream.publish(Event{1});
  stream.publish(Event{2});
  (void)stream.drain();
  stream.stop();
  // Event{2} arrived in the last real epoch (whether or not Event{1}
  // shared it); a poison-opened epoch would have retired it.
  ASSERT_NE(table, nullptr);
  EXPECT_GE(table->gamma_size(), 1u);
  EXPECT_TRUE(table->contains(Event{2}));
}

// --- ShardedStreamingEngine -------------------------------------------------

TEST(ShardedStreamingTest, RetainWindowsAdvanceInLockstepAcrossShards) {
  StreamOptions sopts;
  sopts.max_epoch_tuples = 4;
  EngineOptions eopts;
  eopts.sequential = true;
  dist::ShardedOptions dopts;
  dopts.mode = dist::ShardedMode::Bsp;
  using Stream = ShardedStreamingEngine<Event>;
  constexpr int kShards = 4;
  std::vector<Table<Event>*> tables(kShards, nullptr);
  Stream stream(
      sopts, kShards, eopts, dopts,
      [&tables](int shard, Engine& eng, dist::Sender<Event>&,
                const Stream::Emit&) {
        auto& events = eng.table(event_decl().retain(2));
        tables[static_cast<std::size_t>(shard)] = &events;
        return [&events, &eng](const Event& e) { eng.put(events, e); };
      },
      [](const Event& e) { return dist::partition_of(e.id, kShards); });
  const std::int64_t total = 400;
  for (std::int64_t i = 0; i < total; ++i) stream.publish(Event{i});
  (void)stream.drain();
  std::size_t live = 0;
  std::int64_t retired = 0;
  for (Table<Event>* t : tables) {
    ASSERT_NE(t, nullptr);
    live += t->gamma_size();
    retired += t->stats().gamma_retired.load();
  }
  // Only the last 2 epochs' tuples (<= 8 stream-wide) stay live.
  EXPECT_LE(live, 8u);
  EXPECT_EQ(retired + static_cast<std::int64_t>(live), total);
  // All shard engines share the same epoch clock.
  for (int s = 1; s < kShards; ++s) {
    EXPECT_EQ(stream.engine(s).epoch(), stream.engine(0).epoch());
  }
  stream.stop();
}

TEST(ShardedStreamingTest, CrossShardDerivationWorksUnderAsyncEpochs) {
  // Every ingested event derives a token on the *next* shard (mod), so
  // each epoch's fixpoint exercises cross-shard mail under the async
  // schedule with a shared pool.
  StreamOptions sopts;
  sopts.max_epoch_tuples = 8;
  EngineOptions eopts;
  eopts.sequential = true;
  dist::ShardedOptions dopts;
  dopts.mode = dist::ShardedMode::Async;
  using Stream = ShardedStreamingEngine<Event, std::int64_t>;
  constexpr int kShards = 3;
  Stream stream(
      sopts, kShards, eopts, dopts,
      [](int /*shard*/, Engine& eng, dist::Sender<Event>& sender,
         const Stream::Emit& emit) {
        auto& events = eng.table(event_decl());
        eng.rule(events, "hop",
                 [&sender, emit](RuleCtx&, const Event& e) {
                   if (e.id >= 1000) {
                     emit(e.id);  // a hopped token arrived
                     return;
                   }
                   sender.send(dist::partition_of(e.id + 1000, kShards),
                               Event{e.id + 1000});
                 });
        return [&events, &eng](const Event& e) { eng.put(events, e); };
      },
      [](const Event& e) { return dist::partition_of(e.id, kShards); });
  const std::int64_t total = 50;
  for (std::int64_t i = 0; i < total; ++i) stream.publish(Event{i});
  const std::vector<std::int64_t> hopped = stream.drain();
  EXPECT_EQ(static_cast<std::int64_t>(hopped.size()), total);
  const StreamReport r = stream.report();
  EXPECT_EQ(r.ingested, total);
  EXPECT_GT(r.messages, 0);  // hops crossed shard boundaries
  stream.stop();
}

}  // namespace
}  // namespace jstar::stream
