// Direct tests for OrderResolver (the `order` declarations of §3–§4) and
// for extra fork/join pool edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "core/orderby.h"
#include "sched/fork_join_pool.h"

namespace jstar {
namespace {

// ---------------------------------------------------------------------------
// OrderResolver
// ---------------------------------------------------------------------------

TEST(OrderResolver, ChainRespectsDeclaredOrder) {
  OrderResolver r;
  r.declare_chain({"Req", "PvWatts", "SumMonth"});  // Fig 4's order
  r.freeze();
  EXPECT_LT(r.rank_of("Req"), r.rank_of("PvWatts"));
  EXPECT_LT(r.rank_of("PvWatts"), r.rank_of("SumMonth"));
}

TEST(OrderResolver, TwoChainsMergeIntoOnePartialOrder) {
  OrderResolver r;
  // Fig 5: order Vertex < Edge < Int;  order Estimate < Done.
  r.declare_chain({"Vertex", "Edge", "Int"});
  r.declare_chain({"Estimate", "Done"});
  r.freeze();
  EXPECT_LT(r.rank_of("Vertex"), r.rank_of("Edge"));
  EXPECT_LT(r.rank_of("Edge"), r.rank_of("Int"));
  EXPECT_LT(r.rank_of("Estimate"), r.rank_of("Done"));
  // All ranks distinct (a linear extension).
  std::set<std::int64_t> ranks;
  for (const std::string& n : r.names()) ranks.insert(r.rank_of(n));
  EXPECT_EQ(ranks.size(), r.names().size());
}

TEST(OrderResolver, DiamondPartialOrder) {
  OrderResolver r;
  r.declare_chain({"A", "B", "D"});
  r.declare_chain({"A", "C", "D"});
  r.freeze();
  EXPECT_LT(r.rank_of("A"), r.rank_of("B"));
  EXPECT_LT(r.rank_of("A"), r.rank_of("C"));
  EXPECT_LT(r.rank_of("B"), r.rank_of("D"));
  EXPECT_LT(r.rank_of("C"), r.rank_of("D"));
}

TEST(OrderResolver, CycleThrowsOnFreeze) {
  OrderResolver r;
  r.declare_chain({"A", "B"});
  r.declare_chain({"B", "C"});
  r.declare_chain({"C", "A"});
  EXPECT_THROW(r.freeze(), std::logic_error);
}

TEST(OrderResolver, SelfLoopThrows) {
  OrderResolver r;
  r.declare_chain({"A", "A"});
  EXPECT_THROW(r.freeze(), std::logic_error);
}

TEST(OrderResolver, DeterministicAcrossRepeats) {
  auto build = [] {
    OrderResolver r;
    r.literal("Z");
    r.declare_chain({"M", "N"});
    r.literal("Q");
    r.freeze();
    return std::vector<std::int64_t>{r.rank_of("Z"), r.rank_of("M"),
                                     r.rank_of("N"), r.rank_of("Q")};
  };
  const auto first = build();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(build(), first);
}

TEST(OrderResolver, FreezeIsIdempotentAndLateDeclarationsRejected) {
  OrderResolver r;
  r.declare_chain({"A", "B"});
  r.freeze();
  r.freeze();  // no-op
  EXPECT_THROW(r.declare_chain({"C", "D"}), std::logic_error);
  EXPECT_THROW(r.literal("New"), std::logic_error);
  EXPECT_EQ(r.literal("A"), 0);  // existing lookups still fine
}

TEST(OrderResolver, UnknownLiteralThrows) {
  OrderResolver r;
  r.freeze();
  EXPECT_THROW(r.rank_of("Ghost"), std::logic_error);
}

TEST(OrderResolver, RanksOnRandomDagsAreValidTopologicalOrders) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    OrderResolver r;
    constexpr int kN = 12;
    std::vector<std::pair<int, int>> edges;
    // Random DAG: edges only from lower to higher index (acyclic by
    // construction), then registered under shuffled names.
    std::vector<std::string> names;
    // Built by append rather than operator+ to sidestep the GCC 12
    // -Wrestrict false positive on char* + string&& (PR 105651).
    for (int i = 0; i < kN; ++i) {
      std::string n = "L";
      n += std::to_string(i);
      names.push_back(std::move(n));
    }
    std::uniform_int_distribution<int> pick(0, kN - 1);
    for (int e = 0; e < 18; ++e) {
      int a = pick(rng), b = pick(rng);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      edges.emplace_back(a, b);
      r.declare_chain({names[static_cast<std::size_t>(a)],
                       names[static_cast<std::size_t>(b)]});
    }
    r.freeze();
    for (const auto& [a, b] : edges) {
      EXPECT_LT(r.rank_of(names[static_cast<std::size_t>(a)]),
                r.rank_of(names[static_cast<std::size_t>(b)]))
          << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// ForkJoinPool edge cases
// ---------------------------------------------------------------------------

using sched::ForkJoinPool;

TEST(ForkJoinPoolEdge, SubmitFromWorkerThreadRuns) {
  ForkJoinPool pool(2);
  std::atomic<int> inner{0};
  pool.invoke_all({[&] {
    for (int i = 0; i < 10; ++i) {
      ForkJoinPool::current_pool()->submit([&] { inner.fetch_add(1); });
    }
  }});
  pool.wait_idle();
  EXPECT_EQ(inner.load(), 10);
}

TEST(ForkJoinPoolEdge, EmptyInvokeAllReturnsImmediately) {
  ForkJoinPool pool(2);
  pool.invoke_all({});
  SUCCEED();
}

TEST(ForkJoinPoolEdge, SingleTaskFromExternalThreadSeesPool) {
  ForkJoinPool pool(2);
  bool saw_pool = false;
  pool.invoke_all({[&] {
    saw_pool = ForkJoinPool::current_pool() == &pool &&
               ForkJoinPool::current_worker_index() >= 0;
  }});
  EXPECT_TRUE(saw_pool);
}

TEST(ForkJoinPoolEdge, ForEachZeroAndNegativeAreNoops) {
  ForkJoinPool pool(2);
  std::atomic<int> count{0};
  pool.for_each_index(0, [&](std::int64_t) { count.fetch_add(1); });
  pool.for_each_index(-5, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ForkJoinPoolEdge, ExceptionInOneBatchDoesNotPoisonTheNext) {
  ForkJoinPool pool(2);
  EXPECT_THROW(pool.invoke_all({[] { throw std::runtime_error("x"); },
                                [] {}}),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.invoke_all({[&] { ok.fetch_add(1); }, [&] { ok.fetch_add(1); }});
  EXPECT_EQ(ok.load(), 2);
}

TEST(ForkJoinPoolEdge, DeepNestingCompletes) {
  ForkJoinPool pool(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    ForkJoinPool::current_pool()->invoke_all(
        {[&, depth] { recurse(depth - 1); },
         [&, depth] { recurse(depth - 1); }});
  };
  pool.invoke_all({[&] { recurse(6); }});
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ForkJoinPoolEdge, ManyConcurrentExternalInvokers) {
  ForkJoinPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 8; ++i) {
          tasks.push_back([&] { total.fetch_add(1); });
        }
        pool.invoke_all(std::move(tasks));
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 4 * 20 * 8);
}

}  // namespace
}  // namespace jstar
