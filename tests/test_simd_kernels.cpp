// SIMD-vs-scalar differential for the runtime-dispatched kernel layer
// (core/simd.h) and its columnar integration (core/column_store.h).
//
// Layer 1 — raw kernel tables: every vector table the binary carries
// (AVX2, AVX-512, NEON, plus whatever active_level() resolved to) is
// pinned against the scalar table over randomized inputs: every tail
// length 0..well past the widest vector, INT64_MIN/MAX values and
// bounds, empty intervals (lo > hi), random 0/1 masks, and duplicated
// minima (the earliest-row argmin tie-break).  These tests are
// env-independent — they address the ISA tables directly — so the
// forced-scalar CI job and the sanitizer jobs run them unchanged.
//
// Layer 2 — the columnar substrate: kernels only ever see live, purged,
// sorted columns (with_merged folds staging and compacts the dead set
// first), so a store carrying staged-unmerged rows and erased-but-
// unpurged rows must still kernel-count/select/gather/argmin exactly
// what a tuple-at-a-time scan sees.  Past the sequential cutoff the
// same sweeps split into morsels on a ForkJoinPool and must stay
// bit-identical to the sequential pass, with the split recorded in the
// store's counters and describe() string.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/column_store.h"
#include "core/engine.h"
#include "core/simd.h"
#include "sched/fork_join_pool.h"
#include "util/rng.h"

namespace jstar {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/// Every vector kernel table this binary carries, with its name.
std::vector<std::pair<const simd::Kernels*, const char*>> vector_tables() {
  std::vector<std::pair<const simd::Kernels*, const char*>> out;
  if (const simd::Kernels* k = simd::avx2_kernels()) out.push_back({k, "avx2"});
  if (const simd::Kernels* k = simd::avx512_kernels()) {
    out.push_back({k, "avx512"});
  }
  if (const simd::Kernels* k = simd::neon_kernels()) out.push_back({k, "neon"});
  return out;
}

/// Random value generator that injects the extremes often enough that
/// every tail shape sees them.
std::int64_t spicy_value(SplitMix64& rng) {
  switch (rng.next_below(8)) {
    case 0: return kMin;
    case 1: return kMax;
    case 2: return 0;
    case 3: return static_cast<std::int64_t>(rng.next_below(16)) - 8;
    default: return static_cast<std::int64_t>(rng.next());
  }
}

TEST(SimdKernels, VectorTablesMatchScalarOnRandomizedInputs) {
  const auto tables = vector_tables();
  if (tables.empty()) GTEST_SKIP() << "no vector TU in this binary";
  const simd::Kernels& ref = simd::scalar_kernels();
  SplitMix64 rng(0x51D0u);
  // Every length 0..80 (well past the widest vector including unrolled
  // tails), then a few big ones; several random (values, bounds, mask)
  // draws per length.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 80; ++n) lengths.push_back(n);
  lengths.insert(lengths.end(), {1000, 4096, 30000});
  for (const std::size_t n : lengths) {
    for (int rep = 0; rep < (n <= 80 ? 8 : 2); ++rep) {
      std::vector<std::int64_t> v(n);
      for (auto& x : v) x = spicy_value(rng);
      std::int64_t lo = spicy_value(rng);
      std::int64_t hi = spicy_value(rng);
      if (rep % 4 == 0) std::swap(lo, hi);  // sometimes deliberately empty
      if (rep % 4 == 1) hi = lo;            // point interval
      std::vector<std::uint8_t> mask(n);
      for (auto& m : mask) m = static_cast<std::uint8_t>(rng.next_below(2));

      const std::int64_t want_count =
          ref.count_in_range(v.data(), n, lo, hi);
      std::vector<std::uint8_t> want_sel = mask;
      ref.mask_and_in_range(v.data(), n, lo, hi, want_sel.data());
      const std::int64_t want_mask_n = ref.mask_count(mask.data(), n);
      std::int64_t want_min = 0;
      std::size_t want_row = 0;
      const bool want_found =
          ref.masked_min_i64(v.data(), mask.data(), n, &want_min, &want_row);

      for (const auto& [k, name] : tables) {
        SCOPED_TRACE(std::string(name) + " n=" + std::to_string(n) +
                     " lo=" + std::to_string(lo) + " hi=" + std::to_string(hi));
        EXPECT_EQ(k->count_in_range(v.data(), n, lo, hi), want_count);
        std::vector<std::uint8_t> sel = mask;
        k->mask_and_in_range(v.data(), n, lo, hi, sel.data());
        EXPECT_EQ(sel, want_sel);
        EXPECT_EQ(k->mask_count(mask.data(), n), want_mask_n);
        std::int64_t got_min = 0;
        std::size_t got_row = 0;
        const bool got_found =
            k->masked_min_i64(v.data(), mask.data(), n, &got_min, &got_row);
        EXPECT_EQ(got_found, want_found);
        if (want_found) {
          EXPECT_EQ(got_min, want_min);
          EXPECT_EQ(got_row, want_row);  // earliest-row tie-break
        }
      }
    }
  }
}

TEST(SimdKernels, MaskedMinBreaksTiesAtEarliestRowAcrossLanes) {
  // Duplicated minima placed in every lane position, so a vector argmin
  // that picks any lane but the first fails.
  const auto tables = vector_tables();
  if (tables.empty()) GTEST_SKIP() << "no vector TU in this binary";
  for (std::size_t n = 2; n <= 40; ++n) {
    for (std::size_t first = 0; first + 1 < n; ++first) {
      for (std::size_t second = first + 1; second < n;
           second += (n > 16 ? 5 : 1)) {
        std::vector<std::int64_t> v(n, 100);
        v[first] = -7;
        v[second] = -7;
        std::vector<std::uint8_t> mask(n, 1);
        for (const auto& [k, name] : tables) {
          std::int64_t mn = 0;
          std::size_t row = 0;
          ASSERT_TRUE(k->masked_min_i64(v.data(), mask.data(), n, &mn, &row));
          EXPECT_EQ(mn, -7) << name;
          EXPECT_EQ(row, first) << name << " n=" << n;
        }
      }
    }
  }
}

TEST(SimdKernels, DispatchDegradesToNearestAvailableLevel) {
  // The scalar table is always reachable and always the Scalar answer.
  EXPECT_EQ(&simd::kernels(simd::Level::Scalar), &simd::scalar_kernels());
  EXPECT_EQ(simd::resolved_level(simd::Level::Scalar), simd::Level::Scalar);
  // active_level() is detect_level() capped by JSTAR_SIMD: never above
  // the hardware, and resolved to a level whose table exists.
  EXPECT_LE(simd::active_level(), simd::detect_level());
  EXPECT_EQ(simd::resolved_level(simd::active_level()), simd::active_level());
  // Asking for a level degrades, never upgrades: the table returned for
  // Avx2 is not the Avx512 table.
  if (simd::avx512_kernels() != nullptr && simd::avx2_kernels() != nullptr) {
    EXPECT_EQ(&simd::kernels(simd::Level::Avx2), simd::avx2_kernels());
    EXPECT_EQ(&simd::kernels(simd::Level::Avx512), simd::avx512_kernels());
  }
}

// --- Layer 2: the columnar substrate ----------------------------------------

struct Cell {
  std::int64_t a, b;
  auto operator<=>(const Cell&) const = default;
};
struct CellHash {
  std::size_t operator()(const Cell& c) const { return hash_fields(c.a, c.b); }
};
using CellStore = ColumnStore<Cell, CellHash, std::int64_t Cell::*,
                              std::int64_t Cell::*>;
using Bound = ColumnarOps<Cell>::Bound;

CellStore make_store() { return CellStore(CellHash{}, &Cell::a, &Cell::b); }

const void* tag_a() { return query::field_tag(&Cell::a); }
const void* tag_b() { return query::field_tag(&Cell::b); }

/// Tuple-at-a-time oracle over whatever the store's scan delivers.
struct ScanOracle {
  std::vector<Cell> rows;
  explicit ScanOracle(const CellStore& s) {
    s.scan([&](const Cell& c) { rows.push_back(c); });
  }
  bool selected(const Cell& c, const std::vector<Bound>& bounds) const {
    for (const Bound& bd : bounds) {
      const std::int64_t x = bd.tag == tag_a() ? c.a : c.b;
      if (x < bd.lo || x > bd.hi) return false;
    }
    return true;
  }
  std::int64_t count(const std::vector<Bound>& bounds) const {
    std::int64_t n = 0;
    for (const Cell& c : rows) n += selected(c, bounds) ? 1 : 0;
    return n;
  }
  std::vector<Cell> select(const std::vector<Bound>& bounds) const {
    std::vector<Cell> out;
    for (const Cell& c : rows) {
      if (selected(c, bounds)) out.push_back(c);
    }
    return out;
  }
  std::vector<std::int64_t> gather_b(const std::vector<Bound>& bounds) const {
    std::vector<std::int64_t> out;
    for (const Cell& c : rows) {
      if (selected(c, bounds)) out.push_back(c.b);
    }
    return out;
  }
  std::optional<Cell> min_b(const std::vector<Bound>& bounds) const {
    std::optional<Cell> best;
    for (const Cell& c : rows) {
      if (!selected(c, bounds)) continue;
      if (!best || c.b < best->b) best = c;
    }
    return best;
  }
};

/// Runs all four kernels against the scan oracle for one bound set.
void expect_kernels_equal_scan(const CellStore& store,
                               const std::vector<Bound>& bounds,
                               const char* label) {
  SCOPED_TRACE(label);
  const ScanOracle oracle(store);
  EXPECT_EQ(store.kernel_count(bounds).selected, oracle.count(bounds));

  std::vector<Cell> selected;
  store.kernel_select(bounds, [&](const Cell* d, std::size_t c) {
    selected.insert(selected.end(), d, d + c);
  });
  EXPECT_EQ(selected, oracle.select(bounds));

  std::vector<std::int64_t> gathered;
  ASSERT_TRUE(store.kernel_gather_i64(
      bounds, tag_b(),
      [&](const std::int64_t* d, std::size_t c) {
        gathered.insert(gathered.end(), d, d + c);
      },
      nullptr));
  EXPECT_EQ(gathered, oracle.gather_b(bounds));

  std::optional<Cell> least;
  ASSERT_TRUE(store.kernel_min_row(bounds, tag_b(), &least, nullptr));
  EXPECT_EQ(least, oracle.min_b(bounds));
}

TEST(ColumnStoreSimd, KernelsIgnoreDeadSetAndStagedUnmergedRows) {
  CellStore store = make_store();
  SplitMix64 rng(0xDEAD5EEDu);
  std::vector<Cell> inserted;
  for (int i = 0; i < 4000; ++i) {
    const Cell c{static_cast<std::int64_t>(rng.next_below(500)),
                 static_cast<std::int64_t>(rng.next_below(200))};
    if (store.insert(c)) inserted.push_back(c);
  }
  // Erase a third WITHOUT scanning in between: the victims sit in the
  // dead set, still physically present in the columns, until the next
  // with_merged purge — which the kernels themselves must force.
  for (std::size_t i = 0; i < inserted.size(); i += 3) {
    ASSERT_TRUE(store.erase(inserted[i]));
  }
  // Stage fresh rows (n below the merge threshold keeps them unmerged);
  // kernels must see them too.
  for (int i = 0; i < 40; ++i) {
    store.insert(Cell{600 + i, i});
  }
  ASSERT_GT(store.staged(), 0u);

  expect_kernels_equal_scan(store, {Bound{tag_a(), 100, 399}}, "one-bound");
  expect_kernels_equal_scan(
      store, {Bound{tag_a(), 50, 449}, Bound{tag_b(), 20, 150}}, "two-bound");
  expect_kernels_equal_scan(store, {Bound{tag_a(), kMin, kMax}}, "all");
  expect_kernels_equal_scan(store, {Bound{tag_b(), 10, 9}}, "empty-interval");
  expect_kernels_equal_scan(store, {Bound{tag_a(), 590, kMax}},
                            "staged-only-matches");
}

TEST(ColumnStoreSimd, KernelTailLengthsZeroToVectorWidth) {
  // A store of every size 0..40 rows: below any vector width, so every
  // kernel runs purely in its tail path.
  for (std::size_t n = 0; n <= 40; ++n) {
    CellStore store = make_store();
    for (std::size_t i = 0; i < n; ++i) {
      store.insert(Cell{static_cast<std::int64_t>(i % 7),
                        static_cast<std::int64_t>(i)});
    }
    expect_kernels_equal_scan(store, {Bound{tag_a(), 2, 5}},
                              ("n=" + std::to_string(n)).c_str());
    expect_kernels_equal_scan(store, {Bound{tag_a(), kMin, kMax}}, "all");
  }
}

/// Fills a store with `rows` distinct tuples (b is unique, so the size
/// really crosses the morsel cutoff); values are dense in `a` so
/// interval predicates select real work.
void fill_big(CellStore& store, std::size_t rows) {
  for (std::size_t i = 0; i < rows; ++i) {
    store.insert(Cell{static_cast<std::int64_t>(i % 1000),
                      static_cast<std::int64_t>(i)});
  }
}

TEST(ColumnStoreSimd, MorselKernelsMatchSequentialAndRecordSplits) {
  const std::size_t rows = morsel::kSequentialCutoff + 20000;
  CellStore par = make_store();
  CellStore seq = make_store();
  fill_big(par, rows);
  fill_big(seq, rows);

  sched::ForkJoinPool pool(2);
  par.set_exec_hints(ExecHints{&pool, true, true});
  seq.set_exec_hints(ExecHints{nullptr, true, false});

  const std::vector<std::vector<Bound>> cases = {
      {Bound{tag_a(), 100, 499}},
      {Bound{tag_a(), 0, 999}, Bound{tag_b(), 5000, 60000}},
      {Bound{tag_b(), kMin, kMax}},
      {Bound{tag_a(), 7, 3}},  // empty interval
  };
  for (const auto& bounds : cases) {
    const auto pc = par.kernel_count(bounds);
    const auto sc = seq.kernel_count(bounds);
    EXPECT_EQ(pc.selected, sc.selected);
    EXPECT_EQ(pc.rows, sc.rows);

    std::vector<std::int64_t> pg, sg;
    ASSERT_TRUE(par.kernel_gather_i64(
        bounds, tag_b(),
        [&](const std::int64_t* d, std::size_t c) {
          pg.insert(pg.end(), d, d + c);
        },
        nullptr));
    ASSERT_TRUE(seq.kernel_gather_i64(
        bounds, tag_b(),
        [&](const std::int64_t* d, std::size_t c) {
          sg.insert(sg.end(), d, d + c);
        },
        nullptr));
    // Morsel buffers stream in storage order: the exact sequence of the
    // sequential pass, not merely the same multiset.
    EXPECT_EQ(pg, sg);

    std::optional<Cell> pm, sm;
    ASSERT_TRUE(par.kernel_min_row(bounds, tag_b(), &pm, nullptr));
    ASSERT_TRUE(seq.kernel_min_row(bounds, tag_b(), &sm, nullptr));
    EXPECT_EQ(pm, sm);
  }

  if (simd::morsels_env_on()) {
    EXPECT_GT(par.morsel_runs(), 0);
    EXPECT_GE(par.morsel_splits(),
              static_cast<std::int64_t>(morsel::count(rows)));
    EXPECT_NE(par.describe().find("morsels="), std::string::npos);
  }
  EXPECT_EQ(seq.morsel_runs(), 0);
  EXPECT_EQ(seq.describe().find("morsels="), std::string::npos);
}

TEST(ColumnStoreSimd, ExecHintsPinScalarAndEnvWinsOverOptions) {
  CellStore store = make_store();
  fill_big(store, 1000);
  sched::ForkJoinPool pool(2);
  // simd=false pins the scalar table regardless of the host level.
  store.set_exec_hints(ExecHints{&pool, /*simd=*/false, /*morsels=*/true});
  EXPECT_EQ(store.dispatch_level(), simd::Level::Scalar);
  EXPECT_NE(store.describe().find(",scalar"), std::string::npos);
  expect_kernels_equal_scan(store, {Bound{tag_a(), 100, 800}}, "pinned");
  // Re-enabling through the hint yields at most the env-capped level —
  // the hint can never exceed what active_level() resolved.
  store.set_exec_hints(ExecHints{&pool, /*simd=*/true, /*morsels=*/true});
  EXPECT_EQ(store.dispatch_level(), simd::active_level());
}

TEST(ColumnStoreSimd, MorselScanCoversEveryRowExactlyOnce) {
  const std::size_t rows = morsel::kSequentialCutoff + 5000;
  CellStore store = make_store();
  fill_big(store, rows);
  sched::ForkJoinPool pool(2);
  store.set_exec_hints(ExecHints{&pool, true, true});
  if (!simd::morsels_env_on()) GTEST_SKIP() << "JSTAR_MORSELS=off";

  std::size_t planned = 0;
  std::vector<std::int64_t> per_morsel;
  const bool ran = store.scan_morsels(
      [&](std::size_t m) {
        planned = m;
        per_morsel.assign(m, 0);
      },
      [&](const Cell*, std::size_t c, std::size_t mi) {
        per_morsel[mi] += static_cast<std::int64_t>(c);
      });
  ASSERT_TRUE(ran);
  EXPECT_EQ(planned, morsel::count(store.size()));
  std::int64_t total = 0;
  for (const std::int64_t c : per_morsel) {
    EXPECT_GT(c, 0);
    total += c;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(store.size()));

  // Below the cutoff (or without a pool) the store declines.
  CellStore small = make_store();
  fill_big(small, 100);
  small.set_exec_hints(ExecHints{&pool, true, true});
  EXPECT_FALSE(small.scan_morsels([](std::size_t) {},
                                  [](const Cell*, std::size_t, std::size_t) {
                                  }));
}

}  // namespace
}  // namespace jstar
