// Tests for the aggregate query helpers (§3–§4's `get min` / aggregate
// queries) and the Engine::step single-batch API.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "reduce/reducers.h"
#include "util/statistics.h"

namespace jstar {
namespace {

struct Sample {
  std::int64_t t, sensor, value;
  auto operator<=>(const Sample&) const = default;
};

TableDecl<Sample> sample_decl() {
  return TableDecl<Sample>("Sample")
      .orderby_lit("S")
      .orderby_seq("t", &Sample::t)
      .hash([](const Sample& s) {
        return hash_fields(s.t, s.sensor, s.value);
      });
}

class AggregateApi : public ::testing::Test {
 protected:
  void SetUp() override {
    eng_ = std::make_unique<Engine>(EngineOptions{.sequential = true});
    table_ = &eng_->table(sample_decl());
    for (std::int64_t i = 0; i < 20; ++i) {
      eng_->put(*table_, Sample{i, i % 3, (i * 7) % 13});
    }
    eng_->run();
  }

  std::unique_ptr<Engine> eng_;
  Table<Sample>* table_ = nullptr;
};

TEST_F(AggregateApi, SumAggregate) {
  const auto sum = table_->aggregate<reduce::Sum<std::int64_t>>(
      [](const Sample& s) { return s.value; });
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < 20; ++i) expect += (i * 7) % 13;
  EXPECT_EQ(sum.value(), expect);
}

TEST_F(AggregateApi, CountAggregate) {
  const auto n = table_->aggregate<reduce::Count>(
      [](const Sample& s) { return s.value; });
  EXPECT_EQ(n.value(), 20);
}

TEST_F(AggregateApi, StatisticsAggregate) {
  const auto stats = table_->aggregate<Statistics>(
      [](const Sample& s) { return static_cast<double>(s.value); });
  EXPECT_EQ(stats.count(), 20u);
  EXPECT_GE(stats.min(), 0.0);
  EXPECT_LE(stats.max(), 12.0);
}

TEST_F(AggregateApi, HistogramAggregateWithConfiguredIdentity) {
  const auto hist = table_->aggregate<reduce::Histogram>(
      [](const Sample& s) { return static_cast<double>(s.value); },
      reduce::Histogram(0.0, 13.0, 13));
  EXPECT_EQ(hist.total(), 20);
}

TEST_F(AggregateApi, MinByFindsLeastMatching) {
  // Least sample of sensor 1 by value.
  const auto best = table_->min_by(
      [](const Sample& s) { return s.sensor == 1; },
      [](const Sample& a, const Sample& b) { return a.value < b.value; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->sensor, 1);
  std::int64_t expect = INT64_MAX;
  table_->scan([&](const Sample& s) {
    if (s.sensor == 1) expect = std::min(expect, s.value);
  });
  EXPECT_EQ(best->value, expect);
}

TEST_F(AggregateApi, MinByEmptyMatchIsNullopt) {
  EXPECT_FALSE(
      table_->min_by([](const Sample& s) { return s.sensor == 99; })
          .has_value());
}

TEST_F(AggregateApi, NegativeQuery) {
  EXPECT_TRUE(table_->none([](const Sample& s) { return s.value > 100; }));
  EXPECT_FALSE(table_->none([](const Sample& s) { return s.value >= 0; }));
}

// ---------------------------------------------------------------------------
// Engine::step
// ---------------------------------------------------------------------------

TEST(EngineStep, ProcessesOneBatchAtATime) {
  Engine eng(EngineOptions{.sequential = true});
  auto& samples = eng.table(sample_decl());
  std::vector<std::int64_t> fired;
  eng.rule(samples, "observe", [&](RuleCtx&, const Sample& s) {
    fired.push_back(s.t);
  });
  for (std::int64_t i = 0; i < 5; ++i) eng.put(samples, Sample{i, 0, 0});

  RunReport report;
  // Each t value is its own batch (seq level): five steps then empty.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(eng.step(&report));
    EXPECT_EQ(fired.size(), static_cast<std::size_t>(i + 1));
    EXPECT_EQ(fired.back(), i);  // causality order
  }
  EXPECT_FALSE(eng.step(&report));
  EXPECT_EQ(report.batches, 5);
  EXPECT_EQ(report.tuples, 5);
}

TEST(EngineStep, StepThenRunFinishes) {
  Engine eng(EngineOptions{.sequential = true});
  auto& samples = eng.table(sample_decl());
  int fires = 0;
  eng.rule(samples, "count", [&](RuleCtx& ctx, const Sample& s) {
    ++fires;
    if (s.t < 9) samples.put(ctx, Sample{s.t + 1, 0, 0});
  });
  eng.put(samples, Sample{0, 0, 0});
  EXPECT_TRUE(eng.step());  // one batch by hand...
  eng.run();                // ...the rest to quiescence
  EXPECT_EQ(fires, 10);
}

TEST(EngineStep, StepOnEmptyEngineIsFalse) {
  Engine eng(EngineOptions{.sequential = true});
  auto& samples = eng.table(sample_decl());
  (void)samples;
  EXPECT_FALSE(eng.step());
}

TEST(EngineStep, WorksInParallelMode) {
  EngineOptions opts;
  opts.threads = 2;
  Engine eng(opts);
  auto& samples = eng.table(sample_decl());
  std::atomic<int> fires{0};
  eng.rule(samples, "count", [&](RuleCtx&, const Sample&) {
    fires.fetch_add(1);
  });
  for (std::int64_t i = 0; i < 3; ++i) eng.put(samples, Sample{i, 0, 0});
  int steps = 0;
  while (eng.step()) ++steps;
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(fires.load(), 3);
}

}  // namespace
}  // namespace jstar
