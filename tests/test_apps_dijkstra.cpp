// Correctness tests for the ShortestPath case study: the Fig 5 JStar
// Dijkstra (Delta tree as priority queue) must agree with the binary-heap
// baseline on every graph and strategy; the parallel graph generator must
// be deterministic regardless of task count.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/dijkstra/dijkstra.h"

namespace jstar::apps::dijkstra {
namespace {

std::vector<std::pair<std::int32_t, std::int32_t>> sorted_arcs(const Graph& g,
                                                               std::int32_t v) {
  std::vector<std::pair<std::int32_t, std::int32_t>> out;
  for (const auto& a : g.arcs(v)) out.emplace_back(a.to, a.weight);
  std::sort(out.begin(), out.end());
  return out;
}

void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.vertices(), b.vertices());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::int32_t v = 0; v < a.vertices(); ++v) {
    ASSERT_EQ(sorted_arcs(a, v), sorted_arcs(b, v)) << "vertex " << v;
  }
}

TEST(RandomGraph, HasRequestedShape) {
  const Graph g = random_graph(100, 250, 7);
  EXPECT_EQ(g.vertices(), 100);
  EXPECT_EQ(g.edge_count(), 250);
}

TEST(RandomGraph, IsConnected) {
  const Graph g = random_graph(500, 499, 3);  // pure tree
  const auto dist = shortest_paths_baseline(g);
  for (std::int64_t d : dist) EXPECT_GE(d, 0);
}

TEST(RandomGraph, WeightsInRange) {
  const Graph g = random_graph(50, 120, 11);
  for (std::int32_t v = 0; v < g.vertices(); ++v) {
    for (const auto& a : g.arcs(v)) {
      EXPECT_GE(a.weight, 1);
      EXPECT_LE(a.weight, 10);
    }
  }
}

TEST(RandomGraph, DeterministicInSeed) {
  expect_same_graph(random_graph(200, 500, 42), random_graph(200, 500, 42));
}

// The §6.5 requirement: splitting generation into parallel tasks must not
// change the graph (splittable RNG streams).
class GenTasks : public ::testing::TestWithParam<int> {};

TEST_P(GenTasks, JStarGeneratorMatchesSequentialForAnyTaskCount) {
  const Graph reference = random_graph(300, 700, 9);
  EngineOptions opts;
  opts.threads = 4;
  const Graph got = random_graph_jstar(300, 700, 9, GetParam(), opts);
  expect_same_graph(reference, got);
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, GenTasks, ::testing::Values(1, 2, 8, 24));

TEST(Baseline, TinyKnownGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 10);
  g.add_edge(2, 3, 1);
  const auto dist = shortest_paths_baseline(g);
  EXPECT_EQ(dist, (Distances{0, 1, 3, 4}));
}

struct DijkstraCase {
  std::int32_t vertices;
  std::int64_t edges;
  std::uint64_t seed;
  bool sequential;
  int threads;
  std::string label;
};

class DijkstraJStar : public ::testing::TestWithParam<DijkstraCase> {};

TEST_P(DijkstraJStar, MatchesBaseline) {
  const DijkstraCase& c = GetParam();
  const Graph g = random_graph(c.vertices, c.edges, c.seed);
  EngineOptions opts;
  opts.sequential = c.sequential;
  opts.threads = c.threads;
  const Distances got = shortest_paths_jstar(g, opts);
  const Distances want = shortest_paths_baseline(g);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndStrategies, DijkstraJStar,
    ::testing::Values(
        DijkstraCase{1, 0, 1, true, 1, "singleton"},
        DijkstraCase{2, 1, 1, true, 1, "one_edge"},
        DijkstraCase{100, 99, 2, true, 1, "tree_seq"},
        DijkstraCase{500, 1500, 3, true, 1, "dense_seq"},
        DijkstraCase{500, 1500, 3, false, 1, "dense_par1"},
        DijkstraCase{500, 1500, 3, false, 4, "dense_par4"},
        DijkstraCase{2000, 5000, 4, false, 4, "large_par4"},
        DijkstraCase{2000, 5000, 5, false, 8, "large_par8"}),
    [](const auto& info) { return info.param.label; });

TEST(DijkstraJStarMisc, RepeatedParallelRunsIdentical) {
  const Graph g = random_graph(800, 2000, 17);
  EngineOptions opts;
  opts.threads = 4;
  const Distances first = shortest_paths_jstar(g, opts);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(shortest_paths_jstar(g, opts), first) << "iteration " << i;
  }
}

TEST(DijkstraJStarMisc, ManyEqualDistancesInOneBatch) {
  // A star graph: all leaves settle at the same distance — one big
  // equivalence class in the Delta tree, all processed in parallel.
  Graph g(64);
  for (std::int32_t v = 1; v < 64; ++v) g.add_edge(0, v, 5);
  EngineOptions opts;
  opts.threads = 4;
  const Distances dist = shortest_paths_jstar(g, opts);
  for (std::int32_t v = 1; v < 64; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], 5);
  }
}

}  // namespace
}  // namespace jstar::apps::dijkstra
