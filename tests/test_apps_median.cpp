// Correctness tests for the Median case study: the JStar iterative
// pivot-partition program must agree with std::nth_element on every input
// shape, region count and strategy.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/median/median.h"
#include "util/rng.h"

namespace jstar::apps::median {
namespace {

TEST(MedianBaselines, AgreeOnRandomInput) {
  const auto values = random_values(10001, 3);
  const double want = median_nth_element(values);
  EXPECT_DOUBLE_EQ(median_sort(values), want);
  EXPECT_DOUBLE_EQ(median_quickselect(values), want);
}

TEST(MedianBaselines, TinyInputs) {
  EXPECT_DOUBLE_EQ(median_sort({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median_quickselect({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median_sort({2.0, 1.0}), 1.0);  // lower median
  EXPECT_DOUBLE_EQ(median_quickselect({2.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(median_sort({3.0, 1.0, 2.0}), 2.0);
}

TEST(MedianBaselines, AllEqualValues) {
  std::vector<double> v(1000, 7.5);
  EXPECT_DOUBLE_EQ(median_quickselect(v), 7.5);
  EXPECT_DOUBLE_EQ(median_nth_element(v), 7.5);
}

struct MedianCase {
  std::int64_t n;
  std::uint64_t seed;
  bool sequential;
  int threads;
  int regions;
  std::string label;
};

class MedianJStar : public ::testing::TestWithParam<MedianCase> {};

TEST_P(MedianJStar, MatchesNthElement) {
  const MedianCase& c = GetParam();
  const auto values = random_values(c.n, c.seed);
  JStarConfig config;
  config.engine.sequential = c.sequential;
  config.engine.threads = c.threads;
  config.regions = c.regions;
  const double got = median_jstar(values, config);
  EXPECT_DOUBLE_EQ(got, median_nth_element(values));
}

INSTANTIATE_TEST_SUITE_P(
    InputsAndStrategies, MedianJStar,
    ::testing::Values(
        MedianCase{1, 1, true, 1, 2, "single_value"},
        MedianCase{2, 1, true, 1, 2, "two_values"},
        MedianCase{100, 2, true, 1, 4, "small_seq"},
        MedianCase{10000, 3, true, 1, 4, "seq_10k"},
        MedianCase{10000, 3, false, 1, 4, "par1_10k"},
        MedianCase{10000, 3, false, 4, 8, "par4_10k"},
        MedianCase{100000, 4, false, 4, 16, "par4_100k"},
        MedianCase{99999, 5, false, 2, 7, "odd_regions"}),
    [](const auto& info) { return info.param.label; });

TEST(MedianJStarMisc, BelowCutoffFinishesDirectly) {
  const auto values = random_values(500, 9);
  JStarConfig config;
  config.engine.sequential = true;
  config.direct_cutoff = 1024;  // n < cutoff: single Decide round
  EXPECT_DOUBLE_EQ(median_jstar(values, config), median_nth_element(values));
}

TEST(MedianJStarMisc, TinyCutoffForcesManyIterations) {
  const auto values = random_values(20000, 12);
  JStarConfig config;
  config.engine.threads = 2;
  config.direct_cutoff = 2;  // maximal number of partition rounds
  config.regions = 4;
  EXPECT_DOUBLE_EQ(median_jstar(values, config), median_nth_element(values));
}

TEST(MedianJStarMisc, ManyDuplicateValues) {
  // Heavy pivot-equal mass exercises the equal-count early exit.
  SplitMix64 rng(77);
  std::vector<double> values(30000);
  for (auto& v : values) v = static_cast<double>(rng.next_below(5));
  JStarConfig config;
  config.engine.threads = 4;
  EXPECT_DOUBLE_EQ(median_jstar(values, config), median_nth_element(values));
}

TEST(MedianJStarMisc, SortedAndReversedInputs) {
  std::vector<double> asc(5000), desc(5000);
  for (int i = 0; i < 5000; ++i) {
    asc[static_cast<std::size_t>(i)] = i;
    desc[static_cast<std::size_t>(i)] = 5000 - i;
  }
  JStarConfig config;
  config.engine.threads = 2;
  EXPECT_DOUBLE_EQ(median_jstar(asc, config), median_nth_element(asc));
  EXPECT_DOUBLE_EQ(median_jstar(desc, config), median_nth_element(desc));
}

TEST(MedianJStarMisc, RepeatedParallelRunsIdentical) {
  const auto values = random_values(50000, 21);
  JStarConfig config;
  config.engine.threads = 4;
  const double first = median_jstar(values, config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(median_jstar(values, config), first);
  }
}

// Property sweep: many seeds and sizes.
class MedianSeeds : public ::testing::TestWithParam<int> {};

TEST_P(MedianSeeds, AlwaysMatchesReference) {
  const int seed = GetParam();
  const std::int64_t n = 1000 + seed * 317;
  const auto values = random_values(n, static_cast<std::uint64_t>(seed));
  JStarConfig config;
  config.engine.threads = 2;
  config.regions = 3 + seed % 5;
  EXPECT_DOUBLE_EQ(median_jstar(values, config), median_nth_element(values));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MedianSeeds, ::testing::Range(1, 11));

}  // namespace
}  // namespace jstar::apps::median
