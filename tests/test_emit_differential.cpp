// Differential sweep for batch-at-a-time rule firing (emit buffers): the
// buffered emit path — RuleCtx puts staged in per-worker buffers and bulk
// flushed into the Delta tree once per fire phase — must be bit-identical
// to direct per-put Delta appends under every schedule.  Buffered runs are
// pinned against direct-put runs (EngineOptions::emit_buffer = false) and
// the engine-free oracle across sequential / BSP / async sharding, the
// default / flat / columnar substrates, counted retract/upsert waves and
// streaming-style epoch boundaries, at 1/2/4/8 workers.
//
// Why this must hold: append_one (core/table.h) is the single definition
// of batch-combining semantics — dedup, counted sign accumulation, upsert
// supersede — and the flush replays the exact same records through it,
// grouped by key in first-appearance order.  Any divergence here means the
// flush reordered, dropped or double-applied a record.
#include <gtest/gtest.h>

#include <set>

#include "core/simd.h"
#include "differential.h"

namespace jstar::difftest {
namespace {

constexpr const char* kExe = "test_emit_differential";

// --- set-semantics derivation programs -------------------------------------

// Sequential mode is the strictest pin: one worker, one buffer, so the
// flush must preserve the exact put order of the direct path.
TEST(EmitDifferential, SequentialBufferedMatchesDirectEveryStore) {
  const std::uint64_t n = seed_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + n; ++seed) {
    const Program p = random_program(seed);
    const std::set<Tok> want = oracle_fixpoint(p);
    for (const StoreKind store :
         {StoreKind::Default, StoreKind::FlatOrdered, StoreKind::Columnar}) {
      EngineOptions direct;
      direct.sequential = true;
      direct.emit_buffer = false;
      EngineOptions buffered;
      buffered.sequential = true;
      buffered.emit_buffer = true;
      const std::set<Tok> got_direct = single_engine_fixpoint(p, direct, store);
      const std::set<Tok> got_buffered =
          single_engine_fixpoint(p, buffered, store);
      EXPECT_EQ(got_direct, want)
          << to_string(store) << " direct diverged from oracle, "
          << repro(seed, kExe, "EmitDifferential.*EveryStore");
      EXPECT_EQ(got_buffered, got_direct)
          << to_string(store) << " buffered diverged from direct, "
          << repro(seed, kExe, "EmitDifferential.*EveryStore");
    }
  }
}

// The headline acceptance gate: buffered results are bit-identical at any
// worker count, including the striped-Delta backend whose bulk-append and
// pop_min head cache this PR introduced.
TEST(EmitDifferential, BufferedBitIdenticalAcrossWorkerCounts) {
  const std::uint64_t n = seed_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + n; ++seed) {
    const Program p = random_program(seed);
    const std::set<Tok> want = oracle_fixpoint(p);
    for (const int threads : {1, 2, 4, 8}) {
      EngineOptions opts;
      opts.sequential = false;
      opts.threads = threads;
      opts.emit_buffer = true;
      if (threads == 4) opts.delta_stripes = 8;  // striped bulk appends
      EXPECT_EQ(single_engine_fixpoint(p, opts), want)
          << threads << " workers, "
          << repro(seed, kExe, "EmitDifferential.*WorkerCounts");
    }
  }
}

// task_per_rule spawns one task per (tuple, rule); its puts ride the same
// thread-local buffers and must flush to the same fixpoint.
TEST(EmitDifferential, BufferedTaskPerRule) {
  const std::uint64_t n = seed_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + n; ++seed) {
    const Program p = random_small_program(seed);  // rules = 2
    const std::set<Tok> want = oracle_fixpoint(p);
    EngineOptions opts;
    opts.sequential = false;
    opts.threads = 4;
    opts.task_per_rule = true;
    opts.emit_buffer = true;
    EXPECT_EQ(single_engine_fixpoint(p, opts), want)
        << repro(seed, kExe, "EmitDifferential.BufferedTaskPerRule");
  }
}

// Sharded schedules: buffered emit runs inside every shard engine while
// cross-shard traffic rides the mailbox; BSP and async must both land on
// the direct-put fixpoint.
TEST(EmitDifferential, ShardedBufferedMatchesDirect) {
  const std::uint64_t n = seed_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + n; ++seed) {
    const Program p = random_program(seed);
    const std::set<Tok> want = oracle_fixpoint(p);
    for (const dist::ShardedMode mode :
         {dist::ShardedMode::Bsp, dist::ShardedMode::Async}) {
      const std::set<Tok> direct = sharded_fixpoint(
          p, /*shards=*/3, mode, /*sequential_engines=*/false, nullptr,
          StoreKind::Default, nullptr, /*emit_buffer=*/false);
      const std::set<Tok> buffered = sharded_fixpoint(
          p, /*shards=*/3, mode, /*sequential_engines=*/false, nullptr,
          StoreKind::Default, nullptr, /*emit_buffer=*/true);
      EXPECT_EQ(direct, want)
          << repro(seed, kExe, "EmitDifferential.ShardedBufferedMatchesDirect");
      EXPECT_EQ(buffered, direct)
          << (mode == dist::ShardedMode::Bsp ? "bsp" : "async") << ", "
          << repro(seed, kExe, "EmitDifferential.ShardedBufferedMatchesDirect");
    }
  }
}

// --- counted (multiset) schedules ------------------------------------------

// Retract-heavy waves: sign accumulation happens inside the flush's
// append_one replay, so counted annihilation must survive buffering under
// every mode and substrate.
TEST(EmitDifferential, CountedRetractWavesBuffered) {
  const std::uint64_t n = seed_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + n; ++seed) {
    const CountedCase c = make_delete_heavy_case(seed);
    const std::set<Tok> want = counted_oracle(c);
    for (const StoreKind store : {StoreKind::Default, StoreKind::Columnar}) {
      EngineOptions par;
      par.sequential = false;
      par.threads = 4;
      par.emit_buffer = true;
      EXPECT_EQ(counted_single_fixpoint(c, par, store), want)
          << to_string(store) << " parallel buffered, "
          << repro(seed, kExe, "EmitDifferential.CountedRetractWavesBuffered");
    }
    for (const dist::ShardedMode mode :
         {dist::ShardedMode::Bsp, dist::ShardedMode::Async}) {
      EXPECT_EQ(counted_sharded_fixpoint(
                    c, /*shards=*/3, mode, /*sequential_engines=*/false,
                    StoreKind::Default, /*retain=*/0, /*epoch_per_wave=*/false,
                    /*with_pk=*/false, /*emit_buffer=*/true),
                want)
          << (mode == dist::ShardedMode::Bsp ? "bsp" : "async") << ", "
          << repro(seed, kExe, "EmitDifferential.CountedRetractWavesBuffered");
    }
  }
}

// Upsert-heavy keyed waves: the kUpsertSign supersede must flush exactly
// like the direct path (last overwrite per quiescence interval wins).
TEST(EmitDifferential, UpsertWavesBuffered) {
  const std::uint64_t n = seed_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + n; ++seed) {
    const CountedCase c = make_upsert_heavy_case(seed);
    EngineOptions direct;
    direct.sequential = true;
    direct.emit_buffer = false;
    EngineOptions buffered;
    buffered.sequential = false;
    buffered.threads = 4;
    buffered.emit_buffer = true;
    EXPECT_EQ(upsert_single_fixpoint(c, buffered),
              upsert_single_fixpoint(c, direct))
        << repro(seed, kExe, "EmitDifferential.UpsertWavesBuffered");
  }
}

// Streaming-style epochs: begin_epoch() + retain(N) GC between waves, so
// flushes interleave with epoch boundaries and tuple retirement.
TEST(EmitDifferential, EpochWavesWithRetainBuffered) {
  const std::uint64_t n = seed_count();
  const std::uint64_t base = seed_base();
  for (std::uint64_t seed = base; seed < base + n; ++seed) {
    const CountedCase c = make_delete_heavy_case(seed);
    EngineOptions direct;
    direct.sequential = true;
    direct.emit_buffer = false;
    EngineOptions buffered;
    buffered.sequential = false;
    buffered.threads = 4;
    buffered.emit_buffer = true;
    const std::set<Tok> want = counted_single_fixpoint(
        c, direct, StoreKind::Default, /*retain=*/2, /*epoch_per_wave=*/true);
    EXPECT_EQ(counted_single_fixpoint(c, buffered, StoreKind::Default,
                                      /*retain=*/2, /*epoch_per_wave=*/true),
              want)
        << repro(seed, kExe, "EmitDifferential.EpochWavesWithRetainBuffered");
  }
}

// --- emit mechanics --------------------------------------------------------

// The buffered path actually engages (and surfaces its counters through
// RunReport), and the EngineOptions kill-switch routes puts back to the
// direct path.  The JSTAR_EMIT=off env lane is exercised by the CI
// forced-scalar job, which runs this whole binary with buffering disabled
// — in that lane the buffered-run counters legitimately read zero.
TEST(EmitMechanics, CountersSurfaceAndKillSwitchWorks) {
  struct Hop {
    std::int64_t n;
    auto operator<=>(const Hop&) const = default;
  };
  const bool env_on = simd::emit_env_on();
  for (const bool emit : {true, false}) {
    EngineOptions opts;
    opts.sequential = false;
    opts.threads = 2;
    opts.emit_buffer = emit;
    Engine eng(opts);
    auto& hop = eng.table(TableDecl<Hop>("Hop")
                              .orderby_lit("T")
                              .orderby_seq("n", &Hop::n)
                              .hash([](const Hop& h) {
                                return hash_fields(h.n);
                              }));
    // 64 independent chains of 201 tuples each (seed i*1000 walks to
    // i*1000 + 200), so fire phases have real width and real emit volume.
    eng.rule(hop, "step", [&](RuleCtx& ctx, const Hop& h) {
      if (h.n % 1000 < 200) hop.put(ctx, Hop{h.n + 1});
    });
    for (std::int64_t i = 0; i < 64; ++i) eng.put(hop, Hop{i * 1000});
    const RunReport r = eng.run();
    EXPECT_EQ(hop.gamma_size(), 64u * 201u) << "emit=" << emit;
    if (emit && env_on) {
      EXPECT_GT(r.emit_buffered, 0);
      EXPECT_GT(r.emit_flushes, 0);
    } else {
      EXPECT_EQ(r.emit_buffered, 0) << "emit=" << emit;
      EXPECT_EQ(r.emit_flushes, 0) << "emit=" << emit;
    }
  }
}

// Puts issued through a hand-built RuleCtx between runs (the low-level
// escape hatch) land in buffers with no fire phase behind them; the next
// run() must flush the stragglers before its first pop.
TEST(EmitMechanics, StragglerBufferFlushedAtNextRun) {
  struct Ev {
    std::int64_t n;
    auto operator<=>(const Ev&) const = default;
  };
  EngineOptions opts;
  opts.sequential = true;
  opts.emit_buffer = true;
  Engine eng(opts);
  auto& ev = eng.table(TableDecl<Ev>("Ev")
                           .orderby_lit("T")
                           .orderby_seq("n", &Ev::n)
                           .hash([](const Ev& e) { return hash_fields(e.n); }));
  eng.put(ev, Ev{1});
  eng.run();
  EXPECT_EQ(ev.gamma_size(), 1u);
  // An empty `now` marks an initial put, so this lands in the emit buffer
  // with no process_batch (and no end-of-batch flush) behind it.
  RuleCtx ctx(DeltaKey{}, /*from_table=*/-1, /*edges=*/nullptr);
  ev.put(ctx, Ev{2});
  eng.run();
  EXPECT_EQ(ev.gamma_size(), 2u);
}

}  // namespace
}  // namespace jstar::difftest
