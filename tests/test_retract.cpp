// Retractions & upserts (ROADMAP item 4): unit tests for the counted
// (multiset) Gamma semantics of core/table.h and the erase contract every
// substrate now implements.
//
//  * GammaStore::erase across all built-in substrates (tree-set,
//    skip-list, hash-set, striped-hash, flat-ordered, flat-hash,
//    columnar, epoch-window),
//  * counted-table delta correctness: presence transitions, multiplicity,
//    retract-before-insert debts, same-batch annihilation, downstream
//    cascade re-derivation, and keyed upserts displacing incumbents,
//  * the re-insert-after-retire straggler contract unified across the
//    three windowed substrates (bugfix regression),
//  * retract as a third eraser next to window retirement and index
//    sweeps: deterministic interleavings plus a parallel hammer (run
//    under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/column_store.h"
#include "core/engine.h"
#include "core/flat_store.h"
#include "core/gamma_store.h"
#include "core/window_store.h"

namespace jstar {
namespace {

struct Cell {
  std::int64_t a, b;
  auto operator<=>(const Cell&) const = default;
};
struct CellHash {
  std::size_t operator()(const Cell& c) const { return hash_fields(c.a, c.b); }
};

// --- the erase contract, uniformly over every substrate ---------------------

void check_erase_contract(GammaStore<Cell>& store) {
  SCOPED_TRACE(store.describe());
  ASSERT_TRUE(store.erasable());
  EXPECT_TRUE(store.insert({1, 1}));
  EXPECT_TRUE(store.insert({2, 2}));
  EXPECT_TRUE(store.insert({3, 3}));
  EXPECT_EQ(store.size(), 3u);

  EXPECT_TRUE(store.erase({2, 2}));
  EXPECT_FALSE(store.contains({2, 2}));
  EXPECT_EQ(store.size(), 2u);
  // Erasing what is not there reports false — the counted layer depends
  // on this to keep gamma_erased exact.
  EXPECT_FALSE(store.erase({2, 2}));
  EXPECT_FALSE(store.erase({9, 9}));
  EXPECT_EQ(store.size(), 2u);

  // No scan may deliver an erased tuple again, even if the substrate
  // defers physical removal (dead sets, tombstones, column compaction).
  std::set<Cell> seen;
  store.scan([&](const Cell& c) { seen.insert(c); });
  EXPECT_EQ(seen, (std::set<Cell>{{1, 1}, {3, 3}}));

  // Erase-then-reinsert: the tuple is fresh again.
  EXPECT_TRUE(store.insert({2, 2}));
  EXPECT_TRUE(store.contains({2, 2}));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_FALSE(store.insert({2, 2}));
}

TEST(StoreErase, EveryBuiltInSubstrateHonoursTheContract) {
  TreeSetStore<Cell> tree;
  check_erase_contract(tree);
  SkipListStore<Cell> skip;
  check_erase_contract(skip);
  HashSetStore<Cell, CellHash> hash;
  check_erase_contract(hash);
  StripedHashStore<Cell, CellHash> striped;
  check_erase_contract(striped);
  FlatOrderedStore<Cell, CellHash> flat;
  check_erase_contract(flat);
  FlatHashStore<Cell, CellHash> flat_hash;
  check_erase_contract(flat_hash);
  ColumnStore<Cell, CellHash, std::int64_t Cell::*, std::int64_t Cell::*> columnar(
      CellHash{}, &Cell::a, &Cell::b);
  check_erase_contract(columnar);
  std::int64_t clock = 0;
  EpochWindowStore<Cell, CellHash> window(
      [&clock](const Cell&) { return clock; }, 4, CellHash{},
      /*clock_epochs=*/true);
  check_erase_contract(window);
}

TEST(StoreErase, FlatOrderedEraseSpansStagedAndMergedRegions) {
  FlatOrderedStore<Cell, CellHash> store;
  // Push past the merge threshold so early tuples live in the sorted run.
  for (std::int64_t i = 0; i < 500; ++i) ASSERT_TRUE(store.insert({i, i}));
  ASSERT_GT(store.merges(), 0);
  EXPECT_TRUE(store.erase({1, 1}));     // merged region (anti-merge set)
  EXPECT_FALSE(store.contains({1, 1}));
  store.insert({1000, 1000});           // staged, unmerged
  EXPECT_TRUE(store.erase({1000, 1000}));
  EXPECT_FALSE(store.contains({1000, 1000}));
  // The dead tuple must stay dead across the next merge...
  for (std::int64_t i = 500; i < 900; ++i) ASSERT_TRUE(store.insert({i, i}));
  EXPECT_FALSE(store.contains({1, 1}));
  // ...and be insertable afresh afterwards.
  EXPECT_TRUE(store.insert({1, 1}));
  EXPECT_TRUE(store.contains({1, 1}));
}

TEST(StoreErase, FlatHashTombstonesAreReusedAndPurged) {
  FlatHashStore<Cell, CellHash> store;
  for (std::int64_t i = 0; i < 200; ++i) ASSERT_TRUE(store.insert({i, 0}));
  for (std::int64_t i = 0; i < 200; i += 2) {
    ASSERT_TRUE(store.erase({i, 0}));
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_GT(store.tombstones(), 0);
  // Probes must step over tombstones to find survivors.
  for (std::int64_t i = 1; i < 200; i += 2) {
    EXPECT_TRUE(store.contains({i, 0})) << i;
  }
  // Reinserting an erased tuple reuses its tombstone slot.
  EXPECT_TRUE(store.insert({0, 0}));
  EXPECT_TRUE(store.contains({0, 0}));
  // Churn enough for the load factor (live + tombstones) to force a
  // purge rebuild; everything live must survive it.
  for (std::int64_t i = 1000; i < 3000; ++i) {
    ASSERT_TRUE(store.insert({i, 0}));
    ASSERT_TRUE(store.erase({i, 0}));
  }
  for (std::int64_t i = 1; i < 200; i += 2) {
    EXPECT_TRUE(store.contains({i, 0})) << i;
  }
}

// --- counted tables: presence transitions & cascades ------------------------

struct Fact {
  std::int64_t key, gen;
  auto operator<=>(const Fact&) const = default;
};

TableDecl<Fact> fact_decl(const std::string& name) {
  return TableDecl<Fact>(name)
      .orderby_lit(name)
      .orderby_seq("gen", &Fact::gen)
      .hash([](const Fact& f) { return hash_fields(f.key, f.gen); })
      .counted();
}

/// One counted chain Fact -> Derived (gen + 1), with insert/retract
/// observation hooks on both tables.
struct Chain {
  Engine eng;
  Table<Fact>* facts = nullptr;
  Table<Fact>* derived = nullptr;
  std::vector<Fact> fact_inserts, fact_retracts;
  std::vector<Fact> derived_inserts, derived_retracts;

  explicit Chain(const EngineOptions& opts) : eng(opts) {
    facts = &eng.table(
        fact_decl("Fact")
            .effect([this](const Fact& f) { fact_inserts.push_back(f); })
            .retract_effect(
                [this](const Fact& f) { fact_retracts.push_back(f); }));
    derived = &eng.table(
        fact_decl("Derived")
            .effect([this](const Fact& f) { derived_inserts.push_back(f); })
            .retract_effect(
                [this](const Fact& f) { derived_retracts.push_back(f); }));
    eng.order({"Fact", "Derived"});
    eng.rule(*facts, "derive", [this](RuleCtx& ctx, const Fact& f) {
      derived->put(ctx, Fact{f.key, f.gen + 1});
    });
  }

  std::set<Fact> live_facts() const { return scan_set(*facts); }
  std::set<Fact> live_derived() const { return scan_set(*derived); }

  static std::set<Fact> scan_set(const Table<Fact>& t) {
    std::set<Fact> out;
    t.scan([&](const Fact& f) { out.insert(f); });
    return out;
  }
};

EngineOptions seq_opts() {
  EngineOptions o;
  o.sequential = true;
  return o;
}

TEST(CountedTable, RetractRemovesTupleAndItsDownstreamCone) {
  Chain c(seq_opts());
  c.eng.put(*c.facts, {1, 0});
  c.eng.run();
  EXPECT_EQ(c.live_facts(), (std::set<Fact>{{1, 0}}));
  EXPECT_EQ(c.live_derived(), (std::set<Fact>{{1, 1}}));

  c.eng.retract(*c.facts, {1, 0});
  c.eng.run();
  EXPECT_TRUE(c.live_facts().empty());
  EXPECT_TRUE(c.live_derived().empty());
  EXPECT_EQ(c.fact_retracts, (std::vector<Fact>{{1, 0}}));
  EXPECT_EQ(c.derived_retracts, (std::vector<Fact>{{1, 1}}));
  EXPECT_EQ(c.facts->stats().gamma_erased.load(), 1);
  EXPECT_EQ(c.derived->stats().gamma_erased.load(), 1);
}

TEST(CountedTable, MultiplicityShieldsPresenceUntilCountReachesZero) {
  Chain c(seq_opts());
  c.eng.put(*c.facts, {1, 0});
  c.eng.run();
  c.eng.put(*c.facts, {1, 0});  // second insert: count 2, no re-fire
  c.eng.run();
  EXPECT_EQ(c.fact_inserts.size(), 1u);
  EXPECT_EQ(c.facts->stats().gamma_dups.load(), 1);

  c.eng.retract(*c.facts, {1, 0});  // count 2 -> 1: still present
  c.eng.run();
  EXPECT_EQ(c.live_facts(), (std::set<Fact>{{1, 0}}));
  EXPECT_EQ(c.live_derived(), (std::set<Fact>{{1, 1}}));
  EXPECT_TRUE(c.fact_retracts.empty());

  c.eng.retract(*c.facts, {1, 0});  // count 1 -> 0: gone, cascade fires
  c.eng.run();
  EXPECT_TRUE(c.live_facts().empty());
  EXPECT_TRUE(c.live_derived().empty());
  EXPECT_EQ(c.fact_retracts.size(), 1u);
}

TEST(CountedTable, SharedDerivationKeepsChildUntilLastParentGoes) {
  // Two parents derive the same child: the child's count is 2, so
  // retracting one parent must NOT retract the child.
  Engine eng(seq_opts());
  std::vector<Fact> child_retracts;
  auto& parents = eng.table(fact_decl("Fact"));
  auto& child = eng.table(fact_decl("Derived").retract_effect(
      [&child_retracts](const Fact& f) { child_retracts.push_back(f); }));
  eng.order({"Fact", "Derived"});
  eng.rule(parents, "derive_shared", [&child](RuleCtx& ctx, const Fact& f) {
    child.put(ctx, Fact{7, f.gen + 1});  // every parent derives {7, 1}
  });
  eng.put(parents, {1, 0});
  eng.put(parents, {2, 0});
  eng.run();
  EXPECT_TRUE(child.contains({7, 1}));

  eng.retract(parents, {1, 0});  // child count 2 -> 1
  eng.run();
  EXPECT_TRUE(child.contains({7, 1}));
  EXPECT_TRUE(child_retracts.empty());

  eng.retract(parents, {2, 0});  // child count 1 -> 0
  eng.run();
  EXPECT_FALSE(child.contains({7, 1}));
  EXPECT_EQ(child_retracts, (std::vector<Fact>{{7, 1}}));
}

TEST(CountedTable, RetractBeforeInsertRecordsDebtThatAnnihilates) {
  Chain c(seq_opts());
  c.eng.retract(*c.facts, {1, 0});  // nothing there yet: debt (count -1)
  c.eng.run();
  EXPECT_TRUE(c.live_facts().empty());
  EXPECT_TRUE(c.fact_retracts.empty());  // no presence transition
  EXPECT_EQ(c.facts->stats().retract_debts.load(), 1);

  c.eng.put(*c.facts, {1, 0});  // pays the debt: count -1 -> 0, no insert
  c.eng.run();
  EXPECT_TRUE(c.live_facts().empty());
  EXPECT_TRUE(c.live_derived().empty());
  EXPECT_TRUE(c.fact_inserts.empty());
  EXPECT_EQ(c.facts->stats().annihilated.load(), 1);

  c.eng.put(*c.facts, {1, 0});  // debt paid: a normal insert again
  c.eng.run();
  EXPECT_EQ(c.live_facts(), (std::set<Fact>{{1, 0}}));
  EXPECT_EQ(c.live_derived(), (std::set<Fact>{{1, 1}}));
}

TEST(CountedTable, SameBatchInsertRetractPairAnnihilatesSilently) {
  Chain c(seq_opts());
  c.eng.put(*c.facts, {1, 0});
  c.eng.retract(*c.facts, {1, 0});  // same Delta batch: signs sum to 0
  c.eng.run();
  EXPECT_TRUE(c.live_facts().empty());
  EXPECT_TRUE(c.live_derived().empty());
  EXPECT_TRUE(c.fact_inserts.empty());   // never became present
  EXPECT_TRUE(c.fact_retracts.empty());  // never became absent either
}

TEST(CountedTable, ReinsertAfterRetractRederivesTheCone) {
  Chain c(seq_opts());
  c.eng.put(*c.facts, {1, 0});
  c.eng.run();
  c.eng.retract(*c.facts, {1, 0});
  c.eng.run();
  c.eng.put(*c.facts, {1, 0});
  c.eng.run();
  EXPECT_EQ(c.live_facts(), (std::set<Fact>{{1, 0}}));
  EXPECT_EQ(c.live_derived(), (std::set<Fact>{{1, 1}}));
  EXPECT_EQ(c.fact_inserts.size(), 2u);
  EXPECT_EQ(c.derived_inserts.size(), 2u);
  EXPECT_EQ(c.derived_retracts.size(), 1u);
}

TEST(CountedTable, DeepConeRetractsTransitively) {
  // Fact{key, 0} derives gens 1..4; retracting the root empties them all.
  Engine eng(seq_opts());
  auto& facts = eng.table(fact_decl("Fact"));
  eng.rule(facts, "grow", [&facts](RuleCtx& ctx, const Fact& f) {
    if (f.gen < 4) facts.put(ctx, Fact{f.key, f.gen + 1});
  });
  eng.put(facts, {1, 0});
  eng.run();
  EXPECT_EQ(facts.gamma_size(), 5u);
  eng.retract(facts, {1, 0});
  eng.run();
  EXPECT_EQ(facts.gamma_size(), 0u);
  EXPECT_EQ(facts.stats().gamma_erased.load(), 5);
}

// --- counted semantics across the parallel engine and every substrate ------

enum class Sub { Default, FlatOrdered, FlatHash, Columnar };

TableDecl<Fact> fact_decl_sub(const std::string& name, Sub sub) {
  TableDecl<Fact> d = fact_decl(name);
  switch (sub) {
    case Sub::Default: break;
    case Sub::FlatOrdered: d.flat_store(); break;
    case Sub::FlatHash: d.flat_hash_store(); break;
    case Sub::Columnar: d.columns(&Fact::key, &Fact::gen); break;
  }
  return d;
}

TEST(CountedTable, CascadeCorrectAcrossParallelEngineAndSubstrates) {
  for (const bool sequential : {true, false}) {
    for (const Sub sub :
         {Sub::Default, Sub::FlatOrdered, Sub::FlatHash, Sub::Columnar}) {
      SCOPED_TRACE((sequential ? "sequential " : "parallel ") +
                   std::to_string(static_cast<int>(sub)));
      EngineOptions opts;
      opts.sequential = sequential;
      opts.threads = 3;
      Engine eng(opts);
      auto& facts = eng.table(fact_decl_sub("Fact", sub));
      eng.rule(facts, "grow", [&facts](RuleCtx& ctx, const Fact& f) {
        if (f.gen < 3) facts.put(ctx, Fact{f.key, f.gen + 1});
      });
      for (std::int64_t k = 0; k < 16; ++k) eng.put(facts, {k, 0});
      eng.run();
      EXPECT_EQ(facts.gamma_size(), 64u);
      // Retract every even root; their cones must vanish, odd cones stay.
      for (std::int64_t k = 0; k < 16; k += 2) eng.retract(facts, {k, 0});
      eng.run();
      EXPECT_EQ(facts.gamma_size(), 32u);
      std::set<Fact> live = Chain::scan_set(facts);
      for (const Fact& f : live) EXPECT_EQ(f.key % 2, 1) << f.key;
      EXPECT_EQ(live.size(), 32u);
      EXPECT_EQ(facts.stats().gamma_erased.load(), 32);
    }
  }
}

// --- upserts ----------------------------------------------------------------

struct Row {
  std::int64_t id, val;
  auto operator<=>(const Row&) const = default;
};

TableDecl<Row> row_decl(const std::string& name) {
  return TableDecl<Row>(name)
      .orderby_lit(name)
      .hash([](const Row& r) { return hash_fields(r.id, r.val); })
      .counted();
}

TEST(CountedTable, UpsertDisplacesIncumbentAndRetractsItsCone) {
  Engine eng(seq_opts());
  std::vector<Row> out_retracts;
  auto& rows = eng.table(row_decl("Row").primary_key(&Row::id));
  auto& out = eng.table(row_decl("Out").retract_effect(
      [&out_retracts](const Row& r) { out_retracts.push_back(r); }));
  eng.order({"Row", "Out"});
  eng.rule(rows, "project", [&out](RuleCtx& ctx, const Row& r) {
    out.put(ctx, Row{r.id, r.val * 10});
  });

  eng.put(rows, {1, 5});
  eng.run();
  EXPECT_EQ(rows.get_unique(1), (Row{1, 5}));
  EXPECT_TRUE(out.contains({1, 50}));

  eng.upsert(rows, {1, 6});
  eng.run();
  EXPECT_EQ(rows.get_unique(1), (Row{1, 6}));
  EXPECT_FALSE(rows.contains({1, 5}));
  EXPECT_FALSE(out.contains({1, 50}));  // displaced cone retracted...
  EXPECT_TRUE(out.contains({1, 60}));   // ...replacement cone derived
  EXPECT_EQ(out_retracts, (std::vector<Row>{{1, 50}}));
  EXPECT_EQ(rows.stats().upserts.load(), 1);
  EXPECT_EQ(rows.stats().upsert_replaced.load(), 1);
}

TEST(CountedTable, UpsertIntoEmptyKeyIsAPlainInsert) {
  Engine eng(seq_opts());
  auto& rows = eng.table(row_decl("Row").primary_key(&Row::id));
  eng.upsert(rows, {4, 44});
  eng.run();
  EXPECT_EQ(rows.get_unique(4), (Row{4, 44}));
  EXPECT_EQ(rows.stats().upsert_replaced.load(), 0);
}

TEST(CountedTable, UpsertOfTheIncumbentItselfIsANoOp) {
  Engine eng(seq_opts());
  std::vector<Row> inserts;
  auto& rows = eng.table(row_decl("Row").primary_key(&Row::id).effect(
      [&inserts](const Row& r) { inserts.push_back(r); }));
  eng.put(rows, {1, 5});
  eng.run();
  eng.upsert(rows, {1, 5});
  eng.run();
  EXPECT_EQ(rows.get_unique(1), (Row{1, 5}));
  EXPECT_EQ(inserts.size(), 1u);  // no re-fire
  EXPECT_EQ(rows.stats().upsert_replaced.load(), 0);
}

TEST(CountedTable, UpsertForceClearsIncumbentMultiplicity) {
  // The incumbent was inserted twice (count 2); an upsert still removes
  // it outright — keyed overwrite beats multiplicity.
  Engine eng(seq_opts());
  auto& rows = eng.table(row_decl("Row").primary_key(&Row::id));
  eng.put(rows, {1, 5});
  eng.run();
  eng.put(rows, {1, 5});
  eng.run();
  eng.upsert(rows, {1, 6});
  eng.run();
  EXPECT_EQ(rows.get_unique(1), (Row{1, 6}));
  EXPECT_FALSE(rows.contains({1, 5}));
  // And the old multiplicity is forgotten: retracting the new row once
  // empties the key.
  eng.retract(rows, {1, 6});
  eng.run();
  EXPECT_EQ(rows.get_unique(1), std::nullopt);
}

// --- windowed straggler semantics unified across substrates (bugfix) --------

// Drives the three windowed substrates through the same script with a
// shared epoch clock and asserts identical observable behaviour: normal
// retention, insert-driven retirement, the dropped-but-fresh straggler
// contract when an insert observes a stale clock, and re-insert after
// retirement.  Before the fix, flat/columnar windows only retired on
// retire_up_to() and stored stragglers the bucketed store would drop.
TEST(CrossSubstrateWindow, StragglerSemanticsAgree) {
  constexpr std::int64_t kKeep = 2;
  std::atomic<std::int64_t> clock{0};
  // EpochWindowStore reads the same atomic through its epoch_of functor.
  EpochWindowStore<Cell, CellHash> window(
      [&clock](const Cell&) { return clock.load(); }, kKeep, CellHash{},
      /*clock_epochs=*/true);
  FlatOrderedStore<Cell, CellHash> flat(&clock, CellHash{}, kKeep);
  ColumnStore<Cell, CellHash, std::int64_t Cell::*, std::int64_t Cell::*> columnar(
      &clock, kKeep, CellHash{}, &Cell::a, &Cell::b);
  std::vector<GammaStore<Cell>*> stores{&window, &flat, &columnar};

  for (GammaStore<Cell>* s : stores) {
    SCOPED_TRACE(s->describe());
    clock.store(1);
    EXPECT_TRUE(s->insert({1, 0}));
    clock.store(3);
    EXPECT_TRUE(s->insert({2, 0}));
    // Insert-driven retirement: epoch 4 pushes {1,0} (epoch 1 <= 4 - 2)
    // out of the window with no retire_up_to() call at all; {2,0} at
    // epoch 3 survives.
    clock.store(4);
    EXPECT_TRUE(s->insert({4, 0}));
    EXPECT_FALSE(s->contains({1, 0}));
    EXPECT_TRUE(s->contains({2, 0}));
    EXPECT_TRUE(s->contains({4, 0}));
    EXPECT_EQ(s->size(), 2u);

    // Straggler: an insert that observes a stale clock value behind the
    // ratcheted window must be dropped-but-fresh (returns true so rules
    // fire once, stores nothing) — identically everywhere.
    clock.store(2);
    EXPECT_TRUE(s->insert({9, 0}));
    EXPECT_FALSE(s->contains({9, 0}));
    EXPECT_EQ(s->size(), 2u);

    // Re-insert after retirement: {1,0} was retired, so it is fresh
    // again at the current epoch and lives a full new lifetime.
    clock.store(4);
    EXPECT_TRUE(s->insert({1, 0}));
    EXPECT_TRUE(s->contains({1, 0}));
    EXPECT_FALSE(s->insert({1, 0}));  // duplicate within the live window
    EXPECT_EQ(s->size(), 3u);
  }
}

TEST(CrossSubstrateWindow, RetireUpToRatchetsTheStragglerCutoffEverywhere) {
  constexpr std::int64_t kKeep = 2;
  std::atomic<std::int64_t> clock{0};
  EpochWindowStore<Cell, CellHash> window(
      [&clock](const Cell&) { return clock.load(); }, kKeep, CellHash{},
      /*clock_epochs=*/true);
  FlatOrderedStore<Cell, CellHash> flat(&clock, CellHash{}, kKeep);
  ColumnStore<Cell, CellHash, std::int64_t Cell::*, std::int64_t Cell::*> columnar(
      &clock, kKeep, CellHash{}, &Cell::a, &Cell::b);
  std::vector<GammaStore<Cell>*> stores{&window, &flat, &columnar};
  std::vector<RetiringStore<Cell>*> retiring{&window, &flat, &columnar};

  for (std::size_t i = 0; i < stores.size(); ++i) {
    GammaStore<Cell>* s = stores[i];
    SCOPED_TRACE(s->describe());
    clock.store(3);
    EXPECT_TRUE(s->insert({3, 0}));
    // The explicit GC entry point (begin_epoch) retires through epoch 3
    // and must ratchet the straggler cutoff in every substrate.
    retiring[i]->retire_up_to(3);
    EXPECT_FALSE(s->contains({3, 0}));
    EXPECT_EQ(s->size(), 0u);
    clock.store(3);
    EXPECT_TRUE(s->insert({5, 0}));  // stale epoch: dropped-but-fresh
    EXPECT_FALSE(s->contains({5, 0}));
    clock.store(5);
    EXPECT_TRUE(s->insert({5, 0}));  // live epoch: stored
    EXPECT_TRUE(s->contains({5, 0}));
  }
}

// --- retract as a third eraser next to retention & index sweeps -------------

struct Item {
  std::int64_t cat, n;
  auto operator<=>(const Item&) const = default;
};

TableDecl<Item> item_decl() {
  return TableDecl<Item>("Item")
      .orderby_lit("Item")
      .hash([](const Item& i) { return hash_fields(i.cat, i.n); })
      .counted()
      .retain(2);
}

std::set<Item> index_query(const Table<Item>& t, std::int64_t cat) {
  std::set<Item> out;
  t.query(query::eq(&Item::cat, cat), [&](const Item& i) { out.insert(i); });
  return out;
}

std::set<Item> scan_filter(const Table<Item>& t, std::int64_t cat) {
  std::set<Item> out;
  t.scan([&](const Item& i) {
    if (i.cat == cat) out.insert(i);
  });
  return out;
}

// Deterministic interleaving 1: the retraction is queued, then window
// retirement erases the tuple (store + index + count) first, then the run
// processes the retract — which must find nothing, record a debt, and
// leave the secondary index consistent with the store.
TEST(RetractVsRetirement, RetirementFirstThenRetractBecomesDebt) {
  Engine eng(seq_opts());
  auto& items = eng.table(item_decl());
  items.add_index(&Item::cat);
  eng.put(items, {1, 10});
  eng.run();
  ASSERT_TRUE(items.contains({1, 10}));

  eng.retract(items, {1, 10});      // queued for the next run...
  eng.begin_epoch();                // epoch 1
  eng.begin_epoch();                // epoch 2
  eng.begin_epoch();                // epoch 3: {1,10} falls out, count
                                    // cleared by the retire listener
  ASSERT_FALSE(items.contains({1, 10}));
  eng.run();                        // ...and lands after retirement
  EXPECT_FALSE(items.contains({1, 10}));
  EXPECT_EQ(items.stats().retract_debts.load(), 1);
  EXPECT_EQ(items.stats().gamma_erased.load(), 0);  // retirement, not erase
  EXPECT_EQ(index_query(items, 1), scan_filter(items, 1));
  EXPECT_TRUE(index_query(items, 1).empty());

  // Window retirement forgot the multiplicity, so the late retract is a
  // fresh debt: the next insert annihilates against it.
  eng.put(items, {1, 10});
  eng.run();
  EXPECT_FALSE(items.contains({1, 10}));
  EXPECT_EQ(items.stats().annihilated.load(), 1);
}

// Deterministic interleaving 2: the retract wins the race — processed
// before the epoch boundary — so retirement must find the tuple already
// gone and sweep nothing twice.
TEST(RetractVsRetirement, RetractFirstThenRetirementSweepsNothing) {
  Engine eng(seq_opts());
  auto& items = eng.table(item_decl());
  items.add_index(&Item::cat);
  eng.put(items, {1, 10});
  eng.put(items, {1, 11});
  eng.run();

  eng.retract(items, {1, 10});
  eng.run();  // erased via the retract path
  EXPECT_EQ(items.stats().gamma_erased.load(), 1);
  const std::int64_t retired_before = items.stats().gamma_retired.load();

  eng.begin_epoch();
  eng.begin_epoch();
  eng.begin_epoch();  // window sweeps {1,11} but must not re-sweep {1,10}
  EXPECT_EQ(items.stats().gamma_retired.load() - retired_before, 1);
  EXPECT_TRUE(index_query(items, 1).empty());
  EXPECT_EQ(index_query(items, 1), scan_filter(items, 1));
}

// The parallel hammer (run under TSan in CI): a windowed, indexed,
// counted table takes interleaved insert/retract waves from a parallel
// engine across epoch boundaries, with rule-driven queries probing the
// index mid-run.  Retraction (phase A), window retirement (epoch open)
// and the index sweep listener all erase concurrently with probe
// revalidation — the three-eraser surface of the bugfix.  Invariant at
// every quiescent point: index-routed queries equal filtered scans.
TEST(RetractVsRetirement, ParallelChurnKeepsIndexAndStoreCoherent) {
  EngineOptions opts;
  opts.sequential = false;
  opts.threads = 4;
  Engine eng(opts);
  std::atomic<std::int64_t> probed{0};
  auto& items = eng.table(item_decl());
  items.add_index(&Item::cat);
  auto& driver = eng.table(TableDecl<Fact>("Drive")
                               .orderby_lit("Drive")
                               .orderby_seq("gen", &Fact::gen)
                               .hash([](const Fact& f) {
                                 return hash_fields(f.key, f.gen);
                               }));
  eng.order({"Item", "Drive"});
  // Each driver tuple probes the index while phase-B fires race the
  // store's internal state — revalidation must never deliver a tuple a
  // concurrent eraser removed.
  eng.rule(driver, "probe", [&items, &probed](RuleCtx&, const Fact& f) {
    items.query(query::eq(&Item::cat, f.key % 8), [&probed](const Item&) {
      probed.fetch_add(1, std::memory_order_relaxed);
    });
  });

  for (std::int64_t e = 1; e <= 8; ++e) {
    eng.begin_epoch();
    for (std::int64_t n = 0; n < 64; ++n) {
      eng.put(items, {n % 8, e * 1000 + n});
    }
    if (e > 1) {
      // Retract half of the previous epoch's wave — some already behind
      // the window, becoming debts.
      for (std::int64_t n = 0; n < 64; n += 2) {
        eng.retract(items, {n % 8, (e - 1) * 1000 + n});
      }
    }
    for (std::int64_t k = 0; k < 8; ++k) eng.put(driver, {k, 0});
    eng.run();
    for (std::int64_t cat = 0; cat < 8; ++cat) {
      ASSERT_EQ(index_query(items, cat), scan_filter(items, cat))
          << "epoch " << e << " cat " << cat;
    }
  }
  EXPECT_GT(probed.load(), 0);
  EXPECT_GT(items.stats().gamma_erased.load(), 0);
  EXPECT_GT(items.stats().gamma_retired.load(), 0);
}

// --- configuration guard rails ---------------------------------------------

TEST(CountedTable, RetractOnUncountedTableIsRefused) {
  Engine eng(seq_opts());
  auto& facts = eng.table(TableDecl<Fact>("Plain")
                              .orderby_lit("Plain")
                              .orderby_seq("gen", &Fact::gen)
                              .hash([](const Fact& f) {
                                return hash_fields(f.key, f.gen);
                              }));
  eng.prepare();
  EXPECT_THROW(eng.retract(facts, {1, 0}), std::logic_error);
}

TEST(CountedTable, UpsertWithoutPrimaryKeyIsRefused) {
  Engine eng(seq_opts());
  auto& facts = eng.table(fact_decl("Fact"));
  eng.prepare();
  EXPECT_THROW(eng.upsert(facts, {1, 0}), std::logic_error);
}

TEST(CountedTable, NoGammaCombinationIsRefused) {
  EngineOptions opts = seq_opts();
  opts.no_gamma.insert("Fact");
  Engine eng(opts);
  eng.table(fact_decl("Fact"));
  EXPECT_THROW(eng.prepare(), std::logic_error);
}

TEST(CountedTable, NoDeltaCombinationIsRefused) {
  EngineOptions opts = seq_opts();
  opts.no_delta.insert("Fact");
  Engine eng(opts);
  eng.table(fact_decl("Fact"));
  EXPECT_THROW(eng.prepare(), std::logic_error);
}

}  // namespace
}  // namespace jstar
