// The flat-substrate differential sweep (tests/differential.h): the §6.4
// flat array-backed stores must compute exactly the fixpoints the
// node-based defaults compute, under every schedule this repo has.
//
// Two randomized sweeps:
//  * a deterministic batch sweep — the same random program runs three
//    times, on the default tree/skip-list stores, on a flat substrate
//    and on the columnar (SoA) substrate, across sequential /
//    BSP-sharded / async-sharded schedules with the seed tuples split
//    into engine-epoch waves and an optional retain(N) window.  Epoch
//    assignment only advances between runs, so retirement is
//    schedule-independent and the final Gamma databases must match tuple
//    for tuple — including after in-place array/column compaction;
//  * a streaming sweep — flat-store tables behind
//    ShardedStreamingEngine's epoch loop, checking routed == scanned per
//    shard and the exact oracle fixpoint when no window is set.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/simd.h"
#include "differential.h"
#include "reduce/reducers.h"
#include "stream/streaming.h"

namespace jstar {
namespace {

using difftest::Program;
using difftest::StoreKind;
using difftest::Tok;

/// Per-seed configuration drawn from the seed, walking the whole
/// (schedule × shards × engine × store × retention × indexes) matrix.
struct SweepConfig {
  int exec = 0;  // 0 = single sequential engine, 1 = BSP, 2 = async
  int shards = 1;
  bool sequential_engines = true;
  StoreKind store = StoreKind::FlatOrdered;
  std::int64_t retain = 0;  // 0 = keep everything
  bool indexes = false;     // declare hash + range indexes on Tok
};

SweepConfig config_for(std::uint64_t seed) {
  SplitMix64 rng(seed ^ 0xf1a7f1a7u);
  SweepConfig c;
  c.exec = static_cast<int>(rng.next_below(3));
  c.shards = 1 + static_cast<int>(rng.next_below(3));  // 1..3
  c.sequential_engines = rng.next_below(2) == 0;
  c.store = rng.next_below(2) == 0 ? StoreKind::FlatOrdered
                                   : StoreKind::FlatHash;
  // retain(N) only rides the ordered flat substrate here: the flat hash
  // preset documents its fallback to the bucketed window (covered by
  // unit tests), and this sweep wants the in-place compaction path hot.
  c.retain = (c.store == StoreKind::FlatOrdered && rng.next_below(2) == 0)
                 ? 1 + static_cast<std::int64_t>(rng.next_below(3))  // 1..3
                 : 0;
  c.indexes = rng.next_below(2) == 0;
  return c;
}

TableDecl<Tok> decl_for(const SweepConfig& cfg, StoreKind store) {
  TableDecl<Tok> decl = difftest::tok_decl(store);
  if (cfg.retain > 0) decl.retain(cfg.retain);
  return decl;
}

void declare_indexes(Table<Tok>& toks, const SweepConfig& cfg) {
  if (!cfg.indexes) return;
  toks.add_index(&Tok::key);
  toks.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return v.size() == 1 ? Tok{v[0], INT64_MIN} : Tok{v[0], v[1]};
      },
      &Tok::key, &Tok::gen);
}

/// Routed query shapes vs the residual-scan truth on one table.
bool routed_equals_scan(Table<Tok>& toks, const Program& p,
                        std::string* why) {
  const auto check = [&](const query::Pred<Tok>& pred,
                         const std::string& label) {
    std::vector<Tok> via_plan, via_scan;
    toks.query(pred, [&](const Tok& t) { via_plan.push_back(t); });
    toks.scan([&](const Tok& t) {
      if (pred(t)) via_scan.push_back(t);
    });
    std::sort(via_plan.begin(), via_plan.end());
    std::sort(via_scan.begin(), via_scan.end());
    if (via_plan != via_scan) {
      *why = label + ": routed " + std::to_string(via_plan.size()) +
             " tuples, scan " + std::to_string(via_scan.size());
      return false;
    }
    return true;
  };
  for (std::int64_t k = 0; k < p.keys; ++k) {
    if (!check(query::eq(&Tok::key, k), "eq(key)")) return false;
    if (!check(query::eq(&Tok::key, k) && query::ge(&Tok::gen, 2),
               "eq(key) && ge(gen)")) {
      return false;
    }
  }
  return check(query::between(&Tok::key, std::int64_t{0}, p.keys / 2 + 1),
               "between(key)");
}

/// Aggregate shapes vs the scan truth on one table: on the columnar
/// substrate these compile to per-column kernels (count / gather / argmin)
/// that never materialise tuples, so they are pinned against the
/// tuple-at-a-time answers on every store kind.
bool aggregates_equal_scan(Table<Tok>& toks, const Program& p,
                           std::string* why) {
  for (std::int64_t k = 0; k < p.keys; k += 3) {
    const auto pred = query::eq(&Tok::key, k) && query::ge(&Tok::gen, 1);
    std::int64_t n = 0, sum = 0;
    std::optional<Tok> least;
    toks.scan([&](const Tok& t) {
      if (!pred(t)) return;
      ++n;
      sum += t.gen;
      if (!least || t.gen < least->gen) least = t;
    });
    if (toks.count_if(pred) != n) {
      *why = "count_if(key=" + std::to_string(k) + ")";
      return false;
    }
    if (toks.fold(pred, &Tok::gen, reduce::Sum<std::int64_t>{}).value() !=
        sum) {
      *why = "fold(gen, key=" + std::to_string(k) + ")";
      return false;
    }
    if (toks.min_by(pred, &Tok::gen) != least) {
      *why = "min_by(gen, key=" + std::to_string(k) + ")";
      return false;
    }
  }
  return true;
}

struct RunOut {
  std::set<Tok> tuples;
  std::int64_t gamma_retired = 0;
  bool routed_ok = true;
  std::string why;
};

/// Runs the program under cfg with the given store kind, one engine
/// epoch per seed tuple (so retain(N) windows retire between derivation
/// waves), and returns the final Gamma contents.
RunOut run_config(const Program& p, const SweepConfig& cfg, StoreKind store) {
  RunOut out;
  EngineOptions eopts;
  eopts.sequential = cfg.exec == 0 ? true : cfg.sequential_engines;
  eopts.threads = 2;

  if (cfg.exec == 0) {
    Engine eng(eopts);
    auto& toks = eng.table(decl_for(cfg, store));
    declare_indexes(toks, cfg);
    difftest::add_rules(eng, toks, p, [&toks](RuleCtx& ctx, const Tok& t) {
      toks.put(ctx, t);
    });
    for (std::size_t i = 0; i < p.seeds.size(); ++i) {
      if (i > 0) eng.begin_epoch();
      eng.put(toks, p.seeds[i]);
      eng.run();
    }
    toks.scan([&](const Tok& t) { out.tuples.insert(t); });
    out.gamma_retired = toks.stats().gamma_retired.load();
    if (cfg.indexes) out.routed_ok = routed_equals_scan(toks, p, &out.why);
    if (out.routed_ok) out.routed_ok = aggregates_equal_scan(toks, p, &out.why);
    return out;
  }

  dist::ShardedOptions sopts;
  sopts.mode = cfg.exec == 1 ? dist::ShardedMode::Bsp
                             : dist::ShardedMode::Async;
  std::vector<Table<Tok>*> tables(static_cast<std::size_t>(cfg.shards));
  dist::ShardedEngine<Tok> cluster(
      cfg.shards, eopts, sopts,
      [&p, &cfg, &tables, store](int shard, Engine& eng,
                                 dist::Sender<Tok>& sender) {
        auto& toks = eng.table(decl_for(cfg, store));
        declare_indexes(toks, cfg);
        tables[static_cast<std::size_t>(shard)] = &toks;
        difftest::add_rules(
            eng, toks, p,
            [&sender, shards = cfg.shards](RuleCtx&, const Tok& t) {
              sender.send(dist::partition_of(t.key, shards), t);
            });
        return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
      });
  for (std::size_t i = 0; i < p.seeds.size(); ++i) {
    if (i > 0) cluster.begin_epoch();
    cluster.seed(dist::partition_of(p.seeds[i].key, cfg.shards), p.seeds[i]);
    (void)cluster.run();
  }
  for (int s = 0; s < cfg.shards; ++s) {
    Table<Tok>& toks = *tables[static_cast<std::size_t>(s)];
    toks.scan([&](const Tok& t) {
      EXPECT_EQ(dist::partition_of(t.key, cfg.shards), s)
          << "tuple (" << t.key << "," << t.gen << ") on a non-owner shard";
      out.tuples.insert(t);
    });
    if (cfg.indexes && out.routed_ok) {
      out.routed_ok = routed_equals_scan(toks, p, &out.why);
    }
    if (out.routed_ok) {
      out.routed_ok = aggregates_equal_scan(toks, p, &out.why);
    }
  }
  out.gamma_retired = cluster.query_stats().gamma_retired;
  return out;
}

TEST(FlatDifferential, FlatAndColumnarEqualDefaultAcrossSchedules) {
  const std::uint64_t seeds = difftest::seed_count(200);
  const std::uint64_t base = difftest::seed_base();
  std::int64_t swept_runs = 0;       // runs where retention actually fired
  std::int64_t flat_hash_runs = 0;   // flat-hash configurations exercised
  for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
    const Program p = difftest::random_program(seed);
    const SweepConfig cfg = config_for(seed);
    const std::string repro =
        difftest::repro(seed, "test_flat_differential",
                        "FlatDifferential.*");

    // Three-way: one flat substrate (ordered or hash, per the seed), the
    // columnar substrate, and the node-based default — same program, same
    // schedule, same epoch waves and window.
    const RunOut flat = run_config(p, cfg, cfg.store);
    const RunOut col = run_config(p, cfg, StoreKind::Columnar);
    const RunOut dflt = run_config(p, cfg, StoreKind::Default);

    // The tentpole claim: swapping the Gamma substrate cannot change the
    // program's meaning — the stored sets match tuple for tuple, with
    // and without windows having compacted the flat arrays/columns.
    ASSERT_EQ(flat.tuples, dflt.tuples)
        << difftest::to_string(cfg.store) << " vs default, exec "
        << cfg.exec << ", retain " << cfg.retain << ", " << repro;
    ASSERT_EQ(col.tuples, dflt.tuples)
        << "columnar vs default, exec " << cfg.exec << ", retain "
        << cfg.retain << ", " << repro;
    ASSERT_TRUE(flat.routed_ok) << flat.why << ", " << repro;
    ASSERT_TRUE(col.routed_ok) << col.why << ", columnar, " << repro;
    ASSERT_TRUE(dflt.routed_ok) << dflt.why << ", " << repro;

    // Identical retirement: epoch tagging only advances between runs, so
    // the in-place compaction must drop exactly what the bucketed window
    // drops.
    ASSERT_EQ(flat.gamma_retired, dflt.gamma_retired) << repro;
    ASSERT_EQ(col.gamma_retired, dflt.gamma_retired) << repro;
    if (flat.gamma_retired > 0) ++swept_runs;
    if (cfg.store == StoreKind::FlatHash) ++flat_hash_runs;

    // Without retention all must equal the engine-free oracle exactly.
    if (cfg.retain == 0) {
      ASSERT_EQ(flat.tuples, difftest::oracle_fixpoint(p)) << repro;
    }
  }
  // The sweep must have exercised the interesting paths.
  EXPECT_GT(swept_runs, 0);
  EXPECT_GT(flat_hash_runs, 0);
}

// Flat-store tables behind the streaming epoch loop: multi-producer
// ingestion, bounded epoch slices, retain(N) windows — routed and
// scanned queries agree on whatever each shard retains, and with no
// window the cluster still computes the exact batch fixpoint.
TEST(FlatDifferential, FlatStoresUnderStreamingEpochs) {
  const std::uint64_t seeds = difftest::seed_count(200);
  const std::uint64_t base = difftest::seed_base();
  std::int64_t routed_queries = 0;
  for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
    const Program p = difftest::random_program(seed);
    SweepConfig cfg = config_for(seed);
    if (cfg.exec == 0) cfg.exec = 1 + static_cast<int>(seed % 2);
    cfg.indexes = true;
    // Every third seed rides the columnar substrate through the epoch
    // loop (keeping whatever window the seed drew).
    if (seed % 3 == 0) cfg.store = StoreKind::Columnar;
    const std::string repro =
        difftest::repro(seed, "test_flat_differential",
                        "FlatDifferential.FlatStoresUnderStreamingEpochs");

    EngineOptions eopts;
    eopts.sequential = cfg.sequential_engines;
    eopts.threads = 2;
    dist::ShardedOptions dopts;
    dopts.mode = cfg.exec == 1 ? dist::ShardedMode::Bsp
                               : dist::ShardedMode::Async;
    stream::StreamOptions sopts;
    sopts.ring_capacity = 64;
    sopts.max_epoch_tuples = 1 + static_cast<std::int64_t>(seed % 3);

    std::vector<Table<Tok>*> tables(static_cast<std::size_t>(cfg.shards));
    using Stream = stream::ShardedStreamingEngine<Tok>;
    Stream stream(
        sopts, cfg.shards, eopts, dopts,
        [&p, &cfg, &tables](int shard, Engine& eng,
                            dist::Sender<Tok>& sender,
                            const Stream::Emit&) {
          auto& toks = eng.table(decl_for(cfg, cfg.store));
          declare_indexes(toks, cfg);
          tables[static_cast<std::size_t>(shard)] = &toks;
          difftest::add_rules(
              eng, toks, p,
              [&sender, shards = cfg.shards](RuleCtx&, const Tok& t) {
                sender.send(dist::partition_of(t.key, shards), t);
              });
          return [&toks, &eng](const Tok& t) { eng.put(toks, t); };
        },
        [shards = cfg.shards](const Tok& t) {
          return dist::partition_of(t.key, shards);
        });

    for (const Tok& s : p.seeds) stream.publish(s);
    (void)stream.drain();

    for (int s = 0; s < cfg.shards; ++s) {
      std::string why;
      ASSERT_TRUE(routed_equals_scan(
          *tables[static_cast<std::size_t>(s)], p, &why))
          << why << " on shard " << s << " ("
          << difftest::to_string(cfg.store) << "), " << repro;
    }
    if (cfg.retain == 0) {
      std::set<Tok> got;
      for (int s = 0; s < cfg.shards; ++s) {
        tables[static_cast<std::size_t>(s)]->scan(
            [&](const Tok& t) { got.insert(t); });
      }
      ASSERT_EQ(got, difftest::oracle_fixpoint(p)) << repro;
    }
    const dist::ClusterQueryStats qs = stream.cluster().query_stats();
    routed_queries +=
        qs.index_lookups + qs.range_scans + qs.pk_probes + qs.empty_plans;
    stream.stop();
  }
  EXPECT_GT(routed_queries, 0);
}

// --- morsel-parallel vs sequential execution --------------------------------
//
// Axis 2 of the SIMD/morsel PR: past the sequential cutoff, count_if /
// fold / min_by / query_count split into fixed-size morsels on the
// engine's pool.  The sweep bulk-loads one table pair per substrate —
// identical contents, one engine with morsels on, one pinned sequential
// through EngineOptions::morsels = false (the kill-switch satellite) —
// and pins every randomized interval aggregate between the two.  Partials
// combine in storage order, so the answers must be bit-identical, not
// merely close.
TEST(FlatDifferential, MorselParallelAggregatesEqualSequential) {
  const std::size_t rows = morsel::kSequentialCutoff + 30000;
  constexpr std::int64_t kKeys = 797;
  struct TablePair {
    StoreKind kind = StoreKind::FlatOrdered;
    std::unique_ptr<Engine> on, off;
    Table<Tok>* t_on = nullptr;
    Table<Tok>* t_off = nullptr;
  };
  std::vector<TablePair> pairs;
  for (const StoreKind kind :
       {StoreKind::FlatOrdered, StoreKind::FlatHash, StoreKind::Columnar}) {
    TablePair pr;
    pr.kind = kind;
    for (const bool morsels_on : {true, false}) {
      EngineOptions opts;
      opts.sequential = false;  // a parallel engine owns the pool
      opts.threads = 2;
      opts.morsels = morsels_on;
      auto eng = std::make_unique<Engine>(opts);
      auto& toks = eng->table(difftest::tok_decl(kind));
      for (std::size_t i = 0; i < rows; ++i) {
        eng->put(toks, Tok{static_cast<std::int64_t>(i) % kKeys,
                           static_cast<std::int64_t>(i) / kKeys});
      }
      eng->run();
      ASSERT_EQ(toks.store()->size(), rows);
      (morsels_on ? pr.on : pr.off) = std::move(eng);
      (morsels_on ? pr.t_on : pr.t_off) = &toks;
    }
    pairs.push_back(std::move(pr));
  }

  // Warm-up: one full-range count per pair, so the split counters below
  // are meaningful even under a single-seed replay.
  for (TablePair& pr : pairs) {
    const auto all = [](const Tok&) { return true; };
    ASSERT_EQ(pr.t_on->count_if(all), static_cast<std::int64_t>(rows));
    ASSERT_EQ(pr.t_off->count_if(all), static_cast<std::int64_t>(rows));
  }

  const std::uint64_t seeds = difftest::seed_count(200);
  const std::uint64_t base = difftest::seed_base();
  for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
    SplitMix64 rng(seed ^ 0x3135E1u);
    TablePair& pr = pairs[rng.next_below(pairs.size())];
    const std::int64_t lo = rng.next_in(0, kKeys - 1);
    const std::int64_t hi = rng.next_in(lo, kKeys - 1);
    const std::string repro = difftest::repro(
        seed, "test_flat_differential",
        "FlatDifferential.MorselParallelAggregatesEqualSequential");
    const std::string ctx = std::string(difftest::to_string(pr.kind)) +
                            " [" + std::to_string(lo) + "," +
                            std::to_string(hi) + "], " + repro;
    switch (rng.next_below(4)) {
      case 0: {
        const auto pred = [lo, hi](const Tok& t) {
          return t.key >= lo && t.key <= hi;
        };
        ASSERT_EQ(pr.t_on->count_if(pred), pr.t_off->count_if(pred)) << ctx;
        break;
      }
      case 1: {
        const auto pred = query::between(&Tok::key, lo, hi);
        ASSERT_EQ(
            pr.t_on->fold(pred, &Tok::gen, reduce::Sum<std::int64_t>{})
                .value(),
            pr.t_off->fold(pred, &Tok::gen, reduce::Sum<std::int64_t>{})
                .value())
            << ctx;
        break;
      }
      case 2: {
        const auto pred = [lo, hi](const Tok& t) {
          return t.key >= lo && t.key <= hi;
        };
        ASSERT_EQ(pr.t_on->min_by(pred), pr.t_off->min_by(pred)) << ctx;
        break;
      }
      default: {
        const auto pred = query::between(&Tok::key, lo, hi) &&
                          query::ge(&Tok::gen, rng.next_in(0, 60));
        ASSERT_EQ(pr.t_on->query_count(pred), pr.t_off->query_count(pred))
            << ctx;
        break;
      }
    }
  }

  for (const TablePair& pr : pairs) {
    // The morsel engines actually split (unless the env kill-switch has
    // the whole process pinned); the EngineOptions::morsels = false
    // engines never did.
    if (simd::morsels_env_on()) {
      EXPECT_GT(pr.t_on->stats().morsel_runs.load(), 0)
          << difftest::to_string(pr.kind);
      EXPECT_GT(pr.t_on->stats().morsel_splits.load(),
                pr.t_on->stats().morsel_runs.load())
          << difftest::to_string(pr.kind);
    }
    EXPECT_EQ(pr.t_off->stats().morsel_runs.load(), 0)
        << difftest::to_string(pr.kind);
  }
}

}  // namespace
}  // namespace jstar
