// Tests for the SMT-lite layer: rationals, Fourier–Motzkin, and the §4
// causality proof obligations (including the paper's worked examples).
#include <gtest/gtest.h>

#include "smt/causality.h"
#include "smt/fourier_motzkin.h"
#include "smt/rational.h"

namespace jstar::smt {
namespace {

TEST(Rat, NormalisesSignAndGcd) {
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_EQ(Rat(-2, -4), Rat(1, 2));
  EXPECT_EQ(Rat(2, -4), Rat(-1, 2));
  EXPECT_EQ(Rat(0, 7), Rat(0));
}

TEST(Rat, Arithmetic) {
  EXPECT_EQ(Rat(1, 2) + Rat(1, 3), Rat(5, 6));
  EXPECT_EQ(Rat(1, 2) - Rat(1, 3), Rat(1, 6));
  EXPECT_EQ(Rat(2, 3) * Rat(3, 4), Rat(1, 2));
  EXPECT_EQ(Rat(1, 2) / Rat(1, 4), Rat(2));
  EXPECT_EQ(-Rat(1, 2), Rat(-1, 2));
}

TEST(Rat, Ordering) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_GT(Rat(-1, 3), Rat(-1, 2));
  EXPECT_EQ(Rat(3, 3), Rat(1));
}

TEST(Rat, Floor) {
  EXPECT_EQ(Rat(7, 2).floor(), 3);
  EXPECT_EQ(Rat(-7, 2).floor(), -4);
  EXPECT_EQ(Rat(4).floor(), 4);
}

TEST(Rat, DivisionByZeroThrows) {
  EXPECT_THROW(Rat(1) / Rat(0), std::domain_error);
  EXPECT_THROW(Rat(1, 0), std::domain_error);
}

TEST(LinExprTest, AdditionMergesCoefficients) {
  VarPool pool;
  const VarId x = pool.fresh("x");
  LinExpr e = LinExpr::var(x, Rat(2)) + LinExpr::var(x, Rat(3)) + LinExpr(4);
  EXPECT_EQ(e.coeff(x), Rat(5));
  EXPECT_EQ(e.constant(), Rat(4));
}

TEST(LinExprTest, CancellationRemovesVariable) {
  VarPool pool;
  const VarId x = pool.fresh("x");
  LinExpr e = LinExpr::var(x) - LinExpr::var(x);
  EXPECT_TRUE(e.is_constant());
}

TEST(LinExprTest, Substitute) {
  VarPool pool;
  const VarId x = pool.fresh("x");
  const VarId y = pool.fresh("y");
  // (2x + 1)[x := y + 3] = 2y + 7
  LinExpr e = LinExpr::var(x, Rat(2)) + LinExpr(1);
  LinExpr r = e.substitute(x, LinExpr::var(y) + LinExpr(3));
  EXPECT_EQ(r.coeff(y), Rat(2));
  EXPECT_EQ(r.constant(), Rat(7));
  EXPECT_EQ(r.coeff(x), Rat(0));
}

class FMTest : public ::testing::Test {
 protected:
  VarPool pool;
  FourierMotzkin fm;
  LinExpr v(VarId id) { return LinExpr::var(id); }
};

TEST_F(FMTest, TrivialSat) {
  const VarId x = pool.fresh("x");
  auto out = fm.check({le(v(x), LinExpr(5))});
  EXPECT_EQ(out.result, SatResult::Sat);
}

TEST_F(FMTest, ContradictionUnsat) {
  const VarId x = pool.fresh("x");
  // x <= 1 && x >= 3
  auto out = fm.check({le(v(x), LinExpr(1)), ge(v(x), LinExpr(3))});
  EXPECT_EQ(out.result, SatResult::Unsat);
}

TEST_F(FMTest, StrictnessMatters) {
  const VarId x = pool.fresh("x");
  // x <= 2 && x >= 2 is sat; x < 2 && x >= 2 is unsat.
  EXPECT_EQ(fm.check({le(v(x), LinExpr(2)), ge(v(x), LinExpr(2))}).result,
            SatResult::Sat);
  EXPECT_EQ(fm.check({lt(v(x), LinExpr(2)), ge(v(x), LinExpr(2))}).result,
            SatResult::Unsat);
}

TEST_F(FMTest, ChainOfVariables) {
  const VarId x = pool.fresh("x");
  const VarId y = pool.fresh("y");
  const VarId z = pool.fresh("z");
  // x < y, y < z, z < x is unsat.
  auto out = fm.check({lt(v(x), v(y)), lt(v(y), v(z)), lt(v(z), v(x))});
  EXPECT_EQ(out.result, SatResult::Unsat);
}

TEST_F(FMTest, ModelSatisfiesConstraints) {
  const VarId x = pool.fresh("x");
  const VarId y = pool.fresh("y");
  std::vector<Constraint> cs = {ge(v(x), LinExpr(2)), le(v(x), v(y)),
                                le(v(y), LinExpr(10))};
  auto out = fm.check(cs);
  ASSERT_EQ(out.result, SatResult::Sat);
  for (const auto& c : cs) {
    const Rat val = c.expr.eval(out.model);
    if (c.strict) {
      EXPECT_LT(val, Rat(0)) << c.to_string(pool);
    } else {
      EXPECT_LE(val, Rat(0)) << c.to_string(pool);
    }
  }
}

TEST_F(FMTest, EqualityViaTwoInequalities) {
  const VarId x = pool.fresh("x");
  auto eqs = eq(v(x), LinExpr(7));
  auto cs = eqs;
  cs.push_back(lt(v(x), LinExpr(7)));
  EXPECT_EQ(fm.check(cs).result, SatResult::Unsat);
  auto out = fm.check(eqs);
  ASSERT_EQ(out.result, SatResult::Sat);
  EXPECT_EQ(out.model.at(x), Rat(7));
}

TEST_F(FMTest, GroundFalseUnsat) {
  EXPECT_EQ(fm.check({le(LinExpr(3), LinExpr(1))}).result, SatResult::Unsat);
  EXPECT_EQ(fm.check({lt(LinExpr(0), LinExpr(0))}).result, SatResult::Unsat);
  EXPECT_EQ(fm.check({le(LinExpr(0), LinExpr(0))}).result, SatResult::Sat);
}

// --- Integer branch-and-bound refinement -----------------------------------

TEST_F(FMTest, IntegerRefinementRejectsFractionalOnlyRegion) {
  // 1 < 2x < 3 has rational solutions (x = 1/2 .. 3/2 interior) minus the
  // integer point x = 1?  Careful: x = 1 gives 2x = 2, inside.  Use
  // 0 < 2x < 2 instead: only rational x in (0, 1), no integers.
  const VarId x = pool.fresh("x");
  std::vector<Constraint> cs = {gt(Rat(2) * v(x), LinExpr(0)),
                                lt(Rat(2) * v(x), LinExpr(2))};
  EXPECT_EQ(fm.check(cs).result, SatResult::Sat);  // rationally sat
  EXPECT_EQ(fm.check_integer(cs).result, SatResult::Unsat);
}

TEST_F(FMTest, IntegerRefinementFindsIntegerPoint) {
  // 1 <= 2x <= 4 contains the integer points x in {1, 2}.
  const VarId x = pool.fresh("x");
  std::vector<Constraint> cs = {ge(Rat(2) * v(x), LinExpr(1)),
                                le(Rat(2) * v(x), LinExpr(4))};
  const auto out = fm.check_integer(cs);
  ASSERT_EQ(out.result, SatResult::Sat);
  ASSERT_TRUE(out.model.count(x));
  EXPECT_TRUE(out.model.at(x).is_integer());
  const Rat val = out.model.at(x);
  EXPECT_TRUE(val == Rat(1) || val == Rat(2)) << val.to_string();
}

TEST_F(FMTest, IntegerRefinementTwoVariables) {
  // 2x + 2y = 1 has rational solutions but no integer ones (parity).
  // Bound the variables so branch-and-bound terminates by exhaustion.
  const VarId x = pool.fresh("x");
  const VarId y = pool.fresh("y");
  std::vector<Constraint> cs = eq(Rat(2) * v(x) + Rat(2) * v(y), LinExpr(1));
  cs.push_back(ge(v(x), LinExpr(-5)));
  cs.push_back(le(v(x), LinExpr(5)));
  cs.push_back(ge(v(y), LinExpr(-5)));
  cs.push_back(le(v(y), LinExpr(5)));
  EXPECT_EQ(fm.check(cs).result, SatResult::Sat);
  EXPECT_EQ(fm.check_integer(cs).result, SatResult::Unsat);
}

TEST_F(FMTest, IntegerRefinementPassesThroughUnsat) {
  const VarId x = pool.fresh("x");
  std::vector<Constraint> cs = {le(v(x), LinExpr(0)), ge(v(x), LinExpr(1))};
  EXPECT_EQ(fm.check_integer(cs).result, SatResult::Unsat);
}

TEST_F(FMTest, IntegerRefinementDepthLimitGivesUnknown) {
  // 3x - 3y = 1 with x, y unbounded: rationally sat everywhere, integer
  // unsat, but branching never closes the unbounded region — the depth
  // limit must kick in rather than looping forever.
  const VarId x = pool.fresh("x");
  const VarId y = pool.fresh("y");
  std::vector<Constraint> cs = eq(Rat(3) * v(x) - Rat(3) * v(y), LinExpr(1));
  const auto out = fm.check_integer(cs, /*max_depth=*/6);
  EXPECT_NE(out.result, SatResult::Sat);
}

// The causality checker benefits from integer reasoning: with the guard
// 2q <= 2t + 1 the violation region of "q <= t" is the rationally
// nonempty strip t < q <= t + 1/2, which contains no integer point (for
// integers q > t forces q >= t + 1, i.e. 2q >= 2t + 2).  A purely
// rational prover reports an inconclusive fractional witness here; the
// branch-and-bound layer proves the obligation outright.
TEST(Causality, HalfOpenStripIsProvedByIntegerReasoning) {
  CausalityChecker checker;
  VarPool vars;
  const VarId t = vars.fresh("t");
  const VarId q = vars.fresh("q");
  const std::vector<Constraint> premise = {
      le(Rat(2) * LinExpr::var(q), Rat(2) * LinExpr::var(t) + LinExpr(1))};
  // Sanity: the violation strip is rationally satisfiable...
  FourierMotzkin fm;
  std::vector<Constraint> violation = premise;
  violation.push_back(gt(LinExpr::var(q), LinExpr::var(t)));
  EXPECT_EQ(fm.check(violation).result, SatResult::Sat);
  // ...yet the obligation is Proved thanks to integer refinement.
  const auto r = checker.prove_lex_le(premise, {LinExpr::var(q)},
                                      {LinExpr::var(t)}, vars,
                                      "q at or before t");
  EXPECT_EQ(r.status, ProofStatus::Proved) << r.detail;
}

// --- Causality obligations (§4) -------------------------------------------

// The Ship rule: foreach (Ship s) if (s.x < 400) put Ship(s.frame+1, ...).
// Obligation: frame <= frame + 1 — provable with no invariants at all.
TEST(Causality, ShipMoveRightIsCausal) {
  RuleSpec rule;
  rule.name = "moveRight";
  const VarId frame = rule.vars.fresh("s.frame");
  const VarId x = rule.vars.fresh("s.x");
  rule.premise.push_back(lt(LinExpr::var(x), LinExpr(400)));  // guard
  rule.trigger_key = {LinExpr::var(frame)};
  rule.puts.push_back({"Ship", {LinExpr::var(frame) + LinExpr(1)}, {}});

  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Proved) << results[0].detail;
}

// A rule that puts into the *past* must be refuted with a counterexample.
TEST(Causality, PutIntoPastIsRefuted) {
  RuleSpec rule;
  rule.name = "badRule";
  const VarId frame = rule.vars.fresh("frame");
  rule.trigger_key = {LinExpr::var(frame)};
  rule.puts.push_back({"Ship", {LinExpr::var(frame) - LinExpr(1)}, {}});

  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Refuted);
  EXPECT_NE(results[0].detail.find("counterexample"), std::string::npos);
}

// Fig 4: with `order Req < PvWatts < SumMonth` the SumMonth rule's
// aggregate query over PvWatts is strictly in the past (rank 1 < rank 2);
// without the order declaration ranks collapse and the obligation fails —
// the paper's "Stratification error".
TEST(Causality, PvWattsStratificationWithOrder) {
  RuleSpec rule;
  rule.name = "sumMonth";
  rule.trigger_key = {LinExpr(2)};                           // rank(SumMonth)
  rule.queries.push_back({"PvWatts", {LinExpr(1)}, true, {}});  // rank(PvWatts)

  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Proved);
}

TEST(Causality, PvWattsStratificationErrorWithoutOrder) {
  RuleSpec rule;
  rule.name = "sumMonthNoOrder";
  rule.trigger_key = {LinExpr(1)};                           // same rank!
  rule.queries.push_back({"PvWatts", {LinExpr(1)}, true, {}});

  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].status, ProofStatus::Proved);
}

// Fig 5 Dijkstra: trigger Estimate at key (Int, d, rank(Estimate)=0); puts
// Done at (Int, d, 1) and Estimate at (Int, d+w, 0) with w >= 1.
TEST(Causality, DijkstraRuleIsCausal) {
  RuleSpec rule;
  rule.name = "settle";
  const VarId d = rule.vars.fresh("dist.distance");
  const VarId w = rule.vars.fresh("edge.value");
  const LinExpr int_rank(0);
  rule.premise.push_back(ge(LinExpr::var(w), LinExpr(1)));  // edge invariant
  rule.trigger_key = {int_rank, LinExpr::var(d), LinExpr(0)};
  rule.puts.push_back(
      {"Done", {int_rank, LinExpr::var(d), LinExpr(1)}, {}});
  rule.puts.push_back(
      {"Estimate",
       {int_rank, LinExpr::var(d) + LinExpr::var(w), LinExpr(0)},
       {}});

  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, ProofStatus::Proved) << results[0].detail;
  EXPECT_EQ(results[1].status, ProofStatus::Proved) << results[1].detail;
}

// Without the w >= 1 invariant the Estimate put is not provable (w could
// be negative) — the SMT solver finds the counterexample.
TEST(Causality, DijkstraNeedsPositiveWeights) {
  RuleSpec rule;
  rule.name = "settleNoInvariant";
  const VarId d = rule.vars.fresh("d");
  const VarId w = rule.vars.fresh("w");
  rule.trigger_key = {LinExpr(0), LinExpr::var(d), LinExpr(0)};
  rule.puts.push_back(
      {"Estimate",
       {LinExpr(0), LinExpr::var(d) + LinExpr::var(w), LinExpr(0)},
       {}});
  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Refuted);
}

// Lexicographic subtleties: equal first level, strictly later second.
TEST(Causality, LexSecondLevelCarriesProof) {
  CausalityChecker checker;
  VarPool vars;
  const VarId i = vars.fresh("iter");
  KeyExprs trig = {LinExpr(0), LinExpr::var(i), LinExpr(3)};
  KeyExprs put = {LinExpr(0), LinExpr::var(i) + LinExpr(1), LinExpr(0)};
  auto r = checker.prove_lex_le({}, trig, put, vars, "iter+1 beats sublevel");
  EXPECT_EQ(r.status, ProofStatus::Proved) << r.detail;
}

TEST(Causality, LexEqualKeysSatisfyLeButNotLt) {
  CausalityChecker checker;
  VarPool vars;
  const VarId t = vars.fresh("t");
  KeyExprs k = {LinExpr::var(t)};
  EXPECT_EQ(checker.prove_lex_le({}, k, k, vars, "le").status,
            ProofStatus::Proved);
  EXPECT_EQ(checker.prove_lex_lt({}, k, k, vars, "lt").status,
            ProofStatus::Refuted);
}

// Negative/aggregate queries at the same timestamp are illegal (§4): the
// query key must be strictly before the trigger.
TEST(Causality, SameTimestampAggregateQueryRejected) {
  RuleSpec rule;
  rule.name = "selfAggregate";
  const VarId t = rule.vars.fresh("t");
  rule.trigger_key = {LinExpr::var(t)};
  rule.queries.push_back({"Self", {LinExpr::var(t)}, true, {}});
  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Refuted);
}

// Positive queries carry no obligation.
TEST(Causality, PositiveQueryHasNoObligation) {
  RuleSpec rule;
  rule.name = "positive";
  const VarId t = rule.vars.fresh("t");
  rule.trigger_key = {LinExpr::var(t)};
  rule.queries.push_back({"Self", {LinExpr::var(t)}, false, {}});
  CausalityChecker checker;
  EXPECT_TRUE(checker.check(rule).empty());
}

// Guards participate in proofs: put at frame - 1 is fine when the guard
// says frame >= 5 and the put key is max(frame-1, ...) — here modelled as
// a conditional branch with the guard frame <= 0 making the "past" branch
// unreachable.
TEST(Causality, GuardMakesBranchProvable) {
  RuleSpec rule;
  rule.name = "guarded";
  const VarId f = rule.vars.fresh("frame");
  // Guard: frame <= -1; put at key 0 (a constant).  -1 < 0 so the put is
  // into the future of every reachable trigger.
  rule.premise.push_back(le(LinExpr::var(f), LinExpr(-1)));
  rule.trigger_key = {LinExpr::var(f)};
  rule.puts.push_back({"T", {LinExpr(0)}, {}});
  CausalityChecker checker;
  auto results = checker.check(rule);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, ProofStatus::Proved) << results[0].detail;
}

// Prefix keys: a put whose key is a strict extension of an equal prefix is
// in the future (prefix-is-less), so provable.
TEST(Causality, PrefixExtensionIsFuture) {
  CausalityChecker checker;
  VarPool vars;
  const VarId t = vars.fresh("t");
  KeyExprs short_key = {LinExpr::var(t)};
  KeyExprs long_key = {LinExpr::var(t), LinExpr(0)};
  EXPECT_EQ(checker.prove_lex_lt({}, short_key, long_key, vars, "prefix")
                .status,
            ProofStatus::Proved);
  EXPECT_EQ(checker.prove_lex_le({}, long_key, short_key, vars, "reverse")
                .status,
            ProofStatus::Refuted);
}

}  // namespace
}  // namespace jstar::smt
