// Tests for the multi-producer Disruptor ring (Table 1's "multiple
// producers" alternative): claim disjointness, gap-safe contiguous
// publication, wrap-around gating, and full MPMC pipelines under every
// wait strategy.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "disruptor/mp_ring_buffer.h"

namespace jstar::disruptor {
namespace {

TEST(MpRingBuffer, RejectsNonPowerOfTwo) {
  EXPECT_THROW(MpRingBuffer<int>(12), std::logic_error);
  EXPECT_THROW(MpRingBuffer<int>(0), std::logic_error);
}

TEST(MpRingBuffer, SingleThreadClaimPublish) {
  MpRingBuffer<int> ring(8);
  const int cid = ring.add_consumer();
  for (int i = 0; i < 8; ++i) {
    const std::int64_t s = ring.claim();
    EXPECT_EQ(s, i);
    ring.slot(s) = i * 3;
    ring.publish(s);
  }
  EXPECT_EQ(ring.wait_for(7), 7);
  for (std::int64_t s = 0; s <= 7; ++s) EXPECT_EQ(ring.slot(s), s * 3);
  ring.commit(cid, 7);
  // With space freed, the next claim wraps onto slot 0.
  EXPECT_EQ(ring.claim(), 8);
}

TEST(MpRingBuffer, BatchClaimAndRangePublish) {
  MpRingBuffer<int> ring(16);
  ring.add_consumer();
  const std::int64_t hi = ring.claim(4);
  EXPECT_EQ(hi, 3);
  for (std::int64_t s = 0; s <= hi; ++s) ring.slot(s) = 1;
  ring.publish(0, hi);
  EXPECT_EQ(ring.wait_for(0), 3);
}

TEST(MpRingBuffer, OutOfOrderPublishBecomesVisibleContiguously) {
  MpRingBuffer<int> ring(8);
  ring.add_consumer();
  const std::int64_t a = ring.claim();  // 0
  const std::int64_t b = ring.claim();  // 1
  const std::int64_t c = ring.claim();  // 2
  ring.slot(c) = 30;
  ring.publish(c);
  // Sequence 2 is published but 0 and 1 are not: nothing is available yet.
  EXPECT_FALSE(ring.is_available(0));
  EXPECT_TRUE(ring.is_available(2));
  ring.slot(a) = 10;
  ring.publish(a);
  // 0 available, 1 still a gap: the batch stops at 0.
  EXPECT_EQ(ring.wait_for(0), 0);
  ring.slot(b) = 20;
  ring.publish(b);
  EXPECT_EQ(ring.wait_for(0), 2);
}

TEST(MpRingBuffer, AvailabilityIsRoundAware) {
  MpRingBuffer<int> ring(4);
  const int cid = ring.add_consumer();
  // Fill and consume one full round.
  for (int i = 0; i < 4; ++i) {
    const std::int64_t s = ring.claim();
    ring.publish(s);
  }
  ring.commit(cid, 3);
  // Slot 0 was published in round 0; sequence 4 reuses the slot but must
  // not appear available until round 1 is written.
  EXPECT_FALSE(ring.is_available(4));
  const std::int64_t s = ring.claim();
  EXPECT_EQ(s, 4);
  ring.publish(s);
  EXPECT_TRUE(ring.is_available(4));
}

class MpWaitStrategies : public ::testing::TestWithParam<WaitStrategy> {
 protected:
  // BusySpin on a single-core container makes progress only at preemption
  // boundaries; keep its workloads small so the suite stays fast.
  std::int64_t scale(std::int64_t n) const {
    return GetParam() == WaitStrategy::BusySpin ? n / 10 : n;
  }
};

TEST_P(MpWaitStrategies, ParallelProducersProduceDisjointSequences) {
  MpRingBuffer<std::int64_t> ring(1024, GetParam());
  const int cid = ring.add_consumer();
  constexpr int kProducers = 4;
  const std::int64_t kPerProducer = scale(5000);
  const std::int64_t kTotal = kProducers * kPerProducer;

  std::vector<std::int64_t> consumed;
  consumed.reserve(static_cast<std::size_t>(kTotal));
  std::thread consumer([&] {
    std::int64_t next = 0;
    while (next < kTotal) {
      const std::int64_t hi = ring.wait_for(next);
      for (std::int64_t s = next; s <= hi; ++s) {
        consumed.push_back(ring.slot(s));
      }
      next = hi + 1;
      ring.commit(cid, hi);
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        const std::int64_t s = ring.claim();
        ring.slot(s) = p * kPerProducer + i;
        ring.publish(s);
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  // Every value arrives exactly once (order across producers is free).
  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kTotal));
  std::sort(consumed.begin(), consumed.end());
  for (std::int64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(consumed[static_cast<std::size_t>(i)], i) << "at " << i;
  }
}

TEST_P(MpWaitStrategies, MpMcBroadcastDeliversEverythingToEveryone) {
  MpRingBuffer<std::int64_t> ring(256, GetParam());
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  const std::int64_t kPerProducer = scale(2000);
  const std::int64_t kTotal = kProducers * kPerProducer;

  std::vector<int> cids;
  for (int c = 0; c < kConsumers; ++c) cids.push_back(ring.add_consumer());

  std::vector<std::int64_t> sums(kConsumers, 0);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::int64_t next = 0;
      while (next < kTotal) {
        const std::int64_t hi = ring.wait_for(next);
        for (std::int64_t s = next; s <= hi; ++s) sums[static_cast<std::size_t>(c)] += ring.slot(s);
        next = hi + 1;
        ring.commit(cids[static_cast<std::size_t>(c)], hi);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        const std::int64_t s = ring.claim();
        ring.slot(s) = 1;
        ring.publish(s);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  for (int c = 0; c < kConsumers; ++c) {
    EXPECT_EQ(sums[static_cast<std::size_t>(c)], kTotal) << "consumer " << c;
  }
}

TEST_P(MpWaitStrategies, SentinelShutdownViaConsumeLoop) {
  MpRingBuffer<std::int64_t> ring(64, GetParam());
  const int cid = ring.add_consumer();
  std::int64_t sum = 0;
  std::thread consumer([&] {
    mp_consume_loop(ring, cid, [&](std::int64_t v, std::int64_t) {
      if (v < 0) return false;  // sentinel
      sum += v;
      return true;
    });
  });
  std::vector<std::thread> producers;
  std::atomic<int> done{0};
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= 100; ++i) {
        const std::int64_t s = ring.claim();
        ring.slot(s) = i;
        ring.publish(s);
      }
      if (done.fetch_add(1) + 1 == 2) {
        const std::int64_t s = ring.claim();
        ring.slot(s) = -1;
        ring.publish(s);
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(sum, 2 * 5050);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MpWaitStrategies,
                         ::testing::Values(WaitStrategy::Blocking,
                                           WaitStrategy::Yielding,
                                           WaitStrategy::BusySpin),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace jstar::disruptor
