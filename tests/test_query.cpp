// Tests for the typed predicate DSL and secondary-index query routing
// (§1.4): predicates compose, equality bindings survive conjunction and
// die under disjunction, indexed and scanned paths agree, and stats
// record which access path served each query.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"

namespace jstar {
namespace {

struct Reading {
  std::int64_t sensor, hour, value;
  auto operator<=>(const Reading&) const = default;
};

TableDecl<Reading> reading_decl() {
  return TableDecl<Reading>("Reading")
      .orderby_lit("R")
      .orderby_seq("hour", &Reading::hour)
      .hash([](const Reading& r) {
        return hash_fields(r.sensor, r.hour, r.value);
      });
}

// --- predicate semantics ---------------------------------------------------

TEST(QueryPred, FieldMatchers) {
  const Reading r{3, 7, 40};
  EXPECT_TRUE(query::eq(&Reading::sensor, 3)(r));
  EXPECT_FALSE(query::eq(&Reading::sensor, 4)(r));
  EXPECT_TRUE(query::ne(&Reading::sensor, 4)(r));
  EXPECT_TRUE(query::lt(&Reading::value, 41)(r));
  EXPECT_FALSE(query::lt(&Reading::value, 40)(r));
  EXPECT_TRUE(query::le(&Reading::value, 40)(r));
  EXPECT_TRUE(query::gt(&Reading::hour, 6)(r));
  EXPECT_TRUE(query::ge(&Reading::hour, 7)(r));
  EXPECT_TRUE(query::between(&Reading::hour, 7, 8)(r));
  EXPECT_FALSE(query::between(&Reading::hour, 8, 9)(r));
}

TEST(QueryPred, Composition) {
  const auto p = query::eq(&Reading::sensor, 1) &&
                 query::ge(&Reading::value, 10);
  EXPECT_TRUE(p({1, 0, 10}));
  EXPECT_FALSE(p({1, 0, 9}));
  EXPECT_FALSE(p({2, 0, 10}));

  const auto q = query::eq(&Reading::sensor, 1) ||
                 query::eq(&Reading::sensor, 2);
  EXPECT_TRUE(q({2, 0, 0}));
  EXPECT_FALSE(q({3, 0, 0}));

  EXPECT_TRUE((!query::eq(&Reading::sensor, 9))({1, 0, 0}));
}

TEST(QueryPred, EqBindingsPropagateThroughAnd) {
  const auto p = query::eq(&Reading::sensor, 5) &&
                 query::lt(&Reading::value, 100);
  ASSERT_EQ(p.eq_bindings().size(), 1u);
  EXPECT_EQ(p.eq_bindings()[0].value, 5);
  // Both equality bindings survive a conjunction of two eqs.
  const auto p2 = query::eq(&Reading::sensor, 5) &&
                  query::eq(&Reading::hour, 3);
  EXPECT_EQ(p2.eq_bindings().size(), 2u);
}

TEST(QueryPred, EqBindingsDropUnderOrAndNot) {
  const auto p = query::eq(&Reading::sensor, 5) ||
                 query::eq(&Reading::sensor, 6);
  EXPECT_TRUE(p.eq_bindings().empty());
  EXPECT_TRUE((!query::eq(&Reading::sensor, 5)).eq_bindings().empty());
}

TEST(QueryPred, DistinctFieldsHaveDistinctTags) {
  EXPECT_NE(query::field_tag(&Reading::sensor),
            query::field_tag(&Reading::hour));
  EXPECT_EQ(query::field_tag(&Reading::sensor),
            query::field_tag(&Reading::sensor));
}

// Regression: field_tag used to hash the member-pointer bytes, so two
// members could collide and alias each other's planner bindings (an
// eq(&A::x) probe answered from a &B::y index).  Tags are now interned by
// exact bytes: register a crowd of members across several tuple types and
// demand pairwise-distinct, call-stable addresses.
TEST(QueryPred, ManyFieldTagsArePairwiseDistinctAndStable) {
  struct Wide {
    std::int64_t f0, f1, f2, f3, f4, f5, f6, f7, f8, f9;
    auto operator<=>(const Wide&) const = default;
  };
  struct Narrow {
    std::int16_t a, b, c, d;
    auto operator<=>(const Narrow&) const = default;
  };
  struct Mixed {
    std::int32_t k;
    double w;
    std::int8_t flag;
    auto operator<=>(const Mixed&) const = default;
  };
  const auto collect = [] {
    return std::vector<const void*>{
        query::field_tag(&Reading::sensor), query::field_tag(&Reading::hour),
        query::field_tag(&Reading::value),  query::field_tag(&Wide::f0),
        query::field_tag(&Wide::f1),        query::field_tag(&Wide::f2),
        query::field_tag(&Wide::f3),        query::field_tag(&Wide::f4),
        query::field_tag(&Wide::f5),        query::field_tag(&Wide::f6),
        query::field_tag(&Wide::f7),        query::field_tag(&Wide::f8),
        query::field_tag(&Wide::f9),        query::field_tag(&Narrow::a),
        query::field_tag(&Narrow::b),       query::field_tag(&Narrow::c),
        query::field_tag(&Narrow::d),       query::field_tag(&Mixed::k),
        query::field_tag(&Mixed::w),        query::field_tag(&Mixed::flag)};
  };
  const std::vector<const void*> tags = collect();
  for (std::size_t i = 0; i < tags.size(); ++i) {
    ASSERT_NE(tags[i], nullptr);
    for (std::size_t j = i + 1; j < tags.size(); ++j) {
      EXPECT_NE(tags[i], tags[j]) << "members " << i << " and " << j
                                  << " interned to the same tag";
    }
  }
  // Re-registering yields the same interned addresses (indexes keyed by
  // tag at declaration time still match probes planned much later).
  EXPECT_EQ(collect(), tags);
}

// --- index routing ----------------------------------------------------------

class IndexedQuery : public ::testing::TestWithParam<bool /*sequential*/> {};

TEST_P(IndexedQuery, IndexAndScanAgree) {
  EngineOptions opts;
  opts.sequential = GetParam();
  opts.threads = 2;
  Engine eng(opts);
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);

  constexpr std::int64_t kN = 500;
  for (std::int64_t i = 0; i < kN; ++i) {
    eng.put(readings, Reading{i % 13, i % 24, i});
  }
  eng.run();

  // Indexed query: sensor pinned by equality.
  const auto indexed = query::eq(&Reading::sensor, 4) &&
                       query::ge(&Reading::value, 0);
  std::vector<Reading> via_index;
  readings.query(indexed, [&](const Reading& r) { via_index.push_back(r); });

  // Same predicate through an unindexable formulation (lambda escape).
  const auto scanned = query::lambda<Reading>(
      [](const Reading& r) { return r.sensor == 4 && r.value >= 0; });
  std::vector<Reading> via_scan;
  readings.query(scanned, [&](const Reading& r) { via_scan.push_back(r); });

  std::sort(via_index.begin(), via_index.end());
  std::sort(via_scan.begin(), via_scan.end());
  EXPECT_EQ(via_index, via_scan);
  EXPECT_FALSE(via_index.empty());

  EXPECT_GE(readings.stats().index_lookups.load(), 1);
  EXPECT_GE(readings.stats().full_scans.load(), 1);
}

TEST_P(IndexedQuery, UnindexedFieldFallsBackToScan) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);
  for (std::int64_t i = 0; i < 100; ++i) {
    eng.put(readings, Reading{i % 5, i % 24, i});
  }
  eng.run();
  // hour is not indexed: equality on it cannot use the sensor index.
  const auto p = query::eq(&Reading::hour, 3);
  const std::int64_t n = readings.query_count(p);
  EXPECT_GT(n, 0);
  EXPECT_EQ(readings.stats().index_lookups.load(), 0);
  EXPECT_EQ(readings.stats().full_scans.load(), 1);
}

TEST_P(IndexedQuery, CountMatchesManualFilter) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);
  readings.add_index(&Reading::hour);
  constexpr std::int64_t kN = 300;
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < kN; ++i) {
    const Reading r{i % 7, i % 24, i};
    if (r.hour == 5 && r.value < 150) ++expect;
    eng.put(readings, r);
  }
  eng.run();
  const auto p = query::eq(&Reading::hour, 5) &&
                 query::lt(&Reading::value, 150);
  EXPECT_EQ(readings.query_count(p), expect);
  EXPECT_EQ(readings.stats().index_lookups.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, IndexedQuery, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "sequential" : "parallel";
                         });

TEST(IndexedQueryMisc, AddIndexAfterStartThrows) {
  Engine eng(EngineOptions{.sequential = true});
  auto& readings = eng.table(reading_decl());
  eng.put(readings, Reading{0, 0, 0});
  EXPECT_THROW(readings.add_index(&Reading::sensor), std::logic_error);
}

TEST(IndexedQueryMisc, IndexSeesOnlyFreshTuples) {
  Engine eng(EngineOptions{.sequential = true});
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);
  eng.put(readings, Reading{1, 0, 10});
  eng.put(readings, Reading{1, 0, 10});  // duplicate
  eng.run();
  EXPECT_EQ(readings.query_count(query::eq(&Reading::sensor, 1)), 1);
}

// --- range bindings & conjunction normalisation ------------------------------

TEST(QueryPred, ComparisonsCarryRangeBindings) {
  const auto p = query::lt(&Reading::value, 10);
  ASSERT_EQ(p.range_bindings().size(), 1u);
  EXPECT_EQ(p.range_bindings()[0].hi, 9);
  EXPECT_EQ(p.range_bindings()[0].lo, INT64_MIN);

  const auto q2 = query::ge(&Reading::value, 3);
  ASSERT_EQ(q2.range_bindings().size(), 1u);
  EXPECT_EQ(q2.range_bindings()[0].lo, 3);
  EXPECT_EQ(q2.range_bindings()[0].hi, INT64_MAX);

  const auto b = query::between(&Reading::hour, 4, 8);
  ASSERT_EQ(b.range_bindings().size(), 1u);
  EXPECT_EQ(b.range_bindings()[0].lo, 4);
  EXPECT_EQ(b.range_bindings()[0].hi, 7);  // [lo, hi) stored inclusively
}

TEST(QueryPred, AndIntersectsRangesPerField) {
  const auto p = query::ge(&Reading::value, 3) &&
                 query::lt(&Reading::value, 10) &&
                 query::le(&Reading::hour, 5);
  ASSERT_EQ(p.range_bindings().size(), 2u);
  EXPECT_EQ(p.range_bindings()[0].lo, 3);
  EXPECT_EQ(p.range_bindings()[0].hi, 9);
  EXPECT_EQ(p.range_bindings()[1].hi, 5);
  EXPECT_FALSE(p.never());
}

TEST(QueryPred, AndDedupesEqBindingsByField) {
  const auto p = query::eq(&Reading::sensor, 5) &&
                 query::eq(&Reading::sensor, 5) &&
                 query::lt(&Reading::value, 100);
  ASSERT_EQ(p.eq_bindings().size(), 1u);
  EXPECT_EQ(p.eq_bindings()[0].value, 5);
  EXPECT_FALSE(p.never());
}

TEST(QueryPred, ContradictionsAreNever) {
  // eq(f, a) && eq(f, b), a != b.
  EXPECT_TRUE((query::eq(&Reading::sensor, 1) &&
               query::eq(&Reading::sensor, 2)).never());
  // Empty interval intersection.
  EXPECT_TRUE((query::ge(&Reading::value, 10) &&
               query::lt(&Reading::value, 10)).never());
  // Equality outside the field's interval.
  EXPECT_TRUE((query::eq(&Reading::value, 50) &&
               query::lt(&Reading::value, 10)).never());
  // Disjunction and negation drop satisfiability knowledge.
  const auto contradiction =
      query::eq(&Reading::sensor, 1) && query::eq(&Reading::sensor, 2);
  EXPECT_FALSE((contradiction || query::eq(&Reading::sensor, 3)).never());
  EXPECT_FALSE((!contradiction).never());
}

TEST(QueryPred, NonIntegralMatchersCarryNoBindings) {
  struct Pt {
    double x;
    std::int64_t i;
    std::uint64_t u;
    auto operator<=>(const Pt&) const = default;
  };
  // Double fields/probes would lie after int64 truncation, so they stay
  // pure callables (planned as residual scans).
  EXPECT_TRUE(query::lt(&Pt::x, 0.5).range_bindings().empty());
  EXPECT_TRUE(query::eq(&Pt::x, 1.0).eq_bindings().empty());
  EXPECT_TRUE(query::between(&Pt::x, 0.0, 1.0).range_bindings().empty());
  // uint64 would wrap above INT64_MAX — no bindings either.
  EXPECT_TRUE(query::eq(&Pt::u, std::uint64_t{1}).eq_bindings().empty());
  EXPECT_TRUE(query::lt(&Pt::u, std::uint64_t{1} << 63)
                  .range_bindings()
                  .empty());
  // ge(i, 0) && lt(i, 0.5) is satisfiable by i == 0: the truncated lt
  // must not poison the conjunction into never().
  const auto p = query::ge(&Pt::i, 0) && query::lt(&Pt::i, 0.5);
  EXPECT_EQ(p.range_bindings().size(), 1u);  // only the integral side binds
  EXPECT_FALSE(p.never());
  EXPECT_TRUE(p(Pt{0.0, 0}));
}

// --- planned access paths ----------------------------------------------------

struct Keyed {
  std::int64_t id, group, score;
  auto operator<=>(const Keyed&) const = default;
};

TableDecl<Keyed> keyed_decl() {
  return TableDecl<Keyed>("Keyed").orderby_lit("K").hash([](const Keyed& k) {
    return hash_fields(k.id, k.group, k.score);
  });
}

class PlannedQuery : public ::testing::TestWithParam<bool /*sequential*/> {};

TEST_P(PlannedQuery, AlwaysEmptyPlanTouchesNothing) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& t = eng.table(keyed_decl());
  for (int i = 0; i < 50; ++i) eng.put(t, Keyed{i, i % 5, i});
  eng.run();
  const auto p = query::eq(&Keyed::group, 1) && query::eq(&Keyed::group, 2);
  EXPECT_EQ(t.plan_for(p).path, AccessPath::AlwaysEmpty);
  EXPECT_EQ(t.query_count(p), 0);
  EXPECT_EQ(t.stats().empty_plans.load(), 1);
  EXPECT_EQ(t.stats().full_scans.load(), 0);
}

TEST_P(PlannedQuery, PkProbeRoutesAndMatchesScan) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& t = eng.table(keyed_decl().primary_key(&Keyed::id));
  for (int i = 0; i < 100; ++i) eng.put(t, Keyed{i, i % 5, i * 2});
  eng.run();
  const auto p = query::eq(&Keyed::id, 42);
  EXPECT_EQ(t.plan_for(p).path, AccessPath::PkProbe);
  const std::optional<Keyed> routed = t.find_if(p);
  const std::optional<Keyed> scanned = t.find_if(
      query::lambda<Keyed>([](const Keyed& k) { return k.id == 42; }));
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(*routed, *scanned);
  EXPECT_EQ(t.stats().pk_probes.load(), 1);
  // A pk probe that misses agrees with the (empty) scan.
  EXPECT_EQ(t.query_count(query::eq(&Keyed::id, 9999)), 0);
  // Rvalue predicates must take the planned overloads too — an
  // unconstrained forwarding template would win resolution for
  // temporaries and silently full-scan.
  EXPECT_FALSE(t.none(query::eq(&Keyed::id, 42)));
  EXPECT_TRUE(t.find_if(query::eq(&Keyed::id, 7)).has_value());
  EXPECT_EQ(t.stats().pk_probes.load(), 4);
  EXPECT_EQ(t.stats().full_scans.load(), 1);  // only the lambda twin
}

TEST_P(PlannedQuery, CompositeIndexCoversMultiEqQueries) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& t = eng.table(keyed_decl());
  t.add_index(&Keyed::group, &Keyed::score);
  std::int64_t expect = 0;
  for (int i = 0; i < 400; ++i) {
    const Keyed k{i, i % 7, i % 11};
    if (k.group == 3 && k.score == 5) ++expect;
    eng.put(t, k);
  }
  eng.run();
  const auto p = query::eq(&Keyed::group, 3) && query::eq(&Keyed::score, 5);
  EXPECT_EQ(t.plan_for(p).path, AccessPath::IndexProbe);
  EXPECT_GT(expect, 0);
  EXPECT_EQ(t.query_count(p), expect);
  EXPECT_EQ(t.stats().index_lookups.load(), 1);
  // One pinned field alone cannot use the composite index.
  EXPECT_EQ(t.plan_for(query::eq(&Keyed::group, 3)).path,
            AccessPath::FullScan);
}

TEST_P(PlannedQuery, RangeScanAgreesWithScanOnOrderedStores) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& t = eng.table(keyed_decl());
  // id is Keyed's leading field: an ordered-range prefix on it.
  t.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return Keyed{v[0], INT64_MIN, INT64_MIN};
      },
      &Keyed::id);
  for (int i = 0; i < 500; ++i) eng.put(t, Keyed{i % 250, i % 5, i});
  eng.run();

  const std::vector<query::Pred<Keyed>> preds = {
      query::between(&Keyed::id, 40, 60),
      query::ge(&Keyed::id, 200),
      query::lt(&Keyed::id, 17),
      query::eq(&Keyed::id, 123),
      query::between(&Keyed::id, 10, 20) && query::ge(&Keyed::score, 100),
  };
  for (const auto& p : preds) {
    EXPECT_EQ(t.plan_for(p).path, AccessPath::RangeScan) << p.never();
    std::vector<Keyed> routed, scanned;
    t.query(p, [&](const Keyed& k) { routed.push_back(k); });
    t.scan([&](const Keyed& k) {
      if (p(k)) scanned.push_back(k);
    });
    std::sort(routed.begin(), routed.end());
    std::sort(scanned.begin(), scanned.end());
    EXPECT_EQ(routed, scanned);
    EXPECT_FALSE(routed.empty());
  }
  EXPECT_EQ(t.stats().range_scans.load(),
            static_cast<std::int64_t>(preds.size()));
  EXPECT_EQ(t.stats().full_scans.load(), 0);
}

TEST_P(PlannedQuery, FoldRoutesThroughThePlan) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& t = eng.table(keyed_decl());
  t.add_index(&Keyed::group);
  std::int64_t expect = 0;
  for (int i = 0; i < 200; ++i) {
    if (i % 5 == 2) expect += i;
    eng.put(t, Keyed{i, i % 5, i});
  }
  eng.run();
  struct Sum {
    std::int64_t total = 0;
    void add(std::int64_t v) { total += v; }
  };
  const Sum s = t.fold(query::eq(&Keyed::group, 2),
                       [](const Keyed& k) { return k.score; }, Sum{});
  EXPECT_EQ(s.total, expect);
  EXPECT_EQ(t.stats().index_lookups.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, PlannedQuery, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "sequential" : "parallel";
                         });

TEST(PlannedQueryMisc, NoGammaIndexNeverResurrectsTuples) {
  EngineOptions opts;
  opts.sequential = true;
  opts.no_gamma.insert("Keyed");
  Engine eng(opts);
  auto& t = eng.table(keyed_decl());
  t.add_index(&Keyed::group);
  for (int i = 0; i < 20; ++i) eng.put(t, Keyed{i, i % 3, i});
  eng.run();
  // The store retains nothing, so the routed query must see nothing too.
  EXPECT_EQ(t.plan_for(query::eq(&Keyed::group, 1)).path,
            AccessPath::FullScan);
  EXPECT_EQ(t.query_count(query::eq(&Keyed::group, 1)), 0);
}

TEST(PlannedQueryMisc, RetainSweepsSecondaryIndexes) {
  Engine eng(EngineOptions{.sequential = true});
  auto& t = eng.table(keyed_decl().retain(1));
  t.add_index(&Keyed::group);
  for (int i = 0; i < 30; ++i) eng.put(t, Keyed{i, i % 3, i});
  eng.run();
  EXPECT_EQ(t.query_count(query::eq(&Keyed::group, 1)), 10);
  // Open two epochs: everything inserted at epoch 0 falls out of the
  // retain(1) window, and the index entries are swept with the tuples.
  eng.begin_epoch();
  eng.begin_epoch();
  EXPECT_EQ(t.gamma_size(), 0u);
  EXPECT_EQ(t.stats().index_retired.load(), 30);
  EXPECT_EQ(t.query_count(query::eq(&Keyed::group, 1)), 0);
  // Re-inserting after the sweep indexes the fresh tuples again.
  eng.put(t, Keyed{1000, 1, 1});
  eng.run();
  EXPECT_EQ(t.query_count(query::eq(&Keyed::group, 1)), 1);
}

TEST(PlannedQueryMisc, RangeBoundsSurviveNarrowLeadingFields) {
  struct Nf {
    std::int32_t f;
    std::int64_t v;
    auto operator<=>(const Nf&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& t = eng.table(TableDecl<Nf>("Nf").orderby_lit("N").hash(
      [](const Nf& n) { return hash_fields(n.f, n.v); }));
  t.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return Nf{static_cast<std::int32_t>(v[0]), INT64_MIN};
      },
      &Nf::f);
  for (int i = -20; i < 20; ++i) eng.put(t, Nf{i, i});
  eng.run();
  // Unbounded-below interval: the INT64_MIN sentinel must not reach the
  // narrowing factory (truncated it would skip the negative tuples).
  EXPECT_EQ(t.query_count(query::lt(&Nf::f, 5)), 25);
  // Query constants beyond int32: the failed factory round trip degrades
  // to a wide scan instead of seeking to a truncated bound.
  EXPECT_EQ(t.query_count(query::between(&Nf::f, std::int64_t{0},
                                         (std::int64_t{1} << 32) + 5)),
            20);
  EXPECT_EQ(t.query_count(query::ge(&Nf::f, -5)), 25);
  EXPECT_EQ(t.stats().full_scans.load(), 0);  // all served as range plans
}

TEST(PlannedQueryMisc, ExplainDescribesThePlan) {
  Engine eng(EngineOptions{.sequential = true});
  auto& t = eng.table(keyed_decl().primary_key(&Keyed::id));
  t.add_index(&Keyed::group);
  t.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return Keyed{v[0], INT64_MIN, INT64_MIN};
      },
      &Keyed::id);
  eng.put(t, Keyed{1, 1, 1});
  eng.run();
  EXPECT_EQ(t.plan_for(query::eq(&Keyed::id, 7)).describe(), "pk-probe(pk=7)");
  EXPECT_EQ(t.plan_for(query::eq(&Keyed::group, 3)).describe(),
            "index-probe(index 0, keys=3)");
  EXPECT_EQ(t.plan_for(query::between(&Keyed::id, 2, 9) &&
                       query::ne(&Keyed::id, 5))
                .describe(),
            "range-scan(range 0, prefix=, [2, 8])");
  EXPECT_EQ(t.plan_for(query::lambda<Keyed>([](const Keyed&) {
              return true;
            })).describe(),
            "full-scan");
  EXPECT_EQ(t.plan_for(query::eq(&Keyed::score, 1) &&
                       query::eq(&Keyed::score, 2))
                .describe(),
            "always-empty");
}

}  // namespace
}  // namespace jstar
