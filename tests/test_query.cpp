// Tests for the typed predicate DSL and secondary-index query routing
// (§1.4): predicates compose, equality bindings survive conjunction and
// die under disjunction, indexed and scanned paths agree, and stats
// record which access path served each query.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"

namespace jstar {
namespace {

struct Reading {
  std::int64_t sensor, hour, value;
  auto operator<=>(const Reading&) const = default;
};

TableDecl<Reading> reading_decl() {
  return TableDecl<Reading>("Reading")
      .orderby_lit("R")
      .orderby_seq("hour", &Reading::hour)
      .hash([](const Reading& r) {
        return hash_fields(r.sensor, r.hour, r.value);
      });
}

// --- predicate semantics ---------------------------------------------------

TEST(QueryPred, FieldMatchers) {
  const Reading r{3, 7, 40};
  EXPECT_TRUE(query::eq(&Reading::sensor, 3)(r));
  EXPECT_FALSE(query::eq(&Reading::sensor, 4)(r));
  EXPECT_TRUE(query::ne(&Reading::sensor, 4)(r));
  EXPECT_TRUE(query::lt(&Reading::value, 41)(r));
  EXPECT_FALSE(query::lt(&Reading::value, 40)(r));
  EXPECT_TRUE(query::le(&Reading::value, 40)(r));
  EXPECT_TRUE(query::gt(&Reading::hour, 6)(r));
  EXPECT_TRUE(query::ge(&Reading::hour, 7)(r));
  EXPECT_TRUE(query::between(&Reading::hour, 7, 8)(r));
  EXPECT_FALSE(query::between(&Reading::hour, 8, 9)(r));
}

TEST(QueryPred, Composition) {
  const auto p = query::eq(&Reading::sensor, 1) &&
                 query::ge(&Reading::value, 10);
  EXPECT_TRUE(p({1, 0, 10}));
  EXPECT_FALSE(p({1, 0, 9}));
  EXPECT_FALSE(p({2, 0, 10}));

  const auto q = query::eq(&Reading::sensor, 1) ||
                 query::eq(&Reading::sensor, 2);
  EXPECT_TRUE(q({2, 0, 0}));
  EXPECT_FALSE(q({3, 0, 0}));

  EXPECT_TRUE((!query::eq(&Reading::sensor, 9))({1, 0, 0}));
}

TEST(QueryPred, EqBindingsPropagateThroughAnd) {
  const auto p = query::eq(&Reading::sensor, 5) &&
                 query::lt(&Reading::value, 100);
  ASSERT_EQ(p.eq_bindings().size(), 1u);
  EXPECT_EQ(p.eq_bindings()[0].value, 5);
  // Both equality bindings survive a conjunction of two eqs.
  const auto p2 = query::eq(&Reading::sensor, 5) &&
                  query::eq(&Reading::hour, 3);
  EXPECT_EQ(p2.eq_bindings().size(), 2u);
}

TEST(QueryPred, EqBindingsDropUnderOrAndNot) {
  const auto p = query::eq(&Reading::sensor, 5) ||
                 query::eq(&Reading::sensor, 6);
  EXPECT_TRUE(p.eq_bindings().empty());
  EXPECT_TRUE((!query::eq(&Reading::sensor, 5)).eq_bindings().empty());
}

TEST(QueryPred, DistinctFieldsHaveDistinctTags) {
  EXPECT_NE(query::field_tag(&Reading::sensor),
            query::field_tag(&Reading::hour));
  EXPECT_EQ(query::field_tag(&Reading::sensor),
            query::field_tag(&Reading::sensor));
}

// --- index routing ----------------------------------------------------------

class IndexedQuery : public ::testing::TestWithParam<bool /*sequential*/> {};

TEST_P(IndexedQuery, IndexAndScanAgree) {
  EngineOptions opts;
  opts.sequential = GetParam();
  opts.threads = 2;
  Engine eng(opts);
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);

  constexpr std::int64_t kN = 500;
  for (std::int64_t i = 0; i < kN; ++i) {
    eng.put(readings, Reading{i % 13, i % 24, i});
  }
  eng.run();

  // Indexed query: sensor pinned by equality.
  const auto indexed = query::eq(&Reading::sensor, 4) &&
                       query::ge(&Reading::value, 0);
  std::vector<Reading> via_index;
  readings.query(indexed, [&](const Reading& r) { via_index.push_back(r); });

  // Same predicate through an unindexable formulation (lambda escape).
  const auto scanned = query::lambda<Reading>(
      [](const Reading& r) { return r.sensor == 4 && r.value >= 0; });
  std::vector<Reading> via_scan;
  readings.query(scanned, [&](const Reading& r) { via_scan.push_back(r); });

  std::sort(via_index.begin(), via_index.end());
  std::sort(via_scan.begin(), via_scan.end());
  EXPECT_EQ(via_index, via_scan);
  EXPECT_FALSE(via_index.empty());

  EXPECT_GE(readings.stats().index_lookups.load(), 1);
  EXPECT_GE(readings.stats().full_scans.load(), 1);
}

TEST_P(IndexedQuery, UnindexedFieldFallsBackToScan) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);
  for (std::int64_t i = 0; i < 100; ++i) {
    eng.put(readings, Reading{i % 5, i % 24, i});
  }
  eng.run();
  // hour is not indexed: equality on it cannot use the sensor index.
  const auto p = query::eq(&Reading::hour, 3);
  const std::int64_t n = readings.query_count(p);
  EXPECT_GT(n, 0);
  EXPECT_EQ(readings.stats().index_lookups.load(), 0);
  EXPECT_EQ(readings.stats().full_scans.load(), 1);
}

TEST_P(IndexedQuery, CountMatchesManualFilter) {
  EngineOptions opts;
  opts.sequential = GetParam();
  Engine eng(opts);
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);
  readings.add_index(&Reading::hour);
  constexpr std::int64_t kN = 300;
  std::int64_t expect = 0;
  for (std::int64_t i = 0; i < kN; ++i) {
    const Reading r{i % 7, i % 24, i};
    if (r.hour == 5 && r.value < 150) ++expect;
    eng.put(readings, r);
  }
  eng.run();
  const auto p = query::eq(&Reading::hour, 5) &&
                 query::lt(&Reading::value, 150);
  EXPECT_EQ(readings.query_count(p), expect);
  EXPECT_EQ(readings.stats().index_lookups.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, IndexedQuery, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "sequential" : "parallel";
                         });

TEST(IndexedQueryMisc, AddIndexAfterStartThrows) {
  Engine eng(EngineOptions{.sequential = true});
  auto& readings = eng.table(reading_decl());
  eng.put(readings, Reading{0, 0, 0});
  EXPECT_THROW(readings.add_index(&Reading::sensor), std::logic_error);
}

TEST(IndexedQueryMisc, IndexSeesOnlyFreshTuples) {
  Engine eng(EngineOptions{.sequential = true});
  auto& readings = eng.table(reading_decl());
  readings.add_index(&Reading::sensor);
  eng.put(readings, Reading{1, 0, 10});
  eng.put(readings, Reading{1, 0, 10});  // duplicate
  eng.run();
  EXPECT_EQ(readings.query_count(query::eq(&Reading::sensor, 1)), 1);
}

}  // namespace
}  // namespace jstar
