// Invariants of ShardedRunReport and the mailbox fabric (§2 stage 3):
// message accounting must be a pure function of the program's derived
// tuple sets (single-shard runs exchange nothing, counts are deterministic
// across runs, supersteps track the BSP wavefront), partition_of must be a
// stable total hash partition, and the mailboxes must enforce their
// set-semantics / bounds contracts.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>
#include <vector>

#include "dist/sharded.h"
#include "util/rng.h"

namespace jstar::dist {
namespace {

struct Visit {
  std::int64_t vertex;
  auto operator<=>(const Visit&) const = default;
};

// A BFS over the chain 0 -> 1 -> ... -> n-1, every hop routed through the
// mailbox.  The BSP wavefront advances one vertex per superstep, so the
// report is fully predictable from n.
ShardedRunReport run_chain(std::int64_t n, int shards, bool sequential,
                           std::set<std::int64_t>* reached = nullptr,
                           const ShardedOptions& sopts = {}) {
  EngineOptions opts;
  opts.sequential = sequential;
  opts.threads = 2;

  std::vector<Table<Visit>*> tables(static_cast<std::size_t>(shards));
  ShardedEngine<Visit> cluster(
      shards, opts, sopts,
      [n, shards, &tables](int shard, Engine& eng, Sender<Visit>& sender) {
        auto& visits = eng.table(TableDecl<Visit>("Visit")
                                     .orderby_lit("V")
                                     .orderby_seq("vertex", &Visit::vertex)
                                     .hash([](const Visit& v) {
                                       return hash_fields(v.vertex);
                                     }));
        tables[static_cast<std::size_t>(shard)] = &visits;
        eng.rule(visits, "advance",
                 [n, shards, &sender](RuleCtx&, const Visit& v) {
                   if (v.vertex + 1 < n) {
                     sender.send(partition_of(v.vertex + 1, shards),
                                 Visit{v.vertex + 1});
                   }
                 });
        return [&visits, &eng](const Visit& v) { eng.put(visits, v); };
      });

  cluster.seed(partition_of(0, shards), Visit{0});
  const ShardedRunReport report = cluster.run();
  if (reached != nullptr) {
    for (auto* t : tables) {
      t->scan([&](const Visit& v) { reached->insert(v.vertex); });
    }
  }
  return report;
}

// --- ShardedRunReport invariants -------------------------------------------

TEST(DistReport, SingleShardExchangesNoMessages) {
  std::set<std::int64_t> reached;
  const ShardedRunReport r = run_chain(32, 1, /*sequential=*/true, &reached);
  EXPECT_EQ(r.messages, 0);
  // The hops still travelled through the mailbox — as local self-sends.
  EXPECT_EQ(r.local_messages, 31);
  EXPECT_EQ(reached.size(), 32u);
}

TEST(DistReport, SuperstepsTrackGraphDiameter) {
  // One mailbox hop per chain edge: a chain of n vertices takes exactly n
  // supersteps, so supersteps are strictly monotone in the diameter.
  int prev = 0;
  for (const std::int64_t n : {1, 2, 5, 17, 40}) {
    const ShardedRunReport r = run_chain(n, 3, /*sequential=*/true);
    EXPECT_EQ(r.supersteps, n) << "chain length " << n;
    EXPECT_GT(r.supersteps, prev);
    prev = r.supersteps;
  }
}

TEST(DistReport, MessageCountsDeterministicAcrossRunsAndStrategies) {
  const ShardedRunReport first = run_chain(64, 4, /*sequential=*/true);
  for (int i = 0; i < 3; ++i) {
    const ShardedRunReport seq = run_chain(64, 4, /*sequential=*/true);
    const ShardedRunReport par = run_chain(64, 4, /*sequential=*/false);
    for (const ShardedRunReport* r : {&seq, &par}) {
      EXPECT_EQ(r->supersteps, first.supersteps) << "run " << i;
      EXPECT_EQ(r->messages, first.messages) << "run " << i;
      EXPECT_EQ(r->local_messages, first.local_messages) << "run " << i;
      EXPECT_EQ(r->local_tuples, first.local_tuples) << "run " << i;
    }
  }
}

TEST(DistReport, MessagesSplitIntoCrossAndLocalExactly) {
  // Every chain hop is exactly one mailbox tuple, cross-shard or local.
  const ShardedRunReport r = run_chain(50, 4, /*sequential=*/true);
  EXPECT_EQ(r.messages + r.local_messages, 49);
  EXPECT_GT(r.messages, 0);  // 50 hash-spread vertices never all co-locate
}

// --- epoch / poll accounting -----------------------------------------------

// The counter contract after the polls/drains split: report.epochs is the
// sum of per-shard *non-empty* drain epochs, every shard polled at least
// as often as it drained, and idle polls never leak into the epoch count.
TEST(DistReport, EpochsCountNonEmptyDrainsOnlyBsp) {
  const ShardedRunReport r = run_chain(40, 3, /*sequential=*/true);
  std::int64_t drains = 0;
  for (const ShardStats& st : r.shard_stats) {
    EXPECT_LE(st.drains, st.polls);
    // BSP polls every shard's mailbox exactly once per superstep.
    EXPECT_EQ(st.polls, r.supersteps);
    drains += st.drains;
  }
  EXPECT_EQ(r.epochs, drains);
  // The chain wavefront touches exactly one shard per superstep, so most
  // polls are empty: epochs must be far below shards * supersteps.
  EXPECT_EQ(r.epochs, 40);
  EXPECT_LT(r.epochs, static_cast<std::int64_t>(3) * r.supersteps);
}

TEST(DistReport, EpochsCountNonEmptyDrainsOnlyAsync) {
  ShardedOptions sopts;
  sopts.mode = ShardedMode::Async;
  std::set<std::int64_t> reached;
  const ShardedRunReport r =
      run_chain(64, 3, /*sequential=*/true, &reached, sopts);
  EXPECT_EQ(reached.size(), 64u);
  std::int64_t drains = 0;
  for (const ShardStats& st : r.shard_stats) {
    EXPECT_LE(st.drains, st.polls);
    drains += st.drains;
  }
  EXPECT_EQ(r.epochs, drains);
  // 63 hops delivered one tuple each (plus the seed): even with async
  // idle re-polls the epoch count is bounded by deliveries, not polls.
  EXPECT_LE(r.epochs, 64);
  EXPECT_GE(r.epochs, 1);
}

// --- partition_of properties -----------------------------------------------

TEST(PartitionOf, CoversEveryShardAndStaysInRange) {
  SplitMix64 rng(11);
  for (const int shards : {1, 2, 3, 5, 8, 16}) {
    std::set<int> hit;
    for (int i = 0; i < 4000; ++i) {
      const auto key = static_cast<std::int64_t>(rng.next());
      const int p = partition_of(key, shards);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, shards);
      hit.insert(p);
    }
    EXPECT_EQ(hit.size(), static_cast<std::size_t>(shards))
        << shards << " shards not all covered";
  }
}

TEST(PartitionOf, StableAcrossCalls) {
  SplitMix64 rng(23);
  for (int i = 0; i < 2000; ++i) {
    const auto key = static_cast<std::int64_t>(rng.next());
    const int shards = static_cast<int>(rng.next_below(15)) + 1;
    EXPECT_EQ(partition_of(key, shards), partition_of(key, shards));
  }
}

TEST(PartitionOf, NegativeKeysAreSafe) {
  SplitMix64 rng(37);
  for (const int shards : {1, 2, 7, 8}) {
    for (int i = 0; i < 1000; ++i) {
      const std::int64_t key =
          -static_cast<std::int64_t>(rng.next_below(1ULL << 62)) - 1;
      const int p = partition_of(key, shards);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, shards);
    }
    EXPECT_NO_THROW(partition_of(std::numeric_limits<std::int64_t>::min(),
                                 shards));
  }
}

TEST(PartitionOf, RejectsNonPositiveShardCounts) {
  EXPECT_THROW(partition_of(1, 0), std::logic_error);
  EXPECT_THROW(partition_of(1, -3), std::logic_error);
}

// --- mailbox edge cases ----------------------------------------------------

// A 2-shard cluster with no rules; exposes each shard's Sender so tests
// can exercise the mailbox fabric directly.
struct Fixture {
  std::vector<Table<Visit>*> tables{2, nullptr};
  std::vector<Sender<Visit>*> senders{2, nullptr};
  ShardedEngine<Visit> cluster;

  Fixture()
      : cluster(2, sequential_opts(),
                [this](int shard, Engine& eng, Sender<Visit>& sender) {
                  auto& t = eng.table(TableDecl<Visit>("Visit")
                                          .orderby_lit("V")
                                          .orderby_seq("vertex",
                                                       &Visit::vertex)
                                          .hash([](const Visit& v) {
                                            return hash_fields(v.vertex);
                                          }));
                  tables[static_cast<std::size_t>(shard)] = &t;
                  senders[static_cast<std::size_t>(shard)] = &sender;
                  return [&t, &eng](const Visit& v) { eng.put(t, v); };
                }) {}

  static EngineOptions sequential_opts() {
    EngineOptions opts;
    opts.sequential = true;
    return opts;
  }
};

TEST(Mailbox, SeedOutOfRangeThrows) {
  Fixture f;
  EXPECT_THROW(f.cluster.seed(-1, Visit{1}), std::out_of_range);
  EXPECT_THROW(f.cluster.seed(2, Visit{1}), std::out_of_range);
  EXPECT_THROW(f.cluster.seed(100, Visit{1}), std::out_of_range);
}

TEST(Mailbox, SendOutOfRangeThrows) {
  Fixture f;
  EXPECT_THROW(f.senders[0]->send(-1, Visit{1}), std::out_of_range);
  EXPECT_THROW(f.senders[0]->send(2, Visit{1}), std::out_of_range);
}

TEST(Mailbox, DuplicateSendsDedupUnderSetSemantics) {
  Fixture f;
  for (int i = 0; i < 5; ++i) f.senders[0]->send(1, Visit{7});
  f.senders[0]->send(1, Visit{8});
  const ShardedRunReport r = f.cluster.run();
  // 5x Visit{7} collapses to one message; Visit{8} is the other.
  EXPECT_EQ(r.messages, 2);
  EXPECT_EQ(f.tables[1]->gamma_size(), 2u);
  EXPECT_EQ(f.tables[0]->gamma_size(), 0u);
}

TEST(Mailbox, DuplicateSeedsDedupUnderSetSemantics) {
  Fixture f;
  for (int i = 0; i < 5; ++i) f.cluster.seed(0, Visit{3});
  const ShardedRunReport r = f.cluster.run();
  EXPECT_EQ(r.messages, 0);
  EXPECT_EQ(f.tables[0]->gamma_size(), 1u);
}

TEST(Mailbox, EmptyClusterRunCompletesImmediately) {
  Fixture f;
  const ShardedRunReport r = f.cluster.run();
  EXPECT_LE(r.supersteps, 1);
  EXPECT_EQ(r.messages, 0);
  EXPECT_EQ(r.local_messages, 0);
  EXPECT_EQ(r.local_batches, 0);
  EXPECT_EQ(f.tables[0]->gamma_size(), 0u);
  EXPECT_EQ(f.tables[1]->gamma_size(), 0u);
}

}  // namespace
}  // namespace jstar::dist
