// Tests for the visualisation module: DOT graphs and stats reports over a
// real engine run (the Fig 7-style annotated dependency graph).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "viz/viz.h"

namespace jstar::viz {
namespace {

struct In {
  std::int64_t i;
  auto operator<=>(const In&) const = default;
};
struct Out {
  std::int64_t i;
  auto operator<=>(const Out&) const = default;
};

class VizTest : public ::testing::Test {
 protected:
  VizTest() : eng_(EngineOptions{.sequential = true}) {
    in_ = &eng_.table(TableDecl<In>("Input")
                          .orderby_lit("A")
                          .orderby_seq("i", &In::i)
                          .hash([](const In& x) { return hash_fields(x.i); }));
    out_ = &eng_.table(TableDecl<Out>("Output").orderby_lit("B").hash(
        [](const Out& x) { return hash_fields(x.i); }));
    eng_.order({"A", "B"});
    eng_.rule(*in_, "forward", [this](RuleCtx& ctx, const In& x) {
      out_->put(ctx, Out{x.i});
    });
    for (std::int64_t i = 0; i < 7; ++i) eng_.put(*in_, In{i});
    eng_.run();
  }

  Engine eng_;
  Table<In>* in_;
  Table<Out>* out_;
};

TEST_F(VizTest, DotGraphNamesAllTables) {
  const std::string dot = dot_graph(eng_, "test");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Input"), std::string::npos);
  EXPECT_NE(dot.find("Output"), std::string::npos);
}

TEST_F(VizTest, DotGraphShowsDataflowEdgeWithCount) {
  const std::string dot = dot_graph(eng_, "test");
  // Built by append rather than operator+ to sidestep the GCC 12
  // -Wrestrict false positive on char* + string&& (PR 105651).
  std::string edge = "t";
  edge += std::to_string(in_->id());
  edge += " -> t";
  edge += std::to_string(out_->id());
  EXPECT_NE(dot.find(edge), std::string::npos);
  EXPECT_NE(dot.find("label=\"7\""), std::string::npos);
}

TEST_F(VizTest, DotGraphShowsOrderBySpec) {
  const std::string dot = dot_graph(eng_, "test");
  EXPECT_NE(dot.find("seq i"), std::string::npos);
}

TEST_F(VizTest, StatsReportHasOneRowPerTable) {
  const std::string report = stats_report(eng_);
  EXPECT_NE(report.find("Input"), std::string::npos);
  EXPECT_NE(report.find("Output"), std::string::npos);
  EXPECT_NE(report.find("puts"), std::string::npos);
}

TEST_F(VizTest, NoReverseEdge) {
  const std::string dot = dot_graph(eng_, "test");
  std::string reverse = "t";
  reverse += std::to_string(out_->id());
  reverse += " -> t";
  reverse += std::to_string(in_->id());
  EXPECT_EQ(dot.find(reverse), std::string::npos);
}

}  // namespace
}  // namespace jstar::viz
