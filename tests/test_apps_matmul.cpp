// Correctness tests for the MatrixMult case study: both JStar kernels
// (primitive and the boxed XText-bug reproduction) must agree with both
// hand-coded baselines across shapes and strategies.
#include <gtest/gtest.h>

#include "apps/matmul/matmul.h"

namespace jstar::apps::matmul {
namespace {

TEST(Matrix, RandomIsDeterministic) {
  const Matrix a = Matrix::random(8, 8, 3);
  const Matrix b = Matrix::random(8, 8, 3);
  EXPECT_EQ(a, b);
  const Matrix c = Matrix::random(8, 8, 4);
  EXPECT_FALSE(a == c);
}

TEST(Matrix, IdentityMultiplication) {
  Matrix id(3, 3);
  for (int i = 0; i < 3; ++i) id.set(i, i, 1);
  const Matrix a = Matrix::random(3, 3, 9);
  EXPECT_EQ(multiply_naive(a, id), a);
  EXPECT_EQ(multiply_naive(id, a), a);
}

TEST(Matrix, KnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a.set(0, 0, 1); a.set(0, 1, 2); a.set(1, 0, 3); a.set(1, 1, 4);
  b.set(0, 0, 5); b.set(0, 1, 6); b.set(1, 0, 7); b.set(1, 1, 8);
  const Matrix c = multiply_naive(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Matrix, TransposedEqualsNaive) {
  const Matrix a = Matrix::random(17, 23, 1);
  const Matrix b = Matrix::random(23, 11, 2);
  EXPECT_EQ(multiply_transposed(a, b), multiply_naive(a, b));
}

TEST(Matrix, RectangularShapes) {
  const Matrix a = Matrix::random(5, 1, 7);
  const Matrix b = Matrix::random(1, 9, 8);
  const Matrix c = multiply_naive(a, b);
  EXPECT_EQ(c.rows(), 5);
  EXPECT_EQ(c.cols(), 9);
  EXPECT_EQ(multiply_transposed(a, b), c);
}

TEST(Matrix, MismatchedShapesRejected) {
  const Matrix a = Matrix::random(3, 4, 1);
  const Matrix b = Matrix::random(5, 3, 1);
  EXPECT_THROW(multiply_naive(a, b), CheckError);
  EXPECT_THROW(multiply_jstar(a, b, Kernel::Primitive, {}), CheckError);
}

struct MatmulCase {
  int n;
  bool sequential;
  int threads;
  Kernel kernel;
  std::string label;
};

class MatmulJStar : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulJStar, MatchesNaiveBaseline) {
  const MatmulCase& c = GetParam();
  const Matrix a = Matrix::random(c.n, c.n, 11);
  const Matrix b = Matrix::random(c.n, c.n, 22);
  EngineOptions opts;
  opts.sequential = c.sequential;
  opts.threads = c.threads;
  const Matrix got = multiply_jstar(a, b, c.kernel, opts);
  EXPECT_EQ(got, multiply_naive(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulJStar,
    ::testing::Values(
        MatmulCase{1, true, 1, Kernel::Primitive, "n1_seq"},
        MatmulCase{16, true, 1, Kernel::Primitive, "n16_seq"},
        MatmulCase{16, true, 1, Kernel::Boxed, "n16_seq_boxed"},
        MatmulCase{16, true, 1, Kernel::Transposed, "n16_seq_transposed"},
        MatmulCase{33, false, 1, Kernel::Primitive, "n33_par1"},
        MatmulCase{33, false, 4, Kernel::Primitive, "n33_par4"},
        MatmulCase{33, false, 4, Kernel::Boxed, "n33_par4_boxed"},
        MatmulCase{33, false, 4, Kernel::Transposed, "n33_par4_transposed"},
        MatmulCase{64, false, 8, Kernel::Primitive, "n64_par8"}),
    [](const auto& info) { return info.param.label; });

TEST(MatmulJStarMisc, RectangularViaJStar) {
  const Matrix a = Matrix::random(7, 13, 5);
  const Matrix b = Matrix::random(13, 4, 6);
  EngineOptions opts;
  opts.threads = 2;
  EXPECT_EQ(multiply_jstar(a, b, Kernel::Primitive, opts),
            multiply_naive(a, b));
}

TEST(MatmulJStarMisc, RepeatedParallelRunsIdentical) {
  const Matrix a = Matrix::random(24, 24, 1);
  const Matrix b = Matrix::random(24, 24, 2);
  EngineOptions opts;
  opts.threads = 4;
  const Matrix first = multiply_jstar(a, b, Kernel::Primitive, opts);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(multiply_jstar(a, b, Kernel::Primitive, opts), first);
  }
}

}  // namespace
}  // namespace jstar::apps::matmul
