// Tests for EpochWindowStore and the retain_epochs lifetime hint
// (Fig 3 step 4 / §6.6): bounded live size, straggler handling, epoch
// scans, and end-to-end engine behaviour on an iterative program.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/window_store.h"

namespace jstar {
namespace {

struct Cell {
  std::int64_t iter, index;
  double value;
  auto operator<=>(const Cell&) const = default;
};

struct CellHash {
  std::size_t operator()(const Cell& c) const {
    return hash_fields(c.iter, c.index);
  }
};

std::int64_t cell_iter(const Cell& c) { return c.iter; }

TEST(EpochWindowStore, KeepsOnlyWindowEpochs) {
  EpochWindowStore<Cell, CellHash> store(cell_iter, 2);
  for (std::int64_t it = 0; it < 10; ++it) {
    for (std::int64_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(store.insert({it, i, 1.0}));
    }
  }
  // Only iterations 8 and 9 remain live.
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.live_epochs(), 2);
  EXPECT_EQ(store.max_epoch(), 9);
  EXPECT_EQ(store.retired(), 8 * 5);
  EXPECT_TRUE(store.contains({9, 0, 1.0}));
  EXPECT_TRUE(store.contains({8, 4, 1.0}));
  EXPECT_FALSE(store.contains({7, 0, 1.0}));
}

TEST(EpochWindowStore, DuplicateWithinWindowIsDetected) {
  EpochWindowStore<Cell, CellHash> store(cell_iter, 2);
  EXPECT_TRUE(store.insert({0, 1, 2.0}));
  EXPECT_FALSE(store.insert({0, 1, 2.0}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(EpochWindowStore, RetireUpToEmptiesOldBucketsWithoutInserts) {
  // The engine-clock GC entry point (TableDecl::retain): a quiet store
  // must shed history at epoch boundaries even when nothing new arrives.
  EpochWindowStore<Cell, CellHash> store(cell_iter, 2);
  for (std::int64_t it = 0; it < 4; ++it) {
    store.insert({it, 0, 1.0});
  }
  EXPECT_EQ(store.size(), 2u);  // iterations 2 and 3 live
  EXPECT_EQ(store.retire_up_to(2), 1);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains({3, 0, 1.0}));
  EXPECT_FALSE(store.contains({2, 0, 1.0}));
  EXPECT_EQ(store.retire_up_to(10), 1);  // clears the rest, ratchets max
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.retired(), 4);
  // The ratchet keeps dropping stragglers behind the advanced window.
  EXPECT_TRUE(store.insert({5, 0, 1.0}));  // fresh-but-dropped straggler
  EXPECT_EQ(store.size(), 0u);
}

TEST(EpochWindowStore, DuplicateAcrossLiveEpochBucketsIsDetected) {
  // With an engine-clock epoch_of (retain), the same tuple can re-arrive
  // in a later epoch while still live: dedup must span the whole window.
  std::int64_t clock = 0;
  EpochWindowStore<Cell, CellHash> store(
      [&clock](const Cell&) { return clock; }, 3, CellHash{},
      /*clock_epochs=*/true);
  clock = 1;
  EXPECT_TRUE(store.insert({0, 7, 1.0}));
  clock = 2;
  EXPECT_FALSE(store.insert({0, 7, 1.0}));  // still live in epoch-1 bucket
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains({0, 7, 1.0}));
}

TEST(EpochWindowStore, StragglerBehindWindowDroppedButFresh) {
  EpochWindowStore<Cell, CellHash> store(cell_iter, 1);
  EXPECT_TRUE(store.insert({5, 0, 1.0}));
  // Epoch 2 is far behind: dropped immediately, but reported fresh so the
  // engine still fires its rules exactly once.
  EXPECT_TRUE(store.insert({2, 0, 1.0}));
  EXPECT_FALSE(store.contains({2, 0, 1.0}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.retired(), 1);
}

TEST(EpochWindowStore, ScanEpochVisitsOneIteration) {
  EpochWindowStore<Cell, CellHash> store(cell_iter, 3);
  for (std::int64_t it = 0; it < 3; ++it) {
    for (std::int64_t i = 0; i < 4; ++i) store.insert({it, i, 0.0});
  }
  int seen = 0;
  store.scan_epoch(1, [&](const Cell& c) {
    EXPECT_EQ(c.iter, 1);
    ++seen;
  });
  EXPECT_EQ(seen, 4);
  store.scan_epoch(99, [&](const Cell&) { FAIL(); });
}

TEST(EpochWindowStore, ScanVisitsAllLive) {
  EpochWindowStore<Cell, CellHash> store(cell_iter, 2);
  for (std::int64_t it = 0; it < 4; ++it) store.insert({it, 0, 0.0});
  std::vector<std::int64_t> iters;
  store.scan([&](const Cell& c) { iters.push_back(c.iter); });
  std::sort(iters.begin(), iters.end());
  EXPECT_EQ(iters, (std::vector<std::int64_t>{2, 3}));
}

TEST(EpochWindowStore, WindowOfOneIsDoubleBufferDegenerate) {
  EpochWindowStore<Cell, CellHash> store(cell_iter, 1);
  store.insert({0, 0, 0.0});
  store.insert({1, 0, 0.0});
  EXPECT_EQ(store.live_epochs(), 1);
  EXPECT_TRUE(store.contains({1, 0, 0.0}));
}

TEST(EpochWindowStore, InvalidWindowThrows) {
  EXPECT_THROW((EpochWindowStore<Cell, CellHash>(cell_iter, 0)),
               std::logic_error);
}

TEST(EpochWindowStore, ConcurrentInsertsStayConsistent) {
  EpochWindowStore<Cell, CellHash> store(cell_iter, 2);
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        store.insert({i / 100, t * kPerThread + i, 1.0});
      }
    });
  }
  for (auto& th : threads) th.join();
  // Window is 2 epochs x 100 tuples per epoch per thread.
  EXPECT_EQ(store.max_epoch(), (kPerThread - 1) / 100);
  EXPECT_LE(store.live_epochs(), 2);
  std::size_t scanned = 0;
  store.scan([&](const Cell&) { ++scanned; });
  EXPECT_EQ(scanned, store.size());
}

// ---------------------------------------------------------------------------
// Engine integration: an iterative relaxation program with retain_epochs
// keeps its Gamma footprint bounded by the window.
// ---------------------------------------------------------------------------

TEST(RetainEpochs, IterativeProgramHasBoundedGamma) {
  struct Tick {
    std::int64_t iter;
    auto operator<=>(const Tick&) const = default;
  };
  constexpr std::int64_t kIters = 50;
  constexpr std::int64_t kWidth = 20;

  for (const bool sequential : {true, false}) {
    EngineOptions opts;
    opts.sequential = sequential;
    opts.threads = 2;
    Engine eng(opts);
    auto& cell = eng.table(
        TableDecl<Cell>("Cell")
            .orderby_lit("Int")
            .orderby_seq("iter", &Cell::iter)
            .orderby_par("index")
            .hash([](const Cell& c) { return hash_fields(c.iter, c.index); })
            .retain_epochs([](const Cell& c) { return c.iter; }, 2));
    auto& tick = eng.table(TableDecl<Tick>("Tick")
                               .orderby_lit("Int")
                               .orderby_seq("iter", &Tick::iter)
                               .hash([](const Tick& t) {
                                 return hash_fields(t.iter);
                               }));

    // Each tick advances every cell to the next iteration, reading the
    // previous iteration's values (a Jacobi-style sweep).
    eng.rule(tick, "advance", [&](RuleCtx& ctx, const Tick& t) {
      if (t.iter >= kIters) return;
      std::vector<Cell> prev;
      cell.scan([&](const Cell& c) {
        if (c.iter == t.iter) prev.push_back(c);
      });
      for (const Cell& c : prev) {
        cell.put(ctx, Cell{c.iter + 1, c.index, c.value * 0.5 + 1.0});
      }
      tick.put(ctx, Tick{t.iter + 1});
    });

    for (std::int64_t i = 0; i < kWidth; ++i) {
      eng.put(cell, Cell{0, i, 1.0});
    }
    eng.put(tick, Tick{0});
    eng.run();

    // Gamma holds at most 2 iterations of cells.
    EXPECT_LE(cell.gamma_size(), static_cast<std::size_t>(2 * kWidth))
        << "sequential=" << sequential;
    // The final iteration's values converged toward 2.0.
    int finals = 0;
    cell.scan([&](const Cell& c) {
      if (c.iter == kIters) {
        EXPECT_NEAR(c.value, 2.0, 1e-9);
        ++finals;
      }
    });
    EXPECT_EQ(finals, kWidth) << "sequential=" << sequential;
  }
}

}  // namespace
}  // namespace jstar
