// Semantics tests for the core engine: the Fig 2/§3 Ship example, the law
// of causality, set semantics, strata, -noDelta/-noGamma, primary keys,
// effects, and the pseudo-naive loop's behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "core/engine.h"

namespace jstar {
namespace {

/// The Ship tuple of Fig 2: table Ship(int frame -> int x, y, dx, dy)
/// orderby (Int, seq frame).
struct Ship {
  std::int64_t frame, x, y, dx, dy;
  auto operator<=>(const Ship&) const = default;
};

TableDecl<Ship> ship_decl() {
  return TableDecl<Ship>("Ship")
      .orderby_lit("Int")
      .orderby_seq("frame", &Ship::frame)
      .hash([](const Ship& s) {
        return hash_fields(s.frame, s.x, s.y, s.dx, s.dy);
      })
      .primary_key([](const Ship& s) { return s.frame; });
}

TEST(Engine, ShipMovesRightUntilGuardFails) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(ship_decl());
  // foreach (Ship s) { if (s.x < 400) put Ship(s.frame+1, s.x+150, ...) }
  eng.rule(ship, "moveRight", [&](RuleCtx& ctx, const Ship& s) {
    if (s.x < 400) {
      ship.put(ctx, Ship{s.frame + 1, s.x + 150, s.y, s.dx, s.dy});
    }
  });
  eng.put(ship, Ship{0, 10, 10, 150, 0});
  const RunReport report = eng.run();

  // 10 -> 160 -> 310 -> 460 (guard stops): 4 tuples, frames 0..3.
  EXPECT_EQ(ship.gamma_size(), 4u);
  ASSERT_TRUE(eng.run().batches == 0);  // quiescent
  auto f3 = ship.get_unique(3);
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(f3->x, 460);
  EXPECT_EQ(report.tuples, 4);
  EXPECT_EQ(report.batches, 4);  // one frame per batch
}

TEST(Engine, UnconditionalRuleWouldLoopSoGuardMatters) {
  // Bounded variant of the paper's "infinite loop" example: we stop via
  // the guard at a large frame to show the loop really re-triggers.
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(ship_decl());
  eng.rule(ship, "move", [&](RuleCtx& ctx, const Ship& s) {
    if (s.frame < 1000) {
      ship.put(ctx, Ship{s.frame + 1, s.x, s.y, s.dx, s.dy});
    }
  });
  eng.put(ship, Ship{0, 0, 0, 0, 0});
  eng.run();
  EXPECT_EQ(ship.gamma_size(), 1001u);
}

TEST(Engine, CausalityViolationThrows) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(ship_decl());
  eng.rule(ship, "timeTravel", [&](RuleCtx& ctx, const Ship& s) {
    if (s.frame == 1) {
      ship.put(ctx, Ship{0, 1, 1, 1, 1});  // into the past!
    } else if (s.frame == 0) {
      ship.put(ctx, Ship{1, 0, 0, 0, 0});
    }
  });
  eng.put(ship, Ship{0, 10, 10, 0, 0});
  EXPECT_THROW(eng.run(), CausalityViolation);
}

TEST(Engine, CausalityChecksCanBeDisabled) {
  EngineOptions opts{.sequential = true};
  opts.causality_checks = false;
  Engine eng(opts);
  auto& ship = eng.table(ship_decl());
  eng.rule(ship, "pastPut", [&](RuleCtx& ctx, const Ship& s) {
    if (s.frame == 5) ship.put(ctx, Ship{1, 0, 0, 0, 0});
  });
  eng.put(ship, Ship{5, 0, 0, 0, 0});
  EXPECT_NO_THROW(eng.run());
}

TEST(Engine, PutAtSameTimestampIsPresentNotPast) {
  // "rules can affect the future" — and the present (<=, §4).
  struct Evt {
    std::int64_t t, tag;
    auto operator<=>(const Evt&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& evt = eng.table(TableDecl<Evt>("Evt")
                            .orderby_lit("E")
                            .orderby_seq("t", &Evt::t)
                            .hash([](const Evt& e) {
                              return hash_fields(e.t, e.tag);
                            }));
  int fires = 0;
  eng.rule(evt, "sameTime", [&](RuleCtx& ctx, const Evt& e) {
    ++fires;
    if (e.tag == 0) evt.put(ctx, Evt{e.t, 1});  // same timestamp: legal
  });
  eng.put(evt, Evt{3, 0});
  eng.run();
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(evt.gamma_size(), 2u);
}

TEST(Engine, SetSemanticsDiscardDuplicates) {
  struct Item {
    std::int64_t k, v;
    auto operator<=>(const Item&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& src = eng.table(TableDecl<Item>("Src")
                            .orderby_lit("A")
                            .hash([](const Item& i) {
                              return hash_fields(i.k, i.v);
                            }));
  auto& dst = eng.table(TableDecl<Item>("Dst")
                            .orderby_lit("B")
                            .hash([](const Item& i) {
                              return hash_fields(i.k, i.v);
                            }));
  eng.order({"A", "B"});
  std::atomic<int> dst_fires{0};
  eng.rule(src, "dup", [&](RuleCtx& ctx, const Item& i) {
    // Every Src tuple puts the SAME Dst tuple (like the SumMonth dedup).
    dst.put(ctx, Item{99, 99});
    (void)i;
  });
  eng.rule(dst, "count", [&](RuleCtx&, const Item&) { dst_fires.fetch_add(1); });
  for (std::int64_t i = 0; i < 10; ++i) eng.put(src, Item{i, i});
  eng.run();
  EXPECT_EQ(dst.gamma_size(), 1u);
  EXPECT_EQ(dst_fires.load(), 1);
  // 9 duplicates were discarded in the Delta tree (footnote 5).
  EXPECT_EQ(dst.stats().delta_dups.load(), 9);
}

// While a tuple's Delta node is still pending, re-puts dedup in Delta;
// Out fires exactly once and the duplicate is charged to delta_dups.
TEST(Engine, DeltaDuplicateAcrossBatchesSkipsRefire) {
  struct Tick {
    std::int64_t t;
    auto operator<=>(const Tick&) const = default;
  };
  struct Out {
    std::int64_t v;
    auto operator<=>(const Out&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& tick = eng.table(TableDecl<Tick>("Tick")
                             .orderby_lit("T")
                             .orderby_seq("t", &Tick::t)
                             .hash([](const Tick& t) { return hash_fields(t.t); }));
  auto& out = eng.table(TableDecl<Out>("Out")
                            .orderby_lit("U")
                            .hash([](const Out& o) { return hash_fields(o.v); }));
  eng.order({"T", "U"});
  int out_fires = 0;
  // Two ticks in different batches put the same Out tuple; the Out node is
  // still pending in Delta (rank U sorts after every Tick) when the second
  // put arrives, so the duplicate is caught by the Delta set.
  eng.rule(tick, "emit", [&](RuleCtx& ctx, const Tick&) {
    out.put(ctx, Out{7});
  });
  eng.rule(out, "fire", [&](RuleCtx&, const Out&) { ++out_fires; });
  eng.put(tick, Tick{1});
  eng.put(tick, Tick{2});
  eng.run();
  EXPECT_EQ(out_fires, 1);
  EXPECT_EQ(out.stats().delta_dups.load(), 1);
  EXPECT_EQ(out.stats().gamma_dups.load(), 0);
}

// Once a tuple's batch has been popped, an equal-timestamp re-derivation
// (puts at <= are legal, §4) flows through a fresh Delta node into Gamma,
// where it must be dropped as a Gamma duplicate without re-firing rules.
TEST(Engine, GammaDuplicateAtEqualTimestampSkipsRefire) {
  struct Seed {
    std::int64_t t;
    auto operator<=>(const Seed&) const = default;
  };
  struct Echo {
    std::int64_t v;
    auto operator<=>(const Echo&) const = default;
  };
  struct Out {
    std::int64_t v;
    auto operator<=>(const Out&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& seed = eng.table(TableDecl<Seed>("Seed")
                             .orderby_lit("T")
                             .hash([](const Seed& s) { return hash_fields(s.t); }));
  auto& echo = eng.table(TableDecl<Echo>("Echo")
                             .orderby_lit("U")
                             .hash([](const Echo& e) { return hash_fields(e.v); }));
  auto& out = eng.table(TableDecl<Out>("Out")
                            .orderby_lit("U")
                            .hash([](const Out& o) { return hash_fields(o.v); }));
  eng.order({"T", "U"});
  int out_fires = 0;
  // Seed puts Out{7} and Echo{9}, both at rank(U): one batch.  Out{7}
  // enters Gamma and fires; Echo's rule re-derives Out{7} at the same
  // timestamp after the (U) node was already popped.
  eng.rule(seed, "emit", [&](RuleCtx& ctx, const Seed&) {
    out.put(ctx, Out{7});
    echo.put(ctx, Echo{9});
  });
  eng.rule(echo, "reecho", [&](RuleCtx& ctx, const Echo&) {
    out.put(ctx, Out{7});
  });
  eng.rule(out, "fire", [&](RuleCtx&, const Out&) { ++out_fires; });
  eng.put(seed, Seed{0});
  eng.run();
  EXPECT_EQ(out_fires, 1);
  EXPECT_EQ(out.stats().gamma_dups.load(), 1);
}

TEST(Engine, StrataProcessedInDeclaredOrder) {
  struct Token {
    std::int64_t id;
    auto operator<=>(const Token&) const = default;
  };
  auto decl = [](const char* table_name, const char* lit) {
    return TableDecl<Token>(table_name).orderby_lit(lit).hash(
        [](const Token& t) { return hash_fields(t.id); });
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& a = eng.table(decl("A", "LitA"));
  auto& b = eng.table(decl("B", "LitB"));
  auto& c = eng.table(decl("C", "LitC"));
  // Deliberately register in a different order than the causality chain.
  eng.order({"LitC", "LitA", "LitB"});
  std::vector<char> trace;
  eng.rule(a, "ra", [&](RuleCtx&, const Token&) { trace.push_back('A'); });
  eng.rule(b, "rb", [&](RuleCtx&, const Token&) { trace.push_back('B'); });
  eng.rule(c, "rc", [&](RuleCtx&, const Token&) { trace.push_back('C'); });
  eng.put(a, Token{1});
  eng.put(b, Token{2});
  eng.put(c, Token{3});
  eng.run();
  EXPECT_EQ(trace, (std::vector<char>{'C', 'A', 'B'}));
}

TEST(Engine, OrderCycleRejected) {
  Engine eng(EngineOptions{.sequential = true});
  struct T {
    std::int64_t x;
    auto operator<=>(const T&) const = default;
  };
  auto& t = eng.table(TableDecl<T>("T").orderby_lit("X").hash(
      [](const T& v) { return hash_fields(v.x); }));
  eng.order({"X", "Y"});
  eng.order({"Y", "X"});
  EXPECT_THROW(eng.put(t, T{1}), CheckError);
}

TEST(Engine, NoDeltaFiresInline) {
  struct Src {
    std::int64_t i;
    auto operator<=>(const Src&) const = default;
  };
  struct Mid {
    std::int64_t i;
    auto operator<=>(const Mid&) const = default;
  };
  EngineOptions opts{.sequential = true};
  opts.no_delta.insert("Mid");
  Engine eng(opts);
  auto& src = eng.table(TableDecl<Src>("Src").orderby_lit("S").hash(
      [](const Src& s) { return hash_fields(s.i); }));
  auto& mid = eng.table(TableDecl<Mid>("Mid").orderby_lit("M").hash(
      [](const Mid& m) { return hash_fields(m.i); }));
  eng.order({"S", "M"});
  std::vector<std::int64_t> seen;
  eng.rule(src, "emit", [&](RuleCtx& ctx, const Src& s) {
    mid.put(ctx, Mid{s.i * 2});
    // Inline firing: the Mid rule already ran before put returns.
    EXPECT_EQ(seen.back(), s.i * 2);
  });
  eng.rule(mid, "collect", [&](RuleCtx&, const Mid& m) {
    seen.push_back(m.i);
  });
  eng.put(src, Src{21});
  eng.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{42}));
  EXPECT_EQ(mid.stats().delta_inserts.load(), 0);
  EXPECT_EQ(mid.gamma_size(), 1u);
}

TEST(Engine, NoGammaStoresNothingButStillTriggers) {
  struct Evt {
    std::int64_t i;
    auto operator<=>(const Evt&) const = default;
  };
  EngineOptions opts{.sequential = true};
  opts.no_gamma.insert("Evt");
  Engine eng(opts);
  auto& evt = eng.table(TableDecl<Evt>("Evt")
                            .orderby_lit("E")
                            .orderby_seq("i", &Evt::i)
                            .hash([](const Evt& e) { return hash_fields(e.i); }));
  int fires = 0;
  eng.rule(evt, "r", [&](RuleCtx& ctx, const Evt& e) {
    ++fires;
    if (e.i < 5) evt.put(ctx, Evt{e.i + 1});
  });
  eng.put(evt, Evt{0});
  eng.run();
  EXPECT_EQ(fires, 6);
  EXPECT_EQ(evt.gamma_size(), 0u);  // nothing retained (§5.1)
}

TEST(Engine, PrimaryKeyConflictKeepsFirstAndCounts) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(ship_decl());
  struct Cmd {
    std::int64_t i;
    auto operator<=>(const Cmd&) const = default;
  };
  auto& cmd = eng.table(TableDecl<Cmd>("Cmd").orderby_lit("C").hash(
      [](const Cmd& c) { return hash_fields(c.i); }));
  eng.order({"C", "Int"});
  eng.rule(cmd, "mkShips", [&](RuleCtx& ctx, const Cmd&) {
    ship.put(ctx, Ship{1, 100, 0, 0, 0});
    ship.put(ctx, Ship{1, 200, 0, 0, 0});  // same frame, different x
  });
  eng.put(cmd, Cmd{0});
  eng.run();
  EXPECT_EQ(ship.gamma_size(), 1u);
  EXPECT_EQ(ship.stats().pk_conflicts.load(), 1);
  auto s = ship.get_unique(1);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->x, 100);  // first wins
}

TEST(Engine, EffectRunsOncePerFreshTuple) {
  struct Println {
    std::int64_t seqno;
    auto operator<=>(const Println&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  std::vector<std::int64_t> printed;
  auto& out = eng.table(TableDecl<Println>("Println")
                            .orderby_lit("Out")
                            .orderby_seq("seqno", &Println::seqno)
                            .hash([](const Println& p) {
                              return hash_fields(p.seqno);
                            })
                            .effect([&](const Println& p) {
                              printed.push_back(p.seqno);
                            }));
  eng.put(out, Println{3});
  eng.put(out, Println{1});
  eng.put(out, Println{2});
  eng.put(out, Println{1});  // duplicate
  eng.run();
  // Effects fire in causality order — the "kosher way of printing" with a
  // defined output sorting order (§6.2 footnote 8).
  EXPECT_EQ(printed, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Engine, EventDrivenRerun) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(ship_decl());
  std::atomic<int> fires{0};
  eng.rule(ship, "obs", [&](RuleCtx&, const Ship&) { fires.fetch_add(1); });
  eng.put(ship, Ship{0, 0, 0, 0, 0});
  eng.run();
  EXPECT_EQ(fires.load(), 1);
  // New external input arrives; the database persists across runs (§3's
  // event-driven framing).
  eng.put(ship, Ship{1, 5, 5, 0, 0});
  eng.run();
  EXPECT_EQ(fires.load(), 2);
  EXPECT_EQ(ship.gamma_size(), 2u);
}

TEST(Engine, DeclarationsAfterPrepareRejected) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(ship_decl());
  eng.put(ship, Ship{0, 0, 0, 0, 0});
  EXPECT_THROW(eng.order({"A", "B"}), CheckError);
  EXPECT_THROW(eng.table(TableDecl<Ship>("Late").orderby_lit("L").hash(
                   [](const Ship&) { return 0u; })),
               CheckError);
}

TEST(Engine, TableWithoutHashRejected) {
  Engine eng;
  EXPECT_THROW(eng.table(TableDecl<Ship>("NoHash").orderby_lit("X")),
               CheckError);
}

TEST(Engine, TableWithoutComparableLevelRejected) {
  Engine eng(EngineOptions{.sequential = true});
  auto& t = eng.table(TableDecl<Ship>("OnlyPar")
                          .orderby_par("x")
                          .hash([](const Ship& s) { return hash_fields(s.x); }));
  EXPECT_THROW(eng.put(t, Ship{0, 0, 0, 0, 0}), CheckError);
}

TEST(Engine, ParFieldsShareOneBatch) {
  struct Task {
    std::int64_t id;
    auto operator<=>(const Task&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& task = eng.table(TableDecl<Task>("Task")
                             .orderby_lit("T")
                             .orderby_par("id")
                             .hash([](const Task& t) {
                               return hash_fields(t.id);
                             }));
  for (std::int64_t i = 0; i < 50; ++i) eng.put(task, Task{i});
  const RunReport report = eng.run();
  // All 50 tuples are in one causality equivalence class.
  EXPECT_EQ(report.batches, 1);
  EXPECT_EQ(report.max_batch, 50);
}

TEST(Engine, SeqFieldsMakeSeparateBatches) {
  struct Task {
    std::int64_t id;
    auto operator<=>(const Task&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& task = eng.table(TableDecl<Task>("Task")
                             .orderby_lit("T")
                             .orderby_seq("id", &Task::id)
                             .hash([](const Task& t) {
                               return hash_fields(t.id);
                             }));
  for (std::int64_t i = 0; i < 50; ++i) eng.put(task, Task{i});
  const RunReport report = eng.run();
  EXPECT_EQ(report.batches, 50);
  EXPECT_EQ(report.max_batch, 1);
}

TEST(Engine, QueriesSeeAllTuplesOfCurrentBatch) {
  // Positive queries at timestamp == now must see every tuple of the
  // batch (phase A completes before phase B), deterministically.
  struct Item {
    std::int64_t grp, id;
    auto operator<=>(const Item&) const = default;
  };
  Engine eng(EngineOptions{.threads = 4});
  auto& item = eng.table(TableDecl<Item>("Item")
                             .orderby_lit("I")
                             .orderby_seq("grp", &Item::grp)
                             .hash([](const Item& i) {
                               return hash_fields(i.grp, i.id);
                             }));
  std::atomic<int> bad{0};
  eng.rule(item, "countSiblings", [&](RuleCtx&, const Item& it) {
    const std::int64_t n = item.count_if(
        [&](const Item& o) { return o.grp == it.grp; });
    if (n != 10) bad.fetch_add(1);
  });
  for (std::int64_t g = 0; g < 3; ++g) {
    for (std::int64_t i = 0; i < 10; ++i) eng.put(item, Item{g, i});
  }
  eng.run();
  EXPECT_EQ(bad.load(), 0);
}

TEST(Engine, StatsCountersAreConsistent) {
  Engine eng(EngineOptions{.sequential = true});
  auto& ship = eng.table(ship_decl());
  eng.rule(ship, "move", [&](RuleCtx& ctx, const Ship& s) {
    if (s.x < 400) ship.put(ctx, Ship{s.frame + 1, s.x + 150, s.y, s.dx, s.dy});
  });
  eng.put(ship, Ship{0, 10, 10, 150, 0});
  eng.run();
  const auto& st = ship.stats();
  EXPECT_EQ(st.puts.load(), 4);
  EXPECT_EQ(st.delta_inserts.load(), 4);
  EXPECT_EQ(st.gamma_inserts.load(), 4);
  EXPECT_EQ(st.fires.load(), 4);
}

TEST(Engine, EdgeMatrixRecordsDataflow) {
  struct A {
    std::int64_t i;
    auto operator<=>(const A&) const = default;
  };
  struct B {
    std::int64_t i;
    auto operator<=>(const B&) const = default;
  };
  Engine eng(EngineOptions{.sequential = true});
  auto& a = eng.table(TableDecl<A>("A").orderby_lit("La").hash(
      [](const A& x) { return hash_fields(x.i); }));
  auto& b = eng.table(TableDecl<B>("B").orderby_lit("Lb").hash(
      [](const B& x) { return hash_fields(x.i); }));
  eng.order({"La", "Lb"});
  eng.rule(a, "a2b", [&](RuleCtx& ctx, const A& x) { b.put(ctx, B{x.i}); });
  for (std::int64_t i = 0; i < 5; ++i) eng.put(a, A{i});
  eng.run();
  EXPECT_EQ(eng.edges().count(a.id(), b.id()), 5);
  EXPECT_EQ(eng.edges().count(b.id(), a.id()), 0);
}

}  // namespace
}  // namespace jstar
