// Tests for the concurrent containers: the lazy skip-list map/set (the
// ConcurrentSkipListMap/Set stand-ins used by the Delta tree and Gamma)
// and the striped hash map/set (ConcurrentHashMap stand-in, §6.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/skip_list_map.h"
#include "concurrent/skip_list_set.h"
#include "concurrent/striped_hash_map.h"
#include "core/key.h"
#include "core/striped_delta_tree.h"
#include "util/rng.h"

namespace jstar::concurrent {
namespace {

TEST(SkipListMap, InsertAndFind) {
  SkipListMap<int, int> m;
  EXPECT_TRUE(m.insert(5, 50));
  EXPECT_TRUE(m.insert(3, 30));
  EXPECT_FALSE(m.insert(5, 99));  // set semantics: duplicate key rejected
  EXPECT_TRUE(m.contains(5));
  EXPECT_TRUE(m.contains(3));
  EXPECT_FALSE(m.contains(4));
  ASSERT_NE(m.find_value(5), nullptr);
  EXPECT_EQ(*m.find_value(5), 50);  // first value wins
  EXPECT_EQ(m.find_value(4), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(SkipListMap, GetOrInsertCallsFactoryOnce) {
  SkipListMap<int, int> m;
  int calls = 0;
  int& v1 = m.get_or_insert(7, [&] { ++calls; return 70; });
  int& v2 = m.get_or_insert(7, [&] { ++calls; return 71; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(&v1, &v2);
  EXPECT_EQ(v1, 70);
}

TEST(SkipListMap, OrderedTraversal) {
  SkipListMap<int, int> m;
  for (int k : {9, 1, 5, 3, 7}) m.insert(k, k * 10);
  std::vector<int> keys;
  m.for_each([&](const int& k, const int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(SkipListMap, RangeScan) {
  SkipListMap<int, int> m;
  for (int k = 0; k < 20; ++k) m.insert(k, k);
  std::vector<int> keys;
  m.for_range(5, 12, [&](const int& k, const int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<int>{5, 6, 7, 8, 9, 10, 11}));
}

TEST(SkipListMap, RangeScanEmptyWindow) {
  SkipListMap<int, int> m;
  m.insert(1, 1);
  m.insert(10, 10);
  int count = 0;
  m.for_range(2, 9, [&](const int&, const int&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(SkipListMap, EraseThenReinsert) {
  SkipListMap<int, int> m;
  m.insert(4, 40);
  EXPECT_TRUE(m.erase(4));
  EXPECT_FALSE(m.erase(4));
  EXPECT_FALSE(m.contains(4));
  EXPECT_TRUE(m.insert(4, 44));
  EXPECT_EQ(*m.find_value(4), 44);
  m.collect_garbage();
  EXPECT_TRUE(m.contains(4));
}

TEST(SkipListMap, PopMinDrainsInOrder) {
  SkipListMap<int, int> m;
  for (int k : {5, 2, 8, 1}) m.insert(k, k);
  int key, value;
  std::vector<int> order;
  while (m.pop_min(key, value)) order.push_back(key);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5, 8}));
  EXPECT_TRUE(m.empty());
}

TEST(SkipListMap, PeekMin) {
  SkipListMap<int, int> m;
  EXPECT_EQ(m.peek_min(), nullptr);
  m.insert(9, 9);
  m.insert(2, 2);
  ASSERT_NE(m.peek_min(), nullptr);
  EXPECT_EQ(*m.peek_min(), 2);
}

TEST(SkipListMap, ConcurrentDistinctInserts) {
  SkipListMap<int, int> m;
  constexpr int kPerThread = 5000;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        m.insert(t * kPerThread + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kPerThread * kThreads));
  // Order must be intact after the concurrent phase.
  int prev = -1, count = 0;
  m.for_each([&](const int& k, const int&) {
    EXPECT_GT(k, prev);
    prev = k;
    ++count;
  });
  EXPECT_EQ(count, kPerThread * kThreads);
}

TEST(SkipListMap, ConcurrentCollidingInsertsKeepSetSemantics) {
  SkipListMap<int, int> m;
  constexpr int kKeys = 500;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kKeys; ++i) {
        if (m.insert(i, i)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), kKeys);  // each key inserted exactly once
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kKeys));
}

TEST(SkipListMap, ConcurrentGetOrInsertSingleFactoryWinner) {
  SkipListMap<int, std::int64_t> m;
  std::atomic<int> factory_calls{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        std::int64_t& v = m.get_or_insert(i, [&] {
          factory_calls.fetch_add(1);
          return static_cast<std::int64_t>(i) * 3;
        });
        EXPECT_EQ(v, static_cast<std::int64_t>(i) * 3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(factory_calls.load(), 200);
}

TEST(SkipListMap, MixedInsertEraseStress) {
  SkipListMap<int, int> m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 3000; ++i) {
        const int k = static_cast<int>(rng.next_below(256));
        if (rng.next() & 1) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Whatever survived must still be a sorted set of distinct keys.
  std::vector<int> keys;
  m.for_each([&](const int& k, const int&) { keys.push_back(k); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
  m.collect_garbage();
}

TEST(SkipListSet, BasicSetOperations) {
  SkipListSet<int> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.empty());
}

TEST(SkipListSet, PopMinAndRange) {
  SkipListSet<int> s;
  for (int v : {4, 1, 3, 2}) s.insert(v);
  std::vector<int> range;
  s.for_range(2, 4, [&](const int& v) { range.push_back(v); });
  EXPECT_EQ(range, (std::vector<int>{2, 3}));
  int out;
  ASSERT_TRUE(s.pop_min(out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(s.size(), 3u);
}

TEST(StripedHashMap, InsertLookupErase) {
  StripedHashMap<int, std::string> m;
  EXPECT_TRUE(m.insert(1, "one"));
  EXPECT_FALSE(m.insert(1, "uno"));
  std::string out;
  ASSERT_TRUE(m.lookup(1, out));
  EXPECT_EQ(out, "one");
  EXPECT_FALSE(m.lookup(2, out));
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 0u);
}

TEST(StripedHashMap, GetOrInsertStableReference) {
  StripedHashMap<int, int> m;
  int& a = m.get_or_insert(9, [] { return 90; });
  int& b = m.get_or_insert(9, [] { return 91; });
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a, 90);
}

TEST(StripedHashMap, UpdateUnderLock) {
  StripedHashMap<int, int> m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        m.update(i % 10, [](int& v) { ++v; });
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total = 0;
  m.for_each([&](const int&, const int& v) { total += v; });
  EXPECT_EQ(total, 4000);
}

TEST(StripedHashMap, ConcurrentInsertDistinct) {
  StripedHashMap<int, int> m(32);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) m.insert(t * 2000 + i, i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.size(), 8000u);
}

TEST(StripedHashSet, SetSemanticsUnderContention) {
  StripedHashSet<int> s(16);
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (s.insert(i)) wins.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 1000);
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_TRUE(s.contains(999));
  EXPECT_FALSE(s.contains(1000));
}

// StripedDeltaTree's maintenance entry points (batch_count,
// collect_garbage) take all stripe locks in one deterministic ascending
// order; interleave them from 8 threads against concurrent get_or_insert
// traffic — any ordering disagreement deadlocks, any size-counter skew
// trips collect_garbage's consistency check.
TEST(StripedDeltaTree, MaintenanceInterleavesWithInsertsAcross8Threads) {
  jstar::StripedDeltaTree tree(8);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr std::uint64_t kKeySpace = 512;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(static_cast<std::uint64_t>(t) * 977 + 1);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t dice = rng.next_below(100);
        if (dice < 90) {
          jstar::DeltaKey k;
          k.push_back(static_cast<std::int64_t>(rng.next_below(kKeySpace)));
          tree.get_or_insert(k);
        } else if (dice < 95) {
          // Consistent snapshot under all stripe locks.
          EXPECT_LE(tree.batch_count(), static_cast<std::size_t>(kKeySpace));
        } else {
          tree.collect_garbage();  // validates the lock-free size cache
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Exclusive drain: keys come out in strict global causality order and
  // the lock-free emptiness flips exactly at the end.
  EXPECT_FALSE(tree.empty());
  jstar::DeltaKey key, prev;
  std::unique_ptr<jstar::BatchNode> node;
  std::size_t drained = 0;
  while (tree.pop_min(key, node)) {
    if (drained > 0) {
      EXPECT_EQ((prev <=> key), std::strong_ordering::less);
    }
    prev = key;
    ++drained;
  }
  EXPECT_GT(drained, 0u);
  EXPECT_LE(drained, static_cast<std::size_t>(kKeySpace));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.batch_count(), 0u);
}

}  // namespace
}  // namespace jstar::concurrent
