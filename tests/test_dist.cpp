// Tests for the sharded (distributed) engine (§2 stage 3 / the cluster
// exploration [7]): a partitioned BFS reachability program and a sharded
// aggregation must produce exactly the single-engine answer, for any
// shard count, with deterministic results across runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "dist/sharded.h"
#include "util/rng.h"

namespace jstar::dist {
namespace {

// ---------------------------------------------------------------------------
// Workload: BFS reachability over a random directed graph.  Vertices are
// partitioned by hash; Visit tuples for remote vertices travel as mail.
// ---------------------------------------------------------------------------

struct Visit {
  std::int64_t vertex;
  auto operator<=>(const Visit&) const = default;
};

using Graph = std::vector<std::vector<std::int64_t>>;  // adjacency

Graph random_graph(std::int64_t vertices, std::int64_t edges,
                   std::uint64_t seed) {
  Graph g(static_cast<std::size_t>(vertices));
  SplitMix64 rng(seed);
  for (std::int64_t e = 0; e < edges; ++e) {
    const auto from = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    const auto to = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(vertices)));
    g[static_cast<std::size_t>(from)].push_back(to);
  }
  return g;
}

std::set<std::int64_t> reference_reachable(const Graph& g,
                                           std::int64_t start) {
  std::set<std::int64_t> seen{start};
  std::vector<std::int64_t> frontier{start};
  while (!frontier.empty()) {
    std::vector<std::int64_t> next;
    for (const std::int64_t v : frontier) {
      for (const std::int64_t to : g[static_cast<std::size_t>(v)]) {
        if (seen.insert(to).second) next.push_back(to);
      }
    }
    frontier = std::move(next);
  }
  return seen;
}

std::set<std::int64_t> sharded_reachable(const Graph& g, std::int64_t start,
                                         int shards, bool sequential,
                                         ShardedMode mode = ShardedMode::Bsp) {
  EngineOptions opts;
  opts.sequential = sequential;
  opts.threads = 2;
  ShardedOptions sopts;
  sopts.mode = mode;

  struct ShardState {
    Table<Visit>* visits = nullptr;
  };
  auto states = std::make_shared<std::vector<ShardState>>(
      static_cast<std::size_t>(shards));

  ShardedEngine<Visit> cluster(
      shards, opts, sopts,
      [&g, states, shards](int shard, Engine& eng, Sender<Visit>& sender) {
        auto& visits = eng.table(TableDecl<Visit>("Visit")
                                     .orderby_lit("V")
                                     .orderby_seq("vertex", &Visit::vertex)
                                     .hash([](const Visit& v) {
                                       return hash_fields(v.vertex);
                                     }));
        (*states)[static_cast<std::size_t>(shard)].visits = &visits;
        eng.rule(visits, "expand",
                 [&g, &visits, &sender, shard, shards](RuleCtx& ctx,
                                                       const Visit& v) {
                   for (const std::int64_t to :
                        g[static_cast<std::size_t>(v.vertex)]) {
                     // Causality note: Visit keys are vertex ids, not
                     // times; a BFS discovers vertices in any order, so
                     // route every derived Visit through the mailbox (an
                     // initial put next superstep) rather than a local
                     // put that could violate the local ordering.
                     (void)ctx;
                     const int dest = partition_of(to, shards);
                     (void)shard;
                     sender.send(dest, Visit{to});
                   }
                 });
        return [&visits, &eng](const Visit& v) { eng.put(visits, v); };
      });

  cluster.seed(partition_of(start, shards), Visit{start});
  const ShardedRunReport report = cluster.run();
  EXPECT_GE(report.supersteps, 1);

  std::set<std::int64_t> reached;
  for (int s = 0; s < shards; ++s) {
    (*states)[static_cast<std::size_t>(s)].visits->scan(
        [&](const Visit& v) { reached.insert(v.vertex); });
  }
  return reached;
}

class ShardedBfs
    : public ::testing::TestWithParam<std::tuple<int, bool, ShardedMode>> {};

TEST_P(ShardedBfs, MatchesSingleEngineReference) {
  const int shards = std::get<0>(GetParam());
  const bool sequential = std::get<1>(GetParam());
  const ShardedMode mode = std::get<2>(GetParam());
  const Graph g = random_graph(400, 900, 7);
  const auto expect = reference_reachable(g, 0);
  const auto got = sharded_reachable(g, 0, shards, sequential, mode);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardedBfs,
    ::testing::Combine(::testing::Values(1, 2, 3, 8),
                       ::testing::Values(true, false),
                       ::testing::Values(ShardedMode::Bsp,
                                         ShardedMode::Async)),
    [](const auto& info) {
      return "shards" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_seq" : "_par") +
             (std::get<2>(info.param) == ShardedMode::Bsp ? "_bsp"
                                                          : "_async");
    });

TEST(ShardedBfsMisc, RepeatedRunsAreDeterministic) {
  const Graph g = random_graph(300, 700, 21);
  for (const ShardedMode mode : {ShardedMode::Bsp, ShardedMode::Async}) {
    const auto first = sharded_reachable(g, 0, 4, false, mode);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(sharded_reachable(g, 0, 4, false, mode), first)
          << "run " << i;
    }
  }
}

TEST(ShardedBfsMisc, DisconnectedStartReachesOnlyItself) {
  Graph g(10);  // no edges at all
  const auto got = sharded_reachable(g, 3, 2, true);
  EXPECT_EQ(got, std::set<std::int64_t>{3});
}

// ---------------------------------------------------------------------------
// Workload: sharded sum-by-key aggregation (the PvWatts shape, partitioned
// by month instead of consumer threads).
// ---------------------------------------------------------------------------

struct Obs {
  std::int64_t key, value;
  auto operator<=>(const Obs&) const = default;
};

TEST(ShardedAggregate, PartitionedSumsMatchReference) {
  constexpr int kShards = 3;
  constexpr std::int64_t kN = 5000;

  EngineOptions opts;
  opts.sequential = true;

  struct State {
    std::map<std::int64_t, std::int64_t> sums;
  };
  auto states =
      std::make_shared<std::vector<State>>(static_cast<std::size_t>(kShards));

  ShardedEngine<Obs> cluster(
      kShards, opts,
      [states](int shard, Engine& eng, Sender<Obs>&) {
        auto& obs = eng.table(TableDecl<Obs>("Obs")
                                  .orderby_lit("O")
                                  .orderby_par("key")
                                  .orderby_seq("value", &Obs::value)
                                  .hash([](const Obs& o) {
                                    return hash_fields(o.key, o.value);
                                  }));
        auto* mine = &(*states)[static_cast<std::size_t>(shard)];
        eng.rule(obs, "sum", [mine](RuleCtx&, const Obs& o) {
          mine->sums[o.key] += o.value;
        });
        return [&obs, &eng](const Obs& o) { eng.put(obs, o); };
      });

  std::map<std::int64_t, std::int64_t> expect;
  SplitMix64 rng(5);
  for (std::int64_t i = 0; i < kN; ++i) {
    const auto key = static_cast<std::int64_t>(rng.next_below(12));
    // Distinct values per key so set semantics keeps every observation.
    const Obs o{key, i};
    expect[key] += o.value;
    cluster.seed(partition_of(key, kShards), o);
  }
  cluster.run();

  std::map<std::int64_t, std::int64_t> got;
  for (const State& s : *states) {
    for (const auto& [k, v] : s.sums) {
      EXPECT_EQ(got.count(k), 0u) << "key " << k << " on two shards";
      got[k] += v;
    }
  }
  EXPECT_EQ(got, expect);
}

TEST(ShardedEngineMisc, SingleShardDegeneratesToLocalEngine) {
  EngineOptions opts;
  opts.sequential = true;
  Table<Visit>* visits = nullptr;
  ShardedEngine<Visit> cluster(
      1, opts, [&visits](int, Engine& eng, Sender<Visit>&) {
        auto& t = eng.table(TableDecl<Visit>("Visit")
                                .orderby_lit("V")
                                .orderby_seq("vertex", &Visit::vertex)
                                .hash([](const Visit& v) {
                                  return hash_fields(v.vertex);
                                }));
        visits = &t;
        return [&t, &eng](const Visit& v) { eng.put(t, v); };
      });
  cluster.seed(0, Visit{42});
  const auto report = cluster.run();
  EXPECT_EQ(report.messages, 0);
  EXPECT_EQ(visits->gamma_size(), 1u);
}

TEST(ShardedEngineMisc, InvalidShardCountThrows) {
  EngineOptions opts;
  EXPECT_THROW(ShardedEngine<Visit>(0, opts,
                                    [](int, Engine&, Sender<Visit>&) {
                                      return ShardedEngine<Visit>::Deliver{};
                                    }),
               std::logic_error);
}

}  // namespace
}  // namespace jstar::dist
