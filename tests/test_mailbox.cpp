// Unit + stress tests for the double-buffered Mailbox<T> that carries all
// inter-shard mail (src/dist/mailbox.h).  The contracts under test are the
// ones the async executor's termination detector leans on after the
// batched-fabric rework: raw-push credit grants balanced exactly by
// Drained::credits (even though delivery dedups), bulk push_all crediting
// under the same visibility rule, wakeup coalescing (notify only on the
// empty→nonempty transition), empty-poll vs non-empty-drain accounting,
// and the timed (deadlock-free) capacity backpressure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "dist/mailbox.h"
#include "util/rng.h"

namespace jstar::dist {
namespace {

// --- single-threaded contracts ---------------------------------------------

TEST(Mailbox, PushDrainRoundTrip) {
  Mailbox<int> box;
  EXPECT_FALSE(box.has_mail());
  box.push(2);
  box.push(1);
  EXPECT_TRUE(box.has_mail());
  const auto d = box.drain();
  EXPECT_EQ(d.mail, (std::vector<int>{1, 2}));  // drain sorts
  EXPECT_EQ(d.credits, 2);
  EXPECT_FALSE(box.has_mail());
  EXPECT_TRUE(box.drain().mail.empty());
}

TEST(Mailbox, DedupsAtDrainButCreditsRawPushes) {
  Mailbox<int> box;
  box.push(7);
  box.push(7);  // duplicate: still appended, still credited
  box.push(7);
  EXPECT_EQ(box.pending_size(), 3);  // raw undrained pushes
  const auto d = box.drain();
  EXPECT_EQ(d.mail, std::vector<int>{7});  // delivered once per epoch
  EXPECT_EQ(d.credits, 3);                 // repay exactly what was granted
}

TEST(Mailbox, RedeliveryAfterSwapIsFreshAgain) {
  Mailbox<int> box;
  box.push(7);
  EXPECT_EQ(box.drain().mail, std::vector<int>{7});
  // The epoch advanced: the same tuple is a *new* delivery now (the
  // receiving engine's set semantics is what makes it a no-op there).
  box.push(7);
  EXPECT_EQ(box.drain().mail, std::vector<int>{7});
}

TEST(Mailbox, EmptyPollsCountAsPollsNotDrains) {
  Mailbox<int> box;
  EXPECT_EQ(box.polls(), 0);
  EXPECT_EQ(box.drains(), 0);
  box.push(1);
  (void)box.drain();
  (void)box.drain();  // empty poll: advances polls only
  (void)box.drain();
  EXPECT_EQ(box.polls(), 3);
  EXPECT_EQ(box.drains(), 1);  // only the drain that carried mail
}

TEST(Mailbox, PendingCounterCountsRawPushesAndDrainRepaysExactly) {
  Mailbox<int> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);
  box.push(1);
  box.push(1);  // duplicate: credited anyway (dedup happens at drain)
  box.push(2);
  EXPECT_EQ(pending.load(), 3);
  const auto d = box.drain();
  EXPECT_EQ(d.mail, (std::vector<int>{1, 2}));
  pending.fetch_sub(d.credits);
  EXPECT_EQ(pending.load(), 0);  // balanced despite the dedup
  box.set_pending_counter(nullptr);
  box.push(3);  // detached: no credit
  EXPECT_EQ(pending.load(), 0);
}

TEST(Mailbox, PushAllGrantsBulkCreditsAndDedupsAtDrain) {
  Mailbox<int> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);
  const std::vector<int> batch{5, 3, 5, 9, 3};
  EXPECT_EQ(box.push_all(batch.begin(), batch.end()), 5);
  EXPECT_EQ(pending.load(), 5);  // one bulk grant, duplicates included
  EXPECT_EQ(box.pending_size(), 5);
  const auto d = box.drain();
  EXPECT_EQ(d.mail, (std::vector<int>{3, 5, 9}));
  EXPECT_EQ(d.credits, 5);
  pending.fetch_sub(d.credits);
  EXPECT_EQ(pending.load(), 0);
  // Empty batch: no credit, no wakeup, nothing to drain.
  const std::vector<int> empty;
  EXPECT_EQ(box.push_all(empty.begin(), empty.end()), 0);
  EXPECT_EQ(pending.load(), 0);
}

TEST(Mailbox, WakeupsCoalesceToEmptyNonemptyTransitions) {
  Mailbox<int> box;
  EXPECT_EQ(box.wakeups(), 0);
  for (int i = 0; i < 100; ++i) box.push(i);
  EXPECT_EQ(box.wakeups(), 1);  // only the first push woke anyone
  (void)box.drain();
  const std::vector<int> batch{1, 2, 3};
  (void)box.push_all(batch.begin(), batch.end());
  (void)box.push_all(batch.begin(), batch.end());
  box.push(9);
  EXPECT_EQ(box.wakeups(), 2);  // one more transition after the drain
}

TEST(Mailbox, WaitReturnsOnMailAndOnStop) {
  Mailbox<int> box;
  box.push(5);
  box.wait([] { return false; });  // mail present: returns immediately
  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    (void)box.drain();
    box.wait([&] { return stop.load(); });
  });
  stop.store(true);
  box.poke();
  waiter.join();
  SUCCEED();
}

TEST(Mailbox, WaitForReportsMailVsTimeout) {
  Mailbox<int> box;
  box.push(1);
  EXPECT_TRUE(box.wait_for(std::chrono::milliseconds(1), [] { return false; }));
  (void)box.drain();
  // Empty box: a short wait times out and reports no mail.
  EXPECT_FALSE(
      box.wait_for(std::chrono::microseconds(100), [] { return false; }));
}

// --- signed lane (retraction / upsert mail) ---------------------------------

// The signed lane never dedups (multiplicities are data), yet its credits
// follow the same raw-push rule as the unsigned lane.  In particular a
// retraction pushed right behind its own insertion — the pair a receiver
// annihilates to nothing — must still repay both credits, or the async
// termination detector would wait forever on mail that "vanished".
TEST(MailboxSigned, RetractionBehindItsInsertionStillRepaysCredits) {
  Mailbox<int> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);
  box.push(7);            // unsigned lane, dedups at drain
  box.push(7);
  box.push_signed(7, +1);
  box.push_signed(7, -1);  // cancels the insertion at the receiving table
  box.push_signed(7, -1);  // debt
  EXPECT_EQ(pending.load(), 5);
  EXPECT_EQ(box.pending_size(), 5);
  const auto d = box.drain();
  EXPECT_EQ(d.mail, std::vector<int>{7});  // unsigned dedup unchanged
  ASSERT_EQ(d.signed_mail.size(), 3u);     // signed mail never deduped
  std::int64_t net = 0;
  for (const auto& [t, s] : d.signed_mail) {
    EXPECT_EQ(t, 7);
    net += s;
  }
  EXPECT_EQ(net, -1);
  EXPECT_EQ(d.credits, 5);  // raw pushes across both lanes, pre-dedup
  pending.fetch_sub(d.credits);
  EXPECT_EQ(pending.load(), 0);
}

TEST(MailboxSigned, PushAllSignedGrantsBulkCreditsAndPreservesOrder) {
  Mailbox<int> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);
  const std::vector<std::pair<int, std::int32_t>> batch{
      {5, 1}, {5, -1}, {5, 1}, {9, -1}};
  EXPECT_EQ(box.push_all_signed(batch.begin(), batch.end()), 4);
  EXPECT_EQ(pending.load(), 4);
  const auto d = box.drain();
  EXPECT_TRUE(d.mail.empty());
  EXPECT_EQ(d.signed_mail, batch);  // verbatim, in push order
  EXPECT_EQ(d.credits, 4);
  pending.fetch_sub(d.credits);
  EXPECT_EQ(pending.load(), 0);
}

TEST(MailboxSigned, SignedPushWakesAndCountsAsDrain) {
  Mailbox<int> box;
  EXPECT_EQ(box.wakeups(), 0);
  box.push_signed(1, -1);
  EXPECT_EQ(box.wakeups(), 1);  // empty→nonempty seen across both lanes
  EXPECT_TRUE(box.has_mail());
  const auto d = box.drain();
  ASSERT_EQ(d.signed_mail.size(), 1u);
  EXPECT_EQ(box.drains(), 1);  // signed-only mail is still a real drain
  EXPECT_FALSE(box.has_mail());
}

// Duplicate-cancellation credit stress: producers blast insert/retract
// pairs of the same tiny tuple universe — every pair nets to zero at the
// receiver — while a consumer drains concurrently.  Deliveries must
// conserve the per-tuple net sign and every granted credit must be
// repaid, which is exactly the Dijkstra–Scholten soundness condition the
// async executor's termination detector needs from this lane.
TEST(MailboxStress, SignedDuplicateCancellationKeepsCreditsBalanced) {
  constexpr int kProducers = 8;
  constexpr std::int64_t kUniverse = 16;
  constexpr std::int64_t kPairs = 4000;
  Mailbox<std::int64_t> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);

  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &live, p] {
      SplitMix64 rng(static_cast<std::uint64_t>(p) * 131 + 7);
      std::vector<std::pair<std::int64_t, std::int32_t>> batch;
      for (std::int64_t i = 0; i < kPairs; ++i) {
        const auto v =
            static_cast<std::int64_t>(rng.next_below(kUniverse));
        if (p % 2 == 0) {
          box.push_signed(v, +1);
          box.push_signed(v, -1);
        } else {
          batch.emplace_back(v, +1);
          batch.emplace_back(v, -1);
          if (batch.size() >= 32) {
            box.push_all_signed(batch.begin(), batch.end());
            batch.clear();
          }
        }
        if (rng.next_below(64) == 0) std::this_thread::yield();
      }
      if (!batch.empty()) box.push_all_signed(batch.begin(), batch.end());
      live.fetch_sub(1);
    });
  }

  std::int64_t credits = 0;
  std::int64_t delivered = 0;
  std::vector<std::int64_t> net(kUniverse, 0);
  const auto absorb = [&](const Mailbox<std::int64_t>::Drained& d) {
    EXPECT_TRUE(d.mail.empty());  // nothing used the unsigned lane
    for (const auto& [v, s] : d.signed_mail) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kUniverse);
      net[static_cast<std::size_t>(v)] += s;
      ++delivered;
    }
    credits += d.credits;
    pending.fetch_sub(d.credits);
  };
  while (live.load() > 0 || box.has_mail()) absorb(box.drain());
  for (auto& t : producers) t.join();
  absorb(box.drain());

  // No dedup ever: every signed push is delivered, credited, and repaid.
  EXPECT_EQ(delivered, 2 * kProducers * kPairs);
  EXPECT_EQ(credits, delivered);
  EXPECT_EQ(pending.load(), 0);
  // Pairwise cancellation conserved tuple-for-tuple.
  for (const std::int64_t n : net) EXPECT_EQ(n, 0);
}

// --- backpressure -----------------------------------------------------------

TEST(MailboxBackpressure, ThrottledPushWaitsForTheConsumer) {
  Mailbox<int> box;
  box.set_capacity(4, std::chrono::seconds(5));
  std::vector<int> batch{0, 1, 2, 3, 4, 5};
  // From empty the bound is checked before appending, so one batch may
  // overshoot (the bound is a throttle, not a hard invariant)...
  (void)box.push_all(batch.begin(), batch.end());
  EXPECT_EQ(box.throttled(), 0);
  // ...but the next throttled push finds the box over capacity and waits.
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    std::vector<int> more{6, 7};
    (void)box.push_all(more.begin(), more.end());
    pushed.store(true);
  });
  while (box.throttled() == 0) std::this_thread::yield();
  EXPECT_FALSE(pushed.load());  // blocked: consumer has not drained
  const auto d = box.drain();   // frees the box, wakes the producer
  EXPECT_EQ(d.credits, 6);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(box.drain().credits, 2);
}

TEST(MailboxBackpressure, TimedEscapePreventsDeadlock) {
  Mailbox<int> box;
  box.set_capacity(1, std::chrono::milliseconds(5));
  box.push(1);
  // Nobody ever drains: the throttled push must still complete after the
  // bounded wait — this is the escape that keeps producer↔consumer
  // cycles of shard workers deadlock-free.
  std::vector<int> more{2, 3};
  EXPECT_EQ(box.push_all(more.begin(), more.end()), 2);
  EXPECT_GE(box.throttled(), 1);
  EXPECT_EQ(box.drain().credits, 3);  // nothing was dropped
}

TEST(MailboxBackpressure, SelfDeliveryBypassesTheThrottle) {
  Mailbox<int> box;
  box.set_capacity(1, std::chrono::seconds(5));
  box.push(1);
  std::vector<int> more{2, 3};
  // throttle=false is the fabric's self-send path: it must never wait on
  // the very consumer it is feeding.
  EXPECT_EQ(box.push_all(more.begin(), more.end(), /*throttle=*/false), 2);
  EXPECT_EQ(box.throttled(), 0);
}

// --- 8-producer stress ------------------------------------------------------

// Eight producers push disjoint, per-producer-unique tuples — singly and
// in push_all batches — while one consumer drains concurrently.  Every
// tuple must be delivered exactly once across all epoch swaps, and every
// granted credit repaid.
TEST(MailboxStress, NoLostOrDuplicatedDeliveryAcrossEpochSwaps) {
  constexpr int kProducers = 8;
  constexpr std::int64_t kPerProducer = 20000;
  constexpr std::int64_t kBatch = 7;  // odd on purpose: ragged tail flushes
  Mailbox<std::int64_t> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);

  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &live, p] {
      SplitMix64 rng(static_cast<std::uint64_t>(p) * 977 + 5);
      std::vector<std::int64_t> batch;
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        const std::int64_t v = p * kPerProducer + i;
        if (p % 2 == 0) {
          box.push(v);  // single-push producers
        } else {
          batch.push_back(v);  // batched producers flush via push_all
          if (static_cast<std::int64_t>(batch.size()) == kBatch) {
            box.push_all(batch.begin(), batch.end());
            batch.clear();
          }
        }
        if (rng.next_below(64) == 0) std::this_thread::yield();
      }
      if (!batch.empty()) box.push_all(batch.begin(), batch.end());
      live.fetch_sub(1);
    });
  }

  std::vector<std::int64_t> delivered;
  delivered.reserve(kProducers * kPerProducer);
  std::int64_t credits = 0;
  while (live.load() > 0 || box.has_mail()) {
    const auto d = box.drain();
    credits += d.credits;
    pending.fetch_sub(d.credits);
    delivered.insert(delivered.end(), d.mail.begin(), d.mail.end());
  }
  for (auto& t : producers) t.join();
  {
    // One final drain: the has_mail() flag may have been observed between
    // a producer's append and our previous swap.
    const auto d = box.drain();
    credits += d.credits;
    pending.fetch_sub(d.credits);
    delivered.insert(delivered.end(), d.mail.begin(), d.mail.end());
  }

  // Exactly-once: no losses, no cross-epoch duplicates of a unique send.
  EXPECT_EQ(delivered.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  const std::set<std::int64_t> unique(delivered.begin(), delivered.end());
  EXPECT_EQ(unique.size(), delivered.size());
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), kProducers * kPerProducer - 1);
  // Unique sends: credits == deliveries, and every credit the counter
  // gained was returned — the invariant the termination detector is
  // built on.
  EXPECT_EQ(credits, kProducers * kPerProducer);
  EXPECT_EQ(pending.load(), 0);
}

// Eight producers all push the SAME small tuple universe while the
// consumer drains: per-epoch delivery stays deduped and bounded by the
// universe, while the credits count raw pushes and balance to zero — the
// batched-flush "freshness" accounting under maximum duplication.
TEST(MailboxStress, DuplicateHeavyTrafficKeepsCreditsBalanced) {
  constexpr int kProducers = 8;
  constexpr std::int64_t kUniverse = 64;
  constexpr std::int64_t kRounds = 4000;
  Mailbox<std::int64_t> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);

  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &live, p] {
      SplitMix64 rng(static_cast<std::uint64_t>(p) + 31);
      std::vector<std::int64_t> batch;
      for (std::int64_t i = 0; i < kRounds; ++i) {
        batch.push_back(
            static_cast<std::int64_t>(rng.next_below(kUniverse)));
        if (batch.size() == 16) {
          box.push_all(batch.begin(), batch.end());
          batch.clear();
        }
      }
      if (!batch.empty()) box.push_all(batch.begin(), batch.end());
      live.fetch_sub(1);
    });
  }

  std::int64_t delivered = 0;
  std::int64_t credits = 0;
  std::int64_t epochs_with_mail = 0;
  while (live.load() > 0 || box.has_mail()) {
    const auto d = box.drain();
    for (const std::int64_t v : d.mail) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kUniverse);
    }
    if (!d.mail.empty()) ++epochs_with_mail;
    delivered += static_cast<std::int64_t>(d.mail.size());
    credits += d.credits;
    pending.fetch_sub(d.credits);
  }
  for (auto& t : producers) t.join();
  const auto d = box.drain();
  delivered += static_cast<std::int64_t>(d.mail.size());
  credits += d.credits;
  pending.fetch_sub(d.credits);
  if (!d.mail.empty()) ++epochs_with_mail;

  // Each drained epoch delivers at most the universe (dedup at drain),
  // the raw credits count every push, and the balance closes.
  EXPECT_LE(delivered, epochs_with_mail * kUniverse);
  EXPECT_EQ(credits, static_cast<std::int64_t>(kProducers) * kRounds);
  EXPECT_GE(credits, delivered);
  EXPECT_EQ(pending.load(), 0);
  EXPECT_GT(delivered, 0);
  // The drain/poll split holds under stress too.
  EXPECT_EQ(box.drains(), epochs_with_mail);
  EXPECT_GE(box.polls(), box.drains());
}

// Eight producers, no consumer until the end: with the box permanently
// nonempty after the first append, wakeup coalescing must collapse every
// notify into the single empty→nonempty transition.
TEST(MailboxStress, WakeupCoalescingUnderProducerStorm) {
  constexpr int kProducers = 8;
  constexpr std::int64_t kPerProducer = 5000;
  Mailbox<std::int64_t> box;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      std::vector<std::int64_t> batch;
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        if (p % 2 == 0) {
          box.push(p * kPerProducer + i);
        } else {
          batch.push_back(p * kPerProducer + i);
          if (batch.size() == 32) {
            box.push_all(batch.begin(), batch.end());
            batch.clear();
          }
        }
      }
      if (!batch.empty()) box.push_all(batch.begin(), batch.end());
    });
  }
  for (auto& t : producers) t.join();
  // 40000 appends, exactly one wakeup: the box never went empty again.
  EXPECT_EQ(box.wakeups(), 1);
  const auto d = box.drain();
  EXPECT_EQ(d.credits, static_cast<std::int64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(d.mail.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace jstar::dist
