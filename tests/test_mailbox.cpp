// Unit + stress tests for the double-buffered Mailbox<T> that carries all
// inter-shard mail (src/dist/mailbox.h).  The contracts under test are the
// ones the async executor's termination detector leans on: per-epoch dedup
// on the write buffer, no lost and no duplicated delivery across epoch
// swaps under concurrent send/drain, and pending-counter increments that
// are visible before the tuple is drainable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "dist/mailbox.h"
#include "util/rng.h"

namespace jstar::dist {
namespace {

// --- single-threaded contracts ---------------------------------------------

TEST(Mailbox, PushDrainRoundTrip) {
  Mailbox<int> box;
  EXPECT_FALSE(box.has_mail());
  EXPECT_TRUE(box.push(1));
  EXPECT_TRUE(box.push(2));
  EXPECT_TRUE(box.has_mail());
  EXPECT_EQ(box.drain(), (std::set<int>{1, 2}));
  EXPECT_FALSE(box.has_mail());
  EXPECT_TRUE(box.drain().empty());
}

TEST(Mailbox, DedupsWithinAnEpoch) {
  Mailbox<int> box;
  EXPECT_TRUE(box.push(7));
  EXPECT_FALSE(box.push(7));  // duplicate of an undrained tuple
  EXPECT_FALSE(box.push(7));
  EXPECT_EQ(box.pending_size(), 1);
  EXPECT_EQ(box.drain(), std::set<int>{7});
}

TEST(Mailbox, RedeliveryAfterSwapIsFreshAgain) {
  Mailbox<int> box;
  EXPECT_TRUE(box.push(7));
  EXPECT_EQ(box.drain(), std::set<int>{7});
  // The epoch advanced: the same tuple is a *new* delivery now (the
  // receiving engine's set semantics is what makes it a no-op there).
  EXPECT_TRUE(box.push(7));
  EXPECT_EQ(box.drain(), std::set<int>{7});
}

TEST(Mailbox, DrainCountsEpochs) {
  Mailbox<int> box;
  EXPECT_EQ(box.drains(), 0);
  box.push(1);
  (void)box.drain();
  (void)box.drain();  // empty poll still advances the epoch
  EXPECT_EQ(box.drains(), 2);
}

TEST(Mailbox, PendingCounterTracksFreshPushesOnly) {
  Mailbox<int> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);
  box.push(1);
  box.push(1);  // dup: no credit
  box.push(2);
  EXPECT_EQ(pending.load(), 2);
  const std::set<int> mail = box.drain();
  pending.fetch_sub(static_cast<std::int64_t>(mail.size()));
  EXPECT_EQ(pending.load(), 0);
  box.set_pending_counter(nullptr);
  box.push(3);  // detached: no credit
  EXPECT_EQ(pending.load(), 0);
}

TEST(Mailbox, WaitReturnsOnMailAndOnStop) {
  Mailbox<int> box;
  box.push(5);
  box.wait([] { return false; });  // mail present: returns immediately
  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    (void)box.drain();
    box.wait([&] { return stop.load(); });
  });
  stop.store(true);
  box.poke();
  waiter.join();
  SUCCEED();
}

// --- 8-thread stress: no lost or duplicated delivery -----------------------

// Eight producers push disjoint, per-producer-unique tuples while one
// consumer drains concurrently.  Every tuple must be delivered exactly
// once across all epoch swaps.
TEST(MailboxStress, NoLostOrDuplicatedDeliveryAcrossEpochSwaps) {
  constexpr int kProducers = 8;
  constexpr std::int64_t kPerProducer = 20000;
  Mailbox<std::int64_t> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);

  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &live, p] {
      SplitMix64 rng(static_cast<std::uint64_t>(p) * 977 + 5);
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.push(p * kPerProducer + i));
        if (rng.next_below(64) == 0) std::this_thread::yield();
      }
      live.fetch_sub(1);
    });
  }

  std::vector<std::int64_t> delivered;
  delivered.reserve(kProducers * kPerProducer);
  while (live.load() > 0 || box.has_mail()) {
    const std::set<std::int64_t> mail = box.drain();
    pending.fetch_sub(static_cast<std::int64_t>(mail.size()));
    delivered.insert(delivered.end(), mail.begin(), mail.end());
  }
  for (auto& t : producers) t.join();
  {
    // One final drain: the has_mail() flag may have been observed between
    // a producer's insert and our previous swap.
    const std::set<std::int64_t> mail = box.drain();
    pending.fetch_sub(static_cast<std::int64_t>(mail.size()));
    delivered.insert(delivered.end(), mail.begin(), mail.end());
  }

  // Exactly-once: no losses, no cross-epoch duplicates of a unique send.
  EXPECT_EQ(delivered.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  const std::set<std::int64_t> unique(delivered.begin(), delivered.end());
  EXPECT_EQ(unique.size(), delivered.size());
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), kProducers * kPerProducer - 1);
  // Every credit the counter gained was returned: the invariant the async
  // termination detector is built on.
  EXPECT_EQ(pending.load(), 0);
}

// Eight producers all push the SAME small tuple universe while the
// consumer drains: dedup must hold within every epoch (each drained set is
// a set by construction — the real assertion is that concurrent duplicate
// pushes never double-credit the pending counter).
TEST(MailboxStress, ConcurrentDuplicateSendsNeverDoubleCredit) {
  constexpr int kProducers = 8;
  constexpr std::int64_t kUniverse = 64;
  constexpr std::int64_t kRounds = 4000;
  Mailbox<std::int64_t> box;
  std::atomic<std::int64_t> pending{0};
  box.set_pending_counter(&pending);

  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &live, p] {
      SplitMix64 rng(static_cast<std::uint64_t>(p) + 31);
      for (std::int64_t i = 0; i < kRounds; ++i) {
        (void)box.push(static_cast<std::int64_t>(rng.next_below(kUniverse)));
      }
      live.fetch_sub(1);
    });
  }

  std::int64_t drained = 0;
  std::int64_t epochs_with_mail = 0;
  while (live.load() > 0 || box.has_mail()) {
    const std::set<std::int64_t> mail = box.drain();
    for (const std::int64_t v : mail) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kUniverse);
    }
    if (!mail.empty()) ++epochs_with_mail;
    drained += static_cast<std::int64_t>(mail.size());
    pending.fetch_sub(static_cast<std::int64_t>(mail.size()));
  }
  for (auto& t : producers) t.join();
  const std::set<std::int64_t> mail = box.drain();
  drained += static_cast<std::int64_t>(mail.size());
  pending.fetch_sub(static_cast<std::int64_t>(mail.size()));

  // Each drained epoch carries at most the universe (per-epoch dedup), and
  // the credits exactly match the deliveries.
  EXPECT_LE(drained, (epochs_with_mail + 1) * kUniverse);
  EXPECT_EQ(pending.load(), 0);
  EXPECT_GT(drained, 0);
}

}  // namespace
}  // namespace jstar::dist
