#include "sched/fork_join_pool.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"

namespace jstar::sched {

namespace {
thread_local ForkJoinPool* tl_pool = nullptr;
thread_local int tl_worker_index = -1;
}  // namespace

ForkJoinPool* ForkJoinPool::current_pool() { return tl_pool; }
int ForkJoinPool::current_worker_index() { return tl_worker_index; }

ForkJoinPool::ForkJoinPool(int threads) {
  JSTAR_CHECK_MSG(threads >= 1, "pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < threads; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  }
}

ForkJoinPool::~ForkJoinPool() {
  // Not wait_idle(): a parked fire-and-forget exception must not throw
  // out of a destructor.  It dies with the pool, like a detached thread's.
  {
    std::unique_lock<std::mutex> lk(idle_mu_);
    idle_cv_.wait(lk, [&] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    sleep_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Drain anything left in the injector (can only happen if tasks were
  // submitted after wait_idle, which is a caller bug, but don't leak).
  for (detail::Task* t : injector_) delete t;
}

void ForkJoinPool::record_exception(std::exception_ptr ep) {
  std::lock_guard<std::mutex> lk(exception_mu_);
  if (!first_exception_) first_exception_ = ep;
}

void ForkJoinPool::run_task(detail::Task* t) {
  // Keep the latch alive past task deletion *and* past the caller's
  // invoke_all frame: the shared_ptr copy makes the final count_down safe
  // even if the batch owner wakes and returns concurrently.
  std::shared_ptr<detail::BatchLatch> latch = t->latch;
  try {
    t->fn();
  } catch (...) {
    // Batch tasks park the exception in their own latch; fire-and-forget
    // tasks fall back to the pool-level slot (nothing joins them).
    if (latch) {
      latch->record_exception(std::current_exception());
    } else {
      record_exception(std::current_exception());
    }
  }
  delete t;
  if (latch) latch->count_down();
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }
}

void ForkJoinPool::enqueue(detail::Task* task) {
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (tl_pool == this && tl_worker_index >= 0) {
    workers_[static_cast<std::size_t>(tl_worker_index)]->deque.push(task);
  } else {
    std::lock_guard<std::mutex> lk(injector_mu_);
    injector_.push_back(task);
  }
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    sleep_cv_.notify_one();
  }
}

bool ForkJoinPool::try_run_one(int self_index, SplitMix64& rng) {
  detail::Task* task = nullptr;
  // 1. Own deque (workers only).
  if (self_index >= 0 &&
      workers_[static_cast<std::size_t>(self_index)]->deque.pop(task)) {
    run_task(task);
    return true;
  }
  // 2. Injector queue.
  {
    std::unique_lock<std::mutex> lk(injector_mu_, std::try_to_lock);
    if (lk.owns_lock() && !injector_.empty()) {
      task = injector_.front();
      injector_.pop_front();
      lk.unlock();
      run_task(task);
      return true;
    }
  }
  // 3. Steal from a random victim, then scan the rest.
  const int n = size();
  const int start = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(n)));
  for (int k = 0; k < n; ++k) {
    const int victim = (start + k) % n;
    if (victim == self_index) continue;
    if (workers_[static_cast<std::size_t>(victim)]->deque.steal(task)) {
      run_task(task);
      return true;
    }
  }
  return false;
}

void ForkJoinPool::worker_loop(int index) {
  tl_pool = this;
  tl_worker_index = index;
  SplitMix64 rng(0xC0FFEE ^ static_cast<std::uint64_t>(index) * 7919);
  int misses = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(index, rng)) {
      misses = 0;
      continue;
    }
    if (++misses < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park until new work arrives (or periodically re-check).
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    sleep_cv_.wait_for(lk, std::chrono::milliseconds(10));
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
    misses = 0;
  }
  tl_pool = nullptr;
  tl_worker_index = -1;
}

void ForkJoinPool::help_until(detail::BatchLatch& latch, int self_index) {
  SplitMix64 rng(0xFEEDFACE ^ static_cast<std::uint64_t>(self_index + 17));
  while (!latch.done()) {
    if (!try_run_one(self_index, rng)) {
      std::this_thread::yield();
    }
  }
}

void ForkJoinPool::invoke_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const bool on_worker = (tl_pool == this && tl_worker_index >= 0);
  if (tasks.size() == 1 && on_worker) {
    // A worker may run a singleton batch inline: current_pool() is already
    // set, and no other thread can observe the batch.
    tasks[0]();
    return;
  }
  auto latch =
      std::make_shared<detail::BatchLatch>(static_cast<std::int64_t>(tasks.size()));
  for (auto& fn : tasks) {
    auto* t = new detail::Task{std::move(fn), latch};
    enqueue(t);
  }
  if (on_worker) {
    // Workers help-execute while waiting so nested invoke_all cannot
    // starve the pool.
    help_until(*latch, tl_worker_index);
  } else {
    // External threads must NOT execute tasks themselves: rule bodies call
    // current_pool(), which is only set on worker threads.
    latch->wait();
  }
  if (std::exception_ptr ep = latch->take_exception()) {
    std::rethrow_exception(ep);
  }
}

void ForkJoinPool::for_each_index(std::int64_t n,
                                  const std::function<void(std::int64_t)>& fn,
                                  std::int64_t grain) {
  if (n <= 0) return;
  const int p = size();
  if (grain <= 0) grain = std::max<std::int64_t>(1, n / (p * 8));
  if (n <= grain || (p == 1 && tl_pool == this)) {
    // Inline only when already on this pool's (sole) worker; external
    // callers still dispatch so fn sees current_pool() set.
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::int64_t>>(0);
  const int workers =
      static_cast<int>(std::min<std::int64_t>(p, (n + grain - 1) / grain));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    tasks.push_back([next, n, grain, &fn] {
      for (;;) {
        const std::int64_t begin = next->fetch_add(grain);
        if (begin >= n) break;
        const std::int64_t end = std::min<std::int64_t>(begin + grain, n);
        for (std::int64_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  invoke_all(std::move(tasks));
}

void ForkJoinPool::submit(std::function<void()> fn) {
  enqueue(new detail::Task{std::move(fn), nullptr});
}

void ForkJoinPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lk(idle_mu_);
    idle_cv_.wait(lk, [&] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  // Surface the first exception a fire-and-forget task threw since the
  // last wait (batch tasks rethrow at their own join in invoke_all).
  std::exception_ptr ep;
  {
    std::lock_guard<std::mutex> lk(exception_mu_);
    ep = first_exception_;
    first_exception_ = nullptr;
  }
  if (ep) std::rethrow_exception(ep);
}

}  // namespace jstar::sched
