// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), the classic
// substrate under fork/join schedulers — including the Java 7 Fork/Join
// framework [Lea 2000] that the JStar runtime builds on (§5).
//
// The owner thread pushes and pops at the *bottom*; thief threads steal from
// the *top*.  Only `pop` vs `steal` on the last element races, resolved with
// a CAS on `top`.  The buffer grows geometrically; retired buffers are kept
// until destruction so stealing threads never dereference freed memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cache_pad.h"

// ThreadSanitizer does not model standalone fences (GCC refuses them
// outright under -fsanitize=thread -Werror), so under TSan the fence-based
// orderings below are replaced by stronger orderings on the participating
// atomics — the C11 formulation of Lê et al. (PPoPP 2013).  Both variants
// are correct; the fence version is simply cheaper on hardware where a
// relaxed store is cheaper than a seq_cst one.
#if defined(__SANITIZE_THREAD__)
#define JSTAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define JSTAR_TSAN 1
#endif
#endif
#ifndef JSTAR_TSAN
#define JSTAR_TSAN 0
#endif

namespace jstar::sched {

template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::int64_t initial_capacity = 64)
      : top_(0), bottom_(0) {
    buffers_.push_back(std::make_unique<Buffer>(initial_capacity));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only.  Pushes one item at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
#if JSTAR_TSAN
    bottom_.store(b + 1, std::memory_order_release);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only.  Pops the most recently pushed item; returns false if the
  /// deque is empty (or the last item was stolen concurrently).
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
#if JSTAR_TSAN
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t > b) {
      // Deque was already empty: restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Any thread.  Steals the oldest item; returns false when empty or lost
  /// a race (callers should retry elsewhere, not spin here).
  bool steal(T& out) {
#if JSTAR_TSAN
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t >= b) return false;
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    out = item;
    return true;
  }

  /// Approximate size (safe from any thread; may be stale).
  std::int64_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;

    // Release/acquire on the cells (not relaxed as in the paper): the
    // stolen payload usually points at memory the owner wrote just before
    // push, and this edge is what publishes those writes to the thief —
    // free on x86/ARM loads+stores, and it is the edge TSan needs to see.
    T get(std::int64_t i) const {
      return slots[i & mask].load(std::memory_order_acquire);
    }
    void put(std::int64_t i, T v) {
      slots[i & mask].store(v, std::memory_order_release);
    }
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Buffer* raw = bigger.get();
    buffers_.push_back(std::move(bigger));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(kCacheLine) std::atomic<std::int64_t> top_;
  alignas(kCacheLine) std::atomic<std::int64_t> bottom_;
  alignas(kCacheLine) std::atomic<Buffer*> buffer_;
  // Retired + live buffers; only touched by the owner inside push (grow).
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace jstar::sched
