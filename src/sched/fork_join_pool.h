// A fork/join thread pool with per-worker Chase–Lev deques and random
// stealing — the C++ stand-in for the Java 7 Fork/Join framework on which
// the JStar runtime's *all-minimums* parallelisation strategy runs (§5).
//
// The pool supports the two operations the engine needs:
//   * invoke_all   — run a batch of closures and join (one Delta batch)
//   * for_each_index — dynamic-chunked parallel loop (CSV region readers,
//                      matrix rows, median partition regions, ...)
// plus fire-and-forget submit() for the Disruptor-style pipelines.
//
// Joining threads *help*: while waiting for a batch to finish they execute
// tasks from their own deque, the injector queue, or steal from peers, so
// nested parallelism inside rule bodies cannot deadlock the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/work_stealing_deque.h"
#include "util/rng.h"

namespace jstar::sched {

class ForkJoinPool;

namespace detail {

/// Counts down as tasks of one batch complete; external waiters block on
/// the condition variable, worker waiters help-execute instead.  The latch
/// also owns the batch's first exception: capture is per-batch, not
/// per-pool, so concurrent invoke_all batches (several shard engines
/// sharing one pool) can never observe each other's failures.
class BatchLatch {
 public:
  explicit BatchLatch(std::int64_t count) : remaining_(count) {}

  void count_down() {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_all();
    }
  }

  bool done() const { return remaining_.load(std::memory_order_acquire) <= 0; }

  void wait() {
    if (done()) return;
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return done(); });
  }

  void record_exception(std::exception_ptr ep) {
    std::lock_guard<std::mutex> lk(ex_mu_);
    if (!exception_) exception_ = ep;
  }

  std::exception_ptr take_exception() {
    std::lock_guard<std::mutex> lk(ex_mu_);
    std::exception_ptr ep = exception_;
    exception_ = nullptr;
    return ep;
  }

 private:
  std::atomic<std::int64_t> remaining_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::mutex ex_mu_;
  std::exception_ptr exception_;
};

struct Task {
  std::function<void()> fn;
  std::shared_ptr<BatchLatch> latch;  // null for fire-and-forget
};

}  // namespace detail

class ForkJoinPool {
 public:
  /// Creates a pool with `threads` worker threads (>= 1).  This corresponds
  /// to the paper's `--threads=N` runtime flag.
  explicit ForkJoinPool(int threads);
  ~ForkJoinPool();

  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs all closures, potentially in parallel, and blocks until every one
  /// has finished.  Exceptions from tasks are captured in the batch's own
  /// latch and the first one is rethrown to the caller after the join —
  /// concurrent batches on the same pool keep their failures separate.
  void invoke_all(std::vector<std::function<void()>> tasks);

  /// Runs fn(i) for every i in [0, n).  `grain` controls the dynamic chunk
  /// size (0 = auto).  Blocks until complete.
  void for_each_index(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                      std::int64_t grain = 0);

  /// Fire-and-forget.  The task runs on some worker eventually.
  void submit(std::function<void()> fn);

  /// Blocks until every submitted/forked task has completed, then
  /// rethrows the first exception a fire-and-forget submit() task threw
  /// since the last wait (invoke_all batches rethrow at their own join).
  void wait_idle();

  /// The pool the calling thread is a worker of, or nullptr.
  static ForkJoinPool* current_pool();
  /// Worker index of the calling thread within current_pool(), or -1.
  static int current_worker_index();

 private:
  struct Worker {
    WorkStealingDeque<detail::Task*> deque;
    std::thread thread;
  };

  void worker_loop(int index);
  bool try_run_one(int self_index, SplitMix64& rng);
  void enqueue(detail::Task* task);
  void help_until(detail::BatchLatch& latch, int self_index);
  void record_exception(std::exception_ptr ep);
  void run_task(detail::Task* t);

  std::vector<std::unique_ptr<Worker>> workers_;

  // Injector queue for tasks submitted from non-worker threads.
  std::mutex injector_mu_;
  std::deque<detail::Task*> injector_;

  // Sleep/wake machinery.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> sleepers_{0};

  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> inflight_{0};

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::mutex exception_mu_;
  std::exception_ptr first_exception_;
};

}  // namespace jstar::sched
