// The ShortestPath case study (§6.5, Fig 5): generate a random connected
// graph, then run Dijkstra's algorithm from vertex 0 where "the Delta tree
// acts as the priority queue (ordered by the distance to the vertex)".
//
// Graph generation follows the paper: a random tree over V vertices plus
// extra random edges up to E total, weights uniform in 1..10.  §6.5 notes
// the single-rule generator was a >60% bottleneck, so the JStar program
// splits creation into `gen_tasks` parallel task tuples (24 in the paper),
// each with a split deterministic RNG stream — the "support for parallel
// random number generators" the paper calls for.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "util/rng.h"

namespace jstar::apps::dijkstra {

/// Undirected weighted graph in adjacency-list form (the Edge table's
/// native Gamma structure; Edge tuples are -noDelta and query-only).
class Graph {
 public:
  explicit Graph(std::int32_t vertices = 0) : adj_(vertices) {}

  std::int32_t vertices() const { return static_cast<std::int32_t>(adj_.size()); }

  void add_edge(std::int32_t u, std::int32_t v, std::int32_t w) {
    adj_[static_cast<std::size_t>(u)].push_back({v, w});
    adj_[static_cast<std::size_t>(v)].push_back({u, w});
  }

  struct Arc {
    std::int32_t to;
    std::int32_t weight;
  };

  const std::vector<Arc>& arcs(std::int32_t v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Direct adjacency access for custom Gamma stores that add arcs one
  /// direction at a time under their own locking.
  std::vector<Arc>& mutable_arcs(std::int32_t v) {
    return adj_[static_cast<std::size_t>(v)];
  }

  std::int64_t edge_count() const {
    std::int64_t n = 0;
    for (const auto& a : adj_) n += static_cast<std::int64_t>(a.size());
    return n / 2;
  }

 private:
  std::vector<std::vector<Arc>> adj_;
};

/// Deterministic random connected graph: a tree over `vertices` plus
/// random extra edges up to `edges` total, weights 1..10.
Graph random_graph(std::int32_t vertices, std::int64_t edges,
                   std::uint64_t seed);

/// Builds the same graph *inside* a JStar program using `gen_tasks`
/// parallel generation-task tuples (the §6.5 restructuring).  The result
/// is identical to random_graph for the same parameters.
Graph random_graph_jstar(std::int32_t vertices, std::int64_t edges,
                         std::uint64_t seed, int gen_tasks,
                         const EngineOptions& opts);

/// Shortest distances from vertex 0; unreachable = -1 (cannot happen for
/// connected graphs).
using Distances = std::vector<std::int64_t>;

/// The Fig 5 JStar program: Estimate tuples flow through the Delta tree
/// ordered by distance (`-noGamma Estimate`, `-noDelta` on the static
/// tables, per §6.5); Done records the settled distances.
Distances shortest_paths_jstar(const Graph& g, const EngineOptions& opts);

/// Hand-coded baseline: binary-heap Dijkstra with a std::priority_queue —
/// the "Java version" that Fig 6 shows at about half the JStar time.
Distances shortest_paths_baseline(const Graph& g);

}  // namespace jstar::apps::dijkstra
