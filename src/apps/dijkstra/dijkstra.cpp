#include "apps/dijkstra/dijkstra.h"

#include <algorithm>
#include <array>
#include <mutex>
#include <queue>

namespace jstar::apps::dijkstra {

namespace {

/// Canonical edge derivation: every edge's endpoints/weight come from an
/// RNG stream split off the base seed by the edge's index, so any
/// partitioning of the index space (1 task or 24) yields the same graph.
struct EdgeGen {
  std::int32_t vertices;
  std::int64_t extra_edges;
  SplitMix64 base;

  /// Tree edge attaching vertex v (1 <= v < vertices) to a prior vertex.
  Graph::Arc tree_edge(std::int32_t v, std::int32_t& from) const {
    SplitMix64 rng = base.split(static_cast<std::uint64_t>(v));
    from = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(v)));
    return {v, static_cast<std::int32_t>(1 + rng.next_below(10))};
  }

  /// Extra edge j (0 <= j < extra_edges).
  void extra_edge(std::int64_t j, std::int32_t& u, std::int32_t& v,
                  std::int32_t& w) const {
    SplitMix64 rng = base.split(
        static_cast<std::uint64_t>(vertices) + static_cast<std::uint64_t>(j));
    u = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(vertices)));
    do {
      v = static_cast<std::int32_t>(rng.next_below(
          static_cast<std::uint64_t>(vertices)));
    } while (v == u);
    w = static_cast<std::int32_t>(1 + rng.next_below(10));
  }
};

}  // namespace

Graph random_graph(std::int32_t vertices, std::int64_t edges,
                   std::uint64_t seed) {
  JSTAR_CHECK(vertices >= 1 && edges >= vertices - 1);
  Graph g(vertices);
  EdgeGen gen{vertices, edges - (vertices - 1), SplitMix64(seed)};
  for (std::int32_t v = 1; v < vertices; ++v) {
    std::int32_t from;
    const Graph::Arc arc = gen.tree_edge(v, from);
    g.add_edge(from, arc.to, arc.weight);
  }
  for (std::int64_t j = 0; j < gen.extra_edges; ++j) {
    std::int32_t u, v, w;
    gen.extra_edge(j, u, v, w);
    g.add_edge(u, v, w);
  }
  return g;
}

// ---------------------------------------------------------------------------
// JStar tuples
// ---------------------------------------------------------------------------

namespace {

struct GenTask {
  std::int32_t task;
  std::int32_t v_lo, v_hi;    // tree-edge vertex slice [lo, hi)
  std::int64_t e_lo, e_hi;    // extra-edge index slice [lo, hi)
  auto operator<=>(const GenTask&) const = default;
};

struct EdgeTuple {
  std::int32_t from, to, weight;
  auto operator<=>(const EdgeTuple&) const = default;
};

struct Estimate {
  std::int32_t vertex;
  std::int64_t distance;
  auto operator<=>(const Estimate&) const = default;
};

struct Done {
  std::int32_t vertex;
  std::int64_t distance;
  auto operator<=>(const Done&) const = default;
};

struct DoneHash {
  std::size_t operator()(const Done& d) const {
    return hash_fields(d.vertex, d.distance);
  }
};

/// The Edge table's native Gamma structure: striped-locked adjacency
/// lists.  Each directed arc insert locks only its source vertex's stripe.
class GraphStore final : public GammaStore<EdgeTuple> {
 public:
  explicit GraphStore(Graph* g) : graph_(g) {}

  bool insert(const EdgeTuple& e) override {
    add_arc(e.from, e.to, e.weight);
    add_arc(e.to, e.from, e.weight);
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool contains(const EdgeTuple&) const override { return false; }
  void scan(const std::function<void(const EdgeTuple&)>&) const override {}
  std::size_t size() const override {
    return static_cast<std::size_t>(count_.load(std::memory_order_relaxed));
  }

 private:
  void add_arc(std::int32_t u, std::int32_t v, std::int32_t w) {
    // Graph::add_edge adds both directions at once; here each direction is
    // added separately so only the source vertex's stripe is locked.
    std::lock_guard<std::mutex> lk(stripes_[static_cast<std::size_t>(u) % kStripes]);
    graph_->mutable_arcs(u).push_back({v, w});
  }

  static constexpr std::size_t kStripes = 64;
  Graph* graph_;
  mutable std::array<std::mutex, kStripes> stripes_;
  std::atomic<std::int64_t> count_{0};
};

void add_common_tables(Engine& eng, Graph& g, const EngineOptions& opts,
                       Table<GenTask>** gen_out, Table<EdgeTuple>** edge_out) {
  (void)opts;
  auto& gen = eng.table(TableDecl<GenTask>("GenTask")
                            .orderby_lit("Gen")
                            .orderby_par("task")
                            .hash([](const GenTask& t) {
                              return hash_fields(t.task);
                            }));
  auto& edge = eng.table(TableDecl<EdgeTuple>("Edge")
                             .orderby_lit("Edge")
                             .hash([](const EdgeTuple& e) {
                               return hash_fields(e.from, e.to, e.weight);
                             })
                             .store_factory([&g](bool) {
                               return std::make_unique<GraphStore>(&g);
                             }));
  *gen_out = &gen;
  *edge_out = &edge;
}

void add_gen_rule(Engine& eng, Table<GenTask>& gen, Table<EdgeTuple>& edge,
                  std::int32_t vertices, std::int64_t extra,
                  std::uint64_t seed) {
  eng.rule(gen, "generateSlice", [&, vertices, extra, seed](
                                     RuleCtx& ctx, const GenTask& t) {
    EdgeGen eg{vertices, extra, SplitMix64(seed)};
    for (std::int32_t v = std::max(t.v_lo, 1); v < t.v_hi; ++v) {
      std::int32_t from;
      const Graph::Arc arc = eg.tree_edge(v, from);
      edge.put(ctx, EdgeTuple{from, arc.to, arc.weight});
    }
    for (std::int64_t j = t.e_lo; j < t.e_hi; ++j) {
      std::int32_t u, v, w;
      eg.extra_edge(j, u, v, w);
      edge.put(ctx, EdgeTuple{u, v, w});
    }
  });
}

void put_gen_tasks(Engine& eng, Table<GenTask>& gen, std::int32_t vertices,
                   std::int64_t extra, int tasks) {
  for (int t = 0; t < tasks; ++t) {
    const auto v_lo = static_cast<std::int32_t>(
        static_cast<std::int64_t>(vertices) * t / tasks);
    const auto v_hi = static_cast<std::int32_t>(
        static_cast<std::int64_t>(vertices) * (t + 1) / tasks);
    const std::int64_t e_lo = extra * t / tasks;
    const std::int64_t e_hi = extra * (t + 1) / tasks;
    eng.put(gen, GenTask{t, v_lo, v_hi, e_lo, e_hi});
  }
}

/// Installs the Fig 5 Dijkstra tables + rule on an engine whose Edge data
/// lives in `g`.  Returns the Done table for result extraction.
Table<Done>& add_dijkstra_program(Engine& eng, const Graph& g,
                                  Table<Estimate>** est_out) {
  auto& est = eng.table(TableDecl<Estimate>("Estimate")
                            .orderby_lit("Int")
                            .orderby_seq("distance", &Estimate::distance)
                            .orderby_lit("Estimate")
                            .hash([](const Estimate& e) {
                              return hash_fields(e.vertex, e.distance);
                            }));
  auto& done = eng.table(
      TableDecl<Done>("Done")
          .orderby_lit("Int")
          .orderby_seq("distance", &Done::distance)
          .orderby_lit("Done")
          .hash([](const Done& d) { return hash_fields(d.vertex, d.distance); })
          // Member-pointer pk: the query planner can now route
          // query::eq(&Done::vertex, v) through the pk index (PkProbe).
          .primary_key(&Done::vertex)
          .store_factory([](bool parallel) -> std::unique_ptr<GammaStore<Done>> {
            if (parallel) {
              return std::make_unique<StripedHashStore<Done, DoneHash>>(64);
            }
            return std::make_unique<HashSetStore<Done, DoneHash>>();
          }));
  eng.order({"Estimate", "Done"});

  // Fig 5: foreach (Estimate dist) { ... }
  eng.rule(est, "settle", [&est, &done, &g](RuleCtx& ctx, const Estimate& e) {
    // The "is it settled yet?" negative query, written as a typed
    // predicate: the planner compiles it to the O(1) PkProbe access path
    // (Done declares vertex as its pk), not a Gamma scan.
    if (!done.none(query::eq(&Done::vertex, e.vertex))) return;
    done.put(ctx, Done{e.vertex, e.distance});
    for (const Graph::Arc& arc : g.arcs(e.vertex)) {
      // Same access path, via the raw pk probe: this runs once per arc,
      // and get_unique skips re-building the predicate each time.
      if (!done.get_unique(arc.to).has_value()) {
        est.put(ctx, Estimate{arc.to, e.distance + arc.weight});
      }
    }
  });
  *est_out = &est;
  return done;
}

Distances extract_distances(Table<Done>& done, std::int32_t vertices) {
  Distances out(static_cast<std::size_t>(vertices), -1);
  done.scan([&](const Done& d) {
    out[static_cast<std::size_t>(d.vertex)] = d.distance;
  });
  return out;
}

}  // namespace

Graph random_graph_jstar(std::int32_t vertices, std::int64_t edges,
                         std::uint64_t seed, int gen_tasks,
                         const EngineOptions& base_opts) {
  JSTAR_CHECK(vertices >= 1 && edges >= vertices - 1 && gen_tasks >= 1);
  Graph g(vertices);
  EngineOptions opts = base_opts;
  opts.no_delta.insert("Edge");
  Engine eng(opts);
  Table<GenTask>* gen = nullptr;
  Table<EdgeTuple>* edge = nullptr;
  add_common_tables(eng, g, opts, &gen, &edge);
  const std::int64_t extra = edges - (vertices - 1);
  add_gen_rule(eng, *gen, *edge, vertices, extra, seed);
  put_gen_tasks(eng, *gen, vertices, extra, gen_tasks);
  eng.run();
  return g;
}

Distances shortest_paths_jstar(const Graph& g, const EngineOptions& base_opts) {
  EngineOptions opts = base_opts;
  // §6.5's strategy: Estimate tuples are trigger-only (-noGamma); the
  // static tables would be -noDelta but here the graph is pre-built.
  opts.no_gamma.insert("Estimate");
  Engine eng(opts);
  Table<Estimate>* est = nullptr;
  Table<Done>& done = add_dijkstra_program(eng, g, &est);
  eng.put(*est, Estimate{0, 0});  // Set the origin.
  eng.run();
  return extract_distances(done, g.vertices());
}

Distances shortest_paths_baseline(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.vertices());
  Distances dist(n, -1);
  using Item = std::pair<std::int64_t, std::int32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.push({0, 0});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    auto& dv = dist[static_cast<std::size_t>(v)];
    if (dv != -1) continue;
    dv = d;
    for (const Graph::Arc& arc : g.arcs(v)) {
      if (dist[static_cast<std::size_t>(arc.to)] == -1) {
        pq.push({d + arc.weight, arc.to});
      }
    }
  }
  return dist;
}

}  // namespace jstar::apps::dijkstra
