#include "apps/median/median.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "util/rng.h"

namespace jstar::apps::median {

std::vector<double> random_values(std::int64_t n, std::uint64_t seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  SplitMix64 rng(seed);
  for (auto& x : v) x = rng.next_double();
  return v;
}

double median_sort(const std::vector<double>& values) {
  std::vector<double> copy = values;
  std::sort(copy.begin(), copy.end());
  return copy[(copy.size() - 1) / 2];
}

double median_nth_element(const std::vector<double>& values) {
  std::vector<double> copy = values;
  const std::size_t k = (copy.size() - 1) / 2;
  std::nth_element(copy.begin(),
                   copy.begin() + static_cast<std::ptrdiff_t>(k), copy.end());
  return copy[k];
}

double median_quickselect(const std::vector<double>& values) {
  std::vector<double> a = values;
  std::size_t lo = 0, hi = a.size();
  std::size_t k = (a.size() - 1) / 2;
  SplitMix64 rng(0x9d1ce);
  while (hi - lo > 1) {
    const double pivot =
        a[lo + rng.next_below(static_cast<std::uint64_t>(hi - lo))];
    // Three-way partition of [lo, hi).
    std::size_t below = lo, scan = lo, above = hi;
    while (scan < above) {
      if (a[scan] < pivot) {
        std::swap(a[below++], a[scan++]);
      } else if (a[scan] > pivot) {
        std::swap(a[scan], a[--above]);
      } else {
        ++scan;
      }
    }
    if (k < below) {
      hi = below;
    } else if (k < above) {
      return pivot;  // k lands in the equal-to-pivot run
    } else {
      lo = above;
    }
  }
  return a[lo];
}

// ---------------------------------------------------------------------------
// JStar formulation
// ---------------------------------------------------------------------------

namespace {

/// table Data(int iter, int index -> double value): the two-copy native
/// array Gamma structure of §6.6 ("double[2][100000000], iter modulo 2").
class TwoCopyArray {
 public:
  explicit TwoCopyArray(std::int64_t n)
      : bufs_{std::vector<double>(static_cast<std::size_t>(n)),
              std::vector<double>(static_cast<std::size_t>(n))} {}

  double read(std::int64_t iter, std::int64_t index) const {
    return bufs_[static_cast<std::size_t>(iter % 2)]
                [static_cast<std::size_t>(index)];
  }
  void write(std::int64_t iter, std::int64_t index, double v) {
    bufs_[static_cast<std::size_t>(iter % 2)][static_cast<std::size_t>(index)] =
        v;
  }
  std::vector<double>& buffer(std::int64_t iter) {
    return bufs_[static_cast<std::size_t>(iter % 2)];
  }

 private:
  std::vector<double> bufs_[2];
};

struct DataTuple {
  std::int64_t iter;
  std::int64_t index;
  double value;
  auto operator<=>(const DataTuple&) const = default;
};

/// Custom Gamma store writing Data tuples straight into the two-copy
/// array.  Distinct (iter, index) keys make set-semantics dedup trivial.
class DataArrayStore final : public GammaStore<DataTuple> {
 public:
  explicit DataArrayStore(TwoCopyArray* a) : array_(a) {}
  bool insert(const DataTuple& t) override {
    array_->write(t.iter, t.index, t.value);
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool contains(const DataTuple&) const override { return false; }
  void scan(const std::function<void(const DataTuple&)>&) const override {}
  std::size_t size() const override {
    return static_cast<std::size_t>(count_.load(std::memory_order_relaxed));
  }
  std::string describe() const override { return "two-copy-array"; }

 private:
  TwoCopyArray* array_;
  std::atomic<std::int64_t> count_{0};
};

/// Controller state for one selection phase: the active prefix
/// [0, n) of copy iter holds the candidates; find order statistic k.
struct Phase {
  std::int64_t iter;
  std::int64_t n;
  std::int64_t k;
  double pivot;
  auto operator<=>(const Phase&) const = default;
};

struct PartTask {
  std::int64_t iter;
  std::int32_t region;
  std::int64_t begin, end;
  double pivot;
  auto operator<=>(const PartTask&) const = default;
};

struct PartResult {
  std::int64_t iter;
  std::int32_t region;
  std::int64_t below, equal;
  double sample_below, sample_above;  // pivot candidates for the next phase
  std::int32_t has_below, has_above;
  auto operator<=>(const PartResult&) const = default;
};

struct Decide {
  std::int64_t iter;
  std::int64_t n;
  std::int64_t k;
  double pivot;
  auto operator<=>(const Decide&) const = default;
};

struct CopyTask {
  std::int64_t iter;
  std::int32_t region;
  std::int64_t begin, end;
  double pivot;
  std::int32_t side;  // 0 = below, 1 = above(including equal)
  std::int64_t dest;  // destination offset in copy iter+1
  auto operator<=>(const CopyTask&) const = default;
};

struct MedianFound {
  double value;
  auto operator<=>(const MedianFound&) const = default;
};

}  // namespace

double median_jstar(const std::vector<double>& values,
                    const JStarConfig& config) {
  JSTAR_CHECK(!values.empty());
  const auto n0 = static_cast<std::int64_t>(values.size());
  TwoCopyArray array(n0);
  array.buffer(0) = values;

  EngineOptions opts = config.engine;
  opts.no_delta.insert("Data");
  Engine eng(opts);

  int regions = config.regions;
  if (regions <= 0) regions = opts.sequential ? 4 : opts.threads * 2;

  auto& phase = eng.table(
      TableDecl<Phase>("Phase")
          .orderby_lit("Med")
          .orderby_seq("iter", &Phase::iter)
          .orderby_lit("MedPhase")
          .hash([](const Phase& p) { return hash_fields(p.iter, p.n, p.k); }));
  auto& task = eng.table(
      TableDecl<PartTask>("PartTask")
          .orderby_lit("Med")
          .orderby_seq("iter", &PartTask::iter)
          .orderby_lit("MedTask")
          .orderby_par("region")
          .hash([](const PartTask& t) { return hash_fields(t.iter, t.region); }));
  // PartResult rides the columnar (SoA) substrate (§6.4): a small
  // per-field-array Gamma whose range seeks below run over contiguous
  // reconstituted spans — the rule text never changes, only this
  // declaration.  (It rode the row-major flat store before; swapping
  // substrates is exactly the §1.4 late-commitment move.)
  auto& part = eng.table(
      TableDecl<PartResult>("PartResult")
          .orderby_lit("Med")
          .orderby_seq("iter", &PartResult::iter)
          .orderby_lit("MedResult")
          .columns(&PartResult::iter, &PartResult::region,
                   &PartResult::below, &PartResult::equal,
                   &PartResult::sample_below, &PartResult::sample_above,
                   &PartResult::has_below, &PartResult::has_above)
          .hash([](const PartResult& r) { return hash_fields(r.iter, r.region); }));
  // iter is PartResult's leading field: declaring it as an ordered-range
  // prefix lets the planner compile the decide rule's "all results of this
  // iteration" equality into an O(log N + k) seek on the default ordered
  // store (the lower_bound tuple pins every later field at its minimum).
  part.add_range_index(
      [](const std::vector<std::int64_t>& v) {
        return PartResult{v[0], std::numeric_limits<std::int32_t>::min(),
                          std::numeric_limits<std::int64_t>::min(),
                          std::numeric_limits<std::int64_t>::min(),
                          -std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<std::int32_t>::min(),
                          std::numeric_limits<std::int32_t>::min()};
      },
      &PartResult::iter);
  auto& decide = eng.table(
      TableDecl<Decide>("Decide")
          .orderby_lit("Med")
          .orderby_seq("iter", &Decide::iter)
          .orderby_lit("MedDecide")
          .hash([](const Decide& d) { return hash_fields(d.iter, d.n, d.k); }));
  auto& copy = eng.table(
      TableDecl<CopyTask>("CopyTask")
          .orderby_lit("Med")
          .orderby_seq("iter", &CopyTask::iter)
          .orderby_lit("MedCopy")
          .orderby_par("region")
          .hash([](const CopyTask& t) { return hash_fields(t.iter, t.region, t.side); }));
  auto& data = eng.table(
      TableDecl<DataTuple>("Data")
          .orderby_lit("Med")
          .orderby_seq("iter", &DataTuple::iter)
          .orderby_lit("MedData")
          .hash([](const DataTuple& t) { return hash_fields(t.iter, t.index); })
          .store_factory([&array](bool) {
            return std::make_unique<DataArrayStore>(&array);
          }));

  std::mutex result_mu;
  double result = 0.0;
  bool have_result = false;
  auto& found = eng.table(
      TableDecl<MedianFound>("MedianFound")
          .orderby_lit("MedFinal")
          .hash([](const MedianFound& m) { return hash_fields(m.value); })
          .effect([&](const MedianFound& m) {
            std::lock_guard<std::mutex> lk(result_mu);
            result = m.value;
            have_result = true;
          }));

  eng.order({"Med", "MedFinal"});
  eng.order({"MedPhase", "MedTask", "MedResult", "MedDecide", "MedCopy",
             "MedData"});

  // Controller fan-out: split the active prefix into consecutive regions.
  eng.rule(phase, "fanOut", [&, regions](RuleCtx& ctx, const Phase& p) {
    for (int r = 0; r < regions; ++r) {
      const std::int64_t begin = p.n * r / regions;
      const std::int64_t end = p.n * (r + 1) / regions;
      if (begin == end) continue;
      task.put(ctx, PartTask{p.iter, static_cast<std::int32_t>(r), begin, end,
                             p.pivot});
    }
    decide.put(ctx, Decide{p.iter, p.n, p.k, p.pivot});
  });

  // Region partition (counting pass): report sizes to the controller.
  eng.rule(task, "partition", [&](RuleCtx& ctx, const PartTask& t) {
    std::int64_t below = 0, equal = 0;
    double sample_below = 0, sample_above = 0;
    std::int32_t has_below = 0, has_above = 0;
    for (std::int64_t i = t.begin; i < t.end; ++i) {
      const double v = array.read(t.iter, i);
      if (v < t.pivot) {
        ++below;
        // Rotate the retained sample so later phases don't keep hitting
        // the same pivot candidate on skewed inputs.
        if (!has_below || (i & 15) == 0) {
          sample_below = v;
          has_below = 1;
        }
      } else {
        if (v == t.pivot) ++equal;
        if (v > t.pivot && (!has_above || (i & 15) == 0)) {
          sample_above = v;
          has_above = 1;
        }
      }
    }
    part.put(ctx, PartResult{t.iter, t.region, below, equal, sample_below,
                             sample_above, has_below, has_above});
  });

  // Controller decision: aggregate region counts (an aggregate query of
  // strictly earlier tuples, per the law of causality), then either finish
  // directly, answer with the pivot, or fan out the compaction.
  eng.rule(decide, "decide", [&, regions](RuleCtx& ctx, const Decide& d) {
    if (d.n <= config.direct_cutoff) {
      // Few enough candidates: select directly from the active prefix.
      std::vector<double> rest(
          array.buffer(d.iter).begin(),
          array.buffer(d.iter).begin() + static_cast<std::ptrdiff_t>(d.n));
      std::nth_element(rest.begin(),
                       rest.begin() + static_cast<std::ptrdiff_t>(d.k),
                       rest.end());
      found.put(ctx, MedianFound{rest[static_cast<std::size_t>(d.k)]});
      return;
    }
    std::vector<PartResult> results;
    part.query(query::eq(&PartResult::iter, d.iter),
               [&](const PartResult& r) { results.push_back(r); });
    std::sort(results.begin(), results.end(),
              [](const PartResult& a, const PartResult& b) {
                return a.region < b.region;
              });
    std::int64_t total_below = 0, total_equal = 0;
    for (const auto& r : results) {
      total_below += r.below;
      total_equal += r.equal;
    }
    std::int32_t side;
    std::int64_t next_n, next_k;
    if (d.k < total_below) {
      side = 0;
      next_n = total_below;
      next_k = d.k;
    } else if (d.k < total_below + total_equal) {
      found.put(ctx, MedianFound{d.pivot});
      return;
    } else {
      side = 1;
      next_n = d.n - total_below;  // above side keeps equal values
      next_k = d.k - total_below;
    }
    // Next pivot: median of the per-region samples on the chosen side.
    std::vector<double> samples;
    for (const auto& r : results) {
      if (side == 0 && r.has_below) samples.push_back(r.sample_below);
      if (side == 1 && r.has_above) samples.push_back(r.sample_above);
    }
    double next_pivot;
    if (samples.empty()) {
      // Chosen side is entirely pivot-equal values (side 1 only).
      found.put(ctx, MedianFound{d.pivot});
      return;
    }
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(samples.size() / 2),
                     samples.end());
    next_pivot = samples[samples.size() / 2];

    // Compaction fan-out: each region copies its chosen-side elements to a
    // precomputed offset in the iter+1 array copy.
    std::int64_t dest = 0;
    for (const auto& r : results) {
      const std::int64_t begin = d.n * r.region / regions;
      const std::int64_t end = d.n * (r.region + 1) / regions;
      const std::int64_t len =
          (side == 0) ? r.below : (end - begin - r.below);
      if (len > 0) {
        copy.put(ctx, CopyTask{d.iter, r.region, begin, end, d.pivot, side,
                               dest});
        dest += len;
      }
    }
    phase.put(ctx, Phase{d.iter + 1, next_n, next_k, next_pivot});
  });

  // Compaction: stream the chosen side into the next array copy as Data
  // tuples (straight into the native-array store, -noDelta).
  eng.rule(copy, "copySide", [&](RuleCtx& ctx, const CopyTask& t) {
    std::int64_t at = t.dest;
    for (std::int64_t i = t.begin; i < t.end; ++i) {
      const double v = array.read(t.iter, i);
      const bool take = (t.side == 0) ? (v < t.pivot) : !(v < t.pivot);
      if (take) {
        data.put(ctx, DataTuple{t.iter + 1, at++, v});
      }
    }
  });

  // Initial pivot: a deterministic sample of the input.
  SplitMix64 rng(0xfeed5eed);
  const double pivot0 =
      values[rng.next_below(static_cast<std::uint64_t>(values.size()))];
  eng.put(phase, Phase{0, n0, (n0 - 1) / 2, pivot0});
  eng.run();
  JSTAR_CHECK_MSG(have_result, "median program terminated without a result");
  return result;
}

}  // namespace jstar::apps::median
