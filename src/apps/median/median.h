// The Median case study (§6.6): find the median of a large array of
// random doubles with an explicitly parallel selection algorithm:
//
//   "It chooses a global pivot value, divides the array into N consecutive
//    regions, partitions each of those regions using the pivot value
//    (similar to a Quicksort) and reports the size of those partitions
//    back to a central controller.  The controller then repeats this
//    process (each time focusing on the partitions that must contain the
//    median value) until only one value is left."
//
// The JStar formulation uses the paper's Data table
//     table Data(int iter, int index -> double value)
//         orderby (Int, seq iter, Data, seq index)
// with the custom double[2][N] Gamma structure: "the rules only use iter
// and iter+1, so we only need two copies of the array" — a manual
// gamma-garbage-collection lifetime hint (§5, item 4).  Data tuples are
// -noDelta (never triggers).
//
// Per iteration: a Phase tuple fans out PartTask region tuples (counting
// pass), a Decide tuple aggregates the PartResult counts, selects the
// side containing the k-th element, and fans out CopyTask tuples that
// compact the chosen side into the next iteration's array copy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"

namespace jstar::apps::median {

/// Deterministic random input array.
std::vector<double> random_values(std::int64_t n, std::uint64_t seed);

struct JStarConfig {
  EngineOptions engine;
  /// Partition regions per iteration (the paper's N tasks); 0 = 2x threads.
  int regions = 0;
  /// Below this many active elements the controller finishes directly.
  std::int64_t direct_cutoff = 1024;
};

/// Lower median (k = (n-1)/2 order statistic) via the JStar program.
double median_jstar(const std::vector<double>& values,
                    const JStarConfig& config);

/// Hand-coded baseline: full sort (the "Java version using Arrays.sort",
/// Fig 6's 13.4 s bar).
double median_sort(const std::vector<double>& values);

/// Hand-coded median-specific quickselect — the sequential equivalent of
/// the JStar algorithm ("partitions the whole array, but then recurses
/// only into the half that contains the median").
double median_quickselect(const std::vector<double>& values);

/// std::nth_element reference (for tests).
double median_nth_element(const std::vector<double>& values);

}  // namespace jstar::apps::median
