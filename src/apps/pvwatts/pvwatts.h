// The PvWatts case study (§6.2–§6.3): a map-reduce style program that
// reads hourly solar-cell output records from a CSV file and computes the
// average power generated during each month (Fig 4).
//
// The paper's input is a 192 MB file from NREL's PVWatts tool (8,760,000
// hourly records).  We do not have that file, so generate_csv() produces a
// synthetic equivalent: hourly records `year,month,day,hour,power` with a
// deterministic diurnal/seasonal power model.  The benchmark's behaviour
// depends only on record count and month distribution, both preserved; the
// record count is a parameter so the paper-scale input can be regenerated.
//
// Three implementations, mirroring the paper:
//   * run_jstar     — the Fig 4 program on the jstar engine, with the
//                     §6.2 strategy knobs (noDelta, Gamma structure choice,
//                     threads, parallel CSV regions);
//   * run_baseline  — the hand-coded "Java version": sequential read,
//                     flat accumulation (Fig 6 comparator);
//   * run_disruptor — the §6.3 single-producer / multi-consumer Disruptor
//                     pipeline (Table 1, Fig 10).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "csv/csv.h"
#include "disruptor/mp_ring_buffer.h"
#include "disruptor/ring_buffer.h"
#include "util/statistics.h"

namespace jstar::apps::pvwatts {

/// One hourly measurement — the PvWatts tuple of Fig 4.
struct PvRecord {
  std::int32_t year;
  std::int32_t month;  // 1..12
  std::int32_t day;    // 1..31
  std::int32_t hour;   // 0..23
  std::int64_t power;  // watts

  auto operator<=>(const PvRecord&) const = default;
};

/// The SumMonth request tuple of Fig 4.
struct SumMonth {
  std::int32_t year;
  std::int32_t month;
  auto operator<=>(const SumMonth&) const = default;
};

/// Record ordering in the generated file (Fig 10):
///   MonthMajor — "unsorted" in the paper's terms: ordered by year and
///                month, so one consumer sees long runs of records;
///   RoundRobin — "sorted" by day/hour: months interleave record by
///                record, giving the Disruptor consumers even load.
enum class InputOrder { MonthMajor, RoundRobin };

/// Generates `records` hourly measurements covering `records / 8760`
/// years (rounded up), deterministic in `seed`.
csv::Buffer generate_csv(std::int64_t records, InputOrder order,
                         std::uint64_t seed = 1);

/// (year*100 + month) → statistics of power for that month.
using MonthlyMeans = std::map<std::int32_t, Statistics>;

/// Gamma data-structure choice for the PvWatts table (Fig 8's
/// alternatives).
enum class GammaKind {
  Default,      // TreeSet / ConcurrentSkipListSet
  Hash,         // HashSet / striped concurrent hash set
  MonthArray,   // custom array[12]-of-hash-sets (§6.2)
  FlatHash,     // open-addressing flat array (§6.4) + (year, month) index
  Columnar,     // per-field SoA arrays (§6.4) + (year, month) index
};

inline const char* to_string(GammaKind g) {
  switch (g) {
    case GammaKind::Default: return "skiplist";
    case GammaKind::Hash: return "hash";
    case GammaKind::MonthArray: return "month-array";
    case GammaKind::FlatHash: return "flat-hash";
    case GammaKind::Columnar: return "columnar";
  }
  return "?";
}

struct JStarConfig {
  EngineOptions engine;
  /// -noDelta PvWatts (§5.1/§6.2); on by default as in the tuned program.
  bool no_delta_pvwatts = true;
  GammaKind gamma = GammaKind::MonthArray;
  /// Parallel CSV reader count (the Fig 7 first phase); 0 = threads.
  int csv_regions = 0;
};

/// Phase timings for the §6.3 breakdown.
struct PhaseBreakdown {
  double read_parse = 0;     // reading + parsing the input
  double gamma_insert = 0;   // creating PvWatts tuples + Gamma insert
  double delta_insert = 0;   // SumMonth tuples into the Delta tree
  double reduce = 0;         // Statistics reduction per month
};

struct Result {
  MonthlyMeans months;
  double seconds = 0;
  PhaseBreakdown phases;  // filled by run_jstar_phased only
};

Result run_jstar(const csv::Buffer& input, const JStarConfig& config);

/// Like run_jstar but with per-phase instrumentation (single-threaded
/// timers; use with threads == 1 as in §6.3).
Result run_jstar_phased(const csv::Buffer& input, const JStarConfig& config);

/// The §6.2 incremental-reducer optimisation: per-month Statistics
/// reducers consume PvWatts tuples as they are created (-noDelta
/// -noGamma), so the program runs in constant memory — no tuple is ever
/// stored.  `config.gamma` is ignored (there is no Gamma table).
Result run_jstar_incremental(const csv::Buffer& input,
                             const JStarConfig& config);

/// Hand-coded comparator (the "Java version" of Fig 6): deliberately uses
/// readline-plus-split string parsing, the input style the paper ascribes
/// to the Java program.
Result run_baseline(const csv::Buffer& input);

/// Stronger comparator on the zero-copy CSV reader (not in the paper; see
/// the Fig 6 bench output for why both are reported).
Result run_baseline_fast_csv(const csv::Buffer& input);

struct DisruptorConfig {
  int consumers = 12;                       // Table 1: 12, one per month
  std::size_t ring_size = 1024;             // Table 1
  std::int64_t producer_batch = 256;        // Table 1
  disruptor::WaitStrategy wait = disruptor::WaitStrategy::Blocking;
};

Result run_disruptor(const csv::Buffer& input, const DisruptorConfig& config);

/// Multi-producer variant: `producers` parallel CSV region readers publish
/// through an MpRingBuffer (Table 1's "multiple producers" alternative
/// combined with the Fig 7 parallel read phase).
Result run_disruptor_mp(const csv::Buffer& input,
                        const DisruptorConfig& config, int producers);

/// Reference means computed directly (for correctness tests).
MonthlyMeans reference_means(const csv::Buffer& input);

}  // namespace jstar::apps::pvwatts

// Hash support for the tuples (set-semantics dedup).
template <>
struct std::hash<jstar::apps::pvwatts::PvRecord> {
  std::size_t operator()(const jstar::apps::pvwatts::PvRecord& r) const {
    return jstar::hash_fields(r.year, r.month, r.day, r.hour, r.power);
  }
};
template <>
struct std::hash<jstar::apps::pvwatts::SumMonth> {
  std::size_t operator()(const jstar::apps::pvwatts::SumMonth& s) const {
    return jstar::hash_fields(s.year, s.month);
  }
};
