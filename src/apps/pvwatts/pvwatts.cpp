#include "apps/pvwatts/pvwatts.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/rng.h"
#include "util/timer.h"

namespace jstar::apps::pvwatts {

namespace {

constexpr std::int32_t kBaseYear = 2012;
constexpr std::int32_t kDaysPerMonth = 30;
constexpr std::int32_t kHoursPerDay = 24;
constexpr std::int64_t kRecordsPerYear = 12 * kDaysPerMonth * kHoursPerDay;

/// Deterministic synthetic solar power in watts: seasonal x diurnal shape
/// plus hash noise.  Zero at night, peak at noon in summer.
std::int64_t power_model(std::int32_t year, std::int32_t month,
                         std::int32_t day, std::int32_t hour,
                         std::uint64_t seed) {
  if (hour < 6 || hour > 18) return 0;
  const double diurnal = std::sin((hour - 6) * 3.14159265 / 12.0);
  const double seasonal = 0.6 + 0.4 * std::cos((month - 6) * 3.14159265 / 6.0);
  SplitMix64 noise(seed ^ hash_fields(year, month, day, hour));
  const double jitter = 0.9 + 0.2 * noise.next_double();
  return static_cast<std::int64_t>(1000.0 * diurnal * seasonal * jitter);
}

void append_record(csv::Writer& out, std::int32_t year, std::int32_t month,
                   std::int32_t day, std::int32_t hour, std::uint64_t seed) {
  out.field(year)
      .field(month)
      .field(day)
      .field(hour)
      .field(power_model(year, month, day, hour, seed))
      .end_record();
}

}  // namespace

csv::Buffer generate_csv(std::int64_t records, InputOrder order,
                         std::uint64_t seed) {
  csv::Writer bytes(static_cast<std::size_t>(records) * 22 + 64);
  std::int64_t emitted = 0;
  for (std::int32_t year = kBaseYear; emitted < records; ++year) {
    if (order == InputOrder::MonthMajor) {
      // "unsorted" (Fig 10): long runs of records for the same month.
      for (std::int32_t m = 1; m <= 12 && emitted < records; ++m) {
        for (std::int32_t d = 1; d <= kDaysPerMonth && emitted < records; ++d) {
          for (std::int32_t h = 0; h < kHoursPerDay && emitted < records; ++h) {
            append_record(bytes, year, m, d, h, seed);
            ++emitted;
          }
        }
      }
    } else {
      // "sorted" by day/time (Fig 10): months interleave round-robin.
      for (std::int32_t d = 1; d <= kDaysPerMonth && emitted < records; ++d) {
        for (std::int32_t h = 0; h < kHoursPerDay && emitted < records; ++h) {
          for (std::int32_t m = 1; m <= 12 && emitted < records; ++m) {
            append_record(bytes, year, m, d, h, seed);
            ++emitted;
          }
        }
      }
    }
  }
  return bytes.take();
}

MonthlyMeans reference_means(const csv::Buffer& input) {
  MonthlyMeans out;
  csv::RecordReader reader(input, {0, input.size()});
  std::vector<csv::Slice> fields;
  while (reader.next(fields)) {
    const auto year = static_cast<std::int32_t>(fields[0].to_int64());
    const auto month = static_cast<std::int32_t>(fields[1].to_int64());
    out[year * 100 + month].add(static_cast<double>(fields[4].to_int64()));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Custom Gamma structure (§6.2): "an array indexed by month (1..12) at the
// top level, and either a HashSet or ConcurrentHashMap within each entry".
// ---------------------------------------------------------------------------

class MonthArrayStore final : public GammaStore<PvRecord> {
 public:
  bool insert(const PvRecord& r) override {
    Bucket& b = bucket(r.month);
    std::lock_guard<std::mutex> lk(b.mu);
    return b.set.insert(r).second;
  }
  bool contains(const PvRecord& r) const override {
    const Bucket& b = bucket(r.month);
    std::lock_guard<std::mutex> lk(b.mu);
    return b.set.count(r) != 0;
  }
  void scan(const std::function<void(const PvRecord&)>& fn) const override {
    for (int m = 1; m <= 12; ++m) month_scan(m, fn);
  }
  std::size_t size() const override {
    std::size_t n = 0;
    for (const Bucket& b : buckets_) {
      std::lock_guard<std::mutex> lk(b.mu);
      n += b.set.size();
    }
    return n;
  }
  std::string describe() const override { return "month-array"; }
  /// The specialised query path: all records of one month.
  void month_scan(int month,
                  const std::function<void(const PvRecord&)>& fn) const {
    const Bucket& b = bucket(month);
    std::lock_guard<std::mutex> lk(b.mu);
    for (const PvRecord& r : b.set) fn(r);
  }

 private:
  struct Bucket {
    mutable std::mutex mu;
    std::unordered_set<PvRecord> set;
  };
  Bucket& bucket(int month) { return buckets_[static_cast<std::size_t>(month - 1)]; }
  const Bucket& bucket(int month) const {
    return buckets_[static_cast<std::size_t>(month - 1)];
  }
  std::array<Bucket, 12> buckets_;
};

/// The §6.2 hash alternative: "we can use a HashSet or ConcurrentHashMap,
/// which are considerably more efficient" — the paper indexes "the year
/// and month fields of the PvWatts table (e.g. as one hashtable)", i.e.
/// the hash key is the *query* key (year*100+month), not the whole tuple.
class YearMonthHashStore final : public GammaStore<PvRecord> {
 public:
  explicit YearMonthHashStore(std::size_t stripes = 16)
      : stripes_(stripes) {}

  bool insert(const PvRecord& r) override {
    Stripe& s = stripe(ym(r));
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map[ym(r)].insert(r).second;
  }
  bool contains(const PvRecord& r) const override {
    const Stripe& s = stripe(ym(r));
    std::lock_guard<std::mutex> lk(s.mu);
    const auto it = s.map.find(ym(r));
    return it != s.map.end() && it->second.count(r) != 0;
  }
  void scan(const std::function<void(const PvRecord&)>& fn) const override {
    for (const Stripe& s : stripes_vec_) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (const auto& [key, set] : s.map) {
        (void)key;
        for (const PvRecord& r : set) fn(r);
      }
    }
  }
  std::size_t size() const override {
    std::size_t n = 0;
    for (const Stripe& s : stripes_vec_) {
      std::lock_guard<std::mutex> lk(s.mu);
      for (const auto& [key, set] : s.map) {
        (void)key;
        n += set.size();
      }
    }
    return n;
  }
  std::string describe() const override { return "year-month-hash"; }
  /// The keyed query path: all records of one (year, month).
  void ym_scan(std::int32_t year, std::int32_t month,
               const std::function<void(const PvRecord&)>& fn) const {
    const std::int32_t key = year * 100 + month;
    const Stripe& s = stripe(key);
    std::lock_guard<std::mutex> lk(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return;
    for (const PvRecord& r : it->second) fn(r);
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::int32_t, std::unordered_set<PvRecord>> map;
  };
  static std::int32_t ym(const PvRecord& r) { return r.year * 100 + r.month; }
  Stripe& stripe(std::int32_t key) {
    return stripes_vec_[static_cast<std::size_t>(key) % stripes_];
  }
  const Stripe& stripe(std::int32_t key) const {
    return stripes_vec_[static_cast<std::size_t>(key) % stripes_];
  }
  std::size_t stripes_;
  mutable std::vector<Stripe> stripes_vec_{stripes_};
};

namespace {

std::unique_ptr<GammaStore<PvRecord>> make_store(GammaKind kind,
                                                 bool parallel) {
  switch (kind) {
    case GammaKind::Default:
      if (parallel) return std::make_unique<SkipListStore<PvRecord>>();
      return std::make_unique<TreeSetStore<PvRecord>>();
    case GammaKind::Hash:
      // Sequential vs parallel differ only in stripe count (1 stripe ==
      // the plain HashMap of hash sets).
      return std::make_unique<YearMonthHashStore>(parallel ? 16 : 1);
    case GammaKind::MonthArray:
      return std::make_unique<MonthArrayStore>();
    case GammaKind::FlatHash:
      // The §6.4 flat tier: open-addressing contiguous slots; the
      // (year, month) query key routes through the composite index
      // run_jstar_impl declares for this kind.
      return std::make_unique<FlatHashStore<PvRecord>>();
    case GammaKind::Columnar:
      // Configured through the TableDecl::columns() preset instead of a
      // store_factory (run_jstar_impl branches before reaching here).
      break;
  }
  return nullptr;
}

/// Query all PvWatts records of (year, month) through whatever structure
/// the strategy installed — the rule text itself never changes (§1.4).
/// The custom stores keep their hand-written keyed paths; the default
/// store routes through the query planner, which compiles the composite
/// (year, month) equality onto the index run_jstar_impl declared — the
/// §6.2 "index the year and month fields ... as one hashtable" strategy
/// expressed in the DSL instead of a bespoke Gamma structure.
void query_month(const Table<PvRecord>& pv, std::int32_t year,
                 std::int32_t month,
                 const std::function<void(const PvRecord&)>& fn) {
  if (const auto* ma = dynamic_cast<const MonthArrayStore*>(pv.store())) {
    ma->month_scan(month, [&](const PvRecord& r) {
      if (r.year == year) fn(r);
    });
    return;
  }
  if (const auto* h = dynamic_cast<const YearMonthHashStore*>(pv.store())) {
    h->ym_scan(year, month, fn);
    return;
  }
  pv.query(query::eq(&PvRecord::year, year) &&
               query::eq(&PvRecord::month, month),
           fn);
}

/// The read-loop rule body: the request tuple triggers parallel region
/// readers over the input (the Fig 7 first phase).
struct ReadRequest {
  std::int32_t regions;
  auto operator<=>(const ReadRequest&) const = default;
};

}  // namespace

namespace detail_hash {
struct ReadRequestHash {
  std::size_t operator()(const ReadRequest& r) const {
    return jstar::hash_fields(r.regions);
  }
};
}  // namespace detail_hash

static Result run_jstar_impl(const csv::Buffer& input,
                             const JStarConfig& config,
                             PhaseBreakdown* phases) {
  EngineOptions opts = config.engine;
  if (config.no_delta_pvwatts) opts.no_delta.insert("PvWatts");
  Engine eng(opts);

  auto& req = eng.table(TableDecl<ReadRequest>("PvWattsRequest")
                            .orderby_lit("Req")
                            .hash(detail_hash::ReadRequestHash{}));
  TableDecl<PvRecord> pv_decl =
      TableDecl<PvRecord>("PvWatts")
          .orderby_lit("PvWatts")
          .hash([](const PvRecord& r) { return std::hash<PvRecord>{}(r); });
  if (config.gamma == GammaKind::Columnar) {
    // The SoA tier: every field its own array; sumMonth's planned
    // (year, month) lookup probes the composite index below, and any
    // residual full-scan predicate compiles to per-column kernels.
    pv_decl.columns(&PvRecord::year, &PvRecord::month, &PvRecord::day,
                    &PvRecord::hour, &PvRecord::power);
  } else {
    pv_decl.store_factory([&config](bool parallel) {
      return make_store(config.gamma, parallel);
    });
  }
  auto& pv = eng.table(std::move(pv_decl));
  if (config.gamma == GammaKind::Default ||
      config.gamma == GammaKind::FlatHash ||
      config.gamma == GammaKind::Columnar) {
    // Composite secondary index on the query key: sumMonth's planned
    // (year, month) lookup probes one bucket instead of scanning the
    // ordered default store / the flat hash slots.  The hand-written
    // custom stores are their own index.
    pv.add_index(&PvRecord::year, &PvRecord::month);
  }
  auto& sum = eng.table(
      TableDecl<SumMonth>("SumMonth").orderby_lit("SumMonth").hash([](
          const SumMonth& s) { return std::hash<SumMonth>{}(s); }));
  eng.order({"Req", "PvWatts", "SumMonth"});

  // foreach (PvWatts pv) { put new SumMonth(pv.year, pv.month); }
  eng.rule(pv, "pvToSumMonth", [&](RuleCtx& ctx, const PvRecord& r) {
    WallTimer t;
    sum.put(ctx, SumMonth{r.year, r.month});
    if (phases) phases->delta_insert += t.seconds();
  });

  // foreach (PvWattsRequest req) { ... CSV read loop ... }
  eng.rule(req, "readCsv", [&](RuleCtx& ctx, const ReadRequest& r) {
    const auto regions = csv::split_regions(input.size(), r.regions);
    auto read_region = [&](std::int64_t i) {
      csv::RecordReader reader(input, regions[static_cast<std::size_t>(i)]);
      std::vector<csv::Slice> fields;
      for (;;) {
        WallTimer t;
        if (!reader.next(fields)) break;
        PvRecord rec{static_cast<std::int32_t>(fields[0].to_int64()),
                     static_cast<std::int32_t>(fields[1].to_int64()),
                     static_cast<std::int32_t>(fields[2].to_int64()),
                     static_cast<std::int32_t>(fields[3].to_int64()),
                     fields[4].to_int64()};
        if (phases) phases->read_parse += t.seconds();
        WallTimer t2;
        pv.put(ctx, rec);
        if (phases) {
          // pv.put includes the inline SumMonth put (noDelta fires the
          // pvToSumMonth rule immediately); that part is accumulated into
          // delta_insert by the rule itself, so subtract it here.
          phases->gamma_insert += t2.seconds();
        }
      }
    };
    auto* pool = eng.pool();
    if (pool != nullptr && r.regions > 1) {
      pool->for_each_index(r.regions, read_region, /*grain=*/1);
    } else {
      for (int i = 0; i < r.regions; ++i) read_region(i);
    }
  });

  // foreach (SumMonth s) { Statistics over that month's records }
  std::mutex out_mu;
  Result result;
  eng.rule(sum, "sumMonth", [&](RuleCtx&, const SumMonth& s) {
    WallTimer t;
    Statistics stats;
    query_month(pv, s.year, s.month,
                [&](const PvRecord& r) { stats.add(static_cast<double>(r.power)); });
    if (phases) phases->reduce += t.seconds();
    std::lock_guard<std::mutex> lk(out_mu);
    result.months[s.year * 100 + s.month] = stats;
  });

  int region_count = config.csv_regions;
  if (region_count <= 0) {
    region_count = opts.sequential ? 1 : opts.threads;
  }
  WallTimer timer;
  eng.put(req, ReadRequest{region_count});
  eng.run();
  result.seconds = timer.seconds();
  if (phases) {
    phases->gamma_insert -= phases->delta_insert;
    if (phases->gamma_insert < 0) phases->gamma_insert = 0;
    result.phases = *phases;
  }
  return result;
}

Result run_jstar(const csv::Buffer& input, const JStarConfig& config) {
  return run_jstar_impl(input, config, nullptr);
}

Result run_jstar_incremental(const csv::Buffer& input,
                             const JStarConfig& config) {
  // The §6.2 "more aggressive optimization": unfold the SumMonth rule so
  // its reduce loop runs incrementally as the PvWatts tuples are produced.
  // Each (year, month) owns a Statistics reducer; PvWatts tuples are fed
  // to their month's reducer the moment they are created and are then
  // discarded (-noDelta + -noGamma) — "the program [runs] in a constant
  // amount of memory, rather than proportional to the size of the input
  // file".
  EngineOptions opts = config.engine;
  opts.no_delta.insert("PvWatts");
  opts.no_gamma.insert("PvWatts");
  Engine eng(opts);

  auto& req = eng.table(TableDecl<ReadRequest>("PvWattsRequest")
                            .orderby_lit("Req")
                            .hash(detail_hash::ReadRequestHash{}));
  auto& pv = eng.table(
      TableDecl<PvRecord>("PvWatts")
          .orderby_lit("PvWatts")
          .hash([](const PvRecord& r) { return std::hash<PvRecord>{}(r); }));
  eng.order({"Req", "PvWatts"});

  // One reducer per (year, month) bucket, sharded by month so parallel
  // region readers rarely contend (the paper's "the reducer could be
  // associated with each bucket in the PvWatts hashtable").
  struct MonthShard {
    std::mutex mu;
    std::unordered_map<std::int32_t, Statistics> by_year_month;
  };
  std::array<MonthShard, 12> shards;

  eng.rule(pv, "incrementalReduce", [&](RuleCtx&, const PvRecord& r) {
    MonthShard& shard = shards[static_cast<std::size_t>(r.month - 1)];
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.by_year_month[r.year * 100 + r.month].add(
        static_cast<double>(r.power));
  });

  eng.rule(req, "readCsv", [&](RuleCtx& ctx, const ReadRequest& r) {
    const auto regions = csv::split_regions(input.size(), r.regions);
    auto read_region = [&](std::int64_t i) {
      csv::RecordReader reader(input, regions[static_cast<std::size_t>(i)]);
      std::vector<csv::Slice> fields;
      while (reader.next(fields)) {
        pv.put(ctx, {static_cast<std::int32_t>(fields[0].to_int64()),
                     static_cast<std::int32_t>(fields[1].to_int64()),
                     static_cast<std::int32_t>(fields[2].to_int64()),
                     static_cast<std::int32_t>(fields[3].to_int64()),
                     fields[4].to_int64()});
      }
    };
    auto* pool = eng.pool();
    if (pool != nullptr && r.regions > 1) {
      pool->for_each_index(r.regions, read_region, /*grain=*/1);
    } else {
      for (int i = 0; i < r.regions; ++i) read_region(i);
    }
  });

  int region_count = config.csv_regions;
  if (region_count <= 0) {
    region_count = opts.sequential ? 1 : opts.threads;
  }
  WallTimer timer;
  eng.put(req, ReadRequest{region_count});
  eng.run();

  Result result;
  for (const MonthShard& shard : shards) {
    for (const auto& [ym, stats] : shard.by_year_month) {
      result.months[ym] = stats;
    }
  }
  result.seconds = timer.seconds();
  // Constant-memory claim is checkable by the caller: nothing was stored.
  JSTAR_CHECK(pv.gamma_size() == 0);
  return result;
}

Result run_jstar_phased(const csv::Buffer& input, const JStarConfig& config) {
  PhaseBreakdown phases;
  return run_jstar_impl(input, config, &phases);
}

Result run_baseline(const csv::Buffer& input) {
  // The paper's Java comparator "uses the typical input reading style of
  // BufferedReader.readline plus String.split" — i.e. it materialises one
  // String per line and one per field.  Reproduce that allocation pattern
  // (getline-into-string + substr splitting) so the Fig 6 comparison
  // measures the same thing the paper measured: slow string-based parsing
  // versus JStar's byte-array CSV library.
  WallTimer timer;
  Result result;
  std::unordered_map<std::int32_t, Statistics> acc;
  const char* data = input.data();
  const std::size_t size = input.size();
  std::size_t pos = 0;
  std::string line;
  std::vector<std::string> fields;
  while (pos < size) {
    std::size_t eol = pos;
    while (eol < size && data[eol] != '\n') ++eol;
    line.assign(data + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    fields.clear();
    std::size_t start = 0;
    for (;;) {
      const std::size_t comma = line.find(',', start);
      if (comma == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
    if (fields.size() < 5) continue;
    const auto year = static_cast<std::int32_t>(std::stoll(fields[0]));
    const auto month = static_cast<std::int32_t>(std::stoll(fields[1]));
    acc[year * 100 + month].add(static_cast<double>(std::stoll(fields[4])));
  }
  for (const auto& [ym, stats] : acc) result.months[ym] = stats;
  result.seconds = timer.seconds();
  return result;
}

Result run_baseline_fast_csv(const csv::Buffer& input) {
  // A second, stronger comparator: the same streaming aggregation but on
  // the zero-copy byte-slice reader (what a careful C++ programmer would
  // write).  Not in the paper; reported alongside Fig 6 for honesty about
  // where the JStar overhead goes (tuple storage, not parsing).
  WallTimer timer;
  Result result;
  std::unordered_map<std::int32_t, Statistics> acc;
  csv::RecordReader reader(input, {0, input.size()});
  std::vector<csv::Slice> fields;
  while (reader.next(fields)) {
    const auto year = static_cast<std::int32_t>(fields[0].to_int64());
    const auto month = static_cast<std::int32_t>(fields[1].to_int64());
    acc[year * 100 + month].add(static_cast<double>(fields[4].to_int64()));
  }
  for (const auto& [ym, stats] : acc) result.months[ym] = stats;
  result.seconds = timer.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// Disruptor version (§6.3, Fig 9): single producer reads the CSV and
// publishes PvWatts tuples; each consumer owns a subset of months, keeps a
// local Gamma, and reduces it when the sentinel arrives.
// ---------------------------------------------------------------------------

namespace {
struct Event {
  PvRecord record{};
  bool sentinel = false;
};
}  // namespace

Result run_disruptor(const csv::Buffer& input, const DisruptorConfig& config) {
  JSTAR_CHECK_MSG(config.consumers >= 1 && config.consumers <= 12,
                  "consumers must be in 1..12 (one or more months each)");
  WallTimer timer;
  disruptor::RingBuffer<Event> ring(config.ring_size, config.wait);
  std::vector<int> consumer_ids;
  for (int c = 0; c < config.consumers; ++c) {
    consumer_ids.push_back(ring.add_consumer());
  }

  std::mutex out_mu;
  Result result;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.consumers));
  for (int c = 0; c < config.consumers; ++c) {
    threads.emplace_back([&, c] {
      // Local Gamma: month-of-this-consumer → records (Fig 9's "own Gamma
      // database"); reduced when the sentinel tuple arrives.
      std::unordered_map<std::int32_t, std::vector<PvRecord>> local_gamma;
      disruptor::consume_loop(ring, consumer_ids[static_cast<std::size_t>(c)],
                              [&](const Event& e, std::int64_t) {
        if (e.sentinel) {
          std::lock_guard<std::mutex> lk(out_mu);
          for (const auto& [ym, records] : local_gamma) {
            Statistics stats;
            for (const PvRecord& r : records) {
              stats.add(static_cast<double>(r.power));
            }
            result.months[ym] = stats;
          }
          return false;
        }
        if ((e.record.month - 1) % config.consumers == c) {
          local_gamma[e.record.year * 100 + e.record.month].push_back(e.record);
        }
        return true;
      });
    });
  }

  // Producer: read + parse + publish in claimed batches (Table 1).
  {
    csv::RecordReader reader(input, {0, input.size()});
    std::vector<csv::Slice> fields;
    bool more = true;
    while (more) {
      std::vector<PvRecord> batch;
      batch.reserve(static_cast<std::size_t>(config.producer_batch));
      while (static_cast<std::int64_t>(batch.size()) < config.producer_batch) {
        if (!reader.next(fields)) {
          more = false;
          break;
        }
        batch.push_back({static_cast<std::int32_t>(fields[0].to_int64()),
                         static_cast<std::int32_t>(fields[1].to_int64()),
                         static_cast<std::int32_t>(fields[2].to_int64()),
                         static_cast<std::int32_t>(fields[3].to_int64()),
                         fields[4].to_int64()});
      }
      if (!batch.empty()) {
        const std::int64_t hi =
            ring.claim(static_cast<std::int64_t>(batch.size()));
        const std::int64_t lo = hi - static_cast<std::int64_t>(batch.size()) + 1;
        for (std::size_t i = 0; i < batch.size(); ++i) {
          Event& slot = ring.slot(lo + static_cast<std::int64_t>(i));
          slot.record = batch[i];
          slot.sentinel = false;
        }
        ring.publish(hi);
      }
    }
    const std::int64_t s = ring.claim(1);
    ring.slot(s).sentinel = true;
    ring.publish(s);
  }

  for (auto& t : threads) t.join();
  result.seconds = timer.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// Multi-producer Disruptor variant: N region readers (the Fig 7 first
// phase / Hadoop-style split readers) publish concurrently through an
// MpRingBuffer.  Each producer sends one sentinel; consumers stop after
// seeing all N.
// ---------------------------------------------------------------------------

Result run_disruptor_mp(const csv::Buffer& input,
                        const DisruptorConfig& config, int producers) {
  JSTAR_CHECK_MSG(config.consumers >= 1 && config.consumers <= 12,
                  "consumers must be in 1..12 (one or more months each)");
  JSTAR_CHECK_MSG(producers >= 1, "need at least one producer");
  WallTimer timer;
  disruptor::MpRingBuffer<Event> ring(config.ring_size, config.wait);
  std::vector<int> consumer_ids;
  for (int c = 0; c < config.consumers; ++c) {
    consumer_ids.push_back(ring.add_consumer());
  }

  std::mutex out_mu;
  Result result;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.consumers + producers));
  for (int c = 0; c < config.consumers; ++c) {
    threads.emplace_back([&, c] {
      std::unordered_map<std::int32_t, std::vector<PvRecord>> local_gamma;
      int sentinels = 0;
      disruptor::mp_consume_loop(
          ring, consumer_ids[static_cast<std::size_t>(c)],
          [&](const Event& e, std::int64_t) {
            if (e.sentinel) {
              if (++sentinels < producers) return true;
              std::lock_guard<std::mutex> lk(out_mu);
              for (const auto& [ym, records] : local_gamma) {
                Statistics stats;
                for (const PvRecord& r : records) {
                  stats.add(static_cast<double>(r.power));
                }
                result.months[ym] = stats;
              }
              return false;
            }
            if ((e.record.month - 1) % config.consumers == c) {
              local_gamma[e.record.year * 100 + e.record.month].push_back(
                  e.record);
            }
            return true;
          });
    });
  }

  const std::vector<csv::Region> regions =
      csv::split_regions(input.size(), producers);
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      csv::RecordReader reader(input, regions[static_cast<std::size_t>(p)]);
      std::vector<csv::Slice> fields;
      bool more = true;
      while (more) {
        std::vector<PvRecord> batch;
        batch.reserve(static_cast<std::size_t>(config.producer_batch));
        while (static_cast<std::int64_t>(batch.size()) <
               config.producer_batch) {
          if (!reader.next(fields)) {
            more = false;
            break;
          }
          batch.push_back({static_cast<std::int32_t>(fields[0].to_int64()),
                           static_cast<std::int32_t>(fields[1].to_int64()),
                           static_cast<std::int32_t>(fields[2].to_int64()),
                           static_cast<std::int32_t>(fields[3].to_int64()),
                           fields[4].to_int64()});
        }
        if (!batch.empty()) {
          const std::int64_t hi =
              ring.claim(static_cast<std::int64_t>(batch.size()));
          const std::int64_t lo =
              hi - static_cast<std::int64_t>(batch.size()) + 1;
          for (std::size_t i = 0; i < batch.size(); ++i) {
            Event& slot = ring.slot(lo + static_cast<std::int64_t>(i));
            slot.record = batch[i];
            slot.sentinel = false;
          }
          ring.publish(lo, hi);
        }
      }
      const std::int64_t s = ring.claim(1);
      ring.slot(s).sentinel = true;
      ring.publish(s);
    });
  }

  for (auto& t : threads) t.join();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace jstar::apps::pvwatts
