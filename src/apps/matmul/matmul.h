// The MatrixMult case study (§6.4): naive N×N integer matrix
// multiplication where "each row of the output matrix is a separate task".
//
// The JStar formulation: a multiplication-request tuple generates one
// row-request tuple per output row; each row request triggers a rule that
// computes the dot products for its row.  After compiler optimisations
// "only one tuple per row of the output matrix needs to go through the
// delta set", and the matrices themselves use the 'native-arrays' Gamma
// structure (dense integer keys → plain 2D arrays).
//
// Fig 6's 21.9 s vs 8.1 s bar pair comes from XText accidentally boxing
// ints in the inner loop; kernel Boxed reproduces that accident (per-cell
// heap-allocated integers), kernel Primitive is the corrected code.  The
// hand-coded baselines are the naive ijk Java program (7.5 s) and the
// cache-friendly transposed variant (1.0 s).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.h"

namespace jstar::apps::matmul {

/// Row-major dense integer matrix — the 'native-arrays' Gamma structure
/// for `table Matrix(int mat, int row, int col -> int value)`.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols),
                               data_(static_cast<std::size_t>(rows) * cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  void set(int r, int c, std::int64_t v) {
    data_[static_cast<std::size_t>(r) * cols_ + c] = v;
  }
  const std::int64_t* row_ptr(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// Deterministic random fill with small values (keeps products exact).
  static Matrix random(int rows, int cols, std::uint64_t seed);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::int64_t> data_;
};

enum class Kernel {
  Primitive,   // plain int64 arithmetic (the manually corrected code, 8.1 s)
  Boxed,       // heap-boxed operands in the inner loop (the XText bug, 21.9 s)
  Transposed,  // the cache-friendly rewrite the paper says "we could apply
               // ... to the JStar program" — B is transposed once when the
               // multiplication request arrives, then row rules stream both
               // operands sequentially
};

/// Runs the JStar program: one row-request tuple per output row through
/// the Delta set, row rules computing dot products into a native-array
/// result store.
Matrix multiply_jstar(const Matrix& a, const Matrix& b, Kernel kernel,
                      const EngineOptions& opts);

/// Hand-coded naive ijk multiplication (the 7.5 s Java baseline).
Matrix multiply_naive(const Matrix& a, const Matrix& b);

/// Hand-coded transposed multiplication (the 1.0 s optimised baseline).
Matrix multiply_transposed(const Matrix& a, const Matrix& b);

}  // namespace jstar::apps::matmul
