#include "apps/matmul/matmul.h"

#include <mutex>

#include "util/rng.h"

namespace jstar::apps::matmul {

Matrix Matrix::random(int rows, int cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  SplitMix64 rng(seed);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.set(r, c, rng.next_in(-9, 9));
    }
  }
  return m;
}

Matrix multiply_naive(const Matrix& a, const Matrix& b) {
  JSTAR_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      std::int64_t acc = 0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      c.set(i, j, acc);
    }
  }
  return c;
}

Matrix multiply_transposed(const Matrix& a, const Matrix& b) {
  JSTAR_CHECK(a.cols() == b.rows());
  // Transpose b so the inner loop walks both operands sequentially — the
  // "obvious improvement" that took the hand-coded version to 1.0 s.
  Matrix bt(b.cols(), b.rows());
  for (int r = 0; r < b.rows(); ++r) {
    for (int j = 0; j < b.cols(); ++j) {
      bt.set(j, r, b.at(r, j));
    }
  }
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const std::int64_t* arow = a.row_ptr(i);
    for (int j = 0; j < b.cols(); ++j) {
      const std::int64_t* brow = bt.row_ptr(j);
      std::int64_t acc = 0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += arow[k] * brow[k];
      }
      c.set(i, j, acc);
    }
  }
  return c;
}

namespace {

/// A heap-boxed integer, reproducing XText 2.3's accidental use of boxed
/// Integers in the inner loop (§6.1).  Every arithmetic operation
/// allocates, exactly like Java's Integer autoboxing on a miss of the
/// small-value cache.
struct BoxedInt {
  std::unique_ptr<std::int64_t> v;
  explicit BoxedInt(std::int64_t x) : v(std::make_unique<std::int64_t>(x)) {}
  friend BoxedInt operator*(const BoxedInt& a, const BoxedInt& b) {
    return BoxedInt(*a.v * *b.v);
  }
  friend BoxedInt operator+(const BoxedInt& a, const BoxedInt& b) {
    return BoxedInt(*a.v + *b.v);
  }
};

std::int64_t dot_primitive(const Matrix& a, const Matrix& b, int row, int col) {
  std::int64_t acc = 0;
  for (int k = 0; k < a.cols(); ++k) {
    acc += a.at(row, k) * b.at(k, col);
  }
  return acc;
}

std::int64_t dot_transposed(const Matrix& a, const Matrix& bt, int row,
                            int col) {
  const std::int64_t* arow = a.row_ptr(row);
  const std::int64_t* brow = bt.row_ptr(col);
  std::int64_t acc = 0;
  for (int k = 0; k < a.cols(); ++k) {
    acc += arow[k] * brow[k];
  }
  return acc;
}

std::int64_t dot_boxed(const Matrix& a, const Matrix& b, int row, int col) {
  BoxedInt acc(0);
  for (int k = 0; k < a.cols(); ++k) {
    acc = acc + BoxedInt(a.at(row, k)) * BoxedInt(b.at(k, col));
  }
  return *acc.v;
}

/// Tuples of the JStar program.
struct MulRequest {
  std::int32_t n;  // output rows
  auto operator<=>(const MulRequest&) const = default;
};
struct RowRequest {
  std::int32_t row;
  auto operator<=>(const RowRequest&) const = default;
};
/// table Matrix(int mat, int row, int col -> int value): one Result tuple
/// per output cell, flowing -noDelta into the native-array store below.
struct ResultCell {
  std::int32_t row;
  std::int32_t col;
  std::int64_t value;
  auto operator<=>(const ResultCell&) const = default;
};

/// The 'native-arrays' Gamma store: dense integer keys (row, col) → a
/// plain 2D array.  Set-semantics dedup is trivially satisfied because
/// each cell is computed exactly once (the row rule's loop bounds).
class ResultArrayStore final : public GammaStore<ResultCell> {
 public:
  explicit ResultArrayStore(Matrix* out) : out_(out) {}
  bool insert(const ResultCell& c) override {
    out_->set(c.row, c.col, c.value);
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  bool contains(const ResultCell& c) const override {
    return out_->at(c.row, c.col) == c.value;
  }
  void scan(const std::function<void(const ResultCell&)>& fn) const override {
    for (int r = 0; r < out_->rows(); ++r) {
      for (int col = 0; col < out_->cols(); ++col) {
        fn(ResultCell{r, col, out_->at(r, col)});
      }
    }
  }
  /// Chunked pushdown over the dense table: one output row per span, so
  /// scan-side consumers pay the type-erased hop per row, not per cell.
  void scan_chunks(const std::function<void(const ResultCell*, std::size_t)>&
                       fn) const override {
    if (out_->cols() <= 0) return;
    std::vector<ResultCell> row(static_cast<std::size_t>(out_->cols()));
    for (int r = 0; r < out_->rows(); ++r) {
      for (int col = 0; col < out_->cols(); ++col) {
        row[static_cast<std::size_t>(col)] =
            ResultCell{r, col, out_->at(r, col)};
      }
      fn(row.data(), row.size());
    }
  }
  bool chunked() const override { return true; }
  std::string describe() const override { return "result-array"; }
  std::size_t size() const override {
    return static_cast<std::size_t>(count_.load(std::memory_order_relaxed));
  }

 private:
  Matrix* out_;
  std::atomic<std::int64_t> count_{0};
};

struct CellHash {
  std::size_t operator()(const ResultCell& c) const {
    return hash_fields(c.row, c.col, c.value);
  }
};

}  // namespace

Matrix multiply_jstar(const Matrix& a, const Matrix& b, Kernel kernel,
                      const EngineOptions& base_opts) {
  JSTAR_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());

  EngineOptions opts = base_opts;
  // Only one tuple per output row goes through the Delta set (§6.4).
  opts.no_delta.insert("Result");
  Engine eng(opts);

  auto& mul = eng.table(TableDecl<MulRequest>("MulRequest")
                            .orderby_lit("Req")
                            .hash([](const MulRequest& r) {
                              return hash_fields(r.n);
                            }));
  auto& rows = eng.table(TableDecl<RowRequest>("RowRequest")
                             .orderby_lit("Row")
                             .orderby_par("row")
                             .hash([](const RowRequest& r) {
                               return hash_fields(r.row);
                             }));
  auto& cells = eng.table(TableDecl<ResultCell>("Result")
                              .orderby_lit("Result")
                              .hash(CellHash{})
                              .store_factory([&out](bool) {
                                return std::make_unique<ResultArrayStore>(&out);
                              }));
  eng.order({"Req", "Row", "Result"});

  // Request rule: one row-request tuple per output row.  All rows share a
  // timestamp (par row), so they form one equivalence class and execute as
  // parallel fork/join tasks — "each row of the output matrix is a
  // separate task".
  eng.rule(mul, "fanOutRows", [&](RuleCtx& ctx, const MulRequest& r) {
    for (std::int32_t i = 0; i < r.n; ++i) {
      rows.put(ctx, RowRequest{i});
    }
  });

  // The Transposed kernel's one-time preparation: transpose B when the
  // multiplication request arrives (a strategy change, not a program
  // change — the rule text below still just computes dot products).
  auto bt = std::make_shared<Matrix>();
  if (kernel == Kernel::Transposed) {
    *bt = Matrix(b.cols(), b.rows());
    for (int r = 0; r < b.rows(); ++r) {
      for (int j = 0; j < b.cols(); ++j) {
        bt->set(j, r, b.at(r, j));
      }
    }
  }

  // Row rule: nested loop with a summation reducer over the columns.
  eng.rule(rows, "computeRow", [&, kernel, bt](RuleCtx& ctx,
                                               const RowRequest& r) {
    for (int j = 0; j < b.cols(); ++j) {
      std::int64_t v = 0;
      switch (kernel) {
        case Kernel::Primitive: v = dot_primitive(a, b, r.row, j); break;
        case Kernel::Boxed: v = dot_boxed(a, b, r.row, j); break;
        case Kernel::Transposed: v = dot_transposed(a, *bt, r.row, j); break;
      }
      cells.put(ctx, ResultCell{r.row, static_cast<std::int32_t>(j), v});
    }
  });

  eng.put(mul, MulRequest{a.rows()});
  eng.run();
  return out;
}

}  // namespace jstar::apps::matmul
