// Double-buffered shard mailbox — the delivery half of the sharded
// engine's fabric (src/dist/sharded.h).
//
// A Mailbox<T> is the *inbound* box of one shard.  Any number of producers
// push concurrently; exactly one consumer (the owning shard) drains.  The
// box keeps two set buffers and an index that says which one is the write
// side: push() inserts into the write buffer under a short mutex section,
// drain() flips the index under the same mutex — an O(1) swap — and then
// moves the full buffer out *after* releasing the lock.  Producers
// therefore never wait behind a consumer iterating thousands of tuples;
// they only contend on individual set inserts into the other buffer.  This
// is the "lock-free-ish" double buffering the async executor leans on: the
// critical section is a pointer flip, not a drain.
//
// Epochs: every drain() is one epoch (counted in drains()).  Dedup is per
// destination per epoch — a tuple pushed twice into the same write buffer
// is delivered once; pushed again after the buffer swapped, it is a new
// delivery (set semantics at the receiving engine makes the redelivery a
// no-op, so cross-epoch duplicates are harmless, only counted).
//
// Termination support: an optional pending counter can be attached.  While
// attached, every *fresh* push increments it under the mailbox mutex —
// which means the increment is visible before any drain() can hand the
// tuple to the consumer, so the async termination detector's credit
// arithmetic (decrement after processing) can never observe a transient
// zero while work is still in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

namespace jstar::dist {

template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Inserts `t` into the current write buffer.  Returns true when the
  /// tuple is fresh in this epoch (not a duplicate of an undrained tuple).
  /// Wakes a consumer blocked in wait().  Thread-safe.
  bool push(const T& t) {
    bool fresh;
    {
      std::lock_guard<std::mutex> lk(mu_);
      fresh = bufs_[write_].insert(t).second;
      if (fresh && pending_ != nullptr) {
        pending_->fetch_add(1, std::memory_order_acq_rel);
      }
      if (fresh) nonempty_.store(true, std::memory_order_release);
    }
    if (fresh) cv_.notify_one();
    return fresh;
  }

  /// Bulk push; returns how many tuples were fresh this epoch.
  template <typename It>
  std::int64_t push_all(It first, It last) {
    std::int64_t fresh = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (It it = first; it != last; ++it) {
        if (bufs_[write_].insert(*it).second) {
          ++fresh;
          if (pending_ != nullptr) {
            pending_->fetch_add(1, std::memory_order_acq_rel);
          }
        }
      }
      if (fresh > 0) nonempty_.store(true, std::memory_order_release);
    }
    if (fresh > 0) cv_.notify_one();
    return fresh;
  }

  /// Swap-on-drain: flips the write side under the lock (O(1)), then moves
  /// the filled buffer out after unlocking so producers are not blocked
  /// while the consumer takes ownership.  Single consumer only — the
  /// returned buffer aliases the non-write side until the *next* drain.
  /// Counts one epoch even when empty (the consumer polled).
  std::set<T> drain() {
    int full;
    {
      std::lock_guard<std::mutex> lk(mu_);
      full = write_;
      write_ ^= 1;
      nonempty_.store(false, std::memory_order_release);
      drains_.fetch_add(1, std::memory_order_relaxed);
    }
    std::set<T> out = std::move(bufs_[static_cast<std::size_t>(full)]);
    bufs_[static_cast<std::size_t>(full)].clear();
    return out;
  }

  /// True when the write buffer has undrained mail.  Lock-free hint for
  /// polling loops; the authoritative empty check is drain().empty().
  bool has_mail() const { return nonempty_.load(std::memory_order_acquire); }

  /// Blocks until mail arrives or `stop()` returns true.  `stop` is
  /// evaluated under the mailbox mutex, so a producer that sets its flag
  /// and then calls poke() cannot race a lost wakeup.
  template <typename Stop>
  void wait(Stop&& stop) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return nonempty_.load(std::memory_order_acquire) || stop();
    });
  }

  /// Wakes every waiter so it re-evaluates its stop predicate (used for
  /// termination / abort broadcast).
  void poke() {
    std::lock_guard<std::mutex> lk(mu_);
    cv_.notify_all();
  }

  /// Number of drain() epochs so far.
  std::int64_t drains() const {
    return drains_.load(std::memory_order_relaxed);
  }

  /// Undrained tuple count (takes the lock; for setup-time accounting).
  std::int64_t pending_size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<std::int64_t>(bufs_[write_].size());
  }

  /// Attaches (or detaches, with nullptr) the shared in-flight counter.
  /// Must be called while no producer is pushing — the async executor does
  /// so before spawning shard threads and after joining them.
  void set_pending_counter(std::atomic<std::int64_t>* counter) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_ = counter;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::set<T> bufs_[2];
  int write_ = 0;
  std::atomic<bool> nonempty_{false};
  std::atomic<std::int64_t> drains_{0};
  std::atomic<std::int64_t>* pending_ = nullptr;
};

}  // namespace jstar::dist
