// Double-buffered shard mailbox — the delivery half of the sharded
// engine's fabric (src/dist/sharded.h).
//
// A Mailbox<T> is the *inbound* box of one shard.  Any number of producers
// push concurrently; exactly one consumer (the owning shard) drains.  The
// box keeps two append-only vector buffers and an index that says which
// one is the write side: push()/push_all() append to the write buffer
// under a short mutex section, drain() flips the index under the same
// mutex — an O(1) swap — and then takes the full buffer out *after*
// releasing the lock.  Producers therefore never wait behind a consumer
// iterating thousands of tuples, and an append is a vector push_back, not
// a red-black tree insert: the write path is O(1) per tuple and O(1)
// locks/wakes per *batch*, which is what lets the async executor's
// sender-side batching (Sender<T> in sharded.h) turn per-tuple fabric
// cost into per-flush cost.
//
// Dedup is deferred to the drain: the consumer sorts + uniques the taken
// buffer outside any lock, so delivery still sees each tuple at most once
// per epoch (set semantics at the receiving engine makes any cross-epoch
// redelivery a no-op, so those are harmless, only counted).
//
// Epoch counters: polls() counts every drain() call — including empty
// polls — while drains() counts only the drains that actually carried
// mail.  ShardStats::drains (sharded.h) is defined in terms of the
// latter, so idle polling never inflates epoch counts.
//
// Termination support (bulk credits): an optional pending counter can be
// attached.  While attached, every appended tuple — duplicates included —
// adds one credit under the mailbox mutex, so the increment is visible
// before any drain() can hand the tuple to the consumer.  Because credits
// are granted per *raw* push while delivery dedups, drain() returns the
// raw count alongside the deduped mail (Drained::credits): the consumer
// repays exactly what was granted and the Dijkstra–Scholten counter can
// never observe a transient zero while work is in flight, nor leak a
// credit to a deduped tuple.
//
// Backpressure (credit-aware, soft): set_capacity(N) bounds the undrained
// write-buffer depth — the box's share of outstanding credits.  A
// throttled push_all() waits (bounded) for the consumer to drain below
// the bound before appending.  The wait is *timed*, never unbounded: a
// shard worker is both a producer and a consumer, so a cycle of shards
// all blocked pushing into each other's full boxes would deadlock if the
// bound were hard.  After the timeout the append proceeds — capacity is a
// throttle target that bounds queue growth *rate*, not a strict depth
// invariant, which keeps the fabric deadlock-free by construction.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace jstar::dist {

template <typename T>
class Mailbox {
 public:
  /// One drained epoch: the deduped mail plus the raw number of pushes it
  /// collapsed from.  `credits` — not mail.size() — is what a consumer
  /// must repay to the pending counter (each raw push granted one).
  ///
  /// `signed_mail` is the counted-table lane: (tuple, sign) deltas whose
  /// exact multiplicities are the payload, so this lane is NEVER sorted,
  /// deduped, or cancelled — an insert and its own retraction travel as
  /// two entries even though they will annihilate at the receiver.  Each
  /// still granted one credit at push time, and `credits` covers both
  /// lanes: a delta that cancels against its twin repays its credit like
  /// any other, which is what keeps the Dijkstra–Scholten counter from
  /// leaking (or double-freeing) under duplicate cancellation.
  struct Drained {
    std::vector<T> mail;        ///< sorted, deduped within the epoch
    /// Signed deltas in arrival order; +1 insert, negative retract, or
    /// the receiver table's upsert sentinel.  Never deduped.
    std::vector<std::pair<T, std::int32_t>> signed_mail;
    std::int64_t credits = 0;   ///< raw pushes drained (incl. duplicates)
  };

  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Appends `t` to the current write buffer (no dedup — that is the
  /// drain's job) and grants one credit.  Wakes the consumer only on the
  /// empty→nonempty transition; while mail is already pending the
  /// consumer cannot be blocked in wait(), so further notifies would be
  /// wasted syscalls (wakeup coalescing).  Thread-safe.
  void push(const T& t) {
    bool wake;
    {
      std::lock_guard<std::mutex> lk(mu_);
      wake = bufs_[write_].empty() && signed_bufs_[write_].empty();
      bufs_[write_].push_back(t);
      if (pending_ != nullptr) {
        pending_->fetch_add(1, std::memory_order_acq_rel);
      }
      nonempty_.store(true, std::memory_order_release);
    }
    if (wake) {
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_one();
    }
  }

  /// Bulk append: one lock, one bulk credit grant, at most one wakeup for
  /// the whole batch — the fast path the async sender's flush rides.
  /// Returns the number of tuples appended (== the credits granted).
  /// When `throttle` and a capacity is set, waits (bounded) for the
  /// consumer to drain below the bound first; see the header comment for
  /// why the wait must be timed.
  template <typename It>
  std::int64_t push_all(It first, It last, bool throttle = true) {
    const auto n = static_cast<std::int64_t>(std::distance(first, last));
    if (n == 0) return 0;
    bool wake;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (throttle && capacity_ > 0 && undrained_locked() >= capacity_) {
        throttled_.fetch_add(1, std::memory_order_relaxed);
        space_.wait_for(lk, max_throttle_wait_,
                        [&] { return undrained_locked() < capacity_; });
      }
      auto& buf = bufs_[write_];
      wake = buf.empty() && signed_bufs_[write_].empty();
      buf.insert(buf.end(), first, last);
      if (pending_ != nullptr) {
        pending_->fetch_add(n, std::memory_order_acq_rel);
      }
      nonempty_.store(true, std::memory_order_release);
    }
    if (wake) {
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_one();
    }
    return n;
  }

  /// Appends a signed delta to the write buffer's signed lane and grants
  /// one credit.  No dedup at any stage — exact multiplicities are the
  /// payload (see Drained).  Thread-safe.
  void push_signed(const T& t, std::int32_t sign) {
    bool wake;
    {
      std::lock_guard<std::mutex> lk(mu_);
      wake = bufs_[write_].empty() && signed_bufs_[write_].empty();
      signed_bufs_[write_].emplace_back(t, sign);
      if (pending_ != nullptr) {
        pending_->fetch_add(1, std::memory_order_acq_rel);
      }
      nonempty_.store(true, std::memory_order_release);
    }
    if (wake) {
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_one();
    }
  }

  /// Bulk signed append — the signed analogue of push_all().  `first`/
  /// `last` iterate std::pair<T, std::int32_t>.  Same credit and
  /// backpressure discipline as the unsigned lane.
  template <typename It>
  std::int64_t push_all_signed(It first, It last, bool throttle = true) {
    const auto n = static_cast<std::int64_t>(std::distance(first, last));
    if (n == 0) return 0;
    bool wake;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (throttle && capacity_ > 0 && undrained_locked() >= capacity_) {
        throttled_.fetch_add(1, std::memory_order_relaxed);
        space_.wait_for(lk, max_throttle_wait_,
                        [&] { return undrained_locked() < capacity_; });
      }
      auto& buf = signed_bufs_[write_];
      wake = buf.empty() && bufs_[write_].empty();
      buf.insert(buf.end(), first, last);
      if (pending_ != nullptr) {
        pending_->fetch_add(n, std::memory_order_acq_rel);
      }
      nonempty_.store(true, std::memory_order_release);
    }
    if (wake) {
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_one();
    }
    return n;
  }

  /// Swap-on-drain: flips the write side under the lock (O(1)), then
  /// takes the filled buffers after unlocking and sorts + uniques the
  /// unsigned lane there, so producers are blocked by neither the
  /// hand-off nor the dedup.  The signed lane is handed over verbatim.
  /// Single consumer only.  Counts one poll always and one drain (epoch)
  /// only when mail actually moved; wakes producers throttled on a full
  /// box.
  Drained drain() {
    int full;
    {
      std::lock_guard<std::mutex> lk(mu_);
      full = write_;
      write_ ^= 1;
      nonempty_.store(false, std::memory_order_release);
      polls_.fetch_add(1, std::memory_order_relaxed);
    }
    space_.notify_all();
    Drained out;
    out.mail = std::move(bufs_[static_cast<std::size_t>(full)]);
    bufs_[static_cast<std::size_t>(full)].clear();
    out.signed_mail = std::move(signed_bufs_[static_cast<std::size_t>(full)]);
    signed_bufs_[static_cast<std::size_t>(full)].clear();
    // Credits are granted per raw push, so repayment must be counted
    // before the unsigned dedup below collapses anything (and the signed
    // lane never collapses at all).
    out.credits = static_cast<std::int64_t>(out.mail.size()) +
                  static_cast<std::int64_t>(out.signed_mail.size());
    if (!out.mail.empty() || !out.signed_mail.empty()) {
      drains_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!out.mail.empty()) {
      std::sort(out.mail.begin(), out.mail.end());
      out.mail.erase(std::unique(out.mail.begin(), out.mail.end()),
                     out.mail.end());
    }
    return out;
  }

  /// True when the write buffer has undrained mail.  Lock-free hint for
  /// polling loops; the authoritative empty check is drain().mail.empty().
  bool has_mail() const { return nonempty_.load(std::memory_order_acquire); }

  /// Blocks until mail arrives or `stop()` returns true.  `stop` is
  /// evaluated under the mailbox mutex, so a producer that sets its flag
  /// and then calls poke() cannot race a lost wakeup.
  template <typename Stop>
  void wait(Stop&& stop) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return nonempty_.load(std::memory_order_acquire) || stop();
    });
  }

  /// Timed wait: returns true when mail is present on wakeup, false on a
  /// bare timeout or stop.  The receiver-side min-batch drain uses this
  /// to briefly top up a small epoch without risking liveness.
  template <typename Stop>
  bool wait_for(std::chrono::nanoseconds timeout, Stop&& stop) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, timeout, [&] {
      return nonempty_.load(std::memory_order_acquire) || stop();
    });
    return nonempty_.load(std::memory_order_acquire);
  }

  /// Wakes every waiter — consumer and throttled producers — so it
  /// re-evaluates its stop predicate (termination / abort broadcast).
  void poke() {
    std::lock_guard<std::mutex> lk(mu_);
    cv_.notify_all();
    space_.notify_all();
  }

  /// Total drain() calls (every consumer poll, empty or not).
  std::int64_t polls() const {
    return polls_.load(std::memory_order_relaxed);
  }

  /// Drains that carried mail — the "non-empty drain epochs" that
  /// ShardStats::drains and ShardedRunReport::epochs are defined over.
  std::int64_t drains() const {
    return drains_.load(std::memory_order_relaxed);
  }

  /// Consumer wakeups actually issued (empty→nonempty transitions); the
  /// coalescing means this is bounded by drains()+1, not by pushes.
  std::int64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }

  /// Times a producer hit the capacity bound and waited for the consumer.
  std::int64_t throttled() const {
    return throttled_.load(std::memory_order_relaxed);
  }

  /// Undrained raw tuple count across both lanes (takes the lock; for
  /// setup-time accounting — this is exactly the credits a future drain
  /// will carry).
  std::int64_t pending_size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return undrained_locked();
  }

  /// Attaches (or detaches, with nullptr) the shared in-flight counter.
  /// Must be called while no producer is pushing — the async executor does
  /// so before spawning shard threads and after joining them.
  void set_pending_counter(std::atomic<std::int64_t>* counter) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_ = counter;
  }

  /// Sets the backpressure bound: throttled push_all() calls wait up to
  /// `max_wait` while the undrained depth is >= `capacity` (0 = no bound).
  /// Must be called while no producer is pushing (the async executor
  /// configures it at construction time).
  void set_capacity(std::int64_t capacity,
                    std::chrono::nanoseconds max_wait =
                        std::chrono::milliseconds(1)) {
    std::lock_guard<std::mutex> lk(mu_);
    capacity_ = capacity;
    max_throttle_wait_ = max_wait;
  }

 private:
  /// Undrained depth across both lanes; caller holds mu_.
  std::int64_t undrained_locked() const {
    return static_cast<std::int64_t>(bufs_[write_].size()) +
           static_cast<std::int64_t>(signed_bufs_[write_].size());
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;     // consumer waits for mail
  std::condition_variable space_;  // throttled producers wait for a drain
  std::vector<T> bufs_[2];
  std::vector<std::pair<T, std::int32_t>> signed_bufs_[2];
  int write_ = 0;
  std::int64_t capacity_ = 0;  // 0 = unbounded
  std::chrono::nanoseconds max_throttle_wait_ = std::chrono::milliseconds(1);
  std::atomic<bool> nonempty_{false};
  std::atomic<std::int64_t> polls_{0};
  std::atomic<std::int64_t> drains_{0};
  std::atomic<std::int64_t> wakeups_{0};
  std::atomic<std::int64_t> throttled_{0};
  std::atomic<std::int64_t>* pending_ = nullptr;
};

}  // namespace jstar::dist
