// The sharded (distributed) engine — §2 stage 3 made concrete.
//
// The paper's central claim is that strategy lives apart from the program:
// "the same Starlog program can be compiled for a single processor, a
// multicore, or a cluster" (the cluster exploration it cites as [7]).  This
// header is the cluster substrate in single-process form: N shards, each
// owning a private Engine (its own Delta tree and Gamma stores), exchanging
// tuples through double-buffered mailboxes (src/dist/mailbox.h).  All
// parallel shard engines share ONE fork/join pool, so the machine's thread
// count no longer multiplies by the shard count.
//
// Two execution modes, selected by ShardedOptions::mode — same program,
// same fixpoint, different schedule:
//
// BSP (the deterministic reference):
//   1. deliver every shard's inbound mail as *initial* puts (Engine::put,
//      the empty timestamp) — mail crosses superstep boundaries, so it can
//      never violate a shard's local causality order,
//   2. run every shard's engine to quiescence (threads in parallel mode,
//      round-robin on the calling thread in sequential mode),
//   3. barrier: drain the outboxes into the mailboxes; if any mail moved,
//      goto 1.
//   Message counts are deduped per (sender, destination, superstep) and are
//   a pure function of the program's derived tuple sets — fully
//   deterministic, which is why BSP stays as the reference schedule the
//   randomized differential tests compare against.
//
// Async (the pipelined schedule):
//   Every shard runs on its own long-lived worker thread in a loop:
//   drain own mailbox → deliver as initial puts → run engine to
//   quiescence → flush send batches → repeat.  There is no barrier: shard
//   A fires rules against epoch-3 mail while shard B is still computing
//   epoch 1.  Mail still only enters an engine *between*
//   runs-to-quiescence, so the BSP causality argument carries over
//   unchanged — which is why the async fixpoint is tuple-for-tuple
//   identical (tests/test_dist_async.cpp pins this against the sequential
//   and BSP references across hundreds of random programs).
//
//   The mailbox fabric is batched end to end (the fix for the wide-
//   workload regression where per-tuple pushes made async *lose* to BSP):
//   * sender side — a rule's send lands in a per-sender, per-destination
//     batch buffer; a batch is flushed as one Mailbox::push_all (one lock,
//     one bulk credit grant, at most one consumer wakeup) when it reaches
//     ShardedOptions::async_batch, and every remaining batch is flushed
//     after the shard's run-to-quiescence, before its credits are
//     returned (flush-before-idle),
//   * receiver side — a shard tops its drained epoch up to
//     ShardedOptions::min_drain_batch while more mail is arriving (and,
//     once it has seen bulk traffic, waits briefly for in-flight
//     flushes), so an engine run amortises over a real batch instead of
//     epoch-churning on single tuples,
//   * backpressure — each mailbox bounds its undrained depth
//     (ShardedOptions::mailbox_capacity, a bound on that box's share of
//     outstanding credits); producers over the bound wait for the
//     consumer, with a timed escape so producer↔consumer cycles cannot
//     deadlock (see mailbox.h).
//
//   Termination is detected by credit counting (Dijkstra–Scholten style):
//   a shared `unprocessed` counter holds one credit per undrained mailbox
//   tuple plus one initial token per shard.  Every mailbox push — bulk or
//   single — increments the counter *under the mailbox lock*, i.e. before
//   the tuple is drainable; a shard decrements its drained credits only
//   *after* its engine reached quiescence for that epoch AND its send
//   batches are flushed — so every send a rule makes is counted before
//   the credit that caused it is returned.  The bulk-credit argument for
//   why zero still proves global quiescence: a shard's batch buffers are
//   non-empty only while it is mid-epoch, and every running epoch holds
//   at least one unreturned credit (its drained mail, or the initial
//   token), so the counter cannot reach zero while any batched send is
//   still uncounted.  The shard that returns the last credit broadcasts
//   shutdown.  Per-shard poll/drain epochs, busy/idle seconds and wait
//   counts are reported in ShardedRunReport::shard_stats.
//
// Trade-offs (also see the "Sharded execution" section of README.md):
//   * BSP: deterministic message accounting, superstep == wavefront depth,
//     but every round pays a full barrier — shards idle behind the slowest
//     peer, and deep (high-diameter) programs pay one barrier per level.
//   * Async: no barrier, shards pipeline across epochs and message-heavy /
//     deep programs speed up (bench_dist_sharded measures BSP vs async);
//     message counts are deduped per (sender, destination, run) — still
//     deterministic, but not comparable superstep-by-superstep with BSP.
//   * Exceptions: if several shards throw, the lowest shard id's exception
//     propagates in BSP (deterministic in both sequential and threaded
//     supersteps); async aborts all shards and rethrows the lowest shard
//     id among the exceptions that were actually raised before shutdown.
//
// Set semantics does the heavy lifting for exactness in both modes:
// mailboxes dedup per (destination, epoch), senders dedup per destination
// within their window, and a redelivered tuple that already reached a
// shard's Gamma is a set-semantics duplicate there — it inserts nothing
// and fires no rules.  Hence a sharded run computes exactly the
// single-engine fixpoint, for any shard count and either schedule.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "dist/mailbox.h"
#include "sched/fork_join_pool.h"
#include "util/timer.h"

namespace jstar::dist {

/// Hash partitioning of an integral key onto [0, shards).  The key is run
/// through the SplitMix64 finaliser first, so clustered key ranges (vertex
/// ids, months, ...) still spread evenly; the cast to uint64 makes negative
/// keys well-defined.  Pure function of (key, shards) — callers rely on its
/// stability to route a tuple to the shard that owns its key.
inline int partition_of(std::int64_t key, int shards) {
  if (shards < 1) throw std::logic_error("partition_of: shards must be >= 1");
  std::uint64_t z = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(shards));
}

/// Which schedule drives the shards.
enum class ShardedMode {
  Bsp,    ///< barrier-synchronised supersteps (deterministic reference)
  Async,  ///< pipelined shard threads + credit-counting termination
};

/// Strategy knobs of the sharded substrate itself (the per-shard Engine
/// keeps its own EngineOptions — strategy stays apart from the program at
/// every layer).
struct ShardedOptions {
  ShardedMode mode = ShardedMode::Bsp;
  /// Worker count of the single fork/join pool shared by all parallel
  /// shard engines.  0 = EngineOptions::threads.  Ignored when the shard
  /// engines are sequential.
  int pool_threads = 0;

  // --- async fabric tuning (ignored in BSP mode) ---------------------------

  /// Sender-side flush threshold: a per-(sender, destination) batch is
  /// pushed into the destination mailbox once it holds this many tuples
  /// (and always after the sender's run-to-quiescence, before credits are
  /// returned).  <= 1 flushes every send immediately (the unbatched
  /// fabric of PR 2).
  std::int64_t async_batch = 256;
  /// Receiver-side batch floor: a shard tops up a freshly drained epoch
  /// while more mail is arriving (and, in the bulk regime, waits briefly
  /// for in-flight flushes) until it holds this many tuples.  <= 1 runs
  /// on whatever a single drain returned.
  std::int64_t min_drain_batch = 128;
  /// Backpressure bound on each mailbox's undrained depth — its share of
  /// the outstanding Dijkstra–Scholten credits.  Cross-shard flushes into
  /// a box at or over the bound wait (timed, deadlock-free; see
  /// mailbox.h) for the consumer to drain.  0 = unbounded.
  std::int64_t mailbox_capacity = 1 << 15;
};

/// Per-shard execution counters of one run (both modes fill them).
struct ShardStats {
  std::int64_t polls = 0;           ///< mailbox drain calls, empty included
  std::int64_t drains = 0;          ///< non-empty mailbox drain epochs
  std::int64_t drained_tuples = 0;  ///< tuples delivered from the mailbox
  std::int64_t runs = 0;            ///< engine runs to quiescence
  std::int64_t idle_waits = 0;      ///< async: times the shard slept for mail
  double busy_seconds = 0.0;        ///< deliver + engine-run wall time
  double idle_seconds = 0.0;        ///< async: wall time blocked for mail
};

/// Summary of one ShardedEngine::run().
struct ShardedRunReport {
  /// BSP: rounds executed (>= 1).  Async: the deepest per-shard epoch
  /// count (>= 1) — the pipelined analogue of the wavefront depth.
  int supersteps = 0;
  /// Total non-empty drain epochs summed over shards.  In BSP this is the
  /// number of (shard, superstep) pairs that actually had mail.
  std::int64_t epochs = 0;
  std::int64_t messages = 0;     // cross-shard tuples, deduped per sender
  std::int64_t local_messages = 0;  // self-sends routed through the mailbox
  std::int64_t local_batches = 0;   // Delta batches summed over all shards
  std::int64_t local_tuples = 0;    // tuples taken out of Delta, all shards
  // Batch-at-a-time emission summed over the shards' inner engines
  // (RunReport emit_flushes/emit_buffered/inline_batches roll-up).
  std::int64_t emit_flushes = 0;
  std::int64_t emit_buffered = 0;
  std::int64_t inline_batches = 0;
  double seconds = 0.0;
  std::vector<ShardStats> shard_stats;  // one entry per shard
};

/// Cluster-wide roll-up of the query-planner access-path counters
/// (TableStats) summed over every table of every shard engine — how the
/// planner actually routed rule-body lookups across the cluster.  Indexes
/// are built *per shard* (each shard's setup callback declares them on its
/// private tables), so these counters also prove per-shard index
/// construction took effect.
struct ClusterQueryStats {
  std::int64_t queries = 0;
  std::int64_t index_lookups = 0;
  std::int64_t full_scans = 0;
  std::int64_t pk_probes = 0;
  std::int64_t range_scans = 0;
  std::int64_t empty_plans = 0;
  std::int64_t index_retired = 0;
  std::int64_t gamma_retired = 0;
  std::int64_t gamma_passed_through = 0;
  std::int64_t residual_rows = 0;
  std::int64_t residual_hits = 0;
  std::int64_t columnar_kernels = 0;
  std::int64_t columnar_rows = 0;
  std::int64_t columnar_selected = 0;
  std::int64_t morsel_runs = 0;
  std::int64_t morsel_splits = 0;
  // Counted-table deltas (retractions & upserts) across the cluster.
  std::int64_t retracts = 0;
  std::int64_t gamma_erased = 0;
  std::int64_t retract_debts = 0;
  std::int64_t annihilated = 0;
  std::int64_t upserts = 0;
  std::int64_t upsert_replaced = 0;
  // Batch-at-a-time rule firing across the cluster (each shard's inner
  // engine buffers its rule emissions and bulk-appends per batch).
  std::int64_t emit_flushes = 0;
  std::int64_t emit_buffered = 0;
  std::int64_t inline_batches = 0;
};

template <typename T>
class ShardedEngine;

/// A shard's outbox: `send(dest, t)` enqueues `t` for delivery to shard
/// `dest`.  Thread-safe (rules fire from fork/join tasks in parallel mode)
/// and set-semantics deduped per destination, so message counts are
/// deterministic.  The dedup window is one superstep in BSP mode and the
/// whole run in async mode (there are no supersteps to scope it to; the
/// wider window can only suppress redundant redeliveries).
///
/// In BSP mode sends are buffered until the barrier.  In async mode a
/// fresh send lands in a per-destination batch buffer; the batch reaches
/// the destination's mailbox as one bulk push when it hits the flush
/// threshold (ShardedOptions::async_batch) — and always after the owning
/// shard's run-to-quiescence, *before* that epoch's credits are returned,
/// which is what keeps the Dijkstra–Scholten counter sound under
/// batching (see the header comment).
template <typename T>
class Sender {
 public:
  void send(int dest, const T& tuple) {
    if (dest < 0 || dest >= static_cast<int>(out_.size())) {
      throw std::out_of_range("Sender::send: shard " + std::to_string(dest) +
                              " out of range [0, " +
                              std::to_string(out_.size()) + ")");
    }
    if (!async_) {
      std::lock_guard<std::mutex> lk(mu_);
      out_[static_cast<std::size_t>(dest)].insert(tuple);
      return;
    }
    std::vector<T> flush;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!out_[static_cast<std::size_t>(dest)].insert(tuple).second) {
        return;  // already sent this run
      }
      std::vector<T>& batch = batch_[static_cast<std::size_t>(dest)];
      batch.push_back(tuple);
      if (static_cast<std::int64_t>(batch.size()) < batch_limit_) return;
      flush.swap(batch);  // deliver outside the sender lock
    }
    fabric_->async_send_batch(self_, dest, flush);
  }

  /// Sends a signed delta (+1 insert, negative retract, or the receiver
  /// table's upsert sentinel) for a counted table.  Signed sends bypass
  /// EVERY dedup layer — the sender window here, and the mailbox's
  /// drain-side sort+unique — because exact multiplicities are the
  /// payload: two schedules deduping over different windows would
  /// deliver different counts and the shards would diverge.  Counted
  /// tables must route ALL their cross-shard traffic (inserts included)
  /// through this lane for the same reason.
  void send_signed(int dest, const T& tuple, std::int32_t sign) {
    if (dest < 0 || dest >= static_cast<int>(signed_out_.size())) {
      throw std::out_of_range("Sender::send_signed: shard " +
                              std::to_string(dest) + " out of range [0, " +
                              std::to_string(signed_out_.size()) + ")");
    }
    if (!async_) {
      std::lock_guard<std::mutex> lk(mu_);
      signed_out_[static_cast<std::size_t>(dest)].emplace_back(tuple, sign);
      return;
    }
    std::vector<std::pair<T, std::int32_t>> flush;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto& batch = signed_batch_[static_cast<std::size_t>(dest)];
      batch.emplace_back(tuple, sign);
      if (static_cast<std::int64_t>(batch.size()) < batch_limit_) return;
      flush.swap(batch);  // deliver outside the sender lock
    }
    fabric_->async_send_signed_batch(self_, dest, flush);
  }

 private:
  friend class ShardedEngine<T>;

  Sender(int self, int shards, bool async, std::int64_t batch_limit,
         ShardedEngine<T>* fabric)
      : self_(self),
        async_(async),
        batch_limit_(std::max<std::int64_t>(1, batch_limit)),
        fabric_(fabric),
        out_(static_cast<std::size_t>(shards)),
        batch_(async ? static_cast<std::size_t>(shards) : 0),
        signed_out_(static_cast<std::size_t>(shards)),
        signed_batch_(async ? static_cast<std::size_t>(shards) : 0) {}

  /// Flush-before-idle: drains every per-destination batch into the
  /// mailboxes.  The owning shard's worker calls this after each
  /// run-to-quiescence and before returning the epoch's credits, so no
  /// send can be buffered-but-uncounted once the shard goes idle.
  void flush_all() {
    for (std::size_t d = 0; d < batch_.size(); ++d) {
      std::vector<T> flush;
      {
        std::lock_guard<std::mutex> lk(mu_);
        flush.swap(batch_[d]);
      }
      if (!flush.empty()) {
        fabric_->async_send_batch(self_, static_cast<int>(d), flush);
      }
    }
    for (std::size_t d = 0; d < signed_batch_.size(); ++d) {
      std::vector<std::pair<T, std::int32_t>> flush;
      {
        std::lock_guard<std::mutex> lk(mu_);
        flush.swap(signed_batch_[d]);
      }
      if (!flush.empty()) {
        fabric_->async_send_signed_batch(self_, static_cast<int>(d), flush);
      }
    }
  }

  const int self_;
  const bool async_;
  const std::int64_t batch_limit_;
  ShardedEngine<T>* const fabric_;
  std::mutex mu_;
  // BSP: per-destination outbox, drained at the barrier.
  // Async: per-destination already-sent window for this run.
  std::vector<std::set<T>> out_;
  // Async only: per-destination pending batch (admitted through the dedup
  // window, not yet pushed to the mailbox).
  std::vector<std::vector<T>> batch_;
  // Signed lane (counted tables): never deduped at any layer.
  // BSP: per-destination signed outbox, drained at the barrier.
  std::vector<std::vector<std::pair<T, std::int32_t>>> signed_out_;
  // Async only: per-destination pending signed batch.
  std::vector<std::vector<std::pair<T, std::int32_t>>> signed_batch_;
};

/// N private Engines plus the mailbox fabric between them.  The setup
/// callback is invoked once per shard at construction time; it declares
/// that shard's tables and rules and returns the Deliver function the
/// fabric uses to hand inbound mail to the shard as initial puts.
template <typename T>
class ShardedEngine {
 public:
  /// Hands one inbound tuple to a shard (typically `eng.put(table, t)`).
  using Deliver = std::function<void(const T&)>;
  /// Hands one inbound *signed* delta to a shard (typically
  /// `table.seed_signed(t, sign)` on a counted table).  Only needed by
  /// programs using the signed lane (Sender::send_signed / seed_signed).
  using DeliverSigned = std::function<void(const T&, std::int32_t)>;
  using Setup = std::function<Deliver(int shard, Engine&, Sender<T>&)>;

  /// Both delivery seams of one shard, as returned by SetupHooks.
  struct ShardHooks {
    Deliver deliver;                // unsigned mail
    DeliverSigned deliver_signed;   // signed mail; may be null
  };
  using SetupHooks = std::function<ShardHooks(int shard, Engine&, Sender<T>&)>;

  ShardedEngine(int shards, const EngineOptions& opts, const Setup& setup)
      : ShardedEngine(shards, opts, ShardedOptions{}, setup) {}

  ShardedEngine(int shards, const EngineOptions& opts,
                const ShardedOptions& sopts, const Setup& setup)
      : ShardedEngine(shards, opts, sopts,
                      SetupHooks([&setup](int s, Engine& eng, Sender<T>& snd) {
                        return ShardHooks{setup(s, eng, snd), nullptr};
                      })) {}

  ShardedEngine(int shards, const EngineOptions& opts,
                const ShardedOptions& sopts, const SetupHooks& setup)
      : shards_(shards), sopts_(sopts) {
    if (shards < 1) {
      throw std::logic_error("ShardedEngine: shard count must be >= 1, got " +
                             std::to_string(shards));
    }
    if (!opts.sequential) {
      const int pool_threads =
          sopts_.pool_threads > 0 ? sopts_.pool_threads : opts.threads;
      shared_pool_ = std::make_unique<sched::ForkJoinPool>(pool_threads);
    }
    const bool async = sopts_.mode == ShardedMode::Async;
    engines_.reserve(static_cast<std::size_t>(shards));
    senders_.reserve(static_cast<std::size_t>(shards));
    deliver_.reserve(static_cast<std::size_t>(shards));
    mailboxes_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      engines_.push_back(std::make_unique<Engine>(opts, shared_pool_.get()));
      senders_.push_back(std::unique_ptr<Sender<T>>(
          new Sender<T>(s, shards, async, sopts_.async_batch, this)));
      mailboxes_.push_back(std::make_unique<Mailbox<T>>());
      if (async) mailboxes_.back()->set_capacity(sopts_.mailbox_capacity);
      ShardHooks hooks = setup(s, *engines_.back(), *senders_.back());
      deliver_.push_back(std::move(hooks.deliver));
      deliver_signed_.push_back(std::move(hooks.deliver_signed));
    }
  }

  int shards() const { return shards_; }
  const ShardedOptions& sharded_options() const { return sopts_; }
  Engine& engine(int shard) { return *engines_.at(static_cast<std::size_t>(shard)); }

  /// Sums the query-planner access-path counters over every shard's
  /// tables.  Only meaningful while the cluster is quiescent (between
  /// run()s) — shard workers bump the counters concurrently during a run.
  ClusterQueryStats query_stats() const {
    ClusterQueryStats out;
    for (const auto& eng : engines_) {
      for (const TableBase* t : eng->all_tables()) {
        const TableStats& s = t->stats();
        out.queries += s.queries.load(std::memory_order_relaxed);
        out.index_lookups += s.index_lookups.load(std::memory_order_relaxed);
        out.full_scans += s.full_scans.load(std::memory_order_relaxed);
        out.pk_probes += s.pk_probes.load(std::memory_order_relaxed);
        out.range_scans += s.range_scans.load(std::memory_order_relaxed);
        out.empty_plans += s.empty_plans.load(std::memory_order_relaxed);
        out.index_retired += s.index_retired.load(std::memory_order_relaxed);
        out.gamma_retired += s.gamma_retired.load(std::memory_order_relaxed);
        out.gamma_passed_through +=
            s.gamma_passed_through.load(std::memory_order_relaxed);
        out.residual_rows += s.residual_rows.load(std::memory_order_relaxed);
        out.residual_hits += s.residual_hits.load(std::memory_order_relaxed);
        out.columnar_kernels +=
            s.columnar_kernels.load(std::memory_order_relaxed);
        out.columnar_rows += s.columnar_rows.load(std::memory_order_relaxed);
        out.columnar_selected +=
            s.columnar_selected.load(std::memory_order_relaxed);
        out.morsel_runs += s.morsel_runs.load(std::memory_order_relaxed);
        out.morsel_splits += s.morsel_splits.load(std::memory_order_relaxed);
        out.retracts += s.retracts.load(std::memory_order_relaxed);
        out.gamma_erased += s.gamma_erased.load(std::memory_order_relaxed);
        out.retract_debts += s.retract_debts.load(std::memory_order_relaxed);
        out.annihilated += s.annihilated.load(std::memory_order_relaxed);
        out.upserts += s.upserts.load(std::memory_order_relaxed);
        out.upsert_replaced +=
            s.upsert_replaced.load(std::memory_order_relaxed);
        out.emit_flushes += s.emit_flushes.load(std::memory_order_relaxed);
        out.emit_buffered +=
            s.emit_buffered.load(std::memory_order_relaxed);
        out.inline_batches +=
            s.inline_batches.load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  /// Stages a tuple for delivery to `shard` at the start of the next
  /// run().  Seeds dedup under set semantics like all mail, and do not
  /// count as messages (they never crossed a shard boundary).
  void seed(int shard, const T& tuple) {
    if (shard < 0 || shard >= shards_) {
      throw std::out_of_range("ShardedEngine::seed: shard " +
                              std::to_string(shard) + " out of range [0, " +
                              std::to_string(shards_) + ")");
    }
    mailboxes_[static_cast<std::size_t>(shard)]->push(tuple);
  }

  /// Stages a signed delta (insert/retract/upsert of a counted table) for
  /// delivery to `shard` at the start of the next run().  Travels the
  /// signed lane: never deduped, exact multiplicities delivered.  The
  /// shard's setup must have returned a DeliverSigned hook.
  void seed_signed(int shard, const T& tuple, std::int32_t sign) {
    if (shard < 0 || shard >= shards_) {
      throw std::out_of_range("ShardedEngine::seed_signed: shard " +
                              std::to_string(shard) + " out of range [0, " +
                              std::to_string(shards_) + ")");
    }
    mailboxes_[static_cast<std::size_t>(shard)]->push_signed(tuple, sign);
  }

  /// Opens the next streaming epoch on every shard engine in lockstep:
  /// advances each Engine's epoch clock and retires Gamma tuples that fell
  /// out of any retain(N) window.  Returns the new (common) epoch.  Called
  /// by the sharded streaming loop (src/stream/streaming.h) once per
  /// ingestion slice; one-shot clusters never need it.
  std::int64_t begin_epoch() {
    std::int64_t e = 0;
    for (auto& eng : engines_) e = eng->begin_epoch();
    return e;
  }

  /// Runs the cluster to its fixpoint under the configured mode.  Always
  /// executes at least one engine run per shard, so tuples put directly
  /// during setup reach their fixpoint even with no seeds.  May be called
  /// repeatedly: later seeds + runs continue the same per-shard databases,
  /// mirroring Engine::run()'s event-driven contract.
  ShardedRunReport run() {
    return sopts_.mode == ShardedMode::Async ? run_async() : run_bsp();
  }

 private:
  friend class Sender<T>;

  // --- shared helpers ------------------------------------------------------

  /// Delivers one drained epoch to shard `s` and runs its engine to
  /// quiescence, accumulating into that shard's stats slot.  `mail` is
  /// deduped by Mailbox::drain; `signed_mail` arrives verbatim (exact
  /// multiplicities) and is handed to the shard's DeliverSigned hook.
  void run_shard_epoch(
      std::size_t s, const std::vector<T>& mail,
      const std::vector<std::pair<T, std::int32_t>>& signed_mail,
      ShardStats& st) {
    WallTimer busy;
    if (!mail.empty() || !signed_mail.empty()) {
      ++st.drains;
      st.drained_tuples += static_cast<std::int64_t>(mail.size()) +
                           static_cast<std::int64_t>(signed_mail.size());
    }
    ++st.runs;
    if (deliver_[s]) {
      for (const T& t : mail) deliver_[s](t);
    }
    if (!signed_mail.empty()) {
      if (!deliver_signed_[s]) {
        throw std::logic_error(
            "shard " + std::to_string(s) +
            " received signed mail but its setup returned no DeliverSigned "
            "hook");
      }
      for (const auto& [t, sign] : signed_mail) deliver_signed_[s](t, sign);
    }
    const RunReport r = engines_[s]->run();
    shard_batches_[s] += r.batches;
    shard_tuples_[s] += r.tuples;
    shard_emit_flushes_[s] += r.emit_flushes;
    shard_emit_buffered_[s] += r.emit_buffered;
    shard_inline_batches_[s] += r.inline_batches;
    st.busy_seconds += busy.seconds();
  }

  /// Rethrows the lowest-shard-id exception, if any.  Keeping propagation
  /// keyed on the shard id (not on which thread lost the race) makes
  /// multi-shard failures deterministic.
  static void rethrow_lowest(std::vector<std::exception_ptr>& errors) {
    for (auto& err : errors) {
      if (err) std::rethrow_exception(err);
    }
  }

  void finalize_report(ShardedRunReport& report) {
    report.supersteps = std::max(report.supersteps, 1);
    for (std::size_t s = 0; s < report.shard_stats.size(); ++s) {
      report.epochs += report.shard_stats[s].drains;
      report.local_batches += shard_batches_[s];
      report.local_tuples += shard_tuples_[s];
      report.emit_flushes += shard_emit_flushes_[s];
      report.emit_buffered += shard_emit_buffered_[s];
      report.inline_batches += shard_inline_batches_[s];
    }
  }

  // --- BSP mode ------------------------------------------------------------

  /// One BSP round: every shard drains its mailbox, delivers and runs.
  /// Parallel mode puts each shard on its own thread (their engines share
  /// only the fork/join pool); sequential mode visits shards round-robin
  /// on the calling thread.  Threads are spawned per round: shard counts
  /// are small and each thread amortises a full engine run to fixpoint, so
  /// spawn cost is noise next to the work (the async mode is the persistent
  /// upgrade path).  Exceptions are collected per shard and the lowest
  /// shard id's is rethrown — in sequential mode the remaining shards
  /// still run their round first, so both paths fail identically.
  void superstep(ShardedRunReport& report) {
    const auto n = static_cast<std::size_t>(shards_);
    std::vector<std::exception_ptr> errors(n);
    if (engines_[0]->options().sequential || shards_ == 1) {
      for (std::size_t s = 0; s < n; ++s) {
        try {
          const auto drained = mailboxes_[s]->drain();
          ++report.shard_stats[s].polls;
          run_shard_epoch(s, drained.mail, drained.signed_mail,
                          report.shard_stats[s]);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      }
    } else {
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (std::size_t s = 0; s < n; ++s) {
        threads.emplace_back([this, s, &report, &errors] {
          try {
            const auto drained = mailboxes_[s]->drain();
            ++report.shard_stats[s].polls;
            run_shard_epoch(s, drained.mail, drained.signed_mail,
                            report.shard_stats[s]);
          } catch (...) {
            errors[s] = std::current_exception();
          }
        });
      }
      for (auto& th : threads) th.join();
    }
    rethrow_lowest(errors);
  }

  /// The barrier: drains every sender's outboxes into the destination
  /// mailboxes.  Counting happens per (sender, destination) before the
  /// cross-sender merge, so `messages` is a pure function of the derived
  /// tuple sets — deterministic across runs and strategies.  Returns the
  /// number of tuples moved (pre-merge), zero meaning quiescence.
  std::int64_t exchange(ShardedRunReport& report) {
    std::int64_t moved = 0;
    for (std::size_t s = 0; s < senders_.size(); ++s) {
      Sender<T>& sender = *senders_[s];
      std::lock_guard<std::mutex> lk(sender.mu_);
      for (std::size_t d = 0; d < sender.out_.size(); ++d) {
        std::set<T>& out = sender.out_[d];
        if (!out.empty()) {
          const auto count = static_cast<std::int64_t>(out.size());
          if (d == s) {
            report.local_messages += count;
          } else {
            report.messages += count;
          }
          moved += count;
          mailboxes_[d]->push_all(out.begin(), out.end());
          out.clear();
        }
        auto& sout = sender.signed_out_[d];
        if (!sout.empty()) {
          // The signed lane moves verbatim — counting it raw keeps the
          // message totals a pure function of the signed traffic.
          const auto count = static_cast<std::int64_t>(sout.size());
          if (d == s) {
            report.local_messages += count;
          } else {
            report.messages += count;
          }
          moved += count;
          mailboxes_[d]->push_all_signed(sout.begin(), sout.end());
          sout.clear();
        }
      }
    }
    return moved;
  }

  ShardedRunReport run_bsp() {
    WallTimer timer;
    ShardedRunReport report;
    report.shard_stats.resize(static_cast<std::size_t>(shards_));
    reset_run_state();
    bool first = true;
    std::int64_t moved = 0;
    while (first || moved > 0) {
      first = false;
      ++report.supersteps;
      superstep(report);
      moved = exchange(report);
    }
    finalize_report(report);
    report.seconds = timer.seconds();
    return report;
  }

  // --- async mode ----------------------------------------------------------

  /// Called by Sender in async mode with a batch the per-sender dedup
  /// window admitted.  One bulk push grants the in-flight credits under
  /// the destination's mailbox lock and wakes its consumer at most once;
  /// the message counters move by the whole batch.  Self-delivery skips
  /// the backpressure throttle — the pushing thread is (or feeds) the
  /// very consumer that must drain this box, so waiting on itself could
  /// only burn the timeout.
  void async_send_batch(int src, int dest, const std::vector<T>& batch) {
    mailboxes_[static_cast<std::size_t>(dest)]->push_all(
        batch.begin(), batch.end(), /*throttle=*/src != dest);
    const auto n = static_cast<std::int64_t>(batch.size());
    if (src == dest) {
      async_local_messages_.fetch_add(n, std::memory_order_relaxed);
    } else {
      async_messages_.fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// Signed-lane twin of async_send_batch: same credit/backpressure
  /// discipline, no dedup anywhere.
  void async_send_signed_batch(
      int src, int dest,
      const std::vector<std::pair<T, std::int32_t>>& batch) {
    mailboxes_[static_cast<std::size_t>(dest)]->push_all_signed(
        batch.begin(), batch.end(), /*throttle=*/src != dest);
    const auto n = static_cast<std::int64_t>(batch.size());
    if (src == dest) {
      async_local_messages_.fetch_add(n, std::memory_order_relaxed);
    } else {
      async_messages_.fetch_add(n, std::memory_order_relaxed);
    }
  }

  bool stopping() const {
    return done_.load(std::memory_order_acquire) ||
           abort_.load(std::memory_order_acquire);
  }

  /// Merges a second drained epoch into the first (both unsigned sides
  /// arrive sorted + deduped from Mailbox::drain); credits add raw.  The
  /// signed lanes concatenate in drain order — never sorted or deduped,
  /// multiplicities are the payload.
  static void merge_drained(typename Mailbox<T>::Drained& into,
                            typename Mailbox<T>::Drained&& more) {
    into.credits += more.credits;
    into.signed_mail.insert(into.signed_mail.end(), more.signed_mail.begin(),
                            more.signed_mail.end());
    if (more.mail.empty()) return;
    const auto mid =
        static_cast<typename std::vector<T>::difference_type>(
            into.mail.size());
    into.mail.insert(into.mail.end(), more.mail.begin(), more.mail.end());
    std::inplace_merge(into.mail.begin(), into.mail.begin() + mid,
                       into.mail.end());
    into.mail.erase(std::unique(into.mail.begin(), into.mail.end()),
                    into.mail.end());
  }

  /// The long-lived shard worker: drain (+ min-batch top-up) → deliver →
  /// run-to-quiescence → flush send batches → return credits, sleeping
  /// only when the mailbox is empty and the initial token is spent.  The
  /// worker that returns the last credit detects global quiescence and
  /// broadcasts shutdown.
  void async_shard_loop(std::size_t s, ShardStats& st) {
    Mailbox<T>& box = *mailboxes_[s];
    Sender<T>& sender = *senders_[s];
    const auto stop = [this] { return stopping(); };
    const std::int64_t min_batch =
        std::max<std::int64_t>(1, sopts_.min_drain_batch);
    // How long to wait for an in-flight flush when topping up a small
    // epoch in the bulk regime.  Short on purpose: it only trims epoch
    // churn, it must never become a pipeline stall.
    constexpr auto kTopUpWait = std::chrono::microseconds(200);
    bool token = true;   // covers the first run (setup-time puts)
    bool bulk = false;   // hysteresis: the previous epoch met min_batch
    while (!stopping()) {
      typename Mailbox<T>::Drained d = box.drain();
      ++st.polls;
      const auto drained_size = [&d] {
        return static_cast<std::int64_t>(d.mail.size()) +
               static_cast<std::int64_t>(d.signed_mail.size());
      };
      if (drained_size() == 0 && !token) {
        ++st.idle_waits;
        WallTimer idle;
        box.wait(stop);
        st.idle_seconds += idle.seconds();
        continue;
      }
      // Receiver-side min-batch: top up from mail that arrived during
      // the drain itself (free), and — only once bulk traffic has been
      // seen — wait briefly for an in-flight flush.  A latency-bound
      // pipeline (deep workloads: one or two tuples per epoch) never
      // sets `bulk`, so it never pays the wait.
      if (drained_size() > 0) {
        bool waited = false;
        while (drained_size() < min_batch && !stopping()) {
          if (!box.has_mail()) {
            if (!bulk || waited) break;
            waited = true;
            WallTimer idle;
            const bool got = box.wait_for(kTopUpWait, stop);
            st.idle_seconds += idle.seconds();
            if (!got) break;
          }
          typename Mailbox<T>::Drained more = box.drain();
          ++st.polls;
          merge_drained(d, std::move(more));
        }
        bulk = drained_size() >= min_batch;
      }
      const std::int64_t credit = d.credits + (token ? 1 : 0);
      token = false;
      try {
        run_shard_epoch(s, d.mail, d.signed_mail, st);
      } catch (...) {
        errors_[s] = std::current_exception();
        abort_.store(true, std::memory_order_release);
        for (auto& mb : mailboxes_) mb->poke();
        return;
      }
      // Flush-before-idle, then return the credits: every send this
      // epoch's rules made is now in a mailbox and counted, so hitting
      // zero proves global quiescence (empty mailboxes, empty batch
      // buffers, every shard idle).
      sender.flush_all();
      if (unprocessed_.fetch_sub(credit, std::memory_order_acq_rel) ==
          credit) {
        done_.store(true, std::memory_order_release);
        for (auto& mb : mailboxes_) mb->poke();
      }
    }
  }

  ShardedRunReport run_async() {
    WallTimer timer;
    ShardedRunReport report;
    const auto n = static_cast<std::size_t>(shards_);
    report.shard_stats.resize(n);
    reset_run_state();
    done_.store(false, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    errors_.assign(n, nullptr);
    async_messages_.store(0, std::memory_order_relaxed);
    async_local_messages_.store(0, std::memory_order_relaxed);
    for (auto& sender : senders_) {
      std::lock_guard<std::mutex> lk(sender->mu_);
      for (auto& window : sender->out_) window.clear();
      // Batches left by an aborted run would double-deliver (and carry
      // stale credits) if they leaked into this run.
      for (auto& batch : sender->batch_) batch.clear();
      for (auto& sout : sender->signed_out_) sout.clear();
      for (auto& batch : sender->signed_batch_) batch.clear();
    }
    // Initial credits: one token per shard plus the mail (seeds or
    // leftovers from a previous event-driven run) already staged.  The
    // counter must be primed before it is attached, and attached before
    // any worker can push.
    std::int64_t credits = shards_;
    for (auto& mb : mailboxes_) credits += mb->pending_size();
    unprocessed_.store(credits, std::memory_order_release);
    for (auto& mb : mailboxes_) mb->set_pending_counter(&unprocessed_);

    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      workers.emplace_back(
          [this, s, &report] { async_shard_loop(s, report.shard_stats[s]); });
    }
    for (auto& th : workers) th.join();
    for (auto& mb : mailboxes_) mb->set_pending_counter(nullptr);
    rethrow_lowest(errors_);

    report.messages = async_messages_.load(std::memory_order_relaxed);
    report.local_messages =
        async_local_messages_.load(std::memory_order_relaxed);
    for (const ShardStats& st : report.shard_stats) {
      report.supersteps =
          std::max(report.supersteps, static_cast<int>(st.drains));
    }
    finalize_report(report);
    report.seconds = timer.seconds();
    return report;
  }

  /// Zeroes the per-run accumulation slots shared by both modes.
  void reset_run_state() {
    shard_batches_.assign(static_cast<std::size_t>(shards_), 0);
    shard_tuples_.assign(static_cast<std::size_t>(shards_), 0);
    shard_emit_flushes_.assign(static_cast<std::size_t>(shards_), 0);
    shard_emit_buffered_.assign(static_cast<std::size_t>(shards_), 0);
    shard_inline_batches_.assign(static_cast<std::size_t>(shards_), 0);
  }

  const int shards_;
  const ShardedOptions sopts_;
  std::unique_ptr<sched::ForkJoinPool> shared_pool_;  // null when sequential
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Sender<T>>> senders_;
  std::vector<std::unique_ptr<Mailbox<T>>> mailboxes_;
  std::vector<Deliver> deliver_;
  std::vector<DeliverSigned> deliver_signed_;

  // Per-run accumulation (indexed by shard; each slot written by at most
  // one thread during a run, folded into the report afterwards).
  std::vector<std::int64_t> shard_batches_;
  std::vector<std::int64_t> shard_tuples_;
  std::vector<std::int64_t> shard_emit_flushes_;
  std::vector<std::int64_t> shard_emit_buffered_;
  std::vector<std::int64_t> shard_inline_batches_;

  // Async-run state.
  std::atomic<std::int64_t> unprocessed_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> abort_{false};
  std::atomic<std::int64_t> async_messages_{0};
  std::atomic<std::int64_t> async_local_messages_{0};
  std::vector<std::exception_ptr> errors_;
};

}  // namespace jstar::dist
