// The sharded (distributed) engine — §2 stage 3 made concrete.
//
// The paper's central claim is that strategy lives apart from the program:
// "the same Starlog program can be compiled for a single processor, a
// multicore, or a cluster" (the cluster exploration it cites as [7]).  This
// header is the cluster substrate in single-process form: N shards, each
// owning a private Engine (its own Delta tree, Gamma stores and thread
// pool), exchanging tuples through mailboxes in bulk-synchronous-parallel
// supersteps.
//
// Execution model (BSP):
//   1. deliver every shard's inbound mail as *initial* puts (Engine::put,
//      the empty timestamp) — mail crosses superstep boundaries, so it can
//      never violate a shard's local causality order,
//   2. run every shard's engine to quiescence (threads in parallel mode,
//      round-robin on the calling thread in sequential mode),
//   3. barrier: collect the outboxes; if any mail was sent, goto 1.
//
// Set semantics does the heavy lifting for exactness: mailboxes dedup per
// (sender, destination, superstep), and a redelivered tuple that already
// reached a shard's Gamma is a set-semantics duplicate there — it inserts
// nothing and fires no rules.  Hence a sharded run computes exactly the
// single-engine fixpoint, for any shard count (tests/test_dist.cpp sweeps
// 1/2/3/8 shards against the sequential reference).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "util/timer.h"

namespace jstar::dist {

/// Hash partitioning of an integral key onto [0, shards).  The key is run
/// through the SplitMix64 finaliser first, so clustered key ranges (vertex
/// ids, months, ...) still spread evenly; the cast to uint64 makes negative
/// keys well-defined.  Pure function of (key, shards) — callers rely on its
/// stability to route a tuple to the shard that owns its key.
inline int partition_of(std::int64_t key, int shards) {
  if (shards < 1) throw std::logic_error("partition_of: shards must be >= 1");
  std::uint64_t z = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(shards));
}

/// Summary of one ShardedEngine::run().
struct ShardedRunReport {
  int supersteps = 0;            // BSP rounds executed (>= 1)
  std::int64_t messages = 0;     // cross-shard tuples, deduped per sender
  std::int64_t local_messages = 0;  // self-sends routed through the mailbox
  std::int64_t local_batches = 0;   // Delta batches summed over all shards
  std::int64_t local_tuples = 0;    // tuples taken out of Delta, all shards
  double seconds = 0.0;
};

template <typename T>
class ShardedEngine;

/// A shard's outbox: `send(dest, t)` enqueues `t` for delivery to shard
/// `dest` at the start of the *next* superstep.  Thread-safe (rules fire
/// from fork/join tasks in parallel mode) and set-semantics deduped per
/// destination within a superstep, so message counts are deterministic.
template <typename T>
class Sender {
 public:
  void send(int dest, const T& tuple) {
    if (dest < 0 || dest >= static_cast<int>(out_.size())) {
      throw std::out_of_range("Sender::send: shard " + std::to_string(dest) +
                              " out of range [0, " +
                              std::to_string(out_.size()) + ")");
    }
    std::lock_guard<std::mutex> lk(mu_);
    out_[static_cast<std::size_t>(dest)].insert(tuple);
  }

 private:
  friend class ShardedEngine<T>;

  explicit Sender(int shards)
      : out_(static_cast<std::size_t>(shards)) {}

  std::mutex mu_;
  std::vector<std::set<T>> out_;  // per-destination, deduped
};

/// N private Engines plus the mailbox fabric between them.  The setup
/// callback is invoked once per shard at construction time; it declares
/// that shard's tables and rules and returns the Deliver function the
/// fabric uses to hand inbound mail to the shard as initial puts.
template <typename T>
class ShardedEngine {
 public:
  /// Hands one inbound tuple to a shard (typically `eng.put(table, t)`).
  using Deliver = std::function<void(const T&)>;
  using Setup = std::function<Deliver(int shard, Engine&, Sender<T>&)>;

  ShardedEngine(int shards, const EngineOptions& opts, const Setup& setup)
      : shards_(shards) {
    if (shards < 1) {
      throw std::logic_error("ShardedEngine: shard count must be >= 1, got " +
                             std::to_string(shards));
    }
    engines_.reserve(static_cast<std::size_t>(shards));
    senders_.reserve(static_cast<std::size_t>(shards));
    deliver_.reserve(static_cast<std::size_t>(shards));
    seeds_.resize(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      engines_.push_back(std::make_unique<Engine>(opts));
      senders_.push_back(std::unique_ptr<Sender<T>>(new Sender<T>(shards)));
      deliver_.push_back(setup(s, *engines_.back(), *senders_.back()));
    }
  }

  int shards() const { return shards_; }
  Engine& engine(int shard) { return *engines_.at(static_cast<std::size_t>(shard)); }

  /// Stages a tuple for delivery to `shard` in the first superstep of the
  /// next run().  Seeds dedup under set semantics like all mail, and do not
  /// count as messages (they never crossed a shard boundary).
  void seed(int shard, const T& tuple) {
    if (shard < 0 || shard >= shards_) {
      throw std::out_of_range("ShardedEngine::seed: shard " +
                              std::to_string(shard) + " out of range [0, " +
                              std::to_string(shards_) + ")");
    }
    seeds_[static_cast<std::size_t>(shard)].insert(tuple);
  }

  /// Runs BSP supersteps until no shard has pending mail.  Always executes
  /// at least one superstep, so tuples put directly during setup reach
  /// their fixpoint even with no seeds.  May be called repeatedly: later
  /// seeds + runs continue the same per-shard databases, mirroring
  /// Engine::run()'s event-driven contract.
  ShardedRunReport run() {
    WallTimer timer;
    ShardedRunReport report;
    std::vector<std::set<T>> inbox(static_cast<std::size_t>(shards_));
    inbox.swap(seeds_);
    bool first = true;
    while (first || !all_empty(inbox)) {
      first = false;
      ++report.supersteps;
      superstep(inbox, report);
      inbox = exchange(report);
    }
    report.seconds = timer.seconds();
    return report;
  }

 private:
  static bool all_empty(const std::vector<std::set<T>>& boxes) {
    for (const auto& b : boxes) {
      if (!b.empty()) return false;
    }
    return true;
  }

  /// Delivers shard `s`'s inbox and runs its engine to quiescence.
  void run_shard(std::size_t s, std::set<T>& in, ShardedRunReport* slot) {
    if (deliver_[s]) {
      for (const T& t : in) deliver_[s](t);
    }
    const RunReport r = engines_[s]->run();
    slot->local_batches += r.batches;
    slot->local_tuples += r.tuples;
  }

  /// One BSP round: every shard delivers + runs.  Parallel mode puts each
  /// shard on its own thread (their engines share nothing); sequential mode
  /// visits shards round-robin on the calling thread.  Threads are spawned
  /// per round: shard counts are small and each thread amortises a full
  /// engine run to fixpoint, so spawn cost is noise next to the work — a
  /// persistent shard pool is the upgrade path if profiles ever disagree.
  /// Per-shard report slots avoid write contention; exceptions from shard
  /// threads (e.g. a CausalityViolation inside a rule) are rethrown on the
  /// caller.
  void superstep(std::vector<std::set<T>>& inbox, ShardedRunReport& report) {
    const auto n = static_cast<std::size_t>(shards_);
    std::vector<ShardedRunReport> slots(n);
    if (engines_[0]->options().sequential || shards_ == 1) {
      for (std::size_t s = 0; s < n; ++s) run_shard(s, inbox[s], &slots[s]);
    } else {
      std::vector<std::thread> threads;
      std::vector<std::exception_ptr> errors(n);
      threads.reserve(n);
      for (std::size_t s = 0; s < n; ++s) {
        threads.emplace_back([this, s, &inbox, &slots, &errors] {
          try {
            run_shard(s, inbox[s], &slots[s]);
          } catch (...) {
            errors[s] = std::current_exception();
          }
        });
      }
      for (auto& th : threads) th.join();
      for (auto& err : errors) {
        if (err) std::rethrow_exception(err);
      }
    }
    for (const auto& slot : slots) {
      report.local_batches += slot.local_batches;
      report.local_tuples += slot.local_tuples;
    }
  }

  /// The barrier: drains every sender's outboxes into next-superstep
  /// inboxes.  Counting happens per (sender, destination) before the
  /// cross-sender merge, so `messages` is a pure function of the derived
  /// tuple sets — deterministic across runs and strategies.
  std::vector<std::set<T>> exchange(ShardedRunReport& report) {
    std::vector<std::set<T>> inbox(static_cast<std::size_t>(shards_));
    for (std::size_t s = 0; s < senders_.size(); ++s) {
      Sender<T>& sender = *senders_[s];
      std::lock_guard<std::mutex> lk(sender.mu_);
      for (std::size_t d = 0; d < sender.out_.size(); ++d) {
        std::set<T>& out = sender.out_[d];
        if (out.empty()) continue;
        const auto count = static_cast<std::int64_t>(out.size());
        if (d == s) {
          report.local_messages += count;
        } else {
          report.messages += count;
        }
        inbox[d].merge(out);
        out.clear();
      }
    }
    return inbox;
  }

  int shards_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Sender<T>>> senders_;
  std::vector<Deliver> deliver_;
  std::vector<std::set<T>> seeds_;
};

}  // namespace jstar::dist
