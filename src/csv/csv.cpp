#include "csv/csv.h"

#include <cstdio>
#include <memory>

namespace jstar::csv {

Buffer Buffer::from_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  JSTAR_CHECK_MSG(f != nullptr, "cannot open file: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  JSTAR_CHECK_MSG(size >= 0, "cannot stat file: " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f.get());
  JSTAR_CHECK_MSG(got == bytes.size(), "short read on file: " + path);
  return Buffer(std::move(bytes));
}

std::vector<Region> split_regions(std::size_t size, int n) {
  JSTAR_CHECK_MSG(n >= 1, "need at least one region");
  std::vector<Region> out;
  out.reserve(static_cast<std::size_t>(n));
  const std::size_t chunk = size / static_cast<std::size_t>(n);
  std::size_t at = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t end = (i == n - 1) ? size : at + chunk;
    out.push_back({at, end});
    at = end;
  }
  return out;
}

}  // namespace jstar::csv
