// Fast CSV reading, modelled on the JStar CSV library (§6.1): "keeps lines
// as byte arrays and avoids conversion to strings as much as possible".
//
// Three pieces:
//   * Buffer       — owns the raw bytes (from a file or generated in
//                    memory, so benches are hermetic);
//   * RecordReader — iterates records of a byte *region*, yielding fields
//                    as zero-copy slices and parsing integers in place;
//   * split_regions— divides a buffer into N roughly equal regions at
//                    record boundaries.  "Each reader continues reading a
//                    little way past the end of its region, to ensure that
//                    all records have been read.  This strategy is also
//                    employed by some of the input file readers in
//                    Hadoop." (§6.2)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace jstar::csv {

/// A non-owning view of field bytes.
struct Slice {
  const char* data = nullptr;
  std::size_t len = 0;

  std::string to_string() const { return std::string(data, len); }

  /// Parses a decimal integer (optional leading '-'); no allocation.
  /// Accumulates in negative space: |INT64_MIN| > INT64_MAX, so the
  /// positive accumulator would overflow on INT64_MIN's digits.
  std::int64_t to_int64() const {
    std::int64_t v = 0;
    std::size_t i = 0;
    bool neg = false;
    if (i < len && (data[i] == '-' || data[i] == '+')) {
      neg = data[i] == '-';
      ++i;
    }
    for (; i < len; ++i) {
      const char c = data[i];
      if (c < '0' || c > '9') break;
      v = v * 10 - (c - '0');
    }
    return neg ? v : -v;
  }

  bool operator==(const char* s) const {
    return std::string_view(data, len) == std::string_view(s);
  }
};

/// Owns CSV bytes.  Move-only.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::string bytes) : bytes_(std::move(bytes)) {}

  /// Reads a whole file into memory; throws CheckError when unreadable.
  static Buffer from_file(const std::string& path);

  const char* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  /// Appends raw bytes (used by workload generators).
  void append(const std::string& s) { bytes_ += s; }

 private:
  std::string bytes_;
};

/// A byte region [begin, end) of a buffer whose records should be read by
/// one reader; `hard_end` is the end of the whole buffer.
struct Region {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Splits [0, size) into n roughly equal byte regions.  Region boundaries
/// are arbitrary byte offsets: RecordReader applies the skip/overrun rule
/// so that every record is read by exactly one reader.
std::vector<Region> split_regions(std::size_t size, int n);

/// Iterates the records of one region.
///
/// Semantics (the Hadoop rule): a record *belongs* to the region containing
/// its first byte.  A reader starting mid-record skips forward to the next
/// record boundary; a reader whose last record crosses the region end reads
/// past the end to finish it.
class RecordReader {
 public:
  RecordReader(const Buffer& buf, Region region)
      : data_(buf.data()), hard_end_(buf.size()), pos_(region.begin),
        end_(region.end) {
    if (pos_ > 0) {
      // Skip the partial record that belongs to the previous region.
      while (pos_ < hard_end_ && data_[pos_ - 1] != '\n') ++pos_;
    }
  }

  /// Reads the next record into `fields` (comma-separated, record ends at
  /// '\n' or EOF).  Returns false when the region is exhausted.  Empty
  /// lines are skipped.
  bool next(std::vector<Slice>& fields) {
    for (;;) {
      if (pos_ >= end_ || pos_ >= hard_end_) return false;
      const std::size_t record_start = pos_;
      fields.clear();
      std::size_t field_start = pos_;
      while (pos_ < hard_end_ && data_[pos_] != '\n') {
        if (data_[pos_] == ',') {
          fields.push_back({data_ + field_start, pos_ - field_start});
          field_start = pos_ + 1;
        }
        ++pos_;
      }
      fields.push_back({data_ + field_start, pos_ - field_start});
      if (pos_ < hard_end_) ++pos_;  // consume '\n'
      if (fields.size() == 1 && fields[0].len == 0) continue;  // blank line
      (void)record_start;
      return true;
    }
  }

 private:
  const char* data_;
  std::size_t hard_end_;
  std::size_t pos_;
  std::size_t end_;
};

/// Writes records into a Buffer with the same byte discipline the reader
/// expects: comma-separated fields, '\n' record terminator, integers
/// formatted without allocation.  Field text must not contain ',' or
/// '\n' (the dialect has no quoting — checked in debug builds).  Used by
/// the workload generators so benches are hermetic.
class Writer {
 public:
  /// Reserve for roughly `expected_bytes` of output.
  explicit Writer(std::size_t expected_bytes = 0) {
    bytes_.reserve(expected_bytes);
  }

  Writer& field(std::int64_t v) {
    separate();
    char buf[24];
    const int n = format_int(v, buf);
    bytes_.append(buf, static_cast<std::size_t>(n));
    return *this;
  }

  Writer& field(const char* s) { return field(Slice{s, length(s)}); }
  Writer& field(const std::string& s) {
    return field(Slice{s.data(), s.size()});
  }
  Writer& field(Slice s) {
    separate();
#ifndef NDEBUG
    for (std::size_t i = 0; i < s.len; ++i) {
      JSTAR_DCHECK(s.data[i] != ',' && s.data[i] != '\n');
    }
#endif
    bytes_.append(s.data, s.len);
    return *this;
  }

  /// Ends the current record.
  Writer& end_record() {
    bytes_ += '\n';
    at_record_start_ = true;
    return *this;
  }

  std::size_t size() const { return bytes_.size(); }

  /// Takes the accumulated bytes as a read-ready Buffer.
  Buffer take() {
    at_record_start_ = true;
    return Buffer(std::move(bytes_));
  }

 private:
  void separate() {
    if (!at_record_start_) bytes_ += ',';
    at_record_start_ = false;
  }

  static std::size_t length(const char* s) {
    std::size_t n = 0;
    while (s[n] != '\0') ++n;
    return n;
  }

  static int format_int(std::int64_t v, char* out) {
    char tmp[24];
    int n = 0;
    const bool neg = v < 0;
    // Negate digit-by-digit to survive INT64_MIN.
    do {
      const auto digit = static_cast<char>(neg ? -(v % 10) : (v % 10));
      tmp[n++] = static_cast<char>('0' + digit);
      v /= 10;
    } while (v != 0);
    int k = 0;
    if (neg) out[k++] = '-';
    while (n > 0) out[k++] = tmp[--n];
    return k;
  }

  std::string bytes_;
  bool at_record_start_ = true;
};

}  // namespace jstar::csv
