// Linear expressions and constraints over integer-valued variables —
// the term language of the causality proof obligations (§4).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "smt/rational.h"

namespace jstar::smt {

using VarId = int;

/// Maps variable ids to human-readable names for diagnostics.
class VarPool {
 public:
  VarId fresh(const std::string& name) {
    names_.push_back(name);
    return static_cast<VarId>(names_.size()) - 1;
  }
  const std::string& name(VarId v) const {
    return names_[static_cast<std::size_t>(v)];
  }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

/// c0 + sum(ci * xi).  Sparse over variable ids.
class LinExpr {
 public:
  LinExpr() = default;
  LinExpr(Rat constant) : constant_(constant) {}  // NOLINT implicit
  LinExpr(std::int64_t constant) : constant_(constant) {}  // NOLINT implicit

  static LinExpr var(VarId v, Rat coeff = Rat(1)) {
    LinExpr e;
    if (!coeff.is_zero()) e.coeffs_[v] = coeff;
    return e;
  }

  const Rat& constant() const { return constant_; }
  const std::map<VarId, Rat>& coeffs() const { return coeffs_; }

  Rat coeff(VarId v) const {
    auto it = coeffs_.find(v);
    return it == coeffs_.end() ? Rat(0) : it->second;
  }

  bool is_constant() const { return coeffs_.empty(); }

  friend LinExpr operator+(const LinExpr& a, const LinExpr& b) {
    LinExpr r = a;
    r.constant_ += b.constant_;
    for (const auto& [v, c] : b.coeffs_) r.add_coeff(v, c);
    return r;
  }
  friend LinExpr operator-(const LinExpr& a, const LinExpr& b) {
    LinExpr r = a;
    r.constant_ -= b.constant_;
    for (const auto& [v, c] : b.coeffs_) r.add_coeff(v, -c);
    return r;
  }
  friend LinExpr operator*(const Rat& k, const LinExpr& e) {
    LinExpr r;
    if (k.is_zero()) return r;
    r.constant_ = k * e.constant_;
    for (const auto& [v, c] : e.coeffs_) r.coeffs_[v] = k * c;
    return r;
  }
  LinExpr operator-() const { return Rat(-1) * *this; }

  /// Substitutes variable v by expression e.
  LinExpr substitute(VarId v, const LinExpr& e) const {
    auto it = coeffs_.find(v);
    if (it == coeffs_.end()) return *this;
    const Rat c = it->second;
    LinExpr r = *this;
    r.coeffs_.erase(v);
    return r + c * e;
  }

  /// Evaluates under a (total) assignment.
  Rat eval(const std::map<VarId, Rat>& assignment) const {
    Rat acc = constant_;
    for (const auto& [v, c] : coeffs_) {
      auto it = assignment.find(v);
      acc += c * (it == assignment.end() ? Rat(0) : it->second);
    }
    return acc;
  }

  std::string to_string(const VarPool& pool) const {
    std::string s;
    bool first = true;
    for (const auto& [v, c] : coeffs_) {
      if (!first) s += " + ";
      first = false;
      if (!(c == Rat(1))) s += c.to_string() + "*";
      s += pool.name(v);
    }
    if (!constant_.is_zero() || first) {
      if (!first) s += " + ";
      s += constant_.to_string();
    }
    return s;
  }

 private:
  void add_coeff(VarId v, const Rat& c) {
    auto [it, inserted] = coeffs_.emplace(v, c);
    if (!inserted) {
      it->second += c;
      if (it->second.is_zero()) coeffs_.erase(it);
    }
  }

  Rat constant_;
  std::map<VarId, Rat> coeffs_;
};

/// A normalized constraint: expr <= 0 (strict = false) or expr < 0.
struct Constraint {
  LinExpr expr;
  bool strict = false;

  std::string to_string(const VarPool& pool) const {
    return expr.to_string(pool) + (strict ? " < 0" : " <= 0");
  }
};

// Constraint builders -------------------------------------------------------

inline Constraint le(const LinExpr& a, const LinExpr& b) {
  return Constraint{a - b, /*strict=*/false};  // a <= b
}
inline Constraint lt(const LinExpr& a, const LinExpr& b) {
  return Constraint{a - b, /*strict=*/true};  // a < b
}
inline Constraint ge(const LinExpr& a, const LinExpr& b) { return le(b, a); }
inline Constraint gt(const LinExpr& a, const LinExpr& b) { return lt(b, a); }

/// a == b expands to two inequalities.
inline std::vector<Constraint> eq(const LinExpr& a, const LinExpr& b) {
  return {le(a, b), le(b, a)};
}

}  // namespace jstar::smt
