// Fourier–Motzkin satisfiability for conjunctions of linear constraints —
// the decision procedure behind the causality checker.
//
// The paper sends its stratification proof obligations to off-the-shelf
// SMT solvers (§1.5, §4).  The obligations are implications between
// conjunctions of linear integer constraints and lexicographic orderby
// comparisons; validity reduces to UNSAT checks on premise ∧ ¬conclusion.
// FM elimination decides these over the rationals:
//   * Unsat  → the implication is valid over the rationals, hence over the
//              integers too (integer models are rational models) — proved.
//   * Sat    → we extract a rational counterexample by back-substitution.
//              If it happens to be integral it is a genuine counterexample;
//              otherwise the result is reported as Unknown (the paper's
//              solvers have the same sound-but-incomplete behaviour, and
//              the runtime reacts identically: warn the programmer).
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "smt/linear.h"

namespace jstar::smt {

enum class SatResult { Sat, Unsat, Unknown };

struct SatOutcome {
  SatResult result = SatResult::Unknown;
  /// A satisfying rational assignment when result == Sat.
  std::map<VarId, Rat> model;
};

class FourierMotzkin {
 public:
  /// Caps the constraint-set size during elimination; beyond it we give up
  /// with Unknown (FM is worst-case exponential).
  explicit FourierMotzkin(std::size_t max_constraints = 50000)
      : max_constraints_(max_constraints) {}

  SatOutcome check(std::vector<Constraint> cs) const {
    // Collect the variables present.
    std::set<VarId> vars;
    for (const auto& c : cs) {
      for (const auto& [v, coeff] : c.expr.coeffs()) {
        (void)coeff;
        vars.insert(v);
      }
    }
    // Ground constraints never enter the elimination loop, so validate and
    // drop them up front (e.g. a premise of `3 <= 1` must be Unsat even
    // with no variables at all).
    {
      std::vector<Constraint> kept;
      kept.reserve(cs.size());
      for (auto& c : cs) {
        if (c.expr.is_constant()) {
          if (violated(c)) return {SatResult::Unsat, {}};
        } else {
          kept.push_back(std::move(c));
        }
      }
      cs = std::move(kept);
    }
    // Remember, per eliminated variable, its bounding constraints so a
    // model can be rebuilt by back-substitution.
    struct Eliminated {
      VarId var;
      std::vector<Constraint> bounds;  // constraints mentioning var
    };
    std::vector<Eliminated> trail;

    while (!vars.empty()) {
      // Heuristic: eliminate the variable minimising lower*upper products.
      VarId best = *vars.begin();
      std::size_t best_cost = SIZE_MAX;
      for (VarId v : vars) {
        std::size_t lower = 0, upper = 0;
        for (const auto& c : cs) {
          const Rat k = c.expr.coeff(v);
          if (k.is_positive()) ++upper;
          else if (k.is_negative()) ++lower;
        }
        const std::size_t cost = lower * upper;
        if (cost < best_cost) {
          best_cost = cost;
          best = v;
        }
      }
      vars.erase(best);

      std::vector<Constraint> rest, uppers, lowers;
      for (auto& c : cs) {
        const Rat k = c.expr.coeff(best);
        if (k.is_zero()) rest.push_back(std::move(c));
        else if (k.is_positive()) uppers.push_back(std::move(c));
        else lowers.push_back(std::move(c));
      }
      trail.push_back({best, {}});
      auto& bounds = trail.back().bounds;
      bounds.insert(bounds.end(), uppers.begin(), uppers.end());
      bounds.insert(bounds.end(), lowers.begin(), lowers.end());

      // Combine every lower with every upper: from  a·x + e1 <= 0 (a>0)
      // and  -b·x + e2 <= 0 (b>0):  b·e1 + a·e2 <= 0.
      for (const auto& up : uppers) {
        const Rat a = up.expr.coeff(best);
        for (const auto& lo : lowers) {
          const Rat b = -lo.expr.coeff(best);
          Constraint combo;
          combo.expr = b * (up.expr - a * LinExpr::var(best)) +
                       a * (lo.expr + b * LinExpr::var(best));
          combo.strict = up.strict || lo.strict;
          if (combo.expr.is_constant()) {
            if (violated(combo)) return {SatResult::Unsat, {}};
            continue;  // trivially true; drop
          }
          rest.push_back(std::move(combo));
          if (rest.size() > max_constraints_) {
            return {SatResult::Unknown, {}};
          }
        }
      }
      cs = std::move(rest);
      // Drop trivially-true ground constraints; fail on false ones.
      std::vector<Constraint> kept;
      for (auto& c : cs) {
        if (c.expr.is_constant()) {
          if (violated(c)) return {SatResult::Unsat, {}};
        } else {
          kept.push_back(std::move(c));
        }
      }
      cs = std::move(kept);
    }

    // All variables eliminated and no ground contradiction: satisfiable.
    // Rebuild a model in reverse elimination order.
    SatOutcome out;
    out.result = SatResult::Sat;
    for (auto it = trail.rbegin(); it != trail.rend(); ++it) {
      out.model[it->var] = choose_value(it->var, it->bounds, out.model);
    }
    return out;
  }

  /// Is `premise && extra` unsatisfiable?
  SatOutcome check_with(const std::vector<Constraint>& premise,
                        const std::vector<Constraint>& extra) const {
    std::vector<Constraint> all = premise;
    all.insert(all.end(), extra.begin(), extra.end());
    return check(std::move(all));
  }

  /// Normalisation for integer-valued variables (Gomory-style constant
  /// tightening).  Scale each constraint to integer coefficients, divide
  /// by their gcd, and floor the bound:
  ///     a·x <= b   becomes   (a/g)·x <= floor(b/g),
  ///     a·x <  b   becomes   (a/g)·x <= ceil(b/g) - 1.
  /// Sound and complete over integer points; it often closes regions that
  /// are rationally open (e.g. 2q <= 2t + 1 tightens to q - t <= 0).  The
  /// output has no strict constraints left.
  static std::vector<Constraint> tighten_for_integers(
      const std::vector<Constraint>& cs) {
    std::vector<Constraint> out;
    out.reserve(cs.size());
    for (const Constraint& c : cs) {
      if (c.expr.is_constant()) {
        out.push_back(c);
        continue;
      }
      // Scale to integer coefficients: multiply by the lcm of coefficient
      // denominators.
      std::int64_t lcm = 1;
      for (const auto& [v, k] : c.expr.coeffs()) {
        (void)v;
        lcm = std::lcm(lcm, k.den());
      }
      const Rat scale(lcm);
      // g = gcd of the scaled coefficients' magnitudes.
      std::int64_t g = 0;
      for (const auto& [v, k] : c.expr.coeffs()) {
        (void)v;
        const Rat sk = scale * k;
        g = std::gcd(g, sk.num() < 0 ? -sk.num() : sk.num());
      }
      if (g == 0) g = 1;
      // expr = sum a_i x_i + c0 (<=|<) 0  ⇔  sum a_i x_i (<=|<) -c0.
      // After scaling and dividing by g the bound is b = -c0 * lcm / g.
      const Rat b = -(scale * c.expr.constant()) / Rat(g);
      std::int64_t ib;  // tightened integer bound: lhs <= ib
      if (c.strict) {
        // lhs < b  ⇔  lhs <= ceil(b) - 1  (integral lhs)
        ib = b.is_integer() ? b.num() - 1 : b.floor();
      } else {
        ib = b.floor();
      }
      LinExpr lhs;
      for (const auto& [v, k] : c.expr.coeffs()) {
        lhs = lhs + LinExpr::var(v, (scale * k) / Rat(g));
      }
      out.push_back(le(lhs, LinExpr(ib)));
    }
    return out;
  }

  /// Satisfiability over the *integers*: constant tightening plus
  /// branch-and-bound refinement of the rational relaxation.  When the
  /// relaxation is Sat with a fractional witness for variable x = q, the
  /// integer solutions split exactly into the two subproblems with
  /// x <= floor(q) and x >= ceil(q); recursing on both either finds an
  /// integral model (Sat) or exhausts the space (Unsat).  Depth-limited:
  /// deep branching returns Unknown, the same sound-incomplete behaviour
  /// the paper accepts from its SMT backends.
  SatOutcome check_integer(const std::vector<Constraint>& cs_in,
                           int max_depth = 24) const {
    const std::vector<Constraint> cs = tighten_for_integers(cs_in);
    SatOutcome relaxed = check(cs);
    if (relaxed.result != SatResult::Sat) return relaxed;
    // Find a fractional variable to branch on.
    VarId frac = -1;
    Rat value(0);
    for (const auto& [v, r] : relaxed.model) {
      if (!r.is_integer()) {
        frac = v;
        value = r;
        break;
      }
    }
    if (frac < 0) return relaxed;  // already integral
    if (max_depth <= 0) return {SatResult::Unknown, {}};

    const std::int64_t fl = value.floor();
    // x <= floor(q)
    std::vector<Constraint> lo = cs;
    lo.push_back(le(LinExpr::var(frac), LinExpr(fl)));
    SatOutcome down = check_integer(lo, max_depth - 1);
    if (down.result == SatResult::Sat) return down;
    // x >= floor(q) + 1
    std::vector<Constraint> hi = cs;
    hi.push_back(ge(LinExpr::var(frac), LinExpr(fl + 1)));
    SatOutcome up = check_integer(hi, max_depth - 1);
    if (up.result == SatResult::Sat) return up;
    if (down.result == SatResult::Unsat && up.result == SatResult::Unsat) {
      return {SatResult::Unsat, {}};
    }
    return {SatResult::Unknown, {}};
  }

 private:
  static bool violated(const Constraint& c) {
    const Rat k = c.expr.constant();
    return c.strict ? !(k < Rat(0)) : k.is_positive();
  }

  /// Picks a value for `var` consistent with its bounds under the partial
  /// model (later-eliminated variables are already assigned; any variable
  /// still unassigned defaults to 0, which is consistent because it was
  /// eliminated earlier, i.e. it is unconstrained relative to this one).
  static Rat choose_value(VarId var, const std::vector<Constraint>& bounds,
                          const std::map<VarId, Rat>& model) {
    std::optional<Rat> lo, hi;        // lo <= x <= hi
    bool lo_strict = false, hi_strict = false;
    for (const auto& c : bounds) {
      const Rat k = c.expr.coeff(var);
      // c:  k*x + rest <= 0  →  x <= -rest/k (k>0)  or  x >= -rest/k (k<0)
      LinExpr rest = c.expr - k * LinExpr::var(var);
      const Rat bound = -rest.eval(model) / k;
      if (k.is_positive()) {
        if (!hi || bound < *hi || (bound == *hi && c.strict)) {
          hi = bound;
          hi_strict = c.strict;
        }
      } else {
        if (!lo || bound > *lo || (bound == *lo && c.strict)) {
          lo = bound;
          lo_strict = c.strict;
        }
      }
    }
    if (!lo && !hi) return Rat(0);
    if (lo && !hi) return lo_strict ? *lo + Rat(1) : *lo;
    if (!lo && hi) return hi_strict ? *hi - Rat(1) : *hi;
    if (!lo_strict) return *lo;
    if (!hi_strict) return *hi;
    // Open interval: midpoint (FM guarantees non-emptiness).
    return (*lo + *hi) / Rat(2);
  }

  std::size_t max_constraints_;
};

}  // namespace jstar::smt
