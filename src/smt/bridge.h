// Bridge from engine-side table declarations to SMT-side causality
// specifications (§4).
//
// The paper's compiler builds the proof obligations automatically from
// the program text: each tuple occurrence's orderby list is unfolded into
// its key expressions, literal levels become their declared ranks, and
// seq fields become symbolic integer variables.  In this embedding, rule
// *bodies* are opaque C++ lambdas, so the arithmetic a rule performs on
// field values must be restated symbolically — but everything schema-
// derived (orderby shapes, literal ranks, key layout) is mechanical, and
// this bridge mechanises it:
//
//   OrderResolver orders;            // or engine.orders() after prepare()
//   RuleSpecBuilder b(orders, "settle");
//   auto trig = b.trigger(estimate); // vars for Estimate's seq fields
//   auto done = b.put(done_table);
//   b.given(smt::ge(trig["distance"] ... ));
//   done.bind("distance", trig["distance"]);   // put key expression
//   RuleSpec spec = b.build();
//
// Every key occurrence starts with fresh variables for its seq fields;
// bind() replaces a field's variable with an explicit expression (the
// value the rule actually writes).  Unbound fields stay symbolic — the
// obligation must then hold for *any* field value, which is the sound
// default.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/orderby.h"
#include "smt/causality.h"

namespace jstar::smt {

/// One symbolic tuple occurrence: its key expressions (per comparable
/// orderby level) plus name → variable/expression handles for seq fields.
class KeyHandle {
 public:
  /// The symbolic expression for a seq field (throws if unknown).
  const LinExpr& operator[](const std::string& field) const {
    const auto it = fields_.find(field);
    JSTAR_CHECK_MSG(it != fields_.end(),
                    "no seq orderby field '" + field + "' on " + table_);
    return key_[it->second];
  }

  /// Replaces the field's symbolic variable with a concrete expression —
  /// the value the rule writes into that field of the new tuple.
  void bind(const std::string& field, const LinExpr& e) {
    const auto it = fields_.find(field);
    JSTAR_CHECK_MSG(it != fields_.end(),
                    "no seq orderby field '" + field + "' on " + table_);
    key_[it->second] = e;
  }

  const KeyExprs& key() const { return key_; }
  const std::string& table() const { return table_; }

 private:
  friend class RuleSpecBuilder;
  std::string table_;
  KeyExprs key_;
  std::map<std::string, std::size_t> fields_;  // field name → key index
};

/// Assembles a RuleSpec from table orderby specs + a frozen order
/// relation, creating fresh variables per occurrence.
class RuleSpecBuilder {
 public:
  RuleSpecBuilder(const OrderResolver& orders, std::string rule_name)
      : orders_(orders) {
    JSTAR_CHECK_MSG(orders.frozen(),
                    "freeze the order relation before building specs");
    spec_.name = std::move(rule_name);
  }

  /// Declares the trigger occurrence; its seq fields become variables
  /// named "<table>.<field>".
  KeyHandle trigger(const std::string& table,
                    const std::vector<OrderByLevel>& orderby) {
    KeyHandle h = occurrence(table, orderby, "");
    spec_.trigger_key = h.key();
    trigger_ = h;
    has_trigger_ = true;
    return h;
  }

  /// Declares a put occurrence.  Call bind() on the handle to state what
  /// the rule writes, then pass it to add_put().
  KeyHandle put(const std::string& table,
                const std::vector<OrderByLevel>& orderby,
                const std::string& suffix = "'") {
    return occurrence(table, orderby, suffix);
  }

  /// Declares a negative/aggregate query occurrence.
  KeyHandle query(const std::string& table,
                  const std::vector<OrderByLevel>& orderby,
                  const std::string& suffix = "?") {
    return occurrence(table, orderby, suffix);
  }

  /// Adds a premise (guard, invariant, or field definition).
  void given(const Constraint& c) { spec_.premise.push_back(c); }
  void given(const std::vector<Constraint>& cs) {
    spec_.premise.insert(spec_.premise.end(), cs.begin(), cs.end());
  }

  /// Registers the put obligation: trigger ≤lex put key.
  void add_put(const KeyHandle& h) {
    spec_.puts.push_back({h.table(), h.key(), {}});
  }

  /// Registers the negative/aggregate query obligation: key <lex trigger.
  void add_query(const KeyHandle& h) {
    spec_.queries.push_back({h.table(), h.key(), true, {}});
  }

  VarPool& vars() { return spec_.vars; }

  /// Finalises (the trigger must have been declared).
  RuleSpec build() {
    JSTAR_CHECK_MSG(has_trigger_, "rule spec needs a trigger");
    return std::move(spec_);
  }

 private:
  KeyHandle occurrence(const std::string& table,
                       const std::vector<OrderByLevel>& orderby,
                       const std::string& suffix) {
    KeyHandle h;
    h.table_ = table;
    for (const OrderByLevel& level : orderby) {
      switch (level.kind) {
        case OrderByLevel::Kind::Lit:
          h.key_.push_back(LinExpr(orders_.rank_of(level.name)));
          break;
        case OrderByLevel::Kind::Seq: {
          const VarId v =
              spec_.vars.fresh(table + suffix + "." + level.name);
          h.fields_.emplace(level.name, h.key_.size());
          h.key_.push_back(LinExpr::var(v));
          break;
        }
        case OrderByLevel::Kind::Par:
          break;  // par fields are outside the comparable key
      }
    }
    return h;
  }

  const OrderResolver& orders_;
  RuleSpec spec_;
  KeyHandle trigger_;
  bool has_trigger_ = false;
};

}  // namespace jstar::smt
