#include "smt/causality.h"

#include "util/check.h"

#include <algorithm>

namespace jstar::smt {

namespace {

/// Disjunctive normal form of  a >lex b : for some position k the prefixes
/// agree and a[k] > b[k], or b is a strict prefix of a.
std::vector<std::vector<Constraint>> lex_gt_disjuncts(const KeyExprs& a,
                                                      const KeyExprs& b) {
  std::vector<std::vector<Constraint>> out;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<Constraint> cs;
    for (std::size_t j = 0; j < k; ++j) {
      auto eqs = eq(a[j], b[j]);
      cs.insert(cs.end(), eqs.begin(), eqs.end());
    }
    cs.push_back(gt(a[k], b[k]));
    out.push_back(std::move(cs));
  }
  if (a.size() > b.size()) {
    // Prefix-equal and a strictly longer: a >lex b (prefix-is-less rule).
    std::vector<Constraint> cs;
    for (std::size_t j = 0; j < b.size(); ++j) {
      auto eqs = eq(a[j], b[j]);
      cs.insert(cs.end(), eqs.begin(), eqs.end());
    }
    out.push_back(std::move(cs));
  }
  return out;
}

/// The conjunction  a =lex b, or nullopt when lengths differ (keys of
/// different lengths are never lexicographically equal here).
std::vector<std::vector<Constraint>> lex_eq_disjunct(const KeyExprs& a,
                                                     const KeyExprs& b) {
  if (a.size() != b.size()) return {};
  std::vector<Constraint> cs;
  for (std::size_t j = 0; j < a.size(); ++j) {
    auto eqs = eq(a[j], b[j]);
    cs.insert(cs.end(), eqs.begin(), eqs.end());
  }
  return {cs};
}

// Only referenced from JSTAR_DCHECK, which compiles out under NDEBUG.
[[maybe_unused]] bool integral_model(const std::map<VarId, Rat>& model) {
  for (const auto& [v, r] : model) {
    (void)v;
    if (!r.is_integer()) return false;
  }
  return true;
}

std::string model_to_string(const std::map<VarId, Rat>& model,
                            const VarPool& vars) {
  std::string s;
  for (const auto& [v, r] : model) {
    if (!s.empty()) s += ", ";
    s += vars.name(v) + " = " + r.to_string();
  }
  return s.empty() ? "(empty assignment)" : s;
}

}  // namespace

ObligationResult CausalityChecker::prove_all_unsat(
    const std::vector<Constraint>& premise,
    const std::vector<std::vector<Constraint>>& disjuncts,
    const VarPool& vars, const std::string& description) const {
  ObligationResult res;
  res.description = description;
  res.status = ProofStatus::Proved;
  for (const auto& d : disjuncts) {
    SatOutcome outcome;
    try {
      // Branch-and-bound integer refinement: tuple fields are integers, so
      // a fractional rational witness alone proves nothing — it either
      // rounds into a genuine integer counterexample or the branch search
      // shows the violation region contains no lattice point.
      std::vector<Constraint> all = premise;
      all.insert(all.end(), d.begin(), d.end());
      outcome = fm_.check_integer(std::move(all));
    } catch (const RationalOverflow&) {
      res.status = ProofStatus::Unknown;
      res.detail = "arithmetic overflow during elimination";
      return res;
    }
    switch (outcome.result) {
      case SatResult::Unsat:
        continue;  // this violation scenario is impossible — good
      case SatResult::Sat:
        JSTAR_DCHECK(integral_model(outcome.model));
        res.status = ProofStatus::Refuted;
        res.detail = "counterexample: " + model_to_string(outcome.model, vars);
        return res;
      case SatResult::Unknown:
        res.status = ProofStatus::Unknown;
        res.detail = "integer refinement inconclusive (depth limit)";
        return res;
    }
  }
  return res;
}

ObligationResult CausalityChecker::prove_lex_le(
    const std::vector<Constraint>& premise, const KeyExprs& a,
    const KeyExprs& b, const VarPool& vars,
    const std::string& description) const {
  // ¬(a ≤lex b)  ≡  a >lex b
  return prove_all_unsat(premise, lex_gt_disjuncts(a, b), vars, description);
}

ObligationResult CausalityChecker::prove_lex_lt(
    const std::vector<Constraint>& premise, const KeyExprs& a,
    const KeyExprs& b, const VarPool& vars,
    const std::string& description) const {
  // ¬(a <lex b)  ≡  a >lex b  ∨  a =lex b
  auto disjuncts = lex_gt_disjuncts(a, b);
  auto eq_d = lex_eq_disjunct(a, b);
  disjuncts.insert(disjuncts.end(), eq_d.begin(), eq_d.end());
  return prove_all_unsat(premise, disjuncts, vars, description);
}

std::vector<ObligationResult> CausalityChecker::check(
    const RuleSpec& rule) const {
  std::vector<ObligationResult> results;
  int index = 1;
  for (const auto& put : rule.puts) {
    std::vector<Constraint> premise = rule.premise;
    premise.insert(premise.end(), put.given.begin(), put.given.end());
    results.push_back(prove_lex_le(
        premise, rule.trigger_key, put.key, rule.vars,
        rule.name + ": put #" + std::to_string(index++) + " into " +
            put.table + " must be in the present or future"));
  }
  index = 1;
  for (const auto& q : rule.queries) {
    if (!q.negative_or_aggregate) continue;  // positive queries: no duty
    std::vector<Constraint> premise = rule.premise;
    premise.insert(premise.end(), q.given.begin(), q.given.end());
    results.push_back(prove_lex_lt(
        premise, q.key, rule.trigger_key, rule.vars,
        rule.name + ": negative/aggregate query #" + std::to_string(index++) +
            " of " + q.table + " must be strictly in the past"));
  }
  return results;
}

}  // namespace jstar::smt
