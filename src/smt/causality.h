// Static verification of the law of causality (§4).
//
// For a rule triggered by tuple `trig` that puts tuple `new` and performs
// negative/aggregate queries `q`, the paper discharges, per put:
//
//     inv(trig) ∧ guards ∧ inv(new) ⟹ orderby(trig) ≤lex orderby(new)
//
// and per negative/aggregate query:
//
//     inv(trig) ∧ guards ⟹ orderby(q) <lex orderby(trig)
//
// A RuleSpec describes a rule symbolically: a premise (invariants, guards,
// field definitions as equalities) plus the orderby key expressions of the
// trigger, the puts and the queries.  CausalityChecker turns each
// obligation into UNSAT checks on the negated lexicographic comparison and
// reports Proved / Refuted(+counterexample) / Unknown — the Unknown case
// corresponds to the paper's "Stratification error" warnings telling the
// programmer to strengthen invariants or change orderby clauses.
#pragma once

#include <string>
#include <vector>

#include "smt/fourier_motzkin.h"

namespace jstar::smt {

/// The orderby list of one tuple occurrence, as symbolic expressions.
/// Literal levels appear as their integer ranks (constants); seq levels as
/// linear expressions over the rule's variables.
using KeyExprs = std::vector<LinExpr>;

struct PutSpec {
  std::string table;
  KeyExprs key;
  /// Extra facts known about the new tuple (its table invariant).
  std::vector<Constraint> given;
};

struct QuerySpec {
  std::string table;
  KeyExprs key;
  /// Only negative/aggregate queries carry a strictly-before obligation;
  /// positive queries at <= trigger time are always legal.
  bool negative_or_aggregate = true;
  std::vector<Constraint> given;
};

/// Symbolic description of one rule for causality checking.
struct RuleSpec {
  std::string name;
  VarPool vars;
  /// Trigger invariant + rule guards + field definitions (as equalities).
  std::vector<Constraint> premise;
  KeyExprs trigger_key;
  std::vector<PutSpec> puts;
  std::vector<QuerySpec> queries;
};

enum class ProofStatus { Proved, Refuted, Unknown };

struct ObligationResult {
  std::string description;
  ProofStatus status = ProofStatus::Unknown;
  /// Human-readable counterexample assignment when Refuted (or a rational
  /// near-counterexample when Unknown).
  std::string detail;
};

class CausalityChecker {
 public:
  explicit CausalityChecker(std::size_t fm_limit = 50000) : fm_(fm_limit) {}

  /// Discharges every obligation of the rule; the rule is causally sound
  /// iff all results are Proved.
  std::vector<ObligationResult> check(const RuleSpec& rule) const;

  /// premise ⟹ a ≤lex b
  ObligationResult prove_lex_le(const std::vector<Constraint>& premise,
                                const KeyExprs& a, const KeyExprs& b,
                                const VarPool& vars,
                                const std::string& description) const;

  /// premise ⟹ a <lex b
  ObligationResult prove_lex_lt(const std::vector<Constraint>& premise,
                                const KeyExprs& a, const KeyExprs& b,
                                const VarPool& vars,
                                const std::string& description) const;

 private:
  /// Shared engine: proves  premise ⟹ ¬(any disjunct satisfiable).
  ObligationResult prove_all_unsat(
      const std::vector<Constraint>& premise,
      const std::vector<std::vector<Constraint>>& disjuncts,
      const VarPool& vars, const std::string& description) const;

  FourierMotzkin fm_;
};

}  // namespace jstar::smt
