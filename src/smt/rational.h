// Exact rational arithmetic for the Fourier–Motzkin prover.
//
// Coefficients in causality proof obligations come from program text
// (small integers), but FM elimination multiplies constraints together, so
// intermediate values can grow; we compute through __int128 and normalise
// by the gcd after every operation, throwing on genuine overflow rather
// than silently corrupting a proof.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>

namespace jstar::smt {

class RationalOverflow : public std::runtime_error {
 public:
  RationalOverflow() : std::runtime_error("rational arithmetic overflow") {}
};

class Rat {
 public:
  constexpr Rat() : num_(0), den_(1) {}
  constexpr Rat(std::int64_t n) : num_(n), den_(1) {}  // NOLINT implicit
  Rat(std::int64_t n, std::int64_t d) : num_(n), den_(d) { normalize(); }

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }
  bool is_positive() const { return num_ > 0; }
  bool is_integer() const { return den_ == 1; }

  friend Rat operator+(const Rat& a, const Rat& b) {
    return make(i128(a.num_) * b.den_ + i128(b.num_) * a.den_,
                i128(a.den_) * b.den_);
  }
  friend Rat operator-(const Rat& a, const Rat& b) {
    return make(i128(a.num_) * b.den_ - i128(b.num_) * a.den_,
                i128(a.den_) * b.den_);
  }
  friend Rat operator*(const Rat& a, const Rat& b) {
    return make(i128(a.num_) * b.num_, i128(a.den_) * b.den_);
  }
  friend Rat operator/(const Rat& a, const Rat& b) {
    if (b.num_ == 0) throw std::domain_error("rational division by zero");
    return make(i128(a.num_) * b.den_, i128(a.den_) * b.num_);
  }
  Rat operator-() const { return Rat(-num_, den_); }

  Rat& operator+=(const Rat& o) { return *this = *this + o; }
  Rat& operator-=(const Rat& o) { return *this = *this - o; }
  Rat& operator*=(const Rat& o) { return *this = *this * o; }

  friend bool operator==(const Rat& a, const Rat& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rat& a, const Rat& b) {
    const i128 lhs = i128(a.num_) * b.den_;
    const i128 rhs = i128(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// Largest integer <= this.
  std::int64_t floor() const {
    if (num_ >= 0) return num_ / den_;
    return -((-num_ + den_ - 1) / den_);
  }

  std::string to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

 private:
  using i128 = __int128;

  static Rat make(i128 n, i128 d) {
    if (d < 0) {
      n = -n;
      d = -d;
    }
    const i128 g = gcd128(n < 0 ? -n : n, d);
    if (g > 1) {
      n /= g;
      d /= g;
    }
    if (n > INT64_MAX || n < INT64_MIN || d > INT64_MAX || d <= 0) {
      throw RationalOverflow();
    }
    Rat r;
    r.num_ = static_cast<std::int64_t>(n);
    r.den_ = static_cast<std::int64_t>(d);
    return r;
  }

  static i128 gcd128(i128 a, i128 b) {
    while (b != 0) {
      const i128 t = a % b;
      a = b;
      b = t;
    }
    return a == 0 ? 1 : a;
  }

  void normalize() {
    if (den_ == 0) throw std::domain_error("rational with zero denominator");
    *this = make(num_, den_);
  }

  std::int64_t num_;
  std::int64_t den_;
};

}  // namespace jstar::smt
