// Multi-producer Disruptor ring buffer — the "multiple producers"
// alternative of Table 1 ("alternative implementations for single or
// multiple producers, single or multiple consumers").
//
// Differences from the single-producer RingBuffer (ring_buffer.h), both
// following the LMAX MultiProducerSequencer design [Thompson et al. 2011]:
//   * claims go through a shared atomic sequence with a CAS loop that
//     first waits for ring capacity (so a claim can never overwrite slots
//     a consumer has not passed);
//   * publication is per-slot: an *availability buffer* records, for each
//     slot, the round number (sequence / capacity) that has been fully
//     written.  Consumers advance to the highest *contiguous* published
//     sequence, skipping nothing — out-of-order publishes by different
//     producers become visible only once the gap before them fills.
#pragma once

#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "disruptor/ring_buffer.h"
#include "util/cache_pad.h"
#include "util/check.h"

namespace jstar::disruptor {

template <typename T>
class MpRingBuffer {
 public:
  explicit MpRingBuffer(std::size_t capacity,
                        WaitStrategy wait = WaitStrategy::Blocking)
      : slots_(capacity), available_(capacity),
        mask_(static_cast<std::int64_t>(capacity) - 1),
        shift_(std::countr_zero(capacity)), wait_(wait), next_(-1) {
    JSTAR_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                    "ring buffer capacity must be a power of two");
    for (auto& a : available_) {
      a.store(-1, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return slots_.size(); }
  WaitStrategy wait_strategy() const { return wait_; }

  int add_consumer() {
    consumers_.push_back(std::make_unique<PaddedAtomicI64>(-1));
    return static_cast<int>(consumers_.size()) - 1;
  }
  int consumer_count() const { return static_cast<int>(consumers_.size()); }

  // --- producer side (any number of threads) -------------------------------

  /// Claims `n` consecutive sequences; returns the highest.  Safe from any
  /// thread; blocks while the ring lacks capacity.
  std::int64_t claim(std::int64_t n = 1) {
    JSTAR_DCHECK(n >= 1 && n <= static_cast<std::int64_t>(slots_.size()));
    for (;;) {
      std::int64_t current = next_.load(std::memory_order_relaxed);
      const std::int64_t hi = current + n;
      const std::int64_t wrap = hi - static_cast<std::int64_t>(slots_.size());
      if (wrap > min_consumer_sequence()) {
        producer_wait();
        continue;
      }
      if (next_.compare_exchange_weak(current, hi)) {
        return hi;
      }
    }
  }

  T& slot(std::int64_t seq) {
    return slots_[static_cast<std::size_t>(seq & mask_)];
  }

  /// Publishes the claimed range [lo, hi] (use lo == hi for single
  /// claims).  Each producer publishes only sequences it claimed.
  void publish(std::int64_t lo, std::int64_t hi) {
    for (std::int64_t s = lo; s <= hi; ++s) {
      available_[static_cast<std::size_t>(s & mask_)].store(
          round_of(s), std::memory_order_release);
    }
    if (wait_ == WaitStrategy::Blocking) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_all();
    }
  }
  void publish(std::int64_t seq) { publish(seq, seq); }

  // --- consumer side --------------------------------------------------------

  /// Blocks until sequence `seq` is published, then returns the highest
  /// published sequence contiguous from `seq` (batching, gap-safe).
  std::int64_t wait_for(std::int64_t seq) {
    switch (wait_) {
      case WaitStrategy::BusySpin:
        while (!is_available(seq)) {
        }
        break;
      case WaitStrategy::Yielding:
        while (!is_available(seq)) std::this_thread::yield();
        break;
      case WaitStrategy::Blocking: {
        if (!is_available(seq)) {
          std::unique_lock<std::mutex> lk(mu_);
          cv_.wait(lk, [&] { return is_available(seq); });
        }
        break;
      }
    }
    return highest_published_from(seq);
  }

  void commit(int cid, std::int64_t seq) {
    consumers_[static_cast<std::size_t>(cid)]->store(seq);
    if (wait_ == WaitStrategy::Blocking) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_all();
    }
  }

  std::int64_t consumer_sequence(int cid) const {
    return consumers_[static_cast<std::size_t>(cid)]->load();
  }

  /// Highest sequence any producer has claimed (may exceed published).
  std::int64_t claimed() const {
    return next_.load(std::memory_order_acquire);
  }

  bool is_available(std::int64_t seq) const {
    return available_[static_cast<std::size_t>(seq & mask_)].load(
               std::memory_order_acquire) == round_of(seq);
  }

 private:
  std::int64_t round_of(std::int64_t seq) const { return seq >> shift_; }

  std::int64_t highest_published_from(std::int64_t lo) const {
    const std::int64_t claimed_hi = next_.load(std::memory_order_acquire);
    std::int64_t s = lo;
    while (s <= claimed_hi && is_available(s)) ++s;
    return s - 1;
  }

  std::int64_t min_consumer_sequence() const {
    JSTAR_CHECK_MSG(!consumers_.empty(),
                    "ring buffer needs at least one consumer before claims");
    std::int64_t m = INT64_MAX;
    for (const auto& c : consumers_) m = std::min(m, c->load());
    return m;
  }

  void producer_wait() {
    switch (wait_) {
      case WaitStrategy::BusySpin:
        break;
      case WaitStrategy::Yielding:
        std::this_thread::yield();
        break;
      case WaitStrategy::Blocking: {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait_for(lk, std::chrono::milliseconds(1));
        break;
      }
    }
  }

  std::vector<T> slots_;
  std::vector<std::atomic<std::int64_t>> available_;  // round per slot
  const std::int64_t mask_;
  const int shift_;
  const WaitStrategy wait_;

  PaddedAtomicI64 next_;  // highest claimed sequence (shared, CAS'd)
  std::vector<std::unique_ptr<PaddedAtomicI64>> consumers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
};

/// Consumer loop for the multi-producer ring: fn(event, seq) until it
/// returns false.
template <typename T, typename Fn>
void mp_consume_loop(MpRingBuffer<T>& ring, int cid, Fn&& fn) {
  std::int64_t next = ring.consumer_sequence(cid) + 1;
  bool running = true;
  while (running) {
    const std::int64_t available = ring.wait_for(next);
    while (next <= available) {
      if (!fn(ring.slot(next), next)) {
        running = false;
        ++next;
        break;
      }
      ++next;
    }
    ring.commit(cid, next - 1);
  }
}

}  // namespace jstar::disruptor
