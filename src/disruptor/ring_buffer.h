// A C++ reproduction of the LMAX Disruptor [Thompson et al. 2011] in the
// single-producer / multiple-consumer configuration the paper tunes for
// the PvWatts program (§6.3, Table 1):
//
//   * preallocated power-of-two ring of event slots (objects recycled, not
//     garbage collected),
//   * a cache-line-padded publication cursor and one padded sequence per
//     consumer (no false sharing on the hot counters),
//   * single-threaded claim strategy: the producer owns `next_`, so claims
//     need no CAS at all; it only gates on the slowest consumer,
//   * batched claims ("Claim slots in a batch of 256", Table 1),
//   * pluggable consumer wait strategies: BusySpin, Yielding, Blocking.
//
// Consumers broadcast-read: every consumer observes every published slot,
// tracking its own sequence; the producer recycles a slot only once all
// consumer sequences have passed it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cache_pad.h"
#include "util/check.h"

namespace jstar::disruptor {

enum class WaitStrategy {
  BusySpin,  // lowest latency, burns a core
  Yielding,  // spin with std::this_thread::yield
  Blocking,  // mutex + condvar (Table 1's best setting for PvWatts)
};

inline const char* to_string(WaitStrategy w) {
  switch (w) {
    case WaitStrategy::BusySpin: return "BusySpin";
    case WaitStrategy::Yielding: return "Yielding";
    case WaitStrategy::Blocking: return "Blocking";
  }
  return "?";
}

template <typename T>
class RingBuffer {
 public:
  /// `capacity` must be a power of two (Table 1 uses 1024).
  explicit RingBuffer(std::size_t capacity,
                      WaitStrategy wait = WaitStrategy::Blocking)
      : slots_(capacity), mask_(static_cast<std::int64_t>(capacity) - 1),
        wait_(wait), cursor_(-1) {
    JSTAR_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                    "ring buffer capacity must be a power of two");
  }

  std::size_t capacity() const { return slots_.size(); }
  WaitStrategy wait_strategy() const { return wait_; }

  // --- consumer registration (before the producer starts) -----------------

  /// Registers a consumer; returns its id.  All consumers see all events.
  int add_consumer() {
    consumers_.push_back(std::make_unique<PaddedAtomicI64>(-1));
    return static_cast<int>(consumers_.size()) - 1;
  }

  int consumer_count() const { return static_cast<int>(consumers_.size()); }

  // --- producer side (single thread) ---------------------------------------

  /// Claims `n` consecutive slots; returns the highest claimed sequence.
  /// Blocks (per strategy) while the ring is full.
  std::int64_t claim(std::int64_t n) {
    JSTAR_DCHECK(n >= 1 && n <= static_cast<std::int64_t>(slots_.size()));
    const std::int64_t next = produced_ + n;
    const std::int64_t hi = next - 1;
    // Slot (hi & mask) is recycled once every consumer has passed sequence
    // hi - capacity; gate on the slowest consumer only past that point.
    const std::int64_t wrap = hi - static_cast<std::int64_t>(slots_.size());
    if (wrap > cached_gate_) {
      std::int64_t gate;
      while ((gate = min_consumer_sequence()) < wrap) {
        producer_wait();
      }
      cached_gate_ = gate;
    }
    produced_ = next;
    return hi;
  }

  /// The event slot for a claimed (or available) sequence.
  T& slot(std::int64_t seq) {
    return slots_[static_cast<std::size_t>(seq & mask_)];
  }

  /// Publishes every claimed sequence up to and including `hi`.
  void publish(std::int64_t hi) {
    cursor_.store(hi, std::memory_order_release);
    if (wait_ == WaitStrategy::Blocking) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_all();
    }
  }

  std::int64_t cursor() const { return cursor_.load(); }

  // --- consumer side --------------------------------------------------------

  /// Blocks until sequence `seq` has been published; returns the highest
  /// published sequence (so consumers naturally process in batches).
  std::int64_t wait_for(std::int64_t seq) {
    std::int64_t available = cursor_.load();
    if (available >= seq) return available;
    switch (wait_) {
      case WaitStrategy::BusySpin:
        while ((available = cursor_.load()) < seq) {
        }
        return available;
      case WaitStrategy::Yielding:
        while ((available = cursor_.load()) < seq) {
          std::this_thread::yield();
        }
        return available;
      case WaitStrategy::Blocking: {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return (available = cursor_.load()) >= seq; });
        return available;
      }
    }
    return available;
  }

  /// Marks everything up to `seq` as consumed by consumer `cid`, allowing
  /// the producer to recycle those slots.
  void commit(int cid, std::int64_t seq) {
    consumers_[static_cast<std::size_t>(cid)]->store(seq);
    if (wait_ == WaitStrategy::Blocking) {
      // The producer may be parked waiting for capacity.
      std::lock_guard<std::mutex> lk(mu_);
      cv_.notify_all();
    }
  }

  std::int64_t consumer_sequence(int cid) const {
    return consumers_[static_cast<std::size_t>(cid)]->load();
  }

 private:
  std::int64_t min_consumer_sequence() const {
    JSTAR_CHECK_MSG(!consumers_.empty(),
                    "ring buffer needs at least one consumer before claims");
    std::int64_t m = INT64_MAX;
    for (const auto& c : consumers_) {
      const std::int64_t s = c->load();
      if (s < m) m = s;
    }
    return m;
  }

  void producer_wait() {
    switch (wait_) {
      case WaitStrategy::BusySpin:
        break;
      case WaitStrategy::Yielding:
        std::this_thread::yield();
        break;
      case WaitStrategy::Blocking: {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait_for(lk, std::chrono::milliseconds(1));
        break;
      }
    }
  }

  std::vector<T> slots_;
  const std::int64_t mask_;
  const WaitStrategy wait_;

  // Producer-private state (single-threaded claim strategy).
  std::int64_t produced_ = 0;
  std::int64_t cached_gate_ = -1;

  PaddedAtomicI64 cursor_;
  std::vector<std::unique_ptr<PaddedAtomicI64>> consumers_;

  std::mutex mu_;
  std::condition_variable cv_;
};

/// Drives one consumer thread: calls fn(event, sequence) for every
/// published event until fn returns false (e.g. on the sentinel tuple the
/// PvWatts producer sends at end of input, §6.3).
template <typename T, typename Fn>
void consume_loop(RingBuffer<T>& ring, int cid, Fn&& fn) {
  std::int64_t next = ring.consumer_sequence(cid) + 1;
  bool running = true;
  while (running) {
    const std::int64_t available = ring.wait_for(next);
    while (next <= available) {
      if (!fn(ring.slot(next), next)) {
        running = false;
        ++next;
        break;
      }
      ++next;
    }
    ring.commit(cid, next - 1);
  }
}

}  // namespace jstar::disruptor
