// `orderby` specifications and `order` declarations (§3–§4).
//
// A table declaration like
//     table Ship(int frame -> int x, ...) orderby (Int, seq frame)
// becomes
//     TableDecl<Ship> d("Ship");
//     d.orderby(lit("Int"), seq(&Ship::frame));
// The literal levels are ordered by explicit `order` declarations
// (e.g. `order Req < PvWatts < SumMonth`, Fig 4), which define a partial
// order; we resolve it to integer ranks by a deterministic topological
// sort, rejecting cycles (a cyclic order makes stratification impossible).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.h"

namespace jstar {

/// One level of an orderby list, for documentation/visualisation and for
/// building the static causality specs.
struct OrderByLevel {
  enum class Kind { Lit, Seq, Par };
  Kind kind;
  std::string name;  // literal name, or field name
};

/// Resolves literal level names to integer ranks consistent with all
/// `order` declarations.  Ranks are assigned by Kahn's algorithm with
/// registration order as the tie-break, so rank assignment is
/// deterministic — incomparable literals get an arbitrary but stable
/// linear extension, which is a valid scheduling refinement of the
/// declared partial order.
class OrderResolver {
 public:
  /// Registers (or finds) a literal name; allowed only before freeze().
  int literal(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    JSTAR_CHECK_MSG(!frozen_, "order literal registered after freeze: " + name);
    const int id = static_cast<int>(names_.size());
    ids_.emplace(name, id);
    names_.push_back(name);
    adj_.emplace_back();
    return id;
  }

  /// Declares a chain a < b < c < ... (the paper's `order` statement).
  void declare_chain(const std::vector<std::string>& chain) {
    JSTAR_CHECK_MSG(!frozen_, "order declared after freeze");
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const int a = literal(chain[i]);
      const int b = literal(chain[i + 1]);
      adj_[static_cast<std::size_t>(a)].push_back(b);
    }
  }

  /// Computes ranks; further literals/orders are rejected.  Throws
  /// CheckError on a cyclic order declaration.
  void freeze() {
    if (frozen_) return;
    const std::size_t n = names_.size();
    std::vector<int> indeg(n, 0);
    for (const auto& out : adj_) {
      for (int b : out) ++indeg[static_cast<std::size_t>(b)];
    }
    // Kahn's algorithm; the ready "queue" is scanned in id order so the
    // result is deterministic in registration order.
    ranks_.assign(n, -1);
    std::vector<bool> done(n, false);
    for (std::size_t assigned = 0; assigned < n; ++assigned) {
      int pick = -1;
      for (std::size_t i = 0; i < n; ++i) {
        if (!done[i] && indeg[i] == 0) {
          pick = static_cast<int>(i);
          break;
        }
      }
      JSTAR_CHECK_MSG(pick >= 0, "cycle in order declarations");
      done[static_cast<std::size_t>(pick)] = true;
      ranks_[static_cast<std::size_t>(pick)] = static_cast<int>(assigned);
      for (int b : adj_[static_cast<std::size_t>(pick)]) {
        --indeg[static_cast<std::size_t>(b)];
      }
    }
    frozen_ = true;
  }

  bool frozen() const { return frozen_; }

  /// Rank of a literal id (freeze() must have been called).
  std::int64_t rank(int literal_id) const {
    JSTAR_CHECK_MSG(frozen_, "OrderResolver::rank before freeze");
    return ranks_[static_cast<std::size_t>(literal_id)];
  }

  std::int64_t rank_of(const std::string& name) const {
    auto it = ids_.find(name);
    JSTAR_CHECK_MSG(it != ids_.end(), "unknown order literal: " + name);
    return rank(it->second);
  }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::map<std::string, int> ids_;
  std::vector<std::string> names_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> ranks_;
  bool frozen_ = false;
};

}  // namespace jstar
