// Flat array-backed Gamma substrates — the §6.4 "native arrays" storage
// tier ("for some programs we have used custom data structures based on
// native arrays ... considerably faster than the general-purpose
// collections").
//
// Two structures, selectable per table through TableDecl::flat_store() /
// flat_hash_store() without touching rule bodies (the §1.4 late
// commitment to data structures):
//
//   * FlatOrderedStore<T> — one sorted contiguous vector plus a small
//     unsorted staging buffer with deferred merge.  Lookups binary-search
//     the sorted run and hash-probe the staging set; scan_range/scan_from
//     are real lower_bound seeks, so ordered() is true and the query
//     planner routes range plans here exactly as it does for the tree and
//     skip-list defaults.  Ordered reads merge the staging buffer first,
//     so every scan runs over one cache-contiguous span.  An optional
//     engine-epoch window (TableDecl::retain(N)) tags tuples with the
//     epoch clock on arrival; retire_up_to() compacts the arrays in
//     place.
//
//   * FlatHashStore<T> — open addressing over a power-of-two capacity
//     with linear probing.  erase() leaves a tombstone so probe chains
//     stay intact; tombstones are reclaimed by inserts and purged by the
//     load-factor-triggered rebuild.  Unordered, so range plans degrade
//     to residual scans; pair it with secondary indexes when the query
//     key is fully known.  T must be default-constructible (empty slots
//     hold T{}).
//
// Both override scan_chunks() to hand out contiguous [data, n) spans —
// the chunked scan pushdown that lets Table<T> hot loops inline their
// predicate instead of paying a type-erased call per tuple.
//
// Thread-safety: a shared_mutex per store — inserts and merges exclusive,
// lookups and scans shared.  Like EpochWindowStore, scan callbacks run
// under the store's lock: a rule must not put into the same -noDelta
// table from inside one of its own scan callbacks, and retire listeners
// must not call back into the store.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/gamma_store.h"
#include "core/simd.h"
#include "sched/fork_join_pool.h"

namespace jstar {

/// Sorted contiguous-array store with a staged-merge write side.
template <typename T, typename Hash = std::hash<T>>
class FlatOrderedStore final : public GammaStore<T>, public RetiringStore<T> {
 public:
  explicit FlatOrderedStore(Hash hash = Hash{})
      : hash_(std::move(hash)), staging_set_(8, hash_) {}

  /// Engine-epoch windowed variant (TableDecl::retain(N)): every tuple is
  /// tagged with `clock`'s value at insert time and retire_up_to()
  /// compacts the arrays in place.  `clock` may be null (epoch 0
  /// forever, as in engine-free unit harnesses).  `keep_epochs >= 1`
  /// additionally enables insert-driven retirement with the same
  /// semantics as EpochWindowStore: an insert that advances the observed
  /// epoch clock retires everything behind the new window immediately,
  /// and stragglers behind it are silently dropped — so all three
  /// windowed substrates agree on re-insert-after-retire behaviour
  /// (regression: CrossSubstrateWindow.StragglerSemanticsAgree).
  /// `keep_epochs == 0` keeps the legacy retire_up_to-only ratchet.
  explicit FlatOrderedStore(const std::atomic<std::int64_t>* clock,
                            Hash hash = Hash{}, std::int64_t keep_epochs = 0)
      : hash_(std::move(hash)), staging_set_(8, hash_), clock_(clock),
        windowed_(true), keep_(keep_epochs) {}

  bool insert(const T& t) override {
    std::vector<T> victims;
    bool fresh;
    {
      std::unique_lock lk(mu_);
      std::int64_t e = 0;
      if (windowed_) {
        e = epoch_now();
        if (e <= retired_through_) {
          // A straggler behind the retain(N) window: no future query can
          // observe it, so drop — but report fresh, exactly like
          // EpochWindowStore, so rules still fire for it once.
          retired_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
      fresh = insert_staged_locked(t, e);
      if (fresh && windowed_ && keep_ >= 1 && e > max_epoch_) {
        // Insert-driven retirement, mirroring EpochWindowStore: the
        // observed clock advanced, so everything behind the new window
        // goes now and the straggler cutoff ratchets with it.
        max_epoch_ = e;
        if (max_epoch_ - keep_ > retired_through_) {
          retired_through_ = max_epoch_ - keep_;
          merge_locked();
          retire_sorted_locked(retired_through_, &victims);
        }
      }
    }
    for (const T& t2 : victims) on_retire_(t2);
    return fresh;
  }

  bool contains(const T& t) const override {
    std::shared_lock lk(mu_);
    if (staging_set_.count(t) != 0) return true;
    return std::binary_search(sorted_.begin(), sorted_.end(), t) &&
           dead_.count(t) == 0;
  }

  /// Retraction support: a staged tuple is removed from the staging
  /// buffer directly; a merged tuple joins the dead set and is hidden
  /// immediately (contains/dup-checks consult the set) but physically
  /// purged only by the next merge — the anti-merge — so erase stays
  /// O(staging) instead of O(N) per call under churn-heavy workloads.
  bool erase(const T& t) override {
    std::unique_lock lk(mu_);
    if (staging_set_.erase(t) != 0) {
      for (std::size_t i = 0; i < staging_.size(); ++i) {
        if (staging_[i] == t) {
          staging_[i] = std::move(staging_.back());
          staging_.pop_back();
          if (windowed_) {
            staging_epochs_[i] = staging_epochs_.back();
            staging_epochs_.pop_back();
          }
          break;
        }
      }
      return true;
    }
    if (std::binary_search(sorted_.begin(), sorted_.end(), t) &&
        dead_.insert(t).second) {
      return true;
    }
    return false;
  }

  bool erasable() const override { return true; }

  void scan(const std::function<void(const T&)>& fn) const override {
    with_merged([&] {
      for (const T& t : sorted_) fn(t);
    });
  }

  // Staged-region visibility: the ordered seeks below iterate only the
  // sorted_ run, which is safe *only because* with_merged() folds the
  // staging buffer into sorted_ before running the body — a staged-but-
  // unmerged tuple is therefore always visible to range plans (regression:
  // FlatOrderedStore.RangeSeeksSeeStagedUnmergedTuples).  Any future seek
  // path added here must either go through with_merged() or probe the
  // staging set explicitly.
  void scan_range(const T& lo, const T& hi,
                  const std::function<void(const T&)>& fn) const override {
    with_merged([&] {
      for (auto it = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
           it != sorted_.end() && *it < hi; ++it) {
        fn(*it);
      }
    });
  }

  void scan_from(const T& lo,
                 const std::function<void(const T&)>& fn) const override {
    with_merged([&] {
      for (auto it = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
           it != sorted_.end(); ++it) {
        fn(*it);
      }
    });
  }

  void scan_chunks(const std::function<void(const T*, std::size_t)>& fn)
      const override {
    with_merged([&] {
      if (!sorted_.empty()) fn(sorted_.data(), sorted_.size());
    });
  }

  /// Morsel-parallel flat scan (see GammaStore::scan_morsels): the
  /// sorted run is one contiguous array, so each morsel is a simple
  /// sub-span handed to the pool.  Engages only past the sequential
  /// cutoff with a hinted pool; bodies run under the shared lock the
  /// same way scan_chunks callbacks do.
  bool scan_morsels(
      const std::function<void(std::size_t)>& plan,
      const std::function<void(const T*, std::size_t, std::size_t)>& body)
      const override {
    bool ran = false;
    with_merged([&] {
      const std::size_t n = sorted_.size();
      if (pool_ == nullptr || !morsels_on_ || !simd::morsels_env_on() ||
          n < morsel::kSequentialCutoff) {
        return;
      }
      const std::size_t m = morsel::count(n);
      plan(m);
      const T* base = sorted_.data();
      pool_->for_each_index(
          static_cast<std::int64_t>(m),
          [&](std::int64_t mi) {
            const std::size_t a =
                static_cast<std::size_t>(mi) * morsel::kRows;
            const std::size_t b = std::min(n, a + morsel::kRows);
            body(base + a, b - a, static_cast<std::size_t>(mi));
          },
          /*grain=*/1);
      morsel_runs_.fetch_add(1, std::memory_order_relaxed);
      morsel_splits_.fetch_add(static_cast<std::int64_t>(m),
                               std::memory_order_relaxed);
      ran = true;
    });
    return ran;
  }

  void set_exec_hints(const ExecHints& h) override {
    pool_ = h.pool;
    morsels_on_ = h.morsels;
  }

  bool ordered() const override { return true; }
  bool chunked() const override { return true; }

  std::size_t size() const override {
    std::shared_lock lk(mu_);
    return sorted_.size() + staging_.size() - dead_.size();
  }

  /// "flat-ordered[(retain)]" — with a "(morsels=<splits>)" suffix once
  /// any scan actually split across the pool, so run logs show which
  /// tables went morsel-parallel (small tables keep the legacy string).
  std::string describe() const override {
    std::string s = windowed_ ? "flat-ordered(retain)" : "flat-ordered";
    const std::int64_t splits =
        morsel_splits_.load(std::memory_order_relaxed);
    if (splits > 0) s += "(morsels=" + std::to_string(splits) + ")";
    return s;
  }

  // --- RetiringStore (TableDecl::retain(N) integration) --------------------

  /// Compacts the arrays in place, dropping every tuple whose arrival
  /// epoch is <= threshold, and ratchets the straggler cutoff forward.
  /// Returns the number of tuples retired.  No-op for unwindowed stores.
  /// The retire listener fires *after* the store lock is released: the
  /// listener takes other locks (secondary-index shards) that queries
  /// hold while re-entering this store, so notifying under the lock
  /// would close a lock-order cycle.  The brief window where an index
  /// still lists a retired tuple is harmless — probe hits are
  /// revalidated against the store.
  std::int64_t retire_up_to(std::int64_t threshold) override {
    std::vector<T> victims;
    std::int64_t dropped = 0;
    {
      std::unique_lock lk(mu_);
      if (!windowed_) return 0;
      retired_through_ = std::max(retired_through_, threshold);
      if (keep_ >= 1) max_epoch_ = std::max(max_epoch_, threshold + keep_);
      merge_locked();
      dropped = retire_sorted_locked(threshold, &victims);
    }
    for (const T& t : victims) on_retire_(t);
    return dropped;
  }

  void set_retire_listener(std::function<void(const T&)> fn) override {
    on_retire_ = std::move(fn);
  }

  // --- introspection (tests, benches) --------------------------------------

  /// Tuples currently awaiting a merge.
  std::size_t staged() const {
    std::shared_lock lk(mu_);
    return staging_.size();
  }
  /// Staging merges performed so far.
  std::int64_t merges() const {
    return merges_.load(std::memory_order_relaxed);
  }
  /// Tuples dropped by window retirement so far.
  std::int64_t retired() const {
    return retired_.load(std::memory_order_relaxed);
  }

 private:
  /// Deferred-merge threshold: proportional to the sorted run so the
  /// total merge traffic stays O(N) amortised, floored so tiny tables
  /// don't merge on every insert.
  std::size_t staging_limit() const {
    return std::max<std::size_t>(64, sorted_.size() / 8);
  }

  std::int64_t epoch_now() const {
    return clock_ != nullptr ? clock_->load(std::memory_order_relaxed) : 0;
  }

  /// Dedup-checks t against the staging set, the sorted run and the dead
  /// set, then stages it.  A tuple that is physically in sorted_ but
  /// marked dead is NOT a duplicate: the staged copy becomes the live one
  /// and the dead copy is dropped by the next anti-merge before the two
  /// could ever meet in the same region.  Caller holds the exclusive
  /// lock; returns true when the tuple was fresh.
  bool insert_staged_locked(const T& t, std::int64_t e) {
    if (staging_set_.count(t) != 0) return false;
    if (std::binary_search(sorted_.begin(), sorted_.end(), t) &&
        dead_.count(t) == 0) {
      return false;
    }
    staging_.push_back(t);
    if (windowed_) staging_epochs_.push_back(e);
    staging_set_.insert(t);
    if (staging_.size() >= staging_limit()) merge_locked();
    return true;
  }

  /// Compacts sorted_ in place, dropping every tuple whose arrival epoch
  /// is <= threshold; dead tuples cannot appear (merge_locked purges them
  /// first).  Caller holds the exclusive lock and has already merged.
  std::int64_t retire_sorted_locked(std::int64_t threshold,
                                    std::vector<T>* victims) {
    std::int64_t dropped = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < sorted_.size(); ++r) {
      if (sorted_epochs_[r] <= threshold) {
        ++dropped;
        if (on_retire_) victims->push_back(std::move(sorted_[r]));
      } else {
        if (w != r) {
          sorted_[w] = std::move(sorted_[r]);
          sorted_epochs_[w] = sorted_epochs_[r];
        }
        ++w;
      }
    }
    sorted_.resize(w);
    sorted_epochs_.resize(w);
    retired_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
  }

  /// Runs fn with the staging buffer folded into the sorted run and the
  /// dead set purged.  Fast path: nothing pending — shared lock only.
  /// Otherwise merge under the exclusive lock, release, and retry under
  /// a shared lock so the O(N) scan itself never blocks concurrent
  /// readers.
  template <typename Fn>
  void with_merged(Fn&& fn) const {
    for (;;) {
      {
        std::shared_lock lk(mu_);
        if (staging_.empty() && dead_.empty()) {
          fn();
          return;
        }
      }
      std::unique_lock lk(mu_);
      merge_locked();
    }
  }

  /// The anti-merge: compacts dead tuples out of the sorted run, then
  /// sorts the staging buffer and merges it into the sorted run from the
  /// back (no extra allocation beyond the resize).  Caller holds the
  /// exclusive lock.  Cross-region duplicates cannot exist once the dead
  /// are purged — insert rejects live duplicates and a re-inserted dead
  /// tuple's stale copy is removed here before the staged copy lands —
  /// so the merge needs no dedup pass.
  void merge_locked() const {
    if (!dead_.empty()) {
      std::size_t w = 0;
      for (std::size_t r = 0; r < sorted_.size(); ++r) {
        if (dead_.count(sorted_[r]) != 0) continue;
        if (w != r) {
          sorted_[w] = std::move(sorted_[r]);
          if (windowed_) sorted_epochs_[w] = sorted_epochs_[r];
        }
        ++w;
      }
      sorted_.resize(w);
      if (windowed_) sorted_epochs_.resize(w);
      dead_.clear();
    }
    const std::size_t m = staging_.size();
    if (m == 0) return;
    if (windowed_) {
      // Co-sort the epoch tags with their tuples.
      std::vector<std::pair<T, std::int64_t>> tmp(m);
      for (std::size_t i = 0; i < m; ++i) {
        tmp[i] = {std::move(staging_[i]), staging_epochs_[i]};
      }
      std::sort(tmp.begin(), tmp.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t i = 0; i < m; ++i) {
        staging_[i] = std::move(tmp[i].first);
        staging_epochs_[i] = tmp[i].second;
      }
    } else {
      std::sort(staging_.begin(), staging_.end());
    }
    const std::size_t n = sorted_.size();
    sorted_.resize(n + m);
    if (windowed_) sorted_epochs_.resize(n + m);
    std::size_t i = n, j = m, k = n + m;
    while (j > 0) {
      if (i > 0 && staging_[j - 1] < sorted_[i - 1]) {
        --i;
        --k;
        sorted_[k] = std::move(sorted_[i]);
        if (windowed_) sorted_epochs_[k] = sorted_epochs_[i];
      } else {
        --j;
        --k;
        sorted_[k] = std::move(staging_[j]);
        if (windowed_) sorted_epochs_[k] = staging_epochs_[j];
      }
    }
    staging_.clear();
    staging_epochs_.clear();
    staging_set_.clear();
    merges_.fetch_add(1, std::memory_order_relaxed);
  }

  Hash hash_;
  mutable std::shared_mutex mu_;
  // Scans merge on demand, so the regions are mutable behind const reads.
  mutable std::vector<T> sorted_;
  mutable std::vector<std::int64_t> sorted_epochs_;  // windowed only
  mutable std::vector<T> staging_;
  mutable std::vector<std::int64_t> staging_epochs_;  // windowed only
  mutable std::unordered_set<T, Hash> staging_set_;
  // Erased-but-unpurged tuples still physically present in sorted_; every
  // read path subtracts them until the next merge compacts them away.
  mutable std::unordered_set<T, Hash> dead_{8, hash_};
  const std::atomic<std::int64_t>* clock_ = nullptr;
  const bool windowed_ = false;
  const std::int64_t keep_ = 0;
  std::int64_t max_epoch_ = std::numeric_limits<std::int64_t>::min() / 2;
  std::int64_t retired_through_ = std::numeric_limits<std::int64_t>::min() / 2;
  std::function<void(const T&)> on_retire_;
  mutable std::atomic<std::int64_t> merges_{0};
  std::atomic<std::int64_t> retired_{0};
  // Execution hints (set_exec_hints) + cumulative morsel counters.
  sched::ForkJoinPool* pool_ = nullptr;
  bool morsels_on_ = true;
  mutable std::atomic<std::int64_t> morsel_runs_{0};
  mutable std::atomic<std::int64_t> morsel_splits_{0};
};

/// Open-addressing hash store: power-of-two capacity, linear probing.
template <typename T, typename Hash = std::hash<T>>
class FlatHashStore final : public GammaStore<T> {
 public:
  explicit FlatHashStore(Hash hash = Hash{}, std::size_t initial_capacity = 64)
      : hash_(std::move(hash)) {
    grow_to(std::bit_ceil(std::max<std::size_t>(initial_capacity, 16)));
  }

  bool insert(const T& t) override {
    std::unique_lock lk(mu_);
    // Grow (or rebuild in place, purging tombstones) at 3/4 occupancy so
    // linear probes stay short even after heavy churn: tombstones extend
    // probe chains exactly like live slots do.
    if ((count_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
      grow_to((count_ + 1) * 4 > slots_.size() * 3 ? slots_.size() * 2
                                                   : slots_.size());
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_(t) & mask;
    std::size_t spot = kNpos;  // first tombstone on the chain, reusable
    while (used_[i] != kEmpty) {
      if (used_[i] == kUsed && slots_[i] == t) return false;
      if (used_[i] == kTomb && spot == kNpos) spot = i;
      i = (i + 1) & mask;
    }
    if (spot == kNpos) {
      spot = i;
    } else {
      --tombstones_;
    }
    slots_[spot] = t;
    used_[spot] = kUsed;
    ++count_;
    return true;
  }

  bool contains(const T& t) const override {
    std::shared_lock lk(mu_);
    return find(t) != kNpos;
  }

  /// Retraction support: the slot becomes a tombstone — probe chains for
  /// other tuples that ran through it stay intact — and is reclaimed by
  /// a later insert on the same chain or by the next rebuild.
  bool erase(const T& t) override {
    std::unique_lock lk(mu_);
    const std::size_t i = find(t);
    if (i == kNpos) return false;
    slots_[i] = T{};
    used_[i] = kTomb;
    --count_;
    ++tombstones_;
    return true;
  }

  bool erasable() const override { return true; }

  void scan(const std::function<void(const T&)>& fn) const override {
    std::shared_lock lk(mu_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i] == kUsed) fn(slots_[i]);
    }
  }

  /// Chunked pushdown: emits each maximal run of occupied slots as one
  /// contiguous span (tombstones break runs like empty slots do).
  void scan_chunks(const std::function<void(const T*, std::size_t)>& fn)
      const override {
    std::shared_lock lk(mu_);
    std::size_t i = 0;
    const std::size_t n = slots_.size();
    while (i < n) {
      while (i < n && used_[i] != kUsed) ++i;
      std::size_t j = i;
      while (j < n && used_[j] == kUsed) ++j;
      if (j > i) fn(slots_.data() + i, j - i);
      i = j;
    }
  }

  /// Morsel-parallel slot sweep: the slot array is partitioned into
  /// fixed morsels; each emits its occupied runs (clipped at the morsel
  /// boundary — multiple spans per morsel are allowed by the contract).
  /// Gates on the *live* count, not the capacity, so a sparse table
  /// does not fan out for a handful of tuples.
  bool scan_morsels(
      const std::function<void(std::size_t)>& plan,
      const std::function<void(const T*, std::size_t, std::size_t)>& body)
      const override {
    std::shared_lock lk(mu_);
    if (pool_ == nullptr || !morsels_on_ || !simd::morsels_env_on() ||
        count_ < morsel::kSequentialCutoff) {
      return false;
    }
    const std::size_t n = slots_.size();
    const std::size_t m = morsel::count(n);
    plan(m);
    pool_->for_each_index(
        static_cast<std::int64_t>(m),
        [&](std::int64_t mi) {
          const std::size_t a = static_cast<std::size_t>(mi) * morsel::kRows;
          const std::size_t b = std::min(n, a + morsel::kRows);
          std::size_t i = a;
          while (i < b) {
            while (i < b && used_[i] != kUsed) ++i;
            std::size_t j = i;
            while (j < b && used_[j] == kUsed) ++j;
            if (j > i) {
              body(slots_.data() + i, j - i, static_cast<std::size_t>(mi));
            }
            i = j;
          }
        },
        /*grain=*/1);
    morsel_runs_.fetch_add(1, std::memory_order_relaxed);
    morsel_splits_.fetch_add(static_cast<std::int64_t>(m),
                             std::memory_order_relaxed);
    return true;
  }

  void set_exec_hints(const ExecHints& h) override {
    pool_ = h.pool;
    morsels_on_ = h.morsels;
  }

  bool chunked() const override { return true; }

  std::size_t size() const override {
    std::shared_lock lk(mu_);
    return count_;
  }

  std::string describe() const override {
    std::string s = "flat-hash";
    const std::int64_t splits =
        morsel_splits_.load(std::memory_order_relaxed);
    if (splits > 0) s += "(morsels=" + std::to_string(splits) + ")";
    return s;
  }

  /// Current slot-array capacity (tests).
  std::size_t capacity() const {
    std::shared_lock lk(mu_);
    return slots_.size();
  }

  /// Erased-but-unreclaimed slots (tests).
  std::size_t tombstones() const {
    std::shared_lock lk(mu_);
    return tombstones_;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0, kUsed = 1, kTomb = 2;
  static constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

  /// Index of t's occupied slot, or kNpos.  The search must run past
  /// tombstones: t may live beyond one left by an erased chain member.
  /// The load-factor bound guarantees an empty terminator exists.
  std::size_t find(const T& t) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_(t) & mask;
    while (used_[i] != kEmpty) {
      if (used_[i] == kUsed && slots_[i] == t) return i;
      i = (i + 1) & mask;
    }
    return kNpos;
  }

  /// Rehashes live slots into a capacity-`cap` array; tombstones vanish
  /// (cap may equal the current capacity — a pure tombstone purge).
  void grow_to(std::size_t cap) {
    std::vector<T> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_ = std::vector<T>(cap);
    used_.assign(cap, 0);
    tombstones_ = 0;
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i] != kUsed) continue;
      std::size_t j = hash_(old_slots[i]) & mask;
      while (used_[j] != kEmpty) j = (j + 1) & mask;
      slots_[j] = std::move(old_slots[i]);
      used_[j] = kUsed;
    }
  }

  Hash hash_;
  mutable std::shared_mutex mu_;
  std::vector<T> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t count_ = 0;
  std::size_t tombstones_ = 0;
  // Execution hints (set_exec_hints) + cumulative morsel counters.
  sched::ForkJoinPool* pool_ = nullptr;
  bool morsels_on_ = true;
  mutable std::atomic<std::int64_t> morsel_runs_{0};
  mutable std::atomic<std::int64_t> morsel_splits_{0};
};

}  // namespace jstar
