// AVX2 kernel table.  CMake compiles this TU with -mavx2 when the
// compiler supports the flag on x86; everywhere else the guard below
// collapses the TU to a nullptr stub so the rest of the binary stays
// portable and simd::kernels() degrades to scalar.  Selection of this
// table at runtime is cpuid-gated (simd.cpp), so these intrinsics never
// execute on hardware without AVX2.
#include "core/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>
#include <limits>

namespace jstar::simd {

namespace {

/// All-ones lane where lo <= x[i] <= hi.  AVX2 only has signed 64-bit
/// greater-than, so in-range is NOT(lo > x) AND NOT(x > hi).
inline __m256i in_range_i64(__m256i x, __m256i vlo, __m256i vhi) {
  const __m256i below = _mm256_cmpgt_epi64(vlo, x);
  const __m256i above = _mm256_cmpgt_epi64(x, vhi);
  const __m256i outside = _mm256_or_si256(below, above);
  return _mm256_xor_si256(outside, _mm256_set1_epi64x(-1));
}

/// Expands a 4-bit lane mask into 4 bytes of 0/1.  The multiplier
/// replicates bit j of k to bit 8j of the product (positions 0/7/14/21
/// shifted by j land on disjoint bits, so no carries).
inline std::uint32_t spread4(std::uint32_t k) {
  return (k * 0x00204081u) & 0x01010101u;
}

inline std::uint8_t in_bound1(std::int64_t v, std::int64_t lo,
                              std::int64_t hi) {
  return static_cast<std::uint8_t>(static_cast<int>(v >= lo) &
                                   static_cast<int>(v <= hi));
}

std::int64_t avx2_count_in_range(const std::int64_t* v, std::size_t n,
                                 std::int64_t lo, std::int64_t hi) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // In-range lanes are -1: subtracting adds 1 per selected lane.
    acc = _mm256_sub_epi64(acc, in_range_i64(x, vlo, vhi));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t c = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) c += in_bound1(v[i], lo, hi);
  return c;
}

void avx2_mask_and_in_range(const std::int64_t* v, std::size_t n,
                            std::int64_t lo, std::int64_t hi,
                            std::uint8_t* sel) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i in = in_range_i64(x, vlo, vhi);
    const std::uint32_t k = static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(in)));
    std::uint32_t cur;
    std::memcpy(&cur, sel + i, 4);
    cur &= spread4(k);
    std::memcpy(sel + i, &cur, 4);
  }
  for (; i < n; ++i) sel[i] &= in_bound1(v[i], lo, hi);
}

std::int64_t avx2_mask_count(const std::uint8_t* sel, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i bytes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    // Bytes are 0/1 by construction; SAD against zero sums each 8-byte
    // group into a 64-bit lane, so no 255-iteration saturation dance.
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t c = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) c += sel[i];
  return c;
}

bool avx2_masked_min_i64(const std::int64_t* v, const std::uint8_t* sel,
                         std::size_t n, std::int64_t* out_min,
                         std::size_t* out_row) {
  // Pass 1 (vector): min over selected lanes, deselected lanes blended to
  // INT64_MAX.  The sentinel cannot produce a wrong answer: if every
  // selected value is INT64_MAX the min is INT64_MAX anyway, and pass 2
  // only looks at selected rows.  AVX2 has no min_epi64, so the running
  // min is a compare+blend.
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const __m256i vmax = _mm256_set1_epi64x(kMax);
  __m256i vmin = vmax;
  std::uint32_t any = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint32_t s4;
    std::memcpy(&s4, sel + i, 4);
    any |= s4;
    if (s4 == 0) continue;
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // Byte mask (0/1 each) -> all-ones 64-bit lane mask.
    const __m256i lanes =
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(s4)));
    const __m256i keep = _mm256_cmpgt_epi64(lanes, _mm256_setzero_si256());
    const __m256i masked = _mm256_blendv_epi8(vmax, x, keep);
    const __m256i less = _mm256_cmpgt_epi64(vmin, masked);
    vmin = _mm256_blendv_epi8(vmin, masked, less);
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  std::int64_t best = kMax;
  bool found = any != 0;
  for (const std::int64_t l : lanes) best = l < best ? l : best;
  for (; i < n; ++i) {
    if (!sel[i]) continue;
    found = true;
    if (v[i] < best) best = v[i];
  }
  if (!found) return false;
  // Pass 2 (scalar): first selected row attaining the min — preserves the
  // earliest-row tie-break of the sequential argmin.
  for (std::size_t r = 0; r < n; ++r) {
    if (sel[r] && v[r] == best) {
      *out_min = best;
      *out_row = r;
      return true;
    }
  }
  return false;  // unreachable: `found` implies a selected row holds best
}

constexpr Kernels kAvx2{avx2_count_in_range, avx2_mask_and_in_range,
                        avx2_mask_count, avx2_masked_min_i64};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2; }

}  // namespace jstar::simd

#else  // !__AVX2__

namespace jstar::simd {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace jstar::simd

#endif
