// Columnar (SoA) Gamma substrate — the data-layout half of ROADMAP item 3.
//
// The JStar position (§1.4, §6.4) is that Gamma is a *set abstraction*
// whose physical representation is the implementation's business.
// ColumnStore<T> takes that one step further than the flat tier: tuples
// are shredded into per-field contiguous columns (structure-of-arrays),
// so a residual scan or aggregate that touches one or two fields streams
// 8 bytes per row instead of sizeof(T) — and the per-column loops are
// plain strided arithmetic the compiler auto-vectorizes.
//
// Shape: the read-optimised region is a set of parallel column vectors,
// sorted by the *tuple's* natural order (operator<, same as every ordered
// substrate, so the planner's range plans route here unchanged).  The
// write side is a small row-major staging buffer with the same deferred
// merge discipline as FlatOrderedStore: inserts hash-probe the staging
// set and binary-search the columnar region (reconstituting O(log N)
// rows); ordered reads fold staging in first.  An optional engine-epoch
// window (TableDecl::retain(N)) epoch-tags rows and retire_up_to()
// compacts every column in place.
//
// Kernels: beyond the GammaStore contract, the store implements
// ColumnarOps<T> — a type-erased kernel interface the table layer uses to
// push *computation* down to the columns.  A planner residual predicate
// whose bindings are exact (query::Pred::binding_exact) compiles to
// per-column selection loops producing a byte mask; counts, projections
// (fold) and argmin (min_by) then run over selected column values without
// ever materialising tuples.  Results are bit-identical to the scan path:
// bindings only ever target int64-exact fields (core/query.h bindable_v),
// so comparing in int64 space is the same comparison the callable makes.
//
// Execution (this PR's two axes): int64 column sweeps run through the
// runtime-dispatched SIMD primitives of core/simd.h (AVX2/AVX-512 on
// x86, NEON on aarch64, scalar fallback — JSTAR_SIMD=off pins scalar),
// and past a fixed sequential cutoff every kernel splits into
// fixed-size morsels executed on the hinted fork/join pool
// (set_exec_hints), with partials combined in storage order so results
// stay deterministic and identical to the sequential pass
// (JSTAR_MORSELS=off pins sequential).  Kernels only ever see the live,
// purged, sorted columns — with_merged() folds staging and compacts the
// dead set before any sweep starts, so SIMD lanes and morsel splits
// never observe staged or retracted rows.
//
// Thread-safety: one shared_mutex, same discipline as the flat tier —
// inserts and merges exclusive, scans and kernels shared; scan callbacks
// run under the store's lock (no re-entry), retire listeners fire after
// the lock is released.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/gamma_store.h"
#include "core/query.h"
#include "core/simd.h"
#include "sched/fork_join_pool.h"
#include "util/check.h"

namespace jstar {

namespace columnar_detail {

template <typename P>
struct member_value;
template <typename C, typename V>
struct member_value<V C::*> {
  using type = V;
};
/// The field type a pointer-to-member points at.
template <typename P>
using member_value_t = typename member_value<P>::type;

}  // namespace columnar_detail

/// Type-erased columnar kernel interface, implemented by ColumnStore and
/// consumed by Table<T>'s query paths.  `Bound` is one conjunct of an
/// exact predicate, already normalised to an inclusive int64 interval
/// (equalities arrive as [v, v]); a row is selected when every bound
/// holds.  Kernels report how many rows they swept and how many the mask
/// selected, feeding the TableStats selectivity counters.
template <typename T>
class ColumnarOps {
 public:
  struct Bound {
    const void* tag = nullptr;
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  };
  struct KernelStats {
    std::int64_t rows = 0;      // rows the kernel swept
    std::int64_t selected = 0;  // rows the selection mask kept
    std::int64_t morsels = 0;   // morsels the sweep split into (0 = inline)
  };

  virtual ~ColumnarOps() = default;

  /// Field tags of the stored columns, for the planner catalog.
  virtual const std::vector<const void*>& column_tags() const = 0;
  virtual bool has_column(const void* tag) const = 0;

  /// Count of rows satisfying every bound.  Never materialises tuples.
  virtual KernelStats kernel_count(const std::vector<Bound>& bounds) const = 0;

  /// Reconstitutes the selected rows and hands them out as contiguous
  /// spans (the chunked-scan shape, so the table layer's visitor loop
  /// inlines).
  virtual KernelStats kernel_select(
      const std::vector<Bound>& bounds,
      const std::function<void(const T*, std::size_t)>& fn) const = 0;

  /// Streams the selected rows' values of one column as int64 spans.
  /// Returns false (untouched stats) when the column is missing or
  /// floating-point — the caller falls back to the tuple path.
  /// `stats` may be null when the caller does not record counters.
  virtual bool kernel_gather_i64(
      const std::vector<Bound>& bounds, const void* col,
      const std::function<void(const std::int64_t*, std::size_t)>& fn,
      KernelStats* stats) const = 0;

  /// Same, converting any arithmetic column to double.
  virtual bool kernel_gather_f64(
      const std::vector<Bound>& bounds, const void* col,
      const std::function<void(const double*, std::size_t)>& fn,
      KernelStats* stats) const = 0;

  /// Argmin over one column among the selected rows: *out is the first
  /// row (in store order) carrying the minimal value, or empty when
  /// nothing is selected.  Returns false when the column is missing.
  virtual bool kernel_min_row(const std::vector<Bound>& bounds,
                              const void* col, std::optional<T>* out,
                              KernelStats* stats) const = 0;
};

/// The columnar substrate.  `Members` are the pointer-to-member types
/// naming every field of T, in any order (TableDecl::columns deduces
/// them); field types must be arithmetic.  The declaration must cover
/// every field — reconstitution would otherwise fabricate tuples missing
/// data — which is checked by round-tripping the first inserts.
template <typename T, typename Hash, typename... Members>
class ColumnStore final : public GammaStore<T>,
                          public RetiringStore<T>,
                          public ColumnarOps<T> {
  static_assert(sizeof...(Members) >= 1, "a columnar store needs columns");
  static_assert(
      (std::is_arithmetic_v<columnar_detail::member_value_t<Members>> && ...),
      "columnar fields must be arithmetic (shred to primitive columns)");

 public:
  using Bound = typename ColumnarOps<T>::Bound;
  using KernelStats = typename ColumnarOps<T>::KernelStats;

  explicit ColumnStore(Hash hash, Members... members)
      : hash_(std::move(hash)), staging_set_(8, hash_),
        members_(members...) {
    init_tags();
  }

  /// Engine-epoch windowed variant (TableDecl::retain(N)): rows are
  /// tagged with `clock`'s value at insert time and retire_up_to()
  /// compacts every column in place.  `clock` may be null (epoch 0
  /// forever, as in engine-free unit harnesses).  `keep_epochs >= 1`
  /// enables EpochWindowStore-parity insert-driven retirement (see the
  /// FlatOrderedStore windowed ctor); 0 keeps the retire_up_to-only
  /// ratchet.
  ColumnStore(const std::atomic<std::int64_t>* clock, Hash hash,
              Members... members)
      : ColumnStore(clock, 0, std::move(hash), members...) {}

  ColumnStore(const std::atomic<std::int64_t>* clock, std::int64_t keep_epochs,
              Hash hash, Members... members)
      : hash_(std::move(hash)), staging_set_(8, hash_), members_(members...),
        clock_(clock), windowed_(true), keep_(keep_epochs) {
    init_tags();
  }

  // --- GammaStore ----------------------------------------------------------

  bool insert(const T& t) override {
    std::vector<T> victims;
    bool fresh;
    {
      std::unique_lock lk(mu_);
      std::int64_t e = 0;
      if (windowed_) {
        e = epoch_now();
        if (e <= retired_through_) {
          // Straggler behind the retain(N) window: drop, but report fresh
          // so rules still fire once (same contract as the other windows).
          retired_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
      fresh = insert_staged_locked(t, e);
      if (fresh && windowed_ && keep_ >= 1 && e > max_epoch_) {
        // Insert-driven retirement, mirroring EpochWindowStore.
        max_epoch_ = e;
        if (max_epoch_ - keep_ > retired_through_) {
          retired_through_ = max_epoch_ - keep_;
          merge_locked();
          retire_rows_locked(retired_through_, &victims);
        }
      }
    }
    for (const T& t2 : victims) on_retire_(t2);
    return fresh;
  }

  bool contains(const T& t) const override {
    std::shared_lock lk(mu_);
    if (staging_set_.count(t) != 0) return true;
    const std::size_t pos = lower_bound_row(t);
    return pos < row_count() && row_at(pos) == t && dead_.count(t) == 0;
  }

  /// Retraction support, flat-tier discipline: staged rows are removed
  /// directly, merged rows join the dead set (hidden immediately from
  /// contains/dup-checks) and are physically compacted out of every
  /// column by the next merge — scans and kernels only ever run over a
  /// purged columnar region (with_merged gates on the dead set too).
  bool erase(const T& t) override {
    std::unique_lock lk(mu_);
    if (staging_set_.erase(t) != 0) {
      for (std::size_t i = 0; i < staging_.size(); ++i) {
        if (staging_[i] == t) {
          staging_[i] = std::move(staging_.back());
          staging_.pop_back();
          if (windowed_) {
            staging_epochs_[i] = staging_epochs_.back();
            staging_epochs_.pop_back();
          }
          break;
        }
      }
      return true;
    }
    const std::size_t pos = lower_bound_row(t);
    if (pos < row_count() && row_at(pos) == t && dead_.insert(t).second) {
      return true;
    }
    return false;
  }

  bool erasable() const override { return true; }

  void scan(const std::function<void(const T&)>& fn) const override {
    with_merged([&] { stream_rows(0, row_count(), fn); });
  }

  void scan_range(const T& lo, const T& hi,
                  const std::function<void(const T&)>& fn) const override {
    with_merged([&] { stream_rows(lower_bound_row(lo), lower_bound_row(hi),
                                  fn); });
  }

  void scan_from(const T& lo,
                 const std::function<void(const T&)>& fn) const override {
    with_merged([&] { stream_rows(lower_bound_row(lo), row_count(), fn); });
  }

  /// Chunked pushdown: reconstitutes rows through a small row-major
  /// staging buffer and emits contiguous spans, so Table<T> hot loops
  /// still pay one type-erased hop per ~kChunk tuples.
  void scan_chunks(const std::function<void(const T*, std::size_t)>& fn)
      const override {
    with_merged([&] {
      const std::size_t n = row_count();
      if (n == 0) return;
      std::vector<T> buf(std::min<std::size_t>(n, kChunk));
      for (std::size_t base = 0; base < n; base += buf.size()) {
        const std::size_t c = std::min(buf.size(), n - base);
        fill_chunk(buf.data(), base, c, Seq{});
        fn(buf.data(), c);
      }
    });
  }

  bool ordered() const override { return true; }
  bool chunked() const override { return true; }

  /// Morsel-parallel reconstituting scan (see GammaStore::scan_morsels).
  /// Only engages past the sequential cutoff with a hinted pool; each
  /// morsel reconstitutes its rows through its own chunk buffer, so
  /// spans from different morsels never alias.
  bool scan_morsels(
      const std::function<void(std::size_t)>& plan,
      const std::function<void(const T*, std::size_t, std::size_t)>& body)
      const override {
    bool ran = false;
    with_merged([&] {
      const std::size_t n = row_count();
      if (!morsels_active(n)) return;
      const std::size_t m = morsel::count(n);
      plan(m);
      pool_->for_each_index(
          static_cast<std::int64_t>(m),
          [&](std::int64_t mi) {
            const std::size_t a =
                static_cast<std::size_t>(mi) * morsel::kRows;
            const std::size_t b = std::min(n, a + morsel::kRows);
            std::vector<T> buf(std::min(b - a, kChunk));
            for (std::size_t base = a; base < b; base += buf.size()) {
              const std::size_t c = std::min(buf.size(), b - base);
              fill_chunk(buf.data(), base, c, Seq{});
              body(buf.data(), c, static_cast<std::size_t>(mi));
            }
          },
          /*grain=*/1);
      note_morsels(m);
      ran = true;
    });
    return ran;
  }

  std::size_t size() const override {
    std::shared_lock lk(mu_);
    return row_count() + staging_.size() - dead_.size();
  }

  /// "columnar(<cols>[,retain],<dispatch>[,morsels=<splits>])" — the
  /// dispatch level the kernels actually run at (after JSTAR_SIMD and
  /// the ExecHints::simd switch) plus the cumulative morsel split
  /// count, so run logs record which execution path this store took.
  std::string describe() const override {
    std::string s = "columnar(" + std::to_string(sizeof...(Members));
    if (windowed_) s += ",retain";
    s += ",";
    s += simd::to_string(simd_level_);
    const std::int64_t splits =
        morsel_splits_.load(std::memory_order_relaxed);
    if (splits > 0) s += ",morsels=" + std::to_string(splits);
    return s + ")";
  }

  void set_exec_hints(const ExecHints& h) override {
    pool_ = h.pool;
    morsels_on_ = h.morsels;
    // The JSTAR_SIMD env var is already folded into active_level(); the
    // hint can only pin scalar on top of it, never re-enable.
    simd_level_ = h.simd ? simd::active_level() : simd::Level::Scalar;
    simd_k_ = &simd::kernels(simd_level_);
  }

  // --- RetiringStore (TableDecl::retain(N) integration) --------------------

  /// Compacts every column in place, dropping rows whose arrival epoch is
  /// <= threshold, and ratchets the straggler cutoff forward.  The retire
  /// listener fires after the store lock is released (lock-order: the
  /// listener takes index-shard locks that queries hold while re-entering
  /// this store).
  std::int64_t retire_up_to(std::int64_t threshold) override {
    std::vector<T> victims;
    std::int64_t dropped = 0;
    {
      std::unique_lock lk(mu_);
      if (!windowed_) return 0;
      retired_through_ = std::max(retired_through_, threshold);
      if (keep_ >= 1) max_epoch_ = std::max(max_epoch_, threshold + keep_);
      merge_locked();
      dropped = retire_rows_locked(threshold, &victims);
    }
    for (const T& t : victims) on_retire_(t);
    return dropped;
  }

  void set_retire_listener(std::function<void(const T&)> fn) override {
    on_retire_ = std::move(fn);
  }

  // --- ColumnarOps ---------------------------------------------------------

  const std::vector<const void*>& column_tags() const override {
    return tags_;
  }

  bool has_column(const void* tag) const override {
    return std::find(tags_.begin(), tags_.end(), tag) != tags_.end();
  }

  KernelStats kernel_count(const std::vector<Bound>& bounds) const override {
    KernelStats ks;
    with_merged([&] {
      const std::size_t n = row_count();
      ks.rows = static_cast<std::int64_t>(n);
      if (n == 0) return;
      if (bounds.size() == 1) {
        // One bound: fuse the count into the column pass, no mask — the
        // SIMD compare+popcount path, split into morsels when large.
        visit_column(bounds[0].tag, [&](const auto& col) {
          std::vector<std::int64_t> parts(morsel::count(n), 0);
          ks.morsels = static_cast<std::int64_t>(for_each_morsel(
              n, [&](std::size_t mi, std::size_t a, std::size_t b) {
                parts[mi] = count_span(col, a, b, bounds[0]);
              }));
          for (const std::int64_t p : parts) ks.selected += p;
        });
        return;
      }
      std::size_t m = 0;
      const std::vector<std::uint8_t> sel = selection(bounds, n, &m);
      ks.morsels = static_cast<std::int64_t>(m);
      ks.selected = simd_k_->mask_count(sel.data(), n);
    });
    return ks;
  }

  KernelStats kernel_select(
      const std::vector<Bound>& bounds,
      const std::function<void(const T*, std::size_t)>& fn) const override {
    KernelStats ks;
    with_merged([&] {
      const std::size_t n = row_count();
      ks.rows = static_cast<std::int64_t>(n);
      if (n == 0) return;
      std::size_t m = 0;
      const std::vector<std::uint8_t> sel = selection(bounds, n, &m);
      ks.morsels = static_cast<std::int64_t>(m);
      std::vector<T> buf;
      buf.reserve(kChunk);
      // Mask-compressed emit: blocks whose mask popcount is zero (the
      // common case at low selectivity) skip the per-row reconstitution
      // scan entirely.
      for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t c = std::min(kChunk, n - base);
        if (simd_k_->mask_count(sel.data() + base, c) == 0) continue;
        for (std::size_t i = base; i < base + c; ++i) {
          if (!sel[i]) continue;
          buf.push_back(row_at(i));
          ++ks.selected;
          if (buf.size() == kChunk) {
            fn(buf.data(), buf.size());
            buf.clear();
          }
        }
      }
      if (!buf.empty()) fn(buf.data(), buf.size());
    });
    return ks;
  }

  bool kernel_gather_i64(
      const std::vector<Bound>& bounds, const void* col,
      const std::function<void(const std::int64_t*, std::size_t)>& fn,
      KernelStats* stats) const override {
    return gather_as<std::int64_t>(bounds, col, fn, stats,
                                   /*allow_floating=*/false);
  }

  bool kernel_gather_f64(
      const std::vector<Bound>& bounds, const void* col,
      const std::function<void(const double*, std::size_t)>& fn,
      KernelStats* stats) const override {
    return gather_as<double>(bounds, col, fn, stats, /*allow_floating=*/true);
  }

  bool kernel_min_row(const std::vector<Bound>& bounds, const void* col,
                      std::optional<T>* out,
                      KernelStats* stats) const override {
    bool supported = false;
    out->reset();
    with_merged([&] {
      const std::size_t n = row_count();
      if (stats != nullptr) stats->rows = static_cast<std::int64_t>(n);
      std::size_t m = 0;
      const std::vector<std::uint8_t> sel = selection(bounds, n, &m);
      if (stats != nullptr) stats->morsels = static_cast<std::int64_t>(m);
      supported = visit_column(col, [&](const auto& column) {
        using V = typename std::decay_t<decltype(column)>::value_type;
        if constexpr (std::is_same_v<V, std::int64_t>) {
          // Horizontal-min SIMD path, one masked argmin per morsel;
          // morsel partials combine in storage order with strict less,
          // so ties keep the earliest row exactly like the scalar loop.
          struct Part {
            bool found = false;
            std::int64_t min = 0;
            std::size_t row = 0;
          };
          std::vector<Part> parts(morsel::count(n));
          for_each_morsel(n, [&](std::size_t mi, std::size_t a,
                                 std::size_t b) {
            std::int64_t mn = 0;
            std::size_t r = 0;
            if (simd_k_->masked_min_i64(column.data() + a, sel.data() + a,
                                        b - a, &mn, &r)) {
              parts[mi] = Part{true, mn, a + r};
            }
          });
          bool found = false;
          std::int64_t best = 0;
          std::size_t best_i = 0;
          for (const Part& p : parts) {
            if (!p.found) continue;
            if (!found || p.min < best) {
              found = true;
              best = p.min;
              best_i = p.row;
            }
          }
          if (stats != nullptr) {
            stats->selected += simd_k_->mask_count(sel.data(), n);
          }
          if (found) *out = row_at(best_i);
        } else {
          bool found = false;
          V best{};
          std::size_t best_i = 0;
          for (std::size_t i = 0; i < n; ++i) {
            if (!sel[i]) continue;
            if (stats != nullptr) ++stats->selected;
            // Strict less: ties keep the earliest row, which in this
            // sorted store is also what a store-order scan would keep.
            if (!found || column[i] < best) {
              found = true;
              best = column[i];
              best_i = i;
            }
          }
          if (found) *out = row_at(best_i);
        }
      });
    });
    return supported;
  }

  // --- introspection (tests, benches) --------------------------------------

  std::size_t staged() const {
    std::shared_lock lk(mu_);
    return staging_.size();
  }
  std::int64_t merges() const {
    return merges_.load(std::memory_order_relaxed);
  }
  std::int64_t retired() const {
    return retired_.load(std::memory_order_relaxed);
  }
  /// Morsel-parallel sweeps executed / total splits across them.
  std::int64_t morsel_runs() const {
    return morsel_runs_.load(std::memory_order_relaxed);
  }
  std::int64_t morsel_splits() const {
    return morsel_splits_.load(std::memory_order_relaxed);
  }
  /// The SIMD dispatch level the kernels run at.
  simd::Level dispatch_level() const { return simd_level_; }

 private:
  static constexpr std::size_t kCols = sizeof...(Members);
  static constexpr std::size_t kChunk = 1024;
  using Seq = std::make_index_sequence<kCols>;

  template <std::size_t I>
  using col_value_t = columnar_detail::member_value_t<
      std::tuple_element_t<I, std::tuple<Members...>>>;

  void init_tags() {
    init_tags_impl(Seq{});
  }
  template <std::size_t... Is>
  void init_tags_impl(std::index_sequence<Is...>) {
    (tags_.push_back(query::field_tag(std::get<Is>(members_))), ...);
  }

  std::size_t row_count() const { return std::get<0>(cols_).size(); }

  /// Reconstitutes row i into a tuple (every column contributes a field).
  T row_at(std::size_t i) const { return row_at_impl(i, Seq{}); }
  template <std::size_t... Is>
  T row_at_impl(std::size_t i, std::index_sequence<Is...>) const {
    T t{};
    ((t.*(std::get<Is>(members_)) =
          static_cast<col_value_t<Is>>(std::get<Is>(cols_)[i])),
     ...);
    return t;
  }

  template <std::size_t... Is>
  void append_row(const T& t, std::index_sequence<Is...>) const {
    (std::get<Is>(cols_).push_back(t.*(std::get<Is>(members_))), ...);
  }
  template <std::size_t... Is>
  void write_row(const T& t, std::size_t to, std::index_sequence<Is...>)
      const {
    ((std::get<Is>(cols_)[to] = t.*(std::get<Is>(members_))), ...);
  }
  template <std::size_t... Is>
  void move_row(std::size_t from, std::size_t to,
                std::index_sequence<Is...>) const {
    ((std::get<Is>(cols_)[to] = std::get<Is>(cols_)[from]), ...);
  }
  template <std::size_t... Is>
  void resize_columns(std::size_t n, std::index_sequence<Is...>) const {
    (std::get<Is>(cols_).resize(n), ...);
  }

  /// Binary search for the first row >= t in *tuple* order.  Comparisons
  /// reconstitute O(log N) rows, so ordering is the tuple's natural
  /// operator< whatever order the columns were declared in.
  std::size_t lower_bound_row(const T& t) const {
    std::size_t lo = 0, hi = row_count();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (row_at(mid) < t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Reconstitutes rows [a, b) through the chunk buffer and visits each.
  void stream_rows(std::size_t a, std::size_t b,
                   const std::function<void(const T&)>& fn) const {
    if (a >= b) return;
    std::vector<T> buf(std::min<std::size_t>(b - a, kChunk));
    for (std::size_t base = a; base < b; base += buf.size()) {
      const std::size_t c = std::min(buf.size(), b - base);
      fill_chunk(buf.data(), base, c, Seq{});
      for (std::size_t i = 0; i < c; ++i) fn(buf[i]);
    }
  }

  /// Column-at-a-time reconstitution of rows [base, base+c) into buf —
  /// each inner loop streams one contiguous column.
  template <std::size_t... Is>
  void fill_chunk(T* buf, std::size_t base, std::size_t c,
                  std::index_sequence<Is...>) const {
    (fill_chunk_col<Is>(buf, base, c), ...);
  }
  template <std::size_t I>
  void fill_chunk_col(T* buf, std::size_t base, std::size_t c) const {
    const auto& col = std::get<I>(cols_);
    const auto m = std::get<I>(members_);
    for (std::size_t i = 0; i < c; ++i) buf[i].*m = col[base + i];
  }

  /// Invokes f with the column vector whose field tag is `tag`; returns
  /// whether a column matched.
  template <typename F>
  bool visit_column(const void* tag, F&& f) const {
    return visit_column_impl(tag, std::forward<F>(f), Seq{});
  }
  template <typename F, std::size_t... Is>
  bool visit_column_impl(const void* tag, F&& f,
                         std::index_sequence<Is...>) const {
    bool hit = false;
    auto try_one = [&](auto ic) {
      constexpr std::size_t I = decltype(ic)::value;
      if (hit || tags_[I] != tag) return;
      hit = true;
      f(std::get<I>(cols_));
    };
    (try_one(std::integral_constant<std::size_t, Is>{}), ...);
    return hit;
  }

  /// True when column value v lies in the bound's inclusive interval.
  /// Bounds only ever come from int64-exact bindings (core/query.h), so
  /// integral columns compare in int64 space losslessly; the floating
  /// branch exists only to keep instantiation legal and is unreachable
  /// through the planner.
  template <typename V>
  static std::uint8_t in_bound(V v, const Bound& b) {
    if constexpr (std::is_floating_point_v<V>) {
      return static_cast<std::uint8_t>(v >= static_cast<double>(b.lo) &&
                                       v <= static_cast<double>(b.hi));
    } else {
      const std::int64_t x = static_cast<std::int64_t>(v);
      return static_cast<std::uint8_t>(
          static_cast<int>(x >= b.lo) & static_cast<int>(x <= b.hi));
    }
  }

  /// True when kernels/scans over n rows should split across the pool:
  /// a pool was hinted, morsels are enabled (EngineOptions AND the
  /// JSTAR_MORSELS env kill-switch), and the table is past the
  /// sequential cutoff — small tables keep their current latency.
  bool morsels_active(std::size_t n) const {
    return pool_ != nullptr && morsels_on_ && simd::morsels_env_on() &&
           n >= morsel::kSequentialCutoff;
  }

  /// Runs body(morsel, begin, end) over the fixed-size morsel partition
  /// of [0, n) — on the pool when morsels_active, else one inline call
  /// covering everything.  Returns the split count (0 when inline), so
  /// callers report it in KernelStats.  The partition is a pure function
  /// of n, keeping per-morsel partials (and any ordered reduction over
  /// them) deterministic across pool sizes.
  template <typename Body>
  std::size_t for_each_morsel(std::size_t n, const Body& body) const {
    if (!morsels_active(n)) {
      body(std::size_t{0}, std::size_t{0}, n);
      return 0;
    }
    const std::size_t m = morsel::count(n);
    pool_->for_each_index(
        static_cast<std::int64_t>(m),
        [&](std::int64_t mi) {
          const std::size_t a = static_cast<std::size_t>(mi) * morsel::kRows;
          body(static_cast<std::size_t>(mi), a,
               std::min(n, a + morsel::kRows));
        },
        /*grain=*/1);
    note_morsels(m);
    return m;
  }

  void note_morsels(std::size_t m) const {
    morsel_runs_.fetch_add(1, std::memory_order_relaxed);
    morsel_splits_.fetch_add(static_cast<std::int64_t>(m),
                             std::memory_order_relaxed);
  }

  /// Single-bound fused count over col[a, b) — the SIMD compare+popcount
  /// primitive on int64 columns, a portable branch-free loop elsewhere.
  template <typename Col>
  std::int64_t count_span(const Col& col, std::size_t a, std::size_t b,
                          const Bound& bd) const {
    using V = typename std::decay_t<decltype(col)>::value_type;
    if constexpr (std::is_same_v<V, std::int64_t>) {
      return simd_k_->count_in_range(col.data() + a, b - a, bd.lo, bd.hi);
    } else {
      std::int64_t c = 0;
      for (std::size_t i = a; i < b; ++i) c += in_bound(col[i], bd);
      return c;
    }
  }

  /// sel[a, b) &= bound over col — SIMD on int64 columns.
  template <typename Col>
  void mask_span(const Col& col, std::size_t a, std::size_t b,
                 const Bound& bd, std::uint8_t* sel) const {
    using V = typename std::decay_t<decltype(col)>::value_type;
    if constexpr (std::is_same_v<V, std::int64_t>) {
      simd_k_->mask_and_in_range(col.data() + a, b - a, bd.lo, bd.hi,
                                 sel + a);
    } else {
      for (std::size_t i = a; i < b; ++i) sel[i] &= in_bound(col[i], bd);
    }
  }

  /// Builds the selection mask: one byte per row, ANDed across bounds.
  /// Each morsel masks its own disjoint sel range (all bounds fused per
  /// pass), so the parallel build is race-free and bit-identical to the
  /// sequential one.  Bounds whose tag is not a stored column select
  /// nothing (the caller — the planner — only emits covered bounds, so
  /// this is belt and braces, not a semantic fallback).
  std::vector<std::uint8_t> selection(const std::vector<Bound>& bounds,
                                      std::size_t n,
                                      std::size_t* morsels_used =
                                          nullptr) const {
    std::vector<std::uint8_t> sel(n, 1);
    for (const Bound& b : bounds) {
      if (!has_column(b.tag)) {
        std::fill(sel.begin(), sel.end(), std::uint8_t{0});
        return sel;
      }
    }
    const std::size_t m =
        for_each_morsel(n, [&](std::size_t, std::size_t a, std::size_t b) {
          for (const Bound& bd : bounds) {
            visit_column(bd.tag, [&](const auto& col) {
              mask_span(col, a, b, bd, sel.data());
            });
          }
        });
    if (morsels_used != nullptr) *morsels_used = m;
    return sel;
  }

  /// Shared gather body: masks, then streams the target column's selected
  /// values as Out spans.  Sequentially that is a small streaming buffer;
  /// past the morsel cutoff it is a two-phase fused-predicate gather —
  /// each morsel compresses its selected values into its own buffer on
  /// the pool, and the buffers then stream to fn in morsel (= storage)
  /// order, so the caller sees the exact value sequence of the
  /// sequential pass.
  template <typename Out, typename FnSpan>
  bool gather_as(const std::vector<Bound>& bounds, const void* col,
                 const FnSpan& fn, KernelStats* stats,
                 bool allow_floating) const {
    bool supported = false;
    with_merged([&] {
      const std::size_t n = row_count();
      if (stats != nullptr) stats->rows = static_cast<std::int64_t>(n);
      supported = visit_column(col, [&](const auto& column) {
        using V = typename std::decay_t<decltype(column)>::value_type;
        if constexpr (std::is_floating_point_v<V>) {
          // An int64 gather from a floating column is not lossless; the
          // post-visit check below reports unsupported so the caller
          // takes the tuple path.
          if (!allow_floating) return;
        }
        constexpr std::size_t kBlock = 256;
        if (morsels_active(n)) {
          const std::size_t m = morsel::count(n);
          std::vector<std::vector<Out>> parts(m);
          const auto morsel_body = [&](std::size_t mi, std::size_t a,
                                       std::size_t e,
                                       const auto& keep_row) {
            std::vector<Out>& dst = parts[mi];
            for (std::size_t base = a; base < e; base += kBlock) {
              const std::size_t c = std::min(kBlock, e - base);
              for (std::size_t i = base; i < base + c; ++i) {
                if (keep_row(i)) dst.push_back(static_cast<Out>(column[i]));
              }
            }
          };
          if (bounds.size() == 1) {
            // Fused predicate, no mask; an unknown bound column selects
            // nothing (visit_column skips, parts stay empty).
            const Bound& b = bounds[0];
            visit_column(b.tag, [&](const auto& bcol) {
              for_each_morsel(n, [&](std::size_t mi, std::size_t a,
                                     std::size_t e) {
                std::vector<Out>& dst = parts[mi];
                for (std::size_t base = a; base < e; base += kBlock) {
                  const std::size_t c = std::min(kBlock, e - base);
                  // SIMD pre-count: empty blocks (the common case at low
                  // selectivity) skip the per-row emit scan.
                  if (count_span(bcol, base, base + c, b) == 0) continue;
                  for (std::size_t i = base; i < base + c; ++i) {
                    if (in_bound(bcol[i], b)) {
                      dst.push_back(static_cast<Out>(column[i]));
                    }
                  }
                }
              });
            });
          } else {
            const std::vector<std::uint8_t> sel = selection(bounds, n);
            for_each_morsel(
                n, [&](std::size_t mi, std::size_t a, std::size_t e) {
                  morsel_body(mi, a, e,
                              [&](std::size_t i) { return sel[i] != 0; });
                });
          }
          std::int64_t selected = 0;
          for (const std::vector<Out>& p : parts) {
            if (p.empty()) continue;
            fn(p.data(), p.size());
            selected += static_cast<std::int64_t>(p.size());
          }
          if (stats != nullptr) {
            stats->selected += selected;
            stats->morsels = static_cast<std::int64_t>(m);
          }
          return;
        }
        std::array<Out, kChunk> buf{};
        std::size_t fill = 0;
        std::int64_t selected = 0;
        const auto emit = [&](std::size_t i) {
          buf[fill++] = static_cast<Out>(column[i]);
          ++selected;
          if (fill == kChunk) {
            fn(buf.data(), fill);
            fill = 0;
          }
        };
        if (bounds.size() == 1) {
          // One bound: fuse the predicate into the gather pass — no
          // selection mask is materialised (mirrors kernel_count).  Each
          // block is first pre-counted with the dispatched SIMD
          // compare+popcount (portable reduction on non-int64 columns);
          // blocks selecting nothing (the common case at low
          // selectivity) skip the per-row emit scan, so the pass
          // degrades to a pure streaming count.  An unknown bound
          // column selects nothing: visit_column skips the lambda.
          const Bound& b = bounds[0];
          visit_column(b.tag, [&](const auto& bcol) {
            std::size_t base = 0;
            for (; base + kBlock <= n; base += kBlock) {
              if (count_span(bcol, base, base + kBlock, b) == 0) continue;
              for (std::size_t j = 0; j < kBlock; ++j) {
                if (in_bound(bcol[base + j], b)) emit(base + j);
              }
            }
            for (std::size_t i = base; i < n; ++i) {
              if (in_bound(bcol[i], b)) emit(i);
            }
          });
        } else {
          const std::vector<std::uint8_t> sel = selection(bounds, n);
          for (std::size_t i = 0; i < n; ++i) {
            if (sel[i]) emit(i);
          }
        }
        if (fill > 0) fn(buf.data(), fill);
        if (stats != nullptr) stats->selected += selected;
      });
      if (supported && !allow_floating) {
        visit_column(col, [&](const auto& column) {
          using V = typename std::decay_t<decltype(column)>::value_type;
          if (std::is_floating_point_v<V>) supported = false;
        });
      }
    });
    return supported;
  }

  /// Coverage check (first inserts only): the declared columns must name
  /// every field, or reconstituted rows would silently drop data.  A
  /// shred → reconstitute round trip catches any missing column as an
  /// equality failure, without assuming anything about padding.
  void verify_coverage_locked(const T& t) const {
    if (coverage_checks_left_ == 0) return;
    --coverage_checks_left_;
    T back{};
    copy_fields(t, back, Seq{});
    JSTAR_CHECK_MSG(back == t,
                    "columns(...) must name every field of the tuple type: "
                    "a shredded row did not reconstitute equal");
  }
  template <std::size_t... Is>
  void copy_fields(const T& from, T& to, std::index_sequence<Is...>) const {
    ((to.*(std::get<Is>(members_)) = from.*(std::get<Is>(members_))), ...);
  }

  std::size_t staging_limit() const {
    return std::max<std::size_t>(64, row_count() / 8);
  }

  std::int64_t epoch_now() const {
    return clock_ != nullptr ? clock_->load(std::memory_order_relaxed) : 0;
  }

  /// Dedup-checks t against staging, the columnar region and the dead
  /// set, then stages it (a row that is physically present but marked
  /// dead is NOT a duplicate — the stale copy is purged by the next
  /// merge before the regions could collide).  Caller holds the
  /// exclusive lock; returns true when fresh.
  bool insert_staged_locked(const T& t, std::int64_t e) {
    if (staging_set_.count(t) != 0) return false;
    const std::size_t pos = lower_bound_row(t);
    if (pos < row_count() && row_at(pos) == t && dead_.count(t) == 0) {
      return false;
    }
    verify_coverage_locked(t);
    staging_.push_back(t);
    if (windowed_) staging_epochs_.push_back(e);
    staging_set_.insert(t);
    if (staging_.size() >= staging_limit()) merge_locked();
    return true;
  }

  /// Compacts every column in place, dropping rows with epoch <=
  /// threshold.  Caller holds the exclusive lock and has already merged
  /// (so no dead rows remain).
  std::int64_t retire_rows_locked(std::int64_t threshold,
                                  std::vector<T>* victims) {
    const std::size_t n = row_count();
    std::int64_t dropped = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (epochs_[r] <= threshold) {
        ++dropped;
        if (on_retire_) victims->push_back(row_at(r));
      } else {
        if (w != r) {
          move_row(r, w, Seq{});
          epochs_[w] = epochs_[r];
        }
        ++w;
      }
    }
    resize_columns(w, Seq{});
    epochs_.resize(w);
    retired_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
  }

  /// Runs fn with the staging buffer folded into the columns and the
  /// dead set purged.  Fast path: nothing pending — shared lock only.
  /// Otherwise merge under the exclusive lock, release, and retry shared
  /// (same as the flat tier).
  template <typename Fn>
  void with_merged(Fn&& fn) const {
    for (;;) {
      {
        std::shared_lock lk(mu_);
        if (staging_.empty() && dead_.empty()) {
          fn();
          return;
        }
      }
      std::unique_lock lk(mu_);
      merge_locked();
    }
  }

  /// The anti-merge: compacts dead rows out of every column, then sorts
  /// staging (tuple order) and back-merges it.  Caller holds the
  /// exclusive lock.  Cross-region duplicates cannot exist once the dead
  /// are purged — so no dedup pass.
  void merge_locked() const {
    if (!dead_.empty()) {
      const std::size_t n = row_count();
      std::size_t w = 0;
      for (std::size_t r = 0; r < n; ++r) {
        if (dead_.count(row_at(r)) != 0) continue;
        if (w != r) {
          move_row(r, w, Seq{});
          if (windowed_) epochs_[w] = epochs_[r];
        }
        ++w;
      }
      resize_columns(w, Seq{});
      if (windowed_) epochs_.resize(w);
      dead_.clear();
    }
    const std::size_t m = staging_.size();
    if (m == 0) return;
    if (windowed_) {
      std::vector<std::pair<T, std::int64_t>> tmp(m);
      for (std::size_t i = 0; i < m; ++i) {
        tmp[i] = {std::move(staging_[i]), staging_epochs_[i]};
      }
      std::sort(tmp.begin(), tmp.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t i = 0; i < m; ++i) {
        staging_[i] = std::move(tmp[i].first);
        staging_epochs_[i] = tmp[i].second;
      }
    } else {
      std::sort(staging_.begin(), staging_.end());
    }
    const std::size_t n = row_count();
    resize_columns(n + m, Seq{});
    if (windowed_) epochs_.resize(n + m);
    std::size_t i = n, j = m, k = n + m;
    while (j > 0) {
      // row_at reads indices < i, untouched by the writes at >= k.
      if (i > 0 && staging_[j - 1] < row_at(i - 1)) {
        --i;
        --k;
        move_row(i, k, Seq{});
        if (windowed_) epochs_[k] = epochs_[i];
      } else {
        --j;
        --k;
        write_row(staging_[j], k, Seq{});
        if (windowed_) epochs_[k] = staging_epochs_[j];
      }
    }
    staging_.clear();
    staging_epochs_.clear();
    staging_set_.clear();
    merges_.fetch_add(1, std::memory_order_relaxed);
  }

  Hash hash_;
  mutable std::shared_mutex mu_;
  // Scans merge on demand, so the regions are mutable behind const reads.
  mutable std::vector<T> staging_;
  mutable std::vector<std::int64_t> staging_epochs_;  // windowed only
  mutable std::unordered_set<T, Hash> staging_set_;
  // Erased-but-unpurged rows still physically present in the columns;
  // every read path subtracts them until the next merge compacts them.
  mutable std::unordered_set<T, Hash> dead_{8, hash_};
  std::tuple<Members...> members_;
  std::vector<const void*> tags_;
  mutable std::tuple<std::vector<columnar_detail::member_value_t<Members>>...>
      cols_;
  mutable std::vector<std::int64_t> epochs_;  // windowed only
  const std::atomic<std::int64_t>* clock_ = nullptr;
  const bool windowed_ = false;
  const std::int64_t keep_ = 0;
  std::int64_t max_epoch_ = std::numeric_limits<std::int64_t>::min() / 2;
  std::int64_t retired_through_ = std::numeric_limits<std::int64_t>::min() / 2;
  std::function<void(const T&)> on_retire_;
  mutable std::int64_t coverage_checks_left_ = 64;
  mutable std::atomic<std::int64_t> merges_{0};
  std::atomic<std::int64_t> retired_{0};
  // Execution hints (set_exec_hints): the engine's pool for
  // morsel-parallel kernels/scans, the morsel switch, and the resolved
  // SIMD dispatch level.  Defaults give direct-constructed stores (unit
  // harnesses, benches) SIMD at the host's active level and no morsels.
  sched::ForkJoinPool* pool_ = nullptr;
  bool morsels_on_ = true;
  simd::Level simd_level_ = simd::active_level();
  const simd::Kernels* simd_k_ = &simd::active_kernels();
  mutable std::atomic<std::int64_t> morsel_runs_{0};
  mutable std::atomic<std::int64_t> morsel_splits_{0};
};

}  // namespace jstar
