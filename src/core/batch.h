// Delta-tree leaves: the "sets of tuples" in one causality equivalence
// class (§5).  A BatchNode holds, per table, the deduplicated tuples whose
// DeltaKey equals the node's key; everything in one node may execute in
// parallel.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

namespace jstar {

/// Type-erased per-table slice of a batch; the concrete type is
/// Table<T>::BatchVec.
class BatchVecBase {
 public:
  virtual ~BatchVecBase() = default;
  virtual std::size_t count() const = 0;
};

/// One Delta-tree leaf.  Insertions lock `mu` (many rule tasks may put
/// tuples with the same future timestamp concurrently); the engine
/// coordinator consumes nodes exclusively after pop_min.
struct BatchNode {
  std::mutex mu;
  /// Indexed by table id; slots are created lazily under `mu`.
  std::vector<std::unique_ptr<BatchVecBase>> per_table;

  std::size_t total_tuples() const {
    std::size_t n = 0;
    for (const auto& s : per_table) {
      if (s) n += s->count();
    }
    return n;
  }
};

}  // namespace jstar
