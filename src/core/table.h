// Tables, tuples and rules — the programmer-facing core of the jstar
// runtime (§3).
//
// A JStar `table` declaration becomes a TableDecl<T> where T is a plain
// immutable struct (the "immutable Java object with a fixed set of named
// fields").  The declaration carries:
//   * the orderby list        — lit/seq/par levels (§4, §5),
//   * a hash function         — set-semantics dedup needs it,
//   * an optional primary key — the `->` arrow in table declarations,
//   * an optional store factory — the §1.4 late data-structure commitment,
//   * an optional effect      — external action when the tuple leaves the
//                               Delta set (§3: "requests for external
//                               actions ... performed when those tuples are
//                               taken out of the Delta Set").
//
// Rules (`foreach (T t) {...}`) are callables fired with a RuleCtx that
// carries the current causality timestamp; RuleCtx::put is checked
// dynamically against the law of causality (§4).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "concurrent/striped_hash_map.h"
#include "core/batch.h"
#include "core/delta_tree.h"
#include "core/gamma_store.h"
#include "core/key.h"
#include "core/query.h"
#include "core/window_store.h"
#include "core/orderby.h"
#include "core/stats.h"
#include "sched/fork_join_pool.h"
#include "util/check.h"

namespace jstar {

/// Thrown when a rule violates the law of causality at runtime: it put a
/// tuple whose timestamp is strictly before the trigger's timestamp.
class CausalityViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Records the dynamic table→table dataflow (which tables each trigger's
/// rules put into), feeding the viz module's Fig-7-style graphs.
class EdgeMatrix {
 public:
  void resize(std::size_t tables) {
    counts_ = std::vector<std::atomic<std::int64_t>>(tables * tables);
    n_ = tables;
  }
  void record(int from, int to) {
    if (from < 0 || n_ == 0) return;
    counts_[static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to)]
        .fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t count(int from, int to) const {
    if (n_ == 0) return 0;
    return counts_[static_cast<std::size_t>(from) * n_ +
                   static_cast<std::size_t>(to)]
        .load(std::memory_order_relaxed);
  }
  std::size_t tables() const { return n_; }

 private:
  std::vector<std::atomic<std::int64_t>> counts_;
  std::size_t n_ = 0;
};

/// Execution context passed to every rule invocation.  `now` is the
/// causality timestamp of the trigger tuple's batch.
class RuleCtx {
 public:
  RuleCtx(DeltaKey now, int from_table, EdgeMatrix* edges,
          std::int64_t epoch = 0)
      : now_(std::move(now)), from_table_(from_table), edges_(edges),
        epoch_(epoch) {}

  /// The causality timestamp the rule is executing at.
  const DeltaKey& now() const { return now_; }
  int from_table() const { return from_table_; }
  EdgeMatrix* edges() const { return edges_; }
  /// True for initial puts performed before the engine starts running.
  bool initial() const { return now_.empty(); }
  /// The streaming epoch this rule fires in (Engine::begin_epoch clock);
  /// 0 for one-shot batch runs.  Causality timestamps stay per-epoch local:
  /// mail and stream ingestion enter as initial puts between runs, so an
  /// epoch's keys never compare against a previous epoch's.
  std::int64_t epoch() const { return epoch_; }

 private:
  DeltaKey now_;
  int from_table_;
  EdgeMatrix* edges_;
  std::int64_t epoch_;
};

// ---------------------------------------------------------------------------

/// Declarative description of a table.  Build one, then register it with
/// Engine::table().  All setters return *this for chaining.
template <typename T>
class TableDecl {
 public:
  using StoreFactory =
      std::function<std::unique_ptr<GammaStore<T>>(bool parallel)>;

  explicit TableDecl(std::string name) : name_(std::move(name)) {}

  /// Adds a capitalised literal level (ordered by `order` declarations).
  TableDecl& orderby_lit(std::string lit_name) {
    spec_.push_back({OrderByLevel::Kind::Lit, lit_name});
    levels_.push_back(Level{LevelKind::Lit, std::move(lit_name), {}});
    return *this;
  }

  /// Adds a `seq` level: tuples are ordered by this field's value.
  TableDecl& orderby_seq(std::string field_name,
                         std::function<std::int64_t(const T&)> getter) {
    spec_.push_back({OrderByLevel::Kind::Seq, field_name});
    levels_.push_back(Level{LevelKind::Seq, std::move(field_name),
                            std::move(getter)});
    return *this;
  }

  /// Convenience overload for an integral member pointer.
  template <typename M>
  TableDecl& orderby_seq(std::string field_name, M T::*member) {
    return orderby_seq(std::move(field_name), [member](const T& t) {
      return static_cast<std::int64_t>(t.*member);
    });
  }

  /// Adds a `par` level: tuples differing only here are unordered, hence
  /// executable in parallel.  Recorded for documentation/viz only.
  TableDecl& orderby_par(std::string field_name) {
    spec_.push_back({OrderByLevel::Kind::Par, field_name});
    levels_.push_back(Level{LevelKind::Par, std::move(field_name), {}});
    return *this;
  }

  /// Hash over the tuple's fields, required for set-semantics dedup.
  /// Use jstar::hash_fields(t.a, t.b, ...).
  TableDecl& hash(std::function<std::size_t(const T&)> h) {
    hash_ = std::move(h);
    return *this;
  }

  /// Declares a primary key (the `->` in table declarations): at most one
  /// tuple per key value may exist; later conflicting tuples are rejected
  /// and counted in stats().pk_conflicts.
  TableDecl& primary_key(std::function<std::int64_t(const T&)> pk) {
    pk_ = std::move(pk);
    return *this;
  }

  /// Overrides the Gamma data structure (the §1.4 / §6.2 tuning hook).
  TableDecl& store_factory(StoreFactory f) {
    store_factory_ = std::move(f);
    return *this;
  }

  /// Manual lifetime hint (Fig 3 step 4, §6.6): tuples carry a
  /// nondecreasing epoch in `epoch_of`, and rules only query the most
  /// recent `keep` epochs; older tuples are retired from Gamma as the
  /// maximum epoch advances.  Median's two-iteration array is
  /// retain_epochs(iter, 2).
  /// Accepts a lambda or a pointer-to-member (std::function invokes both).
  /// The store is built at configure() time so it can reuse this table's
  /// hash() function for its buckets.
  TableDecl& retain_epochs(std::function<std::int64_t(const T&)> epoch_of,
                           std::int64_t keep) {
    retain_epoch_of_ = std::move(epoch_of);
    retain_keep_ = keep;
    return *this;
  }

  /// Streaming lifetime hint — `retain(N)`: tuples live for the N most
  /// recent *engine* epochs (the Engine::begin_epoch clock that
  /// src/stream/streaming.h advances once per ingestion slice) and are
  /// retired at the next epoch boundary after they fall out of the window.
  /// The middle ground between full Gamma (retain everything forever —
  /// unbounded under an infinite stream) and -noGamma (retain nothing):
  /// rules may still join against the recent past, but the heap stays
  /// proportional to the window.  Unlike retain_epochs, tuples need no
  /// epoch field; arrival time is the epoch.  Tables with a primary key
  /// keep their pk index forever — combine with care.
  TableDecl& retain(std::int64_t keep) {
    retain_engine_keep_ = keep;
    return *this;
  }

  /// External side effect executed once per tuple when it leaves the Delta
  /// set (the kosher way to print, §6.2 footnote 8).
  TableDecl& effect(std::function<void(const T&)> e) {
    effect_ = std::move(e);
    return *this;
  }

  const std::string& name() const { return name_; }

 private:
  template <typename U>
  friend class Table;

  enum class LevelKind { Lit, Seq, Par };
  struct Level {
    LevelKind kind;
    std::string name;
    std::function<std::int64_t(const T&)> getter;  // Seq only
  };

  std::string name_;
  std::vector<OrderByLevel> spec_;
  std::vector<Level> levels_;
  std::function<std::size_t(const T&)> hash_;
  std::function<std::int64_t(const T&)> pk_;
  StoreFactory store_factory_;
  std::function<void(const T&)> effect_;
  std::function<std::int64_t(const T&)> retain_epoch_of_;  // lifetime hint
  std::int64_t retain_keep_ = 0;                           // 0 = retain all
  std::int64_t retain_engine_keep_ = 0;  // retain(N): engine-epoch window
};

// ---------------------------------------------------------------------------

/// Type-erased table handle used by the engine loop and the viz module.
class TableBase {
 public:
  virtual ~TableBase() = default;

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  TableStats& stats() { return stats_; }
  const TableStats& stats() const { return stats_; }

  bool no_delta() const { return no_delta_; }
  bool no_gamma() const { return no_gamma_; }

  virtual const std::vector<OrderByLevel>& orderby_spec() const = 0;
  virtual std::size_t gamma_size() const = 0;
  virtual std::size_t rule_count() const = 0;
  virtual std::vector<std::string> rule_names() const = 0;

  // --- engine-internal interface -----------------------------------------

  struct RuntimeEnv {
    DeltaTree* delta = nullptr;
    sched::ForkJoinPool* pool = nullptr;  // null in sequential mode
    EdgeMatrix* edges = nullptr;
    OrderResolver* orders = nullptr;
    bool causality_checks = true;
    bool parallel = false;
    bool task_per_rule = false;  // §5.2 one task per (tuple, rule)
    /// The owning engine's epoch clock (streaming); null in unit-test
    /// harnesses that configure tables without an engine.
    const std::atomic<std::int64_t>* epoch = nullptr;
  };

  /// Called by Engine::prepare(): resolves literals, builds the store.
  virtual void configure(const RuntimeEnv& env, bool no_delta,
                         bool no_gamma) = 0;

  /// Phase A of batch processing: move this table's slice of the batch
  /// into Gamma, recording which tuples were fresh (not duplicates).
  virtual void batch_insert_phase(BatchVecBase& slice,
                                  std::vector<std::uint8_t>& keep) = 0;

  /// Phase B: run effects and fire rules for the fresh tuples, at
  /// causality timestamp `key`.
  virtual void batch_fire_phase(BatchVecBase& slice,
                                const std::vector<std::uint8_t>& keep,
                                const DeltaKey& key) = 0;

  /// Epoch-boundary GC hook, called by Engine::begin_epoch with the epoch
  /// just opened.  Tables without a retain(N) hint ignore it.
  virtual void retire_epochs(std::int64_t current_epoch) {
    (void)current_epoch;
  }

 protected:
  friend class Engine;
  std::string name_;
  int id_ = -1;
  mutable TableStats stats_;
  bool no_delta_ = false;
  bool no_gamma_ = false;
};

// ---------------------------------------------------------------------------

/// A typed table: Gamma storage + rules + optional primary-key index.
///
/// T must be equality-comparable; ordered stores additionally require
/// operator< (defaulted <=> on the struct gives you both).
template <typename T>
class Table final : public TableBase {
 public:
  using Rule = std::function<void(RuleCtx&, const T&)>;

  explicit Table(TableDecl<T> decl) : decl_(std::move(decl)) {
    name_ = decl_.name_;
    JSTAR_CHECK_MSG(static_cast<bool>(decl_.hash_),
                    "table '" + name_ + "' needs a hash function");
  }

  // --- program-facing API --------------------------------------------------

  /// Puts a tuple from within a rule.  Enforces the law of causality: the
  /// new tuple's timestamp must be >= the trigger's timestamp.
  void put(RuleCtx& ctx, const T& t) {
    stats_.puts.fetch_add(1, std::memory_order_relaxed);
    DeltaKey k = key_of(t);
    if (env_.causality_checks && !ctx.initial()) {
      if ((k <=> ctx.now()) == std::strong_ordering::less) {
        throw CausalityViolation(
            "rule fired at " + jstar::to_string(ctx.now()) +
            " put a tuple into the past at " + jstar::to_string(k) +
            " of table " + name_);
      }
    }
    if (ctx.edges() != nullptr) ctx.edges()->record(ctx.from_table(), id_);
    if (no_delta_) {
      deliver_now(k, t);
    } else {
      enqueue_delta(k, t);
    }
  }

  /// The tuple's causality timestamp per the orderby list.
  DeltaKey key_of(const T& t) const {
    DeltaKey k;
    for (const auto& step : key_steps_) {
      k.push_back(step.is_lit ? env_.orders->rank(step.lit_id)
                              : step.getter(t));
    }
    return k;
  }

  /// Primary-key lookup (`get uniq?`).  Requires a primary_key in the decl.
  std::optional<T> get_unique(std::int64_t pk) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    JSTAR_CHECK_MSG(has_pk_, "table '" + name_ + "' has no primary key");
    if (env_.parallel) {
      T out;
      if (pk_index_par_.lookup(pk, out)) return out;
      return std::nullopt;
    }
    auto it = pk_index_seq_.find(pk);
    if (it == pk_index_seq_.end()) return std::nullopt;
    return it->second;
  }

  /// Visits all stored tuples.
  template <typename Fn>
  void scan(Fn&& fn) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    store_->scan(std::function<void(const T&)>(std::forward<Fn>(fn)));
  }

  /// Ordered range scan [lo, hi) on stores that support it.
  template <typename Fn>
  void scan_range(const T& lo, const T& hi, Fn&& fn) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    store_->scan_range(lo, hi,
                       std::function<void(const T&)>(std::forward<Fn>(fn)));
  }

  /// First tuple satisfying pred, if any (a `get ... ?` query).
  template <typename Pred>
  std::optional<T> find_if(Pred&& pred) const {
    std::optional<T> out;
    scan([&](const T& t) {
      if (!out && pred(t)) out = t;
    });
    return out;
  }

  template <typename Pred>
  std::int64_t count_if(Pred&& pred) const {
    std::int64_t n = 0;
    scan([&](const T& t) {
      if (pred(t)) ++n;
    });
    return n;
  }

  /// Aggregate query: folds every stored tuple into a reducer (the
  /// `get sum/min/count` aggregates of §3–§4; reducer types live in
  /// reduce/reducers.h, or any type with add()).  The §4 obligation that
  /// aggregates read only strictly-past strata is the caller's rule
  /// structure; this helper is the read itself.
  template <typename R, typename Proj>
  R aggregate(Proj&& proj, R reducer = R{}) const {
    scan([&](const T& t) { reducer.add(proj(t)); });
    return reducer;
  }

  /// `get min T(...)`: the least tuple under `less` among those matching
  /// pred, if any.
  template <typename Pred, typename Less = std::less<T>>
  std::optional<T> min_by(Pred&& pred, Less less = {}) const {
    std::optional<T> best;
    scan([&](const T& t) {
      if (!pred(t)) return;
      if (!best || less(t, *best)) best = t;
    });
    return best;
  }

  /// Negative query (§4): true iff no stored tuple matches.
  template <typename Pred>
  bool none(Pred&& pred) const {
    return !find_if(std::forward<Pred>(pred)).has_value();
  }

  bool contains(const T& t) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    return store_->contains(t);
  }

  /// Direct store access for app-specific query paths (the custom
  /// structures of §6.2/§6.4 expose richer lookups).
  GammaStore<T>* store() { return store_.get(); }
  const GammaStore<T>* store() const { return store_.get(); }

  // --- secondary indexes & routed queries (§1.4) ---------------------------

  /// Declares a secondary hash index on an integral field.  Must be called
  /// before the engine starts; index maintenance then piggybacks on Gamma
  /// inserts.  Queries built from query::eq on the same field are routed
  /// through the index automatically (see query()).
  template <typename M>
  void add_index(M T::*member) {
    JSTAR_CHECK_MSG(store_ == nullptr,
                    "index on '" + name_ + "' added after execution started");
    indexes_.push_back(std::make_unique<SecondaryIndex>(
        query::field_tag(member), [member](const T& t) {
          return static_cast<std::int64_t>(t.*member);
        }));
  }

  /// Runs `fn` over every stored tuple matching `pred`.  If the predicate
  /// pins an indexed field to a value, only that index bucket is visited
  /// (stats().index_lookups); otherwise the whole table is scanned
  /// (stats().full_scans).  Results are identical either way — the §1.4
  /// claim that access-path choice cannot change program meaning.
  void query(const query::Pred<T>& pred,
             const std::function<void(const T&)>& fn) const {
    stats_.queries.fetch_add(1, std::memory_order_relaxed);
    for (const query::EqBinding& b : pred.eq_bindings()) {
      for (const auto& idx : indexes_) {
        if (idx->tag == b.field_tag) {
          stats_.index_lookups.fetch_add(1, std::memory_order_relaxed);
          // Indexes never forget, but a retention hint (retain_epochs or
          // retain) retires tuples from the store; re-validate hits against
          // the store so index and scan paths stay observationally
          // identical.
          const bool check_live =
              decl_.retain_keep_ >= 1 || decl_.retain_engine_keep_ >= 1;
          idx->lookup(b.value, [&](const T& t) {
            if (pred(t) && (!check_live || store_->contains(t))) fn(t);
          });
          return;
        }
      }
    }
    stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
    store_->scan([&](const T& t) {
      if (pred(t)) fn(t);
    });
  }

  /// Count of tuples matching pred, routed like query().
  std::int64_t query_count(const query::Pred<T>& pred) const {
    std::int64_t n = 0;
    query(pred, [&](const T&) { ++n; });
    return n;
  }

  std::size_t index_count() const { return indexes_.size(); }

  void add_rule(std::string rule_name, Rule fn) {
    rules_.push_back({std::move(rule_name), std::move(fn)});
  }

  // --- TableBase implementation -------------------------------------------

  const std::vector<OrderByLevel>& orderby_spec() const override {
    return decl_.spec_;
  }
  std::size_t gamma_size() const override {
    return store_ ? store_->size() : 0;
  }
  std::size_t rule_count() const override { return rules_.size(); }
  std::vector<std::string> rule_names() const override {
    std::vector<std::string> out;
    out.reserve(rules_.size());
    for (const auto& r : rules_) out.push_back(r.name);
    return out;
  }

  void configure(const RuntimeEnv& env, bool no_delta,
                 bool no_gamma) override {
    env_ = env;
    no_delta_ = no_delta;
    no_gamma_ = no_gamma;
    has_pk_ = static_cast<bool>(decl_.pk_) && !no_gamma;
    // Resolve orderby levels into key-building steps.  At least one
    // comparable (lit/seq) level is required: an all-par orderby would give
    // every tuple the empty timestamp, which is reserved for initial puts.
    key_steps_.clear();
    for (const auto& level : decl_.levels_) {
      switch (level.kind) {
        case TableDecl<T>::LevelKind::Lit:
          key_steps_.push_back({true, env_.orders->literal(level.name), {}});
          break;
        case TableDecl<T>::LevelKind::Seq:
          key_steps_.push_back({false, 0, level.getter});
          break;
        case TableDecl<T>::LevelKind::Par:
          break;  // excluded from the comparable key
      }
    }
    JSTAR_CHECK_MSG(!key_steps_.empty(),
                    "table '" + name_ +
                        "' needs at least one lit/seq orderby level");
    JSTAR_CHECK_MSG(
        decl_.retain_engine_keep_ < 1 || decl_.retain_keep_ < 1,
        "table '" + name_ +
            "' sets both retain(N) and retain_epochs — pick one window");
    // Build the Gamma store per strategy (§1.4 late commitment).
    window_store_ = nullptr;
    if (no_gamma) {
      store_ = std::make_unique<NullStore<T>>();
    } else if (decl_.retain_engine_keep_ >= 1) {
      // retain(N): window over the *engine* epoch clock — every tuple's
      // epoch is the epoch it arrived in, and begin_epoch() retires the
      // buckets that fell out of the window (see retire_epochs below).
      auto owned = std::make_unique<EpochWindowStore<T, FnHash<T>>>(
          [clock = env.epoch](const T&) {
            return clock != nullptr
                       ? clock->load(std::memory_order_relaxed)
                       : 0;
          },
          decl_.retain_engine_keep_, FnHash<T>{decl_.hash_},
          /*clock_epochs=*/true);
      window_store_ = owned.get();
      store_ = std::move(owned);
    } else if (decl_.retain_keep_ >= 1) {
      store_ = std::make_unique<EpochWindowStore<T, FnHash<T>>>(
          decl_.retain_epoch_of_, decl_.retain_keep_, FnHash<T>{decl_.hash_});
    } else if (decl_.store_factory_) {
      store_ = decl_.store_factory_(env.parallel);
    } else if (env.parallel) {
      store_ = std::make_unique<SkipListStore<T>>();
    } else {
      store_ = std::make_unique<TreeSetStore<T>>();
    }
  }

  void retire_epochs(std::int64_t current_epoch) override {
    if (window_store_ == nullptr) return;
    const std::int64_t retired = window_store_->retire_up_to(
        current_epoch - decl_.retain_engine_keep_);
    stats_.gamma_retired.fetch_add(retired, std::memory_order_relaxed);
  }

  void batch_insert_phase(BatchVecBase& slice,
                          std::vector<std::uint8_t>& keep) override {
    auto& bv = static_cast<BatchVec&>(slice);
    const std::int64_t n = static_cast<std::int64_t>(bv.items.size());
    keep.assign(static_cast<std::size_t>(n), 0);
    auto insert_one = [&](std::int64_t i) {
      keep[static_cast<std::size_t>(i)] =
          insert_gamma(bv.items[static_cast<std::size_t>(i)]) ? 1 : 0;
    };
    if (env_.pool != nullptr && n > 1) {
      env_.pool->for_each_index(n, insert_one);
    } else {
      for (std::int64_t i = 0; i < n; ++i) insert_one(i);
    }
  }

  void batch_fire_phase(BatchVecBase& slice,
                        const std::vector<std::uint8_t>& keep,
                        const DeltaKey& key) override {
    auto& bv = static_cast<BatchVec&>(slice);
    const std::int64_t n = static_cast<std::int64_t>(bv.items.size());
    if (env_.pool != nullptr && env_.task_per_rule && rules_.size() > 1) {
      // §5.2 fine-grained strategy: one task per (tuple, rule) pair.
      // Effects run in the rule-0 task so they still happen exactly once
      // per tuple.
      const auto rules = static_cast<std::int64_t>(rules_.size());
      env_.pool->for_each_index(
          n * rules,
          [&](std::int64_t idx) {
            const std::int64_t i = idx / rules;
            const auto r = static_cast<std::size_t>(idx % rules);
            if (!keep[static_cast<std::size_t>(i)]) return;
            const T& t = bv.items[static_cast<std::size_t>(i)];
            if (r == 0 && decl_.effect_) decl_.effect_(t);
            RuleCtx ctx(key, id_, env_.edges, current_epoch());
            stats_.fires.fetch_add(1, std::memory_order_relaxed);
            rules_[r].fn(ctx, t);
          },
          /*grain=*/1);
      return;
    }
    auto fire_one = [&](std::int64_t i) {
      if (!keep[static_cast<std::size_t>(i)]) return;
      fire_tuple(key, bv.items[static_cast<std::size_t>(i)]);
    };
    if (env_.pool != nullptr && n > 1) {
      // The paper's strategy: one fork/join task per minimal tuple (§5).
      env_.pool->for_each_index(n, fire_one, /*grain=*/1);
    } else {
      for (std::int64_t i = 0; i < n; ++i) fire_one(i);
    }
  }

 private:
  friend class Engine;

  struct NamedRule {
    std::string name;
    Rule fn;
  };

  struct HashAdapter {
    const Table* table;
    std::size_t operator()(const T& t) const { return table->decl_.hash_(t); }
  };

  struct BatchVec final : public BatchVecBase {
    explicit BatchVec(const Table* table)
        : seen(8, HashAdapter{table}) {}
    std::vector<T> items;
    std::unordered_set<T, HashAdapter> seen;
    std::size_t count() const override { return items.size(); }
  };

  struct KeyStep {
    bool is_lit;
    int lit_id;
    std::function<std::int64_t(const T&)> getter;
  };

  /// Striped hash multimap from an integral field value to tuples; safe
  /// for concurrent inserts from parallel rule tasks.
  struct SecondaryIndex {
    SecondaryIndex(const void* t, std::function<std::int64_t(const T&)> k)
        : tag(t), key_of(std::move(k)), shards(16) {}

    void insert(const T& t) {
      const std::int64_t key = key_of(t);
      Shard& s = shard_for(key);
      std::lock_guard<std::mutex> lk(s.mu);
      s.map.emplace(key, t);
    }
    void lookup(std::int64_t key,
                const std::function<void(const T&)>& fn) const {
      const Shard& s = shard_for(key);
      std::lock_guard<std::mutex> lk(s.mu);
      auto [lo, hi] = s.map.equal_range(key);
      for (auto it = lo; it != hi; ++it) fn(it->second);
    }

    const void* tag;
    std::function<std::int64_t(const T&)> key_of;

   private:
    struct Shard {
      mutable std::mutex mu;
      std::unordered_multimap<std::int64_t, T> map;
    };
    Shard& shard_for(std::int64_t key) {
      return shards[static_cast<std::size_t>(key) % shards.size()];
    }
    const Shard& shard_for(std::int64_t key) const {
      return shards[static_cast<std::size_t>(key) % shards.size()];
    }
    mutable std::vector<Shard> shards;
  };

  void enqueue_delta(const DeltaKey& k, const T& t) {
    BatchNode& node = env_.delta->get_or_insert(k);
    std::lock_guard<std::mutex> lk(node.mu);
    if (node.per_table.size() <= static_cast<std::size_t>(id_)) {
      node.per_table.resize(static_cast<std::size_t>(id_) + 1);
    }
    auto& slot = node.per_table[static_cast<std::size_t>(id_)];
    if (!slot) slot = std::make_unique<BatchVec>(this);
    auto& bv = static_cast<BatchVec&>(*slot);
    if (bv.seen.insert(t).second) {
      bv.items.push_back(t);
      stats_.delta_inserts.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.delta_dups.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// -noDelta path (§5.1): straight into Gamma, fire rules inline.
  void deliver_now(const DeltaKey& k, const T& t) {
    if (insert_gamma(t)) fire_tuple(k, t);
  }

  /// Returns true when the tuple is fresh (not a set-semantics duplicate
  /// and not a primary-key conflict).
  bool insert_gamma(const T& t) {
    if (has_pk_) {
      const std::int64_t pk = decl_.pk_(t);
      bool fresh = false;
      if (env_.parallel) {
        pk_index_par_.get_or_insert(pk, [&] {
          fresh = true;
          return t;
        });
      } else {
        fresh = pk_index_seq_.emplace(pk, t).second;
      }
      if (!fresh) {
        // Either an exact duplicate (set semantics) or a conflicting tuple
        // (invariant violation the SMT layer would flag statically).
        const std::optional<T> existing = peek_pk(pk);
        if (existing && !(*existing == t)) {
          stats_.pk_conflicts.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.gamma_dups.fetch_add(1, std::memory_order_relaxed);
        }
        return false;
      }
      store_->insert(t);
      stats_.gamma_inserts.fetch_add(1, std::memory_order_relaxed);
      update_indexes(t);
      return true;
    }
    if (!store_->insert(t)) {
      stats_.gamma_dups.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stats_.gamma_inserts.fetch_add(1, std::memory_order_relaxed);
    update_indexes(t);
    return true;
  }

  void update_indexes(const T& t) {
    for (const auto& idx : indexes_) idx->insert(t);
  }

  std::optional<T> peek_pk(std::int64_t pk) const {
    if (env_.parallel) {
      T out;
      if (pk_index_par_.lookup(pk, out)) return out;
      return std::nullopt;
    }
    auto it = pk_index_seq_.find(pk);
    if (it == pk_index_seq_.end()) return std::nullopt;
    return it->second;
  }

  std::int64_t current_epoch() const {
    return env_.epoch != nullptr
               ? env_.epoch->load(std::memory_order_relaxed)
               : 0;
  }

  void fire_tuple(const DeltaKey& k, const T& t) {
    if (decl_.effect_) decl_.effect_(t);
    if (rules_.empty()) return;
    RuleCtx ctx(k, id_, env_.edges, current_epoch());
    for (const auto& r : rules_) {
      stats_.fires.fetch_add(1, std::memory_order_relaxed);
      r.fn(ctx, t);
    }
  }

  TableDecl<T> decl_;
  RuntimeEnv env_;
  std::vector<KeyStep> key_steps_;
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;
  std::unique_ptr<GammaStore<T>> store_;
  // Set iff the store is a retain(N) engine-epoch window (aliases store_).
  EpochWindowStore<T, FnHash<T>>* window_store_ = nullptr;
  std::vector<NamedRule> rules_;
  bool has_pk_ = false;
  // Primary-key index: one of these is active depending on strategy.
  std::unordered_map<std::int64_t, T> pk_index_seq_;
  mutable concurrent::StripedHashMap<std::int64_t, T> pk_index_par_{64};
};

}  // namespace jstar
